// Read-only memory-mapped file with a read-all fallback.  The HLIB binary
// reader (`hli::HliStore`) maps the container and decodes units straight
// out of the mapping, so opening a large HLI file costs page-table setup,
// not a copy of the bytes.  When mmap is unavailable (non-regular file,
// empty file, exotic filesystem, non-POSIX platform) the contents are
// read into a heap buffer instead — callers only ever see a
// std::string_view either way.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hli::support {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Opens and maps `path`.  Throws support::CompileError when the file
  /// cannot be opened or read; a failed mmap alone silently falls back to
  /// reading the whole file into memory.
  [[nodiscard]] static MappedFile open(const std::string& path);

  /// The file contents.  Valid for the lifetime of this object.
  [[nodiscard]] std::string_view view() const {
    return map_ != nullptr
               ? std::string_view(static_cast<const char*>(map_), map_size_)
               : std::string_view(fallback_.data(), fallback_.size());
  }

  /// True when the contents are an actual mmap, false on the heap fallback.
  [[nodiscard]] bool is_mapped() const { return map_ != nullptr; }

 private:
  void reset() noexcept;

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::vector<char> fallback_;
};

}  // namespace hli::support
