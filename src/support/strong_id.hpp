// Strongly-typed integer IDs.  The HLI format juggles several ID spaces
// (items, regions, equivalent-access classes, RTL instructions, virtual
// registers); tagging them prevents the classic "passed a region ID where
// an item ID was expected" bug at compile time.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace hli::support {

template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

}  // namespace hli::support

template <typename Tag, typename Rep>
struct std::hash<hli::support::StrongId<Tag, Rep>> {
  std::size_t operator()(hli::support::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
