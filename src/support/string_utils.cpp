#include "support/string_utils.hpp"

#include <cctype>
#include <charconv>

namespace hli::support {

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.push_back(text.substr(start, i - start));
  }
  return parts;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace hli::support
