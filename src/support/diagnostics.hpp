// Diagnostic collection for the mini-C front-end.  Errors are collected
// rather than thrown so the parser can recover and report several problems
// per run; fatal structural failures use CompileError.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace hli::support {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

[[nodiscard]] std::string to_string(const Diagnostic& diag);

/// Accumulates diagnostics during a compilation.  Cheap to pass by
/// reference through every phase.
class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLoc loc, std::string message) {
    if (sev == Severity::Error) ++error_count_;
    diags_.push_back({sev, loc, std::move(message)});
  }
  void error(SourceLoc loc, std::string message) {
    report(Severity::Error, loc, std::move(message));
  }
  void warning(SourceLoc loc, std::string message) {
    report(Severity::Warning, loc, std::move(message));
  }

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diags_; }

  /// All diagnostics rendered one-per-line; convenient for test failure
  /// messages and the driver's error path.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Thrown for unrecoverable pipeline failures (e.g. asking the driver to
/// lower a program that failed sema).
class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace hli::support
