#include "support/mmap_file.hpp"

#include <fstream>
#include <utility>

#include "support/diagnostics.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define HLI_HAVE_MMAP 1
#endif

namespace hli::support {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      fallback_(std::move(other.fallback_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

void MappedFile::reset() noexcept {
#if defined(HLI_HAVE_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
  map_ = nullptr;
  map_size_ = 0;
  fallback_.clear();
}

namespace {

/// Fallback path: slurp the file through a stream.  Throws on I/O errors.
std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CompileError("cannot open '" + path + "'");
  }
  std::vector<char> bytes(std::istreambuf_iterator<char>(in), {});
  if (in.bad()) {
    throw CompileError("error reading '" + path + "'");
  }
  return bytes;
}

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
  MappedFile file;
#if defined(HLI_HAVE_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw CompileError("cannot open '" + path + "'");
  }
  struct stat st {};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      file.map_ = map;
      file.map_size_ = static_cast<std::size_t>(st.st_size);
    }
  }
  ::close(fd);
  if (file.map_ != nullptr) return file;
#endif
  file.fallback_ = read_all(path);
  return file;
}

}  // namespace hli::support
