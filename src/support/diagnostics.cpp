#include "support/diagnostics.hpp"

namespace hli::support {

namespace {
const char* severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}
}  // namespace

std::string to_string(const Diagnostic& diag) {
  return to_string(diag.loc) + ": " + severity_name(diag.severity) + ": " + diag.message;
}

std::string DiagnosticEngine::render() const {
  std::string out;
  for (const auto& d : diags_) {
    out += to_string(d);
    out += '\n';
  }
  return out;
}

}  // namespace hli::support
