// Compilation telemetry: a zero-overhead-when-off tracing + counters
// layer threaded through the whole pipeline.
//
//   * Counters — a typed registry.  `counter("sched.ddg_edges_pruned")`
//     interns a name once and returns a cheap handle; `Counter::add`
//     increments whatever CounterSet the CURRENT THREAD has installed
//     (one TLS load + null check when nothing is installed, so passes can
//     instrument unconditionally).  The full catalog with semantics lives
//     in docs/observability.md.
//   * Sinks — `ScopedRecorder` installs a CounterSet (and/or a Tracer)
//     for the enclosing scope, RAII-restoring the previous sink.  Scopes
//     nest: a per-function set merges into the surrounding per-program
//     set on scope exit, so both granularities come out of one pass run.
//     Recording is strictly per-thread and per-compilation state, which
//     is what makes `compile_many --jobs N` stats byte-identical to a
//     serial loop (driver::parallel_for re-installs the caller's sink on
//     its workers through per-task sets merged in task order).
//   * Spans — RAII wall-clock timers emitting Chrome trace_event JSON
//     ("catapult" format: load the file in chrome://tracing or
//     https://ui.perfetto.dev).  A Span is inert unless a Tracer is
//     installed; the shared Tracer is thread-safe and records a dense
//     thread id per worker so `compile_many` fan-out is visible.
//   * AtomicCounterSet — the same counter ids over std::atomic slots,
//     for genuinely shared state (hli::HliStore decode-once accounting)
//     that many workers bump concurrently.
//
// Determinism contract: CounterSet contents depend only on the work
// recorded into them (no wall-clock, no thread ids); `nonzero()` renders
// name-sorted.  Tracers are timing data and deliberately NOT part of any
// byte-identical guarantee.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace hli::telemetry {

class CounterSet;
class Tracer;

namespace detail {
/// The current thread's recording destinations.  Plain pointers with
/// constant initialization: reading them compiles to one TLS load, no
/// init guard — this is the entire "telemetry off" cost.
struct Sink {
  CounterSet* counters = nullptr;
  Tracer* tracer = nullptr;
};
extern thread_local constinit Sink tls_sink;
}  // namespace detail

/// Handle to one registered counter.  Copyable, trivially cheap; obtain
/// via `counter(name)` (typically a namespace-scope const in the pass
/// that increments it).
class Counter {
 public:
  Counter() = default;

  /// Adds `n` to the current thread's installed CounterSet; dropped when
  /// none is installed.
  void add(std::uint64_t n = 1) const noexcept;

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] std::string_view name() const;

 private:
  friend Counter counter(std::string_view name);
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Interns `name` in the process-wide registry (idempotent, thread-safe)
/// and returns its handle.  Names are dotted lowercase, `<area>.<what>`.
[[nodiscard]] Counter counter(std::string_view name);

/// Number of counters registered so far (ids are `0 .. count-1`).
[[nodiscard]] std::size_t counter_count();

/// Name of a registered counter id ("" for out-of-range).
[[nodiscard]] std::string_view counter_name(std::uint32_t id);

/// A value per registered counter.  Single-threaded by design — one set
/// per compilation (or per parallel_for task), merged deterministically.
class CounterSet {
 public:
  void add(std::uint32_t id, std::uint64_t n) {
    if (id >= values_.size()) values_.resize(id + 1, 0);
    values_[id] += n;
  }

  [[nodiscard]] std::uint64_t value(Counter c) const {
    return c.id() < values_.size() ? values_[c.id()] : 0;
  }
  /// Value by registered name; 0 when the name is unknown or never hit.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// True when every counter is zero.
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t v : values_) {
      if (v != 0) return false;
    }
    return true;
  }

  CounterSet& operator+=(const CounterSet& other) {
    if (other.values_.size() > values_.size()) {
      values_.resize(other.values_.size(), 0);
    }
    for (std::size_t i = 0; i < other.values_.size(); ++i) {
      values_[i] += other.values_[i];
    }
    return *this;
  }

  [[nodiscard]] bool operator==(const CounterSet& other) const;

  /// All nonzero counters as (name, value), sorted by name — the
  /// deterministic rendering order every report uses.
  [[nodiscard]] std::vector<std::pair<std::string_view, std::uint64_t>>
  nonzero() const;

  void clear() { values_.clear(); }

 private:
  std::vector<std::uint64_t> values_;
};

/// Counter slots over std::atomic, for state shared across threads (the
/// HliStore's decode-once accounting).  Sized once at construction for
/// every counter registered so far; later-registered ids are ignored.
class AtomicCounterSet {
 public:
  AtomicCounterSet();

  void add(Counter c, std::uint64_t n = 1) noexcept {
    if (c.id() < size_) {
      values_[c.id()].fetch_add(n, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value(Counter c) const noexcept {
    return c.id() < size_ ? values_[c.id()].load(std::memory_order_relaxed)
                          : 0;
  }
  /// Coherent copy for reporting/merging.
  [[nodiscard]] CounterSet snapshot() const;

 private:
  std::size_t size_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> values_;
};

/// Installs `counters`/`tracer` (either may be null) as the current
/// thread's sink for the scope's lifetime and restores the previous sink
/// on destruction.  With `merge_to_parent` (the default), the installed
/// CounterSet is added into the previously installed one on scope exit,
/// so nested scopes (per-function inside per-program) feed both levels.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(CounterSet* counters, Tracer* tracer = nullptr,
                          bool merge_to_parent = true);
  ~ScopedRecorder();

  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  detail::Sink previous_;
  bool merge_;
};

/// Thread-safe collector of Chrome trace_event "complete" (ph:"X")
/// events.  One Tracer is shared by every thread of a compilation; each
/// thread gets a dense tid in first-record order.
class Tracer {
 public:
  Tracer();

  /// Records one complete event for the calling thread.  `ts_us` is a
  /// timestamp from `now_us()`; `dur_us` its duration.
  void record(std::string_view name, std::string_view category,
              std::uint64_t ts_us, std::uint64_t dur_us);

  /// Microseconds since this tracer's epoch (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  [[nodiscard]] std::size_t event_count() const;

  /// The full trace file: `{"traceEvents":[...]}`, events sorted by
  /// (timestamp, tid) for stable viewing.
  [[nodiscard]] std::string to_json() const;

  /// Writes `to_json()` to `path`; false (with stderr message) on I/O
  /// failure.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;
    std::uint32_t tid = 0;
  };

  std::uint32_t tid_of_current_thread();  // Callers hold mutex_.

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
};

/// RAII wall-clock span.  Binds to the tracer installed on the
/// constructing thread; when none is installed the span is fully inert
/// (no clock read, no allocation).  `name` is copied only when active.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "pass");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  std::uint64_t start_us_ = 0;
  std::string name_;
  std::string category_;
};

inline void Counter::add(std::uint64_t n) const noexcept {
  CounterSet* sink = detail::tls_sink.counters;
  if (sink != nullptr) sink->add(id_, n);
}

/// The CounterSet installed on the calling thread (null when recording is
/// off).  Fan-out code (driver::parallel_for) uses this to re-install the
/// caller's sink on its workers.
[[nodiscard]] inline CounterSet* current_counters() {
  return detail::tls_sink.counters;
}

/// The Tracer installed on the calling thread (null when tracing is off).
[[nodiscard]] inline Tracer* current_tracer() {
  return detail::tls_sink.tracer;
}

}  // namespace hli::telemetry
