// Small string helpers used by the HLI text serializer/parser and the
// table-printing benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hli::support {

[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);
/// Splits on runs of whitespace; no empty tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer; returns false on any malformed input.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out);
[[nodiscard]] bool parse_i64(std::string_view text, std::int64_t& out);

}  // namespace hli::support
