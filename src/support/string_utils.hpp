// Small string helpers used by the HLI text serializer/parser and the
// table-printing benches.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hli::support {

// -- 64-bit FNV-1a content fingerprints --------------------------------------
//
// The compile service's content-addressed cache keys (unit RTL, HLI
// checksums, options) all hash through these.  Not cryptographic — the
// cache tolerates the astronomically unlikely collision by design (a wrong
// hit would be caught by the differential harness, not by users).

inline constexpr std::uint64_t kFnv64Basis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x00000100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                              std::uint64_t seed = kFnv64Basis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv64Prime;
  }
  return hash;
}

/// Folds one 64-bit value into a running fingerprint (byte-serialized so
/// the result is platform-independent).
[[nodiscard]] constexpr std::uint64_t fnv1a64_mix(std::uint64_t value,
                                                  std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffU;
    hash *= kFnv64Prime;
  }
  return hash;
}

[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);
/// Splits on runs of whitespace; no empty tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer; returns false on any malformed input.
[[nodiscard]] bool parse_u64(std::string_view text, std::uint64_t& out);
[[nodiscard]] bool parse_i64(std::string_view text, std::int64_t& out);

}  // namespace hli::support
