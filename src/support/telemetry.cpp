#include "support/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

namespace hli::telemetry {

namespace detail {
thread_local constinit Sink tls_sink;
}  // namespace detail

namespace {

/// Process-wide name registry.  Names live in a deque so the
/// string_views handed out stay valid across growth.
struct Registry {
  std::mutex mutex;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, std::uint32_t> ids;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

Counter counter(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.ids.find(name);
  if (it != reg.ids.end()) return Counter(it->second);
  const auto id = static_cast<std::uint32_t>(reg.names.size());
  reg.names.emplace_back(name);
  reg.ids.emplace(std::string_view(reg.names.back()), id);
  return Counter(id);
}

std::size_t counter_count() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.names.size();
}

std::string_view counter_name(std::uint32_t id) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return id < reg.names.size() ? std::string_view(reg.names[id])
                               : std::string_view();
}

std::string_view Counter::name() const { return counter_name(id_); }

std::uint64_t CounterSet::value(std::string_view name) const {
  Registry& reg = registry();
  std::uint32_t id = 0;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.ids.find(name);
    if (it == reg.ids.end()) return 0;
    id = it->second;
  }
  return id < values_.size() ? values_[id] : 0;
}

bool CounterSet::operator==(const CounterSet& other) const {
  const std::size_t n = std::max(values_.size(), other.values_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < values_.size() ? values_[i] : 0;
    const std::uint64_t b = i < other.values_.size() ? other.values_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::vector<std::pair<std::string_view, std::uint64_t>> CounterSet::nonzero()
    const {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != 0) {
      out.emplace_back(counter_name(static_cast<std::uint32_t>(i)),
                       values_[i]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

AtomicCounterSet::AtomicCounterSet() : size_(counter_count()) {
  values_ = std::make_unique<std::atomic<std::uint64_t>[]>(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    values_[i].store(0, std::memory_order_relaxed);
  }
}

CounterSet AtomicCounterSet::snapshot() const {
  CounterSet out;
  for (std::size_t i = 0; i < size_; ++i) {
    const std::uint64_t v = values_[i].load(std::memory_order_relaxed);
    if (v != 0) out.add(static_cast<std::uint32_t>(i), v);
  }
  return out;
}

ScopedRecorder::ScopedRecorder(CounterSet* counters, Tracer* tracer,
                               bool merge_to_parent)
    : previous_(detail::tls_sink), merge_(merge_to_parent) {
  detail::tls_sink.counters =
      counters != nullptr ? counters : previous_.counters;
  detail::tls_sink.tracer = tracer != nullptr ? tracer : previous_.tracer;
}

ScopedRecorder::~ScopedRecorder() {
  CounterSet* installed = detail::tls_sink.counters;
  detail::tls_sink = previous_;
  if (merge_ && installed != nullptr && previous_.counters != nullptr &&
      installed != previous_.counters) {
    *previous_.counters += *installed;
  }
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t Tracer::tid_of_current_thread() {
  const auto [it, inserted] = tids_.emplace(
      std::this_thread::get_id(), static_cast<std::uint32_t>(tids_.size()));
  return it->second;
}

void Tracer::record(std::string_view name, std::string_view category,
                    std::uint64_t ts_us, std::uint64_t dur_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({std::string(name), std::string(category), ts_us, dur_us,
                     tid_of_current_thread()});
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
      continue;
    }
    out.push_back(c);
  }
}

}  // namespace

std::string Tracer::to_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                               : a.tid < b.tid;
                   });
  std::string out = "{\"traceEvents\":[";
  char buf[128];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.category);
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":1,"
                  "\"tid\":%u}",
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us), e.tid);
    out += buf;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write '%s'\n", path.c_str());
    return false;
  }
  const std::string json = to_json();
  const bool wrote = std::fwrite(json.data(), 1, json.size(), out) ==
                     json.size();
  const bool ok = std::fclose(out) == 0 && wrote;
  if (!ok) std::fprintf(stderr, "telemetry: error writing '%s'\n", path.c_str());
  return ok;
}

Span::Span(std::string_view name, std::string_view category)
    : tracer_(detail::tls_sink.tracer) {
  if (tracer_ == nullptr) return;
  name_ = name;
  category_ = category;
  start_us_ = tracer_->now_us();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const std::uint64_t end_us = tracer_->now_us();
  tracer_->record(name_, category_, start_us_,
                  end_us > start_us_ ? end_us - start_us_ : 0);
}

}  // namespace hli::telemetry
