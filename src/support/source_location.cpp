#include "support/source_location.hpp"

namespace hli::support {

std::string to_string(SourceLoc loc) {
  if (!loc.valid()) return "<unknown>";
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace hli::support
