// Source coordinates shared by the front-end, the HLI tables, and the
// back-end.  Line numbers are the glue of the whole system: the HLI line
// table keys items by source line, and the back-end maps its memory
// references back to items through the same line numbers (paper §2.1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hli::support {

/// A position in a source buffer.  Lines and columns are 1-based; line 0
/// denotes "unknown" (e.g. compiler-synthesized code).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] constexpr bool valid() const { return line != 0; }
  friend constexpr auto operator<=>(const SourceLoc&, const SourceLoc&) = default;
};

/// Half-open range [begin, end) over source positions.
struct SourceRange {
  SourceLoc begin;
  SourceLoc end;

  friend constexpr bool operator==(const SourceRange&, const SourceRange&) = default;
};

[[nodiscard]] std::string to_string(SourceLoc loc);

}  // namespace hli::support
