// CFP95 floating-point benchmark stand-ins.
#include "workloads/workloads.hpp"

namespace hli::workloads {

// 101.tomcatv: vectorized mesh generation — 2-D nine-point stencils with
// many same-array neighbor reads per statement.  Big edge reduction (93%
// in the paper) but almost no speedup: the serial recurrences dominate.
extern const char* const kTomcatvSource = R"(
double xm[66][66];
double ym[66][66];
double rxm[66][66];
double rym[66][66];
double residual;
double maxshift;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_mesh() {
  int i;
  int j;
  for (i = 0; i < 66; i++) {
    for (j = 0; j < 66; j++) {
      xm[i][j] = i * 0.1 + rand01() * 0.01;
      ym[i][j] = j * 0.1 + rand01() * 0.01;
      rxm[i][j] = 0.0;
      rym[i][j] = 0.0;
    }
  }
}

void compute_residuals() {
  int i;
  int j;
  for (i = 1; i < 65; i++) {
    for (j = 1; j < 65; j++) {
      double xx = xm[i+1][j] - 2.0 * xm[i][j] + xm[i-1][j];
      double xy = xm[i][j+1] - 2.0 * xm[i][j] + xm[i][j-1];
      double yx = ym[i+1][j] - 2.0 * ym[i][j] + ym[i-1][j];
      double yy = ym[i][j+1] - 2.0 * ym[i][j] + ym[i][j-1];
      double cross = xm[i+1][j+1] - xm[i+1][j-1] - xm[i-1][j+1] + xm[i-1][j-1];
      rxm[i][j] = xx + xy + 0.25 * cross;
      rym[i][j] = yx + yy + 0.25 * (ym[i+1][j+1] - ym[i+1][j-1] - ym[i-1][j+1] + ym[i-1][j-1]);
    }
  }
}

void relax_mesh() {
  int i;
  int j;
  double err = 0.0;
  for (i = 1; i < 65; i++) {
    for (j = 1; j < 65; j++) {
      xm[i][j] = xm[i][j] + 0.05 * rxm[i][j];
      ym[i][j] = ym[i][j] + 0.05 * rym[i][j];
      double ax = rxm[i][j];
      if (ax < 0.0) {
        ax = 0.0 - ax;
      }
      err = err + ax;
      residual = residual + ax * 0.001;
      maxshift = maxshift + rxm[i][j] * 0.0001;
    }
  }
  residual = residual + err;
}

int main() {
  int iter;
  seed = 777;
  init_mesh();
  for (iter = 0; iter < 12; iter++) {
    compute_residuals();
    relax_mesh();
  }
  emitd(residual);
  emitd(xm[30][30] + ym[31][31] + maxshift);
  return 0;
}
)";

// 102.swim: shallow-water equations — three coupled 2-D grids updated by
// wide stencil statements (long source lines, many items per line; the
// paper calls out its large HLI-per-line).  96% of native queries answer
// yes; with HLI only 10%.
extern const char* const kSwimSource = R"(
double u[66][66];
double v[66][66];
double p[66][66];
double unew[66][66];
double vnew[66][66];
double pnew[66][66];
double cu[66][66];
double cv[66][66];
double zeta[66][66];
double h[66][66];
double check;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_fields() {
  int i;
  int j;
  for (i = 0; i < 66; i++) {
    for (j = 0; j < 66; j++) {
      u[i][j] = rand01();
      v[i][j] = rand01();
      p[i][j] = 10.0 + rand01();
      unew[i][j] = 0.0;
      vnew[i][j] = 0.0;
      pnew[i][j] = 0.0;
      cu[i][j] = 0.0;
      cv[i][j] = 0.0;
      zeta[i][j] = 0.0;
      h[i][j] = 0.0;
    }
  }
}

void calc1() {
  int i;
  int j;
  for (i = 1; i < 65; i++) {
    for (j = 1; j < 65; j++) {
      cu[i][j] = 0.5 * (p[i][j] + p[i-1][j]) * u[i][j];
      cv[i][j] = 0.5 * (p[i][j] + p[i][j-1]) * v[i][j];
      zeta[i][j] = (4.0 * (v[i][j] - v[i-1][j] - u[i][j] + u[i][j-1])) / (p[i][j] + p[i-1][j] + p[i][j-1] + p[i-1][j-1]);
      h[i][j] = p[i][j] + 0.25 * (u[i][j] * u[i][j] + v[i][j] * v[i][j]);
    }
  }
}

void calc2() {
  int i;
  int j;
  for (i = 1; i < 65; i++) {
    for (j = 1; j < 65; j++) {
      unew[i][j] = u[i][j] + 0.1 * (zeta[i][j] * (cv[i][j] + cv[i-1][j]) - h[i][j] + h[i-1][j]);
      vnew[i][j] = v[i][j] - 0.1 * (zeta[i][j] * (cu[i][j] + cu[i][j-1]) + h[i][j] - h[i][j-1]);
      pnew[i][j] = p[i][j] - 0.1 * (cu[i][j] - cu[i-1][j] + cv[i][j] - cv[i][j-1]);
    }
  }
}

void calc3() {
  int i;
  int j;
  double sum = 0.0;
  for (i = 1; i < 65; i++) {
    for (j = 1; j < 65; j++) {
      u[i][j] = unew[i][j];
      v[i][j] = vnew[i][j];
      p[i][j] = pnew[i][j];
      sum = sum + pnew[i][j];
    }
  }
  check = check + sum;
}

int main() {
  int step;
  seed = 2020;
  init_fields();
  for (step = 0; step < 12; step++) {
    calc1();
    calc2();
    calc3();
  }
  emitd(check);
  emitd(u[12][34] + p[45][6]);
  return 0;
}
)";

// 103.su2cor: quantum-chromodynamics Monte Carlo on a 4-D lattice,
// flattened to strided affine subscripts over one big array.  Native
// queries on the shared array mostly answer yes; HLI separates the
// strided slices.  Paper: 59% reduction.
extern const char* const kSu2corSource = R"(
double lattice[4096];
double staple[4096];
double action_acc;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_lattice() {
  int s;
  for (s = 0; s < 4096; s++) {
    lattice[s] = rand01() * 2.0 - 1.0;
    staple[s] = 0.0;
  }
}

void gather_staples() {
  int t;
  int z;
  int y;
  int x;
  for (t = 1; t < 7; t++) {
    for (z = 1; z < 7; z++) {
      for (y = 1; y < 7; y++) {
        for (x = 1; x < 7; x++) {
          int site = ((t * 8 + z) * 8 + y) * 8 + x;
          staple[site] = lattice[site - 1] + lattice[site + 1]
                       + lattice[site - 8] + lattice[site + 8]
                       + lattice[site - 64] + lattice[site + 64]
                       + lattice[site - 512] + lattice[site + 512];
        }
      }
    }
  }
}

void update_links() {
  int t;
  int z;
  int y;
  int x;
  for (t = 1; t < 7; t++) {
    for (z = 1; z < 7; z++) {
      for (y = 1; y < 7; y++) {
        for (x = 1; x < 7; x++) {
          int site = ((t * 8 + z) * 8 + y) * 8 + x;
          double old = lattice[site];
          double trial = old * 0.9 + staple[site] * 0.0125;
          double d_action = trial * staple[site] - old * staple[site];
          if (d_action > 0.0) {
            lattice[site] = trial;
            action_acc = action_acc + d_action;
          } else {
            lattice[site] = old * 0.999;
          }
        }
      }
    }
  }
}

int main() {
  int sweep;
  seed = 8086;
  init_lattice();
  for (sweep = 0; sweep < 25; sweep++) {
    gather_staples();
    update_links();
  }
  emitd(action_acc);
  emitd(lattice[777] + staple[1234]);
  return 0;
}
)";

// 107.mgrid: multigrid solver — 3-D 27-point stencil smoothing where the
// written array IS read at neighbor offsets in the same loop (a genuine
// in-place Gauss-Seidel recurrence): most conservative answers are real
// dependences, so HLI removes little.  Paper: only 15% reduction.
extern const char* const kMgridSource = R"(
double grid[18][18][18];
double rhs[18][18][18];
double norm_acc;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_grid() {
  int i;
  int j;
  int k;
  for (i = 0; i < 18; i++) {
    for (j = 0; j < 18; j++) {
      for (k = 0; k < 18; k++) {
        grid[i][j][k] = 0.0;
        rhs[i][j][k] = rand01();
      }
    }
  }
}

void smooth_inplace() {
  int i;
  int j;
  int k;
  for (i = 1; i < 17; i++) {
    for (j = 1; j < 17; j++) {
      for (k = 1; k < 17; k++) {
        grid[i][j][k] = (grid[i-1][j][k] + grid[i+1][j][k]
                       + grid[i][j-1][k] + grid[i][j+1][k]
                       + grid[i][j][k-1] + grid[i][j][k+1]
                       + rhs[i][j][k]) * 0.1428;
      }
    }
  }
}

void restrict_to_coarse() {
  int i;
  int j;
  int k;
  for (i = 1; i < 8; i++) {
    for (j = 1; j < 8; j++) {
      for (k = 1; k < 8; k++) {
        grid[i][j][k] = 0.5 * grid[2*i][2*j][2*k]
                      + 0.25 * (grid[2*i-1][2*j][2*k] + grid[2*i+1][2*j][2*k]);
      }
    }
  }
}

void prolong_to_fine() {
  int i;
  int j;
  int k;
  for (i = 7; i >= 1; i--) {
    for (j = 1; j < 8; j++) {
      for (k = 1; k < 8; k++) {
        grid[2*i][2*j][2*k] = grid[2*i][2*j][2*k] + 0.5 * grid[i][j][k];
        grid[2*i+1][2*j][2*k] = grid[2*i+1][2*j][2*k] + 0.25 * grid[i][j][k];
      }
    }
  }
}

void residual_norm() {
  int i;
  int j;
  int k;
  double acc = 0.0;
  for (i = 1; i < 17; i++) {
    for (j = 1; j < 17; j++) {
      for (k = 1; k < 17; k++) {
        double r = rhs[i][j][k] - grid[i][j][k] * 6.0
                 + grid[i-1][j][k] + grid[i+1][j][k]
                 + grid[i][j-1][k] + grid[i][j+1][k];
        acc = acc + r * r;
      }
    }
  }
  norm_acc = norm_acc + acc;
}

int main() {
  int cycle;
  seed = 606;
  init_grid();
  for (cycle = 0; cycle < 10; cycle++) {
    smooth_inplace();
    restrict_to_coarse();
    prolong_to_fine();
    residual_norm();
  }
  emitd(norm_acc);
  emitd(grid[9][9][9]);
  return 0;
}
)";

// 141.apsi: mesoscale weather — a large mixed code: several routines,
// stencil sweeps, scalar-heavy column physics, and cross-routine calls.
// Paper: moderate 33% reduction, speedup ~1.0.
extern const char* const kApsiSource = R"(
double temp_f[34][34];
double wind_u[34][34];
double wind_v[34][34];
double press[34][34];
double column[34];
double coriolis[34];
double energy;
double sat_acc;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_atmos() {
  int i;
  int j;
  for (i = 0; i < 34; i++) {
    coriolis[i] = 0.0001 * i;
    column[i] = 0.0;
    for (j = 0; j < 34; j++) {
      temp_f[i][j] = 280.0 + rand01() * 10.0;
      wind_u[i][j] = rand01() - 0.5;
      wind_v[i][j] = rand01() - 0.5;
      press[i][j] = 1000.0 - i * 2.0 + rand01();
    }
  }
}

void advect_temp() {
  int i;
  int j;
  for (i = 1; i < 33; i++) {
    for (j = 1; j < 33; j++) {
      double gradx = temp_f[i+1][j] - temp_f[i-1][j];
      double grady = temp_f[i][j+1] - temp_f[i][j-1];
      temp_f[i][j] = temp_f[i][j] - 0.05 * (wind_u[i][j] * gradx + wind_v[i][j] * grady);
    }
  }
}

void geostrophic_wind() {
  int i;
  int j;
  for (i = 1; i < 33; i++) {
    for (j = 1; j < 33; j++) {
      double dpx = press[i+1][j] - press[i-1][j];
      double dpy = press[i][j+1] - press[i][j-1];
      wind_u[i][j] = wind_u[i][j] - 0.01 * dpy + coriolis[i] * wind_v[i][j];
      wind_v[i][j] = wind_v[i][j] + 0.01 * dpx - coriolis[i] * wind_u[i][j];
    }
  }
}

double sat_table[64];

void latent_heat() {
  int i;
  int j;
  for (i = 1; i < 33; i++) {
    for (j = 1; j < 33; j++) {
      int band = (seed + i * 3 + j) & 63;
      sat_table[band] = sat_table[band] + temp_f[i][j] * 0.0001;
      temp_f[i][j] = temp_f[i][j] + sat_table[(band + 1) & 63] * 0.001;
    }
  }
}

void column_physics() {
  int i;
  int j;
  for (i = 0; i < 34; i++) {
    double heat = 0.0;
    double moisture = 0.0;
    for (j = 0; j < 34; j++) {
      double t = temp_f[i][j];
      double dp = press[i][j] * 0.001;
      heat = heat + t * dp;
      moisture = moisture + (t - 273.0) * 0.01;
      if (moisture > 1.0) {
        moisture = 1.0;
      }
    }
    column[i] = column[i] + heat * 0.0001 + moisture;
  }
}

double qv[34][34];
double kdiff[34];

void vertical_diffusion() {
  int i;
  int j;
  for (i = 0; i < 34; i++) {
    kdiff[i] = 0.01 + 0.001 * i;
  }
  for (i = 1; i < 33; i++) {
    for (j = 1; j < 33; j++) {
      double flux_up = kdiff[i] * (temp_f[i+1][j] - temp_f[i][j]);
      double flux_dn = kdiff[i-1] * (temp_f[i][j] - temp_f[i-1][j]);
      qv[i][j] = qv[i][j] + 0.5 * (flux_up - flux_dn);
    }
  }
}

double solar_in;
double thermal_out;

void radiation_balance() {
  int i;
  int j;
  for (i = 0; i < 34; i++) {
    for (j = 0; j < 34; j++) {
      double t = temp_f[i][j] * 0.0036;
      double t2 = t * t;
      double emitted = t2 * t2;
      thermal_out = thermal_out + emitted;
      solar_in = solar_in + (1.0 - 0.3) * 0.342;
      temp_f[i][j] = temp_f[i][j] + 0.001 * (0.342 - emitted);
    }
  }
}

void total_energy() {
  int i;
  int j;
  double e = 0.0;
  for (i = 0; i < 34; i++) {
    for (j = 0; j < 34; j++) {
      e = e + wind_u[i][j] * wind_u[i][j] + wind_v[i][j] * wind_v[i][j];
    }
  }
  for (i = 0; i < 34; i++) {
    e = e + column[i];
  }
  energy = energy + e;
}

int main() {
  int step;
  seed = 1999;
  init_atmos();
  for (step = 0; step < 18; step++) {
    advect_temp();
    geostrophic_wind();
    latent_heat();
    vertical_diffusion();
    radiation_balance();
    column_physics();
    total_energy();
  }
  emitd(energy);
  emitd(thermal_out - solar_in);
  emitd(temp_f[10][10] + press[20][20] + qv[5][5]);
  return 0;
}
)";

}  // namespace hli::workloads
