// CFP92 floating-point benchmark stand-ins.
#include "workloads/workloads.hpp"

namespace hli::workloads {

// 015.doduc: Monte-Carlo nuclear reactor simulation — a large body of
// deeply nested small FP loops over many coupled arrays, with conditional
// updates.  The paper notes its HLI is large because nested-loop items
// inflate the alias and LCDD tables; reduction 63%, speedup ~1.0/1.03.
extern const char* const kDoducSource = R"(
double flux[32][32];
double absorb[32][32];
double scatter[32][32];
double source_t[32][32];
double leak_row[32];
double leak_col[32];
double total;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_cells() {
  int i;
  int j;
  for (i = 0; i < 32; i++) {
    leak_row[i] = 0.0;
    leak_col[i] = 0.0;
    for (j = 0; j < 32; j++) {
      flux[i][j] = rand01();
      absorb[i][j] = 0.1 + rand01() * 0.2;
      scatter[i][j] = 0.3 + rand01() * 0.3;
      source_t[i][j] = rand01();
    }
  }
}

void transport_sweep() {
  int i;
  int j;
  for (i = 1; i < 31; i++) {
    for (j = 1; j < 31; j++) {
      double in_flux = flux[i-1][j] * 0.25 + flux[i][j-1] * 0.25;
      double self = flux[i][j] * scatter[i][j];
      double gain = source_t[i][j] + in_flux + self;
      double loss = absorb[i][j] * flux[i][j];
      flux[i][j] = gain - loss;
    }
  }
}

void leakage_pass() {
  int i;
  int j;
  for (i = 0; i < 32; i++) {
    double row_acc = 0.0;
    for (j = 0; j < 32; j++) {
      row_acc = row_acc + flux[i][j] * absorb[i][j];
      leak_col[j] = leak_col[j] + flux[i][j] * 0.01;
    }
    leak_row[i] = leak_row[i] + row_acc;
  }
}

double zone_r[128];
double zone_v[128];
double zone_p[128];
double zone_q[128];

void hydro_sweep() {
  int z;
  for (z = 1; z < 127; z++) {
    double dv = zone_v[z+1] - zone_v[z-1];
    double visc = 0.0;
    if (dv < 0.0) {
      visc = 2.0 * dv * dv;
    }
    zone_q[z] = visc;
    zone_p[z] = zone_p[z] - 0.1 * (zone_q[z] + visc) * dv;
    zone_r[z] = zone_r[z] + zone_v[z] * 0.01;
  }
}

double xsec_table[16];

void cross_sections() {
  int g;
  int z;
  for (g = 0; g < 16; g++) {
    xsec_table[g] = 0.05 + g * 0.01;
  }
  for (z = 0; z < 128; z++) {
    int band = z & 15;
    zone_v[z] = zone_v[z] * (1.0 - xsec_table[band] * 0.1)
              + zone_p[z] * xsec_table[(band + 1) & 15] * 0.01;
  }
}

double eos_energy;

void equation_of_state() {
  int z;
  for (z = 0; z < 128; z++) {
    double rho = zone_r[z] + 1.0;
    double e = zone_p[z] / (0.4 * rho);
    if (e < 0.0) {
      e = 0.0;
    }
    eos_energy = eos_energy + e;
    zone_p[z] = 0.4 * rho * e;
  }
}

void renormalize() {
  int i;
  int j;
  double sum = 0.0;
  for (i = 0; i < 32; i++) {
    for (j = 0; j < 32; j++) {
      sum = sum + flux[i][j];
    }
  }
  if (sum > 0.5) {
    double inv = 1024.0 / sum;
    for (i = 0; i < 32; i++) {
      for (j = 0; j < 32; j++) {
        flux[i][j] = flux[i][j] * inv;
      }
    }
  }
  total = total + sum;
}

void init_zones() {
  int z;
  for (z = 0; z < 128; z++) {
    zone_r[z] = rand01();
    zone_v[z] = rand01() - 0.5;
    zone_p[z] = 1.0 + rand01();
    zone_q[z] = 0.0;
  }
}

int main() {
  int iter;
  seed = 31415;
  init_cells();
  init_zones();
  for (iter = 0; iter < 30; iter++) {
    transport_sweep();
    leakage_pass();
    hydro_sweep();
    cross_sections();
    equation_of_state();
    renormalize();
  }
  emitd(total);
  emitd(eos_energy);
  emitd(leak_row[7] + leak_col[9] + zone_p[64]);
  return 0;
}
)";

// 034.mdljdp2: double-precision molecular dynamics.  Force loops update
// several coordinate/force arrays with small constant-distance neighbor
// subscripts; GCC sees same-array variable subscripts and gives up, while
// the front-end proves per-iteration independence.  Paper: 85% reduction,
// speedups 1.08 / 1.42 — the star of Table 2.
extern const char* const kMdljdp2Source = R"(
double x[512];
double y[512];
double z[512];
double fx[512];
double fy[512];
double fz[512];
double vx[512];
double vy[512];
double vz[512];
int nbr[512];
double epot;
double virial;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_particles() {
  int i;
  for (i = 0; i < 512; i++) {
    nbr[i] = (i * 7 + 3) & 511;
    x[i] = rand01() * 8.0;
    y[i] = rand01() * 8.0;
    z[i] = rand01() * 8.0;
    vx[i] = rand01() - 0.5;
    vy[i] = rand01() - 0.5;
    vz[i] = rand01() - 0.5;
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
}

void forces_near() {
  int i;
  for (i = 1; i < 511; i++) {
    int j = nbr[i];
    double dx = x[i] - x[i-1];
    double dy = y[i] - y[i-1];
    double dz = z[i] - z[i-1];
    double r2 = dx * dx + dy * dy + dz * dz + 0.01;
    double inv = 1.0 / r2;
    double s = inv * inv * inv;
    double g = s * inv * 24.0;
    fx[j] = fx[j] + dx * g;
    fy[j] = fy[j] + dy * g;
    fz[j] = fz[j] + dz * g;
    epot = epot + s;
    virial = virial + g * r2;
  }
}

void forces_far() {
  int i;
  for (i = 4; i < 512; i++) {
    int j = nbr[i-4];
    double dx = x[i] - x[i-4];
    double dy = y[i] - y[i-4];
    double dz = z[i] - z[i-4];
    double r2 = dx * dx + dy * dy + dz * dz + 0.01;
    double inv = 1.0 / r2;
    double s = inv * inv;
    fx[j] = fx[j] - dx * s;
    fy[j] = fy[j] - dy * s;
    fz[j] = fz[j] - dz * s;
  }
}

void advance() {
  int i;
  for (i = 0; i < 512; i++) {
    vx[i] = vx[i] + fx[i] * 0.0005;
    vy[i] = vy[i] + fy[i] * 0.0005;
    vz[i] = vz[i] + fz[i] * 0.0005;
    x[i] = x[i] + vx[i] * 0.001;
    y[i] = y[i] + vy[i] * 0.001;
    z[i] = z[i] + vz[i] * 0.001;
    fx[i] = 0.0;
    fy[i] = 0.0;
    fz[i] = 0.0;
  }
}

int main() {
  int step;
  seed = 2718;
  init_particles();
  for (step = 0; step < 60; step++) {
    forces_near();
    forces_far();
    advance();
  }
  emitd(epot);
  emitd(virial);
  emitd(x[100] + y[200] + z[300]);
  return 0;
}
)";

// 048.ora: ray tracing through an optical system — straight-line FP code
// dominated by calls to math builtins, very few memory references.
// Paper: 35% reduction (small counts), speedup 1.00.
extern const char* const kOraSource = R"(
double acc_x;
double acc_y;
double hits;
double res[3000];
double lens_k[8];
int seed;
double sqrt(double v);
double fabs(double v);
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

double trace_ray(double px, double py, double dirx, double diry) {
  double cx = px + dirx * 2.0;
  double cy = py + diry * 2.0;
  double r2 = cx * cx + cy * cy;
  double r = sqrt(r2 + 0.25);
  double nx = cx / r;
  double ny = cy / r;
  double dot = nx * dirx + ny * diry;
  double rx = dirx - 2.0 * dot * nx;
  double ry = diry - 2.0 * dot * ny;
  double bend = sqrt(fabs(rx * ry) + 1.0);
  return (rx + ry) / bend;
}

int main() {
  int i;
  seed = 555;
  for (i = 0; i < 8; i++) {
    lens_k[i] = 1.0 + i * 0.125;
  }
  for (i = 0; i < 3000; i++) {
    double px = rand01() * 4.0 - 2.0;
    double py = rand01() * 4.0 - 2.0;
    double norm = sqrt(px * px + py * py) + 0.001;
    double v = trace_ray(px, py, px / norm, py / norm);
    res[i] = v * lens_k[i & 7];
    acc_x = acc_x + res[i];
    if (fabs(v) < 0.5) {
      hits = hits + 1.0;
    }
  }
  emitd(acc_x);
  emitd(hits);
  emitd(res[1234]);
  return 0;
}
)";

// 052.alvinn: neural-net training for an autonomous van — dense
// matrix-vector products between layer arrays.  Nearly every native query
// answers "yes" (one big weight array); HLI separates rows and
// activations.  Paper: 98% -> 42%, reduction 57%.
extern const char* const kAlvinnSource = R"(
double input_l[96];
double hidden[32];
double output_l[16];
double w1[32][96];
double w2[16][32];
double h_err[32];
double o_err[16];
double target[16];
double score;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_net() {
  int i;
  int j;
  for (i = 0; i < 32; i++) {
    for (j = 0; j < 96; j++) {
      w1[i][j] = rand01() * 0.1 - 0.05;
    }
  }
  for (i = 0; i < 16; i++) {
    for (j = 0; j < 32; j++) {
      w2[i][j] = rand01() * 0.1 - 0.05;
    }
  }
}

void load_pattern() {
  int i;
  for (i = 0; i < 96; i++) {
    input_l[i] = rand01();
  }
  for (i = 0; i < 16; i++) {
    target[i] = rand01();
  }
}

void forward() {
  int i;
  int j;
  for (i = 0; i < 32; i++) {
    double acc = 0.0;
    for (j = 0; j < 96; j++) {
      acc = acc + w1[i][j] * input_l[j];
    }
    hidden[i] = acc / (1.0 + (acc < 0.0 ? 0.0 - acc : acc));
  }
  for (i = 0; i < 16; i++) {
    double acc = 0.0;
    for (j = 0; j < 32; j++) {
      acc = acc + w2[i][j] * hidden[j];
    }
    output_l[i] = acc;
  }
}

void backward() {
  int i;
  int j;
  for (i = 0; i < 16; i++) {
    o_err[i] = target[i] - output_l[i];
    score = score + o_err[i] * o_err[i];
  }
  for (j = 0; j < 32; j++) {
    double acc = 0.0;
    for (i = 0; i < 16; i++) {
      acc = acc + w2[i][j] * o_err[i];
      w2[i][j] = w2[i][j] + 0.05 * o_err[i] * hidden[j];
    }
    h_err[j] = acc;
  }
  for (i = 0; i < 32; i++) {
    for (j = 0; j < 96; j++) {
      w1[i][j] = w1[i][j] + 0.05 * h_err[i] * input_l[j];
    }
  }
}

int main() {
  int epoch;
  seed = 13;
  init_net();
  for (epoch = 0; epoch < 30; epoch++) {
    load_pattern();
    forward();
    backward();
  }
  emitd(score);
  emitd(w1[10][20] + w2[5][5]);
  return 0;
}
)";

// 077.mdljsp2: the single-precision sibling of mdljdp2 with a different
// loop-body mix (velocity half-steps folded into the force loops).
// Paper: 85% reduction, speedups 1.19 / 1.59 — the biggest winner.
extern const char* const kMdljsp2Source = R"(
float xs[512];
float ys[512];
float fxs[512];
float fys[512];
float vxs[512];
float vys[512];
int pair_l[512];
float epots;
float virials;
int seed;
void emitd(double v);

double rand01() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed * 0.00000095367;
}

void init_sp() {
  int i;
  for (i = 0; i < 512; i++) {
    pair_l[i] = (i * 11 + 5) & 511;
    xs[i] = rand01() * 8.0;
    ys[i] = rand01() * 8.0;
    vxs[i] = rand01() - 0.5;
    vys[i] = rand01() - 0.5;
    fxs[i] = 0.0;
    fys[i] = 0.0;
  }
}

void force_step() {
  int i;
  for (i = 2; i < 510; i++) {
    float dxa = xs[i] - xs[i-1];
    float dya = ys[i] - ys[i-1];
    float dxb = xs[i+1] - xs[i];
    float dyb = ys[i+1] - ys[i];
    float ra = dxa * dxa + dya * dya + 0.01;
    float rb = dxb * dxb + dyb * dyb + 0.01;
    float sa = 1.0 / (ra * ra);
    float sb = 1.0 / (rb * rb);
    int p = pair_l[i];
    fxs[p] = fxs[p] + dxa * sa - dxb * sb;
    fys[p] = fys[p] + dya * sa - dyb * sb;
    vxs[i] = vxs[i] + fxs[p] * 0.0005;
    vys[i] = vys[i] + fys[p] * 0.0005;
    epots = epots + sa + sb;
    virials = virials + sa * ra - sb * rb;
  }
}

void move_step() {
  int i;
  for (i = 0; i < 512; i++) {
    xs[i] = xs[i] + vxs[i] * 0.001;
    ys[i] = ys[i] + vys[i] * 0.001;
    fxs[i] = fxs[i] * 0.5;
    fys[i] = fys[i] * 0.5;
  }
}

int main() {
  int step;
  seed = 4242;
  init_sp();
  for (step = 0; step < 80; step++) {
    force_step();
    move_step();
  }
  emitd(epots);
  emitd(virials);
  emitd(xs[100] + ys[200]);
  return 0;
}
)";

}  // namespace hli::workloads
