// Integer benchmark stand-ins: GNU wc and the CINT92/95 programs.
// Character notes per workload are in DESIGN.md §4.
#include "workloads/workloads.hpp"

namespace hli::workloads {

// GNU wc: byte-stream scan over a text buffer, counting lines / words /
// characters.  Few memory references per line, tiny basic blocks, almost
// no exploitable parallelism — the paper reports speedup 1.00.
extern const char* const kWcSource = R"(
int buf[4096];
int nl;
int nw;
int nc;
int seed;
void emit(int v);

int next_byte() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed & 127;
}

void fill_buffer() {
  int i;
  for (i = 0; i < 4096; i++) {
    int b = next_byte();
    if (b < 20) {
      buf[i] = 10;
    } else if (b < 45) {
      buf[i] = 32;
    } else {
      buf[i] = b;
    }
  }
}

void count_buffer(int n) {
  int i;
  int in_word = 0;
  for (i = 0; i < n; i++) {
    int c = buf[i];
    nc = nc + 1;
    if (c == 10) {
      nl = nl + 1;
    }
    if (c == 32 || c == 10 || c == 9) {
      in_word = 0;
    } else if (in_word == 0) {
      in_word = 1;
      nw = nw + 1;
    }
  }
}

int main() {
  int round;
  seed = 42;
  for (round = 0; round < 24; round++) {
    fill_buffer();
    count_buffer(4096);
  }
  emit(nl);
  emit(nw);
  emit(nc);
  return 0;
}
)";

// 008.espresso: two-level logic minimization.  Pointer-rich manipulation
// of cube bit-vectors through helper functions; many short loops and
// frequent calls.  Paper: 62% edge reduction, speedup 1.00.
extern const char* const kEspressoSource = R"(
int cover_a[64][8];
int cover_b[64][8];
int scratch[8];
int result[8];
int count_total;
int seed;
void emit(int v);

int next_rand() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed;
}

void cube_copy(int* dst, int* src) {
  int w;
  for (w = 0; w < 8; w++) {
    dst[w] = src[w];
  }
}

void cube_and(int* dst, int* a, int* b) {
  int w;
  for (w = 0; w < 8; w++) {
    dst[w] = a[w] & b[w];
  }
}

void cube_or(int* dst, int* a, int* b) {
  int w;
  for (w = 0; w < 8; w++) {
    dst[w] = a[w] | b[w];
  }
}

int cube_popcount(int* a) {
  int w;
  int bits = 0;
  for (w = 0; w < 8; w++) {
    int v = a[w];
    while (v != 0) {
      bits = bits + (v & 1);
      v = v >> 1;
    }
  }
  return bits;
}

int cube_empty(int* a) {
  int w;
  for (w = 0; w < 8; w++) {
    if (a[w] != 0) {
      return 0;
    }
  }
  return 1;
}

void gen_cover(int which) {
  int i;
  int w;
  for (i = 0; i < 64; i++) {
    for (w = 0; w < 8; w++) {
      int bits = next_rand() & 65535;
      if (which == 0) {
        cover_a[i][w] = bits;
      } else {
        cover_b[i][w] = bits;
      }
    }
  }
}

int sharp_pass() {
  int i;
  int j;
  int alive = 0;
  for (i = 0; i < 64; i++) {
    cube_copy(result, cover_a[i]);
    for (j = 0; j < 64; j++) {
      cube_and(scratch, cover_a[i], cover_b[j]);
      if (cube_empty(scratch) == 0) {
        cube_or(result, result, scratch);
      }
    }
    count_total = count_total + cube_popcount(result);
    if (cube_empty(result) == 0) {
      alive = alive + 1;
    }
  }
  return alive;
}

int main() {
  int round;
  int alive = 0;
  seed = 7;
  for (round = 0; round < 2; round++) {
    gen_cover(0);
    gen_cover(1);
    alive = alive + sharp_pass();
  }
  emit(alive);
  emit(count_total);
  return 0;
}
)";

// 023.eqntott: truth-table generation dominated by a quicksort-style
// comparison function over packed term vectors accessed through pointer
// parameters.  Paper: 52% reduction, small speedups.
extern const char* const kEqntottSource = R"(
int terms[256][16];
int order[256];
int pt_out[256];
int cmp_calls;
int seed;
void emit(int v);

int next_rand() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed;
}

int cmppt(int* a, int* b) {
  int i;
  cmp_calls = cmp_calls + 1;
  for (i = 0; i < 16; i++) {
    int av = a[i];
    int bv = b[i];
    if (av < bv) {
      return 0 - 1;
    }
    if (av > bv) {
      return 1;
    }
  }
  return 0;
}

void gen_terms() {
  int i;
  int j;
  for (i = 0; i < 256; i++) {
    order[i] = i;
    for (j = 0; j < 16; j++) {
      terms[i][j] = next_rand() & 3;
    }
  }
}

void sort_terms(int n) {
  int i;
  int j;
  for (i = 1; i < n; i++) {
    int key = order[i];
    j = i - 1;
    while (j >= 0 && cmppt(terms[order[j]], terms[key]) > 0) {
      order[j + 1] = order[j];
      j = j - 1;
    }
    order[j + 1] = key;
  }
}

void pack_outputs(int n) {
  int i;
  for (i = 0; i < n; i++) {
    int t = order[i];
    pt_out[i] = terms[t][0] * 4 + terms[t][1] * 2 + terms[t][2];
  }
}

int checksum() {
  int i;
  int sum = 0;
  for (i = 0; i < 256; i++) {
    sum = sum + order[i] * (i + 1) + pt_out[i];
  }
  return sum & 1048575;
}

int main() {
  int round;
  int sum = 0;
  seed = 99;
  for (round = 0; round < 2; round++) {
    gen_terms();
    sort_terms(256);
    pack_outputs(256);
    sum = sum + checksum();
  }
  emit(sum);
  emit(cmp_calls);
  return 0;
}
)";

// 129.compress: LZW compression.  A hash-table loop with data-dependent
// subscripts into htab/codetab; GCC cannot tell the tables apart from the
// input stream.  Paper: 34% reduction, speedups 1.06 / 1.07.
extern const char* const kCompressSource = R"(
int htab[8192];
int codetab[8192];
int input[4096];
int out_count;
int out_hash;
int seed;
void emit(int v);

int next_rand() {
  seed = (seed * 1103515 + 12345) & 1048575;
  return seed;
}

void gen_input() {
  int i;
  for (i = 0; i < 4096; i++) {
    input[i] = next_rand() & 255;
  }
}

void clear_tables() {
  int i;
  for (i = 0; i < 8192; i++) {
    htab[i] = 0 - 1;
    codetab[i] = 0;
  }
}

void output_code(int code) {
  out_count = out_count + 1;
  out_hash = (out_hash * 31 + code) & 1048575;
}

void compress_block(int n) {
  int ent = input[0];
  int free_code = 257;
  int i;
  for (i = 1; i < n; i++) {
    int c = input[i];
    int fcode = (c << 12) + ent;
    int h = ((c << 5) ^ ent) & 8191;
    int probes = 0;
    int done = 0;
    while (done == 0 && htab[h] >= 0 && probes < 6) {
      if (htab[h] == fcode) {
        ent = codetab[h];
        done = 1;
      } else {
        h = (h + 1) & 8191;
        probes = probes + 1;
      }
    }
    if (done == 0) {
      output_code(ent);
      if (free_code < 4096) {
        htab[h] = fcode;
        codetab[h] = free_code;
        free_code = free_code + 1;
      }
      ent = c;
    }
  }
  output_code(ent);
}

int main() {
  int round;
  seed = 1234;
  for (round = 0; round < 6; round++) {
    gen_input();
    clear_tables();
    compress_block(4096);
  }
  emit(out_count);
  emit(out_hash);
  return 0;
}
)";

}  // namespace hli::workloads
