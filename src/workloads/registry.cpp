#include "workloads/workloads.hpp"

namespace hli::workloads {

// Defined in the per-suite translation units.
extern const char* const kWcSource;
extern const char* const kEspressoSource;
extern const char* const kEqntottSource;
extern const char* const kCompressSource;
extern const char* const kDoducSource;
extern const char* const kMdljdp2Source;
extern const char* const kOraSource;
extern const char* const kAlvinnSource;
extern const char* const kMdljsp2Source;
extern const char* const kTomcatvSource;
extern const char* const kSwimSource;
extern const char* const kSu2corSource;
extern const char* const kMgridSource;
extern const char* const kApsiSource;
extern const char* const kBasicRelaxSource;
extern const char* const kBasicStencilSource;
extern const char* const kBasicMatmulSource;

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> workloads = {
      {"wc", "GNU", false, kWcSource},
      {"008.espresso", "CINT92", false, kEspressoSource},
      {"023.eqntott", "CINT92", false, kEqntottSource},
      {"129.compress", "CINT95", false, kCompressSource},
      {"015.doduc", "CFP92", true, kDoducSource},
      {"034.mdljdp2", "CFP92", true, kMdljdp2Source},
      {"048.ora", "CFP92", true, kOraSource},
      {"052.alvinn", "CFP92", true, kAlvinnSource},
      {"077.mdljsp2", "CFP92", true, kMdljsp2Source},
      {"101.tomcatv", "CFP95", true, kTomcatvSource},
      {"102.swim", "CFP95", true, kSwimSource},
      {"103.su2cor", "CFP95", true, kSu2corSource},
      {"107.mgrid", "CFP95", true, kMgridSource},
      {"141.apsi", "CFP95", true, kApsiSource},
  };
  return workloads;
}

const std::vector<Workload>& basic_workloads() {
  static const std::vector<Workload> workloads = {
      {"basic.relax", "BASIC", false, kBasicRelaxSource,
       frontend::Language::Basic},
      {"basic.stencil", "BASIC", false, kBasicStencilSource,
       frontend::Language::Basic},
      {"basic.matmul", "BASIC", false, kBasicMatmulSource,
       frontend::Language::Basic},
  };
  return workloads;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload& w : all_workloads()) {
    if (w.name == name) return &w;
  }
  for (const Workload& w : basic_workloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace hli::workloads
