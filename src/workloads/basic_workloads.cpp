// BASIC-suite workloads (docs/thin-waist.md): the second front-end's
// counterpart to the Table-1 mini-C programs.  Each is built around the
// dependence structure the paper's HLI exists to communicate — dense
// loop-carried data dependences (LCDD) next to provably independent
// loops — so the BASIC front-end exercises the same verifier, auditor,
// loop classifier and parallel executor as the C suite:
//
//   basic.relax    1-D Gauss-Seidel-style recurrence: the sweep loop
//                  carries a distance-1 LCDD (Serial), the seeding and
//                  checksum loops carry none (DOALL / reduction).
//   basic.stencil  2-D Jacobi smoothing on twin grids: the stencil and
//                  copy-back nests are DOALL in both dimensions; only
//                  the round counter is sequential.
//   basic.matmul   Integer matrix product: DOALL over rows/columns with
//                  an inner dot-product reduction, plus triangular
//                  post-processing with subscript-coupled accesses.
//
// Like the C suite, programs emit their checksums through the external
// `emit` sink and return a small exit value so every run mode (--run,
// fuzz legs, service cache, --exec-threads lanes) has observable output.
#include "workloads/workloads.hpp"

namespace hli::workloads {

extern const char* const kBasicRelaxSource = R"(DECLARE SUB emit(v AS INTEGER)
DIM cell(256) AS INTEGER

SUB seed_cells(n AS INTEGER)
  FOR i = 0 TO n - 1
    cell(i) = (i * 37 + 11) MOD 97
  NEXT i
END SUB

SUB relax_forward(n AS INTEGER, rounds AS INTEGER)
  DIM pass AS INTEGER
  pass = 0
  DO WHILE pass < rounds
    FOR i = 1 TO n - 1
      cell(i) = (cell(i - 1) + cell(i)) MOD 9973
    NEXT i
    pass = pass + 1
  LOOP
END SUB

FUNCTION window_sum(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 2 TO n - 1
    acc = (acc + cell(i) - cell(i - 2) + 9973) MOD 9973
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION checksum(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 0 TO n - 1
    acc = (acc * 31 + cell(i)) MOD 65521
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION main() AS INTEGER
  DIM n AS INTEGER
  n = 256
  seed_cells(n)
  relax_forward(n, 8)
  emit(window_sum(n))
  DIM sum AS INTEGER
  sum = checksum(n)
  emit(sum)
  RETURN sum MOD 251
END FUNCTION
)";

extern const char* const kBasicStencilSource = R"(DECLARE SUB emit(v AS INTEGER)
DIM grid(18, 18) AS INTEGER
DIM temp(18, 18) AS INTEGER

SUB init_grid(n AS INTEGER)
  FOR i = 0 TO n - 1
    FOR j = 0 TO n - 1
      grid(i, j) = (i * 19 + j * 7 + 3) MOD 101
      temp(i, j) = 0
    NEXT j
  NEXT i
END SUB

SUB smooth_once(n AS INTEGER)
  FOR i = 1 TO n - 2
    FOR j = 1 TO n - 2
      temp(i, j) = (grid(i - 1, j) + grid(i + 1, j) + grid(i, j - 1) + grid(i, j + 1) + grid(i, j)) MOD 9973
    NEXT j
  NEXT i
  FOR i = 1 TO n - 2
    FOR j = 1 TO n - 2
      grid(i, j) = temp(i, j)
    NEXT j
  NEXT i
END SUB

FUNCTION edge_sum(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 0 TO n - 1
    acc = (acc + grid(i, 0) + grid(0, i)) MOD 65521
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION checksum(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 0 TO n - 1
    FOR j = 0 TO n - 1
      acc = (acc * 17 + grid(i, j)) MOD 65521
    NEXT j
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION main() AS INTEGER
  DIM n AS INTEGER
  n = 18
  init_grid(n)
  DIM round AS INTEGER
  round = 0
  DO WHILE round < 6
    smooth_once(n)
    round = round + 1
  LOOP
  emit(edge_sum(n))
  DIM sum AS INTEGER
  sum = checksum(n)
  emit(sum)
  RETURN sum MOD 251
END FUNCTION
)";

extern const char* const kBasicMatmulSource = R"(DECLARE SUB emit(v AS INTEGER)
DIM lhs(24, 24) AS INTEGER
DIM rhs(24, 24) AS INTEGER
DIM prod(24, 24) AS INTEGER

SUB fill_operands(n AS INTEGER)
  FOR i = 0 TO n - 1
    FOR j = 0 TO n - 1
      lhs(i, j) = (i * 13 + j * 5 + 1) MOD 89
      rhs(i, j) = (i * 7 + j * 11 + 2) MOD 83
    NEXT j
  NEXT i
END SUB

SUB multiply(n AS INTEGER)
  FOR i = 0 TO n - 1
    FOR j = 0 TO n - 1
      DIM dot AS INTEGER
      dot = 0
      FOR k = 0 TO n - 1
        dot = (dot + lhs(i, k) * rhs(k, j)) MOD 9973
      NEXT k
      prod(i, j) = dot
    NEXT j
  NEXT i
END SUB

FUNCTION trace_sum(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 0 TO n - 1
    acc = (acc + prod(i, i) + prod(i, n - 1 - i)) MOD 65521
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION lower_triangle(n AS INTEGER) AS INTEGER
  DIM acc AS INTEGER
  acc = 0
  FOR i = 0 TO n - 1
    FOR j = 0 TO i
      acc = (acc * 29 + prod(i, j)) MOD 65521
    NEXT j
  NEXT i
  RETURN acc
END FUNCTION

FUNCTION main() AS INTEGER
  DIM n AS INTEGER
  n = 24
  fill_operands(n)
  multiply(n)
  emit(trace_sum(n))
  DIM sum AS INTEGER
  sum = lower_triangle(n)
  emit(sum)
  RETURN sum MOD 251
END FUNCTION
)";

}  // namespace hli::workloads
