// The benchmark suite of §4: synthetic mini-C stand-ins for the paper's
// SPEC programs and GNU wc.  Real SPEC sources/inputs are not available
// (and the mini-C front-end is not full C), so each workload reproduces
// its namesake's MEMORY-ACCESS CHARACTER — loop nesting, array vs. pointer
// traffic, subscript patterns, call structure — which is what drives every
// number in Tables 1 and 2.  DESIGN.md §4 documents each substitution.
#pragma once

#include <string>
#include <vector>

#include "frontend/contract.hpp"

namespace hli::workloads {

struct Workload {
  std::string name;    ///< Paper's benchmark name, e.g. "101.tomcatv".
  std::string suite;   ///< GNU / CINT92 / CINT95 / CFP92 / CFP95 / BASIC.
  bool floating_point = false;
  const char* source = nullptr;
  /// Which front-end compiles `source` (docs/thin-waist.md).  The tools
  /// auto-select it when a workload is named on the command line.
  frontend::Language language = frontend::Language::C;
};

/// All 14 mini-C workloads in the paper's Table 1 order.
[[nodiscard]] const std::vector<Workload>& all_workloads();

/// The BASIC-suite workloads (second front-end, LCDD-heavy kernels).
[[nodiscard]] const std::vector<Workload>& basic_workloads();

/// Lookup by name across both suites; null when unknown.
[[nodiscard]] const Workload* find_workload(const std::string& name);

}  // namespace hli::workloads
