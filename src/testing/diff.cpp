#include "testing/diff.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "backend/interp.hpp"
#include "driver/parallel.hpp"
#include "hli/serialize.hpp"
#include "hli/store.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "support/diagnostics.hpp"

namespace hli::testing {

namespace {

/// One hlid server shared by every service-leg check in the process:
/// ephemeral loopback port, real sockets, caches warm across fuzz
/// iterations (which is the point — repeated compiles of reduced
/// variants keep exercising hit paths).  Leaked deliberately: its
/// worker threads must outlive every static destructor.
service::Server& shared_service_server() {
  static service::Server* server = [] {
    service::ServerOptions options;
    options.port = 0;  // Ephemeral.
    options.workers = 2;
    options.compile_jobs = 1;
    auto* s = new service::Server(options);
    s->start();
    return s;
  }();
  return *server;
}

/// Serialized HLI for `source` in the requested encoding, built through
/// the same front-end + builder the pipeline uses.  This is the
/// "front-end ran yesterday, back-end imports the file today" channel.
std::string build_hli_bytes(const std::string& source,
                            const driver::PipelineOptions& options,
                            bool binary) {
  frontend::AnalyzedUnit unit = frontend::analyze_unit(
      source, options.frontend_options,
      binary ? frontend::HliEncoding::Binary : frontend::HliEncoding::Text);
  return std::move(unit.hli_bytes);
}

void apply_defect(backend::RtlProgram& rtl, PlantedDefect defect) {
  backend::RtlFunction* main_fn = rtl.find_function("main");
  if (main_fn == nullptr) return;
  auto& insns = main_fn->insns;
  switch (defect) {
    case PlantedDefect::None:
      return;
    case PlantedDefect::DropStore:
      for (std::size_t i = insns.size(); i-- > 0;) {
        if (insns[i].op == backend::Opcode::Store) {
          insns.erase(insns.begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
      return;
    case PlantedDefect::NegateBranch:
      for (auto& insn : insns) {
        if (insn.op == backend::Opcode::BranchZ) {
          insn.op = backend::Opcode::BranchNZ;
          return;
        }
        if (insn.op == backend::Opcode::BranchNZ) {
          insn.op = backend::Opcode::BranchZ;
          return;
        }
      }
      return;
  }
}

RunObservation observe(const driver::CompiledProgram& compiled,
                       std::uint64_t max_insns) {
  RunObservation obs;
  obs.compile_ok = true;
  // Generated programs are tiny (a few KB of globals, <=16K-trip nests):
  // a small arena and insn budget keep a 13-config differential run
  // cheap, and a budget trip still flags the config as divergent.
  backend::InterpOptions interp;
  interp.memory_bytes = 4u << 20;
  interp.max_insns = max_insns;
  const backend::RunResult run =
      backend::run_program(compiled.rtl, "main", nullptr, interp);
  obs.run_ok = run.ok;
  obs.error = run.error;
  obs.return_value = run.return_value;
  obs.output_hash = run.output_hash;
  obs.emit_count = run.emit_count;
  obs.dynamic_insns = run.dynamic_insns;
  return obs;
}

/// Dynamic loop-dependence oracle: replays the compiled program and, for
/// every loop the classifier reported, records which bytes each
/// iteration touches.  An observed carried dependence (same byte, two
/// iterations, at least one write) must be consistent with the static
/// claim — a DOALL loop may show none, a DOACROSS(d) loop none shorter
/// than d.  The check is one-sided: the oracle can miss dependences
/// (e.g. it ignores callee-depth work), but anything it DOES observe is
/// real, so a contradiction is a genuine classifier unsoundness.
///
/// Loops are keyed on instruction pointers: the analyze leg runs with
/// every transform off, so LoopReport::loop_beg still indexes the
/// executed stream.  Iterations advance on the loop's backedge Jump
/// (labels and Loop notes are not executed, hence not traced); call
/// depth is tracked so a callee re-entering the same code — or a second
/// activation of the loop — never mixes iteration spaces.
class LoopDepOracle final : public backend::TraceSink {
 public:
  LoopDepOracle(const backend::RtlProgram& rtl,
                const std::vector<irdep::LoopReport>& reports) {
    for (const irdep::LoopReport& report : reports) {
      const bool check_doall =
          report.irdep_class == irdep::LoopClass::Doall ||
          report.combined_class == irdep::LoopClass::Doall;
      std::int64_t claimed = 0;  // Strongest claimed min distance.
      if (report.irdep_class == irdep::LoopClass::Doacross) {
        claimed = report.irdep_distance;
      }
      if (report.combined_class == irdep::LoopClass::Doacross) {
        claimed = std::max(claimed, report.combined_distance);
      }
      if (!check_doall && claimed <= 1) continue;  // Nothing falsifiable.
      const backend::RtlFunction* func = nullptr;
      for (const backend::RtlFunction& fn : rtl.functions) {
        if (fn.name == report.function) func = &fn;
      }
      if (func == nullptr) continue;
      const std::size_t beg = report.loop_beg;
      if (beg >= func->insns.size() ||
          func->insns[beg].op != backend::Opcode::LoopBeg) {
        continue;
      }
      // Matching LoopEnd by nesting; top label + unique backedge jump.
      std::size_t end = beg;
      int depth = 0;
      for (std::size_t i = beg; i < func->insns.size(); ++i) {
        if (func->insns[i].op == backend::Opcode::LoopBeg) ++depth;
        if (func->insns[i].op == backend::Opcode::LoopEnd && --depth == 0) {
          end = i;
          break;
        }
      }
      if (end == beg) continue;
      if (func->insns[beg + 1].op != backend::Opcode::Label) continue;
      const std::int64_t top = func->insns[beg + 1].label;
      const backend::Insn* backedge = nullptr;
      for (std::size_t i = beg + 2; i < end; ++i) {
        if (func->insns[i].op == backend::Opcode::Jump &&
            func->insns[i].label == top) {
          backedge = &func->insns[i];
        }
      }
      if (backedge == nullptr) continue;
      Tracked tracked;
      tracked.lo = reinterpret_cast<std::uintptr_t>(&func->insns[beg]);
      tracked.hi = reinterpret_cast<std::uintptr_t>(&func->insns[end]);
      tracked.backedge = backedge;
      tracked.doall = check_doall;
      tracked.claimed_distance = claimed;
      tracked.name = report.function + ":line" + std::to_string(report.line);
      loops_.push_back(std::move(tracked));
    }
    for (const backend::RtlFunction& fn : rtl.functions) {
      defined_.insert(fn.name);
    }
  }

  void on_insn(const backend::TraceEvent& event) override {
    const auto at = reinterpret_cast<std::uintptr_t>(event.insn);
    for (Tracked& loop : loops_) {
      const bool in_range = at > loop.lo && at < loop.hi;
      if (!loop.active) {
        if (in_range) {
          loop.active = true;
          loop.entry_depth = depth_;
          loop.iter = 0;
          loop.bytes.clear();
        } else {
          continue;
        }
      } else if (!in_range && depth_ <= loop.entry_depth) {
        loop.active = false;  // Fell out of the loop: new space next time.
        continue;
      }
      if (!in_range || depth_ != loop.entry_depth) continue;
      if (event.insn == loop.backedge) {
        ++loop.iter;
        continue;
      }
      if (!backend::is_memory_op(event.insn->op)) continue;
      const bool is_store = event.insn->op == backend::Opcode::Store;
      const std::uint8_t size = event.insn->mem.size != 0
                                    ? event.insn->mem.size
                                    : std::uint8_t{1};
      for (std::uint64_t b = 0; b < size; ++b) {
        ByteState& state = loop.bytes[event.address + b];
        if (is_store) {
          if (state.last_read >= 0) check(loop, loop.iter - state.last_read);
          if (state.last_write >= 0) check(loop, loop.iter - state.last_write);
          state.last_write = loop.iter;
        } else {
          if (state.last_write >= 0) check(loop, loop.iter - state.last_write);
          state.last_read = loop.iter;
        }
      }
    }
    if (event.insn->op == backend::Opcode::Call &&
        defined_.count(event.insn->callee) != 0) {
      ++depth_;  // Builtins run inline: no frame, no Return event.
    } else if (event.insn->op == backend::Opcode::Return && depth_ > 0) {
      --depth_;
    }
  }

  [[nodiscard]] const std::vector<std::string>& contradictions() const {
    return contradictions_;
  }

 private:
  struct ByteState {
    std::int64_t last_read = -1;
    std::int64_t last_write = -1;
  };
  struct Tracked {
    std::uintptr_t lo = 0;
    std::uintptr_t hi = 0;
    const backend::Insn* backedge = nullptr;
    bool doall = false;
    std::int64_t claimed_distance = 0;
    std::string name;
    bool active = false;
    bool reported = false;
    std::size_t entry_depth = 0;
    std::int64_t iter = 0;
    std::unordered_map<std::uint64_t, ByteState> bytes;
  };

  void check(Tracked& loop, std::int64_t distance) {
    if (distance <= 0 || loop.reported) return;
    if (loop.doall) {
      loop.reported = true;
      contradictions_.push_back(
          "loop " + loop.name + " classified DOALL but a carried dependence "
          "of distance " + std::to_string(distance) + " was observed");
    } else if (distance < loop.claimed_distance) {
      loop.reported = true;
      contradictions_.push_back(
          "loop " + loop.name + " classified DOACROSS(" +
          std::to_string(loop.claimed_distance) +
          ") but a carried dependence of distance " +
          std::to_string(distance) + " was observed");
    }
  }

  std::vector<Tracked> loops_;
  std::unordered_set<std::string> defined_;
  std::vector<std::string> contradictions_;
  std::size_t depth_ = 0;
};

std::string rtl_dump(const backend::RtlProgram& rtl) {
  std::string out;
  for (const backend::RtlFunction& fn : rtl.functions) {
    out += backend::to_string(fn);
    out += '\n';
  }
  return out;
}

/// Fields that must agree between baseline and a config.  dynamic_insns
/// deliberately excluded: optimizations exist to change it.
void compare(const RunObservation& base, const RunObservation& got,
             const std::string& config, std::vector<Divergence>& out) {
  std::ostringstream detail;
  if (base.run_ok != got.run_ok || base.error != got.error) {
    detail << "trap: baseline={ok=" << base.run_ok << " err='" << base.error
           << "'} got={ok=" << got.run_ok << " err='" << got.error << "'}; ";
  }
  if (base.run_ok && got.run_ok) {
    if (base.return_value != got.return_value) {
      detail << "return_value: baseline=" << base.return_value
             << " got=" << got.return_value << "; ";
    }
    if (base.output_hash != got.output_hash) {
      detail << "output_hash: baseline=" << base.output_hash
             << " got=" << got.output_hash << "; ";
    }
    if (base.emit_count != got.emit_count) {
      detail << "emit_count: baseline=" << base.emit_count
             << " got=" << got.emit_count << "; ";
    }
  }
  std::string text = detail.str();
  if (!text.empty()) out.push_back({config, std::move(text)});
}

DiffConfig make_config(std::string name, bool use_hli) {
  DiffConfig cfg;
  cfg.name = std::move(name);
  cfg.options.use_hli = use_hli;
  cfg.options.verify_hli =
      use_hli ? driver::VerifyMode::Fatal : driver::VerifyMode::Off;
  cfg.options.enable_cse = false;
  cfg.options.enable_constfold = false;
  cfg.options.enable_dce = false;
  cfg.options.enable_licm = false;
  cfg.options.enable_unroll = false;
  cfg.options.enable_sched = false;
  return cfg;
}

void enable_all(driver::PipelineOptions& options) {
  options.enable_cse = true;
  options.enable_constfold = true;
  options.enable_dce = true;
  options.enable_licm = true;
  options.enable_unroll = true;
  options.enable_sched = true;
}

}  // namespace

const char* planted_defect_name(PlantedDefect defect) {
  switch (defect) {
    case PlantedDefect::None: return "none";
    case PlantedDefect::DropStore: return "drop-store";
    case PlantedDefect::NegateBranch: return "negate-branch";
  }
  return "none";
}

bool parse_planted_defect(const std::string& text, PlantedDefect& out) {
  if (text == "none") {
    out = PlantedDefect::None;
  } else if (text == "drop-store") {
    out = PlantedDefect::DropStore;
  } else if (text == "negate-branch") {
    out = PlantedDefect::NegateBranch;
  } else {
    return false;
  }
  return true;
}

DiffConfig baseline_config() { return make_config("baseline", false); }

std::vector<DiffConfig> default_matrix() {
  std::vector<DiffConfig> matrix;

  {  // All native optimizations, no HLI: GCC-local disambiguation only.
    DiffConfig cfg = make_config("nohli-all", false);
    enable_all(cfg.options);
    matrix.push_back(std::move(cfg));
  }
  // Each pass alone under HLI: a miscompile lands on the guilty pass's
  // config name instead of hiding inside the all-on pipeline.
  const struct {
    const char* name;
    bool driver::PipelineOptions::* flag;
  } singles[] = {
      {"hli-cse", &driver::PipelineOptions::enable_cse},
      {"hli-constfold", &driver::PipelineOptions::enable_constfold},
      {"hli-dce", &driver::PipelineOptions::enable_dce},
      {"hli-licm", &driver::PipelineOptions::enable_licm},
      {"hli-unroll", &driver::PipelineOptions::enable_unroll},
      {"hli-sched", &driver::PipelineOptions::enable_sched},
  };
  for (const auto& single : singles) {
    DiffConfig cfg = make_config(single.name, true);
    cfg.options.*single.flag = true;
    matrix.push_back(std::move(cfg));
  }
  {
    DiffConfig cfg = make_config("hli-all", true);
    enable_all(cfg.options);
    matrix.push_back(std::move(cfg));
  }
  {  // Full -O2 shape: hard registers + second scheduling pass.
    DiffConfig cfg = make_config("hli-all-regalloc", true);
    enable_all(cfg.options);
    cfg.options.enable_regalloc = true;
    matrix.push_back(std::move(cfg));
  }
  {  // In-order machine model: different scheduling priorities, same answer.
    DiffConfig cfg = make_config("hli-sched-r4600", true);
    enable_all(cfg.options);
    cfg.options.sched_machine = machine::r4600();
    matrix.push_back(std::move(cfg));
  }
  {  // HLIB binary encoding of the interchange file.
    DiffConfig cfg = make_config("hli-binary", true);
    enable_all(cfg.options);
    cfg.options.hli_encoding = driver::HliEncoding::Binary;
    matrix.push_back(std::move(cfg));
  }
  {  // Round-trip through an external text-format HliStore.
    DiffConfig cfg = make_config("hli-store-text", true);
    enable_all(cfg.options);
    cfg.channel = Channel::StoreText;
    matrix.push_back(std::move(cfg));
  }
  {  // Round-trip through an external mmap-style HLIB HliStore.
    DiffConfig cfg = make_config("hli-store-binary", true);
    enable_all(cfg.options);
    cfg.channel = Channel::StoreBinary;
    matrix.push_back(std::move(cfg));
  }
  {  // Scalar per-pair HLI queries; the flip leg recompiles with batched
     // BlockConflictMatrix planes and requires byte-identical RTL.
    DiffConfig cfg = make_config("hli-scalar-queries", true);
    enable_all(cfg.options);
    cfg.options.enable_regalloc = true;  // Covers sched2's matrix too.
    cfg.options.batch_queries = false;
    cfg.batch_flip_leg = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Thread-pool compile: results must be byte-identical to serial.
    DiffConfig cfg = make_config("hli-parallel", true);
    enable_all(cfg.options);
    cfg.parallel_leg = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Independent-analyzer soundness audit at every pass boundary: a
     // finding aborts the compile (Fatal) and lands as a divergence.
    DiffConfig cfg = make_config("hli-audit-deps", true);
    enable_all(cfg.options);
    cfg.options.audit_deps = driver::VerifyMode::Fatal;
    matrix.push_back(std::move(cfg));
  }
  {  // irdep as a fallback oracle with no HLI: its pruning decisions are
     // load-bearing here, so any unsoundness becomes a semantic diff.
    DiffConfig cfg = make_config("nohli-irdep-fallback", false);
    enable_all(cfg.options);
    cfg.options.irdep_fallback = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Both oracles ANDed: HLI and irdep must agree with the baseline.
    DiffConfig cfg = make_config("hli-irdep-fallback", true);
    enable_all(cfg.options);
    cfg.options.irdep_fallback = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Loop classification + dynamic-oracle consistency: transforms stay
     // off so LoopReport::loop_beg indexes the executed stream.
    DiffConfig cfg = make_config("hli-analyze", true);
    cfg.options.analyze_loops = true;
    cfg.analyze_leg = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Compile service: cold and warm compiles through a real hlid
     // socket must render byte-identical RTL and stats to in-process
     // compile_source — the wire codec and both cache tiers under fuzz.
    DiffConfig cfg = make_config("hli-service", true);
    enable_all(cfg.options);
    cfg.service_leg = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Parallel execution from HLI-unioned plans: the threaded replay
     // must be byte-identical to serial, dynamic_insns included.
    DiffConfig cfg = make_config("hli-exec-threads", true);
    enable_all(cfg.options);
    cfg.options.exec_threads = 4;
    cfg.exec_threads_leg = true;
    matrix.push_back(std::move(cfg));
  }
  {  // Same contract with plans proven by the independent analyzer alone
     // (no HLI): exercises the no-HLI planning path end to end.
    DiffConfig cfg = make_config("nohli-exec-threads", false);
    enable_all(cfg.options);
    cfg.options.exec_threads = 4;
    cfg.exec_threads_leg = true;
    matrix.push_back(std::move(cfg));
  }
  return matrix;
}

DiffResult run_differential(const std::string& source,
                            const std::vector<DiffConfig>& matrix,
                            PlantedDefect defect, std::uint64_t max_insns,
                            frontend::Language language) {
  DiffResult result;

  {
    const DiffConfig base = baseline_config();
    try {
      driver::CompiledProgram compiled =
          driver::compile_source(source, base.options.with_language(language));
      result.baseline = observe(compiled, max_insns);
    } catch (const support::CompileError& e) {
      result.invalid_input = true;
      result.invalid_reason = e.what();
      return result;
    }
    if (!result.baseline.run_ok &&
        result.baseline.error.find("instruction budget") != std::string::npos) {
      // A runaway baseline means the generator's termination discipline
      // broke; treat as invalid input rather than comparing timeouts.
      result.invalid_input = true;
      result.invalid_reason = "baseline exceeded interpreter budget";
      return result;
    }
  }

  for (const DiffConfig& cfg : matrix) {
    driver::PipelineOptions options = cfg.options.with_language(language);
    std::unique_ptr<HliStore> store;
    RunObservation obs;
    try {
      if (cfg.channel != Channel::Direct) {
        store = std::make_unique<HliStore>(build_hli_bytes(
            source, options, cfg.channel == Channel::StoreBinary));
        options.hli_store = store.get();
      }
      driver::CompiledProgram compiled = driver::compile_source(source, options);
      if (cfg.parallel_leg) {
        const std::vector<std::string> sources{source, source};
        std::vector<driver::CompiledProgram> many =
            driver::compile_many(sources, options, 2);
        const std::string serial = rtl_dump(compiled.rtl);
        for (std::size_t i = 0; i < many.size(); ++i) {
          if (rtl_dump(many[i].rtl) != serial) {
            result.divergences.push_back(
                {cfg.name, "compile_many copy " + std::to_string(i) +
                               " RTL differs from serial compile; "});
          }
        }
      }
      if (cfg.batch_flip_leg) {
        driver::PipelineOptions flipped = options;
        flipped.batch_queries = !flipped.batch_queries;
        driver::CompiledProgram other =
            driver::compile_source(source, flipped);
        if (rtl_dump(other.rtl) != rtl_dump(compiled.rtl)) {
          result.divergences.push_back(
              {cfg.name,
               "RTL differs between batched and scalar HLI queries; "});
        }
      }
      if (cfg.service_leg) {
        service::Client client = service::Client::connect_tcp(
            "127.0.0.1", shared_service_server().tcp_port());
        const std::string direct_rtl = service::render_rtl(compiled);
        const std::string direct_stats =
            service::render_program_stats(compiled);
        for (const char* phase : {"cold", "warm"}) {
          try {
            const service::CompileReply reply =
                client.compile({source}, options);
            if (reply.programs.size() != 1) {
              result.divergences.push_back(
                  {cfg.name, std::string("service ") + phase +
                                 " reply program count != 1; "});
              continue;
            }
            if (reply.programs[0].rtl != direct_rtl) {
              result.divergences.push_back(
                  {cfg.name, std::string("service ") + phase +
                                 " RTL differs from direct compile; "});
            }
            if (reply.programs[0].stats != direct_stats) {
              result.divergences.push_back(
                  {cfg.name, std::string("service ") + phase +
                                 " stats differ from direct compile; "});
            }
          } catch (const service::ServiceError& e) {
            result.divergences.push_back(
                {cfg.name, std::string("service ") + phase +
                               " error: " + e.what() + "; "});
          }
        }
        client.close();
      }
      if (cfg.analyze_leg && defect == PlantedDefect::None) {
        // Replay under the dynamic loop-dependence oracle; every carried
        // dependence it observes must fit the classifier's claims.
        LoopDepOracle oracle(compiled.rtl, compiled.loop_reports);
        backend::InterpOptions interp;
        interp.memory_bytes = 4u << 20;
        interp.max_insns = max_insns;
        (void)backend::run_program(compiled.rtl, "main", &oracle, interp);
        for (const std::string& message : oracle.contradictions()) {
          result.divergences.push_back({cfg.name, message + "; "});
        }
      }
      if (cfg.exec_threads_leg && defect == PlantedDefect::None) {
        backend::InterpOptions serial;
        serial.memory_bytes = 4u << 20;
        serial.max_insns = max_insns;
        backend::InterpOptions threaded = serial;
        threaded.exec_threads = 4;
        threaded.min_par_insns = 0;  // Dispatch even tiny generated loops.
        const backend::RunResult s =
            backend::run_program(compiled.rtl, "main", nullptr, serial);
        const backend::RunResult t =
            backend::run_program(compiled.rtl, "main", nullptr, threaded);
        // Stricter than compare(): the parallel runtime replays the SAME
        // RTL, so even dynamic_insns must match exactly.
        std::ostringstream detail;
        if (s.ok != t.ok || s.error != t.error) {
          detail << "threaded trap: serial={ok=" << s.ok << " err='"
                 << s.error << "'} threaded={ok=" << t.ok << " err='"
                 << t.error << "'}; ";
        }
        if (s.return_value != t.return_value) {
          detail << "threaded return_value: serial=" << s.return_value
                 << " threaded=" << t.return_value << "; ";
        }
        if (s.output_hash != t.output_hash) {
          detail << "threaded output_hash: serial=" << s.output_hash
                 << " threaded=" << t.output_hash << "; ";
        }
        if (s.emit_count != t.emit_count) {
          detail << "threaded emit_count: serial=" << s.emit_count
                 << " threaded=" << t.emit_count << "; ";
        }
        if (s.dynamic_insns != t.dynamic_insns) {
          detail << "threaded dynamic_insns: serial=" << s.dynamic_insns
                 << " threaded=" << t.dynamic_insns << "; ";
        }
        std::string text = detail.str();
        if (!text.empty()) {
          result.divergences.push_back({cfg.name, std::move(text)});
        }
      }
      apply_defect(compiled.rtl, defect);
      obs = observe(compiled, max_insns);
    } catch (const support::CompileError& e) {
      // Baseline compiled, this config didn't: verifier finding or a
      // config-dependent front/back-end fault — a divergence either way.
      result.divergences.push_back(
          {cfg.name, std::string("compile failed: ") + e.what() + "; "});
      continue;
    }
    compare(result.baseline, obs, cfg.name, result.divergences);
  }
  return result;
}

std::string describe(const DiffResult& result) {
  std::ostringstream out;
  if (result.invalid_input) {
    out << "invalid input: " << result.invalid_reason << "\n";
    return out.str();
  }
  out << "baseline: ok=" << result.baseline.run_ok
      << " return=" << result.baseline.return_value
      << " output_hash=" << result.baseline.output_hash
      << " emits=" << result.baseline.emit_count
      << " insns=" << result.baseline.dynamic_insns << "\n";
  for (const Divergence& d : result.divergences) {
    out << "DIVERGENCE [" << d.config << "]: " << d.detail << "\n";
  }
  if (result.divergences.empty()) out << "all configurations agree\n";
  return out.str();
}

}  // namespace hli::testing
