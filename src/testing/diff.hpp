// Differential executor: one generated program, every pipeline
// configuration, one verdict.  The unoptimized no-HLI compile is the
// semantic oracle; every other leg of the matrix — per-pass toggles,
// all-passes, HLI on/off, text vs binary encoding, demand-driven
// HliStore import, serial vs compile_many — must reproduce its
// observable behavior exactly (emit stream hash, emit count, return
// value, trap behavior) while passing `--verify-hli=fatal` invariant
// checks at every pass boundary.
//
// The planted-defect hook mutates compiled RTL post-compile (dropping a
// store / negating a branch) to prove the harness actually detects and
// reduces miscompiles; it simulates a buggy pass without shipping one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/pipeline.hpp"

namespace hli::testing {

/// How the HLI reaches the back-end in a configuration.
enum class Channel : std::uint8_t {
  Direct,       ///< compile_source generates + re-reads the HLI itself.
  StoreText,    ///< Pre-built text container behind an external HliStore.
  StoreBinary,  ///< Pre-built HLIB container behind an external HliStore.
};

/// Deliberate post-compile RTL corruption for harness self-tests.
enum class PlantedDefect : std::uint8_t {
  None,
  DropStore,     ///< Deletes main's last Store insn (a lost side effect).
  NegateBranch,  ///< Flips main's first conditional branch sense.
};

[[nodiscard]] const char* planted_defect_name(PlantedDefect defect);
/// Parses "none" / "drop-store" / "negate-branch".
[[nodiscard]] bool parse_planted_defect(const std::string& text,
                                        PlantedDefect& out);

struct DiffConfig {
  std::string name;
  driver::PipelineOptions options;
  Channel channel = Channel::Direct;
  /// Also compile via driver::compile_many (2 copies, 2 jobs) and require
  /// the RTL dump of every copy to be byte-identical to the serial one.
  bool parallel_leg = false;
  /// Also recompile with `batch_queries` flipped and require the RTL dump
  /// to be byte-identical — the BlockConflictMatrix bit-identity contract
  /// (docs/query-batching.md) checked on every fuzzed program.
  bool batch_flip_leg = false;
  /// Re-run the compiled program under a dynamic loop-dependence oracle
  /// and require every observed loop-carried dependence to be consistent
  /// with the DOALL/DOACROSS claims in CompiledProgram::loop_reports
  /// (skipped when a defect is planted — corrupted RTL voids the claims).
  bool analyze_leg = false;
  /// Re-run the compiled program on 4 execution lanes (min_par_insns=0 so
  /// even tiny generated loops dispatch) and require the FULL RunResult —
  /// trap behavior, return value, output hash, emit count, AND
  /// dynamic_insns — to match the serial run: the parallel runtime's
  /// determinism contract.  Skipped when a defect is planted — corrupting
  /// RTL post-compile invalidates the plans' instruction indices.
  bool exec_threads_leg = false;
  /// Also compile through an in-process hlid server over a real socket,
  /// twice — cold (populates the service caches) and warm (served from
  /// them) — and require both replies' RTL dump and canonical stats text
  /// to be byte-identical to the in-process compile.  This fuzzes the
  /// wire codec and both cache tiers against the direct pipeline on
  /// every generated program.
  bool service_leg = false;
};

/// What one configuration observably did.
struct RunObservation {
  bool compile_ok = false;
  bool run_ok = false;
  std::string error;  ///< Compile or trap diagnostic, empty when clean.
  std::int64_t return_value = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t emit_count = 0;
  std::uint64_t dynamic_insns = 0;
};

struct Divergence {
  std::string config;  ///< Matrix entry that disagreed with the baseline.
  std::string detail;  ///< Which fields differed, baseline vs actual.
};

struct DiffResult {
  /// True when the baseline itself failed to compile: the input is
  /// invalid (a generator bug, or a reducer candidate that cut too much),
  /// not a miscompile.
  bool invalid_input = false;
  std::string invalid_reason;
  RunObservation baseline;
  std::vector<Divergence> divergences;

  [[nodiscard]] bool diverged() const { return !divergences.empty(); }
};

/// The oracle configuration: no HLI, every optimization off.
[[nodiscard]] DiffConfig baseline_config();

/// The full matrix checked against the oracle: native passes without HLI,
/// each pass toggled individually under HLI, all passes on, regalloc +
/// second scheduling pass, binary encoding, both HliStore channels,
/// an alternate scheduling machine model, the parallel-driver leg, and
/// two threaded-execution legs (HLI-unioned and irdep-only plans).
/// Every HLI configuration runs with VerifyMode::Fatal.
[[nodiscard]] std::vector<DiffConfig> default_matrix();

/// Compiles and runs `source` under the baseline plus every matrix entry,
/// comparing observations.  `defect` (when not None) corrupts each
/// non-baseline RTL program post-compile — every matrix entry should then
/// diverge, which is the harness's own detection self-test.  `max_insns`
/// caps each interpreter run; a baseline trip marks the input invalid
/// (the generator's termination discipline guarantees small programs, so
/// a runaway is a harness bug — or a reducer candidate that deleted a
/// loop-counter update and must be rejected cheaply).  `language` selects
/// the front-end compiling `source` for the baseline AND every matrix
/// entry — the whole differential harness (store channels, service leg,
/// parallel legs included) runs unchanged over a BASIC program.
[[nodiscard]] DiffResult run_differential(
    const std::string& source, const std::vector<DiffConfig>& matrix,
    PlantedDefect defect = PlantedDefect::None,
    std::uint64_t max_insns = 50'000'000,
    frontend::Language language = frontend::Language::C);

/// Human-readable multi-line report ("config: field baseline=... got=...").
[[nodiscard]] std::string describe(const DiffResult& result);

}  // namespace hli::testing
