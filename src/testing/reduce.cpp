#include "testing/reduce.hpp"

#include <algorithm>
#include <vector>

namespace hli::testing {

namespace {

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= source.size()) {
    const std::size_t end = source.find('\n', start);
    if (end == std::string::npos) {
      if (start < source.size()) lines.push_back(source.substr(start));
      break;
    }
    lines.push_back(source.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::size_t count_nonempty(const std::vector<std::string>& lines) {
  std::size_t n = 0;
  for (const std::string& line : lines) {
    if (line.find_first_not_of(" \t") != std::string::npos) ++n;
  }
  return n;
}

/// Index of the line holding the '}' matching the '{' on `open`, or
/// npos.  The printer places braces only at control-flow boundaries, so
/// counting brace characters per line is exact for printed programs (and
/// merely yields rejected candidates for hand-written ones).
std::size_t matching_close(const std::vector<std::string>& lines,
                           std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < lines.size(); ++i) {
    for (const char c : lines[i]) {
      if (c == '{') ++depth;
      if (c == '}' && --depth == 0) return i;
    }
  }
  return std::string::npos;
}

}  // namespace

ReduceResult reduce_source(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_interesting,
    const ReduceOptions& options) {
  ReduceResult result;
  std::vector<std::string> lines = split_lines(source);
  result.initial_lines = count_nonempty(lines);

  auto check = [&](const std::vector<std::string>& candidate) {
    if (result.checks >= options.max_checks) return false;
    ++result.checks;
    return still_interesting(join_lines(candidate));
  };

  // Phase 1 — Zeller-Hildebrandt ddmin over lines: try deleting chunks
  // at granularity n, doubling n when nothing at the current granularity
  // can go.  Returns with `minimal` true when 1-minimal.
  auto ddmin_lines = [&](bool& minimal) {
    std::size_t n = 2;
    // A zero/one-line input is trivially 1-minimal for line deletion.
    minimal = lines.size() < 2;
    while (lines.size() >= 2 && result.checks < options.max_checks) {
      const std::size_t chunk = std::max<std::size_t>(1, lines.size() / n);
      bool removed = false;
      for (std::size_t start = 0; start < lines.size(); start += chunk) {
        std::vector<std::string> candidate;
        candidate.reserve(lines.size());
        candidate.insert(candidate.end(), lines.begin(),
                         lines.begin() + static_cast<std::ptrdiff_t>(start));
        candidate.insert(
            candidate.end(),
            lines.begin() + static_cast<std::ptrdiff_t>(
                                std::min(start + chunk, lines.size())),
            lines.end());
        if (candidate.size() < lines.size() && check(candidate)) {
          lines = std::move(candidate);
          // Rescale the granularity to the smaller input, per ddmin.
          n = std::max<std::size_t>(2, n - 1);
          removed = true;
          break;
        }
      }
      if (removed) continue;
      if (chunk == 1) {
        minimal = result.checks < options.max_checks;
        return;  // 1-minimal: no single line can be deleted.
      }
      n = std::min(n * 2, lines.size());
    }
    // Exited by shrinking below two lines rather than by exhausting
    // single-line deletions: equally 1-minimal.
    if (lines.size() < 2) minimal = result.checks < options.max_checks;
  };

  // Phase 2 — structural pass: line deletion alone cannot remove a
  // control-flow statement whose header and closing brace must go
  // together (a chunk covering the span rarely aligns once phase 1 has
  // carved the input up).  For every brace pair try (a) deleting the
  // whole span, (b) unwrapping — deleting just the header and close,
  // keeping the body.  Returns true when anything shrank.
  auto unwrap_blocks = [&]() {
    bool shrank = false;
    for (std::size_t i = 0; i < lines.size();) {
      if (lines[i].find('{') == std::string::npos ||
          result.checks >= options.max_checks) {
        ++i;
        continue;
      }
      const std::size_t close = matching_close(lines, i);
      if (close == std::string::npos) {
        ++i;
        continue;
      }
      std::vector<std::string> span(
          lines.begin() + static_cast<std::ptrdiff_t>(i),
          lines.begin() + static_cast<std::ptrdiff_t>(close + 1));
      std::vector<std::string> candidate;
      candidate.assign(lines.begin(),
                       lines.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(),
                       lines.begin() + static_cast<std::ptrdiff_t>(close + 1),
                       lines.end());
      if (check(candidate)) {  // (a) drop the whole statement.
        lines = std::move(candidate);
        shrank = true;
        continue;  // Same index: the next statement slid into place.
      }
      candidate.assign(lines.begin(),
                       lines.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(), span.begin() + 1, span.end() - 1);
      candidate.insert(candidate.end(),
                       lines.begin() + static_cast<std::ptrdiff_t>(close + 1),
                       lines.end());
      if (check(candidate)) {  // (b) unwrap: keep the body.
        lines = std::move(candidate);
        shrank = true;
        continue;
      }
      ++i;
    }
    return shrank;
  };

  // Alternate the phases to fixpoint: unwrapping exposes new single-line
  // deletions (a loop body that only mattered inside the loop), and those
  // deletions expose new unwrappable blocks.
  bool minimal = false;
  ddmin_lines(minimal);
  while (unwrap_blocks() && result.checks < options.max_checks) {
    ddmin_lines(minimal);
  }
  result.minimal = minimal && result.checks < options.max_checks;

  result.source = join_lines(lines);
  result.final_lines = count_nonempty(lines);
  return result;
}

}  // namespace hli::testing
