// Delta-debugging reducer (ddmin over source lines).  Given a mini-C
// source whose differential run diverges, shrink it to a (1-minimal)
// reproducer: no single remaining line can be deleted without losing the
// divergence.  The frontend printer emits one statement per line, so
// line granularity is statement granularity.
#pragma once

#include <functional>
#include <string>

namespace hli::testing {

struct ReduceOptions {
  /// Predicate-evaluation budget; ddmin is O(n^2) worst case and each
  /// check is a full differential run.
  unsigned max_checks = 4000;
};

struct ReduceResult {
  std::string source;        ///< Smallest still-interesting variant found.
  unsigned checks = 0;       ///< Predicate evaluations spent.
  std::size_t initial_lines = 0;
  std::size_t final_lines = 0;  ///< Non-empty lines in `source`.
  bool minimal = false;      ///< 1-minimality reached within the budget.
};

/// Shrinks `source` with ddmin.  `still_interesting` must return true for
/// the original input and for any candidate that preserves the behavior
/// being chased (typically: baseline still compiles AND the differential
/// matrix still reports the same divergence).  Candidates that fail to
/// compile simply return false; the reducer needs no syntax knowledge.
[[nodiscard]] ReduceResult reduce_source(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_interesting,
    const ReduceOptions& options = {});

}  // namespace hli::testing
