// HLI soundness audit (--audit-deps): re-derives dependences from the
// lowered RTL alone and flags pairs where the HLI tables claim total
// independence — may_conflict() == None and an empty LCDD list, exactly
// the combination that licenses reordering/hoisting in the back-end —
// while the independent analyzer PROVES a real dependence.
//
// Only proof-grade irdep answers (Dep::Must, CarriedDep::proven) raise
// findings, so a clean audit is meaningful and a red one is a genuine
// unsoundness in the HLI channel (builder bug, serialization bug, or a
// maintenance update that over-pruned).
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/irdep/analyzer.hpp"
#include "hli/query.hpp"
#include "hli/verify.hpp"

namespace hli::irdep {

struct AuditResult {
  std::vector<verify::Finding> findings;
  std::size_t checks = 0;  ///< Pair comparisons performed.
  [[nodiscard]] bool ok() const { return findings.empty(); }
};

struct AuditOptions {
  std::size_t max_findings = 64;
  /// Pair cap (the audit is O(mem_ops^2) per function).
  std::size_t max_pairs = 250000;
};

/// Audits one function's mapped references against `view`.  `fdi` must
/// be freshly built from the function's CURRENT instruction stream (the
/// pair tests key on instruction positions).
[[nodiscard]] AuditResult audit_function(FunctionDepInfo& fdi,
                                         const query::HliUnitView& view,
                                         const AuditOptions& options = {});

}  // namespace hli::irdep
