// Program-level facts for the independent dependence analyzer: which
// objects' addresses escape (flow-insensitive exposure), and bottom-up
// interprocedural REF/MOD summaries over the call graph.
//
// Everything is derived once from the lowered RTL.  The back-end passes
// only ever delete, move, or value-preservingly rewrite instructions, so
// the sets stay conservative (supersets) for every later pipeline stage.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/irdep/form.hpp"
#include "backend/depinfo.hpp"
#include "backend/rtl.hpp"

namespace hli::irdep {

/// REF/MOD summary of one function, transitively closed over its callees.
struct FnSummary {
  std::vector<bool> ref_globals;  ///< Indexed by global symbol.
  std::vector<bool> mod_globals;
  /// Accesses through statically untracked pointers: may read/write any
  /// *wildable* object (exposed, or address-taken somewhere).
  bool wild_ref = false;
  bool wild_mod = false;
  bool io = false;             ///< Calls emit/emitd (transitively).
  bool unknown_callee = false; ///< Calls an extern we know nothing about.
  bool frame_exposed = false;  ///< This function leaks its frame address.
  std::vector<std::string> callees;
};

class ProgramDepInfo {
 public:
  explicit ProgramDepInfo(const backend::RtlProgram& prog);

  [[nodiscard]] const backend::RtlProgram& prog() const { return *prog_; }

  /// True when some function stores, passes, or returns the address of
  /// global `sym` (so loaded pointers may target it).
  [[nodiscard]] bool global_exposed(std::int32_t sym) const;
  /// Exposed or address-taken anywhere: the objects an untracked pointer
  /// can reach.
  [[nodiscard]] bool global_wildable(std::int32_t sym) const;
  [[nodiscard]] bool frame_exposed(const std::string& function) const;

  /// May an access with an untracked (Many) address in `function` touch
  /// object `o`?  Uses exposure plus the function's local address-takens.
  [[nodiscard]] bool wild_may_touch(const FunctionModel& model,
                                    const Object& o) const;

  /// Summary for a program function; nullptr for externs/builtins.
  [[nodiscard]] const FnSummary* summary(const std::string& name) const;

  /// kCallReadsLoc/kCallWritesLoc effect of calling `callee` on an
  /// object, from the perspective of `caller_model`'s function.
  [[nodiscard]] unsigned call_effect_on(const std::string& callee,
                                        const FunctionModel& caller_model,
                                        const Object& o) const;

  /// True when `callee` provably has no memory effect and no IO — safe
  /// to ignore for loop classification.
  [[nodiscard]] bool call_pure(const std::string& callee) const;
  /// True when `callee` (transitively) performs observable output.
  [[nodiscard]] bool call_io(const std::string& callee) const;

 private:
  const backend::RtlProgram* prog_;
  std::unordered_map<std::string, FnSummary> summaries_;
  std::vector<bool> exposed_globals_;
  std::vector<bool> addr_taken_globals_;
  bool wild_exposure_ = false;  ///< A Many-tainted value escaped somewhere.
};

/// True for the interpreter's built-in externs that touch no program
/// memory: the math library plus the emit()/emitd() output sinks (which
/// are IO but read only their register argument).
[[nodiscard]] bool is_memoryless_builtin(const std::string& name);
/// True for the output sinks (IO).
[[nodiscard]] bool is_io_builtin(const std::string& name);

}  // namespace hli::irdep
