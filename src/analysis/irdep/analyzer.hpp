// Pair dependence tests of the independent RTL-level analyzer, and the
// DepOracle implementation the driver hands to sched/cse/licm in no-HLI
// configurations (PipelineOptions::irdep_fallback).
//
// Answers are three-valued.  `No` and `Must` are *proofs* (the audit
// turns a Must against an HLI NoConflict into an unsoundness finding),
// so they are only produced under the value-stability rules documented
// in form.hpp; everything else degrades to May.
#pragma once

#include <cstdint>
#include <memory>

#include "analysis/irdep/form.hpp"
#include "analysis/irdep/refmod.hpp"
#include "backend/depinfo.hpp"

namespace hli::irdep {

enum class Dep : std::uint8_t { No, May, Must };

/// Loop-carried dependence answer for one pair w.r.t. one loop.
struct CarriedDep {
  Dep dep = Dep::May;
  /// True when every feasible carried distance was enumerated; then
  /// `min_distance` is a sound DOACROSS distance (no real dependence can
  /// be shorter).
  bool distance_known = false;
  std::int64_t min_distance = 0;
  /// Audit-grade: a real carried dependence provably occurs in every
  /// complete execution (canonical loop, unconditional straight-line
  /// body, known trip count covering the distance).
  bool proven = false;
};

class FunctionDepInfo {
 public:
  FunctionDepInfo(const ProgramDepInfo& prog,
                  const backend::RtlFunction& func);

  [[nodiscard]] FunctionModel& model() { return model_; }
  [[nodiscard]] const ProgramDepInfo& program() const { return *prog_; }

  /// May/Must/No same-iteration dependence between the memory ops at
  /// insn positions `a` and `b` (store-ness is the caller's concern).
  [[nodiscard]] Dep same_iter(std::size_t a, std::size_t b);

  /// Loop-carried dependence between `a` and `b` across iterations of
  /// the loop whose LoopBeg is at `loop_beg` (both must be inside it).
  [[nodiscard]] CarriedDep carried(std::size_t loop_beg, std::size_t a,
                                   std::size_t b);

  /// Effect of the call at `call_pos` on the location of the memory op
  /// at `mem_pos` (kCallReadsLoc | kCallWritesLoc).
  [[nodiscard]] unsigned call_effect(std::size_t call_pos,
                                     std::size_t mem_pos);

 private:
  const ProgramDepInfo* prog_;
  FunctionModel model_;
};

/// DepOracle over a FunctionDepInfo; refresh() rebuilds the model from
/// the (possibly rewritten) function.
class IrdepOracle final : public backend::DepOracle {
 public:
  IrdepOracle(const ProgramDepInfo& prog, const backend::RtlFunction& func);
  ~IrdepOracle() override;

  [[nodiscard]] bool may_conflict(std::size_t a, std::size_t b) override;
  [[nodiscard]] unsigned call_effect(std::size_t call_idx,
                                     std::size_t mem_idx) override;
  [[nodiscard]] bool may_carry(std::size_t loop_beg, std::size_t a,
                               std::size_t b) override;
  void refresh(const backend::RtlFunction& func) override;

  /// Total queries answered / queries answered with a No proof, for the
  /// irdep.fallback_* telemetry counters.
  [[nodiscard]] std::uint64_t queries() const { return queries_; }
  [[nodiscard]] std::uint64_t pruned() const { return pruned_; }

 private:
  const ProgramDepInfo* prog_;
  std::unique_ptr<FunctionDepInfo> info_;
  std::uint64_t queries_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace hli::irdep
