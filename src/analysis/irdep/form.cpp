#include "analysis/irdep/form.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace hli::irdep {

namespace {

using backend::Insn;
using backend::kNoReg;
using backend::Opcode;
using backend::Reg;

/// Magnitude bound on coefficients and constants during expansion; forms
/// that would exceed it degrade to non-affine instead of overflowing.
constexpr std::int64_t kMagLimit = std::int64_t{1} << 45;

[[nodiscard]] bool in_mag(std::int64_t v) {
  return v > -kMagLimit && v < kMagLimit;
}

/// a*b when the product stays within the magnitude bound.
[[nodiscard]] std::optional<std::int64_t> checked_mul(std::int64_t a,
                                                     std::int64_t b) {
  const __int128 p = static_cast<__int128>(a) * b;
  if (p <= -static_cast<__int128>(kMagLimit) ||
      p >= static_cast<__int128>(kMagLimit)) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(p);
}

Taint join(Taint a, Taint b) {
  if (a.kind == Taint::Clean) return b;
  if (b.kind == Taint::Clean) return a;
  if (a.kind == Taint::Many || b.kind == Taint::Many) return {Taint::Many, {}};
  if (same_object(a.obj, b.obj)) return a;
  return {Taint::Many, {}};
}

[[nodiscard]] bool taint_eq(Taint a, Taint b) {
  if (a.kind != b.kind) return false;
  return a.kind != Taint::One || same_object(a.obj, b.obj);
}

/// The object a LoadAddr instruction roots: label >= 0 names a global,
/// label == -1 a slot of the current frame.
[[nodiscard]] Object loadaddr_object(const Insn& insn) {
  if (insn.label >= 0) return {ObjKind::Global, insn.label};
  return {ObjKind::Frame, -1};
}

/// Expands registers into linear forms over terminal registers.
class Expander {
 public:
  explicit Expander(const FunctionModel& m) : m_(m) {}

  /// Expands `coeff * value(r)` as read at instruction `read_pos`.
  void expand(Reg r, std::int64_t coeff, std::uint32_t read_pos) {
    if (!ok_) return;
    if (r == kNoReg || ++steps_ > 200) {
      ok_ = false;
      return;
    }
    note_read(r, read_pos);
    if (m_.is_param(r) || m_.defs_of(r).size() != 1) {
      terminal(r, coeff);
      return;
    }
    const std::uint32_t d = m_.defs_of(r).front();
    mark_intermediate(r, d);
    expand_def(m_.func().insns[d], d, coeff, r);
  }

  /// Expands `coeff * value-written-by(insn at d)`.  `self` is the reg
  /// being defined (terminal fallback target), kNoReg to fail instead.
  void expand_def(const Insn& insn, std::uint32_t d, std::int64_t coeff,
                  Reg self) {
    if (!ok_) return;
    switch (insn.op) {
      case Opcode::LoadImm:
        if (insn.is_float) break;
        add_const(coeff, insn.imm);
        return;
      case Opcode::LoadAddr:
        if (coeff != 1 || have_object_) {
          ok_ = false;
          return;
        }
        have_object_ = true;
        object_ = loadaddr_object(insn);
        add_const(1, insn.imm);
        return;
      case Opcode::Move:
        expand(insn.rs1, coeff, d);
        return;
      case Opcode::Add:
        expand(insn.rs1, coeff, d);
        expand(insn.rs2, coeff, d);
        return;
      case Opcode::Sub:
        expand(insn.rs1, coeff, d);
        expand(insn.rs2, -coeff, d);
        return;
      case Opcode::Neg:
        expand(insn.rs1, -coeff, d);
        return;
      case Opcode::Mul: {
        if (insn.is_float) break;
        std::optional<std::int64_t> k = as_const(insn.rs2, 0);
        Reg var = insn.rs1;
        if (!k) {
          k = as_const(insn.rs1, 0);
          var = insn.rs2;
        }
        if (k) {
          if (*k == 0) return;  // Term vanishes.
          if (const auto scaled = checked_mul(coeff, *k)) {
            expand(var, *scaled, d);
            return;
          }
        }
        break;
      }
      case Opcode::Shl: {
        if (insn.is_float) break;
        const std::optional<std::int64_t> k = as_const(insn.rs2, 0);
        if (k && *k >= 0 && *k < 32) {
          if (const auto scaled = checked_mul(coeff, std::int64_t{1} << *k)) {
            expand(insn.rs1, *scaled, d);
            return;
          }
        }
        break;
      }
      default:
        break;
    }
    // Opaque definition (Load/Call/Div/float/...): the reg is a terminal.
    if (self == kNoReg) {
      ok_ = false;
      return;
    }
    terminal(self, coeff);
  }

  /// Moves the accumulated expansion into `out`; `ok` reports whether the
  /// form is affine.  Object/uses are transferred either way.
  void finish(LinearForm& out) {
    out.affine = ok_;
    if (have_object_) out.obj = object_;
    out.constant = constant_;
    for (const auto& [reg, coeff] : coeffs_) {
      if (coeff != 0) out.terms.push_back({reg, coeff});
    }
    for (auto& [reg, use] : uses_) {
      std::sort(use.reads.begin(), use.reads.end());
      out.uses.push_back(std::move(use));
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }

 private:
  void terminal(Reg r, std::int64_t coeff) {
    coeffs_[r] += coeff;
    if (!in_mag(coeffs_[r])) ok_ = false;
    uses_[r].terminal = true;
  }

  void note_read(Reg r, std::uint32_t pos) {
    Use& u = uses_[r];
    u.reg = r;
    u.reads.push_back(pos);
  }

  void mark_intermediate(Reg r, std::uint32_t def_pos) {
    uses_[r].def_pos = def_pos;
  }

  void add_const(std::int64_t coeff, std::int64_t v) {
    const auto scaled = checked_mul(coeff, v);
    if (!scaled || !in_mag(constant_ + *scaled)) {
      ok_ = false;
      return;
    }
    constant_ += *scaled;
  }

  /// Constant value of `r` when its single-definition chain folds; such
  /// values are position-independent, so no reads are recorded.
  [[nodiscard]] std::optional<std::int64_t> as_const(Reg r, int depth) const {
    if (r == kNoReg || depth > 40) return std::nullopt;
    if (m_.is_param(r) || m_.defs_of(r).size() != 1) return std::nullopt;
    const Insn& insn = m_.func().insns[m_.defs_of(r).front()];
    if (insn.is_float) return std::nullopt;
    switch (insn.op) {
      case Opcode::LoadImm:
        return insn.imm;
      case Opcode::Move:
        return as_const(insn.rs1, depth + 1);
      case Opcode::Neg: {
        const auto v = as_const(insn.rs1, depth + 1);
        return v ? std::optional<std::int64_t>(-*v) : std::nullopt;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        const auto a = as_const(insn.rs1, depth + 1);
        const auto b = as_const(insn.rs2, depth + 1);
        if (!a || !b || !in_mag(*a) || !in_mag(*b)) return std::nullopt;
        std::int64_t v = 0;
        if (insn.op == Opcode::Add) v = *a + *b;
        if (insn.op == Opcode::Sub) v = *a - *b;
        if (insn.op == Opcode::Mul) {
          if (std::abs(*a) > (std::int64_t{1} << 22) ||
              std::abs(*b) > (std::int64_t{1} << 22)) {
            return std::nullopt;
          }
          v = *a * *b;
        }
        return in_mag(v) ? std::optional<std::int64_t>(v) : std::nullopt;
      }
      default:
        return std::nullopt;
    }
  }

  const FunctionModel& m_;
  bool ok_ = true;
  int steps_ = 0;
  bool have_object_ = false;
  Object object_;
  std::int64_t constant_ = 0;
  std::map<Reg, std::int64_t> coeffs_;
  std::map<Reg, Use> uses_;
};

}  // namespace

Reg def_of(const Insn& insn) {
  switch (insn.op) {
    case Opcode::Store:
    case Opcode::Label:
    case Opcode::Jump:
    case Opcode::BranchZ:
    case Opcode::BranchNZ:
    case Opcode::Return:
    case Opcode::LoopBeg:
    case Opcode::LoopEnd:
      return kNoReg;
    default:
      return insn.rd;
  }
}

void reads_of(const Insn& insn, std::vector<Reg>& out) {
  auto add = [&out](Reg r) {
    if (r != kNoReg) out.push_back(r);
  };
  switch (insn.op) {
    case Opcode::LoadImm:
    case Opcode::LoadAddr:
    case Opcode::Label:
    case Opcode::Jump:
    case Opcode::LoopBeg:
    case Opcode::LoopEnd:
      return;
    case Opcode::Call:
      for (const Reg r : insn.args) add(r);
      return;
    case Opcode::Store:
      add(insn.rs1);
      add(insn.rs2);
      return;
    case Opcode::Move:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::IntToFp:
    case Opcode::FpToInt:
    case Opcode::Load:
    case Opcode::BranchZ:
    case Opcode::BranchNZ:
    case Opcode::Return:
      add(insn.rs1);
      return;
    default:  // Two-operand arithmetic and comparisons.
      add(insn.rs1);
      add(insn.rs2);
      return;
  }
}

FunctionModel::FunctionModel(const backend::RtlProgram& prog,
                             const backend::RtlFunction& func)
    : prog_(&prog), func_(&func) {
  build_blocks();
  build_defs();
  build_taint();
  build_loops();
  forms_.resize(func.insns.size());
}

void FunctionModel::build_blocks() {
  block_.resize(func_->insns.size());
  std::uint32_t b = 0;
  for (std::size_t pos = 0; pos < func_->insns.size(); ++pos) {
    const Opcode op = func_->insns[pos].op;
    if (op == Opcode::Label) ++b;  // A label starts a new block.
    block_[pos] = b;
    if (backend::is_branch(op)) ++b;  // A branch ends the current one.
  }
}

void FunctionModel::build_defs() {
  defs_.resize(static_cast<std::size_t>(std::max(func_->num_regs, Reg{0})));
  param_.assign(defs_.size(), false);
  for (const Reg r : func_->param_regs) {
    if (r >= 0 && static_cast<std::size_t>(r) < param_.size()) {
      param_[static_cast<std::size_t>(r)] = true;
    }
  }
  for (std::size_t pos = 0; pos < func_->insns.size(); ++pos) {
    const Reg rd = def_of(func_->insns[pos]);
    if (rd >= 0 && static_cast<std::size_t>(rd) < defs_.size()) {
      defs_[static_cast<std::size_t>(rd)].push_back(
          static_cast<std::uint32_t>(pos));
    }
  }
}

const std::vector<std::uint32_t>& FunctionModel::defs_of(Reg r) const {
  static const std::vector<std::uint32_t> kEmpty;
  if (r < 0 || static_cast<std::size_t>(r) >= defs_.size()) return kEmpty;
  return defs_[static_cast<std::size_t>(r)];
}

bool FunctionModel::def_in(Reg r, std::size_t lo, std::size_t hi) const {
  const auto& defs = defs_of(r);
  auto it = std::upper_bound(defs.begin(), defs.end(),
                             static_cast<std::uint32_t>(lo));
  return it != defs.end() && *it < hi;
}

bool FunctionModel::is_param(Reg r) const {
  return r >= 0 && static_cast<std::size_t>(r) < param_.size() &&
         param_[static_cast<std::size_t>(r)];
}

Taint FunctionModel::taint_of(Reg r) const {
  if (r < 0 || static_cast<std::size_t>(r) >= taint_.size()) {
    return {Taint::Many, {}};
  }
  return taint_[static_cast<std::size_t>(r)];
}

bool FunctionModel::addr_taken_local(const Object& o) const {
  if (o.kind == ObjKind::Frame) return addr_taken_frame_;
  if (o.kind == ObjKind::Global && o.symbol >= 0 &&
      static_cast<std::size_t>(o.symbol) < addr_taken_global_.size()) {
    return addr_taken_global_[static_cast<std::size_t>(o.symbol)];
  }
  return true;  // Unknown objects: assume reachable.
}

void FunctionModel::build_taint() {
  taint_.assign(defs_.size(), Taint{});
  addr_taken_global_.assign(prog_->globals.size(), false);
  for (std::size_t i = 0; i < param_.size(); ++i) {
    if (param_[i]) taint_[i] = {Taint::Many, {}};
  }
  // Monotone fixpoint: each register climbs Clean -> One -> Many at most
  // twice, so the sweep count is bounded.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Insn& insn : func_->insns) {
      const Reg rd = def_of(insn);
      if (rd < 0 || static_cast<std::size_t>(rd) >= taint_.size()) continue;
      Taint in{};
      switch (insn.op) {
        case Opcode::LoadImm:
        case Opcode::CmpLt:
        case Opcode::CmpLe:
        case Opcode::CmpGt:
        case Opcode::CmpGe:
        case Opcode::CmpEq:
        case Opcode::CmpNe:
          in = {Taint::Clean, {}};
          break;
        case Opcode::LoadAddr: {
          const Object o = loadaddr_object(insn);
          in = {Taint::One, o};
          if (o.kind == ObjKind::Frame) {
            addr_taken_frame_ = true;
          } else if (o.symbol >= 0 && static_cast<std::size_t>(o.symbol) <
                                          addr_taken_global_.size()) {
            addr_taken_global_[static_cast<std::size_t>(o.symbol)] = true;
          }
          break;
        }
        case Opcode::Load:
        case Opcode::Call:
          in = {Taint::Many, {}};
          break;
        default:
          in = join(taint_of(insn.rs1), taint_of(insn.rs2));
          break;
      }
      const Taint merged =
          join(taint_[static_cast<std::size_t>(rd)], in);
      if (!taint_eq(merged, taint_[static_cast<std::size_t>(rd)])) {
        taint_[static_cast<std::size_t>(rd)] = merged;
        changed = true;
      }
    }
  }
}

LinearForm FunctionModel::value_form(std::size_t pos) const {
  LinearForm out;
  const Insn& insn = func_->insns[pos];
  if (def_of(insn) == kNoReg) return out;
  Expander ex(*this);
  ex.expand_def(insn, static_cast<std::uint32_t>(pos), 1, kNoReg);
  ex.finish(out);
  return out;
}

const LinearForm& FunctionModel::address_form(std::size_t pos) {
  if (forms_[pos] != nullptr) return *forms_[pos];
  auto form = std::make_unique<LinearForm>();
  const Insn& insn = func_->insns[pos];
  form->size = insn.mem.size;

  Expander ex(*this);
  ex.expand(insn.rs1, 1, static_cast<std::uint32_t>(pos));
  ex.finish(*form);
  form->constant += insn.mem.const_offset;
  if (!in_mag(form->constant)) form->affine = false;

  // Reconcile with what lowering recorded and with the points-to fact of
  // the address register: the MemRef's static base and a One-object
  // taint can pin the object even when the expansion could not.
  Object claimed;
  if (insn.mem.base == backend::MemBase::Symbol) {
    claimed = {ObjKind::Global, insn.mem.symbol};
  } else if (insn.mem.base == backend::MemBase::Frame) {
    claimed = {ObjKind::Frame, -1};
  } else {
    const Taint t = taint_of(insn.rs1);
    if (t.kind == Taint::One) claimed = t.obj;
  }
  if (known(form->obj) && known(claimed) &&
      !same_object(form->obj, claimed)) {
    // Lowering and the expansion disagree about the object — trust
    // neither.
    form->obj = {};
    form->affine = false;
  } else if (!known(form->obj)) {
    form->obj = claimed;
  }
  forms_[pos] = std::move(form);
  return *forms_[pos];
}

void FunctionModel::build_loops() {
  std::vector<std::size_t> stack;
  for (std::size_t pos = 0; pos < func_->insns.size(); ++pos) {
    const Opcode op = func_->insns[pos].op;
    if (op == Opcode::LoopBeg) {
      stack.push_back(loops_.size());
      LoopShape shape;
      shape.beg = static_cast<std::uint32_t>(pos);
      shape.innermost = true;
      loops_.push_back(shape);
    } else if (op == Opcode::LoopEnd && !stack.empty()) {
      LoopShape& loop = loops_[stack.back()];
      stack.pop_back();
      loop.end = static_cast<std::uint32_t>(pos);
      if (!stack.empty()) loops_[stack.back()].innermost = false;
    }
  }
  // Drop unmatched LoopBegs (never produced by lowering; be safe).
  loops_.erase(std::remove_if(loops_.begin(), loops_.end(),
                              [](const LoopShape& l) { return l.end == 0; }),
               loops_.end());

  for (LoopShape& loop : loops_) {
    if (!loop.innermost) continue;
    const Insn& beg = func_->insns[loop.beg];
    if (beg.induction == kNoReg) continue;

    // Canonical shape: Label top right after LoopBeg; one conditional
    // branch to the end label; a single Label (cont) between that branch
    // and the unique backedge Jump; no other control flow in between;
    // Label end directly before LoopEnd.
    if (loop.beg + 1 >= loop.end) continue;
    const Insn& top = func_->insns[loop.beg + 1];
    const Insn& endlab = func_->insns[loop.end - 1];
    if (top.op != Opcode::Label || endlab.op != Opcode::Label) continue;

    std::size_t exit_branch = 0;
    for (std::size_t p = loop.beg + 2; p < loop.end - 1; ++p) {
      const Insn& insn = func_->insns[p];
      if (insn.op == Opcode::Label || backend::is_branch(insn.op)) {
        if ((insn.op == Opcode::BranchZ || insn.op == Opcode::BranchNZ) &&
            insn.label == endlab.label) {
          exit_branch = p;
        }
        break;
      }
    }
    if (exit_branch == 0) continue;

    std::size_t cont_label = 0;
    std::size_t backedge = 0;
    bool clean = true;
    for (std::size_t p = exit_branch + 1; p < loop.end - 1 && clean; ++p) {
      const Insn& insn = func_->insns[p];
      if (insn.op == Opcode::Label) {
        if (cont_label != 0) clean = false;
        cont_label = p;
      } else if (insn.op == Opcode::Jump) {
        if (insn.label == top.label && p + 1 == loop.end - 1 &&
            cont_label != 0) {
          backedge = p;
        } else {
          clean = false;
        }
      } else if (backend::is_branch(insn.op)) {
        clean = false;
      }
    }
    if (!clean || backedge == 0 || cont_label < exit_branch) continue;

    // The induction register must have exactly one definition inside the
    // loop, in the step region, and its value form must be iv + step
    // with the iv sampled before the step itself.
    const Reg iv = beg.induction;
    std::uint32_t step_def = 0;
    std::size_t in_loop_defs = 0;
    for (const std::uint32_t d : defs_of(iv)) {
      if (d > loop.beg && d < loop.end) {
        ++in_loop_defs;
        step_def = d;
      }
    }
    if (in_loop_defs != 1 || step_def <= cont_label || step_def >= backedge) {
      continue;
    }
    const LinearForm step = value_form(step_def);
    if (!step.affine || known(step.obj) || step.terms.size() != 1 ||
        step.terms[0].reg != iv || step.terms[0].coeff != 1 ||
        step.constant != beg.loop_step || beg.loop_step == 0) {
      continue;
    }
    bool iv_reads_ok = true;
    for (const Use& u : step.uses) {
      if (u.reg != iv) continue;
      for (const std::uint32_t r : u.reads) {
        if (r <= loop.beg || r >= step_def) iv_reads_ok = false;
      }
    }
    if (!iv_reads_ok) continue;

    loop.canonical = true;
    loop.body_begin = static_cast<std::uint32_t>(exit_branch + 1);
    loop.body_end = static_cast<std::uint32_t>(cont_label);
    loop.step_def = step_def;
    loop.induction = iv;
    loop.step = beg.loop_step;
    loop.trip = beg.trip_count;

    // Initial IV value: with exactly one other definition, placed before
    // the LoopBeg in its own basic block (no label in between, so every
    // path into the loop executes it last) and folding to a constant, the
    // value entering iteration 0 is known.
    const std::vector<std::uint32_t>& iv_defs = defs_of(iv);
    if (iv_defs.size() == 2) {
      const std::uint32_t d0 = iv_defs[0] == step_def ? iv_defs[1] : iv_defs[0];
      if (d0 < loop.beg && block_of(d0) == block_of(loop.beg)) {
        const LinearForm entry = value_form(d0);
        if (entry.affine && !known(entry.obj) && entry.terms.empty()) {
          loop.init = entry.constant;
        }
      }
    }
  }
}

const LoopShape* FunctionModel::loop_at(std::size_t beg_pos) const {
  for (const LoopShape& loop : loops_) {
    if (loop.beg == beg_pos) return &loop;
  }
  return nullptr;
}

const LoopShape* FunctionModel::enclosing_loop(std::size_t pos) const {
  const LoopShape* best = nullptr;
  for (const LoopShape& loop : loops_) {
    if (loop.beg < pos && pos < loop.end &&
        (best == nullptr || loop.beg > best->beg)) {
      best = &loop;
    }
  }
  return best;
}

}  // namespace hli::irdep
