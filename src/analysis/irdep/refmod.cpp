#include "analysis/irdep/refmod.hpp"

namespace hli::irdep {

namespace {

using backend::Insn;
using backend::Opcode;

bool set_flag(bool& flag) {
  const bool was = flag;
  flag = true;
  return !was;
}

bool set_global(std::vector<bool>& set, std::int32_t sym) {
  if (sym < 0 || static_cast<std::size_t>(sym) >= set.size()) return false;
  const bool was = set[static_cast<std::size_t>(sym)];
  set[static_cast<std::size_t>(sym)] = true;
  return !was;
}

bool union_into(std::vector<bool>& dst, const std::vector<bool>& src) {
  bool changed = false;
  for (std::size_t i = 0; i < dst.size() && i < src.size(); ++i) {
    if (src[i] && !dst[i]) {
      dst[i] = true;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

bool is_io_builtin(const std::string& name) {
  return name == "emit" || name == "emitd";
}

bool is_memoryless_builtin(const std::string& name) {
  return is_io_builtin(name) || name == "sqrt" || name == "fabs" ||
         name == "sin" || name == "cos" || name == "exp" || name == "log" ||
         name == "pow" || name == "floor" || name == "ceil" || name == "atan";
}

ProgramDepInfo::ProgramDepInfo(const backend::RtlProgram& prog)
    : prog_(&prog) {
  const std::size_t nglobals = prog.globals.size();
  exposed_globals_.assign(nglobals, false);
  addr_taken_globals_.assign(nglobals, false);

  // Direct facts per function: local accesses, exposure, callees.
  for (const backend::RtlFunction& func : prog.functions) {
    FunctionModel model(prog, func);
    FnSummary& s = summaries_[func.name];
    s.ref_globals.assign(nglobals, false);
    s.mod_globals.assign(nglobals, false);

    for (std::size_t i = 0; i < nglobals; ++i) {
      if (model.addr_taken_local({ObjKind::Global,
                                  static_cast<std::int32_t>(i)})) {
        addr_taken_globals_[i] = true;
      }
    }

    auto expose = [&](backend::Reg r) {
      const Taint t = model.taint_of(r);
      if (t.kind == Taint::Clean) return;
      if (t.kind == Taint::Many) {
        wild_exposure_ = true;
        s.frame_exposed = true;
        return;
      }
      if (t.obj.kind == ObjKind::Frame) {
        s.frame_exposed = true;
      } else if (t.obj.kind == ObjKind::Global) {
        set_global(exposed_globals_, t.obj.symbol);
      }
    };

    for (std::size_t pos = 0; pos < func.insns.size(); ++pos) {
      const Insn& insn = func.insns[pos];
      switch (insn.op) {
        case Opcode::Load:
        case Opcode::Store: {
          const Object o = model.address_form(pos).obj;
          auto& direct =
              insn.op == Opcode::Load ? s.ref_globals : s.mod_globals;
          bool& wild = insn.op == Opcode::Load ? s.wild_ref : s.wild_mod;
          if (o.kind == ObjKind::Global) {
            set_global(direct, o.symbol);
          } else if (o.kind == ObjKind::Unknown) {
            wild = true;
          }
          // Own-frame accesses are invisible to callers.
          break;
        }
        case Opcode::Call:
          for (const backend::Reg r : insn.args) expose(r);
          s.callees.push_back(insn.callee);
          break;
        case Opcode::Return:
          expose(insn.rs1);
          break;
        default:
          break;
      }
      if (insn.op == Opcode::Store) expose(insn.rs2);
    }
  }

  // Transitive closure over the call graph (monotone boolean lattice).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [name, s] : summaries_) {
      for (const std::string& callee : s.callees) {
        if (is_io_builtin(callee)) {
          if (set_flag(s.io)) changed = true;
          continue;
        }
        if (is_memoryless_builtin(callee)) continue;
        auto it = summaries_.find(callee);
        if (it == summaries_.end()) {
          // Unknown extern: assume it can do anything.
          if (!s.unknown_callee) {
            s.unknown_callee = true;
            s.wild_ref = s.wild_mod = s.io = true;
            changed = true;
          }
          continue;
        }
        const FnSummary& c = it->second;
        changed |= union_into(s.ref_globals, c.ref_globals);
        changed |= union_into(s.mod_globals, c.mod_globals);
        if (c.wild_ref && !s.wild_ref) s.wild_ref = changed = true;
        if (c.wild_mod && !s.wild_mod) s.wild_mod = changed = true;
        if (c.io && !s.io) s.io = changed = true;
        if (c.unknown_callee && !s.unknown_callee) {
          s.unknown_callee = changed = true;
        }
      }
    }
  }
}

bool ProgramDepInfo::global_exposed(std::int32_t sym) const {
  if (wild_exposure_) return true;
  return sym < 0 || static_cast<std::size_t>(sym) >= exposed_globals_.size() ||
         exposed_globals_[static_cast<std::size_t>(sym)];
}

bool ProgramDepInfo::global_wildable(std::int32_t sym) const {
  if (global_exposed(sym)) return true;
  return sym < 0 ||
         static_cast<std::size_t>(sym) >= addr_taken_globals_.size() ||
         addr_taken_globals_[static_cast<std::size_t>(sym)];
}

bool ProgramDepInfo::frame_exposed(const std::string& function) const {
  if (wild_exposure_) return true;
  const FnSummary* s = summary(function);
  return s == nullptr || s->frame_exposed;
}

bool ProgramDepInfo::wild_may_touch(const FunctionModel& model,
                                    const Object& o) const {
  switch (o.kind) {
    case ObjKind::Global:
      return global_exposed(o.symbol) || model.addr_taken_local(o);
    case ObjKind::Frame:
      return frame_exposed(model.func().name);
    case ObjKind::Unknown:
      return true;
  }
  return true;
}

const FnSummary* ProgramDepInfo::summary(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

unsigned ProgramDepInfo::call_effect_on(const std::string& callee,
                                        const FunctionModel& caller_model,
                                        const Object& o) const {
  if (is_memoryless_builtin(callee)) return 0;
  const FnSummary* s = summary(callee);
  if (s == nullptr) {
    // Unknown extern: it can only reach objects whose addresses escape.
    if (o.kind == ObjKind::Unknown || wild_may_touch(caller_model, o)) {
      return backend::kCallReadsLoc | backend::kCallWritesLoc;
    }
    return 0;
  }
  unsigned effect = 0;
  switch (o.kind) {
    case ObjKind::Global: {
      const bool wildable = o.symbol < 0 || global_wildable(o.symbol);
      const bool direct_ref =
          o.symbol >= 0 &&
          static_cast<std::size_t>(o.symbol) < s->ref_globals.size() &&
          s->ref_globals[static_cast<std::size_t>(o.symbol)];
      const bool direct_mod =
          o.symbol >= 0 &&
          static_cast<std::size_t>(o.symbol) < s->mod_globals.size() &&
          s->mod_globals[static_cast<std::size_t>(o.symbol)];
      if (direct_ref || (s->wild_ref && wildable)) {
        effect |= backend::kCallReadsLoc;
      }
      if (direct_mod || (s->wild_mod && wildable)) {
        effect |= backend::kCallWritesLoc;
      }
      break;
    }
    case ObjKind::Frame: {
      // The callee reaches the caller's frame only through an escaped
      // pointer to it.
      const bool reachable = frame_exposed(caller_model.func().name);
      if (s->wild_ref && reachable) effect |= backend::kCallReadsLoc;
      if (s->wild_mod && reachable) effect |= backend::kCallWritesLoc;
      break;
    }
    case ObjKind::Unknown: {
      bool any_ref = s->wild_ref;
      bool any_mod = s->wild_mod;
      for (std::size_t i = 0; i < s->ref_globals.size(); ++i) {
        any_ref = any_ref || s->ref_globals[i];
        any_mod = any_mod || s->mod_globals[i];
      }
      if (any_ref) effect |= backend::kCallReadsLoc;
      if (any_mod) effect |= backend::kCallWritesLoc;
      break;
    }
  }
  return effect;
}

bool ProgramDepInfo::call_pure(const std::string& callee) const {
  if (is_io_builtin(callee)) return false;
  if (is_memoryless_builtin(callee)) return true;
  const FnSummary* s = summary(callee);
  if (s == nullptr) return false;
  if (s->wild_ref || s->wild_mod || s->io || s->unknown_callee) return false;
  for (std::size_t i = 0; i < s->ref_globals.size(); ++i) {
    if (s->ref_globals[i] || s->mod_globals[i]) return false;
  }
  return true;
}

bool ProgramDepInfo::call_io(const std::string& callee) const {
  if (is_io_builtin(callee)) return true;
  if (is_memoryless_builtin(callee)) return false;
  const FnSummary* s = summary(callee);
  return s == nullptr || s->io;
}

}  // namespace hli::irdep
