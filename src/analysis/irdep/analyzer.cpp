#include "analysis/irdep/analyzer.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>

namespace hli::irdep {

namespace {

using backend::Insn;
using backend::Opcode;

/// Byte ranges [cA, cA+szA) and [cB, cB+szB) with delta = cA - cB
/// intersect iff -szA < delta < szB.
bool overlap(std::int64_t delta, std::int64_t sz_a, std::int64_t sz_b) {
  return delta > -sz_a && delta < sz_b;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// GCD exclusion with the free terms folded out: a dependence needs byte
/// offsets bA in [0, szA), bB in [0, szB) with  g | (delta + bA - bB).
/// True = provably no solution (No dependence through these terms).
bool gcd_excludes(std::int64_t g, std::int64_t delta, std::int64_t sz_a,
                  std::int64_t sz_b) {
  if (g <= 0) return false;
  for (std::int64_t ba = 0; ba < sz_a; ++ba) {
    for (std::int64_t bb = 0; bb < sz_b; ++bb) {
      const std::int64_t x = delta + ba - bb;
      if (((x % g) + g) % g == 0) return false;
    }
  }
  return true;
}

/// Per-register difference of the two forms' terms, excluding `skip`.
/// (Coefficients are bounded by 2^45, so the differences cannot
/// overflow.)
void residual_coeffs(const LinearForm& fa, const LinearForm& fb,
                     backend::Reg skip, std::vector<std::int64_t>& out) {
  std::map<backend::Reg, std::int64_t> diff;
  for (const Term& t : fa.terms) {
    if (t.reg != skip) diff[t.reg] += t.coeff;
  }
  for (const Term& t : fb.terms) {
    if (t.reg != skip) diff[t.reg] -= t.coeff;
  }
  out.clear();
  for (const auto& [reg, c] : diff) {
    (void)reg;
    if (c != 0) out.push_back(c);
  }
}

/// Are the two forms' sampled register values provably identical?  Both
/// positions must share a basic block, and for every consumed register
/// (union across both forms) all reads must sit in one block with no
/// redefinition strictly between the first and last read.
bool comparable(const FunctionModel& model, const LinearForm& fa,
                std::size_t pa, const LinearForm& fb, std::size_t pb) {
  if (model.block_of(pa) != model.block_of(pb)) return false;
  std::map<backend::Reg, std::vector<std::uint32_t>> reads;
  for (const LinearForm* f : {&fa, &fb}) {
    for (const Use& u : f->uses) {
      auto& v = reads[u.reg];
      v.insert(v.end(), u.reads.begin(), u.reads.end());
    }
  }
  for (auto& [reg, v] : reads) {
    std::sort(v.begin(), v.end());
    const std::uint32_t block = model.block_of(v.front());
    for (const std::uint32_t r : v) {
      if (model.block_of(r) != block) return false;
    }
    if (model.def_in(reg, v.front(), v.back())) return false;
  }
  return true;
}

/// Is the form's value a function of the iteration number alone within
/// one activation of canonical loop `L`?  Terminals must be the loop's
/// induction register (every read before the in-loop step) or invariant
/// across the loop; in-loop intermediates must be read in their own
/// block after their definition.
bool loop_stable(const FunctionModel& model, const LinearForm& f,
                 const LoopShape& l) {
  for (const Use& u : f.uses) {
    if (u.terminal) {
      if (u.reg == l.induction) {
        for (const std::uint32_t r : u.reads) {
          if (r <= l.beg || r >= l.step_def) return false;
        }
      } else if (model.def_in(u.reg, l.beg, l.end)) {
        return false;
      }
      continue;
    }
    const std::uint32_t d = u.def_pos;
    if (d > l.beg && d < l.end) {
      const std::uint32_t block = model.block_of(d);
      for (const std::uint32_t r : u.reads) {
        if (r <= d || model.block_of(r) != block) return false;
      }
    }
    // Defined outside the loop: single definition => invariant inside.
  }
  return true;
}

/// ceil/floor division for exact integer interval bounds.
std::int64_t floor_div(std::int64_t n, std::int64_t d) {
  std::int64_t q = n / d;
  if ((n % d != 0) && ((n < 0) != (d < 0))) --q;
  return q;
}
std::int64_t ceil_div(std::int64_t n, std::int64_t d) {
  std::int64_t q = n / d;
  if ((n % d != 0) && ((n < 0) == (d < 0))) ++q;
  return q;
}

constexpr std::int64_t kMagLimit = std::int64_t{1} << 45;

bool mul_in_range(std::int64_t a, std::int64_t b, std::int64_t& out) {
  const __int128 p = static_cast<__int128>(a) * b;
  if (p > kMagLimit || p < -kMagLimit) return false;
  out = static_cast<std::int64_t>(p);
  return true;
}

}  // namespace

FunctionDepInfo::FunctionDepInfo(const ProgramDepInfo& prog,
                                 const backend::RtlFunction& func)
    : prog_(&prog), model_(prog.prog(), func) {
  // Snapshot every memory op's address form from the pristine stream now:
  // consumers (the scheduler in particular) permute already-processed
  // regions in place before querying later ones, and a lazily computed
  // form would chase definition indices into rewritten code.  Positions
  // recorded in the forms stay valid at block granularity — permutation
  // never moves an instruction across a label or branch.
  for (std::size_t pos = 0; pos < func.insns.size(); ++pos) {
    if (backend::is_memory_op(func.insns[pos].op)) {
      (void)model_.address_form(pos);
    }
  }
}

Dep FunctionDepInfo::same_iter(std::size_t a, std::size_t b) {
  const LinearForm& fa = model_.address_form(a);
  const LinearForm& fb = model_.address_form(b);

  // Object-level disambiguation first: it needs no affine precision.
  if (known(fa.obj) && known(fb.obj)) {
    if (!same_object(fa.obj, fb.obj)) return Dep::No;
  } else if (known(fa.obj) || known(fb.obj)) {
    const Object& o = known(fa.obj) ? fa.obj : fb.obj;
    return prog_->wild_may_touch(model_, o) ? Dep::May : Dep::No;
  } else {
    return Dep::May;
  }

  if (!fa.affine || !fb.affine) return Dep::May;
  const auto sz_a = static_cast<std::int64_t>(fa.size);
  const auto sz_b = static_cast<std::int64_t>(fb.size);
  const std::int64_t delta = fa.constant - fb.constant;

  // Fully constant offsets into the same object: exact answer, no value
  // identity needed.
  if (fa.terms.empty() && fb.terms.empty()) {
    return overlap(delta, sz_a, sz_b) ? Dep::Must : Dep::No;
  }

  std::vector<std::int64_t> residual;
  residual_coeffs(fa, fb, backend::kNoReg, residual);

  if (comparable(model_, fa, a, fb, b)) {
    // Matching terms cancel exactly (the sampled values are identical).
    if (residual.empty()) {
      return overlap(delta, sz_a, sz_b) ? Dep::Must : Dep::No;
    }
    std::int64_t g = 0;
    for (const std::int64_t c : residual) g = gcd64(g, c);
    return gcd_excludes(g, delta, sz_a, sz_b) ? Dep::No : Dep::May;
  }

  // No value identity: every term is an independent free variable.
  std::int64_t g = 0;
  for (const Term& t : fa.terms) g = gcd64(g, t.coeff);
  for (const Term& t : fb.terms) g = gcd64(g, t.coeff);
  return gcd_excludes(g, delta, sz_a, sz_b) ? Dep::No : Dep::May;
}

CarriedDep FunctionDepInfo::carried(std::size_t loop_beg, std::size_t a,
                                    std::size_t b) {
  CarriedDep may;  // default: {May, unknown distance}
  const LoopShape* l = model_.loop_at(loop_beg);
  if (l == nullptr) return may;

  const LinearForm& fa = model_.address_form(a);
  const LinearForm& fb = model_.address_form(b);

  // Distinct objects can never alias, across iterations or not.
  if (known(fa.obj) && known(fb.obj)) {
    if (!same_object(fa.obj, fb.obj)) return {Dep::No, false, 0, false};
  } else if (known(fa.obj) || known(fb.obj)) {
    const Object& o = known(fa.obj) ? fa.obj : fb.obj;
    if (!prog_->wild_may_touch(model_, o)) return {Dep::No, false, 0, false};
    return may;
  } else {
    return may;
  }

  if (!l->canonical) return may;
  if (l->trip && *l->trip <= 1) {
    // At most one iteration executes: no cross-iteration dependence.
    return {Dep::No, false, 0, false};
  }
  if (!fa.affine || !fb.affine) return may;
  if (!loop_stable(model_, fa, *l) || !loop_stable(model_, fb, *l)) {
    return may;
  }

  const auto sz_a = static_cast<std::int64_t>(fa.size);
  const auto sz_b = static_cast<std::int64_t>(fb.size);
  const std::int64_t delta = fa.constant - fb.constant;
  const std::int64_t iv_a = fa.coeff_of(l->induction);
  const std::int64_t iv_b = fb.coeff_of(l->induction);

  std::vector<std::int64_t> residual;
  residual_coeffs(fa, fb, l->induction, residual);

  // Audit-grade existence needs both references on the unconditional
  // straight-line body path.
  const bool unconditional = a >= l->body_begin && a < l->body_end &&
                             b >= l->body_begin && b < l->body_end;

  if (iv_a == iv_b) {
    std::int64_t v = 0;
    if (!mul_in_range(iv_a, l->step, v)) return may;

    if (residual.empty()) {
      if (v == 0) {
        // Both addresses are invariant across iterations.
        if (!overlap(delta, sz_a, sz_b)) return {Dep::No, false, 0, false};
        CarriedDep r{Dep::May, true, 1, false};
        if (unconditional && l->trip && *l->trip >= 2) {
          r.dep = Dep::Must;
          r.proven = true;
        }
        return r;
      }
      // addr_A(i) - addr_B(j) = v*e + delta with e = i - j != 0; a
      // carried dependence at distance |e| needs overlap(v*e + delta).
      // v*e must lie in (-szA - delta, szB - delta): a window of width
      // szA + szB, so at most a handful of integer solutions.
      std::int64_t e_lo, e_hi;
      if (v > 0) {
        e_lo = floor_div(-sz_a - delta, v) + 1;
        e_hi = ceil_div(sz_b - delta, v) - 1;
      } else {
        e_lo = floor_div(-(sz_b - delta), -v) + 1;
        e_hi = ceil_div(-(-sz_a - delta), -v) - 1;
      }
      std::int64_t best = 0;
      bool any = false;
      bool best_proven = false;
      for (std::int64_t e = e_lo; e <= e_hi; ++e) {
        if (e == 0) continue;
        const std::int64_t d = e < 0 ? -e : e;
        if (l->trip && d > *l->trip - 1) continue;
        if (!any || d < best) {
          best = d;
          best_proven = unconditional && l->trip && *l->trip >= d + 1;
        } else if (d == best) {
          best_proven = best_proven ||
                        (unconditional && l->trip && *l->trip >= d + 1);
        }
        any = true;
      }
      if (!any) return {Dep::No, false, 0, false};
      CarriedDep r{Dep::May, true, best, false};
      if (best_proven) {
        r.dep = Dep::Must;
        r.proven = true;
      }
      return r;
    }

    // Residual invariant free terms: GCD over them plus the iteration
    // delta's coefficient.
    std::int64_t g = v < 0 ? -v : v;
    for (const std::int64_t c : residual) g = gcd64(g, c);
    if (gcd_excludes(g, delta, sz_a, sz_b)) return {Dep::No, false, 0, false};
    return may;
  }

  // Different induction coefficients (e.g. A[2i] vs A[i], or the
  // crossing pair A[i] vs A[C-i]).  Substituting the IV's value
  // v = init + step*i turns the address difference into
  //   D(i, j) = delta + (iv_a - iv_b)*init + va*i - vb*j
  // over iteration numbers i, j — the initial value no longer cancels
  // the way it does for equal coefficients, so without a known init no
  // proof is possible.
  if (!l->init) return may;
  std::int64_t va = 0, vb = 0, init_shift = 0;
  if (!mul_in_range(iv_a, l->step, va) || !mul_in_range(iv_b, l->step, vb) ||
      !mul_in_range(iv_a - iv_b, *l->init, init_shift)) {
    return may;
  }
  const std::int64_t delta0 = delta + init_shift;
  std::int64_t g = gcd64(va, vb);
  for (const std::int64_t c : residual) g = gcd64(g, c);
  if (gcd_excludes(g, delta0, sz_a, sz_b)) return {Dep::No, false, 0, false};

  if (residual.empty() && l->trip) {
    // Banerjee-style extreme bounds of D(i,j) over i,j in [0, trip); an
    // empty intersection with the overlap window (-szA, szB) disproves
    // any dependence (carried or not).
    const std::int64_t t = *l->trip - 1;
    std::int64_t va_t = 0, vb_t = 0;
    if (mul_in_range(va, t, va_t) && mul_in_range(vb, t, vb_t)) {
      const std::int64_t min_d =
          delta0 + std::min<std::int64_t>(0, va_t) -
          std::max<std::int64_t>(0, vb_t);
      const std::int64_t max_d =
          delta0 + std::max<std::int64_t>(0, va_t) -
          std::min<std::int64_t>(0, vb_t);
      if (max_d <= -sz_a || min_d >= sz_b) return {Dep::No, false, 0, false};
    }
  }
  return may;
}

unsigned FunctionDepInfo::call_effect(std::size_t call_pos,
                                      std::size_t mem_pos) {
  const Insn& call = model_.func().insns[call_pos];
  if (call.op != Opcode::Call) {
    return backend::kCallReadsLoc | backend::kCallWritesLoc;
  }
  const Object o = model_.address_form(mem_pos).obj;
  return prog_->call_effect_on(call.callee, model_, o);
}

IrdepOracle::IrdepOracle(const ProgramDepInfo& prog,
                         const backend::RtlFunction& func)
    : prog_(&prog),
      info_(std::make_unique<FunctionDepInfo>(prog, func)) {}

IrdepOracle::~IrdepOracle() = default;

bool IrdepOracle::may_conflict(std::size_t a, std::size_t b) {
  ++queries_;
  const bool may = info_->same_iter(a, b) != Dep::No;
  if (!may) ++pruned_;
  return may;
}

unsigned IrdepOracle::call_effect(std::size_t call_idx, std::size_t mem_idx) {
  ++queries_;
  const unsigned effect = info_->call_effect(call_idx, mem_idx);
  if (effect == 0) ++pruned_;
  return effect;
}

bool IrdepOracle::may_carry(std::size_t loop_beg, std::size_t a,
                            std::size_t b) {
  ++queries_;
  const bool may = info_->carried(loop_beg, a, b).dep != Dep::No;
  if (!may) ++pruned_;
  return may;
}

void IrdepOracle::refresh(const backend::RtlFunction& func) {
  info_ = std::make_unique<FunctionDepInfo>(*prog_, func);
}

}  // namespace hli::irdep
