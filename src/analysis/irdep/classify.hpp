// DOALL/DOACROSS/Serial loop classification on top of the independent
// dependence analyzer, with an optional HLI-refined second column.
//
// Claims are sound in the direction the differential fuzzer checks:
//   * Doall      — no loop-carried dependence exists (beyond the
//                  induction register of a verified canonical loop).
//   * Doacross d — every carried dependence has distance >= d (d >= 1,
//                  so Doacross(1) is always a safe statement).
//   * Serial     — no parallelism claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/irdep/analyzer.hpp"
#include "hli/query.hpp"

namespace hli::irdep {

enum class LoopClass : std::uint8_t { Doall, Doacross, Serial };

[[nodiscard]] const char* to_string(LoopClass c);

/// Classification of one loop under irdep facts alone and under
/// irdep united with the HLI tables (equal when no view was supplied).
struct LoopReport {
  std::string function;
  std::uint32_t loop_beg = 0;  ///< LoopBeg insn position at classify time.
  format::RegionId region = format::kNoRegion;
  std::uint32_t line = 0;
  bool innermost = false;

  LoopClass irdep_class = LoopClass::Serial;
  std::int64_t irdep_distance = 0;  ///< Min distance for Doacross.
  std::string irdep_reason;         ///< Why not Doall (empty for Doall).

  LoopClass combined_class = LoopClass::Serial;
  std::int64_t combined_distance = 0;
  std::string combined_reason;

  /// Execution-plan column, filled by backend::parexec::parallelize_function
  /// when the pipeline runs with exec_threads > 1: whether the loop carries
  /// a runtime plan, and why not when it doesn't.  The planner re-proves
  /// everything on the final instruction stream, so a classified DOALL can
  /// still be unplanned (e.g. a float accumulator blocks privatization).
  bool planned = false;
  LoopClass plan_class = LoopClass::Serial;
  std::int64_t plan_distance = 0;
  std::string plan_reason;
};

/// HLI's loop-carried answer for one memory-op pair w.r.t. `region`.
/// Only may_conflict()==None is an independence proof; Definite LCDD
/// entries with distances refine the distance set (see classify.cpp for
/// the soundness argument).  Shared with the parexec planner, which
/// unions these facts with the analyzer's own carried() answers.
struct HliCarried {
  bool answered = false;  ///< Items mapped and region known.
  bool none = false;      ///< Provably no dependence (disjoint classes).
  bool distance_known = false;
  std::int64_t min_distance = 0;
};

[[nodiscard]] HliCarried hli_carried(const query::HliUnitView& view,
                                     format::RegionId region,
                                     format::ItemId a, format::ItemId b);

/// Classifies every loop of `func`.  `view` (nullable) supplies the HLI
/// tables for the combined column; without it the columns are equal.
[[nodiscard]] std::vector<LoopReport> classify_function(
    const ProgramDepInfo& prog, const backend::RtlFunction& func,
    const query::HliUnitView* view);

/// Fixed-width table of the reports (one line per loop).
[[nodiscard]] std::string render_loop_table(
    const std::vector<LoopReport>& reports);

/// JSON array of the reports (stable key order, one object per loop).
[[nodiscard]] std::string render_loop_json(
    const std::vector<LoopReport>& reports);

}  // namespace hli::irdep
