// DOALL/DOACROSS/Serial loop classification on top of the independent
// dependence analyzer, with an optional HLI-refined second column.
//
// Claims are sound in the direction the differential fuzzer checks:
//   * Doall      — no loop-carried dependence exists (beyond the
//                  induction register of a verified canonical loop).
//   * Doacross d — every carried dependence has distance >= d (d >= 1,
//                  so Doacross(1) is always a safe statement).
//   * Serial     — no parallelism claim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/irdep/analyzer.hpp"
#include "hli/query.hpp"

namespace hli::irdep {

enum class LoopClass : std::uint8_t { Doall, Doacross, Serial };

[[nodiscard]] const char* to_string(LoopClass c);

/// Classification of one loop under irdep facts alone and under
/// irdep united with the HLI tables (equal when no view was supplied).
struct LoopReport {
  std::string function;
  std::uint32_t loop_beg = 0;  ///< LoopBeg insn position at classify time.
  format::RegionId region = format::kNoRegion;
  std::uint32_t line = 0;
  bool innermost = false;

  LoopClass irdep_class = LoopClass::Serial;
  std::int64_t irdep_distance = 0;  ///< Min distance for Doacross.
  std::string irdep_reason;         ///< Why not Doall (empty for Doall).

  LoopClass combined_class = LoopClass::Serial;
  std::int64_t combined_distance = 0;
  std::string combined_reason;
};

/// Classifies every loop of `func`.  `view` (nullable) supplies the HLI
/// tables for the combined column; without it the columns are equal.
[[nodiscard]] std::vector<LoopReport> classify_function(
    const ProgramDepInfo& prog, const backend::RtlFunction& func,
    const query::HliUnitView* view);

/// Fixed-width table of the reports (one line per loop).
[[nodiscard]] std::string render_loop_table(
    const std::vector<LoopReport>& reports);

/// JSON array of the reports (stable key order, one object per loop).
[[nodiscard]] std::string render_loop_json(
    const std::vector<LoopReport>& reports);

}  // namespace hli::irdep
