// Per-function model for the independent RTL-level dependence analyzer
// (irdep): basic blocks, register definition sites, a flow-insensitive
// points-to lattice over address registers, loop shapes, and — the core
// device — linear address forms.
//
// A linear form describes the address a Load/Store computes as
//
//     object_base + constant + sum(coeff_k * reg_k)
//
// by expanding the address register through chains of single-definition
// pure instructions (LoadImm/LoadAddr/Move/Add/Sub/Neg, Mul/Shl by
// constants).  Registers with several definitions, parameters, and
// opaque values (Load/Call results, Div, float ops) become *terminal*
// symbolic terms.  Every register consumed on the way — terminals and
// intermediates — is recorded together with the instruction positions
// that read it, because soundness of comparing two forms hinges on the
// sampled register values being provably equal:
//
//  * same-iteration comparisons require, per consumed register, that all
//    read positions (across both forms) sit in one basic block with no
//    redefinition strictly between the first and last read;
//  * cross-iteration (loop-carried) tests require each form to be
//    loop-stable: terminals are either the loop's induction register
//    (read before its in-loop step) or invariant (no definition inside
//    the loop), and in-loop intermediates are read in their own block
//    after their definition.
//
// Everything here is recomputed from the current RTL on demand — no HLI
// input of any kind — so the analyzer can serve as an independent second
// opinion on the HLI tables (audit), as a DOALL/DOACROSS classifier, and
// as a no-HLI fallback oracle for the back-end passes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "backend/rtl.hpp"

namespace hli::irdep {

/// The memory object an address resolves to.  The whole frame of a
/// function is a single object: distinct slots are told apart by the
/// constant term of the form.
enum class ObjKind : std::uint8_t { Unknown, Global, Frame };

struct Object {
  ObjKind kind = ObjKind::Unknown;
  std::int32_t symbol = -1;  ///< RtlProgram::globals index for Global.
};

[[nodiscard]] inline bool known(const Object& o) {
  return o.kind != ObjKind::Unknown;
}
[[nodiscard]] inline bool same_object(const Object& a, const Object& b) {
  if (a.kind != b.kind) return false;
  return a.kind != ObjKind::Global || a.symbol == b.symbol;
}

/// Flow-insensitive points-to fact for one register: derived from no
/// address at all, from exactly one object's address, or from several /
/// statically untracked addresses (loaded pointers, call results,
/// parameters).
struct Taint {
  enum Kind : std::uint8_t { Clean, One, Many };
  Kind kind = Clean;
  Object obj;  ///< Valid for One.
};

/// One symbolic term of a linear form.
struct Term {
  backend::Reg reg = backend::kNoReg;
  std::int64_t coeff = 0;
};

/// One register consumed while expanding a form, with every instruction
/// position that read it.  Terminals carry opaque values; intermediates
/// are the single-definition pure registers the expansion looked through.
struct Use {
  backend::Reg reg = backend::kNoReg;
  bool terminal = false;
  std::uint32_t def_pos = 0;  ///< The single definition (intermediates).
  std::vector<std::uint32_t> reads;
};

struct LinearForm {
  /// True when constant+terms fully describe the address relative to the
  /// object base.  False forms still carry the object when the MemRef or
  /// the points-to lattice pinned it down.
  bool affine = false;
  Object obj;
  std::int64_t constant = 0;
  std::uint8_t size = 0;  ///< Access width in bytes.
  std::vector<Term> terms;  ///< Terminal terms, sorted by reg, coeffs != 0.
  std::vector<Use> uses;    ///< All consumed regs (terminals first-seen order).

  [[nodiscard]] std::int64_t coeff_of(backend::Reg r) const {
    for (const Term& t : terms) {
      if (t.reg == r) return t.coeff;
    }
    return 0;
  }
};

/// One loop note pair, plus the canonical For-loop shape when the RTL
/// still matches what lowering emitted (LoopBeg; Label top; cond;
/// BranchZ end; straight-line body; Label cont; step; Jump top; Label
/// end; LoopEnd) and the induction register's unique in-loop step could
/// be verified against the LoopBeg note.  Proof-grade (Must / provable
/// No) carried-dependence answers are only produced for canonical loops;
/// transformed shapes degrade to May, never to a wrong proof.
struct LoopShape {
  std::uint32_t beg = 0;  ///< LoopBeg position.
  std::uint32_t end = 0;  ///< LoopEnd position.
  bool innermost = false;

  bool canonical = false;
  std::uint32_t body_begin = 0;  ///< First insn of the unconditional body.
  std::uint32_t body_end = 0;    ///< One past it (the Label cont).
  std::uint32_t step_def = 0;    ///< The unique in-loop def of the IV.
  backend::Reg induction = backend::kNoReg;
  std::int64_t step = 0;  ///< Verified per-iteration IV delta.
  std::optional<std::int64_t> trip;
  /// IV value on loop entry, when its unique pre-loop definition sits in
  /// the LoopBeg's own basic block (so every activation runs it) and
  /// folds to a constant.  Needed to relate subscripts with *different*
  /// induction coefficients through iteration numbers.
  std::optional<std::int64_t> init;
};

class FunctionModel {
 public:
  FunctionModel(const backend::RtlProgram& prog,
                const backend::RtlFunction& func);

  [[nodiscard]] const backend::RtlFunction& func() const { return *func_; }
  [[nodiscard]] const backend::RtlProgram& prog() const { return *prog_; }

  [[nodiscard]] std::uint32_t block_of(std::size_t pos) const {
    return block_[pos];
  }
  /// Definition positions of `r`, sorted ascending (excludes the implicit
  /// entry definition of parameter registers).
  [[nodiscard]] const std::vector<std::uint32_t>& defs_of(backend::Reg r) const;
  /// Any definition of `r` strictly inside (lo, hi)?
  [[nodiscard]] bool def_in(backend::Reg r, std::size_t lo,
                            std::size_t hi) const;
  [[nodiscard]] bool is_param(backend::Reg r) const;

  [[nodiscard]] Taint taint_of(backend::Reg r) const;
  /// True when this function takes the address of `o` (LoadAddr).
  [[nodiscard]] bool addr_taken_local(const Object& o) const;

  /// Linear address form of the Load/Store at `pos` (cached).
  const LinearForm& address_form(std::size_t pos);

  /// Linear form of the value the instruction at `pos` writes to its
  /// destination (used to verify induction steps); non-affine on opaque
  /// ops.
  [[nodiscard]] LinearForm value_form(std::size_t pos) const;

  [[nodiscard]] const std::vector<LoopShape>& loops() const { return loops_; }
  /// Loop whose LoopBeg note sits at `beg_pos`; nullptr when none.
  [[nodiscard]] const LoopShape* loop_at(std::size_t beg_pos) const;
  /// Innermost loop whose (beg, end) span contains `pos`; nullptr if none.
  [[nodiscard]] const LoopShape* enclosing_loop(std::size_t pos) const;

 private:
  void build_blocks();
  void build_defs();
  void build_taint();
  void build_loops();

  const backend::RtlProgram* prog_;
  const backend::RtlFunction* func_;
  std::vector<std::uint32_t> block_;
  std::vector<std::vector<std::uint32_t>> defs_;
  std::vector<bool> param_;
  std::vector<Taint> taint_;
  std::vector<bool> addr_taken_global_;
  bool addr_taken_frame_ = false;
  std::vector<LoopShape> loops_;
  std::vector<std::unique_ptr<LinearForm>> forms_;
};

/// Register written by `insn` (kNoReg when none).
[[nodiscard]] backend::Reg def_of(const backend::Insn& insn);
/// Registers read by `insn`, appended to `out`.
void reads_of(const backend::Insn& insn, std::vector<backend::Reg>& out);

}  // namespace hli::irdep
