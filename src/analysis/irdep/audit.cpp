#include "analysis/irdep/audit.hpp"

#include <sstream>

#include "support/telemetry.hpp"

namespace hli::irdep {

namespace {

using backend::Insn;
using backend::Opcode;

const telemetry::Counter c_audit_checks =
    telemetry::counter("irdep.audit_checks");
const telemetry::Counter c_audit_findings =
    telemetry::counter("irdep.audit_findings");

/// Does HLI claim the pair can never interact?  This mirrors the exact
/// combination the passes act on (e.g. LICM hoists when may_conflict is
/// None AND the loop's LCDD list is empty); a Maybe anywhere is a
/// conservative answer and never audited.
bool hli_claims_no_conflict(const query::HliUnitView& view, format::ItemId a,
                            format::ItemId b) {
  return view.may_conflict(a, b) == query::EquivAcc::None;
}

std::string pair_detail(const char* claim, const Insn& a, const Insn& b,
                        const char* proof) {
  std::ostringstream out;
  out << claim << " for references at line " << a.line << " and line "
      << b.line << ", but the RTL-level analyzer proves " << proof;
  return out.str();
}

}  // namespace

AuditResult audit_function(FunctionDepInfo& fdi,
                           const query::HliUnitView& view,
                           const AuditOptions& options) {
  AuditResult result;
  const FunctionModel& model = fdi.model();
  const backend::RtlFunction& func = model.func();

  std::vector<std::size_t> mems;
  for (std::size_t pos = 0; pos < func.insns.size(); ++pos) {
    const Insn& insn = func.insns[pos];
    if (backend::is_memory_op(insn.op) &&
        insn.mem.hli_item != format::kNoItem) {
      mems.push_back(pos);
    }
  }

  auto add = [&](verify::Code code, const Insn& a, const Insn& b,
                 std::string detail) {
    if (result.findings.size() >= options.max_findings) return;
    verify::Finding finding;
    finding.code = code;
    finding.item = a.mem.hli_item;
    finding.class_id = b.mem.hli_item;  // The partner reference.
    finding.detail = std::move(detail);
    result.findings.push_back(std::move(finding));
  };

  // Check 1: same-iteration conflicts.  irdep Must (same location when
  // both execute, at least one a store) vs. HLI "never the same
  // location".
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < mems.size() && pairs < options.max_pairs; ++i) {
    for (std::size_t j = i + 1; j < mems.size() && pairs < options.max_pairs;
         ++j) {
      const Insn& ia = func.insns[mems[i]];
      const Insn& ib = func.insns[mems[j]];
      if (ia.op != Opcode::Store && ib.op != Opcode::Store) continue;
      ++pairs;
      ++result.checks;
      if (!hli_claims_no_conflict(view, ia.mem.hli_item, ib.mem.hli_item)) {
        continue;
      }
      if (fdi.same_iter(mems[i], mems[j]) == Dep::Must) {
        add(verify::Code::IrdepConflictMissed, ia, ib,
            pair_detail("HLI_MayConflict answered None", ia, ib,
                        "both access the same location in the same "
                        "iteration"));
      }
    }
  }

  // Check 2: loop-carried dependences.  irdep proven-carried (canonical
  // loop, unconditional body, covered trip count) vs. HLI None + an
  // empty LCDD list for the loop region.
  for (const LoopShape& loop : model.loops()) {
    if (!loop.canonical) continue;
    const Insn& beg = func.insns[loop.beg];
    if (beg.loop_region == format::kNoRegion) continue;
    std::vector<std::size_t> in_loop;
    for (const std::size_t pos : mems) {
      if (pos > loop.beg && pos < loop.end) in_loop.push_back(pos);
    }
    for (std::size_t i = 0; i < in_loop.size() && pairs < options.max_pairs;
         ++i) {
      for (std::size_t j = i; j < in_loop.size() && pairs < options.max_pairs;
           ++j) {
        const Insn& ia = func.insns[in_loop[i]];
        const Insn& ib = func.insns[in_loop[j]];
        if (ia.op != Opcode::Store && ib.op != Opcode::Store) continue;
        ++pairs;
        ++result.checks;
        if (!hli_claims_no_conflict(view, ia.mem.hli_item,
                                    ib.mem.hli_item)) {
          continue;
        }
        if (!view.get_lcdd(beg.loop_region, ia.mem.hli_item,
                           ib.mem.hli_item)
                 .empty()) {
          continue;
        }
        const CarriedDep cd = fdi.carried(loop.beg, in_loop[i], in_loop[j]);
        if (cd.proven) {
          std::ostringstream proof;
          proof << "a loop-carried dependence at distance "
                << cd.min_distance << " (loop at line " << beg.line << ")";
          add(verify::Code::IrdepCarriedMissed, ia, ib,
              pair_detail("HLI answered None with an empty LCDD list", ia,
                          ib, proof.str().c_str()));
        }
      }
    }
  }

  c_audit_checks.add(result.checks);
  c_audit_findings.add(result.findings.size());
  return result;
}

}  // namespace hli::irdep
