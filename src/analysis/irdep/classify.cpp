#include "analysis/irdep/classify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/telemetry.hpp"

namespace hli::irdep {

namespace {

using backend::Insn;
using backend::Opcode;

const telemetry::Counter c_loops_total = telemetry::counter("irdep.loops_total");
const telemetry::Counter c_loops_doall = telemetry::counter("irdep.loops_doall");
const telemetry::Counter c_loops_doacross =
    telemetry::counter("irdep.loops_doacross");
const telemetry::Counter c_loops_serial =
    telemetry::counter("irdep.loops_serial");
const telemetry::Counter c_loops_upgraded =
    telemetry::counter("irdep.loops_upgraded");

/// Accumulates per-loop dependence evidence into a classification.
struct Verdict {
  bool serial = false;
  std::string reason;  ///< First blocking fact.
  bool any_carried = false;
  std::int64_t min_distance = 0;

  void block(const std::string& why) {
    if (!serial) reason = why;
    serial = true;
  }
  void carried(std::int64_t distance) {
    if (!any_carried || distance < min_distance) min_distance = distance;
    any_carried = true;
  }

  [[nodiscard]] LoopClass cls() const {
    if (serial) return LoopClass::Serial;
    return any_carried ? LoopClass::Doacross : LoopClass::Doall;
  }
};

int rank(LoopClass c) {
  switch (c) {
    case LoopClass::Serial:
      return 0;
    case LoopClass::Doacross:
      return 1;
    case LoopClass::Doall:
      return 2;
  }
  return 0;
}

/// Register recurrences: a register both defined and read inside the
/// loop carries a value across iterations unless the loop is canonical
/// (position order == execution order over the whole iteration) and its
/// first in-loop definition precedes every in-loop read.  The verified
/// induction register of a canonical loop is exempt (a parallelizing
/// transform privatizes it).
void scan_recurrences(const FunctionModel& model, const LoopShape& loop,
                      Verdict& irdep, Verdict& combined) {
  struct RegInfo {
    std::uint32_t min_def = UINT32_MAX;
    std::uint32_t min_read = UINT32_MAX;
  };
  std::map<backend::Reg, RegInfo> regs;
  std::vector<backend::Reg> reads;
  for (std::size_t p = loop.beg + 1; p < loop.end; ++p) {
    const Insn& insn = model.func().insns[p];
    const backend::Reg rd = def_of(insn);
    if (rd != backend::kNoReg) {
      auto& info = regs[rd];
      info.min_def =
          std::min(info.min_def, static_cast<std::uint32_t>(p));
    }
    reads.clear();
    reads_of(insn, reads);
    for (const backend::Reg r : reads) {
      auto& info = regs[r];
      info.min_read =
          std::min(info.min_read, static_cast<std::uint32_t>(p));
    }
  }
  for (const auto& [reg, info] : regs) {
    if (info.min_def == UINT32_MAX || info.min_read == UINT32_MAX) continue;
    if (loop.canonical) {
      if (reg == loop.induction) continue;
      if (info.min_def < info.min_read) continue;
    }
    // A register recurrence is a distance-1 carried dependence; HLI has
    // no facts about virtual registers, so both columns keep it.
    std::ostringstream why;
    why << "recurrence:r" << reg;
    irdep.carried(1);
    combined.carried(1);
    if (irdep.reason.empty()) irdep.reason = why.str();
    if (combined.reason.empty()) combined.reason = why.str();
  }
}

std::string pair_reason(const char* what, const Insn& a, const Insn& b) {
  std::ostringstream out;
  out << what << ":line" << a.line << "~line" << b.line;
  return out.str();
}

}  // namespace

// The LCDD table is consulted FIRST: may_conflict() answers "may these
// two references touch the same location in the same iteration" (the
// scheduler's disambiguation question), so two strided references like
// A[i] and A[i-3] are None within an iteration while still carrying a
// genuine distance-3 dependence — which the builder records as a
// cross-class LCDD entry for exactly this reason.  Only when the loop
// has NO carried facts for the pair does a None answer prove carried
// independence (the builder drops proven-None carried relations, so
// "no entry + never the same location in an iteration" is a proof).  A
// same-class pair (a store against itself in a later iteration) can
// legitimately have an empty LCDD list with a non-None conflict answer
// — that is "no claim", not "no carried dependence".
HliCarried hli_carried(const query::HliUnitView& view, format::RegionId region,
                       format::ItemId a, format::ItemId b) {
  HliCarried out;
  if (region == format::kNoRegion || a == format::kNoItem ||
      b == format::kNoItem) {
    return out;
  }
  out.answered = true;
  const std::vector<query::LcddResult> deps = view.get_lcdd(region, a, b);
  if (deps.empty()) {
    if (view.may_conflict(a, b) == query::EquivAcc::None) {
      out.none = true;
      return out;
    }
    // Same-class pair (e.g. the store and load of xm[i][j] += ...):
    // may_conflict is Definite within an iteration, but when the class's
    // footprint provably never recurs across iterations the pair carries
    // no loop dependence — the front-end's subscript view proves what
    // the RTL-level analyzer often cannot.
    const format::ItemId ca = view.class_of_at(a, region);
    if (ca != format::kNoItem && ca == view.class_of_at(b, region) &&
        view.class_iteration_disjoint(region, ca)) {
      out.none = true;
    }
    return out;
  }
  bool all_known = true;
  std::int64_t best = 0;
  bool any = false;
  for (const query::LcddResult& dep : deps) {
    if (dep.type != format::DepType::Definite || !dep.distance) {
      all_known = false;
      break;
    }
    const std::int64_t d = std::max<std::int64_t>(1, *dep.distance);
    if (!any || d < best) best = d;
    any = true;
  }
  if (all_known && any) {
    out.distance_known = true;
    out.min_distance = best;
  }
  return out;
}

const char* to_string(LoopClass c) {
  switch (c) {
    case LoopClass::Doall:
      return "DOALL";
    case LoopClass::Doacross:
      return "DOACROSS";
    case LoopClass::Serial:
      return "SERIAL";
  }
  return "?";
}

std::vector<LoopReport> classify_function(const ProgramDepInfo& prog,
                                          const backend::RtlFunction& func,
                                          const query::HliUnitView* view) {
  std::vector<LoopReport> reports;
  FunctionDepInfo fdi(prog, func);
  const FunctionModel& model = fdi.model();

  for (const LoopShape& loop : model.loops()) {
    const Insn& beg = func.insns[loop.beg];
    LoopReport report;
    report.function = func.name;
    report.loop_beg = loop.beg;
    report.region = beg.loop_region;
    report.line = beg.line;
    report.innermost = loop.innermost;

    Verdict irdep;
    Verdict combined;
    if (!loop.innermost) {
      // Only innermost loops are analyzed; outer loops make no claim.
      irdep.block("non-innermost");
      combined.block("non-innermost");
    } else {
      std::vector<std::size_t> mems;
      for (std::size_t p = loop.beg + 1; p < loop.end; ++p) {
        const Insn& insn = func.insns[p];
        if (backend::is_memory_op(insn.op)) {
          mems.push_back(p);
        } else if (insn.op == Opcode::Call &&
                   !prog.call_pure(insn.callee)) {
          // Impure call: its effects are per-class, not per-iteration —
          // no column can order them across iterations.
          irdep.block("impure-call:" + insn.callee);
          combined.block("impure-call:" + insn.callee);
        }
      }
      scan_recurrences(model, loop, irdep, combined);

      for (std::size_t i = 0; i < mems.size(); ++i) {
        for (std::size_t j = i; j < mems.size(); ++j) {
          const Insn& ia = func.insns[mems[i]];
          const Insn& ib = func.insns[mems[j]];
          if (ia.op != Opcode::Store && ib.op != Opcode::Store) continue;
          const CarriedDep cd = fdi.carried(loop.beg, mems[i], mems[j]);

          if (cd.dep != Dep::No) {
            if (cd.distance_known) {
              irdep.carried(cd.min_distance);
              if (irdep.reason.empty()) {
                irdep.reason = pair_reason("carried", ia, ib);
              }
            } else {
              irdep.block(pair_reason("may-dep", ia, ib));
            }
          }

          // Combined column: strongest of the two fact sources.
          if (cd.dep == Dep::No) continue;
          HliCarried hc;
          if (view != nullptr) {
            hc = hli_carried(*view, report.region, ia.mem.hli_item,
                             ib.mem.hli_item);
          }
          if (hc.answered && hc.none) continue;
          if (cd.distance_known || (hc.answered && hc.distance_known)) {
            // Both are lower bounds on the real distance set; the larger
            // bound is the stronger combined claim.
            std::int64_t d = 0;
            if (cd.distance_known) d = cd.min_distance;
            if (hc.answered && hc.distance_known) {
              d = std::max(d, hc.min_distance);
            }
            combined.carried(d);
            if (combined.reason.empty()) {
              combined.reason = pair_reason("carried", ia, ib);
            }
          } else {
            combined.block(pair_reason("may-dep", ia, ib));
          }
        }
      }
    }

    report.irdep_class = irdep.cls();
    report.irdep_reason = irdep.reason;
    if (report.irdep_class == LoopClass::Doacross) {
      report.irdep_distance = irdep.min_distance;
    }
    report.combined_class = combined.cls();
    report.combined_reason = combined.reason;
    if (report.combined_class == LoopClass::Doacross) {
      report.combined_distance = combined.min_distance;
    }

    c_loops_total.add();
    switch (report.irdep_class) {
      case LoopClass::Doall:
        c_loops_doall.add();
        break;
      case LoopClass::Doacross:
        c_loops_doacross.add();
        break;
      case LoopClass::Serial:
        c_loops_serial.add();
        break;
    }
    if (rank(report.combined_class) > rank(report.irdep_class)) {
      c_loops_upgraded.add();
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

std::string render_loop_table(const std::vector<LoopReport>& reports) {
  std::ostringstream out;
  out << "function              line  irdep            combined         "
         "reason\n";
  for (const LoopReport& r : reports) {
    std::ostringstream ic;
    ic << to_string(r.irdep_class);
    if (r.irdep_class == LoopClass::Doacross) {
      ic << "(" << r.irdep_distance << ")";
    }
    std::ostringstream cc;
    cc << to_string(r.combined_class);
    if (r.combined_class == LoopClass::Doacross) {
      cc << "(" << r.combined_distance << ")";
    }
    out << r.function;
    for (std::size_t i = r.function.size(); i < 22; ++i) out << ' ';
    std::string line = std::to_string(r.line);
    out << line;
    for (std::size_t i = line.size(); i < 6; ++i) out << ' ';
    out << ic.str();
    for (std::size_t i = ic.str().size(); i < 17; ++i) out << ' ';
    out << cc.str();
    for (std::size_t i = cc.str().size(); i < 17; ++i) out << ' ';
    const std::string& why =
        r.combined_reason.empty() ? r.irdep_reason : r.combined_reason;
    out << why << "\n";
  }
  return out.str();
}

std::string render_loop_json(const std::vector<LoopReport>& reports) {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const LoopReport& r = reports[i];
    if (i != 0) out << ",";
    out << "\n  {\"function\":\"" << escape(r.function) << "\""
        << ",\"line\":" << r.line << ",\"innermost\":"
        << (r.innermost ? "true" : "false") << ",\"irdep\":\""
        << to_string(r.irdep_class) << "\",\"irdep_distance\":"
        << r.irdep_distance << ",\"combined\":\""
        << to_string(r.combined_class) << "\",\"combined_distance\":"
        << r.combined_distance << ",\"reason\":\""
        << escape(r.combined_reason.empty() ? r.irdep_reason
                                            : r.combined_reason)
        << "\",\"planned\":" << (r.planned ? "true" : "false")
        << ",\"plan\":\"" << to_string(r.plan_class) << "\""
        << ",\"plan_distance\":" << r.plan_distance << ",\"plan_reason\":\""
        << escape(r.plan_reason) << "\"}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace hli::irdep
