#include "frontend/lower.hpp"

#include <unordered_map>

#include "frontend/analysis/item_walk.hpp"
#include "frontend/analysis/region_tree.hpp"
#include "support/diagnostics.hpp"

namespace hli::frontend {

using namespace backend;

namespace {

/// Byte size of a scalar element for memory accesses.
std::uint8_t access_size(const Type* type) {
  return static_cast<std::uint8_t>(type->byte_size() == 0 ? 4 : type->byte_size());
}

class FunctionLowering {
 public:
  FunctionLowering(Program& prog, FuncDecl& func, RtlProgram& out)
      : prog_(prog), func_(func), out_(out), tree_(analysis::build_region_tree(func)) {}

  RtlFunction run() {
    rtl_.name = func_.name();
    rtl_.returns_float = func_.return_type()->is_floating();
    lower_params();
    lower_stmt(func_.body);
    // Implicit return for void functions falling off the end.
    emit_simple(Opcode::Return, func_.loc().line).rs1 = kNoReg;
    return std::move(rtl_);
  }

 private:
  // ---------------------------------------------------------------------
  // Infrastructure.
  // ---------------------------------------------------------------------

  Insn& emit(Insn insn) {
    rtl_.insns.push_back(std::move(insn));
    return rtl_.insns.back();
  }

  Insn& emit_simple(Opcode op, std::uint32_t line) {
    Insn insn;
    insn.op = op;
    insn.line = line;
    return emit(std::move(insn));
  }

  Reg fresh() { return rtl_.fresh_reg(); }
  std::int32_t fresh_label() { return next_label_++; }

  void emit_label(std::int32_t label, std::uint32_t line) {
    Insn& insn = emit_simple(Opcode::Label, line);
    insn.label = label;
  }

  void emit_jump(std::int32_t label, std::uint32_t line) {
    Insn& insn = emit_simple(Opcode::Jump, line);
    insn.label = label;
  }

  /// Register holding a scalar variable (allocated on first use).
  Reg reg_of(const VarDecl* decl) {
    const auto it = var_regs_.find(decl);
    if (it != var_regs_.end()) return it->second;
    const Reg r = fresh();
    var_regs_.emplace(decl, r);
    return r;
  }

  /// Frame slot of a memory-resident local (allocated on first use).
  std::int64_t frame_slot(const VarDecl* decl) {
    const auto it = frame_slots_.find(decl);
    if (it != frame_slots_.end()) return it->second;
    const std::int64_t offset = static_cast<std::int64_t>(rtl_.frame_size);
    // 8-byte align every object for simplicity.
    const std::uint64_t size = (decl->type()->byte_size() + 7) / 8 * 8;
    rtl_.frame_size += size == 0 ? 8 : size;
    frame_slots_.emplace(decl, offset);
    return offset;
  }

  Reg emit_load_imm(std::int64_t value, std::uint32_t line) {
    Insn insn;
    insn.op = Opcode::LoadImm;
    insn.rd = fresh();
    insn.imm = value;
    insn.line = line;
    return emit(std::move(insn)).rd;
  }

  Reg emit_load_fimm(double value, std::uint32_t line) {
    Insn insn;
    insn.op = Opcode::LoadImm;
    insn.is_float = true;
    insn.rd = fresh();
    insn.fimm = value;
    insn.line = line;
    return emit(std::move(insn)).rd;
  }

  Reg emit_binop(Opcode op, bool is_float, Reg a, Reg b, std::uint32_t line) {
    Insn insn;
    insn.op = op;
    insn.is_float = is_float;
    insn.rd = fresh();
    insn.rs1 = a;
    insn.rs2 = b;
    insn.line = line;
    return emit(std::move(insn)).rd;
  }

  Reg emit_unop(Opcode op, bool is_float, Reg a, std::uint32_t line) {
    Insn insn;
    insn.op = op;
    insn.is_float = is_float;
    insn.rd = fresh();
    insn.rs1 = a;
    insn.line = line;
    return emit(std::move(insn)).rd;
  }

  /// Converts a value to the float or int domain if needed.
  Reg coerce(Reg value, bool value_is_float, bool want_float, std::uint32_t line) {
    if (value_is_float == want_float) return value;
    return emit_unop(want_float ? Opcode::IntToFp : Opcode::FpToInt,
                     /*is_float=*/want_float, value, line);
  }

  static bool is_float_type(const Type* type) {
    return type != nullptr && type->is_floating();
  }

  // ---------------------------------------------------------------------
  // Addresses.
  // ---------------------------------------------------------------------

  /// Result of lowering an lvalue's address.
  struct Address {
    Reg reg = kNoReg;  ///< Register holding the address.
    MemRef mem;        ///< Static info for the back-end's alias oracle.
    bool in_memory = true;
    const VarDecl* scalar = nullptr;  ///< Register-resident scalar.
    bool is_float = false;            ///< Element domain.
  };

  Reg emit_base_address(const VarDecl* decl, std::uint32_t line, MemRef& mem) {
    if (decl->is_global()) {
      const std::int32_t sym = out_.find_global(decl->name());
      Insn insn;
      insn.op = Opcode::LoadAddr;
      insn.rd = fresh();
      insn.imm = 0;
      insn.label = sym;  // LoadAddr reuses `label` as the symbol index.
      insn.line = line;
      mem.base = MemBase::Symbol;
      mem.symbol = sym;
      return emit(std::move(insn)).rd;
    }
    // Frame object.
    const std::int64_t slot = frame_slot(decl);
    Insn insn;
    insn.op = Opcode::LoadAddr;
    insn.rd = fresh();
    insn.imm = slot;
    insn.label = -1;  // Frame.
    insn.line = line;
    mem.base = MemBase::Frame;
    mem.frame_offset = slot;
    return emit(std::move(insn)).rd;
  }

  /// Lowers the address computation of an lvalue, emitting subscript and
  /// pointer loads in walker order.
  Address lower_address(const Expr* expr) {
    Address out;
    const std::uint32_t line = expr->loc().line;
    switch (expr->kind()) {
      case ExprKind::VarRef: {
        const auto* ref = static_cast<const VarRefExpr*>(expr);
        const VarDecl* decl = ref->decl;
        out.is_float = is_float_type(decl->type());
        if (!decl->is_memory_resident()) {
          out.in_memory = false;
          out.scalar = decl;
          return out;
        }
        out.mem.size = access_size(decl->type());
        out.reg = emit_base_address(decl, line, out.mem);
        out.mem.const_offset = 0;
        out.mem.offset_known = true;
        return out;
      }
      case ExprKind::ArrayIndex: {
        // Collect the subscript chain; find the base.
        std::vector<const Expr*> indices;
        const Expr* cursor = expr;
        while (cursor->kind() == ExprKind::ArrayIndex) {
          indices.push_back(static_cast<const ArrayIndexExpr*>(cursor)->index);
          cursor = static_cast<const ArrayIndexExpr*>(cursor)->base;
        }
        std::reverse(indices.begin(), indices.end());

        const Type* cursor_type = cursor->type;
        Reg base = kNoReg;
        if (cursor->kind() == ExprKind::VarRef) {
          const auto* ref = static_cast<const VarRefExpr*>(cursor);
          const VarDecl* decl = ref->decl;
          if (decl->type()->is_pointer()) {
            // Pointer base: possibly loaded from memory first (walker rule).
            base = lower_rvalue(cursor).reg;
            out.mem.base = MemBase::Pointer;
          } else {
            base = emit_base_address(decl, line, out.mem);
          }
        } else {
          base = lower_rvalue(cursor).reg;
          out.mem.base = MemBase::Pointer;
        }

        // Fold the address: base + sum(variable index_k * stride_k), with
        // constant subscripts folded into the addressing-mode displacement
        // (mem.const_offset) — the interpreter adds const_offset to the
        // address register, so it must never also be materialized there.
        const Type* elem = cursor_type;
        bool all_const = true;
        std::int64_t const_total = 0;
        Reg addr = base;
        for (const Expr* index : indices) {
          // Stride: byte size of what one step of this subscript covers.
          elem = elem->element();
          const std::uint64_t stride = elem->byte_size();
          if (index->kind() == ExprKind::IntLiteral) {
            // Literals generate no memory items: safe to fold silently.
            const_total += static_cast<const IntLiteralExpr*>(index)->value *
                           static_cast<std::int64_t>(stride);
          } else {
            const RValue idx = lower_rvalue(index);
            all_const = false;
            const Reg stride_reg =
                emit_load_imm(static_cast<std::int64_t>(stride), line);
            const Reg scaled =
                emit_binop(Opcode::Mul, false, idx.reg, stride_reg, line);
            addr = emit_binop(Opcode::Add, false, addr, scaled, line);
          }
        }
        out.reg = addr;
        out.is_float = is_float_type(elem);
        out.mem.size = access_size(elem);
        out.mem.const_offset = const_total;
        out.mem.offset_known = all_const && out.mem.base != MemBase::Pointer;
        return out;
      }
      case ExprKind::Unary: {
        const auto* un = static_cast<const UnaryExpr*>(expr);
        if (un->op == UnaryOp::Deref) {
          const RValue ptr = lower_rvalue(un->operand);
          out.reg = ptr.reg;
          out.mem.base = MemBase::Pointer;
          const Type* pointee = expr->type;
          out.is_float = is_float_type(pointee);
          out.mem.size = access_size(pointee);
          return out;
        }
        break;
      }
      default:
        break;
    }
    // Should not happen for sema-checked lvalues.
    throw support::CompileError("lowering: unsupported lvalue shape");
  }

  Reg emit_load(const Address& addr, std::uint32_t line) {
    Insn insn;
    insn.op = Opcode::Load;
    insn.is_float = addr.is_float;
    insn.rd = fresh();
    insn.rs1 = addr.reg;
    insn.mem = addr.mem;
    insn.line = line;
    return emit(std::move(insn)).rd;
  }

  void emit_store(const Address& addr, Reg value, std::uint32_t line) {
    Insn insn;
    insn.op = Opcode::Store;
    insn.is_float = addr.is_float;
    insn.rs1 = addr.reg;
    insn.rs2 = value;
    insn.mem = addr.mem;
    insn.line = line;
    emit(std::move(insn));
  }

  // ---------------------------------------------------------------------
  // Expressions.
  // ---------------------------------------------------------------------

  struct RValue {
    Reg reg = kNoReg;
    bool is_float = false;
  };

  RValue lower_rvalue(const Expr* expr) {
    const std::uint32_t line = expr->loc().line;
    switch (expr->kind()) {
      case ExprKind::IntLiteral:
        return {emit_load_imm(static_cast<const IntLiteralExpr*>(expr)->value, line),
                false};
      case ExprKind::FloatLiteral:
        return {emit_load_fimm(static_cast<const FloatLiteralExpr*>(expr)->value,
                               line),
                true};
      case ExprKind::VarRef: {
        const auto* ref = static_cast<const VarRefExpr*>(expr);
        const VarDecl* decl = ref->decl;
        if (decl->type()->is_array()) {
          // Array decays to its address (no memory traffic).
          MemRef scratch;
          return {emit_base_address(decl, line, scratch), false};
        }
        if (!decl->is_memory_resident()) {
          return {reg_of(decl), is_float_type(decl->type())};
        }
        Address addr = lower_address(expr);
        return {emit_load(addr, line), addr.is_float};
      }
      case ExprKind::ArrayIndex: {
        Address addr = lower_address(expr);
        // An array-typed element (a row of a multi-dim array) decays to
        // its address: no load.
        if (expr->type != nullptr && expr->type->is_array()) {
          return {addr.reg, false};
        }
        return {emit_load(addr, line), addr.is_float};
      }
      case ExprKind::Unary:
        return lower_unary(static_cast<const UnaryExpr*>(expr));
      case ExprKind::Binary:
        return lower_binary(static_cast<const BinaryExpr*>(expr));
      case ExprKind::Assign:
        return lower_assign(static_cast<const AssignExpr*>(expr));
      case ExprKind::Call:
        return lower_call(static_cast<const CallExpr*>(expr));
      case ExprKind::Conditional:
        return lower_conditional(static_cast<const ConditionalExpr*>(expr));
    }
    throw support::CompileError("lowering: unhandled expression kind");
  }

  RValue lower_unary(const UnaryExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    switch (expr->op) {
      case UnaryOp::Neg: {
        const RValue v = lower_rvalue(expr->operand);
        return {emit_unop(Opcode::Neg, v.is_float, v.reg, line), v.is_float};
      }
      case UnaryOp::Not: {
        const RValue v = lower_rvalue(expr->operand);
        const Reg r = coerce(v.reg, v.is_float, false, line);
        return {emit_unop(Opcode::Not, false, r, line), false};
      }
      case UnaryOp::BitNot: {
        const RValue v = lower_rvalue(expr->operand);
        const Reg flipped = emit_unop(Opcode::Not, false, v.reg, line);
        // C's ~x is -x-1; our Not is logical.  Build ~x = -x - 1 directly.
        const Reg neg = emit_unop(Opcode::Neg, false, v.reg, line);
        const Reg one = emit_load_imm(1, line);
        (void)flipped;
        return {emit_binop(Opcode::Sub, false, neg, one, line), false};
      }
      case UnaryOp::Deref: {
        Address addr = lower_address(expr);
        return {emit_load(addr, line), addr.is_float};
      }
      case UnaryOp::AddrOf:
        return lower_addr_of(expr->operand);
      case UnaryOp::PreInc:
      case UnaryOp::PreDec:
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        return lower_incdec(expr);
    }
    throw support::CompileError("lowering: unhandled unary op");
  }

  RValue lower_addr_of(const Expr* lvalue) {
    const std::uint32_t line = lvalue->loc().line;
    if (lvalue->kind() == ExprKind::VarRef) {
      const auto* ref = static_cast<const VarRefExpr*>(lvalue);
      MemRef scratch;
      return {emit_base_address(ref->decl, line, scratch), false};
    }
    Address addr = lower_address(lvalue);
    return {addr.reg, false};
  }

  RValue lower_incdec(const UnaryExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    const bool inc = expr->op == UnaryOp::PreInc || expr->op == UnaryOp::PostInc;
    const bool post = expr->op == UnaryOp::PostInc || expr->op == UnaryOp::PostDec;

    Address addr{};
    bool in_memory = false;
    RValue old{};
    if (expr->operand->kind() == ExprKind::VarRef &&
        !static_cast<const VarRefExpr*>(expr->operand)->decl->is_memory_resident()) {
      const VarDecl* decl = static_cast<const VarRefExpr*>(expr->operand)->decl;
      old = {reg_of(decl), is_float_type(decl->type())};
    } else {
      addr = lower_address(expr->operand);
      in_memory = true;
      old = {emit_load(addr, line), addr.is_float};
    }
    const Reg delta = old.is_float ? emit_load_fimm(1.0, line)
                                   : emit_load_imm(1, line);
    const Reg updated = emit_binop(inc ? Opcode::Add : Opcode::Sub, old.is_float,
                                   old.reg, delta, line);
    if (in_memory) {
      emit_store(addr, updated, line);
    } else {
      const VarDecl* decl = static_cast<const VarRefExpr*>(expr->operand)->decl;
      Insn insn;
      insn.op = Opcode::Move;
      insn.is_float = old.is_float;
      insn.rd = reg_of(decl);
      insn.rs1 = updated;
      insn.line = line;
      emit(std::move(insn));
    }
    return {post ? old.reg : updated, old.is_float};
  }

  Opcode binary_opcode(BinaryOp op) {
    switch (op) {
      case BinaryOp::Add: return Opcode::Add;
      case BinaryOp::Sub: return Opcode::Sub;
      case BinaryOp::Mul: return Opcode::Mul;
      case BinaryOp::Div: return Opcode::Div;
      case BinaryOp::Rem: return Opcode::Rem;
      case BinaryOp::And: return Opcode::And;
      case BinaryOp::Or: return Opcode::Or;
      case BinaryOp::Xor: return Opcode::Xor;
      case BinaryOp::Shl: return Opcode::Shl;
      case BinaryOp::Shr: return Opcode::Shr;
      case BinaryOp::Lt: return Opcode::CmpLt;
      case BinaryOp::Le: return Opcode::CmpLe;
      case BinaryOp::Gt: return Opcode::CmpGt;
      case BinaryOp::Ge: return Opcode::CmpGe;
      case BinaryOp::Eq: return Opcode::CmpEq;
      case BinaryOp::Ne: return Opcode::CmpNe;
      default:
        throw support::CompileError("lowering: unexpected binary op");
    }
  }

  RValue lower_binary(const BinaryExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    if (expr->op == BinaryOp::LogAnd || expr->op == BinaryOp::LogOr) {
      // Short circuit: result register set in both arms.
      const Reg result = fresh();
      const std::int32_t skip = fresh_label();
      const RValue lhs = lower_rvalue(expr->lhs);
      const Reg lhs_int = coerce(lhs.reg, lhs.is_float, false, line);
      {
        Insn insn;
        insn.op = Opcode::Move;
        insn.rd = result;
        insn.rs1 = lhs_int;
        insn.line = line;
        emit(std::move(insn));
      }
      Insn& br = emit_simple(
          expr->op == BinaryOp::LogAnd ? Opcode::BranchZ : Opcode::BranchNZ, line);
      br.rs1 = lhs_int;
      br.label = skip;
      const RValue rhs = lower_rvalue(expr->rhs);
      const Reg rhs_int = coerce(rhs.reg, rhs.is_float, false, line);
      {
        Insn insn;
        insn.op = Opcode::Move;
        insn.rd = result;
        insn.rs1 = rhs_int;
        insn.line = line;
        emit(std::move(insn));
      }
      emit_label(skip, line);
      // Normalize to 0/1.
      const Reg zero = emit_load_imm(0, line);
      return {emit_binop(Opcode::CmpNe, false, result, zero, line), false};
    }

    // Pointer arithmetic: scale the integer side by the element size.
    const Type* lt = expr->lhs->type;
    const Type* rt = expr->rhs->type;
    const bool lhs_ptr = lt != nullptr && (lt->is_pointer() || lt->is_array());
    const bool rhs_ptr = rt != nullptr && (rt->is_pointer() || rt->is_array());
    if ((expr->op == BinaryOp::Add || expr->op == BinaryOp::Sub) &&
        (lhs_ptr || rhs_ptr) && !(lhs_ptr && rhs_ptr)) {
      const RValue lhs = lower_rvalue(expr->lhs);
      const RValue rhs = lower_rvalue(expr->rhs);
      const Type* ptr_type = lhs_ptr ? lt : rt;
      const std::uint64_t stride = ptr_type->element()->byte_size();
      const Reg stride_reg = emit_load_imm(static_cast<std::int64_t>(stride), line);
      const Reg scaled = emit_binop(Opcode::Mul, false,
                                    lhs_ptr ? rhs.reg : lhs.reg, stride_reg, line);
      const Reg base = lhs_ptr ? lhs.reg : rhs.reg;
      return {emit_binop(binary_opcode(expr->op), false, base, scaled, line), false};
    }
    if (lhs_ptr && rhs_ptr && expr->op == BinaryOp::Sub) {
      const RValue lhs = lower_rvalue(expr->lhs);
      const RValue rhs = lower_rvalue(expr->rhs);
      const Reg diff = emit_binop(Opcode::Sub, false, lhs.reg, rhs.reg, line);
      const std::uint64_t stride = lt->element()->byte_size();
      const Reg stride_reg = emit_load_imm(static_cast<std::int64_t>(stride), line);
      return {emit_binop(Opcode::Div, false, diff, stride_reg, line), false};
    }

    const RValue lhs = lower_rvalue(expr->lhs);
    const RValue rhs = lower_rvalue(expr->rhs);
    const bool float_op = lhs.is_float || rhs.is_float;
    const Reg a = coerce(lhs.reg, lhs.is_float, float_op, line);
    const Reg b = coerce(rhs.reg, rhs.is_float, float_op, line);
    const Opcode op = binary_opcode(expr->op);
    const bool compare = op >= Opcode::CmpLt && op <= Opcode::CmpNe;
    return {emit_binop(op, float_op, a, b, line),
            compare ? false : float_op};
  }

  RValue lower_assign(const AssignExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    const RValue rhs = lower_rvalue(expr->rhs);

    // Register-resident scalar target.
    if (expr->lhs->kind() == ExprKind::VarRef &&
        !static_cast<const VarRefExpr*>(expr->lhs)->decl->is_memory_resident()) {
      const VarDecl* decl = static_cast<const VarRefExpr*>(expr->lhs)->decl;
      const bool want_float = is_float_type(decl->type());
      Reg value = coerce(rhs.reg, rhs.is_float, want_float, line);
      if (expr->op != AssignOp::None) {
        const Opcode op = compound_opcode(expr->op);
        value = emit_binop(op, want_float, reg_of(decl), value, line);
      }
      Insn insn;
      insn.op = Opcode::Move;
      insn.is_float = want_float;
      insn.rd = reg_of(decl);
      insn.rs1 = value;
      insn.line = line;
      emit(std::move(insn));
      return {reg_of(decl), want_float};
    }

    Address addr = lower_address(expr->lhs);
    Reg value = coerce(rhs.reg, rhs.is_float, addr.is_float, line);
    if (expr->op != AssignOp::None) {
      const Reg old = emit_load(addr, line);
      value = emit_binop(compound_opcode(expr->op), addr.is_float, old, value, line);
    }
    emit_store(addr, value, line);
    return {value, addr.is_float};
  }

  static Opcode compound_opcode(AssignOp op) {
    switch (op) {
      case AssignOp::Add: return Opcode::Add;
      case AssignOp::Sub: return Opcode::Sub;
      case AssignOp::Mul: return Opcode::Mul;
      case AssignOp::Div: return Opcode::Div;
      case AssignOp::None: break;
    }
    throw support::CompileError("lowering: bad compound op");
  }

  RValue lower_call(const CallExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    std::vector<RValue> args;
    args.reserve(expr->args.size());
    for (const Expr* arg : expr->args) args.push_back(lower_rvalue(arg));

    // Coerce argument domains to the callee's formals when known.
    const FuncDecl* callee = expr->callee_decl;
    for (std::size_t i = 0; i < args.size(); ++i) {
      bool want_float = args[i].is_float;
      if (callee != nullptr && i < callee->params.size()) {
        want_float = is_float_type(callee->params[i]->type());
      }
      args[i].reg = coerce(args[i].reg, args[i].is_float, want_float, line);
      args[i].is_float = want_float;
    }

    // Stack-passed arguments beyond the register window: one store each
    // into the argument-overflow area (walker's ArgStore items).
    const std::int32_t overflow_sym = out_.find_global(analysis::kArgOverflowName);
    for (std::size_t i = analysis::kMaxRegisterArgs; i < args.size(); ++i) {
      Insn addr;
      addr.op = Opcode::LoadAddr;
      addr.rd = fresh();
      addr.label = overflow_sym;
      addr.imm = 0;
      addr.line = line;
      const Reg base = emit(std::move(addr)).rd;
      Insn store;
      store.op = Opcode::Store;
      store.is_float = args[i].is_float;
      store.rs1 = base;
      store.rs2 = args[i].reg;
      store.mem.base = MemBase::Symbol;
      store.mem.symbol = overflow_sym;
      store.mem.const_offset =
          static_cast<std::int64_t>((i - analysis::kMaxRegisterArgs) * 8);
      store.mem.offset_known = true;
      store.mem.size = 8;
      store.line = line;
      emit(std::move(store));
    }

    Insn call;
    call.op = Opcode::Call;
    call.callee = expr->callee;
    call.line = line;
    call.is_float = expr->type != nullptr && expr->type->is_floating();
    for (const RValue& arg : args) call.args.push_back(arg.reg);
    call.rd = expr->type != nullptr && !expr->type->is_void() ? fresh() : kNoReg;
    const Reg result = call.rd;
    const bool result_float = call.is_float;
    emit(std::move(call));
    return {result, result_float};
  }

  RValue lower_conditional(const ConditionalExpr* expr) {
    const std::uint32_t line = expr->loc().line;
    const bool want_float = expr->type != nullptr && expr->type->is_floating();
    const Reg result = fresh();
    const std::int32_t else_label = fresh_label();
    const std::int32_t end_label = fresh_label();
    const RValue cond = lower_rvalue(expr->cond);
    Insn& br = emit_simple(Opcode::BranchZ, line);
    br.rs1 = coerce(cond.reg, cond.is_float, false, line);
    br.label = else_label;
    const RValue then_v = lower_rvalue(expr->then_expr);
    {
      Insn insn;
      insn.op = Opcode::Move;
      insn.is_float = want_float;
      insn.rd = result;
      insn.rs1 = coerce(then_v.reg, then_v.is_float, want_float, line);
      insn.line = line;
      emit(std::move(insn));
    }
    emit_jump(end_label, line);
    emit_label(else_label, line);
    const RValue else_v = lower_rvalue(expr->else_expr);
    {
      Insn insn;
      insn.op = Opcode::Move;
      insn.is_float = want_float;
      insn.rd = result;
      insn.rs1 = coerce(else_v.reg, else_v.is_float, want_float, line);
      insn.line = line;
      emit(std::move(insn));
    }
    emit_label(end_label, line);
    return {result, want_float};
  }

  // ---------------------------------------------------------------------
  // Statements.
  // ---------------------------------------------------------------------

  struct LoopContext {
    std::int32_t break_label;
    std::int32_t continue_label;
  };

  void lower_stmt(Stmt* stmt) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case StmtKind::Decl: {
        auto* decl_stmt = static_cast<DeclStmt*>(stmt);
        VarDecl* decl = decl_stmt->decl;
        if (decl->init == nullptr) {
          if (decl->is_memory_resident()) (void)frame_slot(decl);
          return;
        }
        const std::uint32_t line = stmt->loc().line;
        const RValue value = lower_rvalue(decl->init);
        const bool want_float = is_float_type(decl->type());
        const Reg coerced = coerce(value.reg, value.is_float, want_float, line);
        if (decl->is_memory_resident()) {
          MemRef mem;
          mem.size = access_size(decl->type());
          Address addr;
          addr.mem = mem;
          addr.is_float = want_float;
          addr.reg = emit_base_address(decl, line, addr.mem);
          addr.mem.const_offset = 0;
          addr.mem.offset_known = true;
          emit_store(addr, coerced, line);
        } else {
          Insn insn;
          insn.op = Opcode::Move;
          insn.is_float = want_float;
          insn.rd = reg_of(decl);
          insn.rs1 = coerced;
          insn.line = line;
          emit(std::move(insn));
        }
        return;
      }
      case StmtKind::Expr:
        (void)lower_rvalue(static_cast<ExprStmt*>(stmt)->expr);
        return;
      case StmtKind::Block:
        for (Stmt* s : static_cast<BlockStmt*>(stmt)->stmts) lower_stmt(s);
        return;
      case StmtKind::If: {
        auto* ifs = static_cast<IfStmt*>(stmt);
        const std::uint32_t line = stmt->loc().line;
        const std::int32_t else_label = fresh_label();
        const RValue cond = lower_rvalue(ifs->cond);
        Insn& br = emit_simple(Opcode::BranchZ, line);
        br.rs1 = coerce(cond.reg, cond.is_float, false, line);
        br.label = else_label;
        lower_stmt(ifs->then_stmt);
        if (ifs->else_stmt != nullptr) {
          const std::int32_t end_label = fresh_label();
          emit_jump(end_label, line);
          emit_label(else_label, line);
          lower_stmt(ifs->else_stmt);
          emit_label(end_label, line);
        } else {
          emit_label(else_label, line);
        }
        return;
      }
      case StmtKind::While: {
        auto* loop = static_cast<WhileStmt*>(stmt);
        const std::uint32_t line = stmt->loc().line;
        const std::int32_t top = fresh_label();
        const std::int32_t end = fresh_label();
        const analysis::Region* region = tree_.region_for_loop(stmt);
        Insn& beg = emit_simple(Opcode::LoopBeg, line);
        beg.loop_region = region != nullptr ? region->id() : format::kNoRegion;
        emit_label(top, line);
        const RValue cond = lower_rvalue(loop->cond);
        Insn& br = emit_simple(Opcode::BranchZ, line);
        br.rs1 = coerce(cond.reg, cond.is_float, false, line);
        br.label = end;
        loops_.push_back({end, top});
        lower_stmt(loop->body);
        loops_.pop_back();
        emit_jump(top, line);
        emit_label(end, line);
        emit_simple(Opcode::LoopEnd, line);
        return;
      }
      case StmtKind::For: {
        auto* loop = static_cast<ForStmt*>(stmt);
        const std::uint32_t line = stmt->loc().line;
        lower_stmt(loop->init);
        const std::int32_t top = fresh_label();
        const std::int32_t cont = fresh_label();
        const std::int32_t end = fresh_label();
        const analysis::Region* region = tree_.region_for_loop(stmt);
        Insn& beg = emit_simple(Opcode::LoopBeg, line);
        beg.loop_region = region != nullptr ? region->id() : format::kNoRegion;
        if (region != nullptr && region->canonical) {
          const analysis::CanonicalLoop& canon = *region->canonical;
          if (!canon.induction->is_memory_resident()) {
            beg.induction = reg_of(canon.induction);
          }
          beg.loop_step = canon.reversed ? -canon.step : canon.step;
          if (canon.lower && canon.upper) {
            const std::int64_t span = *canon.upper - *canon.lower;
            beg.trip_count = span <= 0 ? 0 : (span + canon.step - 1) / canon.step;
          }
        }
        emit_label(top, line);
        if (loop->cond != nullptr) {
          const RValue cond = lower_rvalue(loop->cond);
          Insn& br = emit_simple(Opcode::BranchZ, line);
          br.rs1 = coerce(cond.reg, cond.is_float, false, line);
          br.label = end;
        }
        loops_.push_back({end, cont});
        lower_stmt(loop->body);
        loops_.pop_back();
        emit_label(cont, line);
        if (loop->step != nullptr) (void)lower_rvalue(loop->step);
        emit_jump(top, line);
        emit_label(end, line);
        emit_simple(Opcode::LoopEnd, line);
        return;
      }
      case StmtKind::Return: {
        auto* ret = static_cast<ReturnStmt*>(stmt);
        Insn insn;
        insn.op = Opcode::Return;
        insn.line = stmt->loc().line;
        if (ret->value != nullptr) {
          const RValue value = lower_rvalue(ret->value);
          insn.rs1 = coerce(value.reg, value.is_float, rtl_.returns_float,
                            insn.line);
          insn.is_float = rtl_.returns_float;
        }
        emit(std::move(insn));
        return;
      }
      case StmtKind::Break: {
        if (!loops_.empty()) emit_jump(loops_.back().break_label, stmt->loc().line);
        return;
      }
      case StmtKind::Continue: {
        if (!loops_.empty()) {
          emit_jump(loops_.back().continue_label, stmt->loc().line);
        }
        return;
      }
    }
  }

  void lower_params() {
    const std::uint32_t line = func_.loc().line;
    const std::int32_t overflow_sym = out_.find_global(analysis::kArgOverflowName);
    for (std::size_t i = 0; i < func_.params.size(); ++i) {
      VarDecl* param = func_.params[i];
      const bool is_float = is_float_type(param->type());
      Reg value;
      if (i < analysis::kMaxRegisterArgs) {
        value = fresh();  // Incoming register argument.
      } else {
        // Stack-passed: load from the argument-overflow area (ArgLoad item).
        Insn addr;
        addr.op = Opcode::LoadAddr;
        addr.rd = fresh();
        addr.label = overflow_sym;
        addr.imm = 0;
        addr.line = line;
        const Reg base = emit(std::move(addr)).rd;
        Insn load;
        load.op = Opcode::Load;
        load.is_float = is_float;
        load.rd = fresh();
        load.rs1 = base;
        load.mem.base = MemBase::Symbol;
        load.mem.symbol = overflow_sym;
        load.mem.const_offset =
            static_cast<std::int64_t>((i - analysis::kMaxRegisterArgs) * 8);
        load.mem.offset_known = true;
        load.mem.size = 8;
        load.line = line;
        value = emit(std::move(load)).rd;
      }
      rtl_.param_regs.push_back(value);
      rtl_.param_is_float.push_back(is_float);
      if (param->is_memory_resident()) {
        // Address-taken parameter: spill to a frame slot; subsequent
        // accesses go through memory (they generate items).
        MemRef mem;
        mem.size = access_size(param->type());
        Address addr;
        addr.is_float = is_float;
        addr.reg = emit_base_address(param, line, addr.mem);
        addr.mem.size = mem.size;
        addr.mem.const_offset = 0;
        addr.mem.offset_known = true;
        emit_store(addr, value, line);
      } else {
        Insn insn;
        insn.op = Opcode::Move;
        insn.is_float = is_float;
        insn.rd = reg_of(param);
        insn.rs1 = value;
        insn.line = line;
        emit(std::move(insn));
      }
    }
  }

  Program& prog_;
  FuncDecl& func_;
  RtlProgram& out_;
  analysis::RegionTree tree_;
  RtlFunction rtl_;
  std::unordered_map<const VarDecl*, Reg> var_regs_;
  std::unordered_map<const VarDecl*, std::int64_t> frame_slots_;
  std::int32_t next_label_ = 0;
  std::vector<LoopContext> loops_;
};

}  // namespace

RtlProgram lower_program(Program& prog) {
  RtlProgram out;
  // Materialize the argument-overflow area before anything references it.
  (void)analysis::arg_overflow_var(prog);
  for (const VarDecl* global : prog.globals) {
    GlobalVar var;
    var.name = global->name();
    var.size = global->type()->byte_size();
    if (var.size == 0) var.size = 8;
    const frontend::Type* elem = global->type();
    while (elem->is_array()) elem = elem->element();
    var.is_float_elem = elem->is_floating();
    if (global->init != nullptr) {
      // Constant scalar initializers only (checked by sema usage).
      if (global->init->kind() == ExprKind::IntLiteral) {
        var.init_int.push_back(
            static_cast<const IntLiteralExpr*>(global->init)->value);
      } else if (global->init->kind() == ExprKind::FloatLiteral) {
        var.init_fp.push_back(
            static_cast<const FloatLiteralExpr*>(global->init)->value);
      }
    }
    out.globals.push_back(std::move(var));
  }
  for (FuncDecl* func : prog.functions) {
    if (func->is_extern()) continue;
    FunctionLowering lowering(prog, *func, out);
    out.functions.push_back(lowering.run());
  }
  return out;
}

}  // namespace hli::frontend
