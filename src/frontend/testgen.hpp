// Seeded random mini-C program generator (Csmith-style, scaled to the
// mini-C dialect).  Programs are biased toward exactly the constructs the
// HLI tables reason about — nested affine loops, array reads/writes with
// constant/affine/opaque subscripts, aliased pointer parameters, call
// REF/MOD chains — and are correct by construction:
//
//   * every loop is counted with a constant bound, so programs terminate;
//   * every subscript is provably in bounds (affine forms are range-checked
//     against the array extent, arbitrary expressions are masked with
//     `& (size-1)` over power-of-two extents);
//   * integer division/remainder never sees a zero divisor (`(e | 1)` or a
//     nonzero literal), and expression magnitudes are tracked so 64-bit
//     register arithmetic can never overflow (UB in the interpreter host);
//   * observable state is emitted continuously (interleaved emit() calls)
//     and exhaustively (an epilogue checksums every global scalar and
//     array element), so a miscompile anywhere surfaces in output_hash.
//
// Generation is deterministic per (seed, features): the same pair yields
// byte-identical source on every platform, which is what lets a CI
// divergence be reproduced locally from the seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hli::testing {

/// Feature mask: which language constructs the generator may use.  Bits
/// compose freely; kDefaultFeatures is everything except float math.
enum Feature : std::uint32_t {
  kLoops = 1u << 0,          ///< Counted `for` loops.
  kNestedLoops = 1u << 1,    ///< Loop nests up to depth 3 (implies kLoops).
  kArrays = 1u << 2,         ///< Global 1-D arrays + subscripted accesses.
  kArrays2D = 1u << 3,       ///< Global 2-D arrays (implies kArrays).
  kPointerParams = 1u << 4,  ///< Helpers taking int* params; aliased calls.
  kCalls = 1u << 5,          ///< Helper functions and call chains.
  kIf = 1u << 6,             ///< if/else.
  kWhile = 1u << 7,          ///< Counted while loops.
  kConditional = 1u << 8,    ///< ?: expressions.
  kBreakContinue = 1u << 9,  ///< Guarded break/continue inside loops.
  kCompoundAssign = 1u << 10,  ///< += -= (and straight-line *=).
  kIncDec = 1u << 11,        ///< ++/-- on scalars.
  kDivRem = 1u << 12,        ///< / and % with nonzero divisors.
  kShifts = 1u << 13,        ///< << >> with bounded shift amounts.
  kFloat = 1u << 14,         ///< double globals + emitd observation.

  kDefaultFeatures = (1u << 14) - 1u,  ///< Everything except kFloat.
  kAllFeatures = (1u << 15) - 1u,
};

struct GenOptions {
  std::uint64_t seed = 1;
  std::uint32_t features = kDefaultFeatures;
  /// Rough statement budget for main (helpers are extra).
  unsigned main_stmts = 24;
  unsigned max_helpers = 3;
  unsigned max_expr_depth = 4;
  unsigned max_loop_depth = 3;
};

/// Names of every Feature bit, in bit order ("loops", "nested-loops", ...).
[[nodiscard]] const std::vector<std::string>& feature_names();

/// Parses a feature list: "all", "default", or a comma-separated set of
/// feature names, each optionally prefixed with '-' to subtract from the
/// set accumulated so far (e.g. "default,-float,-calls").  Returns false
/// on an unknown name, leaving `out` untouched.
[[nodiscard]] bool parse_features(const std::string& text, std::uint32_t& out);

/// Renders a mask back to the canonical comma-separated list.
[[nodiscard]] std::string render_features(std::uint32_t features);

/// Generates one program and renders it as source text — the canonical
/// harness entry (this header is AST-free: generation internally builds
/// the shared front-end IR and prints it, so generated trees never
/// bypass the lexer/parser/sema path the pipeline actually ships).
[[nodiscard]] std::string generate_source(const GenOptions& options);

}  // namespace hli::testing
