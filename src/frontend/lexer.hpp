// Hand-written lexer for the mini-C language.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace hli::frontend {

class Lexer {
 public:
  Lexer(std::string_view source, support::DiagnosticEngine& diags)
      : source_(source), diags_(diags) {}

  /// Tokenizes the whole buffer.  Always ends with a TokenKind::End token.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] Token next();
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  void skip_whitespace_and_comments();
  [[nodiscard]] Token lex_identifier();
  [[nodiscard]] Token lex_number();
  [[nodiscard]] support::SourceLoc here() const { return {line_, column_}; }

  std::string_view source_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace hli::frontend
