// The language dispatcher behind the AnalyzedUnit contract: the one
// translation unit where a front-end's AST exists and dies.
#include "frontend/contract.hpp"

#include <map>
#include <utility>

#include "frontend/hligen.hpp"
#include "frontend/lower.hpp"
#include "frontend/sema.hpp"
#include "frontend_basic/basic.hpp"
#include "hli/serialize.hpp"
#include "support/string_utils.hpp"
#include "support/telemetry.hpp"

namespace hli::frontend {

std::string_view language_name(Language language) {
  switch (language) {
    case Language::C: return "c";
    case Language::Basic: return "basic";
  }
  return "c";
}

std::optional<Language> language_from_name(std::string_view name) {
  if (name == "c") return Language::C;
  if (name == "basic") return Language::Basic;
  return std::nullopt;
}

std::optional<Language> language_for_path(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) return std::nullopt;
  std::string ext(path.substr(dot + 1));
  for (char& c : ext) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (ext == "c") return Language::C;
  if (ext == "bas") return Language::Basic;
  return std::nullopt;
}

namespace {

/// The value-captured state behind AnalyzedUnit::line_text.
std::function<std::string(std::size_t)> make_line_text(std::string_view source) {
  std::vector<std::string> lines;
  for (const std::string_view line : support::split(source, '\n')) {
    lines.emplace_back(line);
  }
  return [lines = std::move(lines)](std::size_t line) -> std::string {
    if (line == 0 || line > lines.size()) return "";
    return lines[line - 1];
  };
}

}  // namespace

AnalyzedUnit analyze_unit(std::string_view source,
                          const FrontendOptions& options, HliEncoding encoding,
                          bool want_hli) {
  support::DiagnosticEngine diags;
  std::optional<Program> ast;
  {
    const telemetry::Span span("frontend", "phase");
    ast.emplace(options.language == Language::Basic
                    ? frontend_basic::compile_to_ast(source, diags)
                    : compile_to_ast(source, diags));
  }

  AnalyzedUnit unit;
  unit.language = options.language;
  for (const std::string_view line : support::split(source, '\n')) {
    if (!support::trim(line).empty()) ++unit.source_lines;
  }

  if (want_hli) {
    const telemetry::Span span("hli-generate", "phase");
    builder::BuildOptions build;
    build.merge_equal_range_classes = options.merge_equal_range_classes;
    build.open_world_params = options.open_world_params;
    const format::HliFile generated = builder::build_hli(*ast, build);
    unit.hli_bytes = encoding == HliEncoding::Binary
                         ? serialize::write_hlib(generated)
                         : serialize::write_hli(generated);
  }

  {
    const telemetry::Span span("lower", "phase");
    unit.rtl = lower_program(*ast);
  }

  // Source-position map + pure hooks.  Everything below captures plain
  // values; the AST is destroyed when this function returns.
  std::map<std::string, std::size_t, std::less<>> decl_lines;
  for (const FuncDecl* func : ast->functions) {
    if (func->is_extern()) continue;
    unit.function_lines.emplace_back(func->name(), func->loc().line);
    decl_lines.emplace(func->name(), func->loc().line);
  }
  unit.line_text = make_line_text(source);
  unit.decl_line = [decl_lines = std::move(decl_lines)](
                       std::string_view name) -> std::optional<std::size_t> {
    const auto it = decl_lines.find(name);
    if (it == decl_lines.end()) return std::nullopt;
    return it->second;
  };
  return unit;
}

}  // namespace hli::frontend
