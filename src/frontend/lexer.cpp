#include "frontend/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

namespace hli::frontend {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"int", TokenKind::KwInt},       {"float", TokenKind::KwFloat},
      {"double", TokenKind::KwDouble}, {"void", TokenKind::KwVoid},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"for", TokenKind::KwFor},       {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn}, {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
  };
  return table;
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::End: return "<eof>";
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::FloatLiteral: return "float literal";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwFloat: return "'float'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::Amp: return "'&'";
    case TokenKind::Pipe: return "'|'";
    case TokenKind::Caret: return "'^'";
    case TokenKind::Tilde: return "'~'";
    case TokenKind::Shl: return "'<<'";
    case TokenKind::Shr: return "'>>'";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::Less: return "'<'";
    case TokenKind::Greater: return "'>'";
    case TokenKind::LessEq: return "'<='";
    case TokenKind::GreaterEq: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::BangEq: return "'!='";
    case TokenKind::Assign: return "'='";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::Question: return "'?'";
    case TokenKind::Colon: return "':'";
  }
  return "<bad token kind>";
}

char Lexer::peek(std::size_t ahead) const {
  const std::size_t index = pos_ + ahead;
  return index < source_.size() ? source_[index] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_whitespace_and_comments() {
  while (pos_ < source_.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (pos_ < source_.size() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const support::SourceLoc start = here();
      advance();
      advance();
      while (pos_ < source_.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (pos_ >= source_.size()) {
        diags_.error(start, "unterminated block comment");
        return;
      }
      advance();
      advance();
    } else {
      return;
    }
  }
}

Token Lexer::lex_identifier() {
  const support::SourceLoc loc = here();
  const std::size_t start = pos_;
  while (pos_ < source_.size() &&
         (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
    advance();
  }
  const std::string_view text = source_.substr(start, pos_ - start);
  Token tok;
  tok.loc = loc;
  tok.text = std::string(text);
  const auto it = keyword_table().find(text);
  tok.kind = it != keyword_table().end() ? it->second : TokenKind::Identifier;
  return tok;
}

Token Lexer::lex_number() {
  const support::SourceLoc loc = here();
  const std::size_t start = pos_;
  bool is_float = false;
  while (pos_ < source_.size() && std::isdigit(static_cast<unsigned char>(peek()))) advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_float = true;
    advance();
    while (pos_ < source_.size() && std::isdigit(static_cast<unsigned char>(peek()))) advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    std::size_t look = 1;
    if (peek(look) == '+' || peek(look) == '-') ++look;
    if (std::isdigit(static_cast<unsigned char>(peek(look)))) {
      is_float = true;
      while (look-- > 0) advance();
      while (pos_ < source_.size() && std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
  }
  const std::string_view text = source_.substr(start, pos_ - start);
  Token tok;
  tok.loc = loc;
  tok.text = std::string(text);
  if (is_float) {
    tok.kind = TokenKind::FloatLiteral;
    tok.float_value = std::stod(tok.text);
  } else {
    tok.kind = TokenKind::IntLiteral;
    std::from_chars(text.data(), text.data() + text.size(), tok.int_value);
  }
  return tok;
}

Token Lexer::next() {
  skip_whitespace_and_comments();
  Token tok;
  tok.loc = here();
  if (pos_ >= source_.size()) {
    tok.kind = TokenKind::End;
    return tok;
  }
  const char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_identifier();
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();

  advance();
  switch (c) {
    case '(': tok.kind = TokenKind::LParen; return tok;
    case ')': tok.kind = TokenKind::RParen; return tok;
    case '{': tok.kind = TokenKind::LBrace; return tok;
    case '}': tok.kind = TokenKind::RBrace; return tok;
    case '[': tok.kind = TokenKind::LBracket; return tok;
    case ']': tok.kind = TokenKind::RBracket; return tok;
    case ',': tok.kind = TokenKind::Comma; return tok;
    case ';': tok.kind = TokenKind::Semicolon; return tok;
    case '~': tok.kind = TokenKind::Tilde; return tok;
    case '?': tok.kind = TokenKind::Question; return tok;
    case ':': tok.kind = TokenKind::Colon; return tok;
    case '+':
      tok.kind = match('+') ? TokenKind::PlusPlus
               : match('=') ? TokenKind::PlusAssign
                            : TokenKind::Plus;
      return tok;
    case '-':
      tok.kind = match('-') ? TokenKind::MinusMinus
               : match('=') ? TokenKind::MinusAssign
                            : TokenKind::Minus;
      return tok;
    case '*':
      tok.kind = match('=') ? TokenKind::StarAssign : TokenKind::Star;
      return tok;
    case '/':
      tok.kind = match('=') ? TokenKind::SlashAssign : TokenKind::Slash;
      return tok;
    case '%': tok.kind = TokenKind::Percent; return tok;
    case '&':
      tok.kind = match('&') ? TokenKind::AmpAmp : TokenKind::Amp;
      return tok;
    case '|':
      tok.kind = match('|') ? TokenKind::PipePipe : TokenKind::Pipe;
      return tok;
    case '^': tok.kind = TokenKind::Caret; return tok;
    case '!':
      tok.kind = match('=') ? TokenKind::BangEq : TokenKind::Bang;
      return tok;
    case '<':
      tok.kind = match('<') ? TokenKind::Shl
               : match('=') ? TokenKind::LessEq
                            : TokenKind::Less;
      return tok;
    case '>':
      tok.kind = match('>') ? TokenKind::Shr
               : match('=') ? TokenKind::GreaterEq
                            : TokenKind::Greater;
      return tok;
    case '=':
      tok.kind = match('=') ? TokenKind::EqEq : TokenKind::Assign;
      return tok;
    default:
      diags_.error(tok.loc, std::string("unexpected character '") + c + "'");
      return next();
  }
}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  while (true) {
    Token tok = next();
    const bool done = tok.is(TokenKind::End);
    tokens.push_back(std::move(tok));
    if (done) return tokens;
  }
}

}  // namespace hli::frontend
