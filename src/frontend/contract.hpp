// The front-end / back-end thin waist (docs/thin-waist.md).
//
// `AnalyzedUnit` is the ONLY thing a front-end hands downstream: the
// lowered RTL, the serialized HLI channel, a source-position map, and a
// few pure query hooks.  No AST node survives past `analyze_unit` — every
// hook captures plain values, so a unit can be copied, moved across
// threads, or outlive its front-end arena freely.  Everything outside the
// front-end layer (src/frontend/ + src/frontend_basic/) includes THIS
// header and nothing else from the layer; scripts/check_layering.sh
// enforces that rule in CI.
//
// The paper's claim (§1) is that the serialized HLI makes the handoff
// compiler-independent.  This contract is that claim made structural: a
// second front-end (`Language::Basic`) reaches the unchanged back-end,
// verifier, auditor, parallel executor and compile service by producing
// the same struct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "backend/rtl.hpp"

namespace hli::frontend {

/// Source languages with a registered front-end.
enum class Language : std::uint8_t {
  C,      ///< The mini-C front-end (src/frontend/).
  Basic,  ///< The BASIC array language (src/frontend_basic/).
};

/// Canonical lowercase name ("c", "basic") — the spelling `--frontend=`
/// and the service wire codec use.
[[nodiscard]] std::string_view language_name(Language language);

/// Parses a canonical name; nullopt for anything unknown.
[[nodiscard]] std::optional<Language> language_from_name(std::string_view name);

/// Infers the language from a file extension (".c" / ".bas", case
///-insensitive); nullopt when the path has neither.
[[nodiscard]] std::optional<Language> language_for_path(std::string_view path);

/// Encoding of the serialized front-end -> back-end HLI channel.
enum class HliEncoding : std::uint8_t {
  Text,    ///< Line-based "HLI v1" (docs/FORMAT.md).
  Binary,  ///< HLIB container (docs/hli-binary-format.md): varint tables,
           ///< interned strings, per-unit index for demand-driven import.
};

/// Front-end configuration.  Every field that changes the emitted RTL or
/// HLI must be covered by driver::options_fingerprint and the service
/// wire codec (src/service/wire.cpp).
struct FrontendOptions {
  Language language = Language::C;
  /// When true (the paper's configuration), sub-region classes with equal
  /// widened sections are merged into a single *maybe* class in the
  /// parent, condensing the HLI at some precision cost (§2.2.1).
  bool merge_equal_range_classes = true;
  /// Open-world linkage for C pointer parameters: assume every pointer
  /// parameter of a unit may alias unknown memory on entry (as when the
  /// unit is linked against callers this compilation never sees).  The
  /// default is the closed-world whole-program view.  C-only:
  /// PipelineOptions::validate() rejects it for BASIC, which has no
  /// pointers to make the question meaningful.
  bool open_world_params = false;
};

/// Everything downstream layers may know about a compiled source file.
struct AnalyzedUnit {
  Language language = Language::C;
  /// The lowered (pre-optimization) instruction stream.  Insn::line keys
  /// into the HLI line table; memory refs and calls appear in exactly the
  /// canonical item-walk order (see frontend/lower.hpp).
  backend::RtlProgram rtl;
  /// The serialized HLI channel in the requested encoding; empty when the
  /// caller imports tables from an external store instead (want_hli
  /// false).  This is the ONLY carrier of the front-end's analysis facts.
  std::string hli_bytes;
  /// Non-empty source lines (the "code size" of Table 1).
  std::size_t source_lines = 0;
  /// Source-position map: every function the unit defines, with its
  /// declaration line, in lowering order.
  std::vector<std::pair<std::string, std::size_t>> function_lines;

  // -- Pure query hooks ---------------------------------------------------
  // Value-captured closures: they answer from copies taken at analysis
  // time and hold no pointer into any front-end structure.

  /// Text of a 1-based source line ("" when out of range) — diagnostics
  /// and report renderers attach source context through this.
  std::function<std::string(std::size_t line)> line_text;
  /// Declaration line of a function defined by this unit (nullopt for
  /// externs and unknown names).
  std::function<std::optional<std::size_t>(std::string_view name)> decl_line;
};

/// Runs the front-end selected by `options.language` over `source`:
/// parse, semantic analysis, HLI generation (skipped when `want_hli` is
/// false — e.g. the tables will come from a pre-built store), and RTL
/// lowering.  Throws support::CompileError on any front-end diagnostic.
[[nodiscard]] AnalyzedUnit analyze_unit(std::string_view source,
                                        const FrontendOptions& options = {},
                                        HliEncoding encoding = HliEncoding::Text,
                                        bool want_hli = true);

}  // namespace hli::frontend
