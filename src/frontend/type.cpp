#include "frontend/type.hpp"

namespace hli::frontend {

std::uint64_t Type::byte_size() const {
  switch (kind_) {
    case TypeKind::Void: return 0;
    case TypeKind::Int: return 4;
    case TypeKind::Float: return 4;
    case TypeKind::Double: return 8;
    case TypeKind::Pointer: return 8;
    case TypeKind::Array: return array_size_ * element_->byte_size();
  }
  return 0;
}

std::string Type::to_string() const {
  switch (kind_) {
    case TypeKind::Void: return "void";
    case TypeKind::Int: return "int";
    case TypeKind::Float: return "float";
    case TypeKind::Double: return "double";
    case TypeKind::Pointer: return element_->to_string() + "*";
    case TypeKind::Array: {
      // Print dimensions outside-in, matching C declarator order:
      // array<4, array<8, float>> renders as "float[4][8]".
      const Type* elem = this;
      std::string dims;
      while (elem->is_array()) {
        dims += "[" + std::to_string(elem->array_size()) + "]";
        elem = elem->element();
      }
      return elem->to_string() + dims;
    }
  }
  return "<bad type>";
}

TypeContext::TypeContext() {
  void_ = make(TypeKind::Void, nullptr, 0);
  int_ = make(TypeKind::Int, nullptr, 0);
  float_ = make(TypeKind::Float, nullptr, 0);
  double_ = make(TypeKind::Double, nullptr, 0);
}

const Type* TypeContext::make(TypeKind kind, const Type* element, std::uint64_t size) {
  storage_.push_back(std::unique_ptr<Type>(new Type(kind, element, size)));
  return storage_.back().get();
}

const Type* TypeContext::pointer_to(const Type* element) {
  for (const auto& t : storage_) {
    if (t->kind() == TypeKind::Pointer && t->element() == element) return t.get();
  }
  return make(TypeKind::Pointer, element, 0);
}

const Type* TypeContext::array_of(const Type* element, std::uint64_t count) {
  for (const auto& t : storage_) {
    if (t->kind() == TypeKind::Array && t->element() == element &&
        t->array_size() == count) {
      return t.get();
    }
  }
  return make(TypeKind::Array, element, count);
}

const Type* TypeContext::common_arithmetic(const Type* a, const Type* b) const {
  if (a->kind() == TypeKind::Double || b->kind() == TypeKind::Double) return double_;
  if (a->kind() == TypeKind::Float || b->kind() == TypeKind::Float) return float_;
  return int_;
}

}  // namespace hli::frontend
