// AST -> RTL lowering (the front-end's instruction selection).
//
// Lives in the front-end layer: this is the last stage that sees the AST.
// Everything downstream of the AnalyzedUnit contract consumes only the RTL
// it produces (plus the serialized HLI tables).
//
// CONTRACT: for every source line, memory references and calls are emitted
// in exactly the order analysis::walk_items reports items for that line —
// that is the invariant the HLI line-table mapping rests on (paper §3.1.1:
// "the RTL generation rules in GCC must be considered in the HLI
// generation").  Integration tests map every workload and assert zero
// mismatches.
#pragma once

#include "backend/rtl.hpp"
#include "frontend/ast.hpp"

namespace hli::frontend {

/// Lowers a whole (sema-checked) program.  Scalar locals and params become
/// virtual registers; globals, arrays and address-taken locals get memory.
[[nodiscard]] backend::RtlProgram lower_program(Program& prog);

}  // namespace hli::frontend
