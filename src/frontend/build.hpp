// Programmatic AST construction.  The parser builds a Program from source
// text; AstBuilder builds one directly, which is what the fuzz generator
// (src/testing/generator.cpp) and any test that wants a tree without
// hand-writing mini-C use.  The builder assigns monotonically increasing
// synthetic source lines so a built tree can feed HLI generation directly;
// a tree rendered with frontend::print_program (print.hpp) and re-parsed
// gets real coordinates from the lexer instead.
//
// The builder does NOT run sema: name resolution on VarRef/Call nodes is
// filled in eagerly (the builder works from resolved VarDecl*/callee
// names), but derived attributes (expression types, address-taken flags,
// loop ids) stay unset until Sema::run — or until the printed source is
// re-compiled through compile_to_ast, which is how the fuzz harness uses
// it.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace hli::frontend {

class AstBuilder {
 public:
  AstBuilder() = default;

  [[nodiscard]] Program& program() { return prog_; }
  [[nodiscard]] Program take() { return std::move(prog_); }

  // --- types -------------------------------------------------------------
  [[nodiscard]] const Type* void_type() { return prog_.types.void_type(); }
  [[nodiscard]] const Type* int_type() { return prog_.types.int_type(); }
  [[nodiscard]] const Type* double_type() { return prog_.types.double_type(); }
  [[nodiscard]] const Type* pointer_to(const Type* elem) {
    return prog_.types.pointer_to(elem);
  }
  [[nodiscard]] const Type* array_of(const Type* elem, std::uint64_t n) {
    return prog_.types.array_of(elem, n);
  }

  // --- declarations ------------------------------------------------------
  /// File-scope variable, registered in Program::globals.
  VarDecl* global(std::string name, const Type* type, Expr* init = nullptr);

  /// A function definition shell; fill params with param() and attach a
  /// body with body().  Leaving the body null makes it an extern
  /// declaration (e.g. `void emit(int v);`).
  FuncDecl* function(std::string name, const Type* return_type);
  VarDecl* param(FuncDecl* func, std::string name, const Type* type);
  BlockStmt* body(FuncDecl* func);

  /// Function-scope variable owned by `func`; wrap in decl_stmt() to place
  /// it in a block.
  VarDecl* local(FuncDecl* func, std::string name, const Type* type,
                 Expr* init = nullptr);

  // --- expressions -------------------------------------------------------
  Expr* lit(std::int64_t value);
  Expr* flit(double value, bool single_precision = false);
  Expr* ref(VarDecl* decl);
  Expr* index(Expr* base, Expr* subscript);
  Expr* unary(UnaryOp op, Expr* operand);
  Expr* binary(BinaryOp op, Expr* lhs, Expr* rhs);
  Expr* assign(Expr* lhs, Expr* rhs, AssignOp op = AssignOp::None);
  Expr* call(const FuncDecl* callee, std::vector<Expr*> args);
  Expr* call(std::string callee, std::vector<Expr*> args);
  Expr* cond(Expr* c, Expr* then_expr, Expr* else_expr);

  // --- statements --------------------------------------------------------
  BlockStmt* block();
  void append(BlockStmt* block, Stmt* stmt);
  Stmt* decl_stmt(VarDecl* decl);
  Stmt* expr_stmt(Expr* expr);
  Stmt* if_stmt(Expr* cond, Stmt* then_stmt, Stmt* else_stmt = nullptr);
  Stmt* while_stmt(Expr* cond, Stmt* body);
  Stmt* for_stmt(Stmt* init, Expr* cond, Expr* step, Stmt* body);
  Stmt* return_stmt(Expr* value = nullptr);
  Stmt* break_stmt();
  Stmt* continue_stmt();

 private:
  /// Next synthetic source line; one line per statement-ish node keeps the
  /// line table non-degenerate if the built tree feeds HLI gen directly.
  [[nodiscard]] SourceLoc here() { return {line_, 1}; }
  [[nodiscard]] SourceLoc next_line() { return {line_++, 1}; }

  Program prog_;
  std::uint32_t line_ = 1;
};

}  // namespace hli::frontend
