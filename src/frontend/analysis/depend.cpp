#include "frontend/analysis/depend.hpp"

#include "frontend/analysis/section.hpp"

#include <cstdlib>
#include <numeric>

namespace hli::analysis {

namespace {

/// Splits an affine form into (coefficient of the induction variable,
/// residue form with that term removed).
std::pair<std::int64_t, AffineExpr> split_induction(const AffineExpr& form,
                                                    const VarDecl* induction) {
  const std::int64_t coeff = form.coefficient(induction);
  if (coeff == 0) return {0, form};
  AffineExpr ind_part = AffineExpr::variable(induction).scaled(coeff);
  return {coeff, form.minus(ind_part)};
}

/// Trip count when both bounds are compile-time constants.
std::optional<std::int64_t> trip_count(const CanonicalLoop& loop) {
  if (!loop.lower || !loop.upper) return std::nullopt;
  const std::int64_t span = *loop.upper - *loop.lower;
  if (span <= 0) return 0;
  return (span + loop.step - 1) / loop.step;
}

}  // namespace

DependenceResult test_one_dim(const CanonicalLoop* loop, const AffineExpr& a,
                              const AffineExpr& b) {
  if (!a.is_affine() || !b.is_affine()) return DependenceResult::unknown();

  if (loop == nullptr || loop->induction == nullptr) {
    // No iteration structure to reason about: equality of the full forms is
    // the only provable fact (and only when both are loop-invariant, which
    // we cannot check here — stay conservative unless constant).
    if (a.is_constant() && b.is_constant()) {
      if (a.constant_part() == b.constant_part()) {
        return {IterRelation::Equal, {CarriedKind::Maybe, std::nullopt}};
      }
      return DependenceResult::independent();
    }
    if (a.equals(b)) {
      return {IterRelation::Equal, {CarriedKind::Maybe, std::nullopt}};
    }
    return DependenceResult::unknown();
  }

  const auto [ca, ra] = split_induction(a, loop->induction);
  const auto [cb, rb] = split_induction(b, loop->induction);

  // The residues must be the same linear function of everything else,
  // otherwise the difference is symbolic and nothing can be proven.
  const AffineExpr residue_delta = rb.minus(ra);
  if (!residue_delta.is_constant()) return DependenceResult::unknown();
  const std::int64_t delta = residue_delta.constant_part();
  // Dependence equation: ca*i + delta' = cb*i'  with delta' folded into
  // delta as rb - ra, i.e.  ca*i - cb*i' + delta = 0.

  if (ca == 0 && cb == 0) {
    // ZIV: both subscripts invariant in this loop.
    if (delta == 0) {
      // Same location every iteration: equal within an iteration, and the
      // location is also reused across iterations (handled by class
      // merging; carried distance is meaningless so report Maybe).
      return {IterRelation::Equal, {CarriedKind::Maybe, std::nullopt}};
    }
    return DependenceResult::independent();
  }

  if (ca == cb) {
    // Strong SIV: a(i) = c*i + ra, b(i) = c*i + ra + delta.
    if (delta % ca != 0) return DependenceResult::independent();
    const std::int64_t d = delta / ca;  // b at iteration i equals a at i + d.
    if (d == 0) {
      return {IterRelation::Equal, {CarriedKind::None, std::nullopt}};
    }
    // Prune by trip count when bounds are known.
    if (const auto trips = trip_count(*loop)) {
      if (std::llabs(d) >= *trips) return DependenceResult::independent();
    }
    return {IterRelation::Disjoint, {CarriedKind::Definite, std::llabs(d)}};
  }

  if (ca == 0 || cb == 0) {
    // Weak-zero SIV: one side is invariant; they collide in at most one
    // iteration.  b[0] vs b[j] in the paper's Figure 2 lands here and
    // produces the region's alias entry.
    const std::int64_t coeff = ca != 0 ? ca : cb;
    if (delta % coeff != 0) return DependenceResult::independent();
    const std::int64_t iter_offset = (ca != 0 ? delta : -delta) / coeff;
    // The colliding iteration is i = lower + step*k for some k; check range
    // when the bounds are known.  iter_offset is in "index space" of the
    // induction variable value.
    if (loop->lower && loop->upper) {
      const std::int64_t value = iter_offset;
      const bool in_range = value >= *loop->lower && value < *loop->upper &&
                            (value - *loop->lower) % loop->step == 0;
      if (!in_range) return DependenceResult::independent();
    }
    return {IterRelation::MaybeOverlap, {CarriedKind::Maybe, std::nullopt}};
  }

  // General SIV with different coefficients: GCD test.
  const std::int64_t g = std::gcd(std::llabs(ca), std::llabs(cb));
  if (delta % g != 0) return DependenceResult::independent();
  return DependenceResult::unknown();
}

DependenceResult test_subscripts(const CanonicalLoop* loop,
                                 std::span<const AffineExpr> a,
                                 std::span<const AffineExpr> b) {
  if (a.size() != b.size()) return DependenceResult::unknown();
  if (a.empty()) {
    // Scalar access pair: same location by definition of "same base".
    return {IterRelation::Equal, {CarriedKind::Maybe, std::nullopt}};
  }
  // Delegate to the section engine: points are degenerate sections.  This
  // keeps one dependence core for both item-level and class-level tests.
  Section sa, sb;
  for (const AffineExpr& e : a) sa.dims.push_back(DimSection::point(e));
  for (const AffineExpr& e : b) sb.dims.push_back(DimSection::point(e));
  const SectionDependence r = section_depend(loop, sa, sb);

  DependenceResult out;
  out.within = r.within;
  const CarriedDep& fwd = r.a_then_b;
  const CarriedDep& rev = r.b_then_a;
  if (fwd.kind == CarriedKind::None && rev.kind == CarriedKind::None) {
    out.carried = {CarriedKind::None, std::nullopt};
  } else if (fwd.kind == CarriedKind::Definite && rev.kind == CarriedKind::None) {
    out.carried = fwd;
  } else if (rev.kind == CarriedKind::Definite && fwd.kind == CarriedKind::None) {
    out.carried = rev;
  } else {
    out.carried = {CarriedKind::Maybe, std::nullopt};
  }
  return out;
}

}  // namespace hli::analysis
