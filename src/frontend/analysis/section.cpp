#include "frontend/analysis/section.hpp"

#include <limits>
#include <numeric>

namespace hli::analysis {

bool Section::equals(const Section& other) const {
  if (dims.size() != other.dims.size()) return false;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (!dims[i].lo.is_affine() || !other.dims[i].lo.is_affine()) return false;
    if (!dims[i].lo.equals(other.dims[i].lo)) return false;
    if (!dims[i].hi.equals(other.dims[i].hi)) return false;
  }
  return true;
}

bool Section::is_exact() const {
  for (const auto& d : dims) {
    if (!d.is_exact()) return false;
  }
  return true;
}

std::string Section::to_string() const {
  if (dims.empty()) return "<scalar>";
  std::string out;
  for (const auto& d : dims) {
    out += "[";
    if (d.is_unknown()) {
      out += "?";
    } else if (d.is_exact()) {
      out += d.lo.to_string();
    } else {
      out += d.lo.to_string() + ".." + d.hi.to_string();
    }
    out += "]";
  }
  return out;
}

Section widen_over_loop(const Section& section, const CanonicalLoop* loop) {
  if (loop == nullptr || loop->induction == nullptr) {
    // Non-canonical loop: any dimension mentioning anything becomes
    // unknown unless it is a pure constant range.
    Section out = section;
    for (auto& d : out.dims) {
      const bool constant = d.lo.is_affine() && d.hi.is_affine() &&
                            d.lo.is_constant() && d.hi.is_constant();
      if (!constant) d = DimSection::unknown();
    }
    return out;
  }
  Section out;
  out.dims.reserve(section.dims.size());
  for (const auto& d : section.dims) {
    if (d.is_unknown()) {
      out.dims.push_back(DimSection::unknown());
      continue;
    }
    const std::int64_t c_lo = d.lo.coefficient(loop->induction);
    const std::int64_t c_hi = d.hi.coefficient(loop->induction);
    if (c_lo == 0 && c_hi == 0) {
      out.dims.push_back(d);
      continue;
    }
    if (!loop->lower || !loop->upper) {
      out.dims.push_back(DimSection::unknown());
      continue;
    }
    // Last induction value actually taken.
    const std::int64_t first = *loop->lower;
    if (*loop->upper <= first) {
      // Zero-trip loop; keep a degenerate point at the first value.
      out.dims.push_back(
          {d.lo.substituted(loop->induction, first),
           d.hi.substituted(loop->induction, first)});
      continue;
    }
    const std::int64_t last =
        first + ((*loop->upper - 1 - first) / loop->step) * loop->step;
    DimSection widened;
    widened.lo = c_lo > 0 ? d.lo.substituted(loop->induction, first)
                          : d.lo.substituted(loop->induction, last);
    widened.hi = c_hi > 0 ? d.hi.substituted(loop->induction, last)
                          : d.hi.substituted(loop->induction, first);
    out.dims.push_back(std::move(widened));
  }
  return out;
}

namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min() / 4;
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max() / 4;

/// Feasible set of signed iteration distances d (b's iteration minus a's)
/// at which a dimension's ranges can coincide.  `precise` is false when the
/// bounds are conservative (true feasible set may be smaller).
struct DSet {
  bool empty = false;
  std::int64_t lo = kMin;
  std::int64_t hi = kMax;
  bool precise = true;

  [[nodiscard]] static DSet none() { return {true, 0, 0, true}; }
  [[nodiscard]] static DSet all_imprecise() { return {false, kMin, kMax, false}; }
  [[nodiscard]] static DSet singleton(std::int64_t d) { return {false, d, d, true}; }

  [[nodiscard]] DSet intersect(const DSet& other) const {
    if (empty || other.empty) return none();
    DSet out;
    out.lo = std::max(lo, other.lo);
    out.hi = std::min(hi, other.hi);
    out.precise = precise && other.precise;
    if (out.lo > out.hi) return none();
    return out;
  }

  [[nodiscard]] bool contains(std::int64_t d) const {
    return !empty && d >= lo && d <= hi;
  }
};

std::int64_t div_ceil(std::int64_t num, std::int64_t den) {
  const std::int64_t q = num / den;
  const bool exact = num % den == 0;
  const bool positive = (num > 0) == (den > 0);
  return q + ((!exact && positive) ? 1 : 0);
}

std::int64_t div_floor(std::int64_t num, std::int64_t den) {
  const std::int64_t q = num / den;
  const bool exact = num % den == 0;
  const bool positive = (num > 0) == (den > 0);
  return q - ((!exact && !positive) ? 1 : 0);
}

/// Clamps a linear constraint  c*d + k >= 0  to a DSet over d.
DSet constraint_set(std::int64_t c, std::int64_t k) {
  if (c == 0) return k >= 0 ? DSet{} : DSet::none();
  DSet out;
  if (c > 0) {
    out.lo = div_ceil(-k, c);  // d >= -k/c.
  } else {
    out.hi = div_floor(-k, c);  // d <= -k/c with c < 0 flipping the sense.
  }
  return out;
}

struct DimDep {
  DSet dset;
  bool equal_at_zero = false;  ///< Exactly the same point when d == 0.
  bool disjoint_at_zero = false;
};

DimDep analyze_dim(const CanonicalLoop& loop, const DimSection& a,
                   const DimSection& b) {
  DimDep out;
  if (a.is_unknown() || b.is_unknown()) {
    out.dset = DSet::all_imprecise();
    return out;
  }
  const VarDecl* ind = loop.induction;
  const std::int64_t stride = loop.step;

  if (a.is_exact() && b.is_exact()) {
    // Point-vs-point: solve  b(i + stride*d) == a(i).
    const AffineExpr diff = b.lo.minus(a.lo);  // At the same iteration i.
    const std::int64_t c_a = a.lo.coefficient(ind);
    const std::int64_t c_b = b.lo.coefficient(ind);
    const std::int64_t shift = c_b * stride;  // Effect of one iteration of lag.
    if (c_a == c_b) {
      const AffineExpr residue =
          diff.minus(AffineExpr::variable(ind).scaled(diff.coefficient(ind)));
      if (!residue.is_constant()) {
        // Symbolic difference: unknown feasibility.
        out.dset = DSet::all_imprecise();
        return out;
      }
      const std::int64_t delta = residue.constant_part();
      if (shift == 0) {
        if (delta == 0) {
          out.dset = DSet{};  // Same location at every distance.
          out.equal_at_zero = true;
        } else {
          out.dset = DSet::none();
          out.disjoint_at_zero = true;
        }
        return out;
      }
      // delta + shift*d == 0.
      if (delta % shift != 0) {
        out.dset = DSet::none();
        out.disjoint_at_zero = true;
        return out;
      }
      const std::int64_t d = -delta / shift;
      out.dset = DSet::singleton(d);
      out.equal_at_zero = d == 0;
      out.disjoint_at_zero = d != 0;
      return out;
    }
    // Different induction coefficients: GCD feasibility over (i, d).
    const std::int64_t ci = c_b - c_a;
    const AffineExpr residue =
        diff.minus(AffineExpr::variable(ind).scaled(diff.coefficient(ind)));
    if (!residue.is_constant()) {
      out.dset = DSet::all_imprecise();
      return out;
    }
    const std::int64_t delta = residue.constant_part();
    const std::int64_t g = std::gcd(std::llabs(ci), std::llabs(shift));
    if (g != 0 && delta % g != 0) {
      out.dset = DSet::none();
      out.disjoint_at_zero = true;
      return out;
    }
    out.dset = DSet::all_imprecise();
    return out;
  }

  // Range-vs-range (or point-vs-range).  Overlap at lag d requires
  //   lo_a(i) <= hi_b(i + stride*d)   and   lo_b(i + stride*d) <= hi_a(i).
  const AffineExpr gap1 = b.hi.minus(a.lo);  // Must be >= -c_hb*stride*d.
  const AffineExpr gap2 = a.hi.minus(b.lo);  // Must be >= +c_lb*stride*d.
  if (!gap1.is_constant() || !gap2.is_constant()) {
    out.dset = DSet::all_imprecise();
    return out;
  }
  const std::int64_t c_hb = b.hi.coefficient(ind);
  const std::int64_t c_lb = b.lo.coefficient(ind);
  // gap1 + c_hb*stride*d >= 0  and  gap2 - c_lb*stride*d >= 0.
  const DSet s1 = constraint_set(c_hb * stride, gap1.constant_part());
  const DSet s2 = constraint_set(-c_lb * stride, gap2.constant_part());
  out.dset = s1.intersect(s2);
  // Ranges are conservative approximations of the instance footprints, so
  // feasibility here is "may", never "must".
  out.dset.precise = false;
  out.disjoint_at_zero = !out.dset.contains(0);
  return out;
}

CarriedDep classify_direction(const DSet& dset, bool positive) {
  // Restrict the feasible set to d >= 1 (or d <= -1 for the other order).
  DSet dir;
  if (positive) {
    dir.lo = 1;
  } else {
    dir.hi = -1;
  }
  const DSet restricted = dset.intersect(dir);
  if (restricted.empty) return {CarriedKind::None, std::nullopt};
  if (restricted.precise && restricted.lo == restricted.hi) {
    return {CarriedKind::Definite, std::llabs(restricted.lo)};
  }
  // Report the minimum possible distance when the bounds are finite; the
  // scheduler only needs a lower bound to be safe.
  std::optional<std::int64_t> min_dist;
  const std::int64_t near = positive ? restricted.lo : -restricted.hi;
  if (near > 1 && near < kMax / 2) min_dist = near;
  return {CarriedKind::Maybe, min_dist};
}

}  // namespace

SectionDependence section_depend(const CanonicalLoop* loop, const Section& a,
                                 const Section& b) {
  SectionDependence out;
  if (a.dims.size() != b.dims.size()) {
    // Rank mismatch (e.g. whole-array vs element through differently-typed
    // pointers): stay conservative.
    return out;
  }
  if (loop == nullptr || loop->induction == nullptr) {
    // No iteration structure: only structural equality or constant
    // disjointness can be decided.
    if (a.equals(b)) {
      out.within = IterRelation::Equal;
      return out;
    }
    bool provably_disjoint = false;
    for (std::size_t i = 0; i < a.dims.size(); ++i) {
      const auto& da = a.dims[i];
      const auto& db = b.dims[i];
      if (da.is_unknown() || db.is_unknown()) continue;
      const AffineExpr g1 = db.hi.minus(da.lo);
      const AffineExpr g2 = da.hi.minus(db.lo);
      if (g1.is_constant() && g1.constant_part() < 0) provably_disjoint = true;
      if (g2.is_constant() && g2.constant_part() < 0) provably_disjoint = true;
    }
    if (provably_disjoint) {
      out.within = IterRelation::Disjoint;
      out.a_then_b = {CarriedKind::None, std::nullopt};
      out.b_then_a = {CarriedKind::None, std::nullopt};
    }
    return out;
  }

  if (a.dims.empty()) {
    // Scalars over the same base: identical location always.
    out.within = IterRelation::Equal;
    return out;
  }

  DSet combined;
  bool all_equal_at_zero = true;
  bool any_disjoint_at_zero = false;
  for (std::size_t i = 0; i < a.dims.size(); ++i) {
    const DimDep dim = analyze_dim(*loop, a.dims[i], b.dims[i]);
    combined = combined.intersect(dim.dset);
    if (!dim.equal_at_zero) all_equal_at_zero = false;
    if (dim.disjoint_at_zero) any_disjoint_at_zero = true;
    if (combined.empty) break;
  }

  // Clamp to the window of realizable lags when the trip count is known.
  if (loop->lower && loop->upper) {
    const std::int64_t span = *loop->upper - *loop->lower;
    const std::int64_t trips = span <= 0 ? 0 : (span + loop->step - 1) / loop->step;
    DSet window;
    window.lo = -(trips > 0 ? trips - 1 : 0);
    window.hi = trips > 0 ? trips - 1 : 0;
    combined = combined.intersect(window);
  }

  if (combined.empty) {
    out.within = IterRelation::Disjoint;
    out.a_then_b = {CarriedKind::None, std::nullopt};
    out.b_then_a = {CarriedKind::None, std::nullopt};
    return out;
  }

  if (all_equal_at_zero) {
    out.within = IterRelation::Equal;
  } else if (any_disjoint_at_zero || !combined.contains(0)) {
    out.within = IterRelation::Disjoint;
  } else {
    out.within = IterRelation::MaybeOverlap;
  }
  out.a_then_b = classify_direction(combined, /*positive=*/true);
  out.b_then_a = classify_direction(combined, /*positive=*/false);
  return out;
}

}  // namespace hli::analysis
