#include "frontend/analysis/pointsto.hpp"

#include <array>
#include <string_view>

namespace hli::analysis {

using namespace frontend;

bool is_pure_extern(const std::string& name) {
  static constexpr std::array<std::string_view, 10> kPure = {
      "sqrt", "fabs", "sin", "cos", "exp", "log", "pow", "floor", "ceil", "atan"};
  for (const auto candidate : kPure) {
    if (name == candidate) return true;
  }
  return false;
}

int PointsToAnalysis::node_of(const VarDecl* var) {
  const auto it = var_nodes_.find(var);
  if (it != var_nodes_.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  var_nodes_.emplace(var, id);
  return id;
}

int PointsToAnalysis::retval_node(const FuncDecl* func) {
  const auto it = ret_nodes_.find(func);
  if (it != ret_nodes_.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  ret_nodes_.emplace(func, id);
  return id;
}

void PointsToAnalysis::add_copy(int from, int to) {
  if (from < 0 || to < 0 || from == to) return;
  nodes_[from].copy_out.push_back(to);
}

void PointsToAnalysis::add_address(int node, const VarDecl* object) {
  if (node < 0 || object == nullptr) return;
  // Ensure the object has a node up front so solve() never reallocates
  // nodes_ while holding references into it.
  (void)node_of(object);
  nodes_[node].pts.insert(object);
}

void PointsToAnalysis::mark_unknown(int node) {
  if (node >= 0) nodes_[node].unknown = true;
}

int PointsToAnalysis::value_node(const Expr* expr) {
  if (expr == nullptr) return -1;
  switch (expr->kind()) {
    case ExprKind::VarRef: {
      const auto* ref = static_cast<const VarRefExpr*>(expr);
      if (ref->decl == nullptr) return -1;
      if (ref->decl->type()->is_array()) {
        // Array decay: the value is the array's address.
        const int tmp = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        add_address(tmp, ref->decl);
        return tmp;
      }
      return node_of(ref->decl);
    }
    case ExprKind::Unary: {
      const auto* un = static_cast<const UnaryExpr*>(expr);
      if (un->op == UnaryOp::AddrOf) {
        // &lvalue: find the root object.
        const Expr* root = un->operand;
        bool subscripted = false;
        while (root->kind() == ExprKind::ArrayIndex) {
          root = static_cast<const ArrayIndexExpr*>(root)->base;
          subscripted = true;
        }
        if (root->kind() == ExprKind::VarRef) {
          const auto* ref = static_cast<const VarRefExpr*>(root);
          if (ref->decl == nullptr) return -1;
          if (subscripted && ref->decl->type()->is_pointer()) {
            // &p[i] with p a pointer: the value aliases whatever p points to.
            return node_of(ref->decl);
          }
          // &var (including &ptr_var) or &arr[i]: the address of the object.
          const int tmp = static_cast<int>(nodes_.size());
          nodes_.emplace_back();
          add_address(tmp, ref->decl);
          return tmp;
        }
        return -1;
      }
      if (un->op == UnaryOp::Deref) {
        // Value loaded through a pointer: *q.
        const int q = value_node(un->operand);
        if (q < 0) return -1;
        const int tmp = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        nodes_[q].load_into.push_back(tmp);
        return tmp;
      }
      return -1;
    }
    case ExprKind::Binary: {
      // Pointer arithmetic preserves the referenced object set.
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      if (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub) {
        const Type* lt = bin->lhs->type;
        if (lt != nullptr && (lt->is_pointer() || lt->is_array())) {
          return value_node(bin->lhs);
        }
        const Type* rt = bin->rhs->type;
        if (rt != nullptr && (rt->is_pointer() || rt->is_array())) {
          return value_node(bin->rhs);
        }
      }
      return -1;
    }
    case ExprKind::ArrayIndex: {
      const auto* idx = static_cast<const ArrayIndexExpr*>(expr);
      // Row decay: m[i] of a multi-dim array is the address of part of m.
      if (expr->type != nullptr && expr->type->is_array()) {
        const Expr* base = idx->base;
        while (base->kind() == ExprKind::ArrayIndex) {
          base = static_cast<const ArrayIndexExpr*>(base)->base;
        }
        if (base->kind() == ExprKind::VarRef) {
          const auto* ref = static_cast<const VarRefExpr*>(base);
          if (ref->decl != nullptr) {
            const int tmp = static_cast<int>(nodes_.size());
            nodes_.emplace_back();
            add_address(tmp, ref->decl);
            return tmp;
          }
        }
        return -1;
      }
      // q[i] where elements are pointers: a load through q.
      const Expr* base = idx->base;
      while (base->kind() == ExprKind::ArrayIndex) {
        base = static_cast<const ArrayIndexExpr*>(base)->base;
      }
      if (base->kind() != ExprKind::VarRef) return -1;
      const auto* ref = static_cast<const VarRefExpr*>(base);
      if (ref->decl == nullptr) return -1;
      if (ref->decl->type()->is_array()) {
        // Pointer element loaded from an array-of-pointers object.
        const int obj = node_of(ref->decl);
        const int tmp = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        add_copy(obj, tmp);
        return tmp;
      }
      // Pointer-to-pointer load.
      const int q = node_of(ref->decl);
      const int tmp = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      nodes_[q].load_into.push_back(tmp);
      return tmp;
    }
    case ExprKind::Call: {
      const auto* call = static_cast<const CallExpr*>(expr);
      if (call->callee_decl == nullptr) return -1;
      if (call->callee_decl->is_extern()) {
        const int tmp = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        if (!is_pure_extern(call->callee)) mark_unknown(tmp);
        return tmp;
      }
      return retval_node(call->callee_decl);
    }
    case ExprKind::Conditional: {
      const auto* cond = static_cast<const ConditionalExpr*>(expr);
      const int a = value_node(cond->then_expr);
      const int b = value_node(cond->else_expr);
      const int tmp = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
      add_copy(a, tmp);
      add_copy(b, tmp);
      return tmp;
    }
    default:
      return -1;
  }
}

void PointsToAnalysis::assign_into(int lhs_node, const Expr* rhs) {
  if (lhs_node < 0 || rhs == nullptr) return;
  const int value = value_node(rhs);
  if (value < 0) {
    // Unanalyzable pointer expression: be conservative.
    mark_unknown(lhs_node);
    return;
  }
  add_copy(value, lhs_node);
}

void PointsToAnalysis::collect_expr(const Expr* expr, const FuncDecl* func) {
  if (expr == nullptr) return;
  switch (expr->kind()) {
    case ExprKind::Assign: {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      collect_expr(assign->rhs, func);
      collect_expr(assign->lhs, func);
      const Type* lhs_type = assign->lhs->type;
      const bool pointer_store =
          lhs_type != nullptr && lhs_type->is_pointer() && assign->op == AssignOp::None;
      if (!pointer_store) return;
      if (assign->lhs->kind() == ExprKind::VarRef) {
        const auto* ref = static_cast<const VarRefExpr*>(assign->lhs);
        if (ref->decl != nullptr) assign_into(node_of(ref->decl), assign->rhs);
        return;
      }
      // Storing a pointer through memory: *p = q or a[i] = q.
      const Expr* base = assign->lhs;
      while (base->kind() == ExprKind::ArrayIndex) {
        base = static_cast<const ArrayIndexExpr*>(base)->base;
      }
      if (base->kind() == ExprKind::Unary &&
          static_cast<const UnaryExpr*>(base)->op == UnaryOp::Deref) {
        base = static_cast<const UnaryExpr*>(base)->operand;
        while (base->kind() == ExprKind::ArrayIndex) {
          base = static_cast<const ArrayIndexExpr*>(base)->base;
        }
      }
      if (base->kind() == ExprKind::VarRef) {
        const auto* ref = static_cast<const VarRefExpr*>(base);
        if (ref->decl == nullptr) return;
        const int value = value_node(assign->rhs);
        if (ref->decl->type()->is_array()) {
          // Array-of-pointers element store: fold into the array object.
          if (value >= 0) add_copy(value, node_of(ref->decl));
          return;
        }
        const int p = node_of(ref->decl);
        if (value >= 0) {
          nodes_[value].store_from.push_back(p);
        } else {
          // Unknown value stored through p: everything p reaches is tainted.
          // Handled in solve() via the unknown flag on a fresh node.
          const int tmp = static_cast<int>(nodes_.size());
          nodes_.emplace_back();
          mark_unknown(tmp);
          nodes_[tmp].store_from.push_back(p);
        }
      }
      return;
    }
    case ExprKind::Call: {
      const auto* call = static_cast<const CallExpr*>(expr);
      for (const Expr* arg : call->args) collect_expr(arg, func);
      if (call->callee_decl == nullptr) return;
      FuncDecl* callee = call->callee_decl;
      if (callee->is_extern()) {
        if (!is_pure_extern(call->callee)) {
          // Pointer arguments escape to the unknown world.
          for (const Expr* arg : call->args) {
            const Type* t = arg->type;
            if (t != nullptr && (t->is_pointer() || t->is_array())) {
              const int v = value_node(arg);
              mark_unknown(v);
            }
          }
        }
        return;
      }
      const std::size_t n = std::min(call->args.size(), callee->params.size());
      for (std::size_t i = 0; i < n; ++i) {
        const Type* pt = callee->params[i]->type();
        if (pt->is_pointer()) {
          assign_into(node_of(callee->params[i]), call->args[i]);
        }
      }
      return;
    }
    case ExprKind::Binary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      collect_expr(bin->lhs, func);
      collect_expr(bin->rhs, func);
      return;
    }
    case ExprKind::Unary:
      collect_expr(static_cast<const UnaryExpr*>(expr)->operand, func);
      return;
    case ExprKind::ArrayIndex: {
      const auto* idx = static_cast<const ArrayIndexExpr*>(expr);
      collect_expr(idx->base, func);
      collect_expr(idx->index, func);
      return;
    }
    case ExprKind::Conditional: {
      const auto* cond = static_cast<const ConditionalExpr*>(expr);
      collect_expr(cond->cond, func);
      collect_expr(cond->then_expr, func);
      collect_expr(cond->else_expr, func);
      return;
    }
    default:
      return;
  }
}

void PointsToAnalysis::collect_stmt(const Stmt* stmt, const FuncDecl* func) {
  if (stmt == nullptr) return;
  switch (stmt->kind()) {
    case StmtKind::Decl: {
      const auto* decl_stmt = static_cast<const DeclStmt*>(stmt);
      const VarDecl* decl = decl_stmt->decl;
      if (decl->init != nullptr) {
        collect_expr(decl->init, func);
        if (decl->type()->is_pointer()) {
          assign_into(node_of(decl), decl->init);
        }
      }
      return;
    }
    case StmtKind::Expr:
      collect_expr(static_cast<const ExprStmt*>(stmt)->expr, func);
      return;
    case StmtKind::Block:
      for (const Stmt* s : static_cast<const BlockStmt*>(stmt)->stmts) {
        collect_stmt(s, func);
      }
      return;
    case StmtKind::If: {
      const auto* ifs = static_cast<const IfStmt*>(stmt);
      collect_expr(ifs->cond, func);
      collect_stmt(ifs->then_stmt, func);
      collect_stmt(ifs->else_stmt, func);
      return;
    }
    case StmtKind::While: {
      const auto* loop = static_cast<const WhileStmt*>(stmt);
      collect_expr(loop->cond, func);
      collect_stmt(loop->body, func);
      return;
    }
    case StmtKind::For: {
      const auto* loop = static_cast<const ForStmt*>(stmt);
      collect_stmt(loop->init, func);
      collect_expr(loop->cond, func);
      collect_expr(loop->step, func);
      collect_stmt(loop->body, func);
      return;
    }
    case StmtKind::Return: {
      const auto* ret = static_cast<const ReturnStmt*>(stmt);
      collect_expr(ret->value, func);
      if (ret->value != nullptr && func != nullptr &&
          func->return_type()->is_pointer()) {
        assign_into(retval_node(func), ret->value);
      }
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
      return;
  }
}

void PointsToAnalysis::solve() {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      // Copy edges.
      for (const int to : nodes_[i].copy_out) {
        auto& target = nodes_[to];
        const std::size_t before = target.pts.size();
        target.pts.insert(nodes_[i].pts.begin(), nodes_[i].pts.end());
        if (nodes_[i].unknown && !target.unknown) {
          target.unknown = true;
          changed = true;
        }
        if (target.pts.size() != before) changed = true;
      }
      // Load edges: for t in pts(i), pts(t) flows into each load target.
      for (const int to : nodes_[i].load_into) {
        for (const VarDecl* pointee : nodes_[i].pts) {
          const auto it = var_nodes_.find(pointee);
          if (it == var_nodes_.end()) continue;
          auto& target = nodes_[to];
          const auto& src = nodes_[it->second];
          const std::size_t before = target.pts.size();
          target.pts.insert(src.pts.begin(), src.pts.end());
          if (src.unknown && !target.unknown) {
            target.unknown = true;
            changed = true;
          }
          if (target.pts.size() != before) changed = true;
        }
        if (nodes_[i].unknown && !nodes_[to].unknown) {
          nodes_[to].unknown = true;
          changed = true;
        }
      }
      // Store edges: pts(i) flows into every object the pointer reaches.
      for (const int ptr : nodes_[i].store_from) {
        for (const VarDecl* pointee : nodes_[ptr].pts) {
          const int obj = node_of(pointee);
          auto& target = nodes_[obj];
          const std::size_t before = target.pts.size();
          target.pts.insert(nodes_[i].pts.begin(), nodes_[i].pts.end());
          if (nodes_[i].unknown && !target.unknown) {
            target.unknown = true;
            changed = true;
          }
          if (target.pts.size() != before) changed = true;
        }
      }
    }
  }
}

void PointsToAnalysis::run() {
  for (const FuncDecl* func : prog_.functions) {
    if (!func->is_extern()) collect_stmt(func->body, func);
  }
  if (open_world_params_) {
    // Unseen-caller linkage: any pointer parameter may arrive pointing at
    // memory this compilation never modeled.
    for (const FuncDecl* func : prog_.functions) {
      if (func->is_extern()) continue;
      for (const VarDecl* param : func->params) {
        if (param->type()->is_pointer()) mark_unknown(node_of(param));
      }
    }
  }
  for (const VarDecl* global : prog_.globals) {
    if (global->init != nullptr && global->type()->is_pointer()) {
      assign_into(node_of(global), global->init);
    }
  }
  solve();
}

const std::set<const VarDecl*>& PointsToAnalysis::points_to(const VarDecl* ptr) const {
  const auto it = var_nodes_.find(ptr);
  if (it == var_nodes_.end()) return empty_;
  return nodes_[it->second].pts;
}

bool PointsToAnalysis::points_to_unknown(const VarDecl* ptr) const {
  const auto it = var_nodes_.find(ptr);
  if (it == var_nodes_.end()) return false;
  return nodes_[it->second].unknown;
}

bool PointsToAnalysis::may_alias(const VarDecl* p, const VarDecl* q) const {
  if (points_to_unknown(p) || points_to_unknown(q)) return true;
  const auto& a = points_to(p);
  const auto& b = points_to(q);
  for (const VarDecl* t : a) {
    if (b.contains(t)) return true;
  }
  return false;
}

bool PointsToAnalysis::may_point_to(const VarDecl* ptr, const VarDecl* target) const {
  if (points_to_unknown(ptr)) return true;
  return points_to(ptr).contains(target);
}

}  // namespace hli::analysis
