// Flow-insensitive, context-insensitive (Andersen-style) points-to
// analysis over the whole program.  This is the front-end's pointer
// analysis whose results the paper exports through the HLI alias table.
//
// Nodes are variables (plus one synthetic return-value node per function);
// the analysis solves subset constraints
//   p = &x        {x} <= pts(p)
//   p = q         pts(q) <= pts(p)
//   p = *q        pts(t) <= pts(p)   for every t in pts(q)
//   *p = q        pts(q) <= pts(t)   for every t in pts(p)
// with calls modeled by parameter/actual and return-value copy edges.
// Pointers that escape into unknown externs point at a synthetic
// "unknown" object that aliases everything.
#pragma once

#include <set>
#include <unordered_map>
#include <vector>

#include "frontend/ast.hpp"

namespace hli::analysis {

using frontend::FuncDecl;
using frontend::Program;
using frontend::VarDecl;

class PointsToAnalysis {
 public:
  /// `open_world_params`: seed pointer parameters of every defined
  /// function as pointing at unknown memory (unseen-caller linkage)
  /// instead of the default closed-world whole-program view.
  explicit PointsToAnalysis(Program& prog, bool open_world_params = false)
      : prog_(prog), open_world_params_(open_world_params) {}

  /// Builds constraints from the whole program and solves to fixpoint.
  void run();

  /// Objects `ptr` may point to.  Empty for non-pointers and pointers that
  /// are never assigned.
  [[nodiscard]] const std::set<const VarDecl*>& points_to(const VarDecl* ptr) const;

  /// True when `ptr` may point at statically unknown memory.
  [[nodiscard]] bool points_to_unknown(const VarDecl* ptr) const;

  /// May the two pointers reference the same object?
  [[nodiscard]] bool may_alias(const VarDecl* p, const VarDecl* q) const;

  /// May `ptr` reference (part of) `target`?
  [[nodiscard]] bool may_point_to(const VarDecl* ptr, const VarDecl* target) const;

 private:
  struct Node {
    std::set<const VarDecl*> pts;
    bool unknown = false;
    std::vector<int> copy_out;       ///< Subset edges: this <= target.
    std::vector<int> load_into;      ///< p = *this: pts of pointees flow to p.
    std::vector<int> store_from;     ///< *this = q: pts(q) flows into pointees.
  };

  int node_of(const VarDecl* var);
  int retval_node(const FuncDecl* func);
  void add_copy(int from, int to);
  void add_address(int node, const VarDecl* object);
  void mark_unknown(int node);

  /// Resolves a pointer-valued expression to the node holding its value,
  /// generating constraints along the way; -1 when unresolvable (unknown).
  int value_node(const frontend::Expr* expr);
  void collect_stmt(const frontend::Stmt* stmt, const FuncDecl* func);
  void collect_expr(const frontend::Expr* expr, const FuncDecl* func);
  void assign_into(int lhs_node, const frontend::Expr* rhs);
  void solve();

  Program& prog_;
  bool open_world_params_ = false;
  std::vector<Node> nodes_;
  std::unordered_map<const VarDecl*, int> var_nodes_;
  std::unordered_map<const FuncDecl*, int> ret_nodes_;
  std::set<const VarDecl*> empty_;
};

/// Extern functions treated as side-effect-free math builtins.
[[nodiscard]] bool is_pure_extern(const std::string& name);

}  // namespace hli::analysis
