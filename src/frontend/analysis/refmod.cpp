#include "frontend/analysis/refmod.hpp"

#include "frontend/analysis/item_walk.hpp"

namespace hli::analysis {

using namespace frontend;

void RefModAnalysis::collect_direct(FuncDecl& func) {
  RefModSets& sets = sets_[&func];
  std::set<const FuncDecl*>& callees = callees_[&func];
  RegionTree tree = build_region_tree(func);
  walk_items(prog_, func, tree, [&](const ItemEvent& ev) {
    switch (ev.kind) {
      case ItemEvent::Kind::Load:
      case ItemEvent::Kind::ArgLoad:
        if (ev.base == nullptr) {
          sets.unknown = true;
        } else if (ev.via_pointer) {
          if (pointsto_.points_to_unknown(ev.base)) sets.unknown = true;
          for (const VarDecl* target : pointsto_.points_to(ev.base)) {
            if (target->is_memory_resident()) sets.ref.insert(target);
          }
          // A pointer with an empty, known points-to set dereferenced
          // anyway: treat as unknown rather than "touches nothing".
          if (!pointsto_.points_to_unknown(ev.base) &&
              pointsto_.points_to(ev.base).empty()) {
            sets.unknown = true;
          }
        } else if (ev.base->is_memory_resident()) {
          sets.ref.insert(ev.base);
        }
        break;
      case ItemEvent::Kind::Store:
      case ItemEvent::Kind::ArgStore:
        if (ev.base == nullptr) {
          sets.unknown = true;
        } else if (ev.via_pointer) {
          if (pointsto_.points_to_unknown(ev.base)) sets.unknown = true;
          for (const VarDecl* target : pointsto_.points_to(ev.base)) {
            if (target->is_memory_resident()) sets.mod.insert(target);
          }
          if (!pointsto_.points_to_unknown(ev.base) &&
              pointsto_.points_to(ev.base).empty()) {
            sets.unknown = true;
          }
        } else if (ev.base->is_memory_resident()) {
          sets.mod.insert(ev.base);
        }
        break;
      case ItemEvent::Kind::Call: {
        const FuncDecl* callee = ev.call->callee_decl;
        if (callee == nullptr) {
          sets.unknown = true;
        } else if (callee->is_extern()) {
          if (!is_pure_extern(callee->name())) sets.unknown = true;
        } else {
          callees.insert(callee);
        }
        break;
      }
    }
  });
}

void RefModAnalysis::run() {
  for (FuncDecl* func : prog_.functions) {
    if (func->is_extern()) {
      RefModSets& sets = sets_[func];
      sets.unknown = !is_pure_extern(func->name());
    } else {
      collect_direct(*func);
    }
  }
  // Propagate callee effects to callers until stable; handles recursion and
  // arbitrary call-graph shapes without explicit SCC computation.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [func, sets] : sets_) {
      for (const FuncDecl* callee : callees_[func]) {
        if (callee == func) continue;  // Self-recursion adds nothing new.
        const RefModSets& callee_sets = sets_[callee];
        const std::size_t ref_before = sets.ref.size();
        const std::size_t mod_before = sets.mod.size();
        sets.ref.insert(callee_sets.ref.begin(), callee_sets.ref.end());
        sets.mod.insert(callee_sets.mod.begin(), callee_sets.mod.end());
        if (callee_sets.unknown && !sets.unknown) {
          sets.unknown = true;
          changed = true;
        }
        if (sets.ref.size() != ref_before || sets.mod.size() != mod_before) {
          changed = true;
        }
      }
    }
  }
  // Drop a function's own locals and params from its exported sets: each
  // activation gets fresh stack storage, so these objects are invisible at
  // the function's call sites.  (Storage owned by callers — reached through
  // pointer parameters — has a different owner and is kept.)
  for (auto& [func, sets] : sets_) {
    auto strip = [func = func](std::set<const VarDecl*>& vars) {
      std::erase_if(vars, [func](const VarDecl* v) { return v->owner == func; });
    };
    strip(sets.ref);
    strip(sets.mod);
  }
}

const RefModSets& RefModAnalysis::for_function(const FuncDecl* func) const {
  const auto it = sets_.find(func);
  if (it == sets_.end()) return unknown_sets_;
  return it->second;
}

}  // namespace hli::analysis
