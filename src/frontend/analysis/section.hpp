// Array sections: the coverage summaries behind HLI equivalent access
// classes.  An item like a[i][j] covers the exact point (i, j); a sub-loop's
// class covers a range per dimension (the paper's a[0..9] notation in
// Figure 2).  Sections support
//   * widening over a loop's iteration range (what TBLCONST does when a
//     sub-region class is lifted into its parent region, §2.2.1), and
//   * dependence/overlap testing against another section with respect to a
//     loop, producing within-iteration and loop-carried verdicts that feed
//     the alias and LCDD tables.
#pragma once

#include <string>
#include <vector>

#include "frontend/analysis/depend.hpp"

namespace hli::analysis {

/// One dimension of a section: the inclusive range [lo, hi].  An exact
/// point has lo == hi.  A dimension about which nothing is known carries
/// non-affine bounds.
struct DimSection {
  AffineExpr lo;
  AffineExpr hi;

  [[nodiscard]] static DimSection point(AffineExpr at) {
    return {at, std::move(at)};
  }
  [[nodiscard]] static DimSection unknown() { return {AffineExpr{}, AffineExpr{}}; }

  [[nodiscard]] bool is_exact() const { return lo.is_affine() && lo.equals(hi); }
  [[nodiscard]] bool is_unknown() const { return !lo.is_affine() || !hi.is_affine(); }
};

/// Memory coverage of one item or class: a base object plus per-dimension
/// ranges.  Scalars have no dimensions.
struct Section {
  std::vector<DimSection> dims;

  [[nodiscard]] bool equals(const Section& other) const;
  /// True when every dimension is an exact affine point.
  [[nodiscard]] bool is_exact() const;
  [[nodiscard]] std::string to_string() const;
};

/// Widens `section` over the value range of `loop`'s induction variable,
/// producing the coverage of the whole loop execution.  Unknown loop bounds
/// degrade affected dimensions to unknown.
[[nodiscard]] Section widen_over_loop(const Section& section, const CanonicalLoop* loop);

/// Direction-aware dependence classification of two sections over the same
/// base object with respect to `loop` (null for non-loop regions).
struct SectionDependence {
  IterRelation within = IterRelation::MaybeOverlap;
  /// Overlap where b's instance executes d > 0 iterations after a's.
  CarriedDep a_then_b{CarriedKind::Maybe, std::nullopt};
  /// Overlap where a's instance executes d > 0 iterations after b's.
  CarriedDep b_then_a{CarriedKind::Maybe, std::nullopt};

  [[nodiscard]] bool fully_independent() const {
    return within == IterRelation::Disjoint &&
           a_then_b.kind == CarriedKind::None && b_then_a.kind == CarriedKind::None;
  }
};

[[nodiscard]] SectionDependence section_depend(const CanonicalLoop* loop,
                                               const Section& a, const Section& b);

}  // namespace hli::analysis
