// Array data-dependence tests (the front-end analysis the paper imports
// from SUIF).  Given two subscripted accesses to the same base object and a
// canonical loop, classifies their relationship
//   * within one iteration  -> feeds equivalence classes and the alias table
//   * across iterations     -> feeds the LCDD table
// using ZIV, strong-SIV, weak-zero-SIV and GCD tests with trip-count
// pruning.  Anything outside those fragments degrades to "maybe".
#pragma once

#include <optional>
#include <span>

#include "frontend/analysis/affine.hpp"
#include "frontend/analysis/region_tree.hpp"

namespace hli::analysis {

/// Relationship of two accesses within a single loop iteration.
enum class IterRelation : std::uint8_t {
  Disjoint,      ///< Never the same location in one iteration.
  Equal,         ///< Always the same location in one iteration.
  MaybeOverlap,  ///< May touch the same location in some iteration.
};

/// Loop-carried relationship across different iterations.
enum class CarriedKind : std::uint8_t { None, Definite, Maybe };

struct CarriedDep {
  CarriedKind kind = CarriedKind::None;
  /// Normalized forward distance in iterations when constant; nullopt for
  /// unknown distance (paper §2.2.3 normalizes direction to '>').
  std::optional<std::int64_t> distance;
};

struct DependenceResult {
  IterRelation within = IterRelation::MaybeOverlap;
  CarriedDep carried{CarriedKind::Maybe, std::nullopt};

  [[nodiscard]] static DependenceResult independent() {
    return {IterRelation::Disjoint, {CarriedKind::None, std::nullopt}};
  }
  [[nodiscard]] static DependenceResult unknown() {
    return {IterRelation::MaybeOverlap, {CarriedKind::Maybe, std::nullopt}};
  }
};

/// Tests two subscript vectors over the same base object against `loop`.
/// `loop` may be null (non-canonical loop): only syntactic equality of
/// constant subscripts can then prove anything.
/// The subscript spans must have equal lengths (same array rank); accesses
/// of mismatched rank are treated as unknown.
[[nodiscard]] DependenceResult test_subscripts(const CanonicalLoop* loop,
                                               std::span<const AffineExpr> a,
                                               std::span<const AffineExpr> b);

/// Single-dimension core test, exposed for unit testing.
[[nodiscard]] DependenceResult test_one_dim(const CanonicalLoop* loop,
                                            const AffineExpr& a, const AffineExpr& b);

}  // namespace hli::analysis
