// Canonical memory-operation walk order.
//
// The HLI mapping scheme (paper §2.1, §3.1.1) requires that the order of
// items the front-end lists for a source line equals the order in which the
// back-end's instruction selection emits memory references for that line.
// In the paper, SUIF's ITEMGEN encodes GCC's RTL generation rules; here we
// define ONE canonical walk used by the front-end item generator, and the
// back-end lowering is written to emit memory RTL in exactly this order
// (enforced by integration tests that map every workload with zero
// mismatches).
//
// Order rules:
//   * expressions evaluate left-to-right, operands before operators;
//   * rvalue reads of memory-resident variables emit Load events;
//   * assignment: RHS first, then the LHS address computation (subscript
//     loads, pointer loads), then the Store;
//   * compound assignment / ++ / --: RHS, address computation, Load of the
//     target, then Store;
//   * calls: arguments left-to-right, then one synthetic ArgStore per
//     stack-passed argument (index >= kMaxRegisterArgs, paper §3.1.1), then
//     the Call event;
//   * function entry: one synthetic ArgLoad per stack-passed formal;
//   * `for` loops: init events in the parent region, then condition, body,
//     step events in the loop region (the back-end emits top-tested loops
//     so the per-line sequences agree).
#pragma once

#include <functional>

#include "frontend/analysis/affine.hpp"
#include "frontend/analysis/region_tree.hpp"
#include "frontend/ast.hpp"

namespace hli::analysis {

using frontend::CallExpr;
using frontend::Program;

/// Arguments beyond this count are passed on the stack and generate memory
/// traffic (mirrors the MIPS o32 convention the paper's GCC targeted).
inline constexpr int kMaxRegisterArgs = 4;

/// Name of the synthetic variable standing for the outgoing/incoming
/// argument-overflow area.  Created once per Program on first use.
inline constexpr const char* kArgOverflowName = "__arg_overflow";

struct ItemEvent {
  enum class Kind : std::uint8_t {
    Load,      ///< Memory read of a program variable.
    Store,     ///< Memory write of a program variable.
    Call,      ///< Function call site.
    ArgStore,  ///< Store of a stack-passed actual at a call site.
    ArgLoad,   ///< Load of a stack-passed formal at function entry.
  };

  Kind kind = Kind::Load;
  support::SourceLoc loc;
  /// The access or call expression; null for ArgLoad (entry synthesized).
  const Expr* expr = nullptr;
  /// Memory object base: the array/scalar decl, the pointer variable for
  /// indirect accesses, or the synthetic arg-overflow variable.  Null when
  /// the target is statically unknown.
  const VarDecl* base = nullptr;
  /// True when the access goes through a pointer (deref / subscripted
  /// pointer) rather than directly naming the object.
  bool via_pointer = false;
  /// Subscript forms, outermost dimension first; empty for scalars.
  std::vector<AffineExpr> subscripts;
  /// Region immediately enclosing the access.
  Region* region = nullptr;
  /// Call site for Call and ArgStore events.
  const CallExpr* call = nullptr;
  /// Argument position for ArgStore/ArgLoad; -1 otherwise.
  int arg_index = -1;
};

using ItemCallback = std::function<void(const ItemEvent&)>;

/// Walks one function in canonical order, invoking `cb` for every memory
/// operation and call.  `prog` is needed to materialize the synthetic
/// arg-overflow variable.
void walk_items(Program& prog, frontend::FuncDecl& func, const RegionTree& tree,
                const ItemCallback& cb);

/// Returns (creating on first use) the synthetic argument-overflow variable.
[[nodiscard]] VarDecl* arg_overflow_var(Program& prog);

}  // namespace hli::analysis
