#include "frontend/analysis/region_tree.hpp"

namespace hli::analysis {

using namespace frontend;

std::vector<Region*> RegionTree::preorder() const {
  std::vector<Region*> out;
  std::vector<Region*> stack{root_};
  while (!stack.empty()) {
    Region* r = stack.back();
    stack.pop_back();
    out.push_back(r);
    const auto& kids = r->children();
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::vector<Region*> RegionTree::postorder() const {
  std::vector<Region*> pre = preorder();
  // Reversing a preorder that pushed children right-to-left yields a valid
  // postorder only for the parent-after-children property we need; rebuild
  // properly via recursion instead to keep sibling order stable.
  std::vector<Region*> out;
  struct Walker {
    std::vector<Region*>& out;
    void walk(Region* r) {
      for (Region* c : r->children()) walk(c);
      out.push_back(r);
    }
  } walker{out};
  walker.walk(root_);
  (void)pre;
  return out;
}

Region* RegionTree::make_region(RegionKind kind, Region* parent) {
  regions_.push_back(std::make_unique<Region>(next_id_++, kind, parent));
  Region* r = regions_.back().get();
  if (parent != nullptr) {
    parent->add_child(r);
    r->depth = parent->depth + 1;
  } else {
    root_ = r;
  }
  return r;
}

namespace {

/// Matches `i = <const>` or `i = <expr>`; returns the induction candidate.
VarDecl* init_induction_var(const Stmt* init, std::optional<std::int64_t>& lower) {
  lower.reset();
  if (init == nullptr) return nullptr;
  const Expr* expr = nullptr;
  if (init->kind() == StmtKind::Expr) {
    expr = static_cast<const ExprStmt*>(init)->expr;
  } else if (init->kind() == StmtKind::Decl) {
    const auto* decl_stmt = static_cast<const DeclStmt*>(init);
    if (decl_stmt->decl->init != nullptr) {
      if (decl_stmt->decl->init->kind() == ExprKind::IntLiteral) {
        lower = static_cast<const IntLiteralExpr*>(decl_stmt->decl->init)->value;
      }
      return decl_stmt->decl;
    }
    return nullptr;
  }
  if (expr == nullptr || expr->kind() != ExprKind::Assign) return nullptr;
  const auto* assign = static_cast<const AssignExpr*>(expr);
  if (assign->op != AssignOp::None) return nullptr;
  if (assign->lhs->kind() != ExprKind::VarRef) return nullptr;
  if (assign->rhs->kind() == ExprKind::IntLiteral) {
    lower = static_cast<const IntLiteralExpr*>(assign->rhs)->value;
  }
  return static_cast<const VarRefExpr*>(assign->lhs)->decl;
}

/// Matches `i < U`, `i <= U`, `i > L`, `i >= L` against the induction var.
bool match_bound(const Expr* cond, const VarDecl* ind, bool& upward,
                 std::optional<std::int64_t>& bound, bool& inclusive) {
  if (cond == nullptr || cond->kind() != ExprKind::Binary) return false;
  const auto* bin = static_cast<const BinaryExpr*>(cond);
  const Expr* lhs = bin->lhs;
  const Expr* rhs = bin->rhs;
  if (lhs->kind() != ExprKind::VarRef ||
      static_cast<const VarRefExpr*>(lhs)->decl != ind) {
    return false;
  }
  switch (bin->op) {
    case BinaryOp::Lt: upward = true; inclusive = false; break;
    case BinaryOp::Le: upward = true; inclusive = true; break;
    case BinaryOp::Gt: upward = false; inclusive = false; break;
    case BinaryOp::Ge: upward = false; inclusive = true; break;
    default: return false;
  }
  bound.reset();
  if (rhs->kind() == ExprKind::IntLiteral) {
    bound = static_cast<const IntLiteralExpr*>(rhs)->value;
  }
  return true;
}

/// Matches `i++`, `++i`, `i += c`, `i -= c`, `i--`, `i = i + c`.
bool match_step(const Expr* step, const VarDecl* ind, std::int64_t& delta) {
  if (step == nullptr) return false;
  if (step->kind() == ExprKind::Unary) {
    const auto* un = static_cast<const UnaryExpr*>(step);
    if (un->operand->kind() != ExprKind::VarRef ||
        static_cast<const VarRefExpr*>(un->operand)->decl != ind) {
      return false;
    }
    switch (un->op) {
      case UnaryOp::PreInc:
      case UnaryOp::PostInc: delta = 1; return true;
      case UnaryOp::PreDec:
      case UnaryOp::PostDec: delta = -1; return true;
      default: return false;
    }
  }
  if (step->kind() != ExprKind::Assign) return false;
  const auto* assign = static_cast<const AssignExpr*>(step);
  if (assign->lhs->kind() != ExprKind::VarRef ||
      static_cast<const VarRefExpr*>(assign->lhs)->decl != ind) {
    return false;
  }
  if (assign->op == AssignOp::Add || assign->op == AssignOp::Sub) {
    if (assign->rhs->kind() != ExprKind::IntLiteral) return false;
    delta = static_cast<const IntLiteralExpr*>(assign->rhs)->value;
    if (assign->op == AssignOp::Sub) delta = -delta;
    return true;
  }
  if (assign->op == AssignOp::None && assign->rhs->kind() == ExprKind::Binary) {
    const auto* bin = static_cast<const BinaryExpr*>(assign->rhs);
    if (bin->op != BinaryOp::Add && bin->op != BinaryOp::Sub) return false;
    if (bin->lhs->kind() != ExprKind::VarRef ||
        static_cast<const VarRefExpr*>(bin->lhs)->decl != ind) {
      return false;
    }
    if (bin->rhs->kind() != ExprKind::IntLiteral) return false;
    delta = static_cast<const IntLiteralExpr*>(bin->rhs)->value;
    if (bin->op == BinaryOp::Sub) delta = -delta;
    return true;
  }
  return false;
}

/// True if the loop body re-assigns the induction variable (which would
/// invalidate the canonical form).
bool body_modifies(const Stmt* stmt, const VarDecl* ind);

bool expr_modifies(const Expr* expr, const VarDecl* ind) {
  if (expr == nullptr) return false;
  switch (expr->kind()) {
    case ExprKind::Assign: {
      const auto* assign = static_cast<const AssignExpr*>(expr);
      if (assign->lhs->kind() == ExprKind::VarRef &&
          static_cast<const VarRefExpr*>(assign->lhs)->decl == ind) {
        return true;
      }
      return expr_modifies(assign->lhs, ind) || expr_modifies(assign->rhs, ind);
    }
    case ExprKind::Unary: {
      const auto* un = static_cast<const UnaryExpr*>(expr);
      const bool is_mutation = un->op == UnaryOp::PreInc || un->op == UnaryOp::PreDec ||
                               un->op == UnaryOp::PostInc || un->op == UnaryOp::PostDec;
      if (is_mutation && un->operand->kind() == ExprKind::VarRef &&
          static_cast<const VarRefExpr*>(un->operand)->decl == ind) {
        return true;
      }
      // Address-taken induction variables are disqualified elsewhere via
      // VarDecl::address_taken.
      return expr_modifies(un->operand, ind);
    }
    case ExprKind::Binary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      return expr_modifies(bin->lhs, ind) || expr_modifies(bin->rhs, ind);
    }
    case ExprKind::ArrayIndex: {
      const auto* idx = static_cast<const ArrayIndexExpr*>(expr);
      return expr_modifies(idx->base, ind) || expr_modifies(idx->index, ind);
    }
    case ExprKind::Call: {
      const auto* call = static_cast<const CallExpr*>(expr);
      for (const Expr* arg : call->args) {
        if (expr_modifies(arg, ind)) return true;
      }
      return false;
    }
    case ExprKind::Conditional: {
      const auto* cond = static_cast<const ConditionalExpr*>(expr);
      return expr_modifies(cond->cond, ind) || expr_modifies(cond->then_expr, ind) ||
             expr_modifies(cond->else_expr, ind);
    }
    default:
      return false;
  }
}

bool body_modifies(const Stmt* stmt, const VarDecl* ind) {
  if (stmt == nullptr) return false;
  switch (stmt->kind()) {
    case StmtKind::Expr:
      return expr_modifies(static_cast<const ExprStmt*>(stmt)->expr, ind);
    case StmtKind::Decl: {
      const auto* decl = static_cast<const DeclStmt*>(stmt);
      return expr_modifies(decl->decl->init, ind);
    }
    case StmtKind::Block: {
      const auto* block = static_cast<const BlockStmt*>(stmt);
      for (const Stmt* s : block->stmts) {
        if (body_modifies(s, ind)) return true;
      }
      return false;
    }
    case StmtKind::If: {
      const auto* ifs = static_cast<const IfStmt*>(stmt);
      return expr_modifies(ifs->cond, ind) || body_modifies(ifs->then_stmt, ind) ||
             body_modifies(ifs->else_stmt, ind);
    }
    case StmtKind::While: {
      const auto* loop = static_cast<const WhileStmt*>(stmt);
      return expr_modifies(loop->cond, ind) || body_modifies(loop->body, ind);
    }
    case StmtKind::For: {
      const auto* loop = static_cast<const ForStmt*>(stmt);
      return body_modifies(loop->init, ind) || expr_modifies(loop->cond, ind) ||
             expr_modifies(loop->step, ind) || body_modifies(loop->body, ind);
    }
    case StmtKind::Return:
      return expr_modifies(static_cast<const ReturnStmt*>(stmt)->value, ind);
    case StmtKind::Break:
    case StmtKind::Continue:
      return false;
  }
  return false;
}

}  // namespace

bool subtree_modifies(const Stmt* stmt, const VarDecl* var) {
  return body_modifies(stmt, var);
}

bool expr_tree_modifies(const Expr* expr, const VarDecl* var) {
  return expr_modifies(expr, var);
}

std::optional<CanonicalLoop> canonicalize_loop(const ForStmt& loop) {
  std::optional<std::int64_t> lower;
  VarDecl* ind = init_induction_var(loop.init, lower);
  if (ind == nullptr || !ind->type()->is_int() || ind->address_taken()) {
    return std::nullopt;
  }
  bool upward = true;
  bool inclusive = false;
  std::optional<std::int64_t> bound;
  if (!match_bound(loop.cond, ind, upward, bound, inclusive)) return std::nullopt;
  std::int64_t delta = 0;
  if (!match_step(loop.step, ind, delta) || delta == 0) return std::nullopt;
  if (upward != (delta > 0)) return std::nullopt;  // Non-terminating shape.
  if (body_modifies(loop.body, ind)) return std::nullopt;

  CanonicalLoop canon;
  canon.induction = ind;
  if (delta > 0) {
    canon.step = delta;
    canon.lower = lower;
    canon.upper = bound;
    if (canon.upper && inclusive) canon.upper = *canon.upper + 1;
  } else {
    // Normalize `for (i = H; i > L; i--)` to positive-step orientation; the
    // LCDD direction normalization (paper §2.2.3) makes the sign of the
    // source order irrelevant as long as distances stay positive.
    canon.step = -delta;
    canon.reversed = true;
    canon.upper = lower ? std::optional<std::int64_t>(*lower + 1) : std::nullopt;
    canon.lower = bound;
    if (canon.lower && !inclusive) canon.lower = *canon.lower + 1;
  }
  return canon;
}

namespace {

class TreeBuilder {
 public:
  explicit TreeBuilder(RegionTree& tree) : tree_(tree) {}

  void walk(Stmt* stmt, Region* current) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case StmtKind::Block: {
        auto* block = static_cast<BlockStmt*>(stmt);
        for (Stmt* s : block->stmts) walk(s, current);
        return;
      }
      case StmtKind::If: {
        current->own_stmts.push_back(stmt);
        auto* ifs = static_cast<IfStmt*>(stmt);
        walk(ifs->then_stmt, current);
        walk(ifs->else_stmt, current);
        return;
      }
      case StmtKind::While: {
        current->own_stmts.push_back(stmt);
        auto* loop = static_cast<WhileStmt*>(stmt);
        Region* region = tree_.make_region(RegionKind::Loop, current);
        region->loop_stmt = stmt;
        walk(loop->body, region);
        return;
      }
      case StmtKind::For: {
        current->own_stmts.push_back(stmt);
        auto* loop = static_cast<ForStmt*>(stmt);
        Region* region = tree_.make_region(RegionKind::Loop, current);
        region->loop_stmt = stmt;
        region->canonical = canonicalize_loop(*loop);
        // The init statement executes once, before the loop: it belongs to
        // the parent region.  Condition and step run every iteration.
        if (loop->init != nullptr) current->own_stmts.push_back(loop->init);
        walk(loop->body, region);
        return;
      }
      default:
        current->own_stmts.push_back(stmt);
        return;
    }
  }

 private:
  RegionTree& tree_;
};

}  // namespace

RegionTree build_region_tree(FuncDecl& func) {
  RegionTree tree;
  Region* root = tree.make_region(RegionKind::Function, nullptr);
  if (func.body != nullptr) {
    TreeBuilder builder(tree);
    builder.walk(func.body, root);
  }
  return tree;
}

}  // namespace hli::analysis
