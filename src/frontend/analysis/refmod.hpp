// Interprocedural REF/MOD analysis: for every function, the set of
// memory-resident variables it may reference or modify, directly or through
// callees and pointers.  These sets are what the HLI call REF/MOD table
// (paper §2.2.4) exports so the back-end can schedule memory operations
// across call sites and keep CSE subexpressions live over calls (Figure 4).
#pragma once

#include <set>
#include <unordered_map>

#include "frontend/analysis/pointsto.hpp"
#include "frontend/analysis/region_tree.hpp"

namespace hli::analysis {

struct RefModSets {
  std::set<const VarDecl*> ref;
  std::set<const VarDecl*> mod;
  /// True when the function may touch statically unknown memory (unknown
  /// extern callee, wild pointer): the back-end must then assume a full
  /// clobber, exactly like plain GCC.
  bool unknown = false;
};

class RefModAnalysis {
 public:
  RefModAnalysis(Program& prog, const PointsToAnalysis& pointsto)
      : prog_(prog), pointsto_(pointsto) {}

  /// Computes direct effects per function, then propagates over the call
  /// graph to fixpoint (recursion-safe).
  void run();

  [[nodiscard]] const RefModSets& for_function(const FuncDecl* func) const;

 private:
  void collect_direct(FuncDecl& func);

  Program& prog_;
  const PointsToAnalysis& pointsto_;
  std::unordered_map<const FuncDecl*, RefModSets> sets_;
  std::unordered_map<const FuncDecl*, std::set<const FuncDecl*>> callees_;
  RefModSets unknown_sets_{{}, {}, true};
};

}  // namespace hli::analysis
