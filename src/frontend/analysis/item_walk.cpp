#include "frontend/analysis/item_walk.hpp"

namespace hli::analysis {

using namespace frontend;

VarDecl* arg_overflow_var(Program& prog) {
  for (VarDecl* g : prog.globals) {
    if (g->name() == kArgOverflowName) return g;
  }
  VarDecl* var = prog.make_var(kArgOverflowName,
                               prog.types.array_of(prog.types.int_type(), 64),
                               StorageClass::Global, support::SourceLoc{});
  prog.globals.push_back(var);
  return var;
}

namespace {

class ItemWalker {
 public:
  ItemWalker(Program& prog, const RegionTree& tree, const ItemCallback& cb)
      : prog_(prog), tree_(tree), cb_(cb) {}

  void walk_function(FuncDecl& func) {
    current_region_ = tree_.root();
    // Entry loads for stack-passed formals (paper §3.1.1: a value passed via
    // the stack generates a memory read at the subroutine entry point).
    for (std::size_t i = kMaxRegisterArgs; i < func.params.size(); ++i) {
      ItemEvent ev;
      ev.kind = ItemEvent::Kind::ArgLoad;
      ev.loc = func.loc();
      ev.base = arg_overflow_var(prog_);
      ev.region = current_region_;
      ev.arg_index = static_cast<int>(i);
      cb_(ev);
    }
    walk_stmt(func.body);
  }

 private:
  void emit_access(ItemEvent::Kind kind, const Expr* expr, const VarDecl* base,
                   bool via_pointer, std::vector<AffineExpr> subscripts) {
    ItemEvent ev;
    ev.kind = kind;
    ev.loc = expr->loc();
    ev.expr = expr;
    ev.base = base;
    ev.via_pointer = via_pointer;
    ev.subscripts = std::move(subscripts);
    ev.region = current_region_;
    cb_(ev);
  }

  /// Decomposes an lvalue expression into (base variable, via_pointer,
  /// subscripts) and emits the Load events of its address computation
  /// (subscript expressions and pointer loads), in evaluation order.
  struct LValueInfo {
    const VarDecl* base = nullptr;
    bool via_pointer = false;
    std::vector<AffineExpr> subscripts;
    bool is_memory = true;  ///< False for pseudo-register scalars.
    const VarDecl* scalar = nullptr;  ///< Set for direct scalar lvalues.
  };

  LValueInfo walk_lvalue_address(const Expr* expr) {
    LValueInfo info;
    switch (expr->kind()) {
      case ExprKind::VarRef: {
        const auto* ref = static_cast<const VarRefExpr*>(expr);
        info.base = ref->decl;
        info.scalar = ref->decl;
        info.is_memory = ref->decl != nullptr && ref->decl->is_memory_resident();
        return info;
      }
      case ExprKind::ArrayIndex: {
        const auto* idx = static_cast<const ArrayIndexExpr*>(expr);
        // Collect the subscript chain innermost-last: a[i][j] is
        // ArrayIndex(ArrayIndex(a, i), j).
        std::vector<const Expr*> indices;
        const Expr* cursor = expr;
        while (cursor->kind() == ExprKind::ArrayIndex) {
          indices.push_back(static_cast<const ArrayIndexExpr*>(cursor)->index);
          cursor = static_cast<const ArrayIndexExpr*>(cursor)->base;
        }
        std::reverse(indices.begin(), indices.end());
        // Base resolution.
        if (cursor->kind() == ExprKind::VarRef) {
          const auto* ref = static_cast<const VarRefExpr*>(cursor);
          info.base = ref->decl;
          info.via_pointer = ref->decl != nullptr && ref->decl->type()->is_pointer();
          // A memory-resident pointer must itself be loaded first.
          if (info.via_pointer && ref->decl->is_memory_resident()) {
            emit_access(ItemEvent::Kind::Load, cursor, ref->decl, false, {});
          }
        } else {
          // Base is itself an expression (e.g. *(p) [i], (p + k)[i]).
          walk_rvalue(cursor);
          info.base = pointer_root(cursor);
          info.via_pointer = true;
        }
        // Subscript expressions evaluate left-to-right and may contain
        // loads of their own.
        for (const Expr* index : indices) {
          walk_rvalue(index);
          info.subscripts.push_back(build_affine(index));
        }
        (void)idx;
        return info;
      }
      case ExprKind::Unary: {
        const auto* un = static_cast<const UnaryExpr*>(expr);
        if (un->op == UnaryOp::Deref) {
          walk_rvalue(un->operand);  // Pointer value computation.
          info.base = pointer_root(un->operand);
          info.via_pointer = true;
          info.subscripts.push_back(deref_offset(un->operand));
          return info;
        }
        break;
      }
      default:
        break;
    }
    // Unknown lvalue shape: treat as an unknown-target memory access.
    info.base = nullptr;
    info.via_pointer = true;
    return info;
  }

  /// Root pointer variable of a pointer-valued expression, when evident.
  static const VarDecl* pointer_root(const Expr* expr) {
    switch (expr->kind()) {
      case ExprKind::VarRef:
        return static_cast<const VarRefExpr*>(expr)->decl;
      case ExprKind::Binary: {
        const auto* bin = static_cast<const BinaryExpr*>(expr);
        if (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub) {
          if (const VarDecl* lhs = pointer_root(bin->lhs);
              lhs != nullptr && (lhs->type()->is_pointer() || lhs->type()->is_array())) {
            return lhs;
          }
          if (const VarDecl* rhs = pointer_root(bin->rhs);
              rhs != nullptr && (rhs->type()->is_pointer() || rhs->type()->is_array())) {
            return rhs;
          }
        }
        return nullptr;
      }
      case ExprKind::Unary: {
        const auto* un = static_cast<const UnaryExpr*>(expr);
        if (un->op == UnaryOp::AddrOf) return pointer_root(un->operand);
        return nullptr;
      }
      default:
        return nullptr;
    }
  }

  /// Affine offset for `*(p + e)`-style derefs; zero for plain `*p`.
  static AffineExpr deref_offset(const Expr* expr) {
    if (expr->kind() == ExprKind::Binary) {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      if (bin->op == BinaryOp::Add) {
        if (pointer_root(bin->lhs) != nullptr) return build_affine(bin->rhs);
        if (pointer_root(bin->rhs) != nullptr) return build_affine(bin->lhs);
      } else if (bin->op == BinaryOp::Sub && pointer_root(bin->lhs) != nullptr) {
        return build_affine(bin->rhs).scaled(-1);
      }
      return {};
    }
    return AffineExpr::constant(0);
  }

  void walk_rvalue(const Expr* expr) {
    if (expr == nullptr) return;
    switch (expr->kind()) {
      case ExprKind::IntLiteral:
      case ExprKind::FloatLiteral:
        return;
      case ExprKind::VarRef: {
        const auto* ref = static_cast<const VarRefExpr*>(expr);
        if (ref->decl == nullptr) return;
        // An array name in rvalue position decays to an address: no load.
        if (ref->decl->type()->is_array()) return;
        if (ref->decl->is_memory_resident()) {
          emit_access(ItemEvent::Kind::Load, expr, ref->decl, false, {});
        }
        return;
      }
      case ExprKind::ArrayIndex:
      case ExprKind::Unary: {
        if (expr->kind() == ExprKind::Unary) {
          const auto* un = static_cast<const UnaryExpr*>(expr);
          switch (un->op) {
            case UnaryOp::Neg:
            case UnaryOp::Not:
            case UnaryOp::BitNot:
              walk_rvalue(un->operand);
              return;
            case UnaryOp::AddrOf:
              // Address computation only: subscript loads still occur.
              walk_addr_of(un->operand);
              return;
            case UnaryOp::PreInc:
            case UnaryOp::PreDec:
            case UnaryOp::PostInc:
            case UnaryOp::PostDec: {
              // Read-modify-write of the operand.
              LValueInfo info = walk_lvalue_address(un->operand);
              if (info.is_memory) {
                emit_access(ItemEvent::Kind::Load, un->operand, info.base,
                            info.via_pointer, info.subscripts);
                emit_access(ItemEvent::Kind::Store, un->operand, info.base,
                            info.via_pointer, std::move(info.subscripts));
              }
              return;
            }
            case UnaryOp::Deref: {
              LValueInfo info = walk_lvalue_address(expr);
              emit_access(ItemEvent::Kind::Load, expr, info.base, info.via_pointer,
                          std::move(info.subscripts));
              return;
            }
          }
          return;
        }
        // ArrayIndex rvalue: emit address computation then the element
        // load — unless the element is itself an array (a row like
        // m[i] in m[i][j]-free contexts), which decays to an address with
        // no memory traffic of its own.
        if (expr->type != nullptr && expr->type->is_array()) {
          (void)walk_lvalue_address(expr);  // Subscript loads only.
          return;
        }
        LValueInfo info = walk_lvalue_address(expr);
        if (info.is_memory) {
          emit_access(ItemEvent::Kind::Load, expr, info.base, info.via_pointer,
                      std::move(info.subscripts));
        }
        return;
      }
      case ExprKind::Binary: {
        const auto* bin = static_cast<const BinaryExpr*>(expr);
        walk_rvalue(bin->lhs);
        walk_rvalue(bin->rhs);
        return;
      }
      case ExprKind::Assign: {
        const auto* assign = static_cast<const AssignExpr*>(expr);
        walk_rvalue(assign->rhs);
        LValueInfo info = walk_lvalue_address(assign->lhs);
        if (info.is_memory) {
          if (assign->op != AssignOp::None) {
            emit_access(ItemEvent::Kind::Load, assign->lhs, info.base,
                        info.via_pointer, info.subscripts);
          }
          emit_access(ItemEvent::Kind::Store, assign->lhs, info.base,
                      info.via_pointer, std::move(info.subscripts));
        }
        return;
      }
      case ExprKind::Call: {
        const auto* call = static_cast<const CallExpr*>(expr);
        for (const Expr* arg : call->args) walk_rvalue(arg);
        for (std::size_t i = kMaxRegisterArgs; i < call->args.size(); ++i) {
          ItemEvent ev;
          ev.kind = ItemEvent::Kind::ArgStore;
          ev.loc = call->loc();
          ev.expr = call;
          ev.base = arg_overflow_var(prog_);
          ev.region = current_region_;
          ev.call = call;
          ev.arg_index = static_cast<int>(i);
          cb_(ev);
        }
        ItemEvent ev;
        ev.kind = ItemEvent::Kind::Call;
        ev.loc = call->loc();
        ev.expr = call;
        ev.region = current_region_;
        ev.call = call;
        cb_(ev);
        return;
      }
      case ExprKind::Conditional: {
        const auto* cond = static_cast<const ConditionalExpr*>(expr);
        walk_rvalue(cond->cond);
        walk_rvalue(cond->then_expr);
        walk_rvalue(cond->else_expr);
        return;
      }
    }
  }

  /// Walks the address computation of `&lvalue` (subscript loads happen,
  /// the element access itself does not).
  void walk_addr_of(const Expr* expr) {
    if (expr->kind() == ExprKind::ArrayIndex) {
      (void)walk_lvalue_address(expr);  // Emits subscript/pointer loads only.
      return;
    }
    // &scalar: no memory traffic at all.
  }

  void walk_stmt(Stmt* stmt) {
    if (stmt == nullptr) return;
    switch (stmt->kind()) {
      case StmtKind::Decl: {
        auto* decl_stmt = static_cast<DeclStmt*>(stmt);
        VarDecl* decl = decl_stmt->decl;
        if (decl->init != nullptr) {
          walk_rvalue(decl->init);
          if (decl->is_memory_resident()) {
            emit_access(ItemEvent::Kind::Store, decl->init, decl, false, {});
          }
        }
        return;
      }
      case StmtKind::Expr:
        walk_rvalue(static_cast<ExprStmt*>(stmt)->expr);
        return;
      case StmtKind::Block: {
        for (Stmt* s : static_cast<BlockStmt*>(stmt)->stmts) walk_stmt(s);
        return;
      }
      case StmtKind::If: {
        auto* ifs = static_cast<IfStmt*>(stmt);
        walk_rvalue(ifs->cond);
        walk_stmt(ifs->then_stmt);
        walk_stmt(ifs->else_stmt);
        return;
      }
      case StmtKind::While: {
        auto* loop = static_cast<WhileStmt*>(stmt);
        Region* saved = current_region_;
        Region* region = tree_.region_for_loop(stmt);
        current_region_ = region != nullptr ? region : saved;
        walk_rvalue(loop->cond);
        walk_stmt(loop->body);
        current_region_ = saved;
        return;
      }
      case StmtKind::For: {
        auto* loop = static_cast<ForStmt*>(stmt);
        // Init runs once: it belongs to the enclosing region.
        walk_stmt(loop->init);
        Region* saved = current_region_;
        Region* region = tree_.region_for_loop(stmt);
        current_region_ = region != nullptr ? region : saved;
        walk_rvalue(loop->cond);
        walk_stmt(loop->body);
        walk_rvalue(loop->step);
        current_region_ = saved;
        return;
      }
      case StmtKind::Return:
        walk_rvalue(static_cast<ReturnStmt*>(stmt)->value);
        return;
      case StmtKind::Break:
      case StmtKind::Continue:
        return;
    }
  }

  Program& prog_;
  const RegionTree& tree_;
  const ItemCallback& cb_;
  Region* current_region_ = nullptr;
};

}  // namespace

void walk_items(Program& prog, FuncDecl& func, const RegionTree& tree,
                const ItemCallback& cb) {
  ItemWalker walker(prog, tree, cb);
  walker.walk_function(func);
}

}  // namespace hli::analysis
