// Hierarchical region discovery (paper §2.2).  A region is a program unit
// or a loop; regions nest.  The region tree is the skeleton both of the
// front-end analysis (dependence tests are run per loop region) and of the
// HLI region table itself.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "frontend/ast.hpp"

namespace hli::analysis {

using frontend::Expr;
using frontend::ForStmt;
using frontend::FuncDecl;
using frontend::Stmt;
using frontend::VarDecl;
using frontend::WhileStmt;

enum class RegionKind : std::uint8_t { Function, Loop };

/// Canonical affine loop description for `for (i = L; i < U; i += S)`
/// (also <=, and decrementing loops normalized to positive step form).
/// Only loops of this shape get distance-based LCDD entries; everything
/// else falls back to "maybe, unknown distance".
struct CanonicalLoop {
  VarDecl* induction = nullptr;
  /// Bounds when they are compile-time constants; nullopt for symbolic
  /// bounds (still canonical if the step is a known constant).
  std::optional<std::int64_t> lower;
  std::optional<std::int64_t> upper;  ///< Exclusive.
  std::int64_t step = 1;              ///< Always positive after normalization.
  bool reversed = false;              ///< True when source iterated downward.
};

class Region {
 public:
  Region(std::uint32_t id, RegionKind kind, Region* parent)
      : id_(id), kind_(kind), parent_(parent) {}

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] RegionKind kind() const { return kind_; }
  [[nodiscard]] bool is_loop() const { return kind_ == RegionKind::Loop; }
  [[nodiscard]] Region* parent() const { return parent_; }
  [[nodiscard]] const std::vector<Region*>& children() const { return children_; }

  /// Loop statement for loop regions (ForStmt or WhileStmt); null for the
  /// function region.
  Stmt* loop_stmt = nullptr;
  /// Present when the loop matched the canonical affine pattern.
  std::optional<CanonicalLoop> canonical;
  /// Depth in the tree; function region is depth 0.
  std::uint32_t depth = 0;
  /// Statements immediately inside this region (not inside sub-regions);
  /// used by item collection.
  std::vector<Stmt*> own_stmts;

  void add_child(Region* child) { children_.push_back(child); }

  /// True if `other` equals this region or is nested anywhere inside it.
  [[nodiscard]] bool encloses(const Region* other) const {
    for (const Region* r = other; r != nullptr; r = r->parent()) {
      if (r == this) return true;
    }
    return false;
  }

 private:
  std::uint32_t id_;
  RegionKind kind_;
  Region* parent_;
  std::vector<Region*> children_;
};

/// Region tree for one function.  Owns all Region nodes.
class RegionTree {
 public:
  [[nodiscard]] Region* root() const { return root_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Region>>& regions() const {
    return regions_;
  }
  [[nodiscard]] Region* region_by_id(std::uint32_t id) const {
    for (const auto& r : regions_) {
      if (r->id() == id) return r.get();
    }
    return nullptr;
  }
  /// Region whose loop_stmt is `stmt`, or null.
  [[nodiscard]] Region* region_for_loop(const Stmt* stmt) const {
    for (const auto& r : regions_) {
      if (r->loop_stmt == stmt) return r.get();
    }
    return nullptr;
  }

  /// All regions in pre-order (parents before children).
  [[nodiscard]] std::vector<Region*> preorder() const;
  /// All regions in post-order (children before parents) — the traversal
  /// order of TBLCONST's bottom-up propagation (paper §3.1.2).
  [[nodiscard]] std::vector<Region*> postorder() const;

  Region* make_region(RegionKind kind, Region* parent);

 private:
  std::vector<std::unique_ptr<Region>> regions_;
  Region* root_ = nullptr;
  std::uint32_t next_id_ = 1;
};

/// Builds the region tree of a function and canonicalizes its loops.
[[nodiscard]] RegionTree build_region_tree(FuncDecl& func);

/// Attempts to recognize `for (i = L; i < U; i += S)` and friends.
[[nodiscard]] std::optional<CanonicalLoop> canonicalize_loop(const ForStmt& loop);

/// True if any statement in `stmt`'s subtree assigns to `var` (including
/// ++/-- and compound assignment).  Used to decide whether a pointer or a
/// symbolic subscript term is invariant within a loop.
[[nodiscard]] bool subtree_modifies(const Stmt* stmt, const VarDecl* var);
/// Expression-level variant of subtree_modifies.
[[nodiscard]] bool expr_tree_modifies(const Expr* expr, const VarDecl* var);

}  // namespace hli::analysis
