#include "frontend/analysis/affine.hpp"

#include <algorithm>

namespace hli::analysis {

using namespace frontend;

AffineExpr AffineExpr::constant(std::int64_t value) {
  AffineExpr e;
  e.affine_ = true;
  e.constant_ = value;
  return e;
}

AffineExpr AffineExpr::variable(const VarDecl* var) {
  AffineExpr e;
  e.affine_ = true;
  e.terms_.emplace_back(var, 1);
  return e;
}

std::int64_t AffineExpr::coefficient(const VarDecl* var) const {
  for (const auto& [decl, coeff] : terms_) {
    if (decl == var) return coeff;
  }
  return 0;
}

bool AffineExpr::equals(const AffineExpr& other) const {
  return affine_ && other.affine_ && constant_ == other.constant_ &&
         terms_ == other.terms_;
}

void AffineExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(), [](const auto& a, const auto& b) {
    return a.first->id() < b.first->id();
  });
  // Merge duplicate variables and drop zero coefficients.
  std::vector<std::pair<const VarDecl*, std::int64_t>> merged;
  for (const auto& [decl, coeff] : terms_) {
    if (!merged.empty() && merged.back().first == decl) {
      merged.back().second += coeff;
    } else {
      merged.emplace_back(decl, coeff);
    }
  }
  std::erase_if(merged, [](const auto& t) { return t.second == 0; });
  terms_ = std::move(merged);
}

AffineExpr AffineExpr::plus(const AffineExpr& other) const {
  if (!affine_ || !other.affine_) return {};
  AffineExpr out;
  out.affine_ = true;
  out.constant_ = constant_ + other.constant_;
  out.terms_ = terms_;
  out.terms_.insert(out.terms_.end(), other.terms_.begin(), other.terms_.end());
  out.normalize();
  return out;
}

AffineExpr AffineExpr::scaled(std::int64_t factor) const {
  if (!affine_) return {};
  AffineExpr out;
  out.affine_ = true;
  out.constant_ = constant_ * factor;
  out.terms_ = terms_;
  for (auto& [decl, coeff] : out.terms_) coeff *= factor;
  out.normalize();
  return out;
}

AffineExpr AffineExpr::minus(const AffineExpr& other) const {
  return plus(other.scaled(-1));
}

AffineExpr AffineExpr::shifted(const VarDecl* var, std::int64_t delta) const {
  if (!affine_) return {};
  AffineExpr out = *this;
  out.constant_ += coefficient(var) * delta;
  return out;
}

AffineExpr AffineExpr::substituted(const VarDecl* var, std::int64_t value) const {
  if (!affine_) return {};
  AffineExpr out = *this;
  out.constant_ += coefficient(var) * value;
  std::erase_if(out.terms_, [var](const auto& t) { return t.first == var; });
  return out;
}

bool AffineExpr::all_vars(const std::function<bool(const VarDecl*)>& pred) const {
  if (!affine_) return false;
  for (const auto& [decl, coeff] : terms_) {
    (void)coeff;
    if (!pred(decl)) return false;
  }
  return true;
}

std::string AffineExpr::to_string() const {
  if (!affine_) return "<non-affine>";
  std::string out;
  for (const auto& [decl, coeff] : terms_) {
    if (!out.empty()) out += " + ";
    if (coeff == 1) {
      out += decl->name();
    } else {
      out += std::to_string(coeff) + "*" + decl->name();
    }
  }
  if (constant_ != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += std::to_string(constant_);
  }
  return out;
}

AffineExpr build_affine(const Expr* expr) {
  if (expr == nullptr) return {};
  switch (expr->kind()) {
    case ExprKind::IntLiteral:
      return AffineExpr::constant(static_cast<const IntLiteralExpr*>(expr)->value);
    case ExprKind::VarRef: {
      const auto* ref = static_cast<const VarRefExpr*>(expr);
      if (ref->decl == nullptr || !ref->decl->type()->is_int()) return {};
      // Address-taken scalars can be rewritten through pointers behind our
      // back, so their value is not a dependable symbol.
      if (ref->decl->address_taken()) return {};
      return AffineExpr::variable(ref->decl);
    }
    case ExprKind::Unary: {
      const auto* un = static_cast<const UnaryExpr*>(expr);
      if (un->op == UnaryOp::Neg) return build_affine(un->operand).scaled(-1);
      return {};
    }
    case ExprKind::Binary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      switch (bin->op) {
        case BinaryOp::Add:
          return build_affine(bin->lhs).plus(build_affine(bin->rhs));
        case BinaryOp::Sub:
          return build_affine(bin->lhs).minus(build_affine(bin->rhs));
        case BinaryOp::Mul: {
          const AffineExpr lhs = build_affine(bin->lhs);
          const AffineExpr rhs = build_affine(bin->rhs);
          if (lhs.is_constant()) return rhs.scaled(lhs.constant_part());
          if (rhs.is_constant()) return lhs.scaled(rhs.constant_part());
          return {};
        }
        default:
          return {};
      }
    }
    default:
      return {};
  }
}

}  // namespace hli::analysis
