// Affine (linear) forms over program variables, used to model array
// subscripts for the data-dependence tests.  A subscript like `2*i + j - 3`
// becomes {terms: {(i,2), (j,1)}, constant: -3}.  Anything the builder
// cannot prove linear is marked non-affine and later analyses degrade to
// "maybe" answers, exactly as a conservative front-end would.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace hli::analysis {

using frontend::Expr;
using frontend::VarDecl;

class AffineExpr {
 public:
  /// The non-affine ("unknown") value.
  AffineExpr() = default;
  /// A constant.
  static AffineExpr constant(std::int64_t value);
  /// A single variable with coefficient 1.
  static AffineExpr variable(const VarDecl* var);

  [[nodiscard]] bool is_affine() const { return affine_; }
  [[nodiscard]] std::int64_t constant_part() const { return constant_; }
  [[nodiscard]] std::int64_t coefficient(const VarDecl* var) const;
  [[nodiscard]] bool is_constant() const { return affine_ && terms_.empty(); }
  /// Variables with non-zero coefficients, sorted by declaration id.
  [[nodiscard]] const std::vector<std::pair<const VarDecl*, std::int64_t>>& terms()
      const {
    return terms_;
  }

  /// True when the two forms are the same linear function.
  [[nodiscard]] bool equals(const AffineExpr& other) const;
  /// this - other, as a new form (non-affine if either side is).
  [[nodiscard]] AffineExpr minus(const AffineExpr& other) const;
  [[nodiscard]] AffineExpr plus(const AffineExpr& other) const;
  [[nodiscard]] AffineExpr scaled(std::int64_t factor) const;

  /// Substitutes var := var + delta (used by HLI maintenance when loop
  /// unrolling rewrites subscripts of duplicated bodies).
  [[nodiscard]] AffineExpr shifted(const VarDecl* var, std::int64_t delta) const;

  /// Substitutes var := value, eliminating the variable.
  [[nodiscard]] AffineExpr substituted(const VarDecl* var, std::int64_t value) const;

  /// True when every term's variable satisfies `pred`.
  [[nodiscard]] bool all_vars(const std::function<bool(const VarDecl*)>& pred) const;

  [[nodiscard]] std::string to_string() const;

 private:
  void normalize();

  bool affine_ = false;
  std::int64_t constant_ = 0;
  // Sorted by VarDecl::id, no zero coefficients.
  std::vector<std::pair<const VarDecl*, std::int64_t>> terms_;
};

/// Builds the affine form of `expr`.  Returns a non-affine value for
/// anything outside the +, -, unary -, and constant-multiplication
/// fragment (calls, loads through memory, divisions, ...).
[[nodiscard]] AffineExpr build_affine(const Expr* expr);

}  // namespace hli::analysis
