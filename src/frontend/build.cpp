#include "frontend/build.hpp"

#include <utility>

namespace hli::frontend {

VarDecl* AstBuilder::global(std::string name, const Type* type, Expr* init) {
  VarDecl* decl =
      prog_.make_var(std::move(name), type, StorageClass::Global, next_line());
  decl->init = init;
  prog_.globals.push_back(decl);
  return decl;
}

FuncDecl* AstBuilder::function(std::string name, const Type* return_type) {
  FuncDecl* func = prog_.make_func(std::move(name), return_type, next_line());
  prog_.functions.push_back(func);
  return func;
}

VarDecl* AstBuilder::param(FuncDecl* func, std::string name, const Type* type) {
  VarDecl* decl =
      prog_.make_var(std::move(name), type, StorageClass::Param, func->loc());
  decl->owner = func;
  func->params.push_back(decl);
  return decl;
}

BlockStmt* AstBuilder::body(FuncDecl* func) {
  func->body = block();
  return func->body;
}

VarDecl* AstBuilder::local(FuncDecl* func, std::string name, const Type* type,
                           Expr* init) {
  VarDecl* decl =
      prog_.make_var(std::move(name), type, StorageClass::Local, here());
  decl->owner = func;
  decl->init = init;
  return decl;
}

Expr* AstBuilder::lit(std::int64_t value) {
  return prog_.make_expr<IntLiteralExpr>(value, here());
}

Expr* AstBuilder::flit(double value, bool single_precision) {
  return prog_.make_expr<FloatLiteralExpr>(value, single_precision, here());
}

Expr* AstBuilder::ref(VarDecl* decl) {
  auto* expr = prog_.make_expr<VarRefExpr>(decl->name(), here());
  expr->decl = decl;
  return expr;
}

Expr* AstBuilder::index(Expr* base, Expr* subscript) {
  return prog_.make_expr<ArrayIndexExpr>(base, subscript, here());
}

Expr* AstBuilder::unary(UnaryOp op, Expr* operand) {
  return prog_.make_expr<UnaryExpr>(op, operand, here());
}

Expr* AstBuilder::binary(BinaryOp op, Expr* lhs, Expr* rhs) {
  return prog_.make_expr<BinaryExpr>(op, lhs, rhs, here());
}

Expr* AstBuilder::assign(Expr* lhs, Expr* rhs, AssignOp op) {
  return prog_.make_expr<AssignExpr>(op, lhs, rhs, here());
}

Expr* AstBuilder::call(const FuncDecl* callee, std::vector<Expr*> args) {
  return call(callee->name(), std::move(args));
}

Expr* AstBuilder::call(std::string callee, std::vector<Expr*> args) {
  auto* expr =
      prog_.make_expr<CallExpr>(std::move(callee), std::move(args), here());
  expr->callee_decl = prog_.find_function(expr->callee);
  return expr;
}

Expr* AstBuilder::cond(Expr* c, Expr* then_expr, Expr* else_expr) {
  return prog_.make_expr<ConditionalExpr>(c, then_expr, else_expr, here());
}

BlockStmt* AstBuilder::block() {
  return prog_.make_stmt<BlockStmt>(here());
}

void AstBuilder::append(BlockStmt* block, Stmt* stmt) {
  block->stmts.push_back(stmt);
}

Stmt* AstBuilder::decl_stmt(VarDecl* decl) {
  return prog_.make_stmt<DeclStmt>(decl, next_line());
}

Stmt* AstBuilder::expr_stmt(Expr* expr) {
  return prog_.make_stmt<ExprStmt>(expr, next_line());
}

Stmt* AstBuilder::if_stmt(Expr* cond, Stmt* then_stmt, Stmt* else_stmt) {
  return prog_.make_stmt<IfStmt>(cond, then_stmt, else_stmt, next_line());
}

Stmt* AstBuilder::while_stmt(Expr* cond, Stmt* body) {
  return prog_.make_stmt<WhileStmt>(cond, body, next_line());
}

Stmt* AstBuilder::for_stmt(Stmt* init, Expr* cond, Expr* step, Stmt* body) {
  return prog_.make_stmt<ForStmt>(init, cond, step, body, next_line());
}

Stmt* AstBuilder::return_stmt(Expr* value) {
  return prog_.make_stmt<ReturnStmt>(value, next_line());
}

Stmt* AstBuilder::break_stmt() {
  return prog_.make_stmt<BreakStmt>(next_line());
}

Stmt* AstBuilder::continue_stmt() {
  return prog_.make_stmt<ContinueStmt>(next_line());
}

}  // namespace hli::frontend
