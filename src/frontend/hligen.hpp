// HLI generation (paper §3.1): ITEMGEN walks each function in the
// canonical item order assigning IDs and building the line table;
// TBLCONST then constructs the region table bottom-up — equivalence
// classes, alias sets, LCDD entries, and call REF/MOD effects — from the
// front-end analyses (region tree, affine sections, points-to, REF/MOD).
#pragma once

#include "frontend/analysis/pointsto.hpp"
#include "frontend/analysis/refmod.hpp"
#include "hli/format.hpp"

namespace hli::builder {

struct BuildOptions {
  /// When true (the paper's configuration), sub-region classes with equal
  /// widened sections are merged into a single *maybe* class in the parent,
  /// condensing the HLI at some precision cost (§2.2.1).  The
  /// bench_maybe_merge ablation flips this off.
  bool merge_equal_range_classes = true;
  /// Open-world linkage for pointer parameters: seed every pointer
  /// parameter of a defined function as pointing at unknown memory, as if
  /// the unit could be linked against unseen callers.  Off by default
  /// (whole-program closed-world view); C-only — see
  /// frontend::FrontendOptions::open_world_params.
  bool open_world_params = false;
};

/// Builds the complete HLI for a program.  Runs points-to and REF/MOD
/// analyses internally.
[[nodiscard]] format::HliFile build_hli(frontend::Program& prog,
                                        const BuildOptions& opts = {});

/// Builds the HLI entry for a single function with caller-provided
/// analyses (used by build_hli and by tests that inspect one unit).
[[nodiscard]] format::HliEntry build_hli_entry(
    frontend::Program& prog, frontend::FuncDecl& func,
    const analysis::PointsToAnalysis& pointsto,
    const analysis::RefModAnalysis& refmod, const BuildOptions& opts = {});

}  // namespace hli::builder
