// AST -> mini-C source renderer, the inverse of the lexer+parser: the
// printed text of any well-formed Program re-parses to an equivalent tree.
// Every declaration and statement lands on its own line (operands fully
// parenthesized), which is exactly the shape the line-granular
// delta-debugging reducer (src/testing/reduce.hpp) wants, and makes the
// printed line number of a statement its eventual HLI line-table key.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace hli::frontend {

/// Renders a whole translation unit: globals first, then functions in
/// declaration order (externs as prototypes).
[[nodiscard]] std::string print_program(const Program& prog);

/// Renders one expression, fully parenthesized.
[[nodiscard]] std::string print_expr(const Expr& expr);

/// Renders `type name` as a mini-C declarator, e.g. `int a[8][16]`,
/// `double* p`.
[[nodiscard]] std::string print_declarator(const Type& type,
                                           const std::string& name);

}  // namespace hli::frontend
