// Recursive-descent parser producing a Program from mini-C source.
#pragma once

#include <optional>
#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace hli::frontend {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  /// Parses a whole translation unit.  On syntax errors, diagnostics are
  /// recorded and a best-effort partial Program is still returned.
  [[nodiscard]] Program parse_program();

 private:
  // Token cursor.
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind kind) const { return peek().is(kind); }
  bool match(TokenKind kind);
  const Token& expect(TokenKind kind, std::string_view what);
  void synchronize();

  // Declarations.
  [[nodiscard]] bool at_type_keyword() const;
  const Type* parse_type_specifier(Program& prog);
  void parse_top_level(Program& prog);
  void parse_global_var(Program& prog, const Type* base, Token name_tok);
  void parse_function(Program& prog, const Type* return_type, Token name_tok);
  const Type* parse_array_suffix(Program& prog, const Type* base);

  // Statements.
  Stmt* parse_stmt(Program& prog, FuncDecl& func);
  BlockStmt* parse_block(Program& prog, FuncDecl& func);
  Stmt* parse_local_decl(Program& prog, FuncDecl& func);
  Stmt* parse_if(Program& prog, FuncDecl& func);
  Stmt* parse_while(Program& prog, FuncDecl& func);
  Stmt* parse_for(Program& prog, FuncDecl& func);
  Stmt* parse_return(Program& prog, FuncDecl& func);

  // Expressions, by descending precedence.
  Expr* parse_expr(Program& prog);
  Expr* parse_assignment(Program& prog);
  Expr* parse_conditional(Program& prog);
  Expr* parse_binary_rhs(Program& prog, int min_precedence, Expr* lhs);
  Expr* parse_unary(Program& prog);
  Expr* parse_postfix(Program& prog);
  Expr* parse_primary(Program& prog);

  std::vector<Token> tokens_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
};

}  // namespace hli::frontend
