#include "frontend/hligen.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "frontend/analysis/item_walk.hpp"
#include "frontend/analysis/section.hpp"

namespace hli::builder {

using analysis::CanonicalLoop;
using analysis::ItemEvent;
using analysis::Region;
using analysis::RegionTree;
using analysis::Section;
using frontend::FuncDecl;
using frontend::Program;
using frontend::VarDecl;
using namespace format;

namespace {

/// Builder-internal view of one generated item.
struct ItemInfo {
  ItemId id = kNoItem;
  ItemType type = ItemType::Load;
  const VarDecl* base = nullptr;
  bool via_pointer = false;
  Section section;
  Region* region = nullptr;
  const frontend::CallExpr* call = nullptr;
  std::uint32_t line = 0;
};

/// A class under construction, carrying analysis data the serialized
/// EquivClass no longer needs.
struct ClassBuild {
  EquivClass entry;
  const VarDecl* base = nullptr;  ///< Null for wild (unknown-target) classes.
  bool via_pointer = false;
  Section section;
};

/// Per-region aggregate of call effects for the sub-region entries of the
/// call REF/MOD table.
struct CallAgg {
  std::set<const VarDecl*> ref;
  std::set<const VarDecl*> mod;
  bool unknown = false;
  bool any_call = false;

  void merge(const CallAgg& other) {
    ref.insert(other.ref.begin(), other.ref.end());
    mod.insert(other.mod.begin(), other.mod.end());
    unknown = unknown || other.unknown;
    any_call = any_call || other.any_call;
  }
};

ItemType to_item_type(ItemEvent::Kind kind) {
  switch (kind) {
    case ItemEvent::Kind::Load: return ItemType::Load;
    case ItemEvent::Kind::Store: return ItemType::Store;
    case ItemEvent::Kind::Call: return ItemType::Call;
    case ItemEvent::Kind::ArgStore: return ItemType::ArgStore;
    case ItemEvent::Kind::ArgLoad: return ItemType::ArgLoad;
  }
  return ItemType::Load;
}

Section section_of_event(const ItemEvent& ev) {
  Section s;
  if (ev.kind == ItemEvent::Kind::ArgStore || ev.kind == ItemEvent::Kind::ArgLoad) {
    // Argument-overflow slots: position differs per call frame; model as an
    // unknown offset within the overflow area.
    s.dims.push_back(analysis::DimSection::unknown());
    return s;
  }
  for (const auto& sub : ev.subscripts) {
    if (sub.is_affine()) {
      s.dims.push_back(analysis::DimSection::point(sub));
    } else {
      s.dims.push_back(analysis::DimSection::unknown());
    }
  }
  return s;
}

class UnitBuilder {
 public:
  UnitBuilder(Program& prog, FuncDecl& func,
              const analysis::PointsToAnalysis& pointsto,
              const analysis::RefModAnalysis& refmod, const BuildOptions& opts)
      : prog_(prog), func_(func), pointsto_(pointsto), refmod_(refmod),
        opts_(opts), tree_(analysis::build_region_tree(func)) {}

  HliEntry build() {
    run_itemgen();
    run_tblconst();
    return std::move(entry_);
  }

 private:
  // -- ITEMGEN ------------------------------------------------------------
  void run_itemgen() {
    entry_.unit_name = func_.name();
    analysis::walk_items(prog_, func_, tree_, [this](const ItemEvent& ev) {
      ItemInfo info;
      info.id = next_id_++;
      info.type = to_item_type(ev.kind);
      info.base = ev.base;
      info.via_pointer = ev.via_pointer;
      info.section = section_of_event(ev);
      info.region = ev.region;
      info.call = ev.call;
      info.line = ev.loc.line;
      entry_.line_table.add_item(info.line, {info.id, info.type});
      items_.push_back(std::move(info));
    });
  }

  // -- TBLCONST -----------------------------------------------------------
  void run_tblconst() {
    // Region skeleton, preorder so parents precede children in the table.
    for (Region* r : tree_.preorder()) {
      RegionEntry re;
      re.id = r->id();
      re.type = r->is_loop() ? RegionType::Loop : RegionType::Unit;
      re.parent = r->parent() != nullptr ? r->parent()->id() : kNoRegion;
      for (const Region* c : r->children()) re.children.push_back(c->id());
      compute_scope(*r, re);
      entry_.regions.push_back(std::move(re));
    }
    entry_.root_region = tree_.root()->id();

    // Bottom-up class construction and table filling (paper §3.1.2).
    for (Region* r : tree_.postorder()) {
      build_region(*r);
    }
    entry_.next_id = next_id_;
  }

  void compute_scope(const Region& r, RegionEntry& re) const {
    std::uint32_t lo = 0;
    std::uint32_t hi = 0;
    if (r.loop_stmt != nullptr) {
      lo = hi = r.loop_stmt->loc().line;
    } else {
      lo = hi = func_.loc().line;
    }
    for (const ItemInfo& item : items_) {
      if (item.region != nullptr && r.encloses(item.region) && item.line != 0) {
        if (lo == 0 || item.line < lo) lo = item.line;
        if (item.line > hi) hi = item.line;
      }
    }
    re.first_line = lo;
    re.last_line = hi;
  }

  [[nodiscard]] const CanonicalLoop* loop_of(const Region& r) const {
    return r.canonical ? &*r.canonical : nullptr;
  }

  /// Statement subtree that constitutes the region, for stability checks.
  [[nodiscard]] const frontend::Stmt* region_stmt(const Region& r) const {
    return r.loop_stmt != nullptr ? r.loop_stmt
                                  : static_cast<frontend::Stmt*>(func_.body);
  }

  [[nodiscard]] bool pointer_stable_in(const Region& r, const VarDecl* ptr) const {
    if (ptr == nullptr) return false;
    if (ptr->address_taken()) return false;
    return !analysis::subtree_modifies(region_stmt(r), ptr);
  }

  void build_region(Region& region) {
    RegionEntry* re = entry_.find_region(region.id());
    const CanonicalLoop* loop = region.is_loop() ? loop_of(region) : nullptr;

    // ---- 1. Gather units: own items + lifted child classes. ------------
    std::vector<ClassBuild> units;
    for (const ItemInfo& item : items_) {
      if (item.region != &region || item.type == ItemType::Call) continue;
      ClassBuild unit;
      unit.entry.id = kNoItem;  // Assigned on class creation.
      unit.entry.member_items.push_back(item.id);
      unit.entry.has_write = is_write_item(item.type);
      unit.base = item.base;
      unit.via_pointer = item.via_pointer;
      unit.section = item.section;
      units.push_back(std::move(unit));
    }
    for (Region* child : region.children()) {
      for (const ClassBuild& child_class : classes_[child->id()]) {
        ClassBuild unit;
        unit.entry.member_subclasses.push_back(child_class.entry.id);
        unit.entry.type = child_class.entry.type;
        unit.entry.has_write = child_class.entry.has_write;
        unit.entry.unknown_target = child_class.entry.unknown_target;
        unit.base = child_class.base;
        unit.via_pointer = child_class.via_pointer;
        unit.section = analysis::widen_over_loop(
            child_class.section, child->canonical ? &*child->canonical : nullptr);
        units.push_back(std::move(unit));
      }
    }

    // ---- 2. Partition units into classes. -------------------------------
    std::vector<ClassBuild>& classes = classes_[region.id()];
    auto matching_class = [&](const ClassBuild& unit) -> ClassBuild* {
      for (ClassBuild& cls : classes) {
        if (cls.base != unit.base || cls.via_pointer != unit.via_pointer) continue;
        if (unit.base == nullptr) return &cls;  // All wild units fold together.
        if (!cls.section.equals(unit.section)) continue;
        // Accesses through an unstable pointer may hit different objects
        // even with identical sections: keep them apart.
        if (unit.via_pointer && !pointer_stable_in(region, unit.base)) continue;
        if (!opts_.merge_equal_range_classes && !unit.section.is_exact()) continue;
        return &cls;
      }
      return nullptr;
    };

    for (ClassBuild& unit : units) {
      if (ClassBuild* cls = matching_class(unit)) {
        // Merge.
        cls->entry.member_items.insert(cls->entry.member_items.end(),
                                       unit.entry.member_items.begin(),
                                       unit.entry.member_items.end());
        cls->entry.member_subclasses.insert(cls->entry.member_subclasses.end(),
                                            unit.entry.member_subclasses.begin(),
                                            unit.entry.member_subclasses.end());
        cls->entry.has_write = cls->entry.has_write || unit.entry.has_write;
        cls->entry.unknown_target =
            cls->entry.unknown_target || unit.entry.unknown_target;
        // Merging over a range section (whole-loop coverage) is only a
        // maybe-equivalence; so is any member that was already maybe.
        if (!unit.section.is_exact() || unit.entry.type == EquivAccType::Maybe) {
          cls->entry.type = EquivAccType::Maybe;
        }
      } else {
        ClassBuild& fresh = unit;
        fresh.entry.id = next_id_++;
        if (fresh.base == nullptr) {
          fresh.entry.unknown_target = true;
          fresh.entry.type = EquivAccType::Maybe;
          fresh.entry.base = "<unknown>";
          fresh.entry.display = "<unknown>";
        } else {
          fresh.entry.base = fresh.base->name();
          fresh.entry.display = fresh.base->name() + fresh.section.to_string();
          if (fresh.via_pointer) {
            fresh.entry.display = "*" + fresh.entry.display;
            if (pointsto_.points_to_unknown(fresh.base)) {
              fresh.entry.unknown_target = true;
              fresh.entry.type = EquivAccType::Maybe;
            }
          }
        }
        classes.push_back(std::move(fresh));
      }
    }

    // Mark per-loop invariance: does the class cover the same locations in
    // every iteration?  Drives copy merging/splitting under unrolling.
    for (ClassBuild& cls : classes) {
      if (loop == nullptr || loop->induction == nullptr) {
        cls.entry.loop_invariant = true;
        continue;
      }
      bool invariant = !cls.entry.unknown_target;
      for (const auto& dim : cls.section.dims) {
        if (dim.is_unknown() || dim.lo.coefficient(loop->induction) != 0 ||
            dim.hi.coefficient(loop->induction) != 0) {
          invariant = false;
          break;
        }
      }
      cls.entry.loop_invariant = invariant;
    }

    // ---- 2b. Self carried dependences of variant classes. ---------------
    // Unrolling splits a variant class into per-copy classes and treats
    // the copies as covering disjoint locations.  That is only true when
    // the class's own footprint never recurs across iterations (a strided
    // subscript); an unanalyzable subscript or an unstable pointer may
    // hit the same locations again, so record the class's dependence on
    // itself and let the unroll expansion alias the copies.  Classes the
    // section math proves non-recurring get no entry, keeping unrolled
    // copies independent.
    if (loop != nullptr) {
      for (const ClassBuild& cls : classes) {
        if (cls.entry.loop_invariant || !cls.entry.has_write) continue;
        if (cls.entry.unknown_target) continue;  // The flag answers queries.
        if (cls.via_pointer && !pointer_stable_in(region, cls.base)) {
          add_lcdd(*re, cls.entry.id, cls.entry.id,
                   {analysis::CarriedKind::Maybe, std::nullopt});
          continue;
        }
        add_lcdd(*re, cls.entry.id, cls.entry.id,
                 section_depend(loop, cls.section, cls.section).a_then_b);
      }
    }

    // ---- 3. Alias and LCDD tables. --------------------------------------
    for (std::size_t i = 0; i < classes.size(); ++i) {
      for (std::size_t j = i + 1; j < classes.size(); ++j) {
        analyze_pair(*re, loop, region, classes[i], classes[j]);
      }
    }

    // ---- 4. Call REF/MOD table. -----------------------------------------
    build_call_effects(region, *re, classes);

    // ---- 5. Export the classes into the serializable region entry. ------
    re->classes.reserve(classes.size());
    for (const ClassBuild& cls : classes) {
      re->classes.push_back(cls.entry);
    }
  }

  void analyze_pair(RegionEntry& re, const CanonicalLoop* loop,
                    const Region& region, const ClassBuild& a,
                    const ClassBuild& b) {
    const bool same_base = a.base == b.base && a.base != nullptr;
    bool may_overlap = false;
    if (a.entry.unknown_target || b.entry.unknown_target) {
      // Unknown-target classes alias everything; queries handle this via
      // the class flag, no table entry needed.
      return;
    }
    if (same_base && a.via_pointer == b.via_pointer) {
      const bool unstable_ptr =
          a.via_pointer && !pointer_stable_in(region, a.base);
      const analysis::SectionDependence sd =
          section_depend(loop, a.section, b.section);
      if (unstable_ptr) {
        may_overlap = true;  // Same pointer, possibly retargeted.
      } else {
        may_overlap = sd.within != analysis::IterRelation::Disjoint;
        if (loop != nullptr && (a.entry.has_write || b.entry.has_write)) {
          add_lcdd(re, a.entry.id, b.entry.id, sd.a_then_b);
          add_lcdd(re, b.entry.id, a.entry.id, sd.b_then_a);
        }
      }
      // Pessimistic carried entry for unstable pointers inside loops.
      if (unstable_ptr && loop != nullptr &&
          (a.entry.has_write || b.entry.has_write)) {
        add_lcdd(re, a.entry.id, b.entry.id,
                 {analysis::CarriedKind::Maybe, std::nullopt});
      }
    } else if (a.via_pointer != b.via_pointer) {
      // Pointer class vs. direct class: alias when the pointer may target
      // the direct class's base.
      const ClassBuild& ptr_cls = a.via_pointer ? a : b;
      const ClassBuild& dir_cls = a.via_pointer ? b : a;
      may_overlap = pointsto_.may_point_to(ptr_cls.base, dir_cls.base);
      if (may_overlap && loop != nullptr &&
          (a.entry.has_write || b.entry.has_write)) {
        add_lcdd(re, a.entry.id, b.entry.id,
                 {analysis::CarriedKind::Maybe, std::nullopt});
      }
    } else if (a.via_pointer && b.via_pointer) {
      // Two different pointers.
      may_overlap = pointsto_.may_alias(a.base, b.base);
      if (may_overlap && loop != nullptr &&
          (a.entry.has_write || b.entry.has_write)) {
        add_lcdd(re, a.entry.id, b.entry.id,
                 {analysis::CarriedKind::Maybe, std::nullopt});
      }
    }
    // Distinct direct bases never overlap (separate objects in C).
    if (may_overlap) {
      re.aliases.push_back({{a.entry.id, b.entry.id}});
    }
  }

  void add_lcdd(RegionEntry& re, ItemId src, ItemId dst,
                const analysis::CarriedDep& dep) {
    if (dep.kind == analysis::CarriedKind::None) return;
    LcddEntry entry;
    entry.src = src;
    entry.dst = dst;
    entry.type = dep.kind == analysis::CarriedKind::Definite ? DepType::Definite
                                                             : DepType::Maybe;
    entry.distance = dep.distance;
    re.lcdds.push_back(entry);
  }

  /// Maps a variable set (from REF/MOD analysis) to the classes of a
  /// region that may cover those variables.
  [[nodiscard]] std::vector<ItemId> map_vars_to_classes(
      const std::vector<ClassBuild>& classes,
      const std::set<const VarDecl*>& vars) const {
    std::vector<ItemId> out;
    for (const ClassBuild& cls : classes) {
      if (cls.base == nullptr) continue;
      bool covered = false;
      if (!cls.via_pointer) {
        covered = vars.contains(cls.base);
      } else {
        for (const VarDecl* target : pointsto_.points_to(cls.base)) {
          if (vars.contains(target)) {
            covered = true;
            break;
          }
        }
        if (pointsto_.points_to_unknown(cls.base) && !vars.empty()) covered = true;
      }
      if (covered) out.push_back(cls.entry.id);
    }
    return out;
  }

  void build_call_effects(const Region& region, RegionEntry& re,
                          const std::vector<ClassBuild>& classes) {
    CallAgg agg;
    for (const ItemInfo& item : items_) {
      if (item.region != &region || item.type != ItemType::Call) continue;
      const FuncDecl* callee = item.call != nullptr ? item.call->callee_decl : nullptr;
      CallEffectEntry entry;
      entry.call_item = item.id;
      if (callee == nullptr) {
        entry.unknown = true;
      } else {
        const analysis::RefModSets& sets = refmod_.for_function(callee);
        entry.unknown = sets.unknown;
        entry.ref_classes = map_vars_to_classes(classes, sets.ref);
        entry.mod_classes = map_vars_to_classes(classes, sets.mod);
        agg.ref.insert(sets.ref.begin(), sets.ref.end());
        agg.mod.insert(sets.mod.begin(), sets.mod.end());
      }
      agg.unknown = agg.unknown || entry.unknown;
      agg.any_call = true;
      re.call_effects.push_back(std::move(entry));
    }
    // Sub-region aggregates (paper §2.2.4: calls inside a sub-region are
    // represented collectively by the sub-region ID).
    for (Region* child : region.children()) {
      const CallAgg& child_agg = call_aggs_[child->id()];
      if (!child_agg.any_call) continue;
      CallEffectEntry entry;
      entry.is_subregion = true;
      entry.subregion = child->id();
      entry.unknown = child_agg.unknown;
      entry.ref_classes = map_vars_to_classes(classes, child_agg.ref);
      entry.mod_classes = map_vars_to_classes(classes, child_agg.mod);
      re.call_effects.push_back(std::move(entry));
      agg.merge(child_agg);
    }
    call_aggs_[region.id()] = std::move(agg);
  }

  Program& prog_;
  FuncDecl& func_;
  const analysis::PointsToAnalysis& pointsto_;
  const analysis::RefModAnalysis& refmod_;
  BuildOptions opts_;
  RegionTree tree_;

  HliEntry entry_;
  std::vector<ItemInfo> items_;
  ItemId next_id_ = 1;
  std::unordered_map<std::uint32_t, std::vector<ClassBuild>> classes_;
  std::unordered_map<std::uint32_t, CallAgg> call_aggs_;
};

}  // namespace

HliEntry build_hli_entry(Program& prog, FuncDecl& func,
                         const analysis::PointsToAnalysis& pointsto,
                         const analysis::RefModAnalysis& refmod,
                         const BuildOptions& opts) {
  UnitBuilder builder(prog, func, pointsto, refmod, opts);
  return builder.build();
}

HliFile build_hli(Program& prog, const BuildOptions& opts) {
  analysis::PointsToAnalysis pointsto(prog, opts.open_world_params);
  pointsto.run();
  analysis::RefModAnalysis refmod(prog, pointsto);
  refmod.run();

  HliFile file;
  for (FuncDecl* func : prog.functions) {
    if (func->is_extern()) continue;
    file.entries.push_back(build_hli_entry(prog, *func, pointsto, refmod, opts));
  }
  return file;
}

}  // namespace hli::builder
