#include "frontend/sema.hpp"

#include <unordered_map>
#include <vector>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace hli::frontend {

// Lexically scoped symbol table for variable lookup.
class Sema::ScopeStack {
 public:
  void push() { scopes_.emplace_back(); }
  void pop() { scopes_.pop_back(); }

  void declare(VarDecl* decl) { scopes_.back()[decl->name()] = decl; }

  [[nodiscard]] VarDecl* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    return nullptr;
  }

 private:
  std::vector<std::unordered_map<std::string, VarDecl*>> scopes_;
};

bool Sema::run(Program& prog) {
  const std::size_t errors_before = diags_.error_count();
  ScopeStack scopes;
  scopes.push();  // Global scope.
  for (VarDecl* global : prog.globals) {
    check_var_decl(prog, *global, scopes);
    scopes.declare(global);
  }
  for (FuncDecl* func : prog.functions) {
    if (!func->is_extern()) check_function(prog, *func, scopes);
  }
  scopes.pop();
  return diags_.error_count() == errors_before;
}

void Sema::check_function(Program& prog, FuncDecl& func, ScopeStack& scopes) {
  scopes.push();
  for (VarDecl* param : func.params) scopes.declare(param);
  check_stmt(prog, func, func.body, scopes);
  scopes.pop();
}

void Sema::check_var_decl(Program& prog, VarDecl& decl, ScopeStack& scopes) {
  if (decl.type()->is_void()) {
    diags_.error(decl.loc(), "variable '" + decl.name() + "' has void type");
  }
  if (decl.init != nullptr) check_expr(prog, decl.init, scopes);
}

void Sema::check_stmt(Program& prog, FuncDecl& func, Stmt* stmt, ScopeStack& scopes) {
  if (stmt == nullptr) return;
  switch (stmt->kind()) {
    case StmtKind::Decl: {
      auto* decl_stmt = static_cast<DeclStmt*>(stmt);
      check_var_decl(prog, *decl_stmt->decl, scopes);
      scopes.declare(decl_stmt->decl);
      return;
    }
    case StmtKind::Expr:
      check_expr(prog, static_cast<ExprStmt*>(stmt)->expr, scopes);
      return;
    case StmtKind::Block: {
      auto* block = static_cast<BlockStmt*>(stmt);
      scopes.push();
      for (Stmt* child : block->stmts) check_stmt(prog, func, child, scopes);
      scopes.pop();
      return;
    }
    case StmtKind::If: {
      auto* if_stmt = static_cast<IfStmt*>(stmt);
      check_expr(prog, if_stmt->cond, scopes);
      check_stmt(prog, func, if_stmt->then_stmt, scopes);
      check_stmt(prog, func, if_stmt->else_stmt, scopes);
      return;
    }
    case StmtKind::While: {
      auto* loop = static_cast<WhileStmt*>(stmt);
      check_expr(prog, loop->cond, scopes);
      check_stmt(prog, func, loop->body, scopes);
      return;
    }
    case StmtKind::For: {
      auto* loop = static_cast<ForStmt*>(stmt);
      scopes.push();  // for-init declarations scope over cond/step/body.
      check_stmt(prog, func, loop->init, scopes);
      if (loop->cond != nullptr) check_expr(prog, loop->cond, scopes);
      if (loop->step != nullptr) check_expr(prog, loop->step, scopes);
      check_stmt(prog, func, loop->body, scopes);
      scopes.pop();
      return;
    }
    case StmtKind::Return: {
      auto* ret = static_cast<ReturnStmt*>(stmt);
      if (ret->value != nullptr) {
        check_expr(prog, ret->value, scopes);
        if (func.return_type()->is_void()) {
          diags_.error(ret->loc(), "void function '" + func.name() +
                                       "' returns a value");
        }
      } else if (!func.return_type()->is_void()) {
        diags_.error(ret->loc(), "non-void function '" + func.name() +
                                     "' returns nothing");
      }
      return;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
      return;
  }
}

const Type* Sema::check_lvalue(Program& prog, Expr* expr, ScopeStack& scopes) {
  const Type* type = check_expr(prog, expr, scopes);
  const bool ok = expr->kind() == ExprKind::VarRef ||
                  expr->kind() == ExprKind::ArrayIndex ||
                  (expr->kind() == ExprKind::Unary &&
                   static_cast<UnaryExpr*>(expr)->op == UnaryOp::Deref);
  if (!ok) diags_.error(expr->loc(), "expression is not assignable");
  return type;
}

const Type* Sema::check_expr(Program& prog, Expr* expr, ScopeStack& scopes) {
  if (expr == nullptr) return prog.types.int_type();
  switch (expr->kind()) {
    case ExprKind::IntLiteral:
      expr->type = prog.types.int_type();
      return expr->type;
    case ExprKind::FloatLiteral: {
      auto* lit = static_cast<FloatLiteralExpr*>(expr);
      expr->type = lit->single_precision ? prog.types.float_type()
                                         : prog.types.double_type();
      return expr->type;
    }
    case ExprKind::VarRef: {
      auto* ref = static_cast<VarRefExpr*>(expr);
      ref->decl = scopes.lookup(ref->name);
      if (ref->decl == nullptr) {
        diags_.error(ref->loc(), "use of undeclared identifier '" + ref->name + "'");
        expr->type = prog.types.int_type();
        return expr->type;
      }
      expr->type = ref->decl->type();
      return expr->type;
    }
    case ExprKind::ArrayIndex: {
      auto* idx = static_cast<ArrayIndexExpr*>(expr);
      const Type* base = check_expr(prog, idx->base, scopes);
      const Type* index = check_expr(prog, idx->index, scopes);
      if (!index->is_int()) {
        diags_.error(idx->index->loc(), "array subscript is not an integer");
      }
      if (base->is_array() || base->is_pointer()) {
        expr->type = base->element();
      } else {
        diags_.error(idx->loc(), "subscripted value is not an array or pointer");
        expr->type = prog.types.int_type();
      }
      return expr->type;
    }
    case ExprKind::Unary: {
      auto* un = static_cast<UnaryExpr*>(expr);
      switch (un->op) {
        case UnaryOp::AddrOf: {
          const Type* operand = check_lvalue(prog, un->operand, scopes);
          // Mark the root variable as address-taken: it must stay in memory.
          Expr* root = un->operand;
          while (root->kind() == ExprKind::ArrayIndex) {
            root = static_cast<ArrayIndexExpr*>(root)->base;
          }
          if (root->kind() == ExprKind::VarRef) {
            if (VarDecl* decl = static_cast<VarRefExpr*>(root)->decl) {
              decl->set_address_taken();
            }
          }
          expr->type = prog.types.pointer_to(operand);
          return expr->type;
        }
        case UnaryOp::Deref: {
          const Type* operand = check_expr(prog, un->operand, scopes);
          if (operand->is_pointer() || operand->is_array()) {
            expr->type = operand->element();
          } else {
            diags_.error(un->loc(), "cannot dereference non-pointer");
            expr->type = prog.types.int_type();
          }
          return expr->type;
        }
        case UnaryOp::Not:
          check_expr(prog, un->operand, scopes);
          expr->type = prog.types.int_type();
          return expr->type;
        case UnaryOp::BitNot: {
          const Type* operand = check_expr(prog, un->operand, scopes);
          if (!operand->is_int()) {
            diags_.error(un->loc(), "bitwise operator requires integer operand");
          }
          expr->type = prog.types.int_type();
          return expr->type;
        }
        case UnaryOp::Neg:
          expr->type = check_expr(prog, un->operand, scopes);
          return expr->type;
        case UnaryOp::PreInc:
        case UnaryOp::PreDec:
        case UnaryOp::PostInc:
        case UnaryOp::PostDec:
          expr->type = check_lvalue(prog, un->operand, scopes);
          return expr->type;
      }
      expr->type = prog.types.int_type();
      return expr->type;
    }
    case ExprKind::Binary: {
      auto* bin = static_cast<BinaryExpr*>(expr);
      const Type* lhs = check_expr(prog, bin->lhs, scopes);
      const Type* rhs = check_expr(prog, bin->rhs, scopes);
      switch (bin->op) {
        case BinaryOp::LogAnd:
        case BinaryOp::LogOr:
        case BinaryOp::Lt:
        case BinaryOp::Gt:
        case BinaryOp::Le:
        case BinaryOp::Ge:
        case BinaryOp::Eq:
        case BinaryOp::Ne:
          expr->type = prog.types.int_type();
          return expr->type;
        case BinaryOp::And:
        case BinaryOp::Or:
        case BinaryOp::Xor:
        case BinaryOp::Shl:
        case BinaryOp::Shr:
        case BinaryOp::Rem:
          if (!lhs->is_int() || !rhs->is_int()) {
            diags_.error(bin->loc(), "integer operator applied to non-integers");
          }
          expr->type = prog.types.int_type();
          return expr->type;
        default: {
          // Pointer arithmetic: pointer +/- int yields the pointer type.
          if ((lhs->is_pointer() || lhs->is_array()) && rhs->is_int() &&
              (bin->op == BinaryOp::Add || bin->op == BinaryOp::Sub)) {
            expr->type = lhs->is_array()
                             ? prog.types.pointer_to(lhs->element())
                             : lhs;
            return expr->type;
          }
          if (lhs->is_pointer() && rhs->is_pointer() && bin->op == BinaryOp::Sub) {
            expr->type = prog.types.int_type();
            return expr->type;
          }
          expr->type = prog.types.common_arithmetic(lhs, rhs);
          return expr->type;
        }
      }
    }
    case ExprKind::Assign: {
      auto* asn = static_cast<AssignExpr*>(expr);
      const Type* lhs = check_lvalue(prog, asn->lhs, scopes);
      check_expr(prog, asn->rhs, scopes);
      expr->type = lhs;
      return expr->type;
    }
    case ExprKind::Call: {
      auto* call = static_cast<CallExpr*>(expr);
      call->callee_decl = prog.find_function(call->callee);
      if (call->callee_decl == nullptr) {
        diags_.error(call->loc(), "call to undeclared function '" + call->callee + "'");
        expr->type = prog.types.int_type();
      } else {
        if (!call->callee_decl->params.empty() &&
            call->args.size() != call->callee_decl->params.size()) {
          diags_.error(call->loc(),
                       "wrong number of arguments to '" + call->callee + "': got " +
                           std::to_string(call->args.size()) + ", expected " +
                           std::to_string(call->callee_decl->params.size()));
        }
        expr->type = call->callee_decl->return_type();
      }
      for (Expr* arg : call->args) check_expr(prog, arg, scopes);
      return expr->type;
    }
    case ExprKind::Conditional: {
      auto* cond = static_cast<ConditionalExpr*>(expr);
      check_expr(prog, cond->cond, scopes);
      const Type* a = check_expr(prog, cond->then_expr, scopes);
      const Type* b = check_expr(prog, cond->else_expr, scopes);
      expr->type = a->is_scalar() && b->is_scalar()
                       ? prog.types.common_arithmetic(a, b)
                       : a;
      return expr->type;
    }
  }
  expr->type = prog.types.int_type();
  return expr->type;
}

Program compile_to_ast(std::string_view source, support::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags);
  Program prog = parser.parse_program();
  if (diags.has_errors()) {
    throw support::CompileError("syntax errors:\n" + diags.render());
  }
  Sema sema(diags);
  if (!sema.run(prog)) {
    throw support::CompileError("semantic errors:\n" + diags.render());
  }
  return prog;
}

}  // namespace hli::frontend
