// Semantic analysis: name resolution, type checking, and the attribute
// computations the rest of the pipeline relies on (address-taken flags,
// which drive the ITEMGEN memory-residency rule).
#pragma once

#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace hli::frontend {

class Sema {
 public:
  explicit Sema(support::DiagnosticEngine& diags) : diags_(diags) {}

  /// Resolves and type-checks the whole program in place.  Returns true on
  /// success (no errors added to the diagnostic engine).
  bool run(Program& prog);

 private:
  class ScopeStack;

  void check_function(Program& prog, FuncDecl& func, ScopeStack& scopes);
  void check_stmt(Program& prog, FuncDecl& func, Stmt* stmt, ScopeStack& scopes);
  void check_var_decl(Program& prog, VarDecl& decl, ScopeStack& scopes);
  const Type* check_expr(Program& prog, Expr* expr, ScopeStack& scopes);
  const Type* check_lvalue(Program& prog, Expr* expr, ScopeStack& scopes);

  support::DiagnosticEngine& diags_;
};

/// Convenience front door: lex + parse + sema in one call.  Throws
/// CompileError if any phase reports errors.
[[nodiscard]] Program compile_to_ast(std::string_view source,
                                     support::DiagnosticEngine& diags);

}  // namespace hli::frontend
