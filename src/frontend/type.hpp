// Interned type system for the mini-C front-end.  Types are immutable and
// owned by a TypeContext; every AST node holds a `const Type*` so type
// identity is pointer identity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hli::frontend {

enum class TypeKind : std::uint8_t { Void, Int, Float, Double, Pointer, Array };

class Type {
 public:
  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool is_void() const { return kind_ == TypeKind::Void; }
  [[nodiscard]] bool is_int() const { return kind_ == TypeKind::Int; }
  [[nodiscard]] bool is_floating() const {
    return kind_ == TypeKind::Float || kind_ == TypeKind::Double;
  }
  [[nodiscard]] bool is_scalar() const {
    return kind_ == TypeKind::Int || is_floating() || kind_ == TypeKind::Pointer;
  }
  [[nodiscard]] bool is_pointer() const { return kind_ == TypeKind::Pointer; }
  [[nodiscard]] bool is_array() const { return kind_ == TypeKind::Array; }

  /// Element type for pointers and arrays; nullptr otherwise.
  [[nodiscard]] const Type* element() const { return element_; }
  /// Number of elements for arrays; 0 otherwise.
  [[nodiscard]] std::uint64_t array_size() const { return array_size_; }

  /// Size in bytes on the (synthetic) target: int 4, float 4, double 8,
  /// pointer 8.  Used for HLI size accounting and RTL address arithmetic.
  [[nodiscard]] std::uint64_t byte_size() const;

  [[nodiscard]] std::string to_string() const;

 private:
  friend class TypeContext;
  Type(TypeKind kind, const Type* element, std::uint64_t array_size)
      : kind_(kind), element_(element), array_size_(array_size) {}

  TypeKind kind_;
  const Type* element_ = nullptr;
  std::uint64_t array_size_ = 0;
};

/// Owns and interns all Type instances for one Program.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;
  TypeContext(TypeContext&&) = default;
  TypeContext& operator=(TypeContext&&) = default;

  [[nodiscard]] const Type* void_type() const { return void_; }
  [[nodiscard]] const Type* int_type() const { return int_; }
  [[nodiscard]] const Type* float_type() const { return float_; }
  [[nodiscard]] const Type* double_type() const { return double_; }
  [[nodiscard]] const Type* pointer_to(const Type* element);
  [[nodiscard]] const Type* array_of(const Type* element, std::uint64_t count);

  /// C's usual arithmetic conversions, reduced to our three numeric types.
  [[nodiscard]] const Type* common_arithmetic(const Type* a, const Type* b) const;

 private:
  const Type* make(TypeKind kind, const Type* element, std::uint64_t size);

  std::vector<std::unique_ptr<Type>> storage_;
  const Type* void_ = nullptr;
  const Type* int_ = nullptr;
  const Type* float_ = nullptr;
  const Type* double_ = nullptr;
};

}  // namespace hli::frontend
