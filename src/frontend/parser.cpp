#include "frontend/parser.hpp"

#include <string>

namespace hli::frontend {

namespace {

/// Binary operator precedence for the precedence-climbing loop.  Higher
/// binds tighter.  Assignment and ?: are handled separately.
int precedence_of(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::Pipe: return 3;
    case TokenKind::Caret: return 4;
    case TokenKind::Amp: return 5;
    case TokenKind::EqEq:
    case TokenKind::BangEq: return 6;
    case TokenKind::Less:
    case TokenKind::Greater:
    case TokenKind::LessEq:
    case TokenKind::GreaterEq: return 7;
    case TokenKind::Shl:
    case TokenKind::Shr: return 8;
    case TokenKind::Plus:
    case TokenKind::Minus: return 9;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 10;
    default: return -1;
  }
}

BinaryOp binary_op_of(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return BinaryOp::LogOr;
    case TokenKind::AmpAmp: return BinaryOp::LogAnd;
    case TokenKind::Pipe: return BinaryOp::Or;
    case TokenKind::Caret: return BinaryOp::Xor;
    case TokenKind::Amp: return BinaryOp::And;
    case TokenKind::EqEq: return BinaryOp::Eq;
    case TokenKind::BangEq: return BinaryOp::Ne;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::LessEq: return BinaryOp::Le;
    case TokenKind::GreaterEq: return BinaryOp::Ge;
    case TokenKind::Shl: return BinaryOp::Shl;
    case TokenKind::Shr: return BinaryOp::Shr;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Rem;
    default: return BinaryOp::Add;  // Unreachable given precedence_of guard.
  }
}

}  // namespace

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t index = pos_ + ahead;
  return index < tokens_.size() ? tokens_[index] : tokens_.back();
}

const Token& Parser::advance() {
  const Token& tok = peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::match(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, std::string_view what) {
  if (check(kind)) return advance();
  diags_.error(peek().loc, "expected " + std::string(token_kind_name(kind)) + " " +
                               std::string(what) + ", found " +
                               std::string(token_kind_name(peek().kind)));
  return peek();
}

void Parser::synchronize() {
  // Skip ahead to a statement/declaration boundary after a syntax error.
  while (!check(TokenKind::End)) {
    if (match(TokenKind::Semicolon)) return;
    if (check(TokenKind::RBrace) || at_type_keyword() || check(TokenKind::KwIf) ||
        check(TokenKind::KwFor) || check(TokenKind::KwWhile) ||
        check(TokenKind::KwReturn)) {
      return;
    }
    advance();
  }
}

bool Parser::at_type_keyword() const {
  switch (peek().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwFloat:
    case TokenKind::KwDouble:
    case TokenKind::KwVoid:
      return true;
    default:
      return false;
  }
}

const Type* Parser::parse_type_specifier(Program& prog) {
  const Type* base = nullptr;
  switch (peek().kind) {
    case TokenKind::KwInt: base = prog.types.int_type(); break;
    case TokenKind::KwFloat: base = prog.types.float_type(); break;
    case TokenKind::KwDouble: base = prog.types.double_type(); break;
    case TokenKind::KwVoid: base = prog.types.void_type(); break;
    default:
      diags_.error(peek().loc, "expected type specifier");
      return prog.types.int_type();
  }
  advance();
  while (match(TokenKind::Star)) base = prog.types.pointer_to(base);
  return base;
}

const Type* Parser::parse_array_suffix(Program& prog, const Type* base) {
  // Collect dimensions left to right, then fold right to left so that
  // `int a[2][3]` is array<2, array<3, int>>.
  std::vector<std::uint64_t> dims;
  while (match(TokenKind::LBracket)) {
    const Token& size = expect(TokenKind::IntLiteral, "as array dimension");
    dims.push_back(static_cast<std::uint64_t>(size.int_value));
    expect(TokenKind::RBracket, "after array dimension");
  }
  const Type* type = base;
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    type = prog.types.array_of(type, *it);
  }
  return type;
}

Program Parser::parse_program() {
  Program prog;
  while (!check(TokenKind::End)) {
    parse_top_level(prog);
  }
  return prog;
}

void Parser::parse_top_level(Program& prog) {
  if (!at_type_keyword()) {
    diags_.error(peek().loc, "expected declaration at file scope");
    // Force progress to the next plausible declaration start.  The
    // statement-boundary tokens synchronize() stops at without consuming
    // (`}`, `if`, `for`, ...) are not progress at file scope: leaving one
    // current re-reported the same token forever.
    while (!check(TokenKind::End) && !at_type_keyword()) advance();
    return;
  }
  const Type* base = parse_type_specifier(prog);
  Token name_tok = expect(TokenKind::Identifier, "in declaration");
  if (check(TokenKind::LParen)) {
    parse_function(prog, base, std::move(name_tok));
  } else {
    parse_global_var(prog, base, std::move(name_tok));
  }
}

void Parser::parse_global_var(Program& prog, const Type* base, Token name_tok) {
  while (true) {
    const Type* type = parse_array_suffix(prog, base);
    VarDecl* decl = prog.make_var(name_tok.text, type, StorageClass::Global,
                                  name_tok.loc);
    if (match(TokenKind::Assign)) decl->init = parse_assignment(prog);
    prog.globals.push_back(decl);
    if (!match(TokenKind::Comma)) break;
    name_tok = expect(TokenKind::Identifier, "in declaration");
  }
  expect(TokenKind::Semicolon, "after global declaration");
}

void Parser::parse_function(Program& prog, const Type* return_type, Token name_tok) {
  FuncDecl* func = prog.make_func(name_tok.text, return_type, name_tok.loc);
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen) && !check(TokenKind::KwVoid)) {
    do {
      const Type* param_base = parse_type_specifier(prog);
      const Token& param_name = expect(TokenKind::Identifier, "as parameter name");
      const Type* param_type = param_base;
      // Array parameters decay to pointers, as in C.
      if (check(TokenKind::LBracket)) {
        const Type* arr = parse_array_suffix(prog, param_base);
        const Type* elem = arr;
        std::uint64_t inner = 1;
        // a[N][M] decays to pointer-to-row; we model rows as flat strides,
        // so record pointer-to-element plus the row extent via array type.
        while (elem->is_array()) {
          inner *= elem->array_size();
          elem = elem->element();
        }
        (void)inner;
        // Keep the full array shape behind the pointer so subscript lowering
        // can compute row strides: pointer to (array type minus first dim).
        const Type* pointee = arr->element();
        param_type = prog.types.pointer_to(pointee);
      }
      VarDecl* param = prog.make_var(param_name.text, param_type,
                                     StorageClass::Param, param_name.loc);
      param->owner = func;
      func->params.push_back(param);
    } while (match(TokenKind::Comma));
  } else if (check(TokenKind::KwVoid) && peek(1).is(TokenKind::RParen)) {
    advance();  // Consume `void` in `f(void)`.
  }
  expect(TokenKind::RParen, "after parameter list");
  if (match(TokenKind::Semicolon)) {
    prog.functions.push_back(func);  // Extern declaration.
    return;
  }
  func->body = parse_block(prog, *func);
  prog.functions.push_back(func);
}

BlockStmt* Parser::parse_block(Program& prog, FuncDecl& func) {
  const Token& open = expect(TokenKind::LBrace, "to open block");
  auto* block = prog.make_stmt<BlockStmt>(open.loc);
  while (!check(TokenKind::RBrace) && !check(TokenKind::End)) {
    if (Stmt* stmt = parse_stmt(prog, func)) block->stmts.push_back(stmt);
  }
  expect(TokenKind::RBrace, "to close block");
  return block;
}

Stmt* Parser::parse_stmt(Program& prog, FuncDecl& func) {
  switch (peek().kind) {
    case TokenKind::LBrace: return parse_block(prog, func);
    case TokenKind::KwIf: return parse_if(prog, func);
    case TokenKind::KwWhile: return parse_while(prog, func);
    case TokenKind::KwFor: return parse_for(prog, func);
    case TokenKind::KwReturn: return parse_return(prog, func);
    case TokenKind::KwBreak: {
      const Token& tok = advance();
      expect(TokenKind::Semicolon, "after 'break'");
      return prog.make_stmt<BreakStmt>(tok.loc);
    }
    case TokenKind::KwContinue: {
      const Token& tok = advance();
      expect(TokenKind::Semicolon, "after 'continue'");
      return prog.make_stmt<ContinueStmt>(tok.loc);
    }
    case TokenKind::Semicolon:
      advance();
      return nullptr;
    default:
      if (at_type_keyword()) return parse_local_decl(prog, func);
      {
        Expr* expr = parse_expr(prog);
        const support::SourceLoc loc = expr ? expr->loc() : peek().loc;
        expect(TokenKind::Semicolon, "after expression statement");
        return prog.make_stmt<ExprStmt>(expr, loc);
      }
  }
}

Stmt* Parser::parse_local_decl(Program& prog, FuncDecl& func) {
  const Type* base = parse_type_specifier(prog);
  const Token& first = expect(TokenKind::Identifier, "in declaration");
  auto* block = prog.make_stmt<BlockStmt>(first.loc);
  Token name_tok = first;
  while (true) {
    const Type* type = parse_array_suffix(prog, base);
    VarDecl* decl = prog.make_var(name_tok.text, type, StorageClass::Local,
                                  name_tok.loc);
    decl->owner = &func;
    if (match(TokenKind::Assign)) decl->init = parse_assignment(prog);
    block->stmts.push_back(prog.make_stmt<DeclStmt>(decl, name_tok.loc));
    if (!match(TokenKind::Comma)) break;
    name_tok = expect(TokenKind::Identifier, "in declaration");
  }
  expect(TokenKind::Semicolon, "after declaration");
  // A single declarator doesn't need the wrapping block.
  if (block->stmts.size() == 1) return block->stmts.front();
  return block;
}

Stmt* Parser::parse_if(Program& prog, FuncDecl& func) {
  const Token& kw = advance();
  expect(TokenKind::LParen, "after 'if'");
  Expr* cond = parse_expr(prog);
  expect(TokenKind::RParen, "after if condition");
  Stmt* then_stmt = parse_stmt(prog, func);
  Stmt* else_stmt = nullptr;
  if (match(TokenKind::KwElse)) else_stmt = parse_stmt(prog, func);
  return prog.make_stmt<IfStmt>(cond, then_stmt, else_stmt, kw.loc);
}

Stmt* Parser::parse_while(Program& prog, FuncDecl& func) {
  const Token& kw = advance();
  expect(TokenKind::LParen, "after 'while'");
  Expr* cond = parse_expr(prog);
  expect(TokenKind::RParen, "after while condition");
  Stmt* body = parse_stmt(prog, func);
  auto* stmt = prog.make_stmt<WhileStmt>(cond, body, kw.loc);
  stmt->loop_id = func.next_loop_id++;
  return stmt;
}

Stmt* Parser::parse_for(Program& prog, FuncDecl& func) {
  const Token& kw = advance();
  expect(TokenKind::LParen, "after 'for'");
  Stmt* init = nullptr;
  if (!check(TokenKind::Semicolon)) {
    if (at_type_keyword()) {
      init = parse_local_decl(prog, func);
    } else {
      Expr* expr = parse_expr(prog);
      init = prog.make_stmt<ExprStmt>(expr, expr ? expr->loc() : kw.loc);
      expect(TokenKind::Semicolon, "after for-init");
    }
  } else {
    advance();
  }
  Expr* cond = nullptr;
  if (!check(TokenKind::Semicolon)) cond = parse_expr(prog);
  expect(TokenKind::Semicolon, "after for-condition");
  Expr* step = nullptr;
  if (!check(TokenKind::RParen)) step = parse_expr(prog);
  expect(TokenKind::RParen, "after for-step");
  Stmt* body = parse_stmt(prog, func);
  auto* stmt = prog.make_stmt<ForStmt>(init, cond, step, body, kw.loc);
  stmt->loop_id = func.next_loop_id++;
  return stmt;
}

Stmt* Parser::parse_return(Program& prog, FuncDecl& func) {
  (void)func;
  const Token& kw = advance();
  Expr* value = nullptr;
  if (!check(TokenKind::Semicolon)) value = parse_expr(prog);
  expect(TokenKind::Semicolon, "after return");
  return prog.make_stmt<ReturnStmt>(value, kw.loc);
}

Expr* Parser::parse_expr(Program& prog) { return parse_assignment(prog); }

Expr* Parser::parse_assignment(Program& prog) {
  Expr* lhs = parse_conditional(prog);
  AssignOp op;
  switch (peek().kind) {
    case TokenKind::Assign: op = AssignOp::None; break;
    case TokenKind::PlusAssign: op = AssignOp::Add; break;
    case TokenKind::MinusAssign: op = AssignOp::Sub; break;
    case TokenKind::StarAssign: op = AssignOp::Mul; break;
    case TokenKind::SlashAssign: op = AssignOp::Div; break;
    default: return lhs;
  }
  const Token& tok = advance();
  Expr* rhs = parse_assignment(prog);
  return prog.make_expr<AssignExpr>(op, lhs, rhs, tok.loc);
}

Expr* Parser::parse_conditional(Program& prog) {
  Expr* cond = parse_binary_rhs(prog, 0, parse_unary(prog));
  if (!check(TokenKind::Question)) return cond;
  const Token& tok = advance();
  Expr* then_expr = parse_expr(prog);
  expect(TokenKind::Colon, "in conditional expression");
  Expr* else_expr = parse_conditional(prog);
  return prog.make_expr<ConditionalExpr>(cond, then_expr, else_expr, tok.loc);
}

Expr* Parser::parse_binary_rhs(Program& prog, int min_precedence, Expr* lhs) {
  while (true) {
    const int prec = precedence_of(peek().kind);
    if (prec < min_precedence || prec < 0) return lhs;
    const Token& op_tok = advance();
    Expr* rhs = parse_unary(prog);
    const int next_prec = precedence_of(peek().kind);
    if (next_prec > prec) rhs = parse_binary_rhs(prog, prec + 1, rhs);
    lhs = prog.make_expr<BinaryExpr>(binary_op_of(op_tok.kind), lhs, rhs, op_tok.loc);
  }
}

Expr* Parser::parse_unary(Program& prog) {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::Minus:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::Neg, parse_unary(prog), tok.loc);
    case TokenKind::Bang:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::Not, parse_unary(prog), tok.loc);
    case TokenKind::Tilde:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::BitNot, parse_unary(prog), tok.loc);
    case TokenKind::Star:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::Deref, parse_unary(prog), tok.loc);
    case TokenKind::Amp:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::AddrOf, parse_unary(prog), tok.loc);
    case TokenKind::PlusPlus:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::PreInc, parse_unary(prog), tok.loc);
    case TokenKind::MinusMinus:
      advance();
      return prog.make_expr<UnaryExpr>(UnaryOp::PreDec, parse_unary(prog), tok.loc);
    default:
      return parse_postfix(prog);
  }
}

Expr* Parser::parse_postfix(Program& prog) {
  Expr* expr = parse_primary(prog);
  while (true) {
    if (check(TokenKind::LBracket)) {
      const Token& tok = advance();
      Expr* index = parse_expr(prog);
      expect(TokenKind::RBracket, "after subscript");
      expr = prog.make_expr<ArrayIndexExpr>(expr, index, tok.loc);
    } else if (check(TokenKind::PlusPlus)) {
      const Token& tok = advance();
      expr = prog.make_expr<UnaryExpr>(UnaryOp::PostInc, expr, tok.loc);
    } else if (check(TokenKind::MinusMinus)) {
      const Token& tok = advance();
      expr = prog.make_expr<UnaryExpr>(UnaryOp::PostDec, expr, tok.loc);
    } else {
      return expr;
    }
  }
}

Expr* Parser::parse_primary(Program& prog) {
  const Token& tok = peek();
  switch (tok.kind) {
    case TokenKind::IntLiteral:
      advance();
      return prog.make_expr<IntLiteralExpr>(tok.int_value, tok.loc);
    case TokenKind::FloatLiteral:
      advance();
      return prog.make_expr<FloatLiteralExpr>(tok.float_value, false, tok.loc);
    case TokenKind::LParen: {
      advance();
      Expr* inner = parse_expr(prog);
      expect(TokenKind::RParen, "to close parenthesized expression");
      return inner;
    }
    case TokenKind::Identifier: {
      advance();
      if (check(TokenKind::LParen)) {
        advance();
        std::vector<Expr*> args;
        if (!check(TokenKind::RParen)) {
          do {
            args.push_back(parse_assignment(prog));
          } while (match(TokenKind::Comma));
        }
        expect(TokenKind::RParen, "after call arguments");
        return prog.make_expr<CallExpr>(tok.text, std::move(args), tok.loc);
      }
      return prog.make_expr<VarRefExpr>(tok.text, tok.loc);
    }
    default:
      diags_.error(tok.loc, "expected expression, found " +
                                std::string(token_kind_name(tok.kind)));
      advance();
      return prog.make_expr<IntLiteralExpr>(0, tok.loc);
  }
}

}  // namespace hli::frontend
