#include "frontend/testgen.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "frontend/build.hpp"
#include "frontend/print.hpp"
#include "support/string_utils.hpp"

namespace hli::testing {

namespace {

using frontend::AssignOp;
using frontend::AstBuilder;
using frontend::BinaryOp;
using frontend::BlockStmt;
using frontend::Expr;
using frontend::FuncDecl;
using frontend::Stmt;
using frontend::UnaryOp;
using frontend::VarDecl;

// ---------------------------------------------------------------------------
// Deterministic RNG: splitmix64.  Not std::mt19937 + distributions — those
// leave the exact stream implementation-defined, and a seed must reproduce
// the same program on every platform and standard library.
// ---------------------------------------------------------------------------

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); 0 when n == 0.
  std::uint64_t range(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  /// Uniform in [lo, hi], inclusive.
  std::int64_t pick(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(range(static_cast<std::uint64_t>(hi - lo + 1)));
  }
  bool chance(unsigned percent) { return range(100) < percent; }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------------
// Magnitude discipline.  Register arithmetic is 64-bit host arithmetic in
// the interpreter, so signed overflow there is real UB (and UBSan aborts
// the CI fuzz stage).  Every generated expression carries a conservative
// magnitude bound; combinations that could exceed kCapBound get masked
// back down to 20 bits.  Memory is 32-bit, so loads are born at 2^31.
// ---------------------------------------------------------------------------

constexpr double kElemBound = 2147483648.0;        // 2^31: any 32-bit load.
constexpr double kMaskedBound = 1048576.0;         // 2^20: after `& 0xFFFFF`.
constexpr double kSmallBound = kMaskedBound;       // multiplication operand cap.
constexpr double kCapBound = 17592186044416.0;     // 2^44: per-node ceiling.
constexpr std::int64_t kMask = 1048575;            // 0xFFFFF.
constexpr double kTripCap = 16384.0;               // max iterations of a nest.

struct Val {
  Expr* expr = nullptr;
  double bound = 0.0;
};

struct Scalar {
  VarDecl* decl = nullptr;
  double bound = kElemBound;
  bool assignable = true;
  bool is_global = false;
};

struct ArrayInfo {
  VarDecl* decl = nullptr;
  std::uint64_t rows = 0;  ///< 0 for 1-D arrays.
  std::uint64_t cols = 0;  ///< Extent (1-D) or row length (2-D); power of 2.
};

/// An in-scope counted loop variable: value always within [0, bound).
struct LoopVar {
  VarDecl* decl = nullptr;
  std::int64_t bound = 0;
};

struct Helper {
  FuncDecl* fn = nullptr;
  enum Kind : std::uint8_t {
    kPureInt,       ///< int h(int a, int b): scalar math, may read arrays.
    kPtrReduce,     ///< int h(int* p, int* q): reduction over 16 elements.
    kPtrTransform,  ///< void h(int* p, int* q): 16-element store loop.
    kScalarPut,     ///< void h(int* p, int v): *p = f(v).
    kScalarGet,     ///< int h(int* p): read through the pointer.
    kWrapper,       ///< void h(int* p, int* q): forwards to earlier helpers.
  } kind = kPureInt;
  double return_bound = 0.0;
};

const std::vector<std::string> kFeatureNames = {
    "loops",        "nested-loops", "arrays",      "arrays-2d",
    "pointers",     "calls",        "if",          "while",
    "conditional",  "break-continue", "compound-assign", "inc-dec",
    "div-rem",      "shifts",       "float",
};

// ---------------------------------------------------------------------------
// The generator proper.
// ---------------------------------------------------------------------------

class Gen {
 public:
  explicit Gen(const GenOptions& options)
      : opts_(options), rng_(options.seed) {}

  frontend::Program run() {
    declare_externs();
    declare_globals();
    if (has(kCalls)) make_helpers();
    make_main();
    return b_.take();
  }

 private:
  struct Ctx {
    FuncDecl* fn = nullptr;
    std::vector<Scalar> scalars;       ///< Visible scalar ints, scope-stacked.
    std::vector<std::size_t> scope_marks;
    std::vector<LoopVar> loops;        ///< Enclosing counted-loop variables.
    double trip_factor = 1.0;          ///< Product of enclosing trip counts.
    unsigned loop_depth = 0;
    /// Pointer params usable via p[k] inside the 16-element helper loops.
    std::vector<VarDecl*> ptr_params;
  };

  [[nodiscard]] bool has(std::uint32_t feature) const {
    return (opts_.features & feature) != 0;
  }

  [[nodiscard]] std::string name(const char* prefix) {
    return std::string(prefix) + std::to_string(uid_++);
  }

  // --- program skeleton ---------------------------------------------------

  void declare_externs() {
    emit_fn_ = b_.function("emit", b_.void_type());
    b_.param(emit_fn_, "v", b_.int_type());
    if (has(kFloat)) {
      emitd_fn_ = b_.function("emitd", b_.void_type());
      b_.param(emitd_fn_, "v", b_.double_type());
    }
  }

  void declare_globals() {
    const unsigned scalar_count = 2 + static_cast<unsigned>(rng_.range(3));
    for (unsigned i = 0; i < scalar_count; ++i) {
      globals_.push_back(
          {b_.global(name("g"), b_.int_type()), kElemBound, true, true});
    }
    if (has(kArrays)) {
      const unsigned array_count = 1 + static_cast<unsigned>(rng_.range(3));
      const std::uint64_t extents[] = {16, 32, 64};
      for (unsigned i = 0; i < array_count; ++i) {
        const std::uint64_t n = extents[rng_.range(3)];
        arrays_.push_back(
            {b_.global(name("A"), b_.array_of(b_.int_type(), n)), 0, n});
      }
      if (has(kArrays2D)) {
        // Rows of length >= 16 so any row can feed a pointer helper.
        const std::uint64_t rows = rng_.chance(50) ? 4 : 8;
        const std::uint64_t cols = rng_.chance(50) ? 16 : 32;
        arrays_.push_back(
            {b_.global(name("m"),
                       b_.array_of(b_.array_of(b_.int_type(), cols), rows)),
             rows, cols});
      }
    }
    if (has(kFloat)) {
      floats_.push_back(b_.global(name("d"), b_.double_type()));
      floats_.push_back(b_.global(name("d"), b_.double_type()));
    }
  }

  // --- expressions ----------------------------------------------------------

  Expr* mask_expr(Expr* e) { return b_.binary(BinaryOp::And, e, b_.lit(kMask)); }

  Val masked(Val v) {
    if (v.bound <= kMaskedBound) return v;
    return {mask_expr(v.expr), kMaskedBound};
  }

  Val capped(Val v) {
    if (v.bound <= kCapBound) return v;
    return {mask_expr(v.expr), kMaskedBound};
  }

  /// A literal, a bounded variable, or a masked expression: anything whose
  /// magnitude provably fits in 20 bits — safe as a multiplication operand.
  Val small_expr(Ctx& ctx, unsigned depth, const VarDecl* exclude) {
    switch (rng_.range(4)) {
      case 0:
        return {b_.lit(rng_.pick(-16, 16)), 16.0};
      case 1:
        if (!ctx.loops.empty()) {
          const LoopVar& lv = ctx.loops[rng_.range(ctx.loops.size())];
          return {b_.ref(lv.decl), static_cast<double>(lv.bound)};
        }
        [[fallthrough]];
      default:
        return masked(int_expr(ctx, depth, exclude));
    }
  }

  /// A random in-bounds subscript for extent `extent` (a power of two).
  /// Biased toward the affine forms (loop var, loop var + c) the HLI's
  /// section/LCDD machinery actually analyzes; the masked arbitrary form
  /// exercises the conservative "unknown subscript" paths.
  Expr* subscript(Ctx& ctx, std::uint64_t extent, const VarDecl* exclude) {
    const auto ext = static_cast<std::int64_t>(extent);
    if (!ctx.loops.empty() && rng_.chance(65)) {
      std::vector<const LoopVar*> fits;
      for (const LoopVar& lv : ctx.loops) {
        if (lv.bound <= ext) fits.push_back(&lv);
      }
      if (!fits.empty()) {
        const LoopVar& lv = *fits[rng_.range(fits.size())];
        Expr* base = b_.ref(lv.decl);
        const std::int64_t slack = ext - lv.bound;
        if (slack > 0 && rng_.chance(40)) {
          return b_.binary(BinaryOp::Add, base, b_.lit(rng_.pick(1, slack)));
        }
        if (rng_.chance(15)) {  // Reversal: stresses direction vectors.
          return b_.binary(BinaryOp::Sub, b_.lit(lv.bound - 1), base);
        }
        return base;
      }
    }
    if (rng_.chance(40)) return b_.lit(rng_.pick(0, ext - 1));
    Val v = int_expr(ctx, 1, exclude);
    return b_.binary(BinaryOp::And, v.expr, b_.lit(ext - 1));
  }

  /// Read of a random element of a random global array.
  Val array_read(Ctx& ctx, const VarDecl* exclude) {
    const ArrayInfo& arr = arrays_[rng_.range(arrays_.size())];
    Expr* e = b_.ref(arr.decl);
    if (arr.rows != 0) e = b_.index(e, subscript(ctx, arr.rows, exclude));
    e = b_.index(e, subscript(ctx, arr.cols, exclude));
    return {e, kElemBound};
  }

  Val leaf(Ctx& ctx, const VarDecl* exclude) {
    // Collect candidate scalars once; globals are always eligible (their
    // stored value is 32-bit), locals unless excluded.
    const std::uint64_t roll = rng_.range(100);
    if (roll < 25 || (ctx.scalars.empty() && arrays_.empty())) {
      return {b_.lit(rng_.pick(-64, 64)), 64.0};
    }
    if (roll < 70 && !ctx.scalars.empty()) {
      for (unsigned attempt = 0; attempt < 4; ++attempt) {
        const Scalar& s = ctx.scalars[rng_.range(ctx.scalars.size())];
        if (s.decl == exclude) continue;
        return {b_.ref(s.decl), s.bound};
      }
      return {b_.lit(rng_.pick(-64, 64)), 64.0};
    }
    if (has(kArrays) && !arrays_.empty()) return array_read(ctx, exclude);
    return {b_.lit(rng_.pick(-64, 64)), 64.0};
  }

  /// A random integer expression of depth <= `depth` whose magnitude bound
  /// is <= kCapBound.  `exclude` bars one variable from appearing (the
  /// accumulator-safety rule for assignments inside loops).
  Val int_expr(Ctx& ctx, unsigned depth, const VarDecl* exclude) {
    if (depth == 0) return leaf(ctx, exclude);
    switch (rng_.range(12)) {
      case 0: {  // Pure helper call.
        if (has(kCalls)) {
          if (Val v = call_int_helper(ctx, depth, exclude); v.expr != nullptr) {
            return v;
          }
        }
        return leaf(ctx, exclude);
      }
      case 1: {  // Unary.
        Val v = int_expr(ctx, depth - 1, exclude);
        switch (rng_.range(3)) {
          case 0: return {b_.unary(UnaryOp::Neg, v.expr), v.bound + 1};
          case 1: return {b_.unary(UnaryOp::Not, v.expr), 1.0};
          default: return {b_.unary(UnaryOp::BitNot, v.expr), v.bound * 2 + 2};
        }
      }
      case 2: {  // Multiplication: both operands provably small.
        const Val lhs = small_expr(ctx, depth - 1, exclude);
        const Val rhs = small_expr(ctx, depth - 1, exclude);
        return {b_.binary(BinaryOp::Mul, lhs.expr, rhs.expr),
                lhs.bound * rhs.bound};
      }
      case 3: {  // Division / remainder by a provably nonzero divisor.
        if (!has(kDivRem)) break;
        const Val num = int_expr(ctx, depth - 1, exclude);
        const BinaryOp op = rng_.chance(50) ? BinaryOp::Div : BinaryOp::Rem;
        if (rng_.chance(60)) {
          static const std::int64_t divisors[] = {2, 3, 5, 7, 9, 16, 31};
          return {b_.binary(op, num.expr, b_.lit(divisors[rng_.range(7)])),
                  num.bound};
        }
        // (e | 1) is odd, hence nonzero, for every e.
        Val div = capped(int_expr(ctx, depth - 1, exclude));
        Expr* nonzero = b_.binary(BinaryOp::Or, div.expr, b_.lit(1));
        return {b_.binary(op, num.expr, nonzero), num.bound};
      }
      case 4: {  // Shifts: small operand, constant amount.
        if (!has(kShifts)) break;
        const Val v = small_expr(ctx, depth - 1, exclude);
        if (rng_.chance(50)) {
          return {b_.binary(BinaryOp::Shl, v.expr, b_.lit(rng_.pick(0, 12))),
                  v.bound * 4096.0};
        }
        return {b_.binary(BinaryOp::Shr, v.expr, b_.lit(rng_.pick(0, 12))),
                v.bound};
      }
      case 5: {  // Comparison.
        const Val lhs = int_expr(ctx, depth - 1, exclude);
        const Val rhs = int_expr(ctx, depth - 1, exclude);
        static const BinaryOp cmps[] = {BinaryOp::Lt, BinaryOp::Le,
                                        BinaryOp::Gt, BinaryOp::Ge,
                                        BinaryOp::Eq, BinaryOp::Ne};
        return {b_.binary(cmps[rng_.range(6)], lhs.expr, rhs.expr), 1.0};
      }
      case 6: {  // Short-circuit logic.
        const Val lhs = int_expr(ctx, depth - 1, exclude);
        const Val rhs = int_expr(ctx, depth - 1, exclude);
        const BinaryOp op = rng_.chance(50) ? BinaryOp::LogAnd : BinaryOp::LogOr;
        return {b_.binary(op, lhs.expr, rhs.expr), 1.0};
      }
      case 7: {  // Conditional.
        if (!has(kConditional)) break;
        const Val c = int_expr(ctx, depth - 1, exclude);
        const Val t = int_expr(ctx, depth - 1, exclude);
        const Val f = int_expr(ctx, depth - 1, exclude);
        return {b_.cond(c.expr, t.expr, f.expr), std::max(t.bound, f.bound)};
      }
      default:
        break;
    }
    // Additive / bitwise combination (the default bulk).
    const Val lhs = int_expr(ctx, depth - 1, exclude);
    const Val rhs = int_expr(ctx, depth - 1, exclude);
    switch (rng_.range(5)) {
      case 0:
        return capped({b_.binary(BinaryOp::Sub, lhs.expr, rhs.expr),
                       lhs.bound + rhs.bound});
      case 1:
        return {b_.binary(BinaryOp::And, lhs.expr, rhs.expr),
                std::max(lhs.bound, rhs.bound) + 1};
      case 2:
        return capped({b_.binary(BinaryOp::Or, lhs.expr, rhs.expr),
                       (lhs.bound + rhs.bound) * 2});
      case 3:
        return capped({b_.binary(BinaryOp::Xor, lhs.expr, rhs.expr),
                       (lhs.bound + rhs.bound) * 2});
      default:
        return capped({b_.binary(BinaryOp::Add, lhs.expr, rhs.expr),
                       lhs.bound + rhs.bound});
    }
  }

  /// Call of a value-returning helper usable inside an expression; null
  /// Val when no such helper exists yet.
  Val call_int_helper(Ctx& ctx, unsigned depth, const VarDecl* exclude) {
    std::vector<const Helper*> candidates;
    for (const Helper& h : helpers_) {
      if (h.kind == Helper::kPureInt) candidates.push_back(&h);
      if ((h.kind == Helper::kPtrReduce || h.kind == Helper::kScalarGet) &&
          !ctx.ptr_params.empty()) {
        continue;  // Pointer-arg helpers are called at statement level.
      }
    }
    if (candidates.empty()) return {};
    const Helper& h = *candidates[rng_.range(candidates.size())];
    std::vector<Expr*> args;
    for (std::size_t i = 0; i < h.fn->params.size(); ++i) {
      args.push_back(capped(int_expr(ctx, depth - 1, exclude)).expr);
    }
    return {b_.call(h.fn, std::move(args)), h.return_bound};
  }

  // --- scope helpers --------------------------------------------------------

  void push_scope(Ctx& ctx) { ctx.scope_marks.push_back(ctx.scalars.size()); }

  void pop_scope(Ctx& ctx) {
    ctx.scalars.resize(ctx.scope_marks.back());
    ctx.scope_marks.pop_back();
  }

  Scalar* find_scalar(Ctx& ctx, const VarDecl* decl) {
    for (Scalar& s : ctx.scalars) {
      if (s.decl == decl) return &s;
    }
    return nullptr;
  }

  /// Declares `int tN = <expr>;` in the current block.
  VarDecl* fresh_local(Ctx& ctx, BlockStmt* block) {
    Val init = capped(int_expr(ctx, 2, nullptr));
    VarDecl* decl = b_.local(ctx.fn, name("t"), b_.int_type(), init.expr);
    b_.append(block, b_.decl_stmt(decl));
    ctx.scalars.push_back({decl, init.bound, true, false});
    return decl;
  }

  // --- statements -----------------------------------------------------------

  /// Generates up to `budget` statements into `block`; returns the number
  /// actually consumed (loops bill their body against the same budget).
  unsigned gen_stmts(Ctx& ctx, BlockStmt* block, unsigned budget,
                     unsigned depth) {
    unsigned used = 0;
    while (used < budget) {
      used += gen_stmt(ctx, block, budget - used, depth);
    }
    return used;
  }

  unsigned gen_stmt(Ctx& ctx, BlockStmt* block, unsigned budget,
                    unsigned depth) {
    const std::uint64_t roll = rng_.range(100);
    if (roll < 8) {
      fresh_local(ctx, block);
      return 1;
    }
    if (roll < 30) return gen_assign(ctx, block);
    if (roll < 45 && has(kArrays) && !arrays_.empty()) {
      return gen_array_store(ctx, block);
    }
    if (roll < 60 && has(kLoops) && budget >= 3 &&
        ctx.loop_depth < opts_.max_loop_depth) {
      return gen_for_loop(ctx, block, budget, depth);
    }
    if (roll < 67 && has(kWhile) && budget >= 3 &&
        ctx.loop_depth < opts_.max_loop_depth) {
      return gen_while_loop(ctx, block, budget, depth);
    }
    if (roll < 77 && has(kIf) && budget >= 2 && depth < 4) {
      return gen_if(ctx, block, budget, depth);
    }
    if (roll < 85 && has(kCalls) && !helpers_.empty()) {
      return gen_call_stmt(ctx, block);
    }
    if (roll < 90 && has(kIncDec)) {
      return gen_incdec(ctx, block);
    }
    if (roll < 94 && has(kFloat) && !floats_.empty()) {
      return gen_float_stmt(ctx, block);
    }
    // Observation point: fold live state into the output stream mid-run,
    // so a miscompile before this line can't be shadowed by one after it.
    Val v = int_expr(ctx, 2, nullptr);
    b_.append(block,
              b_.expr_stmt(b_.call(emit_fn_, {masked(v).expr})));
    return 1;
  }

  unsigned gen_assign(Ctx& ctx, BlockStmt* block) {
    std::vector<Scalar*> targets;
    for (Scalar& s : ctx.scalars) {
      if (s.assignable) targets.push_back(&s);
    }
    if (targets.empty()) {
      fresh_local(ctx, block);
      return 1;
    }
    Scalar& target = *targets[rng_.range(targets.size())];
    const bool in_loop = ctx.trip_factor > 1.0;

    // Accumulator form: target op= small, growth bounded by the trip count.
    if (rng_.chance(40)) {
      const Val rhs = small_expr(ctx, 2, target.decl);
      const double grown = target.bound + rhs.bound * ctx.trip_factor;
      const bool use_compound = has(kCompoundAssign) && rng_.chance(60);
      const AssignOp aop = rng_.chance(50) ? AssignOp::Add : AssignOp::Sub;
      Expr* stored;
      if (grown > kCapBound) {
        // Re-mask the accumulator so repeated execution can't overflow.
        Expr* sum = b_.binary(aop == AssignOp::Add ? BinaryOp::Add : BinaryOp::Sub,
                              b_.ref(target.decl), rhs.expr);
        stored = b_.assign(b_.ref(target.decl), mask_expr(sum));
        if (!target.is_global) target.bound = kMaskedBound;
      } else if (use_compound) {
        stored = b_.assign(b_.ref(target.decl), rhs.expr, aop);
        if (!target.is_global) target.bound = grown;
      } else {
        Expr* sum = b_.binary(aop == AssignOp::Add ? BinaryOp::Add : BinaryOp::Sub,
                              b_.ref(target.decl), rhs.expr);
        stored = b_.assign(b_.ref(target.decl), sum);
        if (!target.is_global) target.bound = grown;
      }
      b_.append(block, b_.expr_stmt(stored));
      return 1;
    }

    // Straight replacement; inside a loop the target must not feed its own
    // RHS, or the value could compound across iterations unchecked.
    const VarDecl* exclude = in_loop && !target.is_global ? target.decl : nullptr;
    Val rhs = capped(int_expr(ctx, opts_.max_expr_depth, exclude));
    if (has(kCompoundAssign) && !in_loop && rng_.chance(15)) {
      // Straight-line *= / /= with a tiny literal keeps bounds trivial.
      if (rng_.chance(50)) {
        b_.append(block, b_.expr_stmt(b_.assign(b_.ref(target.decl),
                                                b_.lit(rng_.pick(-4, 4)),
                                                AssignOp::Mul)));
        if (!target.is_global) target.bound = target.bound * 4 + 1;
      } else {
        b_.append(block, b_.expr_stmt(b_.assign(b_.ref(target.decl),
                                                b_.lit(rng_.pick(2, 6)),
                                                AssignOp::Div)));
      }
      return 1;
    }
    b_.append(block, b_.expr_stmt(b_.assign(b_.ref(target.decl), rhs.expr)));
    if (!target.is_global) target.bound = rhs.bound;
    return 1;
  }

  unsigned gen_array_store(Ctx& ctx, BlockStmt* block) {
    const ArrayInfo& arr = arrays_[rng_.range(arrays_.size())];
    Expr* lhs = b_.ref(arr.decl);
    if (arr.rows != 0) lhs = b_.index(lhs, subscript(ctx, arr.rows, nullptr));
    lhs = b_.index(lhs, subscript(ctx, arr.cols, nullptr));
    const Val rhs = capped(int_expr(ctx, opts_.max_expr_depth, nullptr));
    b_.append(block, b_.expr_stmt(b_.assign(lhs, rhs.expr)));
    return 1;
  }

  unsigned gen_for_loop(Ctx& ctx, BlockStmt* block, unsigned budget,
                        unsigned depth) {
    static const std::int64_t bounds[] = {4, 8, 13, 16, 31, 32, 64};
    std::int64_t bound = bounds[rng_.range(7)];
    while (bound > 4 && ctx.trip_factor * static_cast<double>(bound) > kTripCap) {
      bound /= 2;
    }
    if (ctx.trip_factor * static_cast<double>(bound) > kTripCap) {
      return gen_assign(ctx, block);  // Nest already at the trip budget.
    }

    VarDecl* iv = b_.local(ctx.fn, name("i"), b_.int_type());
    Expr* init_expr;
    Expr* cond;
    Expr* step;
    std::int64_t value_bound;
    const std::uint64_t shape = rng_.range(100);
    if (shape < 70) {  // for (i = 0; i < B; i++)
      init_expr = nullptr;
      cond = b_.binary(BinaryOp::Lt, b_.ref(iv), b_.lit(bound));
      step = has(kIncDec) && rng_.chance(60)
                 ? b_.unary(UnaryOp::PostInc, b_.ref(iv))
                 : b_.assign(b_.ref(iv), b_.binary(BinaryOp::Add, b_.ref(iv),
                                                   b_.lit(1)));
      value_bound = bound;
    } else if (shape < 85) {  // for (i = 0; i < B; i = i + 2)
      init_expr = nullptr;
      cond = b_.binary(BinaryOp::Lt, b_.ref(iv), b_.lit(bound));
      step = b_.assign(b_.ref(iv),
                       b_.binary(BinaryOp::Add, b_.ref(iv), b_.lit(2)));
      value_bound = bound;
    } else {  // for (i = B - 1; i >= 0; i--)
      init_expr = b_.lit(bound - 1);
      cond = b_.binary(BinaryOp::Ge, b_.ref(iv), b_.lit(0));
      step = has(kIncDec) && rng_.chance(60)
                 ? b_.unary(UnaryOp::PostDec, b_.ref(iv))
                 : b_.assign(b_.ref(iv), b_.binary(BinaryOp::Sub, b_.ref(iv),
                                                   b_.lit(1)));
      value_bound = bound;
    }
    iv->init = init_expr != nullptr ? init_expr : b_.lit(0);
    Stmt* init = b_.decl_stmt(iv);

    BlockStmt* body = b_.block();
    push_scope(ctx);
    ctx.scalars.push_back({iv, static_cast<double>(value_bound), false, false});
    ctx.loops.push_back({iv, value_bound});
    ctx.trip_factor *= static_cast<double>(bound);
    ++ctx.loop_depth;

    const bool allow_nest = has(kNestedLoops);
    const unsigned body_budget =
        1 + static_cast<unsigned>(rng_.range(std::min(budget - 1, 5u)));
    unsigned used = 1 + gen_body(ctx, body, body_budget, depth + 1, allow_nest);
    maybe_break_continue(ctx, body, /*in_for=*/true);

    --ctx.loop_depth;
    ctx.trip_factor /= static_cast<double>(bound);
    ctx.loops.pop_back();
    pop_scope(ctx);

    b_.append(block, b_.for_stmt(init, cond, step, body));
    return used;
  }

  unsigned gen_while_loop(Ctx& ctx, BlockStmt* block, unsigned budget,
                          unsigned depth) {
    const std::int64_t count = rng_.pick(2, 16);
    if (ctx.trip_factor * static_cast<double>(count) > kTripCap) {
      return gen_assign(ctx, block);
    }
    VarDecl* counter =
        b_.local(ctx.fn, name("w"), b_.int_type(), b_.lit(count));
    b_.append(block, b_.decl_stmt(counter));

    BlockStmt* body = b_.block();
    // Decrement first: break/continue anywhere later in the body can never
    // skip it, so the loop provably terminates.
    b_.append(body, b_.expr_stmt(b_.assign(
                        b_.ref(counter),
                        b_.binary(BinaryOp::Sub, b_.ref(counter), b_.lit(1)))));

    push_scope(ctx);
    ctx.scalars.push_back(
        {counter, static_cast<double>(count), false, false});
    ctx.loops.push_back({counter, count});
    ctx.trip_factor *= static_cast<double>(count);
    ++ctx.loop_depth;

    const unsigned body_budget =
        1 + static_cast<unsigned>(rng_.range(std::min(budget - 1, 4u)));
    unsigned used = 1 + gen_body(ctx, body, body_budget, depth + 1,
                                 has(kNestedLoops));
    maybe_break_continue(ctx, body, /*in_for=*/false);

    --ctx.loop_depth;
    ctx.trip_factor /= static_cast<double>(count);
    ctx.loops.pop_back();
    pop_scope(ctx);

    b_.append(block, b_.while_stmt(
                         b_.binary(BinaryOp::Gt, b_.ref(counter), b_.lit(0)),
                         body));
    return used;
  }

  /// Loop-body statement run: like gen_stmts, but with nesting optionally
  /// disabled so kLoops without kNestedLoops stays flat.
  unsigned gen_body(Ctx& ctx, BlockStmt* block, unsigned budget,
                    unsigned depth, bool allow_nest) {
    const unsigned saved = ctx.loop_depth;
    if (!allow_nest) ctx.loop_depth = opts_.max_loop_depth;
    const unsigned used = gen_stmts(ctx, block, budget, depth);
    if (!allow_nest) ctx.loop_depth = saved;
    return used;
  }

  void maybe_break_continue(Ctx& ctx, BlockStmt* body, bool in_for) {
    if (!has(kBreakContinue) || !rng_.chance(25)) return;
    const Val cond = int_expr(ctx, 1, nullptr);
    BlockStmt* then = b_.block();
    // `continue` in a while body is safe only because the counter
    // decrement is the body's first statement.
    if (in_for && rng_.chance(50)) {
      b_.append(then, b_.continue_stmt());
    } else {
      b_.append(then, b_.break_stmt());
    }
    b_.append(body, b_.if_stmt(cond.expr, then));
  }

  unsigned gen_if(Ctx& ctx, BlockStmt* block, unsigned budget, unsigned depth) {
    const Val cond = int_expr(ctx, 2, nullptr);
    BlockStmt* then = b_.block();
    // Both arms mutate only state that outlives the branch; locals
    // declared inside an arm die there, so bounds tracked during arm
    // generation stay conservative for the join.
    push_scope(ctx);
    unsigned used =
        1 + gen_stmts(ctx, then, 1 + static_cast<unsigned>(
                                         rng_.range(std::min(budget, 3u))),
                      depth + 1);
    pop_scope(ctx);
    Stmt* else_stmt = nullptr;
    if (rng_.chance(45) && used < budget) {
      BlockStmt* other = b_.block();
      push_scope(ctx);
      used += gen_stmts(ctx, other,
                        1 + static_cast<unsigned>(rng_.range(
                                std::min(budget - used, 2u) + 1)),
                        depth + 1);
      pop_scope(ctx);
      else_stmt = other;
    }
    b_.append(block, b_.if_stmt(cond.expr, then, else_stmt));
    return used;
  }

  unsigned gen_incdec(Ctx& ctx, BlockStmt* block) {
    std::vector<Scalar*> targets;
    for (Scalar& s : ctx.scalars) {
      if (s.assignable) targets.push_back(&s);
    }
    if (targets.empty()) return gen_assign(ctx, block);
    Scalar& target = *targets[rng_.range(targets.size())];
    const double grown = target.bound + ctx.trip_factor;
    if (grown > kCapBound) return gen_assign(ctx, block);
    static const UnaryOp ops[] = {UnaryOp::PreInc, UnaryOp::PreDec,
                                  UnaryOp::PostInc, UnaryOp::PostDec};
    b_.append(block, b_.expr_stmt(
                         b_.unary(ops[rng_.range(4)], b_.ref(target.decl))));
    if (!target.is_global) target.bound = grown;
    return 1;
  }

  unsigned gen_float_stmt(Ctx& ctx, BlockStmt* block) {
    VarDecl* target = floats_[rng_.range(floats_.size())];
    VarDecl* source = floats_[rng_.range(floats_.size())];
    Expr* rhs;
    static const BinaryOp ops[] = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul};
    const BinaryOp op = ops[rng_.range(3)];
    switch (rng_.range(3)) {
      case 0:
        rhs = b_.binary(op, b_.ref(source),
                        b_.flit(rng_.pick(-8, 8) * 0.25));
        break;
      case 1:  // Int -> fp conversion stress.
        rhs = b_.binary(op, b_.ref(source),
                        masked(int_expr(ctx, 1, nullptr)).expr);
        break;
      default:
        rhs = b_.binary(op, b_.ref(source),
                        b_.ref(floats_[rng_.range(floats_.size())]));
        break;
    }
    b_.append(block, b_.expr_stmt(b_.assign(b_.ref(target), rhs)));
    return 1;
  }

  unsigned gen_call_stmt(Ctx& ctx, BlockStmt* block) {
    const Helper& h = helpers_[rng_.range(helpers_.size())];
    switch (h.kind) {
      case Helper::kPureInt: {
        std::vector<Expr*> args;
        for (std::size_t i = 0; i < h.fn->params.size(); ++i) {
          args.push_back(capped(int_expr(ctx, 2, nullptr)).expr);
        }
        return assign_call_result(ctx, block, h, std::move(args));
      }
      case Helper::kPtrReduce:
      case Helper::kPtrTransform:
      case Helper::kWrapper: {
        if (arrays_.empty()) return gen_assign(ctx, block);
        Expr* p = pointer_arg(ctx);
        // With probability ~1/#arrays the two arguments alias — exactly
        // the case HLI's alias sets must keep the passes honest about.
        Expr* q = pointer_arg(ctx);
        if (h.kind == Helper::kPtrReduce) {
          return assign_call_result(ctx, block, h, {p, q});
        }
        b_.append(block, b_.expr_stmt(b_.call(h.fn, {p, q})));
        return 1;
      }
      case Helper::kScalarPut: {
        Scalar* g = &globals_[rng_.range(globals_.size())];
        const Val v = capped(int_expr(ctx, 2, nullptr));
        b_.append(block,
                  b_.expr_stmt(b_.call(
                      h.fn, {b_.unary(UnaryOp::AddrOf, b_.ref(g->decl)),
                             v.expr})));
        return 1;
      }
      case Helper::kScalarGet: {
        Scalar* g = &globals_[rng_.range(globals_.size())];
        return assign_call_result(
            ctx, block, h, {b_.unary(UnaryOp::AddrOf, b_.ref(g->decl))});
      }
    }
    return 1;
  }

  /// A 16-element-safe int* argument: a 1-D array, or a row of the 2-D
  /// array (every generated extent/row length is >= 16).
  Expr* pointer_arg(Ctx& ctx) {
    const ArrayInfo& arr = arrays_[rng_.range(arrays_.size())];
    Expr* e = b_.ref(arr.decl);
    if (arr.rows != 0) e = b_.index(e, subscript(ctx, arr.rows, nullptr));
    return e;
  }

  unsigned assign_call_result(Ctx& ctx, BlockStmt* block, const Helper& h,
                              std::vector<Expr*> args) {
    Expr* call = b_.call(h.fn, std::move(args));
    std::vector<Scalar*> targets;
    for (Scalar& s : ctx.scalars) {
      if (s.assignable) targets.push_back(&s);
    }
    if (targets.empty() || rng_.chance(25)) {
      b_.append(block, b_.expr_stmt(b_.call(emit_fn_, {mask_expr(call)})));
      return 1;
    }
    Scalar& target = *targets[rng_.range(targets.size())];
    b_.append(block, b_.expr_stmt(b_.assign(b_.ref(target.decl), call)));
    if (!target.is_global) target.bound = h.return_bound;
    return 1;
  }

  // --- helper functions -----------------------------------------------------

  void make_helpers() {
    const unsigned count =
        opts_.max_helpers == 0
            ? 0
            : 1 + static_cast<unsigned>(rng_.range(opts_.max_helpers));
    for (unsigned i = 0; i < count; ++i) {
      std::vector<Helper::Kind> kinds = {Helper::kPureInt};
      if (has(kPointerParams)) {
        kinds.push_back(Helper::kScalarPut);
        kinds.push_back(Helper::kScalarGet);
        if (has(kArrays) && !arrays_.empty()) {
          kinds.push_back(Helper::kPtrReduce);
          kinds.push_back(Helper::kPtrTransform);
          if (!helpers_.empty()) kinds.push_back(Helper::kWrapper);
        }
      }
      make_helper(kinds[rng_.range(kinds.size())]);
    }
  }

  void make_helper(Helper::Kind kind) {
    switch (kind) {
      case Helper::kPureInt: make_pure_int_helper(); break;
      case Helper::kPtrReduce: make_ptr_loop_helper(/*reduce=*/true); break;
      case Helper::kPtrTransform: make_ptr_loop_helper(/*reduce=*/false); break;
      case Helper::kScalarPut: make_scalar_put_helper(); break;
      case Helper::kScalarGet: make_scalar_get_helper(); break;
      case Helper::kWrapper: make_wrapper_helper(); break;
    }
  }

  Ctx helper_ctx(FuncDecl* fn) {
    Ctx ctx;
    ctx.fn = fn;
    for (Scalar& g : globals_) ctx.scalars.push_back(g);
    return ctx;
  }

  void make_pure_int_helper() {
    FuncDecl* fn = b_.function(name("h"), b_.int_type());
    VarDecl* a = b_.param(fn, name("a"), b_.int_type());
    VarDecl* c = b_.param(fn, name("a"), b_.int_type());
    BlockStmt* body = b_.body(fn);
    Ctx ctx = helper_ctx(fn);
    ctx.scalars.push_back({a, kCapBound, false, false});
    ctx.scalars.push_back({c, kCapBound, false, false});
    gen_stmts(ctx, body, 1 + static_cast<unsigned>(rng_.range(3)), 1);
    Val result = capped(int_expr(ctx, 2, nullptr));
    b_.append(body, b_.return_stmt(result.expr));
    helpers_.push_back({fn, Helper::kPureInt, result.bound});
  }

  void make_ptr_loop_helper(bool reduce) {
    FuncDecl* fn =
        b_.function(name("h"), reduce ? b_.int_type() : b_.void_type());
    const frontend::Type* int_ptr = b_.pointer_to(b_.int_type());
    VarDecl* p = b_.param(fn, name("p"), int_ptr);
    VarDecl* q = b_.param(fn, name("q"), int_ptr);
    BlockStmt* body = b_.body(fn);
    Ctx ctx = helper_ctx(fn);
    ctx.ptr_params = {p, q};

    VarDecl* acc = nullptr;
    if (reduce) {
      acc = b_.local(fn, name("s"), b_.int_type(), b_.lit(0));
      b_.append(body, b_.decl_stmt(acc));
    }

    VarDecl* iv = b_.local(fn, name("k"), b_.int_type(), b_.lit(0));
    BlockStmt* loop = b_.block();
    ctx.scalars.push_back({iv, 16.0, false, false});
    ctx.loops.push_back({iv, 16});
    ctx.trip_factor = 16.0;

    const unsigned ops = 1 + static_cast<unsigned>(rng_.range(2));
    for (unsigned i = 0; i < ops; ++i) {
      Expr* read = ptr_elem(ctx, q);
      Val extra = small_expr(ctx, 1, nullptr);
      static const BinaryOp kOps[] = {BinaryOp::Add, BinaryOp::Sub,
                                      BinaryOp::Xor, BinaryOp::And};
      Expr* value =
          b_.binary(kOps[rng_.range(4)], read,
                    rng_.chance(50) ? extra.expr : ptr_elem(ctx, p));
      if (reduce) {
        // s = ((s + value) & kMask): 16 iterations of a 20-bit addend.
        b_.append(loop, b_.expr_stmt(b_.assign(
                            b_.ref(acc),
                            mask_expr(b_.binary(BinaryOp::Add, b_.ref(acc),
                                                value)))));
      } else {
        b_.append(loop, b_.expr_stmt(b_.assign(ptr_elem(ctx, p), value)));
      }
    }
    if (rng_.chance(30) && !globals_.empty()) {
      Scalar& g = globals_[rng_.range(globals_.size())];
      b_.append(loop, b_.expr_stmt(b_.assign(
                          b_.ref(g.decl),
                          mask_expr(b_.binary(BinaryOp::Add, b_.ref(g.decl),
                                              ptr_elem(ctx, q))))));
    }

    Expr* step = b_.assign(b_.ref(iv),
                           b_.binary(BinaryOp::Add, b_.ref(iv), b_.lit(1)));
    b_.append(body, b_.for_stmt(b_.decl_stmt(iv),
                                b_.binary(BinaryOp::Lt, b_.ref(iv), b_.lit(16)),
                                step, loop));
    if (reduce) {
      b_.append(body, b_.return_stmt(b_.ref(acc)));
      helpers_.push_back({fn, Helper::kPtrReduce, kMaskedBound * 2});
    } else {
      helpers_.push_back({fn, Helper::kPtrTransform, 0.0});
    }
  }

  /// p[k] / p[15 - k] / p[c]: always within the helper's 16-element window.
  Expr* ptr_elem(Ctx& ctx, VarDecl* ptr) {
    const LoopVar& lv = ctx.loops.back();
    Expr* sub;
    const std::uint64_t roll = rng_.range(100);
    if (roll < 60) {
      sub = b_.ref(lv.decl);
    } else if (roll < 75) {
      sub = b_.binary(BinaryOp::Sub, b_.lit(15), b_.ref(lv.decl));
    } else {
      sub = b_.lit(rng_.pick(0, 15));
    }
    return b_.index(b_.ref(ptr), sub);
  }

  void make_scalar_put_helper() {
    FuncDecl* fn = b_.function(name("h"), b_.void_type());
    VarDecl* p = b_.param(fn, name("p"), b_.pointer_to(b_.int_type()));
    VarDecl* v = b_.param(fn, name("v"), b_.int_type());
    BlockStmt* body = b_.body(fn);
    Expr* value = b_.ref(v);
    if (rng_.chance(50)) {
      value = b_.binary(BinaryOp::Add, value,
                        b_.unary(UnaryOp::Deref, b_.ref(p)));
    }
    b_.append(body, b_.expr_stmt(
                        b_.assign(b_.unary(UnaryOp::Deref, b_.ref(p)), value)));
    helpers_.push_back({fn, Helper::kScalarPut, 0.0});
  }

  void make_scalar_get_helper() {
    FuncDecl* fn = b_.function(name("h"), b_.int_type());
    VarDecl* p = b_.param(fn, name("p"), b_.pointer_to(b_.int_type()));
    BlockStmt* body = b_.body(fn);
    Expr* value = b_.unary(UnaryOp::Deref, b_.ref(p));
    if (rng_.chance(50)) {
      value = b_.binary(rng_.chance(50) ? BinaryOp::Add : BinaryOp::Xor, value,
                        b_.lit(rng_.pick(1, 16)));
    }
    b_.append(body, b_.return_stmt(value));
    helpers_.push_back({fn, Helper::kScalarGet, kElemBound + 17});
  }

  void make_wrapper_helper() {
    FuncDecl* fn = b_.function(name("h"), b_.void_type());
    const frontend::Type* int_ptr = b_.pointer_to(b_.int_type());
    VarDecl* p = b_.param(fn, name("p"), int_ptr);
    VarDecl* q = b_.param(fn, name("q"), int_ptr);
    BlockStmt* body = b_.body(fn);
    // Forward to every earlier pointer helper (REF/MOD chains through the
    // call graph), occasionally swapping the arguments.
    for (const Helper& h : helpers_) {
      if (h.kind == Helper::kPtrTransform && rng_.chance(70)) {
        const bool swap = rng_.chance(40);
        b_.append(body, b_.expr_stmt(b_.call(
                            h.fn, {b_.ref(swap ? q : p), b_.ref(swap ? p : q)})));
      } else if (h.kind == Helper::kPtrReduce && rng_.chance(50) &&
                 !globals_.empty()) {
        Scalar& g = globals_[rng_.range(globals_.size())];
        b_.append(body, b_.expr_stmt(b_.assign(
                            b_.ref(g.decl), b_.call(h.fn, {b_.ref(p), b_.ref(q)}))));
      }
    }
    helpers_.push_back({fn, Helper::kWrapper, 0.0});
  }

  // --- main -----------------------------------------------------------------

  void make_main() {
    FuncDecl* fn = b_.function("main", b_.int_type());
    BlockStmt* body = b_.body(fn);
    Ctx ctx = helper_ctx(fn);

    // Prologue: deterministic nonzero state.  Scalars get literals; every
    // array gets an affine fill loop (a store the passes love to touch).
    for (Scalar& g : globals_) {
      b_.append(body, b_.expr_stmt(
                          b_.assign(b_.ref(g.decl), b_.lit(rng_.pick(-99, 99)))));
    }
    for (const ArrayInfo& arr : arrays_) array_fill(ctx, body, arr);
    if (has(kFloat)) {
      for (VarDecl* d : floats_) {
        b_.append(body, b_.expr_stmt(b_.assign(
                            b_.ref(d), b_.flit(rng_.pick(-20, 20) * 0.5))));
      }
    }

    gen_stmts(ctx, body, opts_.main_stmts, 0);
    epilogue(ctx, body);
  }

  void array_fill(Ctx& ctx, BlockStmt* block, const ArrayInfo& arr) {
    VarDecl* iv = b_.local(ctx.fn, name("f"), b_.int_type(), b_.lit(0));
    const std::int64_t extent =
        static_cast<std::int64_t>(arr.rows != 0 ? arr.rows : arr.cols);
    BlockStmt* body = b_.block();
    push_scope(ctx);
    ctx.scalars.push_back({iv, static_cast<double>(extent), false, false});
    ctx.loops.push_back({iv, extent});

    Expr* value = b_.binary(
        BinaryOp::Xor,
        b_.binary(BinaryOp::Mul, b_.ref(iv), b_.lit(rng_.pick(1, 16))),
        b_.lit(rng_.pick(0, 255)));
    if (arr.rows == 0) {
      b_.append(body, b_.expr_stmt(
                          b_.assign(b_.index(b_.ref(arr.decl), b_.ref(iv)),
                                    value)));
    } else {
      // Fill column (i & (cols-1)) of each row: touches every row with an
      // affine row index and a masked column index.
      VarDecl* jv = b_.local(ctx.fn, name("f"), b_.int_type(), b_.lit(0));
      BlockStmt* inner = b_.block();
      ctx.scalars.push_back(
          {jv, static_cast<double>(arr.cols), false, false});
      ctx.loops.push_back({jv, static_cast<std::int64_t>(arr.cols)});
      b_.append(inner,
                b_.expr_stmt(b_.assign(
                    b_.index(b_.index(b_.ref(arr.decl), b_.ref(iv)), b_.ref(jv)),
                    b_.binary(BinaryOp::Add, value, b_.ref(jv)))));
      ctx.loops.pop_back();
      b_.append(body,
                b_.for_stmt(b_.decl_stmt(jv),
                            b_.binary(BinaryOp::Lt, b_.ref(jv),
                                      b_.lit(static_cast<std::int64_t>(arr.cols))),
                            b_.assign(b_.ref(jv), b_.binary(BinaryOp::Add,
                                                            b_.ref(jv), b_.lit(1))),
                            inner));
    }
    ctx.loops.pop_back();
    pop_scope(ctx);
    b_.append(block,
              b_.for_stmt(b_.decl_stmt(iv),
                          b_.binary(BinaryOp::Lt, b_.ref(iv), b_.lit(extent)),
                          b_.assign(b_.ref(iv), b_.binary(BinaryOp::Add,
                                                          b_.ref(iv), b_.lit(1))),
                          body));
  }

  /// Checksums the entire observable state: every array element, every
  /// global scalar, every float.  A wrong value anywhere in memory — not
  /// just along the emit path — changes output_hash.
  void epilogue(Ctx& ctx, BlockStmt* body) {
    VarDecl* chk = b_.local(ctx.fn, name("chk"), b_.int_type(), b_.lit(0));
    b_.append(body, b_.decl_stmt(chk));
    for (const ArrayInfo& arr : arrays_) {
      VarDecl* iv = b_.local(ctx.fn, name("z"), b_.int_type(), b_.lit(0));
      const std::int64_t outer =
          static_cast<std::int64_t>(arr.rows != 0 ? arr.rows : arr.cols);
      BlockStmt* loop = b_.block();
      auto fold = [&](BlockStmt* into, Expr* element) {
        // chk = ((chk * 31) + elem) & 0xFFFFFFF: order-sensitive, bounded.
        Expr* mixed = b_.binary(
            BinaryOp::Add,
            b_.binary(BinaryOp::Mul, b_.ref(chk), b_.lit(31)), element);
        b_.append(into, b_.expr_stmt(b_.assign(
                            b_.ref(chk),
                            b_.binary(BinaryOp::And, mixed, b_.lit(268435455)))));
      };
      if (arr.rows == 0) {
        fold(loop, b_.index(b_.ref(arr.decl), b_.ref(iv)));
      } else {
        VarDecl* jv = b_.local(ctx.fn, name("z"), b_.int_type(), b_.lit(0));
        BlockStmt* inner = b_.block();
        fold(inner, b_.index(b_.index(b_.ref(arr.decl), b_.ref(iv)), b_.ref(jv)));
        b_.append(loop,
                  b_.for_stmt(b_.decl_stmt(jv),
                              b_.binary(BinaryOp::Lt, b_.ref(jv),
                                        b_.lit(static_cast<std::int64_t>(arr.cols))),
                              b_.assign(b_.ref(jv),
                                        b_.binary(BinaryOp::Add, b_.ref(jv),
                                                  b_.lit(1))),
                              inner));
      }
      b_.append(body,
                b_.for_stmt(b_.decl_stmt(iv),
                            b_.binary(BinaryOp::Lt, b_.ref(iv), b_.lit(outer)),
                            b_.assign(b_.ref(iv), b_.binary(BinaryOp::Add,
                                                            b_.ref(iv), b_.lit(1))),
                            loop));
    }
    b_.append(body, b_.expr_stmt(b_.call(emit_fn_, {b_.ref(chk)})));
    for (Scalar& g : globals_) {
      b_.append(body, b_.expr_stmt(b_.call(emit_fn_, {b_.ref(g.decl)})));
    }
    if (has(kFloat)) {
      for (VarDecl* d : floats_) {
        b_.append(body, b_.expr_stmt(b_.call(emitd_fn_, {b_.ref(d)})));
      }
    }
    b_.append(body, b_.return_stmt(b_.binary(BinaryOp::And, b_.ref(chk),
                                             b_.lit(255))));
  }

  GenOptions opts_;
  Rng rng_;
  AstBuilder b_;
  unsigned uid_ = 0;

  FuncDecl* emit_fn_ = nullptr;
  FuncDecl* emitd_fn_ = nullptr;
  std::vector<Scalar> globals_;
  std::vector<ArrayInfo> arrays_;
  std::vector<VarDecl*> floats_;
  std::vector<Helper> helpers_;
};

}  // namespace

const std::vector<std::string>& feature_names() { return kFeatureNames; }

bool parse_features(const std::string& text, std::uint32_t& out) {
  std::uint32_t mask = 0;
  for (const std::string_view raw : support::split(text, ',')) {
    std::string_view token = support::trim(raw);
    if (token.empty()) continue;
    bool subtract = false;
    if (token.front() == '-') {
      subtract = true;
      token.remove_prefix(1);
    }
    std::uint32_t bit = 0;
    if (token == "all") {
      bit = kAllFeatures;
    } else if (token == "default") {
      bit = kDefaultFeatures;
    } else {
      bool found = false;
      for (std::size_t i = 0; i < kFeatureNames.size(); ++i) {
        if (token == kFeatureNames[i]) {
          bit = 1u << i;
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    if (subtract) {
      mask &= ~bit;
    } else {
      mask |= bit;
    }
  }
  out = mask;
  return true;
}

std::string render_features(std::uint32_t features) {
  std::string out;
  for (std::size_t i = 0; i < kFeatureNames.size(); ++i) {
    if ((features & (1u << i)) == 0) continue;
    if (!out.empty()) out += ",";
    out += kFeatureNames[i];
  }
  return out.empty() ? "none" : out;
}

std::string generate_source(const GenOptions& options) {
  const frontend::Program prog = Gen(options).run();
  return frontend::print_program(prog);
}

}  // namespace hli::testing
