// AST for the mini-C front-end.  Nodes are owned by arenas inside Program /
// FuncDecl (vectors of unique_ptr); all cross-references are non-owning raw
// pointers, which is safe because the arenas outlive every consumer.
//
// Every expression node carries its SourceLoc — line numbers are the keys
// of the HLI line table, so faithful line propagation matters here more
// than in a typical toy front-end.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/type.hpp"
#include "support/source_location.hpp"

namespace hli::frontend {

using support::SourceLoc;

class Expr;
class Stmt;
class FuncDecl;

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class StorageClass : std::uint8_t {
  Global,  ///< File-scope variable: always memory-resident in the back-end.
  Local,   ///< Function-scope scalar: candidate for a pseudo register.
  Param,   ///< Formal parameter.
};

class VarDecl {
 public:
  VarDecl(std::string name, const Type* type, StorageClass storage, SourceLoc loc,
          std::uint32_t id)
      : name_(std::move(name)), type_(type), storage_(storage), loc_(loc), id_(id) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type* type() const { return type_; }
  [[nodiscard]] StorageClass storage() const { return storage_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }
  /// Program-unique declaration id; index into analysis side tables.
  [[nodiscard]] std::uint32_t id() const { return id_; }

  [[nodiscard]] bool is_global() const { return storage_ == StorageClass::Global; }
  [[nodiscard]] bool is_param() const { return storage_ == StorageClass::Param; }

  /// Set by sema: true if the variable's address is taken anywhere, which
  /// forces it into memory even if scalar (mirrors GCC's pseudo-register
  /// rule in paper §3.1.1).
  [[nodiscard]] bool address_taken() const { return address_taken_; }
  void set_address_taken() { address_taken_ = true; }

  /// The ITEMGEN storage rule (paper §3.1.1): globals, arrays, and
  /// address-taken locals live in memory; other local/param scalars get
  /// pseudo registers and never produce memory items.
  [[nodiscard]] bool is_memory_resident() const {
    return is_global() || type_->is_array() || address_taken_;
  }

  Expr* init = nullptr;  ///< Optional initializer (owned by the arena).
  /// Function owning a local/param declaration; null for globals.  Used by
  /// interprocedural analysis to hide a function's own stack storage from
  /// its callers' REF/MOD view.
  FuncDecl* owner = nullptr;

 private:
  std::string name_;
  const Type* type_;
  StorageClass storage_;
  SourceLoc loc_;
  std::uint32_t id_;
  bool address_taken_ = false;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLiteral,
  FloatLiteral,
  VarRef,
  ArrayIndex,
  Unary,
  Binary,
  Assign,
  Call,
  Conditional,
};

enum class UnaryOp : std::uint8_t { Neg, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec };

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  LogAnd, LogOr,
  Lt, Gt, Le, Ge, Eq, Ne,
};

/// Compound-assignment operator; None is a plain `=`.
enum class AssignOp : std::uint8_t { None, Add, Sub, Mul, Div };

class Expr {
 public:
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

  /// Result type; set by sema.
  const Type* type = nullptr;

 protected:
  Expr(ExprKind kind, SourceLoc loc) : kind_(kind), loc_(loc) {}

 private:
  ExprKind kind_;
  SourceLoc loc_;
};

class IntLiteralExpr final : public Expr {
 public:
  IntLiteralExpr(std::int64_t value, SourceLoc loc)
      : Expr(ExprKind::IntLiteral, loc), value(value) {}
  std::int64_t value;
};

class FloatLiteralExpr final : public Expr {
 public:
  FloatLiteralExpr(double value, bool single, SourceLoc loc)
      : Expr(ExprKind::FloatLiteral, loc), value(value), single_precision(single) {}
  double value;
  bool single_precision;
};

class VarRefExpr final : public Expr {
 public:
  VarRefExpr(std::string name, SourceLoc loc)
      : Expr(ExprKind::VarRef, loc), name(std::move(name)) {}
  std::string name;
  VarDecl* decl = nullptr;  ///< Resolved by sema.
};

/// One subscript application: base[index].  Multi-dimensional accesses chain
/// ArrayIndex nodes (a[i][j] == (a[i])[j]).
class ArrayIndexExpr final : public Expr {
 public:
  ArrayIndexExpr(Expr* base, Expr* index, SourceLoc loc)
      : Expr(ExprKind::ArrayIndex, loc), base(base), index(index) {}
  Expr* base;
  Expr* index;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, Expr* operand, SourceLoc loc)
      : Expr(ExprKind::Unary, loc), op(op), operand(operand) {}
  UnaryOp op;
  Expr* operand;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, Expr* lhs, Expr* rhs, SourceLoc loc)
      : Expr(ExprKind::Binary, loc), op(op), lhs(lhs), rhs(rhs) {}
  BinaryOp op;
  Expr* lhs;
  Expr* rhs;
};

class AssignExpr final : public Expr {
 public:
  AssignExpr(AssignOp op, Expr* lhs, Expr* rhs, SourceLoc loc)
      : Expr(ExprKind::Assign, loc), op(op), lhs(lhs), rhs(rhs) {}
  AssignOp op;
  Expr* lhs;
  Expr* rhs;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string callee, std::vector<Expr*> args, SourceLoc loc)
      : Expr(ExprKind::Call, loc), callee(std::move(callee)), args(std::move(args)) {}
  std::string callee;
  std::vector<Expr*> args;
  FuncDecl* callee_decl = nullptr;  ///< Resolved by sema; null for externs.
};

class ConditionalExpr final : public Expr {
 public:
  ConditionalExpr(Expr* cond, Expr* then_expr, Expr* else_expr, SourceLoc loc)
      : Expr(ExprKind::Conditional, loc), cond(cond), then_expr(then_expr),
        else_expr(else_expr) {}
  Expr* cond;
  Expr* then_expr;
  Expr* else_expr;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Decl, Expr, Block, If, While, For, Return, Break, Continue,
};

class Stmt {
 public:
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

 protected:
  Stmt(StmtKind kind, SourceLoc loc) : kind_(kind), loc_(loc) {}

 private:
  StmtKind kind_;
  SourceLoc loc_;
};

class DeclStmt final : public Stmt {
 public:
  DeclStmt(VarDecl* decl, SourceLoc loc) : Stmt(StmtKind::Decl, loc), decl(decl) {}
  VarDecl* decl;
};

class ExprStmt final : public Stmt {
 public:
  ExprStmt(Expr* expr, SourceLoc loc) : Stmt(StmtKind::Expr, loc), expr(expr) {}
  Expr* expr;
};

class BlockStmt final : public Stmt {
 public:
  explicit BlockStmt(SourceLoc loc) : Stmt(StmtKind::Block, loc) {}
  std::vector<Stmt*> stmts;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(Expr* cond, Stmt* then_stmt, Stmt* else_stmt, SourceLoc loc)
      : Stmt(StmtKind::If, loc), cond(cond), then_stmt(then_stmt), else_stmt(else_stmt) {}
  Expr* cond;
  Stmt* then_stmt;
  Stmt* else_stmt;  ///< May be null.
};

class WhileStmt final : public Stmt {
 public:
  WhileStmt(Expr* cond, Stmt* body, SourceLoc loc)
      : Stmt(StmtKind::While, loc), cond(cond), body(body) {}
  Expr* cond;
  Stmt* body;
  std::uint32_t loop_id = 0;  ///< Assigned by sema; unique per function.
};

class ForStmt final : public Stmt {
 public:
  ForStmt(Stmt* init, Expr* cond, Expr* step, Stmt* body, SourceLoc loc)
      : Stmt(StmtKind::For, loc), init(init), cond(cond), step(step), body(body) {}
  Stmt* init;  ///< DeclStmt or ExprStmt; may be null.
  Expr* cond;  ///< May be null (infinite loop).
  Expr* step;  ///< May be null.
  Stmt* body;
  std::uint32_t loop_id = 0;  ///< Assigned by sema; unique per function.
};

class ReturnStmt final : public Stmt {
 public:
  ReturnStmt(Expr* value, SourceLoc loc) : Stmt(StmtKind::Return, loc), value(value) {}
  Expr* value;  ///< May be null.
};

class BreakStmt final : public Stmt {
 public:
  explicit BreakStmt(SourceLoc loc) : Stmt(StmtKind::Break, loc) {}
};

class ContinueStmt final : public Stmt {
 public:
  explicit ContinueStmt(SourceLoc loc) : Stmt(StmtKind::Continue, loc) {}
};

// ---------------------------------------------------------------------------
// Functions and the program
// ---------------------------------------------------------------------------

class FuncDecl {
 public:
  FuncDecl(std::string name, const Type* return_type, SourceLoc loc)
      : name_(std::move(name)), return_type_(return_type), loc_(loc) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Type* return_type() const { return return_type_; }
  [[nodiscard]] SourceLoc loc() const { return loc_; }

  std::vector<VarDecl*> params;
  BlockStmt* body = nullptr;  ///< Null for extern declarations.
  std::uint32_t next_loop_id = 1;

  [[nodiscard]] bool is_extern() const { return body == nullptr; }

 private:
  std::string name_;
  const Type* return_type_;
  SourceLoc loc_;
};

/// A translation unit: owns every AST node via typed arenas.
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  template <typename T, typename... Args>
  T* make_expr(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    exprs_.push_back(std::move(node));
    return raw;
  }

  template <typename T, typename... Args>
  T* make_stmt(Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = node.get();
    stmts_.push_back(std::move(node));
    return raw;
  }

  VarDecl* make_var(std::string name, const Type* type, StorageClass storage,
                    SourceLoc loc) {
    auto node = std::make_unique<VarDecl>(std::move(name), type, storage, loc,
                                          next_var_id_++);
    VarDecl* raw = node.get();
    vars_.push_back(std::move(node));
    return raw;
  }

  FuncDecl* make_func(std::string name, const Type* return_type, SourceLoc loc) {
    auto node = std::make_unique<FuncDecl>(std::move(name), return_type, loc);
    FuncDecl* raw = node.get();
    funcs_.push_back(std::move(node));
    return raw;
  }

  [[nodiscard]] std::uint32_t var_count() const { return next_var_id_; }

  TypeContext types;
  std::vector<VarDecl*> globals;
  std::vector<FuncDecl*> functions;  ///< In declaration order; externs included.

  /// Finds a function by name, preferring a definition over a forward
  /// (extern) declaration of the same name.
  [[nodiscard]] FuncDecl* find_function(const std::string& name) const {
    FuncDecl* found = nullptr;
    for (FuncDecl* f : functions) {
      if (f->name() != name) continue;
      if (!f->is_extern()) return f;
      if (found == nullptr) found = f;
    }
    return found;
  }

 private:
  std::vector<std::unique_ptr<Expr>> exprs_;
  std::vector<std::unique_ptr<Stmt>> stmts_;
  std::vector<std::unique_ptr<VarDecl>> vars_;
  std::vector<std::unique_ptr<FuncDecl>> funcs_;
  std::uint32_t next_var_id_ = 0;
};

}  // namespace hli::frontend
