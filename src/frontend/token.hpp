// Token definitions for the mini-C front-end language.
//
// The language is the subset of C needed to express the paper's workloads:
// scalar/array/pointer variables of int/float/double, functions, `for`,
// `while`, `if`, and the usual expression operators.  It deliberately has
// no preprocessor, structs, or casts in source form — the paper's HLI
// pipeline only cares about memory references, loops, and calls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/source_location.hpp"

namespace hli::frontend {

enum class TokenKind : std::uint8_t {
  End,
  Identifier,
  IntLiteral,
  FloatLiteral,
  // Keywords.
  KwInt, KwFloat, KwDouble, KwVoid, KwIf, KwElse, KwFor, KwWhile,
  KwReturn, KwBreak, KwContinue,
  // Punctuation / operators.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon,
  Plus, Minus, Star, Slash, Percent,
  Amp, Pipe, Caret, Tilde, Shl, Shr,
  AmpAmp, PipePipe, Bang,
  Less, Greater, LessEq, GreaterEq, EqEq, BangEq,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  PlusPlus, MinusMinus,
  Question, Colon,
};

[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::End;
  support::SourceLoc loc;
  std::string text;        ///< Identifier spelling or literal spelling.
  std::int64_t int_value = 0;
  double float_value = 0.0;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
};

}  // namespace hli::frontend
