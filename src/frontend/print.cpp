#include "frontend/print.hpp"

#include <cstdio>
#include <string>

namespace hli::frontend {

namespace {

const char* binary_op_token(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "%";
    case BinaryOp::And: return "&";
    case BinaryOp::Or: return "|";
    case BinaryOp::Xor: return "^";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::LogAnd: return "&&";
    case BinaryOp::LogOr: return "||";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
  }
  return "?";
}

const char* assign_op_token(AssignOp op) {
  switch (op) {
    case AssignOp::None: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
  }
  return "=";
}

std::string float_token(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  std::string text = buf;
  // The lexer needs a '.' or an exponent to classify the literal as float.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

class Printer {
 public:
  [[nodiscard]] std::string render(const Program& prog) {
    for (const VarDecl* global : prog.globals) {
      out_ += print_declarator(*global->type(), global->name());
      if (global->init != nullptr) {
        out_ += " = ";
        expr(*global->init);
      }
      out_ += ";\n";
    }
    for (const FuncDecl* func : prog.functions) {
      function(*func);
    }
    return std::move(out_);
  }

  [[nodiscard]] std::string take() { return std::move(out_); }

  void expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLiteral: {
        const auto& lit = static_cast<const IntLiteralExpr&>(e);
        // Parenthesize negatives: `a - -5` and subscript contexts stay
        // unambiguous without caring about the surrounding operator.
        if (lit.value < 0) {
          out_ += "(" + std::to_string(lit.value) + ")";
        } else {
          out_ += std::to_string(lit.value);
        }
        return;
      }
      case ExprKind::FloatLiteral: {
        const auto& lit = static_cast<const FloatLiteralExpr&>(e);
        if (lit.value < 0) {
          out_ += "(" + float_token(lit.value) + ")";
        } else {
          out_ += float_token(lit.value);
        }
        return;
      }
      case ExprKind::VarRef:
        out_ += static_cast<const VarRefExpr&>(e).name;
        return;
      case ExprKind::ArrayIndex: {
        const auto& ix = static_cast<const ArrayIndexExpr&>(e);
        expr(*ix.base);
        out_ += "[";
        expr(*ix.index);
        out_ += "]";
        return;
      }
      case ExprKind::Unary:
        unary(static_cast<const UnaryExpr&>(e));
        return;
      case ExprKind::Binary: {
        const auto& bin = static_cast<const BinaryExpr&>(e);
        out_ += "(";
        expr(*bin.lhs);
        out_ += " ";
        out_ += binary_op_token(bin.op);
        out_ += " ";
        expr(*bin.rhs);
        out_ += ")";
        return;
      }
      case ExprKind::Assign: {
        const auto& asg = static_cast<const AssignExpr&>(e);
        expr(*asg.lhs);
        out_ += " ";
        out_ += assign_op_token(asg.op);
        out_ += " ";
        expr(*asg.rhs);
        return;
      }
      case ExprKind::Call: {
        const auto& call = static_cast<const CallExpr&>(e);
        out_ += call.callee + "(";
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          if (i != 0) out_ += ", ";
          expr(*call.args[i]);
        }
        out_ += ")";
        return;
      }
      case ExprKind::Conditional: {
        const auto& sel = static_cast<const ConditionalExpr&>(e);
        out_ += "(";
        expr(*sel.cond);
        out_ += " ? ";
        expr(*sel.then_expr);
        out_ += " : ";
        expr(*sel.else_expr);
        out_ += ")";
        return;
      }
    }
  }

 private:
  void unary(const UnaryExpr& e) {
    switch (e.op) {
      case UnaryOp::Neg: out_ += "(-"; break;
      case UnaryOp::Not: out_ += "(!"; break;
      case UnaryOp::BitNot: out_ += "(~"; break;
      case UnaryOp::Deref: out_ += "(*"; break;
      case UnaryOp::AddrOf: out_ += "(&"; break;
      case UnaryOp::PreInc: out_ += "(++"; break;
      case UnaryOp::PreDec: out_ += "(--"; break;
      case UnaryOp::PostInc:
      case UnaryOp::PostDec:
        out_ += "(";
        expr(*e.operand);
        out_ += e.op == UnaryOp::PostInc ? "++)" : "--)";
        return;
    }
    expr(*e.operand);
    out_ += ")";
  }

  void function(const FuncDecl& func) {
    out_ += print_declarator(*func.return_type(), func.name()) + "(";
    for (std::size_t i = 0; i < func.params.size(); ++i) {
      if (i != 0) out_ += ", ";
      out_ += print_declarator(*func.params[i]->type(), func.params[i]->name());
    }
    out_ += ")";
    if (func.is_extern()) {
      out_ += ";\n";
      return;
    }
    out_ += " {\n";
    ++indent_;
    for (const Stmt* s : func.body->stmts) stmt(*s);
    --indent_;
    out_ += "}\n";
  }

  void stmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const VarDecl& decl = *static_cast<const DeclStmt&>(s).decl;
        pad();
        out_ += print_declarator(*decl.type(), decl.name());
        if (decl.init != nullptr) {
          out_ += " = ";
          expr(*decl.init);
        }
        out_ += ";\n";
        return;
      }
      case StmtKind::Expr:
        pad();
        expr(*static_cast<const ExprStmt&>(s).expr);
        out_ += ";\n";
        return;
      case StmtKind::Block: {
        // Flatten: braces only come from control-flow statements, so the
        // reducer sees one brace pair per if/loop, never a bare block.
        for (const Stmt* inner : static_cast<const BlockStmt&>(s).stmts) {
          stmt(*inner);
        }
        return;
      }
      case StmtKind::If: {
        const auto& ifs = static_cast<const IfStmt&>(s);
        pad();
        out_ += "if (";
        expr(*ifs.cond);
        out_ += ") {\n";
        body_of(ifs.then_stmt);
        if (ifs.else_stmt != nullptr) {
          pad();
          out_ += "} else {\n";
          body_of(ifs.else_stmt);
        }
        pad();
        out_ += "}\n";
        return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const WhileStmt&>(s);
        pad();
        out_ += "while (";
        expr(*loop.cond);
        out_ += ") {\n";
        body_of(loop.body);
        pad();
        out_ += "}\n";
        return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const ForStmt&>(s);
        pad();
        out_ += "for (";
        for_init(loop.init);
        out_ += " ";
        if (loop.cond != nullptr) expr(*loop.cond);
        out_ += "; ";
        if (loop.step != nullptr) expr(*loop.step);
        out_ += ") {\n";
        body_of(loop.body);
        pad();
        out_ += "}\n";
        return;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const ReturnStmt&>(s);
        pad();
        out_ += "return";
        if (ret.value != nullptr) {
          out_ += " ";
          expr(*ret.value);
        }
        out_ += ";\n";
        return;
      }
      case StmtKind::Break:
        pad();
        out_ += "break;\n";
        return;
      case StmtKind::Continue:
        pad();
        out_ += "continue;\n";
        return;
    }
  }

  /// For-init clause: a DeclStmt or ExprStmt rendered inline; both carry
  /// their own trailing ';' in the grammar.
  void for_init(const Stmt* init) {
    if (init == nullptr) {
      out_ += ";";
      return;
    }
    if (init->kind() == StmtKind::Decl) {
      const VarDecl& decl = *static_cast<const DeclStmt*>(init)->decl;
      out_ += print_declarator(*decl.type(), decl.name());
      if (decl.init != nullptr) {
        out_ += " = ";
        expr(*decl.init);
      }
      out_ += ";";
      return;
    }
    expr(*static_cast<const ExprStmt*>(init)->expr);
    out_ += ";";
  }

  void body_of(const Stmt* s) {
    ++indent_;
    if (s != nullptr) stmt(*s);
    --indent_;
  }

  void pad() { out_.append(static_cast<std::size_t>(indent_) * 2, ' '); }

  std::string out_;
  int indent_ = 0;
};

std::string type_keyword(const Type& type) {
  switch (type.kind()) {
    case TypeKind::Void: return "void";
    case TypeKind::Int: return "int";
    case TypeKind::Float: return "float";
    case TypeKind::Double: return "double";
    default: return "?";
  }
}

}  // namespace

std::string print_declarator(const Type& type, const std::string& name) {
  // Unwrap arrays (outermost dimension first), then pointers down to the
  // scalar base: `int (*)[..]`-style declarators never occur in mini-C.
  std::string dims;
  const Type* t = &type;
  while (t->is_array()) {
    dims += "[" + std::to_string(t->array_size()) + "]";
    t = t->element();
  }
  std::string stars;
  while (t->is_pointer()) {
    stars += "*";
    t = t->element();
  }
  return type_keyword(*t) + stars + " " + name + dims;
}

std::string print_program(const Program& prog) {
  return Printer().render(prog);
}

std::string print_expr(const Expr& expr) {
  Printer printer;
  printer.expr(expr);
  return printer.take();
}

}  // namespace hli::frontend
