#include "driver/pipeline.hpp"

#include <optional>

#include "frontend/sema.hpp"
#include "hli/maintain.hpp"
#include "hli/query.hpp"
#include "hli/serialize.hpp"
#include "hli/verify.hpp"
#include "support/string_utils.hpp"

namespace hli::driver {

using namespace hli::backend;

namespace {

/// Every HLI-mapped reference of the function, for the verifier's HV105
/// mapping-congruence check (§3.2.1: the stamp on each Load/Store/Call
/// must point at a line-table item of the matching access class).
std::vector<verify::MappedRef> collect_mapped_refs(const RtlFunction& func) {
  std::vector<verify::MappedRef> refs;
  for (const Insn& insn : func.insns) {
    if (is_memory_op(insn.op) && insn.mem.hli_item != format::kNoItem) {
      refs.push_back({insn.mem.hli_item, insn.op == Opcode::Store, false});
    }
    if (insn.op == Opcode::Call && insn.hli_item != format::kNoItem) {
      refs.push_back({insn.hli_item, false, true});
    }
  }
  return refs;
}

}  // namespace

std::size_t count_source_lines(std::string_view source) {
  std::size_t lines = 0;
  for (const std::string_view line : support::split(source, '\n')) {
    if (!support::trim(line).empty()) ++lines;
  }
  return lines;
}

CompiledProgram compile_source(std::string_view source,
                               const PipelineOptions& options) {
  CompiledProgram out;
  support::DiagnosticEngine diags;
  out.ast = std::make_unique<frontend::Program>(
      frontend::compile_to_ast(source, diags));
  out.stats.source_lines = count_source_lines(source);

  // Front-end: generate and EXPORT the HLI (text or HLIB binary), then
  // re-import it through an HliStore.  The serialized bytes remain the
  // only front-end/back-end channel; the store makes the import
  // demand-driven — each function's entry is decoded when the back-end
  // reaches that function, never the whole file up front.  With an
  // external options.hli_store (a pre-built, possibly mmap'd and shared
  // container) generation is skipped entirely.
  std::optional<hli::HliStore> local_store;
  const hli::HliStore* store = options.hli_store;
  if (store == nullptr) {
    const format::HliFile generated =
        builder::build_hli(*out.ast, options.hli_build);
    out.hli_text = options.hli_encoding == HliEncoding::Binary
                       ? serialize::write_hlib(generated)
                       : serialize::write_hli(generated);
    out.stats.hli_bytes = out.hli_text.size();
    local_store.emplace(std::string(out.hli_text));
    store = &*local_store;
  }

  // Back-end: lower, then map and optimize per function.  The imported
  // entry is copied out of the store: maintenance mutates it per
  // compilation, while the (possibly shared) store stays read-only.
  out.rtl = lower_program(*out.ast);
  out.hli.entries.reserve(out.rtl.functions.size());
  for (RtlFunction& func : out.rtl.functions) {
    const format::HliEntry* imported = store->get(func.name);
    if (imported == nullptr) continue;
    out.hli.entries.push_back(*imported);
    format::HliEntry* entry = &out.hli.entries.back();
    const MapResult mapping = map_items(func, *entry);
    out.stats.mapped_items += mapping.mapped;
    if (!mapping.perfect()) out.stats.map_perfect = false;

    // Invariant verification at every pass boundary (VerifyMode): each
    // maintenance batch must hand the next pass a table set that still
    // satisfies the paper's conservative-correctness contract.
    const auto verify_boundary =
        [&](const char* boundary,
            const std::vector<verify::MappedRef>* refs = nullptr) {
          if (options.verify_hli == VerifyMode::Off) return;
          verify::VerifyOptions vopts;
          vopts.audit_on_findings = true;
          vopts.mapped_refs = refs;
          const verify::VerifyResult result = verify::verify_entry(*entry, vopts);
          out.stats.verify_checks += result.checks_run;
          if (result.ok()) return;
          out.stats.verify_findings += result.findings.size();
          const std::string report = "HLI verifier: unit '" + func.name +
                                     "' dirty after " + boundary + ":\n" +
                                     result.render(func.name);
          if (options.verify_hli == VerifyMode::Fatal) {
            throw support::CompileError(report);
          }
          out.verify_log += report;
        };
    {
      const std::vector<verify::MappedRef> refs = collect_mapped_refs(func);
      verify_boundary("import/mapping", &refs);
    }

    // CSE (Figure 4): deleted loads drop their items from the HLI.  The
    // deletions are DEFERRED until the pass finishes: maintenance bumps
    // the entry's generation counter and would otherwise invalidate the
    // live view mid-pass (delete_item never changes the answer for the
    // still-live items the pass keeps querying, so deferral is safe).
    if (options.enable_cse) {
      const query::HliUnitView view(*entry);
      std::vector<format::ItemId> deleted;
      CseOptions cse;
      cse.use_hli = options.use_hli;
      cse.view = &view;
      cse.on_load_deleted = [&deleted](format::ItemId item) {
        deleted.push_back(item);
      };
      out.stats.cse += cse_function(func, cse);
      for (const format::ItemId item : deleted) {
        maintain::delete_item(*entry, item);
      }
      verify_boundary("CSE maintenance");
    }

    // Combine-style constant folding before the dead-code sweep.
    if (options.enable_constfold) {
      out.stats.constfold += constfold_function(func);
    }

    // Flow-style dead code elimination: sweep the Moves CSE left behind.
    if (options.enable_dce) {
      DceOptions dce;
      dce.on_load_deleted = [entry](format::ItemId item) {
        maintain::delete_item(*entry, item);
      };
      out.stats.dce += dce_function(func, dce);
      verify_boundary("DCE maintenance");
    }

    // LICM: hoisted loads move to the loop's parent region (moves applied
    // after the pass, like the CSE deletions, to keep the view fresh).
    if (options.enable_licm) {
      const query::HliUnitView view(*entry);
      std::vector<std::pair<format::ItemId, format::RegionId>> hoisted;
      LicmOptions licm;
      licm.use_hli = options.use_hli;
      licm.view = &view;
      licm.on_load_hoisted = [&hoisted, &view](format::ItemId item,
                                               format::RegionId loop) {
        hoisted.emplace_back(item, view.parent_region(loop));
      };
      out.stats.licm += licm_function(func, licm);
      for (const auto& [item, target] : hoisted) {
        maintain::move_item_to_region(*entry, item, target);
      }
      verify_boundary("LICM maintenance");
    }

    // Unrolling (Figure 6): RTL duplication + HLI table reconstruction.
    if (options.enable_unroll) {
      UnrollOptions unroll;
      unroll.factor = options.unroll_factor;
      unroll.entry = entry;
      out.stats.unroll += unroll_function(func, unroll);
      verify_boundary("unroll maintenance");
    }

    // First scheduling pass — the instrumented experiment (Table 2).  The
    // conflict cache memoizes the view's may_conflict answers per item
    // pair; it is shared with the post-RA pass below (the HLI is not
    // mutated between the passes), so sched2 re-tests hit the cache.
    query::ConflictCache conflict_cache;
    if (options.enable_sched) {
      const query::HliUnitView view(*entry);
      SchedOptions sched;
      sched.use_hli = options.use_hli;
      sched.view = &view;
      sched.cache = &conflict_cache;
      const machine::MachineDesc& mach = options.sched_machine;
      sched.latency = [&mach](const Insn& insn) { return mach.latency(insn); };
      out.stats.sched += schedule_function(func, sched);
      verify_boundary("scheduling");
    }

    // Hard-register allocation + the second scheduling pass (the rest of
    // the -O2 pipeline the paper's GCC ran after the instrumented pass).
    if (options.enable_regalloc) {
      out.stats.regalloc += allocate_registers(func, options.regalloc);
      if (options.enable_sched) {
        const query::HliUnitView view(*entry);
        SchedOptions sched;
        sched.use_hli = options.use_hli;
        sched.view = &view;
        sched.cache = &conflict_cache;
        const machine::MachineDesc& mach = options.sched_machine;
        sched.latency = [&mach](const Insn& insn) { return mach.latency(insn); };
        out.stats.sched2 += schedule_function(func, sched);
      }
      verify_boundary("regalloc/post-RA scheduling");
    }
  }
  return out;
}

backend::RunResult execute(const CompiledProgram& compiled,
                           const std::string& entry) {
  return run_program(compiled.rtl, entry);
}

SimResult simulate(const CompiledProgram& compiled,
                   const machine::MachineDesc& machine,
                   const std::string& entry) {
  SimResult result;
  if (machine.out_of_order) {
    machine::OutOfOrderSim sim(machine);
    result.run = run_program(compiled.rtl, entry, &sim);
    result.cycles = sim.cycles();
  } else {
    machine::InOrderSim sim(machine);
    result.run = run_program(compiled.rtl, entry, &sim);
    result.cycles = sim.cycles();
  }
  return result;
}

}  // namespace hli::driver
