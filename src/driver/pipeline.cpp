#include "driver/pipeline.hpp"

#include <bit>
#include <optional>

#include "analysis/irdep/analyzer.hpp"
#include "analysis/irdep/audit.hpp"
#include "backend/parexec/parallelize.hpp"
#include "hli/maintain.hpp"
#include "hli/query.hpp"
#include "hli/serialize.hpp"
#include "hli/verify.hpp"
#include "support/string_utils.hpp"

namespace hli::driver {

using namespace hli::backend;

// -- PipelineOptions: presets, fluent layer, validation ---------------------

PipelineOptions PipelineOptions::paper_table2() { return PipelineOptions{}; }

PipelineOptions PipelineOptions::production() {
  PipelineOptions options;
  options.enable_unroll = true;
  options.unroll_factor = 4;
  options.enable_regalloc = true;
  options.hli_encoding = HliEncoding::Binary;
  return options;
}

PipelineOptions PipelineOptions::frontend_only() {
  PipelineOptions options;
  options.enable_cse = false;
  options.enable_constfold = false;
  options.enable_dce = false;
  options.enable_licm = false;
  options.enable_unroll = false;
  options.enable_sched = false;
  options.enable_regalloc = false;
  return options;
}

PipelineOptions PipelineOptions::with_hli(bool on) const {
  PipelineOptions copy = *this;
  copy.use_hli = on;
  return copy;
}

PipelineOptions PipelineOptions::with_verify(VerifyMode mode) const {
  PipelineOptions copy = *this;
  copy.verify_hli = mode;
  return copy;
}

PipelineOptions PipelineOptions::with_encoding(HliEncoding encoding) const {
  PipelineOptions copy = *this;
  copy.hli_encoding = encoding;
  return copy;
}

PipelineOptions PipelineOptions::with_store(const hli::HliStore* store) const {
  PipelineOptions copy = *this;
  copy.hli_store = store;
  return copy;
}

PipelineOptions PipelineOptions::with_batch_queries(bool on) const {
  PipelineOptions out = *this;
  out.batch_queries = on;
  return out;
}

PipelineOptions PipelineOptions::with_cse(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_cse = on;
  return copy;
}

PipelineOptions PipelineOptions::with_constfold(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_constfold = on;
  return copy;
}

PipelineOptions PipelineOptions::with_dce(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_dce = on;
  return copy;
}

PipelineOptions PipelineOptions::with_licm(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_licm = on;
  return copy;
}

PipelineOptions PipelineOptions::with_unroll(unsigned factor) const {
  PipelineOptions copy = *this;
  copy.enable_unroll = true;
  copy.unroll_factor = factor;
  return copy;
}

PipelineOptions PipelineOptions::without_unroll() const {
  PipelineOptions copy = *this;
  copy.enable_unroll = false;
  return copy;
}

PipelineOptions PipelineOptions::with_sched(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_sched = on;
  return copy;
}

PipelineOptions PipelineOptions::with_audit_deps(VerifyMode mode) const {
  PipelineOptions copy = *this;
  copy.audit_deps = mode;
  return copy;
}

PipelineOptions PipelineOptions::with_irdep_fallback(bool on) const {
  PipelineOptions copy = *this;
  copy.irdep_fallback = on;
  return copy;
}

PipelineOptions PipelineOptions::with_analyze_loops(bool on) const {
  PipelineOptions copy = *this;
  copy.analyze_loops = on;
  return copy;
}

PipelineOptions PipelineOptions::with_regalloc(bool on) const {
  PipelineOptions copy = *this;
  copy.enable_regalloc = on;
  return copy;
}

PipelineOptions PipelineOptions::with_exec_threads(unsigned n) const {
  PipelineOptions copy = *this;
  copy.exec_threads = n;
  return copy;
}

PipelineOptions PipelineOptions::with_machine(
    const machine::MachineDesc& machine) const {
  PipelineOptions copy = *this;
  copy.sched_machine = machine;
  return copy;
}

PipelineOptions PipelineOptions::with_language(frontend::Language language) const {
  PipelineOptions copy = *this;
  copy.frontend_options.language = language;
  return copy;
}

PipelineOptions PipelineOptions::with_open_world_params(bool on) const {
  PipelineOptions copy = *this;
  copy.frontend_options.open_world_params = on;
  return copy;
}

PipelineOptions PipelineOptions::with_counters(bool on) const {
  PipelineOptions copy = *this;
  copy.telemetry.counters = on;
  return copy;
}

PipelineOptions PipelineOptions::with_tracer(telemetry::Tracer* tracer) const {
  PipelineOptions copy = *this;
  copy.telemetry.tracer = tracer;
  return copy;
}

PipelineOptions PipelineOptions::with_unit_cache(UnitCache* cache) const {
  PipelineOptions copy = *this;
  copy.unit_cache = cache;
  return copy;
}

std::vector<std::string> PipelineOptions::validate() const {
  std::vector<std::string> problems;
  if (hli_store != nullptr && !use_hli) {
    problems.emplace_back(
        "hli_store is set but use_hli is false: the external store would be "
        "imported and then ignored by every pass; enable HLI "
        "(with_hli(true)) or drop the store (with_store(nullptr))");
  }
  if (enable_unroll && unroll_factor == 0) {
    problems.emplace_back(
        "enable_unroll is set but unroll_factor is 0: a loop body cannot be "
        "replicated zero times; use with_unroll(N) with N >= 2, or "
        "without_unroll()");
  }
  if (enable_unroll && unroll_factor == 1) {
    problems.emplace_back(
        "enable_unroll is set with unroll_factor 1: a single copy is an "
        "expensive no-op; use with_unroll(N) with N >= 2, or "
        "without_unroll()");
  }
  if (exec_threads == 0) {
    problems.emplace_back(
        "exec_threads is 0: the calling thread is always lane 0, so a run "
        "needs at least one lane; use with_exec_threads(N) with N >= 1 "
        "(1 = serial execution)");
  }
  if (frontend_options.language == frontend::Language::Basic &&
      frontend_options.open_world_params) {
    problems.emplace_back(
        "open_world_params is set with the BASIC front-end: the flag models "
        "unseen callers handing a C unit aliased POINTER parameters, and "
        "BASIC has no pointers, so the setting could only mask a "
        "misconfiguration; drop --open-world-params or use --frontend=c");
  }
  if (audit_deps != VerifyMode::Off && !use_hli) {
    problems.emplace_back(
        "audit_deps is on but use_hli is false: the audit cross-checks HLI "
        "independence claims, and without HLI there is nothing to audit; "
        "enable HLI (with_hli(true)) or drop the audit "
        "(with_audit_deps(VerifyMode::Off))");
  }
  return problems;
}

ProgramStats& ProgramStats::operator+=(const ProgramStats& other) {
  sched += other.sched;
  sched2 += other.sched2;
  regalloc += other.regalloc;
  cse += other.cse;
  dce += other.dce;
  constfold += other.constfold;
  licm += other.licm;
  unroll += other.unroll;
  hli_bytes += other.hli_bytes;
  source_lines += other.source_lines;
  mapped_items += other.mapped_items;
  map_perfect = map_perfect && other.map_perfect;
  verify_checks += other.verify_checks;
  verify_findings += other.verify_findings;
  audit_checks += other.audit_checks;
  audit_findings += other.audit_findings;
  return *this;
}

std::uint64_t UnitCacheKey::hash() const {
  std::uint64_t h = support::fnv1a64_mix(rtl_fp, support::kFnv64Basis);
  h = support::fnv1a64_mix(hli_fp, h);
  return support::fnv1a64_mix(options_fp, h);
}

std::size_t CachedUnit::approx_bytes() const {
  std::size_t bytes = sizeof(CachedUnit);
  bytes += rtl.name.size() + verify_log.size() + audit_log.size();
  bytes += rtl.insns.capacity() * sizeof(backend::Insn);
  for (const backend::Insn& insn : rtl.insns) {
    bytes += insn.callee.size() + insn.args.capacity() * sizeof(backend::Reg);
  }
  bytes += rtl.parexec.capacity() * sizeof(backend::LoopPlan);
  bytes += (rtl.param_regs.capacity() + rtl.param_is_float.capacity()) *
           sizeof(backend::Reg);
  bytes += hli.line_table.item_count() * sizeof(format::ItemEntry);
  for (const format::RegionEntry& region : hli.regions) {
    bytes += sizeof(format::RegionEntry);
    bytes += region.classes.capacity() * sizeof(format::EquivClass);
    for (const format::EquivClass& cls : region.classes) {
      bytes += cls.display.size() + cls.base.size() +
               (cls.member_items.capacity() + cls.member_subclasses.capacity()) *
                   sizeof(format::ItemId);
    }
    bytes += region.aliases.capacity() * sizeof(format::AliasEntry);
    bytes += region.lcdds.capacity() * sizeof(format::LcddEntry);
    bytes += region.call_effects.capacity() * sizeof(format::CallEffectEntry);
  }
  for (const irdep::LoopReport& report : loop_reports) {
    bytes += sizeof(irdep::LoopReport) + report.function.size() +
             report.irdep_reason.size() + report.combined_reason.size() +
             report.plan_reason.size();
  }
  return bytes;
}

namespace {

using support::fnv1a64;
using support::fnv1a64_mix;

// -- Content fingerprints for the unit cache --------------------------------
//
// Field-by-field hashing of the LOWERED instruction stream — NOT
// to_string(), whose rendering may elide pass-relevant fields (line
// numbers, HLI stamps, loop notes).  Every field that any downstream
// pass, verifier, classifier or planner reads must land in the hash;
// when the IR grows a field, add it here and bump kUnitCacheSalt.

inline constexpr std::uint64_t kUnitCacheSalt = 0x484c4944'00000002ULL;  // "HLID" v2: frontend_options

std::uint64_t mix_bool(bool value, std::uint64_t h) {
  return fnv1a64_mix(value ? 1 : 0, h);
}

std::uint64_t mix_str(const std::string& s, std::uint64_t h) {
  // Length prefix keeps ("ab","c") distinct from ("a","bc").
  return fnv1a64(s, fnv1a64_mix(s.size(), h));
}

std::uint64_t fingerprint_insn(const Insn& insn, std::uint64_t h) {
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.op), h);
  h = mix_bool(insn.is_float, h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.rd), h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.rs1), h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.rs2), h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.imm), h);
  h = fnv1a64_mix(std::bit_cast<std::uint64_t>(insn.fimm), h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.label), h);
  h = fnv1a64_mix(insn.line, h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.mem.base), h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.mem.symbol), h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.mem.frame_offset), h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.mem.const_offset), h);
  h = mix_bool(insn.mem.offset_known, h);
  h = fnv1a64_mix(insn.mem.size, h);
  h = fnv1a64_mix(insn.mem.hli_item, h);
  h = mix_str(insn.callee, h);
  h = fnv1a64_mix(insn.args.size(), h);
  for (const Reg arg : insn.args) {
    h = fnv1a64_mix(static_cast<std::uint32_t>(arg), h);
  }
  h = fnv1a64_mix(insn.hli_item, h);
  h = fnv1a64_mix(insn.loop_region, h);
  h = fnv1a64_mix(static_cast<std::uint32_t>(insn.induction), h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(insn.loop_step), h);
  h = mix_bool(insn.trip_count.has_value(), h);
  if (insn.trip_count) {
    h = fnv1a64_mix(static_cast<std::uint64_t>(*insn.trip_count), h);
  }
  return h;
}

std::uint64_t fingerprint_function(const RtlFunction& func) {
  std::uint64_t h = mix_str(func.name, kUnitCacheSalt);
  h = fnv1a64_mix(static_cast<std::uint32_t>(func.num_regs), h);
  h = fnv1a64_mix(func.frame_size, h);
  h = fnv1a64_mix(func.param_regs.size(), h);
  for (const Reg reg : func.param_regs) {
    h = fnv1a64_mix(static_cast<std::uint32_t>(reg), h);
  }
  for (const bool is_float : func.param_is_float) h = mix_bool(is_float, h);
  h = mix_bool(func.returns_float, h);
  h = fnv1a64_mix(func.insns.size(), h);
  for (const Insn& insn : func.insns) h = fingerprint_insn(insn, h);
  return h;
}

std::uint64_t fingerprint_globals(const RtlProgram& rtl) {
  std::uint64_t h = fnv1a64_mix(rtl.globals.size(), kUnitCacheSalt);
  for (const GlobalVar& global : rtl.globals) {
    h = mix_str(global.name, h);
    h = fnv1a64_mix(global.size, h);
    h = mix_bool(global.is_float_elem, h);
    h = fnv1a64_mix(global.init_int.size(), h);
    for (const std::int64_t v : global.init_int) {
      h = fnv1a64_mix(static_cast<std::uint64_t>(v), h);
    }
    h = fnv1a64_mix(global.init_fp.size(), h);
    for (const double v : global.init_fp) {
      h = fnv1a64_mix(std::bit_cast<std::uint64_t>(v), h);
    }
  }
  return h;
}

}  // namespace

std::uint64_t options_fingerprint(const PipelineOptions& options) {
  std::uint64_t h = fnv1a64_mix(kUnitCacheSalt, support::kFnv64Basis);
  h = mix_bool(options.use_hli, h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(options.verify_hli), h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(options.hli_encoding), h);
  h = mix_bool(options.enable_cse, h);
  h = mix_bool(options.batch_queries, h);  // Changes query counters.
  h = mix_bool(options.enable_constfold, h);
  h = mix_bool(options.enable_dce, h);
  h = mix_bool(options.enable_licm, h);
  h = mix_bool(options.enable_unroll, h);
  h = fnv1a64_mix(options.unroll_factor, h);
  h = mix_bool(options.enable_sched, h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(options.audit_deps), h);
  h = mix_bool(options.irdep_fallback, h);
  h = mix_bool(options.analyze_loops, h);
  h = mix_bool(options.enable_regalloc, h);
  h = fnv1a64_mix(options.regalloc.int_regs, h);
  h = fnv1a64_mix(options.regalloc.fp_regs, h);
  // Only plans-on/off matters: plan CONTENT is proven from the stream,
  // not from the lane count, so exec_threads 2 and 8 share entries.
  h = mix_bool(options.exec_threads > 1, h);
  const machine::MachineDesc& m = options.sched_machine;
  h = mix_str(m.name, h);
  h = mix_bool(m.out_of_order, h);
  h = fnv1a64_mix(m.issue_width, h);
  h = fnv1a64_mix(m.rob_size, h);
  h = fnv1a64_mix(m.lsq_size, h);
  h = fnv1a64_mix(m.branch_penalty, h);
  h = fnv1a64_mix(m.call_overhead, h);
  h = fnv1a64_mix(m.cache_line_bytes, h);
  h = fnv1a64_mix(m.cache_lines, h);
  h = fnv1a64_mix(m.lat_miss, h);
  h = fnv1a64_mix(m.lat_alu, h);
  h = fnv1a64_mix(m.lat_imul, h);
  h = fnv1a64_mix(m.lat_idiv, h);
  h = fnv1a64_mix(m.lat_load, h);
  h = fnv1a64_mix(m.lat_store, h);
  h = fnv1a64_mix(m.lat_fadd, h);
  h = fnv1a64_mix(m.lat_fmul, h);
  h = fnv1a64_mix(m.lat_fdiv, h);
  h = fnv1a64_mix(static_cast<std::uint64_t>(options.frontend_options.language),
                  h);
  h = mix_bool(options.frontend_options.merge_equal_range_classes, h);
  h = mix_bool(options.frontend_options.open_world_params, h);
  // Counters-on and counters-off compiles must never alias: a hit replays
  // the cached per-unit CounterSet, which is empty when recorded with
  // counters off.
  h = mix_bool(options.telemetry.counters, h);
  return h;
}

namespace {

/// Shared by compile_source/compile_many so both entry points reject
/// incoherent options with one aggregated diagnostic.
void throw_if_invalid(const PipelineOptions& options) {
  const std::vector<std::string> problems = options.validate();
  if (problems.empty()) return;
  std::string message = "invalid PipelineOptions:";
  for (const std::string& problem : problems) {
    message += "\n  - " + problem;
  }
  throw support::CompileError(message);
}

/// Every HLI-mapped reference of the function, for the verifier's HV105
/// mapping-congruence check (§3.2.1: the stamp on each Load/Store/Call
/// must point at a line-table item of the matching access class).
std::vector<verify::MappedRef> collect_mapped_refs(const RtlFunction& func) {
  std::vector<verify::MappedRef> refs;
  for (const Insn& insn : func.insns) {
    if (is_memory_op(insn.op) && insn.mem.hli_item != format::kNoItem) {
      refs.push_back({insn.mem.hli_item, insn.op == Opcode::Store, false});
    }
    if (insn.op == Opcode::Call && insn.hli_item != format::kNoItem) {
      refs.push_back({insn.hli_item, false, true});
    }
  }
  return refs;
}

// Pipeline-level telemetry counters (the passes register their own; see
// docs/observability.md for the catalog).
const telemetry::Counter c_hli_bytes_exported =
    telemetry::counter("hli.bytes_exported");
const telemetry::Counter c_functions_compiled =
    telemetry::counter("pipeline.functions_compiled");
const telemetry::Counter c_verify_checks = telemetry::counter("verify.checks");
const telemetry::Counter c_verify_findings =
    telemetry::counter("verify.findings");
const telemetry::Counter c_fallback_queries =
    telemetry::counter("irdep.fallback_queries");
const telemetry::Counter c_fallback_pruned =
    telemetry::counter("irdep.fallback_pruned");

}  // namespace

std::size_t count_source_lines(std::string_view source) {
  std::size_t lines = 0;
  for (const std::string_view line : support::split(source, '\n')) {
    if (!support::trim(line).empty()) ++lines;
  }
  return lines;
}

CompiledProgram compile_source(std::string_view source,
                               const PipelineOptions& options) {
  throw_if_invalid(options);

  CompiledProgram out;

  // Program-level recorder: counter increments from every pass land in
  // out.counters.total (and spans in the tracer) for this thread until
  // the end of the compilation.  When telemetry is disabled nothing is
  // installed — an ambient sink set up by the caller (e.g. hlifuzz
  // aggregating across a fuzz run) keeps receiving increments instead.
  std::optional<telemetry::ScopedRecorder> program_recorder;
  if (options.telemetry.enabled()) {
    program_recorder.emplace(
        options.telemetry.counters ? &out.counters.total : nullptr,
        options.telemetry.tracer);
  }

  // Front-end, behind the AnalyzedUnit contract: parse + sema + HLI
  // generation + lowering all happen inside analyze_unit; no AST crosses
  // back.  The serialized HLI bytes are re-imported through an HliStore —
  // the serialized format stays the only front-end/back-end channel, and
  // the store makes the import demand-driven (each function's entry is
  // decoded when the back-end reaches it, never the whole file up front).
  // With an external options.hli_store (a pre-built, possibly mmap'd and
  // shared container) generation is skipped entirely.
  const bool generate_hli = options.hli_store == nullptr;
  out.unit = frontend::analyze_unit(source, options.frontend_options,
                                    options.hli_encoding, generate_hli);
  out.stats.source_lines = out.unit.source_lines;
  out.rtl = std::move(out.unit.rtl);
  out.unit.rtl = backend::RtlProgram{};

  std::optional<hli::HliStore> local_store;
  const hli::HliStore* store = options.hli_store;
  if (generate_hli) {
    out.hli_text = std::move(out.unit.hli_bytes);
    out.unit.hli_bytes.clear();
    out.stats.hli_bytes = out.hli_text.size();
    c_hli_bytes_exported.add(out.hli_text.size());
    local_store.emplace(std::string(out.hli_text));
    store = &*local_store;
  }

  // Back-end: map and optimize per function.  The imported entry is
  // copied out of the store: maintenance mutates it per compilation,
  // while the (possibly shared) store stays read-only.

  // Independent IR-level dependence analyzer (src/analysis/irdep): one
  // program-level sweep over the lowered RTL — exposure + bottom-up
  // REF/MOD — feeds the soundness audit, the loop classifier, and the
  // per-pass fallback oracle below.  It reads only the instruction
  // stream, never the HLI, so its facts are an independent opinion.
  const bool want_irdep = options.audit_deps != VerifyMode::Off ||
                          options.irdep_fallback || options.analyze_loops ||
                          options.exec_threads > 1;
  std::optional<irdep::ProgramDepInfo> irdep_program;
  if (want_irdep) {
    const telemetry::Span span("irdep-summary", "phase");
    irdep_program.emplace(out.rtl);
  }

  // Content-addressed unit cache: all fingerprints are taken over the
  // LOWERED program, before the per-function loop mutates anything.  The
  // environment fingerprint folds the global layout always, plus every
  // lowered function body when irdep is consulted — its interprocedural
  // REF/MOD summaries make one unit's result depend on callee bodies, so
  // any edit anywhere must miss.  Without irdep a unit's result depends
  // only on its own stream + its HLI entry (which content-captures callee
  // effects), so sibling edits keep hitting.
  UnitCache* const unit_cache = options.unit_cache;
  std::vector<std::uint64_t> lowered_fps;
  std::uint64_t env_fp = 0;
  std::uint64_t options_fp = 0;
  if (unit_cache != nullptr) {
    const telemetry::Span span("unit-cache-fingerprint", "phase");
    options_fp = options_fingerprint(options);
    lowered_fps.reserve(out.rtl.functions.size());
    for (const RtlFunction& func : out.rtl.functions) {
      lowered_fps.push_back(fingerprint_function(func));
    }
    env_fp = fingerprint_globals(out.rtl);
    if (want_irdep) {
      for (const std::uint64_t fp : lowered_fps) {
        env_fp = support::fnv1a64_mix(fp, env_fp);
      }
    }
  }

  out.hli.entries.reserve(out.rtl.functions.size());
  if (options.telemetry.counters) {
    // Reserved up front: each iteration's recorder holds a pointer into
    // this vector across the passes it scopes.
    out.counters.per_function.reserve(out.rtl.functions.size());
  }
  for (std::size_t func_index = 0; func_index < out.rtl.functions.size();
       ++func_index) {
    RtlFunction& func = out.rtl.functions[func_index];
    const telemetry::Span function_span(func.name, "function");
    // Per-function counter attribution; merges into the program total
    // (and any ambient sink beyond it) when the scope closes.
    std::optional<telemetry::ScopedRecorder> function_recorder;
    if (options.telemetry.counters) {
      out.counters.per_function.emplace_back(func.name,
                                             telemetry::CounterSet{});
      function_recorder.emplace(&out.counters.per_function.back().second);
    }

    // Unit-cache lookup.  A hit replaces this entire iteration: the
    // cached RTL/HLI/stats/reports are spliced in and the cold run's
    // per-unit counters replayed, so outputs are byte-identical to
    // recompiling while mapping, every pass, verification and planning
    // are all skipped.  Only HLI-carrying units participate —
    // unit_checksum is the key's HLI leg, and the no-HLI path below is
    // already pass-free.  NOTE: the replayed counters already include
    // pipeline.functions_compiled, hence the add(1) after the check.
    std::optional<UnitCacheKey> cache_key;
    if (unit_cache != nullptr) {
      if (const std::optional<std::uint64_t> hli_fp =
              store->unit_checksum(func.name)) {
        cache_key.emplace();
        cache_key->rtl_fp = support::fnv1a64_mix(env_fp,
                                                 lowered_fps[func_index]);
        cache_key->hli_fp = *hli_fp;
        cache_key->options_fp = options_fp;
        if (const std::shared_ptr<const CachedUnit> hit =
                unit_cache->lookup(*cache_key)) {
          func = hit->rtl;
          out.hli.entries.push_back(hit->hli);
          out.stats += hit->stats;
          out.verify_log += hit->verify_log;
          out.audit_log += hit->audit_log;
          out.loop_reports.insert(out.loop_reports.end(),
                                  hit->loop_reports.begin(),
                                  hit->loop_reports.end());
          // With counters on this lands in the per-function set installed
          // above and merges up to the program total; with counters off
          // the cached set is empty by keying (telemetry.counters is in
          // options_fp), so ambient sinks observe ZERO pass work for the
          // unit — the property the service's warm-path tests assert.
          if (telemetry::CounterSet* sink = telemetry::current_counters()) {
            *sink += hit->counters;
          }
          continue;
        }
      }
    }
    c_functions_compiled.add(1);

    const format::HliEntry* imported = store->get(func.name);
    if (imported == nullptr) {
      // No HLI for this function: it skips the optimizing passes (as
      // always), but the loop classifier still reports its loops from
      // irdep facts alone.
      if (options.analyze_loops) {
        const telemetry::Span span("analyze-loops", "pass");
        const std::vector<irdep::LoopReport> reports =
            irdep::classify_function(*irdep_program, func, nullptr);
        out.loop_reports.insert(out.loop_reports.end(), reports.begin(),
                                reports.end());
      }
      // No HLI also means no transforming pass ran: the stream is final,
      // so the parallel planner can work from irdep facts alone.
      if (options.exec_threads > 1) {
        const telemetry::Span span("parallelize", "pass");
        backend::parexec::PlanOptions popts;
        popts.reports = options.analyze_loops ? &out.loop_reports : nullptr;
        backend::parexec::parallelize_function(*irdep_program, func, popts);
      }
      continue;
    }
    // Everything below accumulates into unit-scoped state (stats, log and
    // report slices) so a successful cold iteration can be published to
    // the unit cache verbatim at the bottom of the loop.
    ProgramStats unit_stats;
    const std::size_t loop_reports_base = out.loop_reports.size();
    const std::size_t verify_log_base = out.verify_log.size();
    const std::size_t audit_log_base = out.audit_log.size();

    out.hli.entries.push_back(*imported);
    format::HliEntry* entry = &out.hli.entries.back();
    const MapResult mapping = map_items(func, *entry);
    mapping.record_telemetry();
    unit_stats.mapped_items += mapping.mapped;
    if (!mapping.perfect()) unit_stats.map_perfect = false;

    // Invariant verification at every pass boundary (VerifyMode): each
    // maintenance batch must hand the next pass a table set that still
    // satisfies the paper's conservative-correctness contract.
    const auto verify_boundary =
        [&](const char* boundary,
            const std::vector<verify::MappedRef>* refs = nullptr) {
          if (options.verify_hli == VerifyMode::Off) return;
          const telemetry::Span span("verify", "verify");
          verify::VerifyOptions vopts;
          vopts.audit_on_findings = true;
          vopts.mapped_refs = refs;
          const verify::VerifyResult result = verify::verify_entry(*entry, vopts);
          unit_stats.verify_checks += result.checks_run;
          c_verify_checks.add(result.checks_run);
          if (result.ok()) return;
          unit_stats.verify_findings += result.findings.size();
          c_verify_findings.add(result.findings.size());
          const std::string report = "HLI verifier: unit '" + func.name +
                                     "' dirty after " + boundary + ":\n" +
                                     result.render(func.name);
          if (options.verify_hli == VerifyMode::Fatal) {
            throw support::CompileError(report);
          }
          out.verify_log += report;
        };
    // Independent soundness audit (--audit-deps), run at the SAME
    // boundaries as the invariant verifier: rebuild the function model
    // from the current instruction stream and flag every HLI claim of
    // total independence (may_conflict None + empty LCDD — exactly what
    // licenses reordering/hoisting) that irdep refutes with a proof.
    const auto audit_boundary = [&](const char* boundary) {
      if (options.audit_deps == VerifyMode::Off) return;
      const telemetry::Span span("audit-deps", "verify");
      irdep::FunctionDepInfo fdi(*irdep_program, func);
      const query::HliUnitView view(*entry);
      const irdep::AuditResult result = irdep::audit_function(fdi, view);
      unit_stats.audit_checks += result.checks;
      if (result.ok()) return;
      unit_stats.audit_findings += result.findings.size();
      std::string report = "irdep audit: unit '" + func.name +
                           "' unsound after " + std::string(boundary) + ":\n";
      for (const verify::Finding& finding : result.findings) {
        report += "  " + func.name + ": " + verify::to_string(finding) + "\n";
      }
      if (options.audit_deps == VerifyMode::Fatal) {
        throw support::CompileError(report);
      }
      out.audit_log += report;
    };
    {
      const std::vector<verify::MappedRef> refs = collect_mapped_refs(func);
      verify_boundary("import/mapping", &refs);
      audit_boundary("import/mapping");
    }

    // Loop classification (--analyze=loops): right after import/mapping,
    // before any transform reshapes the loops, so the report describes
    // the program the user wrote.  The combined column unions HLI facts
    // in only when this compilation actually uses them.
    if (options.analyze_loops) {
      const telemetry::Span span("analyze-loops", "pass");
      const query::HliUnitView view(*entry);
      const std::vector<irdep::LoopReport> reports = irdep::classify_function(
          *irdep_program, func, options.use_hli ? &view : nullptr);
      out.loop_reports.insert(out.loop_reports.end(), reports.begin(),
                              reports.end());
    }

    // Fallback dependence oracle (--irdep-fallback): handed to CSE, LICM
    // and both scheduling passes.  Built on the post-mapping stream;
    // refreshed before every pass that runs after a stream-rewriting one
    // (LICM refreshes internally, per loop).
    std::optional<irdep::IrdepOracle> irdep_oracle;
    if (options.irdep_fallback) {
      irdep_oracle.emplace(*irdep_program, func);
    }

    // CSE (Figure 4): deleted loads drop their items from the HLI.  The
    // deletions are DEFERRED until the pass finishes: maintenance bumps
    // the entry's generation counter and would otherwise invalidate the
    // live view mid-pass (delete_item never changes the answer for the
    // still-live items the pass keeps querying, so deferral is safe).
    if (options.enable_cse) {
      const telemetry::Span span("cse", "pass");
      const query::HliUnitView view(*entry);
      std::vector<format::ItemId> deleted;
      CseOptions cse;
      cse.use_hli = options.use_hli;
      cse.view = &view;
      cse.batch_queries = options.batch_queries;
      cse.on_load_deleted = [&deleted](format::ItemId item) {
        deleted.push_back(item);
      };
      if (irdep_oracle) cse.fallback = &*irdep_oracle;
      const CseStats cse_stats = cse_function(func, cse);
      cse_stats.record_telemetry();
      unit_stats.cse += cse_stats;
      for (const format::ItemId item : deleted) {
        maintain::delete_item(*entry, item);
      }
      verify_boundary("CSE maintenance");
      audit_boundary("CSE maintenance");
    }

    // Combine-style constant folding before the dead-code sweep.
    if (options.enable_constfold) {
      const telemetry::Span span("constfold", "pass");
      const ConstFoldStats constfold_stats = constfold_function(func);
      constfold_stats.record_telemetry();
      unit_stats.constfold += constfold_stats;
    }

    // Flow-style dead code elimination: sweep the Moves CSE left behind.
    if (options.enable_dce) {
      const telemetry::Span span("dce", "pass");
      DceOptions dce;
      dce.on_load_deleted = [entry](format::ItemId item) {
        maintain::delete_item(*entry, item);
      };
      const DceStats dce_stats = dce_function(func, dce);
      dce_stats.record_telemetry();
      unit_stats.dce += dce_stats;
      verify_boundary("DCE maintenance");
      audit_boundary("DCE maintenance");
    }

    // LICM: hoisted loads move to the loop's parent region (moves applied
    // after the pass, like the CSE deletions, to keep the view fresh).
    if (options.enable_licm) {
      const telemetry::Span span("licm", "pass");
      const query::HliUnitView view(*entry);
      std::vector<std::pair<format::ItemId, format::RegionId>> hoisted;
      LicmOptions licm;
      licm.use_hli = options.use_hli;
      licm.view = &view;
      licm.batch_queries = options.batch_queries;
      licm.on_load_hoisted = [&hoisted, &view](format::ItemId item,
                                               format::RegionId loop) {
        hoisted.emplace_back(item, view.parent_region(loop));
      };
      if (irdep_oracle) licm.fallback = &*irdep_oracle;
      const LicmStats licm_stats = licm_function(func, licm);
      licm_stats.record_telemetry();
      unit_stats.licm += licm_stats;
      for (const auto& [item, target] : hoisted) {
        maintain::move_item_to_region(*entry, item, target);
      }
      verify_boundary("LICM maintenance");
      audit_boundary("LICM maintenance");
    }

    // Unrolling (Figure 6): RTL duplication + HLI table reconstruction.
    if (options.enable_unroll) {
      const telemetry::Span span("unroll", "pass");
      UnrollOptions unroll;
      unroll.factor = options.unroll_factor;
      unroll.entry = entry;
      const UnrollStats unroll_stats = unroll_function(func, unroll);
      unroll_stats.record_telemetry();
      unit_stats.unroll += unroll_stats;
      verify_boundary("unroll maintenance");
      audit_boundary("unroll maintenance");
    }

    // First scheduling pass — the instrumented experiment (Table 2).  The
    // conflict cache memoizes the view's may_conflict answers per item
    // pair; it is shared with the post-RA pass below (the HLI is not
    // mutated between the passes), so sched2 re-tests hit the cache.
    query::ConflictCache conflict_cache;
    if (options.enable_sched) {
      const telemetry::Span span("sched", "pass");
      const query::HliUnitView view(*entry);
      SchedOptions sched;
      sched.use_hli = options.use_hli;
      sched.view = &view;
      sched.cache = &conflict_cache;
      sched.batch_queries = options.batch_queries;
      const machine::MachineDesc& mach = options.sched_machine;
      sched.latency = [&mach](const Insn& insn) { return mach.latency(insn); };
      if (irdep_oracle) {
        irdep_oracle->refresh(func);  // Constfold/DCE/unroll rewrote insns.
        sched.fallback = &*irdep_oracle;
      }
      const DepStats sched_stats = schedule_function(func, sched);
      sched_stats.record_telemetry(options.use_hli);
      unit_stats.sched += sched_stats;
      verify_boundary("scheduling");
      audit_boundary("scheduling");
    }

    // Hard-register allocation + the second scheduling pass (the rest of
    // the -O2 pipeline the paper's GCC ran after the instrumented pass).
    if (options.enable_regalloc) {
      const telemetry::Span span("regalloc", "pass");
      const RegAllocStats ra_stats = allocate_registers(func, options.regalloc);
      ra_stats.record_telemetry();
      unit_stats.regalloc += ra_stats;
      if (options.enable_sched) {
        const telemetry::Span sched2_span("sched2", "pass");
        const query::HliUnitView view(*entry);
        SchedOptions sched;
        sched.use_hli = options.use_hli;
        sched.view = &view;
        sched.cache = &conflict_cache;
        sched.batch_queries = options.batch_queries;
        const machine::MachineDesc& mach = options.sched_machine;
        sched.latency = [&mach](const Insn& insn) { return mach.latency(insn); };
        if (irdep_oracle) {
          irdep_oracle->refresh(func);  // Regalloc rewrote the stream.
          sched.fallback = &*irdep_oracle;
        }
        const DepStats sched2_stats = schedule_function(func, sched);
        sched2_stats.record_telemetry(options.use_hli);
        unit_stats.sched2 += sched2_stats;
      }
      verify_boundary("regalloc/post-RA scheduling");
      audit_boundary("regalloc/post-RA scheduling");
    }

    if (irdep_oracle) {
      c_fallback_queries.add(irdep_oracle->queries());
      c_fallback_pruned.add(irdep_oracle->pruned());
    }

    // Parallel execution planning — after the LAST transforming pass, so
    // plan positions index the stream the interpreter will actually run.
    // The planner unions the (possibly maintained) HLI tables with fresh
    // irdep facts; it mutates nothing but RtlFunction::parexec.
    if (options.exec_threads > 1) {
      const telemetry::Span span("parallelize", "pass");
      const query::HliUnitView view(*entry);
      backend::parexec::PlanOptions popts;
      if (options.use_hli) popts.view = &view;
      popts.reports = options.analyze_loops ? &out.loop_reports : nullptr;
      backend::parexec::parallelize_function(*irdep_program, func, popts);
    }

    out.stats += unit_stats;
    // Publish the finished unit.  Only reached on success — a Fatal
    // verify/audit throw above unwinds past this, so a dirty unit is
    // never cached.  The per-function CounterSet is complete here (every
    // increment of this iteration already landed in it); it is captured
    // before the recorder's scope-exit merge, which only propagates
    // upward and never mutates the per-function set itself.
    if (cache_key) {
      CachedUnit cached;
      cached.rtl = func;
      cached.hli = *entry;
      cached.stats = unit_stats;
      if (options.telemetry.counters) {
        cached.counters = out.counters.per_function.back().second;
      }
      cached.loop_reports.assign(out.loop_reports.begin() + loop_reports_base,
                                 out.loop_reports.end());
      cached.verify_log = out.verify_log.substr(verify_log_base);
      cached.audit_log = out.audit_log.substr(audit_log_base);
      unit_cache->insert(*cache_key, std::move(cached));
    }
  }
  out.exec_threads = options.exec_threads;
  return out;
}

backend::RunResult execute(const CompiledProgram& compiled,
                           const std::string& entry) {
  backend::InterpOptions interp;
  interp.exec_threads = compiled.exec_threads;
  return run_program(compiled.rtl, entry, nullptr, interp);
}

SimResult simulate(const CompiledProgram& compiled,
                   const machine::MachineDesc& machine,
                   const std::string& entry) {
  SimResult result;
  if (machine.out_of_order) {
    machine::OutOfOrderSim sim(machine);
    result.run = run_program(compiled.rtl, entry, &sim);
    result.cycles = sim.cycles();
  } else {
    machine::InOrderSim sim(machine);
    result.run = run_program(compiled.rtl, entry, &sim);
    result.cycles = sim.cycles();
  }
  return result;
}

}  // namespace hli::driver
