// Parallel compilation driver: a minimal fixed-size thread pool (single
// shared queue, no work stealing) and a `compile_many` front door that
// compiles independent sources concurrently.  `compile_source` is
// self-contained — it shares no mutable state across calls — so the
// workload benches (`bench_table1/2 --jobs N`) and the `hlic --jobs N`
// tool can fan every unit out to one pool and still produce byte-identical
// results in input order.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "driver/pipeline.hpp"

namespace hli::driver {

/// Jobs to use when the caller passes 0: the hardware concurrency,
/// clamped to at least 1.
[[nodiscard]] unsigned default_jobs();

/// Fixed-size thread pool over one mutex-guarded FIFO queue.  Deliberately
/// work-stealing-free: compilation tasks are coarse (a whole source each),
/// so a shared queue loses nothing and stays simple and fair.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned threads);
  /// Joins all workers; pending jobs are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Jobs must not throw — wrap exceptions at the
  /// call site (compile_many/parallel_for capture std::exception_ptr).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;  ///< Queued + currently executing jobs.
  bool stop_ = false;
};

/// Runs `task(0) .. task(count-1)` on up to `jobs` threads (0 = hardware
/// concurrency; 1 = inline on the calling thread, no pool).  Blocks until
/// all tasks finish; if any task threw, rethrows the exception of the
/// lowest task index so error reporting is deterministic regardless of
/// completion order.
void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& task);

/// Compiles every source through the full pipeline on up to `jobs`
/// threads.  Results are in input order and bit-identical to a serial
/// loop (each compile is deterministic and isolated); the first
/// CompileError (by input index) is rethrown.  When options.hli_store
/// points at a shared external container, the workers import through it
/// concurrently: HliStore::get is thread-safe and decodes each unit
/// exactly once, so only the units the compiled sources actually touch
/// are ever materialized.
[[nodiscard]] std::vector<CompiledProgram> compile_many(
    const std::vector<std::string>& sources,
    const PipelineOptions& options = {}, unsigned jobs = 0);

/// Merges every program's telemetry counters in input order: totals add,
/// per-function attributions concatenate.  Because counter collection is
/// per-compilation state, the result is byte-identical however many jobs
/// compiled `programs`.
[[nodiscard]] CompilationStats aggregate_counters(
    const std::vector<CompiledProgram>& programs);

}  // namespace hli::driver
