// End-to-end compilation pipeline, mirroring Figure 3:
//
//   source --front-end--> AST --[HLI gen]--> HLI text file
//     |                                         |
//     +--lowering--> RTL  <--import/mapping-----+
//                     |
//          CSE -> LICM -> unroll -> scheduling    (each natively or
//                     |                            HLI-assisted)
//          interpreter (correctness) + machine models (cycles)
//
// The back-end always works from the RE-READ HLI file, never from
// front-end memory: the serialized format is the only channel, as in the
// paper.
#pragma once

#include <memory>
#include <string_view>

#include "backend/constfold.hpp"
#include "backend/cse.hpp"
#include "backend/dce.hpp"
#include "backend/interp.hpp"
#include "backend/licm.hpp"
#include "backend/lower.hpp"
#include "backend/mapping.hpp"
#include "backend/regalloc.hpp"
#include "backend/sched.hpp"
#include "backend/unroll.hpp"
#include "frontend/ast.hpp"
#include "hli/builder.hpp"
#include "machine/timing.hpp"

namespace hli::driver {

/// When (and how hard) the HLI invariant verifier runs during compilation.
/// Warn/Fatal run `verify::verify_entry` at EVERY pass boundary — after
/// import/mapping and after each CSE/DCE/LICM/unroll maintenance batch —
/// with the differential conservativeness audit enabled, so a corrupted
/// table is caught at the boundary that corrupted it, not at the
/// scheduler that consumed it.
enum class VerifyMode : std::uint8_t {
  Off,   ///< No verification (production default).
  Warn,  ///< Findings accumulate in CompiledProgram::verify_log.
  Fatal, ///< First dirty boundary throws support::CompileError.
};

struct PipelineOptions {
  bool use_hli = true;       ///< Figure 5's flag_use_hli, across all passes.
  VerifyMode verify_hli = VerifyMode::Off;
  bool enable_cse = true;
  bool enable_constfold = true;  ///< Combine-style constant folding.
  bool enable_dce = true;  ///< Flow-style cleanup after CSE/LICM.
  bool enable_licm = true;
  bool enable_unroll = false;
  unsigned unroll_factor = 4;
  bool enable_sched = true;
  /// Post-first-pass stages of the -O2 pipeline: hard-register allocation
  /// (linear scan with spill code) followed by a second scheduling pass.
  /// Off by default so Table 2 measures exactly the paper's first pass.
  bool enable_regalloc = false;
  backend::RegAllocOptions regalloc;
  /// Latencies used by the scheduler's priority function.
  machine::MachineDesc sched_machine = machine::r10000();
  builder::BuildOptions hli_build;
};

struct ProgramStats {
  backend::DepStats sched;        ///< FIRST scheduling pass (Table 2).
  backend::DepStats sched2;       ///< Post-RA pass (when enabled).
  backend::RegAllocStats regalloc;
  backend::CseStats cse;
  backend::DceStats dce;
  backend::ConstFoldStats constfold;
  backend::LicmStats licm;
  backend::UnrollStats unroll;
  std::size_t hli_bytes = 0;
  std::size_t source_lines = 0;
  std::size_t mapped_items = 0;
  bool map_perfect = true;
  std::size_t verify_checks = 0;    ///< Invariant evaluations (VerifyMode on).
  std::size_t verify_findings = 0;  ///< Violations found across boundaries.
};

struct CompiledProgram {
  /// AST kept alive: RTL/HLI reference nothing in it after compilation,
  /// but tests inspect it.
  std::unique_ptr<frontend::Program> ast;
  format::HliFile hli;      ///< The re-read tables the back-end used.
  std::string hli_text;     ///< Serialized HLI (size feeds Table 1).
  backend::RtlProgram rtl;  ///< Fully optimized program.
  ProgramStats stats;
  /// Per-boundary verifier reports under VerifyMode::Warn (empty if clean).
  std::string verify_log;
};

/// Compiles mini-C source through the full pipeline.  Throws
/// support::CompileError on front-end errors.
[[nodiscard]] CompiledProgram compile_source(std::string_view source,
                                             const PipelineOptions& options = {});

/// Runs the compiled program on the functional interpreter.
[[nodiscard]] backend::RunResult execute(const CompiledProgram& compiled,
                                         const std::string& entry = "main");

/// Runs the compiled program through a timing model; returns cycles.
struct SimResult {
  backend::RunResult run;
  std::uint64_t cycles = 0;
};
[[nodiscard]] SimResult simulate(const CompiledProgram& compiled,
                                 const machine::MachineDesc& machine,
                                 const std::string& entry = "main");

/// Counts non-empty source lines (the "code size" of Table 1).
[[nodiscard]] std::size_t count_source_lines(std::string_view source);

}  // namespace hli::driver
