// End-to-end compilation pipeline, mirroring Figure 3:
//
//   source --front-end--> AST --[HLI gen]--> HLI text file
//     |                                         |
//     +--lowering--> RTL  <--import/mapping-----+
//                     |
//          CSE -> LICM -> unroll -> scheduling    (each natively or
//                     |                            HLI-assisted)
//          interpreter (correctness) + machine models (cycles)
//
// The back-end always works from the RE-READ HLI file, never from
// front-end memory: the serialized format is the only channel, as in the
// paper.
#pragma once

#include <memory>
#include <string_view>

#include "backend/constfold.hpp"
#include "backend/cse.hpp"
#include "backend/dce.hpp"
#include "backend/interp.hpp"
#include "backend/licm.hpp"
#include "backend/lower.hpp"
#include "backend/mapping.hpp"
#include "backend/regalloc.hpp"
#include "backend/sched.hpp"
#include "backend/unroll.hpp"
#include "frontend/ast.hpp"
#include "hli/builder.hpp"
#include "hli/store.hpp"
#include "machine/timing.hpp"

namespace hli::driver {

/// When (and how hard) the HLI invariant verifier runs during compilation.
/// Warn/Fatal run `verify::verify_entry` at EVERY pass boundary — after
/// import/mapping and after each CSE/DCE/LICM/unroll maintenance batch —
/// with the differential conservativeness audit enabled, so a corrupted
/// table is caught at the boundary that corrupted it, not at the
/// scheduler that consumed it.
enum class VerifyMode : std::uint8_t {
  Off,   ///< No verification (production default).
  Warn,  ///< Findings accumulate in CompiledProgram::verify_log.
  Fatal, ///< First dirty boundary throws support::CompileError.
};

/// Encoding of the serialized front-end -> back-end HLI channel.
enum class HliEncoding : std::uint8_t {
  Text,    ///< Line-based "HLI v1" (docs/FORMAT.md).
  Binary,  ///< HLIB container (docs/hli-binary-format.md): varint tables,
           ///< interned strings, per-unit index for demand-driven import.
};

struct PipelineOptions {
  bool use_hli = true;       ///< Figure 5's flag_use_hli, across all passes.
  VerifyMode verify_hli = VerifyMode::Off;
  /// How the generated HLI is exported before the back-end re-imports it.
  /// Compilation output is byte-identical either way; Text stays the
  /// default so Table 1's HLI-size numbers keep their paper shape.
  HliEncoding hli_encoding = HliEncoding::Text;
  /// Pre-built external HLI store (e.g. an mmap'd .hlib written by an
  /// earlier front-end run).  When set, HLI generation/export is skipped
  /// and each function's entry is imported from the store on demand — a
  /// unit the compilation never touches is never decoded.  The store may
  /// be shared across concurrent compile_many workers (HliStore::get is
  /// thread-safe and decodes each unit exactly once); it must outlive the
  /// compilation.  hli_text/hli_bytes stay empty in this mode.
  const hli::HliStore* hli_store = nullptr;
  bool enable_cse = true;
  bool enable_constfold = true;  ///< Combine-style constant folding.
  bool enable_dce = true;  ///< Flow-style cleanup after CSE/LICM.
  bool enable_licm = true;
  bool enable_unroll = false;
  unsigned unroll_factor = 4;
  bool enable_sched = true;
  /// Post-first-pass stages of the -O2 pipeline: hard-register allocation
  /// (linear scan with spill code) followed by a second scheduling pass.
  /// Off by default so Table 2 measures exactly the paper's first pass.
  bool enable_regalloc = false;
  backend::RegAllocOptions regalloc;
  /// Latencies used by the scheduler's priority function.
  machine::MachineDesc sched_machine = machine::r10000();
  builder::BuildOptions hli_build;
};

struct ProgramStats {
  backend::DepStats sched;        ///< FIRST scheduling pass (Table 2).
  backend::DepStats sched2;       ///< Post-RA pass (when enabled).
  backend::RegAllocStats regalloc;
  backend::CseStats cse;
  backend::DceStats dce;
  backend::ConstFoldStats constfold;
  backend::LicmStats licm;
  backend::UnrollStats unroll;
  std::size_t hli_bytes = 0;
  std::size_t source_lines = 0;
  std::size_t mapped_items = 0;
  bool map_perfect = true;
  std::size_t verify_checks = 0;    ///< Invariant evaluations (VerifyMode on).
  std::size_t verify_findings = 0;  ///< Violations found across boundaries.
};

struct CompiledProgram {
  /// AST kept alive: RTL/HLI reference nothing in it after compilation,
  /// but tests inspect it.
  std::unique_ptr<frontend::Program> ast;
  /// The re-read tables the back-end imported (one entry per compiled
  /// function that had HLI; demand-driven, so an external-store unit the
  /// compilation never touched is absent).
  format::HliFile hli;
  /// Serialized HLI in the chosen encoding (size feeds Table 1); empty
  /// when an external hli_store supplied the tables.
  std::string hli_text;
  backend::RtlProgram rtl;  ///< Fully optimized program.
  ProgramStats stats;
  /// Per-boundary verifier reports under VerifyMode::Warn (empty if clean).
  std::string verify_log;
};

/// Compiles mini-C source through the full pipeline.  Throws
/// support::CompileError on front-end errors.
[[nodiscard]] CompiledProgram compile_source(std::string_view source,
                                             const PipelineOptions& options = {});

/// Runs the compiled program on the functional interpreter.
[[nodiscard]] backend::RunResult execute(const CompiledProgram& compiled,
                                         const std::string& entry = "main");

/// Runs the compiled program through a timing model; returns cycles.
struct SimResult {
  backend::RunResult run;
  std::uint64_t cycles = 0;
};
[[nodiscard]] SimResult simulate(const CompiledProgram& compiled,
                                 const machine::MachineDesc& machine,
                                 const std::string& entry = "main");

/// Counts non-empty source lines (the "code size" of Table 1).
[[nodiscard]] std::size_t count_source_lines(std::string_view source);

}  // namespace hli::driver
