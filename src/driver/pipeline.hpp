// End-to-end compilation pipeline, mirroring Figure 3:
//
//   source --front-end--> AST --[HLI gen]--> HLI text file
//     |                                         |
//     +--lowering--> RTL  <--import/mapping-----+
//                     |
//          CSE -> LICM -> unroll -> scheduling    (each natively or
//                     |                            HLI-assisted)
//          interpreter (correctness) + machine models (cycles)
//
// The back-end always works from the RE-READ HLI file, never from
// front-end memory: the serialized format is the only channel, as in the
// paper.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/irdep/classify.hpp"
#include "backend/constfold.hpp"
#include "backend/cse.hpp"
#include "backend/dce.hpp"
#include "backend/interp.hpp"
#include "backend/licm.hpp"
#include "backend/mapping.hpp"
#include "backend/regalloc.hpp"
#include "backend/sched.hpp"
#include "backend/unroll.hpp"
#include "frontend/contract.hpp"
#include "hli/store.hpp"
#include "machine/timing.hpp"
#include "support/telemetry.hpp"

namespace hli::driver {

/// When (and how hard) the HLI invariant verifier runs during compilation.
/// Warn/Fatal run `verify::verify_entry` at EVERY pass boundary — after
/// import/mapping and after each CSE/DCE/LICM/unroll maintenance batch —
/// with the differential conservativeness audit enabled, so a corrupted
/// table is caught at the boundary that corrupted it, not at the
/// scheduler that consumed it.
enum class VerifyMode : std::uint8_t {
  Off,   ///< No verification (production default).
  Warn,  ///< Findings accumulate in CompiledProgram::verify_log.
  Fatal, ///< First dirty boundary throws support::CompileError.
};

/// Encoding of the serialized front-end -> back-end HLI channel.  Defined
/// at the contract (the front-end owns the channel's serialization);
/// aliased here for the driver's option vocabulary.
using HliEncoding = frontend::HliEncoding;

/// Telemetry collection for one compilation (see docs/observability.md).
/// Both members default off: with neither set, compile_source installs no
/// recorder and the telemetry layer costs one dead TLS check per
/// instrumented event.
struct TelemetryOptions {
  /// Collect the typed counter registry into
  /// CompiledProgram::counters (per-function sets plus the program
  /// total).  Counter values are deterministic: byte-identical between a
  /// serial loop and compile_many --jobs N.
  bool counters = false;
  /// Emit per-pass/per-function Chrome trace_event spans into this
  /// tracer (not owned; may be shared across threads and compilations).
  telemetry::Tracer* tracer = nullptr;

  [[nodiscard]] bool enabled() const {
    return counters || tracer != nullptr;
  }
};

struct CachedUnit;
struct UnitCacheKey;

/// Content-addressed cache of fully-optimized units, consulted by
/// `compile_source` per function (the compile service's hot path —
/// src/service/cache.hpp is the production implementation).  A hit
/// splices the cached RTL/HLI/stats in and SKIPS mapping, every backend
/// pass, verification and planning for that unit; the contract is that a
/// hit is byte-identical to recompiling.  Implementations must be
/// thread-safe: compile_many workers share one cache.
class UnitCache {
 public:
  virtual ~UnitCache() = default;

  /// The cached unit for `key`, or nullptr on miss.  The returned value
  /// is immutable and must stay valid until the caller drops the
  /// shared_ptr (an LRU implementation may evict concurrently).
  [[nodiscard]] virtual std::shared_ptr<const CachedUnit> lookup(
      const UnitCacheKey& key) = 0;

  /// Publishes a freshly compiled unit.  Racing inserts for one key are
  /// benign: compilation is deterministic, so every candidate value is
  /// identical.
  virtual void insert(const UnitCacheKey& key, CachedUnit value) = 0;
};

/// Pipeline configuration.  Construct from a named preset and refine with
/// the fluent `with_*` layer:
///
///   auto options = driver::PipelineOptions::paper_table2()
///                      .with_verify(driver::VerifyMode::Fatal)
///                      .with_unroll(4);
///
/// `compile_source` calls `validate()` and rejects incoherent
/// combinations with actionable diagnostics.  The public fields remain
/// writable as a compatibility layer for existing callers; new code
/// should prefer the presets + `with_*` so every constructed
/// configuration passes through `validate()`'s vocabulary.
struct PipelineOptions {
  bool use_hli = true;       ///< Figure 5's flag_use_hli, across all passes.
  VerifyMode verify_hli = VerifyMode::Off;
  /// How the generated HLI is exported before the back-end re-imports it.
  /// Compilation output is byte-identical either way; Text stays the
  /// default so Table 1's HLI-size numbers keep their paper shape.
  HliEncoding hli_encoding = HliEncoding::Text;
  /// Pre-built external HLI store (e.g. an mmap'd .hlib written by an
  /// earlier front-end run).  When set, HLI generation/export is skipped
  /// and each function's entry is imported from the store on demand — a
  /// unit the compilation never touches is never decoded.  The store may
  /// be shared across concurrent compile_many workers (HliStore::get is
  /// thread-safe and decodes each unit exactly once); it must outlive the
  /// compilation.  hli_text/hli_bytes stay empty in this mode.
  const hli::HliStore* hli_store = nullptr;
  bool enable_cse = true;
  /// Answer each pass's HLI pair questions from one per-block (per-loop)
  /// BlockConflictMatrix — packed bitset planes bit-identical to the
  /// scalar view, so optimized RTL and all Table 2 statistics are
  /// byte-identical with this on or off; only query cost changes.  On by
  /// default; `--no-batch-queries` (tools) forces the scalar path.
  bool batch_queries = true;
  bool enable_constfold = true;  ///< Combine-style constant folding.
  bool enable_dce = true;  ///< Flow-style cleanup after CSE/LICM.
  bool enable_licm = true;
  bool enable_unroll = false;
  unsigned unroll_factor = 4;
  bool enable_sched = true;
  /// Independent-analyzer soundness audit (--audit-deps): at every pass
  /// boundary the independent RTL-level analyzer (src/analysis/irdep)
  /// re-derives dependences from the instruction stream alone and flags
  /// HLI claims of total independence it refutes with a proof.  Requires
  /// use_hli (there is nothing to audit otherwise).
  VerifyMode audit_deps = VerifyMode::Off;
  /// Hand CSE, LICM and both scheduling passes the independent analyzer
  /// as a dependence oracle: its answer is ANDed into every invalidation
  /// and DDG-edge test, sharpening configurations that lack HLI (the
  /// third column of the Table 2 experiment).
  bool irdep_fallback = false;
  /// Classify every loop as DOALL / DOACROSS(d) / Serial right after
  /// import/mapping — under irdep facts alone and under irdep united
  /// with the HLI tables; reports land in CompiledProgram::loop_reports.
  bool analyze_loops = false;
  /// Post-first-pass stages of the -O2 pipeline: hard-register allocation
  /// (linear scan with spill code) followed by a second scheduling pass.
  /// Off by default so Table 2 measures exactly the paper's first pass.
  bool enable_regalloc = false;
  backend::RegAllocOptions regalloc;
  /// Execution lanes for execute(): with a value > 1 the planner
  /// (backend/parexec) runs after the last transforming pass and
  /// annotates provably-parallel loops, which the interpreter then
  /// dispatches on a worker pool.  Purely an execution-time setting —
  /// the instruction stream and all compile statistics are unchanged —
  /// and the run's observable results (output hash, return value,
  /// dynamic instruction count) are byte-identical to serial.
  unsigned exec_threads = 1;
  /// Latencies used by the scheduler's priority function.
  machine::MachineDesc sched_machine = machine::r10000();
  /// Front-end selection + configuration (frontend/contract.hpp): the
  /// source language and the knobs that shape the generated HLI.
  frontend::FrontendOptions frontend_options;
  TelemetryOptions telemetry;
  /// Content-addressed compiled-unit cache (not owned; may be shared
  /// across compilations and compile_many workers).  Keys are
  /// (lowered-RTL fingerprint, HLI per-unit checksum, options
  /// fingerprint) — see UnitCacheKey — so an unchanged unit is never
  /// recompiled, and a changed unit or option set can never alias a
  /// stale result.  nullptr (the default) disables caching.
  UnitCache* unit_cache = nullptr;

  // -- Named presets ------------------------------------------------------

  /// The paper's instrumented experiment (§4, Table 2): HLI-assisted
  /// CSE/constfold/DCE/LICM and the FIRST scheduling pass, no unrolling,
  /// no register allocation, R10000 latencies.  Identical to a
  /// default-constructed PipelineOptions.
  [[nodiscard]] static PipelineOptions paper_table2();
  /// Everything on: all passes including unrolling (factor 4), hard
  /// registers + post-RA scheduling, and the HLIB binary interchange
  /// container for the front-end -> back-end channel.
  [[nodiscard]] static PipelineOptions production();
  /// Front-end only: generate + export HLI, lower and map, but run no
  /// back-end optimization or scheduling pass.  The result's hli_text is
  /// the interchange file a later back-end run would import.
  [[nodiscard]] static PipelineOptions frontend_only();

  // -- Fluent refinement (each returns a modified copy) -------------------

  [[nodiscard]] PipelineOptions with_hli(bool on) const;
  [[nodiscard]] PipelineOptions with_verify(VerifyMode mode) const;
  [[nodiscard]] PipelineOptions with_encoding(HliEncoding encoding) const;
  /// Imports from `store` instead of generating HLI; implies use_hli
  /// stays as-is (validate() rejects a store with use_hli off).
  [[nodiscard]] PipelineOptions with_store(const hli::HliStore* store) const;
  [[nodiscard]] PipelineOptions with_cse(bool on) const;
  /// Per-block conflict-matrix query batching (docs/query-batching.md).
  [[nodiscard]] PipelineOptions with_batch_queries(bool on) const;
  [[nodiscard]] PipelineOptions with_constfold(bool on) const;
  [[nodiscard]] PipelineOptions with_dce(bool on) const;
  [[nodiscard]] PipelineOptions with_licm(bool on) const;
  /// Enables unrolling at `factor` (>= 2; validate() rejects 0 and 1).
  [[nodiscard]] PipelineOptions with_unroll(unsigned factor = 4) const;
  [[nodiscard]] PipelineOptions without_unroll() const;
  [[nodiscard]] PipelineOptions with_sched(bool on) const;
  /// Independent-analyzer audit of HLI independence claims (--audit-deps).
  [[nodiscard]] PipelineOptions with_audit_deps(VerifyMode mode) const;
  /// Independent analyzer as a fallback dependence oracle for the passes.
  [[nodiscard]] PipelineOptions with_irdep_fallback(bool on = true) const;
  /// DOALL/DOACROSS loop classification into loop_reports.
  [[nodiscard]] PipelineOptions with_analyze_loops(bool on = true) const;
  [[nodiscard]] PipelineOptions with_regalloc(bool on) const;
  /// Parallel loop execution with `n` lanes (>= 1; validate() rejects 0).
  [[nodiscard]] PipelineOptions with_exec_threads(unsigned n) const;
  [[nodiscard]] PipelineOptions with_machine(
      const machine::MachineDesc& machine) const;
  /// Source language (--frontend=c|basic).
  [[nodiscard]] PipelineOptions with_language(frontend::Language language) const;
  /// Open-world pointer-parameter linkage (C-only; see
  /// frontend::FrontendOptions::open_world_params).
  [[nodiscard]] PipelineOptions with_open_world_params(bool on = true) const;
  /// Collect per-function + aggregate counters into the result.
  [[nodiscard]] PipelineOptions with_counters(bool on = true) const;
  [[nodiscard]] PipelineOptions with_tracer(telemetry::Tracer* tracer) const;
  /// Content-addressed unit cache (nullptr disables).
  [[nodiscard]] PipelineOptions with_unit_cache(UnitCache* cache) const;

  /// Coherence check: every returned string is one actionable diagnostic
  /// (empty vector = valid).  compile_source/compile_many run this and
  /// throw support::CompileError listing every finding.
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct ProgramStats {
  backend::DepStats sched;        ///< FIRST scheduling pass (Table 2).
  backend::DepStats sched2;       ///< Post-RA pass (when enabled).
  backend::RegAllocStats regalloc;
  backend::CseStats cse;
  backend::DceStats dce;
  backend::ConstFoldStats constfold;
  backend::LicmStats licm;
  backend::UnrollStats unroll;
  std::size_t hli_bytes = 0;
  std::size_t source_lines = 0;
  std::size_t mapped_items = 0;
  bool map_perfect = true;
  std::size_t verify_checks = 0;    ///< Invariant evaluations (VerifyMode on).
  std::size_t verify_findings = 0;  ///< Violations found across boundaries.
  std::size_t audit_checks = 0;     ///< irdep pair comparisons (--audit-deps).
  std::size_t audit_findings = 0;   ///< HLI independence claims refuted.

  /// Merges another stats record in (used per-unit: compile_source
  /// accumulates each function's deltas separately so a unit-cache hit
  /// can replay them exactly).
  ProgramStats& operator+=(const ProgramStats& other);
};

/// Identity of one compiled unit in the content-addressed cache.  All
/// three parts are load-bearing:
///   * `rtl_fp` — the unit's LOWERED (pre-optimization) instruction
///     stream, every field of every insn, plus the program's global
///     layout; when irdep is consulted (audit/fallback/analyze/parexec)
///     the whole lowered program is folded in, because interprocedural
///     summaries make the result depend on callee bodies.
///   * `hli_fp` — the HLIB per-unit checksum (or the text entry's
///     fingerprint): the serialized HLI channel's identity, which also
///     covers call-effect facts the builder derived from callees.
///   * `options_fp` — every compilation option that can change the
///     emitted RTL, statistics or telemetry (options_fingerprint).
struct UnitCacheKey {
  std::uint64_t rtl_fp = 0;
  std::uint64_t hli_fp = 0;
  std::uint64_t options_fp = 0;

  [[nodiscard]] bool operator==(const UnitCacheKey&) const = default;
  /// Stable mixdown for bucketing/sharding.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Everything a unit-cache hit must replay to make the warm compile
/// byte-identical to a cold one: the optimized instruction stream
/// (parexec plans included), the maintained HLI entry, the per-unit
/// statistics/counters/loop reports, and any warn-mode logs.
struct CachedUnit {
  backend::RtlFunction rtl;
  format::HliEntry hli;
  ProgramStats stats;
  telemetry::CounterSet counters;  ///< Empty unless counters were on.
  std::vector<irdep::LoopReport> loop_reports;
  std::string verify_log;
  std::string audit_log;

  /// Rough in-memory footprint, for byte-bounded LRU policies.
  [[nodiscard]] std::size_t approx_bytes() const;
};

/// Fingerprint of every PipelineOptions field that can alter a unit's
/// compiled RTL, stats, counters or reports.  Deliberately EXCLUDES the
/// tracer (timing only), the store pointer (content enters via
/// UnitCacheKey::hli_fp), exec_threads beyond plans-on/off, and the
/// cache pointer itself.
[[nodiscard]] std::uint64_t options_fingerprint(const PipelineOptions& options);

/// Typed telemetry counters for one compilation, collected when
/// TelemetryOptions::counters is set.  `total` holds every counter the
/// compilation incremented; `per_function` the same counters attributed
/// to each compiled function (in lowering order).  Values are
/// deterministic — merging per-program stats in input order reproduces a
/// serial run byte for byte, whatever --jobs was.
struct CompilationStats {
  telemetry::CounterSet total;
  std::vector<std::pair<std::string, telemetry::CounterSet>> per_function;

  /// Aggregation across programs: totals add, per-function lists
  /// concatenate (program order).
  CompilationStats& operator+=(const CompilationStats& other) {
    total += other.total;
    per_function.insert(per_function.end(), other.per_function.begin(),
                        other.per_function.end());
    return *this;
  }
};

struct CompiledProgram {
  /// The front-end's half of the compilation, as handed across the thin
  /// waist (docs/thin-waist.md): language, the source-position map, and
  /// the pure query hooks.  No AST survives compilation — the contract is
  /// the only channel.  The unit's rtl/hli_bytes payloads are moved into
  /// `rtl` / `hli_text` below rather than held twice.
  frontend::AnalyzedUnit unit;
  /// The re-read tables the back-end imported (one entry per compiled
  /// function that had HLI; demand-driven, so an external-store unit the
  /// compilation never touched is absent).
  format::HliFile hli;
  /// Serialized HLI in the chosen encoding (size feeds Table 1); empty
  /// when an external hli_store supplied the tables.
  std::string hli_text;
  backend::RtlProgram rtl;  ///< Fully optimized program.
  ProgramStats stats;
  /// Telemetry counters (empty unless options.telemetry.counters).
  CompilationStats counters;
  /// Per-boundary verifier reports under VerifyMode::Warn (empty if clean).
  std::string verify_log;
  /// Per-boundary irdep audit reports under audit_deps == Warn.
  std::string audit_log;
  /// DOALL/DOACROSS/Serial classification of every loop (analyze_loops),
  /// in lowering order; render with irdep::render_loop_table/_json.
  std::vector<irdep::LoopReport> loop_reports;
  /// Carried over from PipelineOptions so execute() runs the program the
  /// way it was planned (simulate() always runs serial: the timing
  /// models consume the one canonical instruction stream).
  unsigned exec_threads = 1;
};

/// Compiles mini-C source through the full pipeline.  Throws
/// support::CompileError on front-end errors.
[[nodiscard]] CompiledProgram compile_source(std::string_view source,
                                             const PipelineOptions& options = {});

/// Runs the compiled program on the functional interpreter.
[[nodiscard]] backend::RunResult execute(const CompiledProgram& compiled,
                                         const std::string& entry = "main");

/// Runs the compiled program through a timing model; returns cycles.
struct SimResult {
  backend::RunResult run;
  std::uint64_t cycles = 0;
};
[[nodiscard]] SimResult simulate(const CompiledProgram& compiled,
                                 const machine::MachineDesc& machine,
                                 const std::string& entry = "main");

/// Counts non-empty source lines (the "code size" of Table 1).
[[nodiscard]] std::size_t count_source_lines(std::string_view source);

}  // namespace hli::driver
