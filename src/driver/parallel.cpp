#include "driver/parallel.hpp"

#include <algorithm>
#include <exception>

#include "support/telemetry.hpp"

namespace hli::driver {

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained.
      job = std::move(queue_.front());
      queue_.pop();
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, unsigned jobs,
                  const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (jobs == 0) jobs = default_jobs();
  std::vector<std::exception_ptr> errors(count);
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  // Propagate the caller's telemetry sink across the fan-out: each task
  // records into its own CounterSet (the caller's Tracer is thread-safe
  // and shared directly), and the per-task sets merge back in task-index
  // order below — so the caller's totals are byte-identical to running
  // the same tasks in a serial loop, whatever the worker interleaving.
  telemetry::CounterSet* const parent = telemetry::current_counters();
  telemetry::Tracer* const tracer = telemetry::current_tracer();
  std::vector<telemetry::CounterSet> task_counters(
      parent != nullptr ? count : 0);
  {
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, count)));
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&task, &errors, &task_counters, parent, tracer, i] {
        const telemetry::ScopedRecorder recorder(
            parent != nullptr ? &task_counters[i] : nullptr, tracer,
            /*merge_to_parent=*/false);
        try {
          task(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  if (parent != nullptr) {
    for (const telemetry::CounterSet& counters : task_counters) {
      *parent += counters;
    }
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<CompiledProgram> compile_many(const std::vector<std::string>& sources,
                                          const PipelineOptions& options,
                                          unsigned jobs) {
  std::vector<CompiledProgram> out(sources.size());
  parallel_for(sources.size(), jobs, [&](std::size_t i) {
    out[i] = compile_source(sources[i], options);
  });
  return out;
}

CompilationStats aggregate_counters(
    const std::vector<CompiledProgram>& programs) {
  CompilationStats total;
  for (const CompiledProgram& program : programs) total += program.counters;
  return total;
}

}  // namespace hli::driver
