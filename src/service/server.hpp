// hlid compile server (docs/compile-service.md).
//
// Threading model:
//   * one ACCEPTOR thread polls the listen sockets (TCP on 127.0.0.1,
//     optionally AF_UNIX) and spawns a reader thread per connection;
//   * each READER decodes frames off its socket; cheap control frames
//     (Ping/Stats/Shutdown) are answered inline, compile Requests are
//     enqueued on the bounded job queue;
//   * WORKER threads drain the queue; each request batch is compiled
//     through the existing driver::compile_many (which fans units out
//     again), with the server's CompileCache installed as the
//     pipeline's unit cache and hot HliStores shared from the mmap
//     registry — decode-once across requests, not just within one.
//
// Responses are written under a per-connection mutex, so two workers
// finishing requests from one client never interleave frames.  A
// client that disconnects mid-compile just loses its reply: the send
// fails (EPIPE is suppressed), the work still populates the caches.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "hli/store.hpp"
#include "service/cache.hpp"
#include "service/wire.hpp"

namespace hli::service {

struct ServerOptions {
  /// TCP listener (always on): 127.0.0.1 only; port 0 = ephemeral, read
  /// the bound port back with Server::tcp_port().
  int port = 0;
  /// AF_UNIX listener path; empty = TCP only.  An existing socket file
  /// at the path is replaced.
  std::string unix_path;
  /// Request worker threads (0 = hardware concurrency).
  unsigned workers = 0;
  /// Jobs handed to compile_many per request batch (0 = hardware).
  unsigned compile_jobs = 1;
  /// Unit-cache bound (entries) and shard count.
  std::size_t cache_entries = 4096;
  std::size_t cache_shards = 8;
  /// Whole-response cache bound (entries).
  std::size_t response_entries = 128;
};

class Server {
 public:
  /// Binds and listens; throws ServiceError on socket failure.  Call
  /// start() to begin serving.
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  /// Stops accepting, unblocks every connection, drains and joins all
  /// threads.  Idempotent.
  void stop();

  /// Blocks until a client sends a Shutdown frame or stop() is called.
  void wait_for_shutdown();

  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return options_.unix_path;
  }

  /// Merged service.* counter snapshot (server + both cache tiers).
  [[nodiscard]] telemetry::CounterSet counters() const;
  /// Per-request wall-clock latencies, in completion order.
  [[nodiscard]] std::vector<std::uint64_t> latency_samples_us() const;

  [[nodiscard]] CompileCache& unit_cache() { return unit_cache_; }
  [[nodiscard]] ResponseCache& response_cache() { return response_cache_; }

  /// Units decoded so far by the shared store registered for `path`
  /// (0 when no request has opened it).  This is the decode-once-
  /// across-requests observable: it must not grow when a second request
  /// re-imports units the shared HliStore already decoded.
  [[nodiscard]] std::size_t store_units_decoded(const std::string& path);

 private:
  struct Connection {
    explicit Connection(int fd) : fd(fd) {}
    ~Connection();
    int fd;
    std::mutex write_mutex;
    std::atomic<bool> open{true};
  };

  struct Job {
    std::shared_ptr<Connection> conn;
    std::string payload;  ///< Request frame payload (TLV bytes).
  };

  void acceptor_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void handle_request(const Job& job);
  void send_frame(Connection& conn, FrameType type,
                  std::string_view payload);
  void send_error(Connection& conn, std::uint64_t request_id, ErrorCode code,
                  const std::string& message, bool have_request_id);
  /// The mmap'd store for `path`, opened once and shared across all
  /// requests/workers (HliStore decodes each unit exactly once).
  const hli::HliStore* store_for(const std::string& path);
  std::string counters_text() const;

  ServerOptions options_;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  int tcp_port_ = 0;

  CompileCache unit_cache_;
  ResponseCache response_cache_;
  mutable telemetry::AtomicCounterSet counters_;
  std::atomic<std::uint64_t> queue_depth_peak_{0};

  mutable std::mutex latency_mutex_;
  std::vector<std::uint64_t> latencies_us_;

  std::mutex store_mutex_;
  std::unordered_map<std::string, std::unique_ptr<hli::HliStore>> stores_;

  std::mutex queue_mutex_;
  std::condition_variable queue_ready_;
  std::deque<Job> queue_;

  std::mutex threads_mutex_;
  std::vector<std::thread> readers_;
  std::vector<std::weak_ptr<Connection>> connections_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace hli::service
