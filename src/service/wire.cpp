#include "service/wire.hpp"

#include <cstring>
#include <optional>

#include "backend/rtl.hpp"
#include "frontend/contract.hpp"
#include "support/string_utils.hpp"

namespace hli::service {

namespace {

void append_u32_le(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xffU));
  }
}

std::uint32_t read_u32_le(const char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload,
                         std::uint8_t version) {
  if (payload.size() > kMaxPayloadBytes) {
    throw ServiceError(ErrorCode::BadFrame, "payload exceeds frame limit");
  }
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic, sizeof(kMagic));
  frame.push_back(static_cast<char>(version));
  frame.push_back(static_cast<char>(type));
  frame.push_back(0);  // flags lo
  frame.push_back(0);  // flags hi
  append_u32_le(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

void append_field(std::string& payload, Field id, std::string_view value) {
  payload.push_back(static_cast<char>(id));
  append_u32_le(payload, static_cast<std::uint32_t>(value.size()));
  payload.append(value);
}

void append_u64_field(std::string& payload, Field id, std::uint64_t value) {
  std::string bytes;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<char>((value >> (8 * i)) & 0xffU));
  }
  append_field(payload, id, bytes);
}

void append_u16_field(std::string& payload, Field id, std::uint16_t value) {
  std::string bytes;
  bytes.push_back(static_cast<char>(value & 0xffU));
  bytes.push_back(static_cast<char>((value >> 8) & 0xffU));
  append_field(payload, id, bytes);
}

std::vector<Tlv> parse_fields(std::string_view payload) {
  std::vector<Tlv> fields;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    if (payload.size() - pos < 5) {
      throw ServiceError(ErrorCode::BadFrame, "truncated TLV header");
    }
    Tlv field;
    field.id = static_cast<Field>(static_cast<unsigned char>(payload[pos]));
    const std::uint32_t len = read_u32_le(payload.data() + pos + 1);
    pos += 5;
    if (payload.size() - pos < len) {
      throw ServiceError(ErrorCode::BadFrame, "truncated TLV value");
    }
    field.value.assign(payload.data() + pos, len);
    pos += len;
    fields.push_back(std::move(field));
  }
  return fields;
}

const Tlv* find_field(const std::vector<Tlv>& fields, Field id) {
  for (const Tlv& field : fields) {
    if (field.id == id) return &field;
  }
  return nullptr;
}

std::uint64_t decode_u64(const Tlv& field) {
  if (field.value.size() != 8) {
    throw ServiceError(ErrorCode::BadFrame, "u64 field with wrong width");
  }
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(field.value[i]))
             << (8 * i);
  }
  return value;
}

std::uint16_t decode_u16(const Tlv& field) {
  if (field.value.size() != 2) {
    throw ServiceError(ErrorCode::BadFrame, "u16 field with wrong width");
  }
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(field.value[0]) |
      (static_cast<unsigned char>(field.value[1]) << 8));
}

bool FrameDecoder::next(Frame& out) {
  if (buffer_.size() < kHeaderBytes) return false;
  if (std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    throw ServiceError(ErrorCode::BadMagic, "bad frame magic");
  }
  const auto version = static_cast<std::uint8_t>(buffer_[4]);
  if (version != kProtocolVersion) {
    throw ServiceError(ErrorCode::VersionMismatch,
                       "protocol version " + std::to_string(version) +
                           " != " + std::to_string(kProtocolVersion));
  }
  const std::uint32_t payload_len = read_u32_le(buffer_.data() + 8);
  if (payload_len > kMaxPayloadBytes) {
    throw ServiceError(ErrorCode::BadFrame, "announced payload too large");
  }
  if (buffer_.size() < kHeaderBytes + payload_len) return false;
  out.type = static_cast<FrameType>(static_cast<unsigned char>(buffer_[5]));
  out.payload.assign(buffer_.data() + kHeaderBytes, payload_len);
  buffer_.erase(0, kHeaderBytes + payload_len);
  return true;
}

// -- Options codec ----------------------------------------------------------

namespace {

const char* verify_mode_name(driver::VerifyMode mode) {
  switch (mode) {
    case driver::VerifyMode::Off: return "off";
    case driver::VerifyMode::Warn: return "warn";
    case driver::VerifyMode::Fatal: return "fatal";
  }
  return "off";
}

driver::VerifyMode parse_verify_mode(std::string_view value,
                                     std::string_view key) {
  if (value == "off") return driver::VerifyMode::Off;
  if (value == "warn") return driver::VerifyMode::Warn;
  if (value == "fatal") return driver::VerifyMode::Fatal;
  throw ServiceError(ErrorCode::BadRequest,
                     "bad value '" + std::string(value) + "' for option '" +
                         std::string(key) + "'");
}

bool parse_bool(std::string_view value, std::string_view key) {
  if (value == "1") return true;
  if (value == "0") return false;
  throw ServiceError(ErrorCode::BadRequest,
                     "bad value '" + std::string(value) + "' for option '" +
                         std::string(key) + "'");
}

unsigned parse_unsigned(std::string_view value, std::string_view key) {
  std::uint64_t parsed = 0;
  if (!support::parse_u64(value, parsed) || parsed > 0xffffffffULL) {
    throw ServiceError(ErrorCode::BadRequest,
                       "bad value '" + std::string(value) + "' for option '" +
                           std::string(key) + "'");
  }
  return static_cast<unsigned>(parsed);
}

void append_option(std::string& out, std::string_view key,
                   std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

// Exact match for string literals / verify_mode_name(): without it a
// `const char*` argument standard-converts to BOOL (pointer decay beats
// the user-defined string_view conversion) and encodes as "1".
void append_option(std::string& out, std::string_view key,
                   const char* value) {
  append_option(out, key, std::string_view(value));
}

void append_option(std::string& out, std::string_view key, bool value) {
  append_option(out, key, value ? std::string_view("1") : std::string_view("0"));
}

void append_option(std::string& out, std::string_view key, unsigned value) {
  append_option(out, key, std::string_view(std::to_string(value)));
}

}  // namespace

std::string encode_options(const driver::PipelineOptions& options) {
  std::string out;
  append_option(out, "use_hli", options.use_hli);
  append_option(out, "verify_hli", verify_mode_name(options.verify_hli));
  append_option(out, "encoding",
                options.hli_encoding == driver::HliEncoding::Binary
                    ? std::string_view("binary")
                    : std::string_view("text"));
  append_option(out, "batch_queries", options.batch_queries);
  append_option(out, "cse", options.enable_cse);
  append_option(out, "constfold", options.enable_constfold);
  append_option(out, "dce", options.enable_dce);
  append_option(out, "licm", options.enable_licm);
  append_option(out, "unroll", options.enable_unroll);
  append_option(out, "unroll_factor", options.unroll_factor);
  append_option(out, "sched", options.enable_sched);
  append_option(out, "audit_deps", verify_mode_name(options.audit_deps));
  append_option(out, "irdep_fallback", options.irdep_fallback);
  append_option(out, "analyze_loops", options.analyze_loops);
  append_option(out, "regalloc", options.enable_regalloc);
  append_option(out, "int_regs", options.regalloc.int_regs);
  append_option(out, "fp_regs", options.regalloc.fp_regs);
  append_option(out, "exec_threads", options.exec_threads);
  append_option(out, "machine", options.sched_machine.name);
  append_option(out, "frontend",
                frontend::language_name(options.frontend_options.language));
  append_option(out, "merge_classes",
                options.frontend_options.merge_equal_range_classes);
  append_option(out, "open_world", options.frontend_options.open_world_params);
  append_option(out, "counters", options.telemetry.counters);
  return out;
}

driver::PipelineOptions decode_options(std::string_view text) {
  driver::PipelineOptions options;
  for (const std::string_view line : support::split(text, '\n')) {
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ServiceError(ErrorCode::BadRequest,
                         "malformed option line '" + std::string(line) + "'");
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "use_hli") {
      options.use_hli = parse_bool(value, key);
    } else if (key == "verify_hli") {
      options.verify_hli = parse_verify_mode(value, key);
    } else if (key == "encoding") {
      if (value == "binary") {
        options.hli_encoding = driver::HliEncoding::Binary;
      } else if (value == "text") {
        options.hli_encoding = driver::HliEncoding::Text;
      } else {
        throw ServiceError(ErrorCode::BadRequest,
                           "bad value '" + std::string(value) +
                               "' for option 'encoding'");
      }
    } else if (key == "batch_queries") {
      options.batch_queries = parse_bool(value, key);
    } else if (key == "cse") {
      options.enable_cse = parse_bool(value, key);
    } else if (key == "constfold") {
      options.enable_constfold = parse_bool(value, key);
    } else if (key == "dce") {
      options.enable_dce = parse_bool(value, key);
    } else if (key == "licm") {
      options.enable_licm = parse_bool(value, key);
    } else if (key == "unroll") {
      options.enable_unroll = parse_bool(value, key);
    } else if (key == "unroll_factor") {
      options.unroll_factor = parse_unsigned(value, key);
    } else if (key == "sched") {
      options.enable_sched = parse_bool(value, key);
    } else if (key == "audit_deps") {
      options.audit_deps = parse_verify_mode(value, key);
    } else if (key == "irdep_fallback") {
      options.irdep_fallback = parse_bool(value, key);
    } else if (key == "analyze_loops") {
      options.analyze_loops = parse_bool(value, key);
    } else if (key == "regalloc") {
      options.enable_regalloc = parse_bool(value, key);
    } else if (key == "int_regs") {
      options.regalloc.int_regs = parse_unsigned(value, key);
    } else if (key == "fp_regs") {
      options.regalloc.fp_regs = parse_unsigned(value, key);
    } else if (key == "exec_threads") {
      options.exec_threads = parse_unsigned(value, key);
    } else if (key == "machine") {
      if (value == "r4600" || value == "R4600") {
        options.sched_machine = machine::r4600();
      } else if (value == "r10000" || value == "R10000") {
        options.sched_machine = machine::r10000();
      } else {
        throw ServiceError(ErrorCode::BadRequest,
                           "unknown machine '" + std::string(value) +
                               "' (wire options name machines: r4600, "
                               "r10000)");
      }
    } else if (key == "frontend") {
      const std::optional<frontend::Language> language =
          frontend::language_from_name(value);
      if (!language.has_value()) {
        throw ServiceError(ErrorCode::BadRequest,
                           "unknown front-end '" + std::string(value) +
                               "' (wire options name front-ends: c, basic)");
      }
      options.frontend_options.language = *language;
    } else if (key == "merge_classes") {
      options.frontend_options.merge_equal_range_classes = parse_bool(value, key);
    } else if (key == "open_world") {
      options.frontend_options.open_world_params = parse_bool(value, key);
    } else if (key == "counters") {
      options.telemetry.counters = parse_bool(value, key);
    } else {
      throw ServiceError(ErrorCode::BadRequest,
                         "unknown option key '" + std::string(key) + "'");
    }
  }
  return options;
}

// -- Deterministic result rendering -----------------------------------------

namespace {

void append_stat(std::string& out, std::string_view key, std::uint64_t value) {
  out.append(key);
  out.push_back('=');
  out.append(std::to_string(value));
  out.push_back('\n');
}

}  // namespace

std::string render_program_stats(const driver::CompiledProgram& compiled) {
  const driver::ProgramStats& s = compiled.stats;
  std::string out;
  append_stat(out, "source_lines", s.source_lines);
  append_stat(out, "hli_bytes", s.hli_bytes);
  append_stat(out, "mapped_items", s.mapped_items);
  append_stat(out, "map_perfect", s.map_perfect ? 1 : 0);
  append_stat(out, "verify_checks", s.verify_checks);
  append_stat(out, "verify_findings", s.verify_findings);
  append_stat(out, "audit_checks", s.audit_checks);
  append_stat(out, "audit_findings", s.audit_findings);
  append_stat(out, "cse.exprs_reused", s.cse.exprs_reused);
  append_stat(out, "cse.loads_reused", s.cse.loads_reused);
  append_stat(out, "cse.entries_purged_at_calls", s.cse.entries_purged_at_calls);
  append_stat(out, "cse.entries_kept_at_calls", s.cse.entries_kept_at_calls);
  append_stat(out, "cse.loads_deleted", s.cse.loads_deleted);
  append_stat(out, "constfold.folded", s.constfold.folded);
  append_stat(out, "constfold.branches_resolved", s.constfold.branches_resolved);
  append_stat(out, "dce.deleted", s.dce.deleted);
  append_stat(out, "dce.deleted_loads", s.dce.deleted_loads);
  append_stat(out, "licm.pure_hoisted", s.licm.pure_hoisted);
  append_stat(out, "licm.loads_hoisted", s.licm.loads_hoisted);
  append_stat(out, "licm.loads_blocked_native", s.licm.loads_blocked_native);
  append_stat(out, "licm.loads_blocked_hli", s.licm.loads_blocked_hli);
  append_stat(out, "unroll.loops_unrolled", s.unroll.loops_unrolled);
  append_stat(out, "unroll.loops_rejected", s.unroll.loops_rejected);
  append_stat(out, "unroll.copies_made", s.unroll.copies_made);
  const auto append_dep = [&out](std::string_view prefix,
                                 const backend::DepStats& d) {
    const std::string p(prefix);
    append_stat(out, p + ".mem_queries", d.mem_queries);
    append_stat(out, p + ".gcc_yes", d.gcc_yes);
    append_stat(out, p + ".hli_yes", d.hli_yes);
    append_stat(out, p + ".combined_yes", d.combined_yes);
    append_stat(out, p + ".call_queries", d.call_queries);
    append_stat(out, p + ".call_edges_native", d.call_edges_native);
    append_stat(out, p + ".call_edges_hli", d.call_edges_hli);
    append_stat(out, p + ".blocks", d.blocks);
    append_stat(out, p + ".scheduled_insns", d.scheduled_insns);
    append_stat(out, p + ".fallback_queries", d.fallback_queries);
    append_stat(out, p + ".fallback_pruned", d.fallback_pruned);
    append_stat(out, p + ".fallback_pruned_calls", d.fallback_pruned_calls);
  };
  append_dep("sched", s.sched);
  append_dep("sched2", s.sched2);
  append_stat(out, "regalloc.intervals", s.regalloc.intervals);
  append_stat(out, "regalloc.spilled", s.regalloc.spilled);
  append_stat(out, "regalloc.spill_loads", s.regalloc.spill_loads);
  append_stat(out, "regalloc.spill_stores", s.regalloc.spill_stores);
  for (const auto& [name, value] : compiled.counters.total.nonzero()) {
    out.append("counter.");
    out.append(name);
    out.push_back('=');
    out.append(std::to_string(value));
    out.push_back('\n');
  }
  return out;
}

std::string render_rtl(const driver::CompiledProgram& compiled) {
  std::string out;
  for (const backend::RtlFunction& func : compiled.rtl.functions) {
    out += backend::to_string(func);
  }
  return out;
}

}  // namespace hli::service
