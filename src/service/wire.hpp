// Wire protocol for the hlid compile service (docs/compile-service.md).
//
// Every message is one FRAME: a fixed 12-byte header followed by a
// payload of TLV fields.
//
//   header:  magic "HLSV" (4) | version u8 | type u8 | flags u16 LE (0)
//            | payload_len u32 LE
//   field:   id u8 | len u32 LE | len bytes
//
// The format is pinned by tests/service/protocol_golden_test.cpp: any
// byte-level change here must bump kProtocolVersion and update the
// golden frames deliberately.  A server receiving a frame whose version
// differs from its own rejects it with ErrorCode::VersionMismatch
// before looking at the payload.
//
// Pipeline options travel as a canonical `key=value` text document
// (encode_options/decode_options) rather than a struct dump, so the
// wire stays stable across PipelineOptions layout changes and a decoded
// request can be validated field by field.  Machines are named (r4600 /
// r10000): custom latency tables do not cross the wire.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "driver/pipeline.hpp"

namespace hli::service {

inline constexpr char kMagic[4] = {'H', 'L', 'S', 'V'};
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound a reader accepts for one payload; a header announcing
/// more is a protocol error (malformed or hostile frame), not an
/// allocation request.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

enum class FrameType : std::uint8_t {
  Request = 1,     ///< Compile a batch of sources.
  Response = 2,    ///< Per-source results, same order as the request.
  Error = 3,       ///< ErrorCode + message (+ RequestId when known).
  Ping = 4,        ///< Liveness probe; empty payload.
  Pong = 5,        ///< Reply to Ping; empty payload.
  Stats = 6,       ///< Ask for the server's service.* counter snapshot.
  StatsReply = 7,  ///< CountersText field with `name=value` lines.
  Shutdown = 8,    ///< Ask the server to stop accepting and exit.
};

enum class Field : std::uint8_t {
  RequestId = 1,     ///< u64 LE; echoed verbatim in the reply.
  Options = 2,       ///< Canonical options text (encode_options).
  Source = 3,        ///< One mini-C source; repeated, order significant.
  StorePath = 4,     ///< Server-side path of a shared .hli/.hlib store.
  RtlDump = 5,       ///< Response: one per source, backend::to_string concat.
  StatsText = 6,     ///< Response: one per source, render_program_stats.
  VerifyLog = 7,     ///< Response: one per source (may be empty).
  AuditLog = 8,      ///< Response: one per source (may be empty).
  ErrorCode = 9,     ///< u16 LE (Error frames).
  Message = 10,      ///< Human-readable error text (Error frames).
  CountersText = 11, ///< StatsReply: `name=value` lines, name-sorted.
};

enum class ErrorCode : std::uint16_t {
  BadMagic = 1,         ///< First four bytes are not "HLSV".
  VersionMismatch = 2,  ///< Frame version != server version.
  BadFrame = 3,         ///< Header/TLV structure malformed or truncated.
  BadRequest = 4,       ///< Well-formed frame, invalid content (options…).
  CompileFailed = 5,    ///< Front-end/pipeline CompileError; message has it.
  ShuttingDown = 6,     ///< Server is stopping; retry elsewhere.
  Internal = 7,         ///< Unexpected server-side failure.
};

/// Protocol-level failure (malformed frame, unexpected type, server
/// Error frame).  `code` is ErrorCode::Internal when the failure was
/// local (socket EOF mid-frame) rather than a server-reported error.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  [[nodiscard]] ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct Frame {
  FrameType type = FrameType::Ping;
  std::string payload;
};

struct Tlv {
  Field id;
  std::string value;
};

// -- Encoding ---------------------------------------------------------------

/// Header + payload as one contiguous byte string, version
/// kProtocolVersion.  `version` is overridable for the mismatch tests.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload,
                                       std::uint8_t version = kProtocolVersion);

void append_field(std::string& payload, Field id, std::string_view value);
void append_u64_field(std::string& payload, Field id, std::uint64_t value);
void append_u16_field(std::string& payload, Field id, std::uint16_t value);

/// Splits a payload into fields; throws ServiceError(BadFrame) on a
/// truncated TLV.  Unknown field ids are preserved (forward compat:
/// readers skip what they do not understand).
[[nodiscard]] std::vector<Tlv> parse_fields(std::string_view payload);

/// First field with `id`, or nullptr.
[[nodiscard]] const Tlv* find_field(const std::vector<Tlv>& fields, Field id);

[[nodiscard]] std::uint64_t decode_u64(const Tlv& field);
[[nodiscard]] std::uint16_t decode_u16(const Tlv& field);

// -- Incremental frame reading ----------------------------------------------

/// Byte-stream decoder: feed() arbitrary chunks, poll next().  Tolerates
/// any fragmentation; throws ServiceError on bad magic, version
/// mismatch, or an over-limit payload length, leaving the reader
/// unusable (the connection should be dropped).
class FrameDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }
  /// Extracts the next complete frame into `out`; false when more bytes
  /// are needed.
  [[nodiscard]] bool next(Frame& out);

 private:
  std::string buffer_;
};

// -- Options codec ----------------------------------------------------------

/// Canonical `key=value\n` text for every wire-transportable pipeline
/// option, keys in fixed order — two equal option sets always encode to
/// identical bytes (the response cache keys off this text).
[[nodiscard]] std::string encode_options(const driver::PipelineOptions& options);

/// Parses encode_options output.  Throws ServiceError(BadRequest) on an
/// unknown key, malformed value, or unknown machine name; fields absent
/// from the text keep their PipelineOptions defaults.
[[nodiscard]] driver::PipelineOptions decode_options(std::string_view text);

// -- Deterministic result rendering -----------------------------------------

/// Canonical text for one compiled program's statistics + telemetry
/// counters: every ProgramStats field as `key=value`, then the nonzero
/// counters as `counter.<name>=value`.  This is the byte-identity
/// surface the service tests and the hlifuzz service leg compare —
/// warm-vs-cold and service-vs-direct must match on exactly these
/// bytes.
[[nodiscard]] std::string render_program_stats(
    const driver::CompiledProgram& compiled);

/// The RTL dump surface: backend::to_string of every function,
/// concatenated with no separator — byte-identical to `hlic --dump-rtl`.
[[nodiscard]] std::string render_rtl(const driver::CompiledProgram& compiled);

}  // namespace hli::service
