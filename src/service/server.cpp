#include "service/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "driver/parallel.hpp"
#include "support/diagnostics.hpp"

namespace hli::service {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// Writes all of `bytes`; false on any failure (peer gone, fd closed).
bool send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_tcp(int port, int& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError(ErrorCode::Internal,
                       std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw ServiceError(ErrorCode::Internal, "bind/listen 127.0.0.1:" +
                                                std::to_string(port) + ": " +
                                                error);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr = {};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ServiceError(ErrorCode::Internal,
                       "unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError(ErrorCode::Internal,
                       std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // Replace a stale socket file.
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw ServiceError(ErrorCode::Internal,
                       "bind/listen " + path + ": " + error);
  }
  return fd;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      unit_cache_(options_.cache_entries, options_.cache_shards),
      response_cache_(options_.response_entries) {
  tcp_fd_ = listen_tcp(options_.port, tcp_port_);
  if (!options_.unix_path.empty()) {
    try {
      unix_fd_ = listen_unix(options_.unix_path);
    } catch (...) {
      ::close(tcp_fd_);
      throw;
    }
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  started_ = true;
  const unsigned workers =
      options_.workers != 0 ? options_.workers : driver::default_jobs();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void Server::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);

  // Unblock the acceptor (it polls with a timeout) and every reader
  // (shutdown() makes their blocking recv return 0).
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    for (const std::weak_ptr<Connection>& weak : connections_) {
      if (const std::shared_ptr<Connection> conn = weak.lock()) {
        ::shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::vector<std::thread> readers;
    {
      const std::lock_guard<std::mutex> lock(threads_mutex_);
      readers.swap(readers_);
    }
    for (std::thread& reader : readers) {
      if (reader.joinable()) reader.join();
    }
  }
  queue_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(options_.unix_path.c_str());
  }
  tcp_fd_ = unix_fd_ = -1;

  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void Server::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

telemetry::CounterSet Server::counters() const {
  telemetry::CounterSet merged = counters_.snapshot();
  merged += unit_cache_.counters();
  merged += response_cache_.counters();
  merged.add(service_counters().queue_depth_peak.id(),
             queue_depth_peak_.load(std::memory_order_relaxed));
  return merged;
}

std::vector<std::uint64_t> Server::latency_samples_us() const {
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  return latencies_us_;
}

std::string Server::counters_text() const {
  std::string out;
  for (const auto& [name, value] : counters().nonzero()) {
    out.append(name);
    out.push_back('=');
    out.append(std::to_string(value));
    out.push_back('\n');
  }
  return out;
}

void Server::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {tcp_fd_, POLLIN, 0};
    if (unix_fd_ >= 0) fds[nfds++] = {unix_fd_, POLLIN, 0};
    const int ready = ::poll(fds, nfds, 200 /*ms*/);
    if (ready <= 0) continue;
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto conn = std::make_shared<Connection>(client);
      const std::lock_guard<std::mutex> lock(threads_mutex_);
      if (stopping_.load(std::memory_order_acquire)) return;
      connections_.push_back(conn);
      readers_.emplace_back(
          [this, conn = std::move(conn)]() mutable { reader_loop(conn); });
    }
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  FrameDecoder decoder;
  char buffer[64 * 1024];
  Frame frame;
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF or error: client gone (possibly mid-frame) — fine.
    }
    try {
      decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      while (decoder.next(frame)) {
        switch (frame.type) {
          case FrameType::Ping:
            send_frame(*conn, FrameType::Pong, "");
            break;
          case FrameType::Stats: {
            std::string payload;
            append_field(payload, Field::CountersText, counters_text());
            send_frame(*conn, FrameType::StatsReply, payload);
            break;
          }
          case FrameType::Shutdown: {
            {
              const std::lock_guard<std::mutex> lock(shutdown_mutex_);
              shutdown_requested_ = true;
            }
            shutdown_cv_.notify_all();
            break;
          }
          case FrameType::Request: {
            std::unique_lock<std::mutex> lock(queue_mutex_);
            queue_.push_back(Job{conn, std::move(frame.payload)});
            const auto depth = static_cast<std::uint64_t>(queue_.size());
            lock.unlock();
            std::uint64_t peak =
                queue_depth_peak_.load(std::memory_order_relaxed);
            while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                                       peak, depth, std::memory_order_relaxed)) {
            }
            queue_ready_.notify_one();
            break;
          }
          default:
            counters_.add(service_counters().protocol_errors);
            send_error(*conn, 0, ErrorCode::BadFrame,
                       "unexpected frame type", false);
            break;
        }
      }
    } catch (const ServiceError& e) {
      // Bad magic, version mismatch, oversized or truncated TLV: report
      // once, then drop the connection — the byte stream is unusable.
      counters_.add(service_counters().protocol_errors);
      send_error(*conn, 0, e.code(), e.what(), false);
      break;
    }
  }
  conn->open.store(false, std::memory_order_release);
}

void Server::worker_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_ready_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping_ and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    handle_request(job);
  }
}

const hli::HliStore* Server::store_for(const std::string& path) {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  const auto it = stores_.find(path);
  if (it != stores_.end()) return it->second.get();
  return stores_.emplace(path, hli::HliStore::open_unique(path))
      .first->second.get();
}

std::size_t Server::store_units_decoded(const std::string& path) {
  const std::lock_guard<std::mutex> lock(store_mutex_);
  const auto it = stores_.find(path);
  return it == stores_.end() ? 0 : it->second->units_decoded();
}

void Server::handle_request(const Job& job) {
  const auto start = std::chrono::steady_clock::now();
  counters_.add(service_counters().requests);
  std::uint64_t request_id = 0;
  bool have_request_id = false;
  try {
    const std::vector<Tlv> fields = parse_fields(job.payload);
    if (const Tlv* id = find_field(fields, Field::RequestId)) {
      request_id = decode_u64(*id);
      have_request_id = true;
    }
    const Tlv* options_field = find_field(fields, Field::Options);
    if (options_field == nullptr) {
      throw ServiceError(ErrorCode::BadRequest, "request without options");
    }
    std::vector<std::string> sources;
    for (const Tlv& field : fields) {
      if (field.id == Field::Source) sources.push_back(field.value);
    }
    if (sources.empty()) {
      throw ServiceError(ErrorCode::BadRequest, "request without sources");
    }
    std::string store_path;
    if (const Tlv* sp = find_field(fields, Field::StorePath)) {
      store_path = sp->value;
    }

    // Request tier: an unchanged (options, store, sources) triple skips
    // even the front-end.  The body is cached WITHOUT the request id,
    // which is prepended fresh per reply.
    const std::uint64_t response_key =
        ResponseCache::key(options_field->value, store_path, sources);
    std::size_t cached_units = 0;
    if (const std::shared_ptr<const std::string> body =
            response_cache_.lookup(response_key, &cached_units)) {
      // Credit the units this hit avoided recompiling: the acceptance
      // counter service.cache_hits covers both tiers.
      counters_.add(service_counters().cache_hits, cached_units);
      std::string payload;
      append_u64_field(payload, Field::RequestId, request_id);
      payload += *body;
      send_frame(*job.conn, FrameType::Response, payload);
    } else {
      driver::PipelineOptions options = decode_options(options_field->value);
      if (!store_path.empty()) {
        options.hli_store = store_for(store_path);
      }
      options.unit_cache = &unit_cache_;
      const std::vector<driver::CompiledProgram> compiled =
          driver::compile_many(sources, options, options_.compile_jobs);
      std::string response_body;
      std::size_t units = 0;
      for (const driver::CompiledProgram& program : compiled) {
        append_field(response_body, Field::RtlDump, render_rtl(program));
        append_field(response_body, Field::StatsText,
                     render_program_stats(program));
        append_field(response_body, Field::VerifyLog, program.verify_log);
        append_field(response_body, Field::AuditLog, program.audit_log);
        units += program.hli.entries.size();
      }
      std::string payload;
      append_u64_field(payload, Field::RequestId, request_id);
      payload += response_body;
      response_cache_.insert(response_key, std::move(response_body), units);
      send_frame(*job.conn, FrameType::Response, payload);
    }
  } catch (const ServiceError& e) {
    counters_.add(service_counters().protocol_errors);
    send_error(*job.conn, request_id, e.code(), e.what(), have_request_id);
  } catch (const support::CompileError& e) {
    counters_.add(service_counters().compile_errors);
    send_error(*job.conn, request_id, ErrorCode::CompileFailed, e.what(),
               have_request_id);
  } catch (const std::exception& e) {
    counters_.add(service_counters().compile_errors);
    send_error(*job.conn, request_id, ErrorCode::Internal, e.what(),
               have_request_id);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  const std::lock_guard<std::mutex> lock(latency_mutex_);
  latencies_us_.push_back(static_cast<std::uint64_t>(elapsed.count()));
}

void Server::send_frame(Connection& conn, FrameType type,
                        std::string_view payload) {
  if (!conn.open.load(std::memory_order_acquire)) return;
  const std::string frame = encode_frame(type, payload);
  const std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (!send_all(conn.fd, frame)) {
    conn.open.store(false, std::memory_order_release);
  }
}

void Server::send_error(Connection& conn, std::uint64_t request_id,
                        ErrorCode code, const std::string& message,
                        bool have_request_id) {
  std::string payload;
  if (have_request_id) {
    append_u64_field(payload, Field::RequestId, request_id);
  }
  append_u16_field(payload, Field::ErrorCode,
                   static_cast<std::uint16_t>(code));
  append_field(payload, Field::Message, message);
  send_frame(conn, FrameType::Error, payload);
}

}  // namespace hli::service
