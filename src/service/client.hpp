// Thin blocking client for the hlid compile service: one socket, one
// outstanding request at a time.  `hlic --remote` and `hlid --client`
// are built on this, as are the tests/service/ harness and the hlifuzz
// service leg.  Throws ServiceError on protocol problems and on Error
// frames from the server (the server's ErrorCode is preserved).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driver/pipeline.hpp"
#include "service/wire.hpp"

namespace hli::service {

/// One compiled source's results, exactly as the server rendered them.
struct UnitResult {
  std::string rtl;         ///< render_rtl: byte-equal to `hlic --dump-rtl`.
  std::string stats;       ///< render_program_stats (stats + counters).
  std::string verify_log;  ///< VerifyMode::Warn findings ("" when clean).
  std::string audit_log;   ///< audit_deps == Warn findings ("" when clean).
};

struct CompileReply {
  std::uint64_t request_id = 0;
  std::vector<UnitResult> programs;  ///< One per request source, in order.
};

class Client {
 public:
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port);
  [[nodiscard]] static Client connect_unix(const std::string& path);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  /// Compiles `sources` remotely.  `store_path` names a server-side
  /// serialized HLI store to import from (empty: the server generates
  /// HLI per request, like a plain compile_source).
  [[nodiscard]] CompileReply compile(const std::vector<std::string>& sources,
                                     const driver::PipelineOptions& options,
                                     const std::string& store_path = "");
  /// Same, with pre-encoded options text (lets tests send bad options).
  [[nodiscard]] CompileReply compile_raw(const std::vector<std::string>& sources,
                                         const std::string& options_text,
                                         const std::string& store_path = "");

  /// The server's service.* counters as `name=value` lines.
  [[nodiscard]] std::string server_counters();
  /// Parses one counter out of server_counters() text (0 if absent).
  [[nodiscard]] static std::uint64_t counter_value(const std::string& text,
                                                   std::string_view name);

  [[nodiscard]] bool ping();
  /// Asks the server to shut down (fire and forget).
  void request_shutdown();

  /// Sends raw bytes as-is — protocol fault-injection hook for tests.
  void send_raw(std::string_view bytes);
  /// Reads the next frame (blocking); throws ServiceError on EOF.
  [[nodiscard]] Frame read_frame();

  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  Frame transact(FrameType type, std::string_view payload);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace hli::service
