#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "support/string_utils.hpp"

namespace hli::service {

namespace {

#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void send_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, kSendFlags);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw ServiceError(ErrorCode::Internal,
                         std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

Client Client::connect_tcp(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError(ErrorCode::Internal,
                       std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw ServiceError(ErrorCode::Internal, "bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw ServiceError(ErrorCode::Internal, "connect " + host + ":" +
                                                std::to_string(port) + ": " +
                                                error);
  }
  return Client(fd);
}

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr = {};
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ServiceError(ErrorCode::Internal,
                       "unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw ServiceError(ErrorCode::Internal,
                       std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    throw ServiceError(ErrorCode::Internal, "connect " + path + ": " + error);
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)),
      next_request_id_(other.next_request_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_raw(std::string_view bytes) { send_all(fd_, bytes); }

Frame Client::read_frame() {
  Frame frame;
  char buffer[64 * 1024];
  while (!decoder_.next(frame)) {
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw ServiceError(ErrorCode::Internal,
                         "connection closed by server");
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  return frame;
}

Frame Client::transact(FrameType type, std::string_view payload) {
  send_all(fd_, encode_frame(type, payload));
  Frame reply = read_frame();
  if (reply.type == FrameType::Error) {
    const std::vector<Tlv> fields = parse_fields(reply.payload);
    ErrorCode code = ErrorCode::Internal;
    std::string message = "server error";
    if (const Tlv* c = find_field(fields, Field::ErrorCode)) {
      code = static_cast<ErrorCode>(decode_u16(*c));
    }
    if (const Tlv* m = find_field(fields, Field::Message)) message = m->value;
    throw ServiceError(code, message);
  }
  return reply;
}

CompileReply Client::compile(const std::vector<std::string>& sources,
                             const driver::PipelineOptions& options,
                             const std::string& store_path) {
  return compile_raw(sources, encode_options(options), store_path);
}

CompileReply Client::compile_raw(const std::vector<std::string>& sources,
                                 const std::string& options_text,
                                 const std::string& store_path) {
  std::string payload;
  const std::uint64_t request_id = next_request_id_++;
  append_u64_field(payload, Field::RequestId, request_id);
  append_field(payload, Field::Options, options_text);
  if (!store_path.empty()) {
    append_field(payload, Field::StorePath, store_path);
  }
  for (const std::string& source : sources) {
    append_field(payload, Field::Source, source);
  }
  const Frame reply = transact(FrameType::Request, payload);
  if (reply.type != FrameType::Response) {
    throw ServiceError(ErrorCode::BadFrame, "expected Response frame");
  }
  const std::vector<Tlv> fields = parse_fields(reply.payload);
  CompileReply out;
  if (const Tlv* id = find_field(fields, Field::RequestId)) {
    out.request_id = decode_u64(*id);
  }
  if (out.request_id != request_id) {
    throw ServiceError(ErrorCode::BadFrame,
                       "response for a different request id");
  }
  for (const Tlv& field : fields) {
    switch (field.id) {
      case Field::RtlDump:
        out.programs.emplace_back().rtl = field.value;
        break;
      case Field::StatsText:
        if (out.programs.empty()) {
          throw ServiceError(ErrorCode::BadFrame, "stats before rtl dump");
        }
        out.programs.back().stats = field.value;
        break;
      case Field::VerifyLog:
        if (out.programs.empty()) {
          throw ServiceError(ErrorCode::BadFrame, "log before rtl dump");
        }
        out.programs.back().verify_log = field.value;
        break;
      case Field::AuditLog:
        if (out.programs.empty()) {
          throw ServiceError(ErrorCode::BadFrame, "log before rtl dump");
        }
        out.programs.back().audit_log = field.value;
        break;
      default:
        break;  // RequestId handled above; ignore unknown fields.
    }
  }
  if (out.programs.size() != sources.size()) {
    throw ServiceError(ErrorCode::BadFrame,
                       "response program count mismatch");
  }
  return out;
}

std::string Client::server_counters() {
  const Frame reply = transact(FrameType::Stats, "");
  if (reply.type != FrameType::StatsReply) {
    throw ServiceError(ErrorCode::BadFrame, "expected StatsReply frame");
  }
  const std::vector<Tlv> fields = parse_fields(reply.payload);
  if (const Tlv* text = find_field(fields, Field::CountersText)) {
    return text->value;
  }
  return "";
}

std::uint64_t Client::counter_value(const std::string& text,
                                    std::string_view name) {
  for (const std::string_view line : support::split(text, '\n')) {
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    if (line.substr(0, eq) != name) continue;
    std::uint64_t value = 0;
    if (support::parse_u64(line.substr(eq + 1), value)) return value;
  }
  return 0;
}

bool Client::ping() {
  try {
    return transact(FrameType::Ping, "").type == FrameType::Pong;
  } catch (const ServiceError&) {
    return false;
  }
}

void Client::request_shutdown() {
  send_all(fd_, encode_frame(FrameType::Shutdown, ""));
}

}  // namespace hli::service
