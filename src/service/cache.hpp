// Content-addressed caches for the hlid compile service.
//
//   * CompileCache — the production driver::UnitCache: compiled units
//     keyed by (lowered-RTL fp, HLIB per-unit checksum, options fp),
//     sharded by key hash so concurrent compile_many workers mostly
//     touch disjoint locks, each shard an LRU bounded in entries.  This
//     is the layer that makes an unchanged unit never recompile: a hit
//     splices byte-identical RTL/HLI/stats back into the pipeline.
//   * ResponseCache — whole-request memoization keyed by (options text,
//     store path, source bytes): an unchanged REQUEST skips even the
//     front-end and lowering, which is what pushes the warm/cold
//     latency ratio past the 5x acceptance bar.  Sound because service
//     responses are pure functions of exactly those inputs.
//
// Both caches account into `service.*` telemetry counters
// (docs/observability.md) through one shared AtomicCounterSet.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "driver/pipeline.hpp"
#include "support/telemetry.hpp"

namespace hli::service {

/// Handles to the `service.*` counters (registered once, idempotent).
struct ServiceCounters {
  telemetry::Counter cache_hits;        ///< Unit-cache hits.
  telemetry::Counter cache_misses;      ///< Unit-cache misses.
  telemetry::Counter cache_evictions;   ///< Units evicted by LRU pressure.
  telemetry::Counter units_compiled;    ///< Units compiled cold (inserted).
  telemetry::Counter request_hits;      ///< Whole-response cache hits.
  telemetry::Counter request_evictions; ///< Responses evicted.
  telemetry::Counter requests;          ///< Compile requests served.
  telemetry::Counter compile_errors;    ///< Requests failed in the pipeline.
  telemetry::Counter protocol_errors;   ///< Malformed/rejected frames.
  telemetry::Counter queue_depth_peak;  ///< High-water mark of queued work.
};

[[nodiscard]] const ServiceCounters& service_counters();

/// Sharded LRU unit cache.  Thread-safe; entries are handed out as
/// shared_ptr so an evicted unit stays valid for readers mid-splice.
class CompileCache : public driver::UnitCache {
 public:
  /// `max_entries` total across shards (minimum 1).  `shards` is clamped
  /// to [1, max_entries] so a cache-size-1 configuration still evicts
  /// globally, not per-shard.
  explicit CompileCache(std::size_t max_entries, std::size_t shards = 8);

  [[nodiscard]] std::shared_ptr<const driver::CachedUnit> lookup(
      const driver::UnitCacheKey& key) override;
  void insert(const driver::UnitCacheKey& key,
              driver::CachedUnit value) override;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Snapshot of the service.* counters this cache accounted.
  [[nodiscard]] telemetry::CounterSet counters() const {
    return counters_.snapshot();
  }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct KeyHash {
    std::size_t operator()(const driver::UnitCacheKey& key) const {
      return static_cast<std::size_t>(key.hash());
    }
  };
  struct Entry {
    driver::UnitCacheKey key;
    std::shared_ptr<const driver::CachedUnit> unit;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<driver::UnitCacheKey, std::list<Entry>::iterator,
                       KeyHash>
        by_key;
    std::size_t capacity = 1;
  };

  Shard& shard_for(const driver::UnitCacheKey& key);

  /// Declared BEFORE counters_: member init order registers the
  /// service.* ids first, so the AtomicCounterSet (sized at construction
  /// to the registry) has slots for them.
  const ServiceCounters& ids_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable telemetry::AtomicCounterSet counters_;
};

/// LRU memo of fully-encoded response payloads.  `unit_count` rides
/// along so a request-tier hit still advances service.cache_hits by the
/// number of units it avoided recompiling (the acceptance counter the
/// CI warm pass asserts on covers both tiers).
class ResponseCache {
 public:
  explicit ResponseCache(std::size_t max_entries);

  /// Stable key over everything a response depends on.
  [[nodiscard]] static std::uint64_t key(std::string_view options_text,
                                         std::string_view store_path,
                                         const std::vector<std::string>& sources);

  /// The cached response payload for `key`, or empty shared_ptr.
  [[nodiscard]] std::shared_ptr<const std::string> lookup(
      std::uint64_t key, std::size_t* unit_count = nullptr);
  void insert(std::uint64_t key, std::string payload, std::size_t unit_count);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] telemetry::CounterSet counters() const {
    return counters_.snapshot();
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const std::string> payload;
    std::size_t unit_count = 0;
  };

  /// Same ordering constraint as CompileCache::ids_.
  const ServiceCounters& ids_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> by_key_;
  std::size_t capacity_;
  mutable telemetry::AtomicCounterSet counters_;
};

}  // namespace hli::service
