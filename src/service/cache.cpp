#include "service/cache.hpp"

#include <algorithm>

#include "support/string_utils.hpp"

namespace hli::service {

const ServiceCounters& service_counters() {
  static const ServiceCounters counters = {
      telemetry::counter("service.cache_hits"),
      telemetry::counter("service.cache_misses"),
      telemetry::counter("service.cache_evictions"),
      telemetry::counter("service.units_compiled"),
      telemetry::counter("service.request_hits"),
      telemetry::counter("service.request_evictions"),
      telemetry::counter("service.requests"),
      telemetry::counter("service.compile_errors"),
      telemetry::counter("service.protocol_errors"),
      telemetry::counter("service.queue_depth_peak"),
  };
  return counters;
}

CompileCache::CompileCache(std::size_t max_entries, std::size_t shards)
    : ids_(service_counters()),  // Registers ids before counters_ sizes.
      capacity_(std::max<std::size_t>(1, max_entries)) {
  const std::size_t shard_count =
      std::clamp<std::size_t>(shards, 1, capacity_);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute capacity; earlier shards take the remainder.
    shard->capacity = capacity_ / shard_count +
                      (i < capacity_ % shard_count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

CompileCache::Shard& CompileCache::shard_for(const driver::UnitCacheKey& key) {
  return *shards_[key.hash() % shards_.size()];
}

std::shared_ptr<const driver::CachedUnit> CompileCache::lookup(
    const driver::UnitCacheKey& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) {
    counters_.add(service_counters().cache_misses);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  counters_.add(service_counters().cache_hits);
  return it->second->unit;
}

void CompileCache::insert(const driver::UnitCacheKey& key,
                          driver::CachedUnit value) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  counters_.add(service_counters().units_compiled);
  const auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    // Racing insert for the same key: compilation is deterministic, so
    // the existing value is identical — just refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{
      key, std::make_shared<const driver::CachedUnit>(std::move(value))});
  shard.by_key.emplace(key, shard.lru.begin());
  while (shard.lru.size() > shard.capacity) {
    shard.by_key.erase(shard.lru.back().key);
    shard.lru.pop_back();
    counters_.add(service_counters().cache_evictions);
  }
}

std::size_t CompileCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

std::uint64_t CompileCache::hits() const {
  return counters_.value(service_counters().cache_hits);
}

std::uint64_t CompileCache::misses() const {
  return counters_.value(service_counters().cache_misses);
}

std::uint64_t CompileCache::evictions() const {
  return counters_.value(service_counters().cache_evictions);
}

ResponseCache::ResponseCache(std::size_t max_entries)
    : ids_(service_counters()),
      capacity_(std::max<std::size_t>(1, max_entries)) {}

std::uint64_t ResponseCache::key(std::string_view options_text,
                                 std::string_view store_path,
                                 const std::vector<std::string>& sources) {
  std::uint64_t h = support::fnv1a64(options_text);
  h = support::fnv1a64(store_path, support::fnv1a64_mix(store_path.size(), h));
  h = support::fnv1a64_mix(sources.size(), h);
  for (const std::string& source : sources) {
    h = support::fnv1a64(source, support::fnv1a64_mix(source.size(), h));
  }
  return h;
}

std::shared_ptr<const std::string> ResponseCache::lookup(
    std::uint64_t key, std::size_t* unit_count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  counters_.add(service_counters().request_hits);
  if (unit_count != nullptr) *unit_count = it->second->unit_count;
  return it->second->payload;
}

void ResponseCache::insert(std::uint64_t key, std::string payload,
                           std::size_t unit_count) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (by_key_.count(key) != 0) return;  // Racing duplicate; keep first.
  lru_.push_front(Entry{
      key, std::make_shared<const std::string>(std::move(payload)),
      unit_count});
  by_key_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    counters_.add(service_counters().request_evictions);
  }
}

std::size_t ResponseCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace hli::service
