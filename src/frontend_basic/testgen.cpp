#include "frontend_basic/testgen.hpp"

#include "frontend/sema.hpp"
#include "frontend_basic/print.hpp"
#include "support/diagnostics.hpp"

namespace hli::testing {

std::uint32_t basic_expressible(std::uint32_t features) {
  return features & ~(static_cast<std::uint32_t>(kPointerParams) |
                      static_cast<std::uint32_t>(kIncDec));
}

std::string generate_basic_source(const GenOptions& options) {
  const std::string c_source = generate_source(options);
  support::DiagnosticEngine diags;
  frontend::Program prog = frontend::compile_to_ast(c_source, diags);
  return frontend_basic::print_basic(prog);
}

}  // namespace hli::testing
