// AST -> BASIC source renderer, the mirror of frontend/print.hpp: the
// printed text of a BASIC-expressible Program re-parses (through the
// BASIC front-end) to the same tree the mini-C printer's output
// re-parses to through the C front-end.  The two renderers are kept
// line-aligned construct for construct — a statement printed on line N
// by one lands on line N in the other — because the HLI line table is
// keyed by source line and cross-frontend equality tests compare HLI
// bytes directly.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace hli::frontend_basic {

/// Renders a whole translation unit as BASIC: globals first, then
/// functions in declaration order (externs as DECLARE lines).  Throws
/// support::CompileError on constructs the BASIC surface cannot express
/// (pointers, ++/--, assignments nested inside expressions).
[[nodiscard]] std::string print_basic(const frontend::Program& prog);

}  // namespace hli::frontend_basic
