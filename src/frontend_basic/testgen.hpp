// BASIC leg of the seeded program generator (frontend/testgen.hpp): the
// same generated program, re-rendered in the BASIC dialect.  Like the C
// generator's header this one is AST-free — it is one of the two
// test-generation headers scripts/check_layering.sh whitelists outside
// the front-end layer, so harnesses (hlifuzz) can fuzz the BASIC
// front-end without ever seeing an AST node.
#pragma once

#include <cstdint>
#include <string>

#include "frontend/testgen.hpp"

namespace hli::testing {

/// The BASIC-expressible subset of a feature mask: everything except
/// pointer parameters and ++/-- (the dialect has neither; testgen falls
/// back to `i = i + 1` steps when kIncDec is masked).
[[nodiscard]] std::uint32_t basic_expressible(std::uint32_t features);

/// Generates the program for (seed, features) and renders it as BASIC
/// source: the C rendering is parsed back to the shared front-end IR and
/// printed through print_basic, so both renderings lower to byte-
/// identical HLI and RTL.  `options.features` must already be
/// BASIC-expressible (see basic_expressible); throws
/// support::CompileError otherwise.
[[nodiscard]] std::string generate_basic_source(const GenOptions& options);

}  // namespace hli::testing
