// The BASIC front-end (docs/thin-waist.md): a small BASIC/Fortran-ish
// array language — counted FOR loops, multi-dimensional arrays, no
// pointers — that feeds the exact same mid-level representation the
// mini-C front-end produces, and therefore the same HLI generator,
// lowering, back-end, verifier and service.  Keywords are recognized in
// any case; identifiers are case-sensitive so names survive the
// print_basic round trip byte-for-byte.
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "support/diagnostics.hpp"

namespace hli::frontend_basic {

/// Lex + parse + semantic analysis.  Returns the shared front-end IR
/// (sema-checked, typed); throws support::CompileError on any diagnostic.
[[nodiscard]] frontend::Program compile_to_ast(std::string_view source,
                                               support::DiagnosticEngine& diags);

}  // namespace hli::frontend_basic
