#include "frontend_basic/print.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace hli::frontend_basic {

namespace {

using namespace frontend;

const char* binary_op_token(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Rem: return "MOD";
    case BinaryOp::And: return "AND";
    case BinaryOp::Or: return "OR";
    case BinaryOp::Xor: return "XOR";
    case BinaryOp::Shl: return "<<";
    case BinaryOp::Shr: return ">>";
    case BinaryOp::LogAnd: return "ANDALSO";
    case BinaryOp::LogOr: return "ORELSE";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "=";
    case BinaryOp::Ne: return "<>";
  }
  return "?";
}

const char* assign_op_token(AssignOp op) {
  switch (op) {
    case AssignOp::None: return "=";
    case AssignOp::Add: return "+=";
    case AssignOp::Sub: return "-=";
    case AssignOp::Mul: return "*=";
    case AssignOp::Div: return "/=";
  }
  return "=";
}

/// Same %.17g discipline as the C printer; the suffix-less form means a
/// SINGLE literal loses its precision flag on both sides identically.
std::string float_token(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  std::string text = buf;
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

[[noreturn]] void unsupported(const char* what) {
  throw support::CompileError(std::string("BASIC printer: ") + what +
                              " cannot be expressed in the BASIC dialect");
}

const char* type_keyword(const Type& type) {
  switch (type.kind()) {
    case TypeKind::Int: return "INTEGER";
    case TypeKind::Float: return "SINGLE";
    case TypeKind::Double: return "DOUBLE";
    default: unsupported("this type");
  }
}

class Printer {
 public:
  [[nodiscard]] std::string render(const Program& prog) {
    for (const VarDecl* global : prog.globals) {
      out_ += "DIM " + declarator(*global->type(), global->name());
      if (global->init != nullptr) {
        out_ += " = ";
        expr(*global->init);
      }
      out_ += "\n";
    }
    for (const FuncDecl* func : prog.functions) {
      function(*func);
    }
    return std::move(out_);
  }

 private:
  /// `name AS INTEGER` / `name(d1, d2) AS DOUBLE`; dimensions unwrap
  /// outermost first, matching the C declarator's `int a[d1][d2]`.
  std::string declarator(const Type& type, const std::string& name) {
    const Type* base = &type;
    std::string dims;
    while (base->is_array()) {
      if (!dims.empty()) dims += ", ";
      dims += std::to_string(base->array_size());
      base = base->element();
    }
    std::string text = name;
    if (!dims.empty()) text += "(" + dims + ")";
    return text + " AS " + type_keyword(*base);
  }

  void function(const FuncDecl& func) {
    const bool is_sub = func.return_type()->kind() == TypeKind::Void;
    if (func.is_extern()) out_ += "DECLARE ";
    out_ += is_sub ? "SUB " : "FUNCTION ";
    out_ += func.name() + "(";
    for (std::size_t i = 0; i < func.params.size(); ++i) {
      if (i != 0) out_ += ", ";
      out_ += declarator(*func.params[i]->type(), func.params[i]->name());
    }
    out_ += ")";
    if (!is_sub) {
      out_ += " AS ";
      out_ += type_keyword(*func.return_type());
    }
    out_ += "\n";
    if (func.is_extern()) return;
    ++indent_;
    for (const Stmt* s : func.body->stmts) stmt(*s);
    --indent_;
    out_ += is_sub ? "END SUB\n" : "END FUNCTION\n";
  }

  void stmt(const Stmt& s) {
    switch (s.kind()) {
      case StmtKind::Decl: {
        const VarDecl& decl = *static_cast<const DeclStmt&>(s).decl;
        pad();
        out_ += "DIM " + declarator(*decl.type(), decl.name());
        if (decl.init != nullptr) {
          out_ += " = ";
          expr(*decl.init);
        }
        out_ += "\n";
        return;
      }
      case StmtKind::Expr:
        pad();
        statement_expr(*static_cast<const ExprStmt&>(s).expr);
        out_ += "\n";
        return;
      case StmtKind::Block: {
        // Flattened exactly like the C printer: braces only ever come
        // from control flow, so line counts stay aligned.
        for (const Stmt* inner : static_cast<const BlockStmt&>(s).stmts) {
          stmt(*inner);
        }
        return;
      }
      case StmtKind::If: {
        const auto& ifs = static_cast<const IfStmt&>(s);
        pad();
        out_ += "IF ";
        expr(*ifs.cond);
        out_ += " THEN\n";
        body_of(ifs.then_stmt);
        if (ifs.else_stmt != nullptr) {
          pad();
          out_ += "ELSE\n";
          body_of(ifs.else_stmt);
        }
        pad();
        out_ += "END IF\n";
        return;
      }
      case StmtKind::While: {
        const auto& loop = static_cast<const WhileStmt&>(s);
        pad();
        out_ += "DO WHILE ";
        expr(*loop.cond);
        out_ += "\n";
        loops_.push_back("DO");
        body_of(loop.body);
        loops_.pop_back();
        pad();
        out_ += "LOOP\n";
        return;
      }
      case StmtKind::For: {
        const auto& loop = static_cast<const ForStmt&>(s);
        pad();
        out_ += "FOR";
        if (loop.init != nullptr) {
          out_ += " ";
          for_init(*loop.init);
        }
        if (loop.cond != nullptr) {
          out_ += " WHILE ";
          expr(*loop.cond);
        }
        if (loop.step != nullptr) {
          out_ += " STEP ";
          statement_expr(*loop.step);
        }
        out_ += "\n";
        loops_.push_back("FOR");
        body_of(loop.body);
        loops_.pop_back();
        pad();
        out_ += "NEXT\n";
        return;
      }
      case StmtKind::Return: {
        const auto& ret = static_cast<const ReturnStmt&>(s);
        pad();
        out_ += "RETURN";
        if (ret.value != nullptr) {
          out_ += " ";
          expr(*ret.value);
        }
        out_ += "\n";
        return;
      }
      case StmtKind::Break:
        pad();
        out_ += "EXIT ";
        out_ += innermost_loop();
        out_ += "\n";
        return;
      case StmtKind::Continue:
        pad();
        out_ += "CONTINUE ";
        out_ += innermost_loop();
        out_ += "\n";
        return;
    }
  }

  [[nodiscard]] const char* innermost_loop() const {
    if (loops_.empty()) unsupported("break/continue outside a loop");
    return loops_.back();
  }

  /// FOR init clause.  A DeclStmt prints as `name = init` and re-parses
  /// as a fresh loop variable (the name is not in scope); an ExprStmt
  /// assignment prints identically and re-parses as a plain assignment
  /// because the variable IS in scope.  Both re-parses need the loop
  /// variable to be INTEGER, which is all the FOR grammar creates.
  void for_init(const Stmt& init) {
    if (init.kind() == StmtKind::Decl) {
      const VarDecl& decl = *static_cast<const DeclStmt&>(init).decl;
      if (decl.type()->kind() != TypeKind::Int) {
        unsupported("a non-INTEGER loop variable");
      }
      if (decl.init == nullptr) unsupported("a FOR variable without an init");
      out_ += decl.name() + " = ";
      expr(*decl.init);
      return;
    }
    statement_expr(*static_cast<const ExprStmt&>(init).expr);
  }

  /// Statement position: the only place assignments may appear (the
  /// BASIC `=` means equality everywhere inside an expression).
  void statement_expr(const Expr& e) {
    if (e.kind() == ExprKind::Assign) {
      const auto& asg = static_cast<const AssignExpr&>(e);
      expr(*asg.lhs);
      out_ += " ";
      out_ += assign_op_token(asg.op);
      out_ += " ";
      expr(*asg.rhs);
      return;
    }
    if (e.kind() == ExprKind::Call) {
      expr(e);
      return;
    }
    unsupported("a bare expression statement");
  }

  void expr(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::IntLiteral: {
        const auto& lit = static_cast<const IntLiteralExpr&>(e);
        if (lit.value < 0) {
          out_ += "(" + std::to_string(lit.value) + ")";
        } else {
          out_ += std::to_string(lit.value);
        }
        return;
      }
      case ExprKind::FloatLiteral: {
        const auto& lit = static_cast<const FloatLiteralExpr&>(e);
        if (lit.value < 0) {
          out_ += "(" + float_token(lit.value) + ")";
        } else {
          out_ += float_token(lit.value);
        }
        return;
      }
      case ExprKind::VarRef:
        out_ += static_cast<const VarRefExpr&>(e).name;
        return;
      case ExprKind::ArrayIndex: {
        // Flatten the chain: (a[i])[j] prints as a(i, j).
        std::vector<const Expr*> indices;
        const Expr* base = &e;
        while (base->kind() == ExprKind::ArrayIndex) {
          const auto& ix = static_cast<const ArrayIndexExpr&>(*base);
          indices.push_back(ix.index);
          base = ix.base;
        }
        if (base->kind() != ExprKind::VarRef) {
          unsupported("a subscript on a non-variable base");
        }
        expr(*base);
        out_ += "(";
        for (std::size_t i = indices.size(); i-- > 0;) {
          expr(*indices[i]);
          if (i != 0) out_ += ", ";
        }
        out_ += ")";
        return;
      }
      case ExprKind::Unary: {
        const auto& un = static_cast<const UnaryExpr&>(e);
        switch (un.op) {
          case UnaryOp::Neg: out_ += "(-"; break;
          case UnaryOp::Not: out_ += "(NOT "; break;
          case UnaryOp::BitNot: out_ += "(BNOT "; break;
          default: unsupported("pointer or increment operators");
        }
        expr(*un.operand);
        out_ += ")";
        return;
      }
      case ExprKind::Binary: {
        const auto& bin = static_cast<const BinaryExpr&>(e);
        out_ += "(";
        expr(*bin.lhs);
        out_ += " ";
        out_ += binary_op_token(bin.op);
        out_ += " ";
        expr(*bin.rhs);
        out_ += ")";
        return;
      }
      case ExprKind::Assign:
        unsupported("an assignment nested inside an expression");
      case ExprKind::Call: {
        const auto& call = static_cast<const CallExpr&>(e);
        out_ += call.callee + "(";
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          if (i != 0) out_ += ", ";
          expr(*call.args[i]);
        }
        out_ += ")";
        return;
      }
      case ExprKind::Conditional: {
        const auto& sel = static_cast<const ConditionalExpr&>(e);
        out_ += "IIF(";
        expr(*sel.cond);
        out_ += ", ";
        expr(*sel.then_expr);
        out_ += ", ";
        expr(*sel.else_expr);
        out_ += ")";
        return;
      }
    }
  }

  void body_of(const Stmt* s) {
    ++indent_;
    if (s != nullptr) stmt(*s);
    --indent_;
  }

  void pad() { out_.append(static_cast<std::size_t>(indent_) * 2, ' '); }

  std::string out_;
  int indent_ = 0;
  std::vector<const char*> loops_;
};

}  // namespace

std::string print_basic(const Program& prog) { return Printer().render(prog); }

}  // namespace hli::frontend_basic
