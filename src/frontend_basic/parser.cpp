// The BASIC front-end: a line-oriented lexer and recursive-descent
// parser that construct the SAME front-end IR (frontend::Program) the
// mini-C parser produces, then run the shared semantic analysis.  From
// the contract boundary outward (HLI generation, lowering, back-end,
// verifier, service) a BASIC unit is indistinguishable from a C unit.
//
// Dialect summary (see docs/thin-waist.md for the full grammar):
//   DIM g AS INTEGER [= expr]          ' scalar (global or local)
//   DIM a(64) AS INTEGER               ' array; DIM m(8, 4) AS DOUBLE is 2-D
//   DECLARE FUNCTION f(n AS INTEGER) AS INTEGER   ' extern
//   DECLARE SUB emit(v AS INTEGER)                ' extern, void
//   FUNCTION f(n AS INTEGER) AS INTEGER ... END FUNCTION
//   SUB init() ... END SUB
//   IF c THEN / ELSE / END IF
//   DO WHILE c ... LOOP        (WHILE c ... WEND is an alias)
//   FOR i = 0 TO n - 1 [STEP k] ... NEXT [i]      ' counted sugar
//   FOR i = 0 WHILE i < n STEP i = i + 1 ... NEXT ' general (exact) form
//   EXIT FOR / EXIT DO -> break;  CONTINUE FOR / CONTINUE DO -> continue
//   RETURN [expr];  CALL f(x) or bare f(x)
//
// Keywords are case-insensitive; identifiers are case-SENSITIVE (so
// names survive a round trip through print_basic byte-for-byte).
// Operators mirror mini-C one-for-one: AND/OR/XOR are bitwise,
// ANDALSO/ORELSE are short-circuit logical, NOT is logical not, BNOT is
// bitwise complement, MOD is remainder, << >> shift, = inside an
// expression is equality and <> is inequality.  Array subscripts use
// parentheses, `a(i, j)`; the parser disambiguates calls from
// subscripts with a scope stack of array declarations.  There are no
// pointers anywhere in the language.
#include "frontend_basic/basic.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "frontend/sema.hpp"
#include "support/source_location.hpp"

namespace hli::frontend_basic {

namespace {

using frontend::AssignOp;
using frontend::BinaryOp;
using frontend::Expr;
using frontend::Program;
using frontend::Stmt;
using frontend::StorageClass;
using frontend::Type;
using frontend::UnaryOp;
using frontend::VarDecl;
using support::SourceLoc;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class Tok : std::uint8_t {
  End, Eol, Ident, Int, Float,
  // Keywords.
  KwDim, KwAs, KwInteger, KwSingle, KwDouble, KwDeclare, KwFunction, KwSub,
  KwEnd, KwIf, KwThen, KwElse, KwFor, KwTo, KwStep, KwWhile, KwWend, KwNext,
  KwDo, KwLoop, KwReturn, KwExit, KwContinue, KwCall, KwLet, KwMod, KwAnd,
  KwOr, KwXor, KwNot, KwBnot, KwAndAlso, KwOrElse, KwIif,
  // Punctuation.
  LParen, RParen, Comma,
  Plus, Minus, Star, Slash,
  Assign, Less, Greater, LessEq, GreaterEq, NotEq, Shl, Shr,
  PlusAssign, MinusAssign, StarAssign, SlashAssign,
};

struct Token {
  Tok kind = Tok::End;
  SourceLoc loc;
  std::string text;
  std::int64_t int_value = 0;
  double float_value = 0.0;
  bool single_precision = false;
};

std::string_view token_name(Tok kind) {
  switch (kind) {
    case Tok::End: return "<eof>";
    case Tok::Eol: return "end of line";
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer literal";
    case Tok::Float: return "float literal";
    case Tok::KwDim: return "'DIM'";
    case Tok::KwAs: return "'AS'";
    case Tok::KwInteger: return "'INTEGER'";
    case Tok::KwSingle: return "'SINGLE'";
    case Tok::KwDouble: return "'DOUBLE'";
    case Tok::KwDeclare: return "'DECLARE'";
    case Tok::KwFunction: return "'FUNCTION'";
    case Tok::KwSub: return "'SUB'";
    case Tok::KwEnd: return "'END'";
    case Tok::KwIf: return "'IF'";
    case Tok::KwThen: return "'THEN'";
    case Tok::KwElse: return "'ELSE'";
    case Tok::KwFor: return "'FOR'";
    case Tok::KwTo: return "'TO'";
    case Tok::KwStep: return "'STEP'";
    case Tok::KwWhile: return "'WHILE'";
    case Tok::KwWend: return "'WEND'";
    case Tok::KwNext: return "'NEXT'";
    case Tok::KwDo: return "'DO'";
    case Tok::KwLoop: return "'LOOP'";
    case Tok::KwReturn: return "'RETURN'";
    case Tok::KwExit: return "'EXIT'";
    case Tok::KwContinue: return "'CONTINUE'";
    case Tok::KwCall: return "'CALL'";
    case Tok::KwLet: return "'LET'";
    case Tok::KwMod: return "'MOD'";
    case Tok::KwAnd: return "'AND'";
    case Tok::KwOr: return "'OR'";
    case Tok::KwXor: return "'XOR'";
    case Tok::KwNot: return "'NOT'";
    case Tok::KwBnot: return "'BNOT'";
    case Tok::KwAndAlso: return "'ANDALSO'";
    case Tok::KwOrElse: return "'ORELSE'";
    case Tok::KwIif: return "'IIF'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Comma: return "','";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Assign: return "'='";
    case Tok::Less: return "'<'";
    case Tok::Greater: return "'>'";
    case Tok::LessEq: return "'<='";
    case Tok::GreaterEq: return "'>='";
    case Tok::NotEq: return "'<>'";
    case Tok::Shl: return "'<<'";
    case Tok::Shr: return "'>>'";
    case Tok::PlusAssign: return "'+='";
    case Tok::MinusAssign: return "'-='";
    case Tok::StarAssign: return "'*='";
    case Tok::SlashAssign: return "'/='";
  }
  return "<bad token>";
}

const std::unordered_map<std::string, Tok>& keyword_table() {
  static const std::unordered_map<std::string, Tok> table = {
      {"DIM", Tok::KwDim},           {"AS", Tok::KwAs},
      {"INTEGER", Tok::KwInteger},   {"SINGLE", Tok::KwSingle},
      {"DOUBLE", Tok::KwDouble},     {"DECLARE", Tok::KwDeclare},
      {"FUNCTION", Tok::KwFunction}, {"SUB", Tok::KwSub},
      {"END", Tok::KwEnd},           {"IF", Tok::KwIf},
      {"THEN", Tok::KwThen},         {"ELSE", Tok::KwElse},
      {"FOR", Tok::KwFor},           {"TO", Tok::KwTo},
      {"STEP", Tok::KwStep},         {"WHILE", Tok::KwWhile},
      {"WEND", Tok::KwWend},         {"NEXT", Tok::KwNext},
      {"DO", Tok::KwDo},             {"LOOP", Tok::KwLoop},
      {"RETURN", Tok::KwReturn},     {"EXIT", Tok::KwExit},
      {"CONTINUE", Tok::KwContinue}, {"CALL", Tok::KwCall},
      {"LET", Tok::KwLet},           {"MOD", Tok::KwMod},
      {"AND", Tok::KwAnd},           {"OR", Tok::KwOr},
      {"XOR", Tok::KwXor},           {"NOT", Tok::KwNot},
      {"BNOT", Tok::KwBnot},         {"ANDALSO", Tok::KwAndAlso},
      {"ORELSE", Tok::KwOrElse},     {"IIF", Tok::KwIif},
  };
  return table;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

class Lexer {
 public:
  Lexer(std::string_view source, support::DiagnosticEngine& diags)
      : source_(source), diags_(diags) {}

  std::vector<Token> lex_all() {
    std::vector<Token> tokens;
    while (true) {
      Token tok = next();
      const bool done = tok.kind == Tok::End;
      // Collapse runs of blank/comment-only lines into single Eol
      // tokens so the parser's "skip blank lines" loop stays trivial.
      if (tok.kind != Tok::Eol || tokens.empty() ||
          tokens.back().kind != Tok::Eol) {
        tokens.push_back(std::move(tok));
      }
      if (done) break;
    }
    return tokens;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    const std::size_t index = pos_ + ahead;
    return index < source_.size() ? source_[index] : '\0';
  }

  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[nodiscard]] SourceLoc here() const { return {line_, column_}; }

  static Token make(Tok kind, SourceLoc loc) {
    Token tok;
    tok.kind = kind;
    tok.loc = loc;
    return tok;
  }

  Token next() {
    // Horizontal whitespace and ' comments; newlines are tokens.
    while (pos_ < source_.size()) {
      const char c = peek();
      if (c == '\'') {
        while (pos_ < source_.size() && peek() != '\n') advance();
      } else if (c != '\n' && std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else {
        break;
      }
    }
    const SourceLoc loc = here();
    if (pos_ >= source_.size()) return make(Tok::End, loc);
    const char c = peek();
    if (c == '\n') {
      advance();
      return make(Tok::Eol, loc);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_word(loc);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return lex_number(loc);
    }
    advance();
    switch (c) {
      case '(': return make(Tok::LParen, loc);
      case ')': return make(Tok::RParen, loc);
      case ',': return make(Tok::Comma, loc);
      case '+': return make(match('=') ? Tok::PlusAssign : Tok::Plus, loc);
      case '-': return make(match('=') ? Tok::MinusAssign : Tok::Minus, loc);
      case '*': return make(match('=') ? Tok::StarAssign : Tok::Star, loc);
      case '/': return make(match('=') ? Tok::SlashAssign : Tok::Slash, loc);
      case '=': return make(Tok::Assign, loc);
      case '<':
        if (match('=')) return make(Tok::LessEq, loc);
        if (match('>')) return make(Tok::NotEq, loc);
        if (match('<')) return make(Tok::Shl, loc);
        return make(Tok::Less, loc);
      case '>':
        if (match('=')) return make(Tok::GreaterEq, loc);
        if (match('>')) return make(Tok::Shr, loc);
        return make(Tok::Greater, loc);
      default:
        diags_.error(loc, std::string("unexpected character '") + c + "'");
        return next();
    }
  }

  bool match(char expected) {
    if (peek() != expected) return false;
    advance();
    return true;
  }

  Token lex_word(SourceLoc loc) {
    const std::size_t start = pos_;
    while (pos_ < source_.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
      advance();
    }
    std::string text(source_.substr(start, pos_ - start));
    std::string upper = text;
    for (char& ch : upper) {
      if (ch >= 'a' && ch <= 'z') ch = static_cast<char>(ch - 'a' + 'A');
    }
    if (upper == "REM") {  // REM comment: swallow the rest of the line.
      while (pos_ < source_.size() && peek() != '\n') advance();
      return next();
    }
    Token tok;
    tok.loc = loc;
    const auto it = keyword_table().find(upper);
    if (it != keyword_table().end()) {
      tok.kind = it->second;
    } else {
      tok.kind = Tok::Ident;
      tok.text = std::move(text);
    }
    return tok;
  }

  Token lex_number(SourceLoc loc) {
    const std::size_t start = pos_;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      std::size_t look = 1;
      if (peek(look) == '+' || peek(look) == '-') ++look;
      if (std::isdigit(static_cast<unsigned char>(peek(look)))) {
        is_float = true;
        while (look-- > 0) advance();
        while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
      }
    }
    const std::string_view text = source_.substr(start, pos_ - start);
    Token tok;
    tok.loc = loc;
    // Type suffixes: `!` forces SINGLE, `#` forces DOUBLE.
    if (peek() == '!') {
      advance();
      is_float = true;
      tok.single_precision = true;
    } else if (peek() == '#') {
      advance();
      is_float = true;
    }
    if (is_float) {
      tok.kind = Tok::Float;
      tok.float_value = std::strtod(std::string(text).c_str(), nullptr);
    } else {
      tok.kind = Tok::Int;
      const auto [ptr, ec] = std::from_chars(
          text.data(), text.data() + text.size(), tok.int_value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        diags_.error(loc, "integer literal out of range");
      }
    }
    return tok;
  }

  std::string_view source_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Binary precedence ladder; identical ranks to the mini-C parser so an
/// unparenthesized BASIC expression groups exactly like its C twin.
int precedence_of(Tok kind) {
  switch (kind) {
    case Tok::KwOrElse: return 1;
    case Tok::KwAndAlso: return 2;
    case Tok::KwOr: return 3;
    case Tok::KwXor: return 4;
    case Tok::KwAnd: return 5;
    case Tok::Assign:  // `=` is equality in expression position.
    case Tok::NotEq: return 6;
    case Tok::Less:
    case Tok::Greater:
    case Tok::LessEq:
    case Tok::GreaterEq: return 7;
    case Tok::Shl:
    case Tok::Shr: return 8;
    case Tok::Plus:
    case Tok::Minus: return 9;
    case Tok::Star:
    case Tok::Slash:
    case Tok::KwMod: return 10;
    default: return -1;
  }
}

BinaryOp binary_op_of(Tok kind) {
  switch (kind) {
    case Tok::KwOrElse: return BinaryOp::LogOr;
    case Tok::KwAndAlso: return BinaryOp::LogAnd;
    case Tok::KwOr: return BinaryOp::Or;
    case Tok::KwXor: return BinaryOp::Xor;
    case Tok::KwAnd: return BinaryOp::And;
    case Tok::Assign: return BinaryOp::Eq;
    case Tok::NotEq: return BinaryOp::Ne;
    case Tok::Less: return BinaryOp::Lt;
    case Tok::Greater: return BinaryOp::Gt;
    case Tok::LessEq: return BinaryOp::Le;
    case Tok::GreaterEq: return BinaryOp::Ge;
    case Tok::Shl: return BinaryOp::Shl;
    case Tok::Shr: return BinaryOp::Shr;
    case Tok::Plus: return BinaryOp::Add;
    case Tok::Minus: return BinaryOp::Sub;
    case Tok::Star: return BinaryOp::Mul;
    case Tok::Slash: return BinaryOp::Div;
    case Tok::KwMod: return BinaryOp::Rem;
    default: return BinaryOp::Add;  // Unreachable given precedence_of guard.
  }
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticEngine& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  Program parse_program() {
    Program prog;
    skip_eols();
    while (!check(Tok::End) && !gave_up_) {
      if (check(Tok::KwDim)) {
        parse_dim(prog, /*func=*/nullptr, /*block=*/nullptr);
      } else if (check(Tok::KwDeclare)) {
        parse_declare(prog);
      } else if (check(Tok::KwFunction) || check(Tok::KwSub)) {
        parse_function(prog);
      } else {
        diags_.error(peek().loc,
                     "expected DIM, DECLARE, FUNCTION or SUB at top level, "
                     "found " +
                         std::string(token_name(peek().kind)));
        gave_up_ = true;
      }
      skip_eols();
    }
    return prog;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }

  const Token& advance() {
    const Token& tok = peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return tok;
  }

  [[nodiscard]] bool check(Tok kind) const { return peek().kind == kind; }

  bool match(Tok kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  const Token& expect(Tok kind, std::string_view what) {
    if (check(kind)) return advance();
    diags_.error(peek().loc, "expected " + std::string(token_name(kind)) +
                                 " " + std::string(what) + ", found " +
                                 std::string(token_name(peek().kind)));
    gave_up_ = true;
    return peek();
  }

  void skip_eols() {
    while (match(Tok::Eol)) {
    }
  }

  /// Statement terminator; everything in BASIC ends at the line break.
  void expect_eol(std::string_view after) {
    if (check(Tok::End)) return;
    expect(Tok::Eol, after);
  }

  // --- scope tracking -----------------------------------------------------
  //
  // The parser keeps its own lexical scope stack for exactly one job:
  // deciding whether `name(...)` is an array subscript or a call, and
  // whether a FOR header introduces a fresh loop variable.  Real name
  // resolution and type checking happen in the shared Sema pass.

  struct ScopeEntry {
    std::string name;
    bool is_array;
    unsigned depth;
  };

  void push_scope() { ++depth_; }

  void pop_scope() {
    while (!scope_.empty() && scope_.back().depth == depth_) scope_.pop_back();
    --depth_;
  }

  void declare(const std::string& name, bool is_array) {
    scope_.push_back({name, is_array, depth_});
  }

  [[nodiscard]] const ScopeEntry* lookup(const std::string& name) const {
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  // --- declarations -------------------------------------------------------

  const Type* parse_scalar_type(Program& prog) {
    if (match(Tok::KwInteger)) return prog.types.int_type();
    if (match(Tok::KwSingle)) return prog.types.float_type();
    if (match(Tok::KwDouble)) return prog.types.double_type();
    diags_.error(peek().loc, "expected INTEGER, SINGLE or DOUBLE, found " +
                                 std::string(token_name(peek().kind)));
    gave_up_ = true;
    return prog.types.int_type();
  }

  /// `DIM name[(d1[, d2...])] AS type [= expr]` — a global when `func`
  /// is null, otherwise a local DeclStmt appended to `block`.
  void parse_dim(Program& prog, frontend::FuncDecl* func,
                 frontend::BlockStmt* block) {
    const SourceLoc loc = peek().loc;
    expect(Tok::KwDim, "to start a declaration");
    const Token name_tok = expect(Tok::Ident, "after DIM");
    std::vector<std::int64_t> dims;
    if (match(Tok::LParen)) {
      do {
        const Token& dim = expect(Tok::Int, "array dimension");
        if (dim.int_value <= 0) {
          diags_.error(dim.loc, "array dimension must be positive");
        }
        dims.push_back(dim.int_value);
      } while (match(Tok::Comma));
      expect(Tok::RParen, "after array dimensions");
    }
    expect(Tok::KwAs, "after the declared name");
    const Type* type = parse_scalar_type(prog);
    // Innermost dimension last, matching C's `int a[d1][d2]`.
    for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
      type = prog.types.array_of(type, static_cast<std::size_t>(*it));
    }
    Expr* init = nullptr;
    if (match(Tok::Assign)) {
      if (!dims.empty()) {
        diags_.error(peek().loc, "array declarations cannot have initializers");
      }
      init = parse_expr(prog);
    }
    expect_eol("after the declaration");

    const StorageClass storage =
        func == nullptr ? StorageClass::Global : StorageClass::Local;
    VarDecl* decl = prog.make_var(name_tok.text, type, storage, loc);
    decl->init = init;
    declare(name_tok.text, !dims.empty());
    if (func == nullptr) {
      prog.globals.push_back(decl);
    } else {
      decl->owner = func;
      block->stmts.push_back(prog.make_stmt<frontend::DeclStmt>(decl, loc));
    }
  }

  /// `(name AS type, ...)` — shared by DECLARE and definitions.
  std::vector<std::pair<Token, const Type*>> parse_param_list(Program& prog) {
    std::vector<std::pair<Token, const Type*>> params;
    expect(Tok::LParen, "to open the parameter list");
    if (!check(Tok::RParen)) {
      do {
        const Token pname = expect(Tok::Ident, "parameter name");
        expect(Tok::KwAs, "after the parameter name");
        params.emplace_back(pname, parse_scalar_type(prog));
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "to close the parameter list");
    return params;
  }

  /// `DECLARE FUNCTION name(params) AS type` / `DECLARE SUB name(params)`.
  void parse_declare(Program& prog) {
    const SourceLoc loc = peek().loc;
    expect(Tok::KwDeclare, "to start an extern declaration");
    const bool is_sub = match(Tok::KwSub);
    if (!is_sub) expect(Tok::KwFunction, "or SUB after DECLARE");
    const Token name_tok = expect(Tok::Ident, "function name");
    const auto params = parse_param_list(prog);
    const Type* ret = prog.types.void_type();
    if (!is_sub) {
      expect(Tok::KwAs, "after the parameter list");
      ret = parse_scalar_type(prog);
    }
    expect_eol("after the extern declaration");
    frontend::FuncDecl* func = prog.make_func(name_tok.text, ret, loc);
    for (const auto& [pname, ptype] : params) {
      VarDecl* param =
          prog.make_var(pname.text, ptype, StorageClass::Param, pname.loc);
      param->owner = func;
      func->params.push_back(param);
    }
    prog.functions.push_back(func);  // body stays null -> extern
  }

  /// `FUNCTION name(params) AS type ... END FUNCTION` and the SUB form.
  void parse_function(Program& prog) {
    const SourceLoc loc = peek().loc;
    const bool is_sub = match(Tok::KwSub);
    if (!is_sub) expect(Tok::KwFunction, "or SUB");
    const Token name_tok = expect(Tok::Ident, "function name");
    const auto params = parse_param_list(prog);
    const Type* ret = prog.types.void_type();
    if (!is_sub) {
      expect(Tok::KwAs, "after the parameter list");
      ret = parse_scalar_type(prog);
    }
    expect_eol("after the function header");

    frontend::FuncDecl* func = prog.make_func(name_tok.text, ret, loc);
    push_scope();
    for (const auto& [pname, ptype] : params) {
      VarDecl* param =
          prog.make_var(pname.text, ptype, StorageClass::Param, pname.loc);
      param->owner = func;
      func->params.push_back(param);
      declare(pname.text, /*is_array=*/false);
    }
    func->body = prog.make_stmt<frontend::BlockStmt>(loc);
    current_func_ = func;
    parse_stmt_list(prog, func->body, /*stop=*/Tok::KwEnd);
    expect(Tok::KwEnd, "to close the function body");
    expect(is_sub ? Tok::KwSub : Tok::KwFunction, "after END");
    expect_eol("after END");
    current_func_ = nullptr;
    pop_scope();
    prog.functions.push_back(func);
  }

  // --- statements ---------------------------------------------------------

  /// Parses statements until `stop` (or ELSE, for IF bodies) at line
  /// start.  The caller consumes the terminator.
  void parse_stmt_list(Program& prog, frontend::BlockStmt* block, Tok stop) {
    skip_eols();
    while (!check(Tok::End) && !check(stop) && !check(Tok::KwElse) &&
           !gave_up_) {
      parse_stmt(prog, block);
      skip_eols();
    }
  }

  void parse_stmt(Program& prog, frontend::BlockStmt* block) {
    switch (peek().kind) {
      case Tok::KwDim:
        parse_dim(prog, current_func_, block);
        return;
      case Tok::KwIf: parse_if(prog, block); return;
      case Tok::KwDo: parse_do_while(prog, block); return;
      case Tok::KwWhile: parse_while(prog, block); return;
      case Tok::KwFor: parse_for(prog, block); return;
      case Tok::KwReturn: parse_return(prog, block); return;
      case Tok::KwExit: {
        const SourceLoc loc = advance().loc;
        match_loop_keyword("EXIT");
        block->stmts.push_back(prog.make_stmt<frontend::BreakStmt>(loc));
        expect_eol("after EXIT");
        return;
      }
      case Tok::KwContinue: {
        const SourceLoc loc = advance().loc;
        match_loop_keyword("CONTINUE");
        block->stmts.push_back(prog.make_stmt<frontend::ContinueStmt>(loc));
        expect_eol("after CONTINUE");
        return;
      }
      case Tok::KwCall: {
        advance();
        const Token name_tok = expect(Tok::Ident, "after CALL");
        Expr* call = parse_call(prog, name_tok);
        block->stmts.push_back(
            prog.make_stmt<frontend::ExprStmt>(call, name_tok.loc));
        expect_eol("after the call");
        return;
      }
      case Tok::KwLet:
        advance();
        [[fallthrough]];
      case Tok::Ident: {
        Expr* e = parse_assign_or_call(prog);
        block->stmts.push_back(prog.make_stmt<frontend::ExprStmt>(e, e->loc()));
        expect_eol("after the statement");
        return;
      }
      default:
        diags_.error(peek().loc, "expected a statement, found " +
                                     std::string(token_name(peek().kind)));
        gave_up_ = true;
        return;
    }
  }

  void match_loop_keyword(std::string_view what) {
    if (!match(Tok::KwFor) && !match(Tok::KwDo) && !match(Tok::KwWhile)) {
      diags_.error(peek().loc,
                   "expected FOR, DO or WHILE after " + std::string(what));
      gave_up_ = true;
    }
  }

  void parse_if(Program& prog, frontend::BlockStmt* block) {
    const SourceLoc loc = expect(Tok::KwIf, "").loc;
    Expr* cond = parse_expr(prog);
    expect(Tok::KwThen, "after the IF condition");
    expect_eol("after THEN");
    push_scope();
    frontend::BlockStmt* then_block = prog.make_stmt<frontend::BlockStmt>(loc);
    parse_stmt_list(prog, then_block, Tok::KwEnd);
    pop_scope();
    frontend::BlockStmt* else_block = nullptr;
    if (match(Tok::KwElse)) {
      expect_eol("after ELSE");
      push_scope();
      else_block = prog.make_stmt<frontend::BlockStmt>(loc);
      parse_stmt_list(prog, else_block, Tok::KwEnd);
      pop_scope();
    }
    expect(Tok::KwEnd, "to close the IF");
    expect(Tok::KwIf, "after END");
    expect_eol("after END IF");
    block->stmts.push_back(
        prog.make_stmt<frontend::IfStmt>(cond, then_block, else_block, loc));
  }

  void parse_do_while(Program& prog, frontend::BlockStmt* block) {
    const SourceLoc loc = expect(Tok::KwDo, "").loc;
    expect(Tok::KwWhile, "after DO");
    Expr* cond = parse_expr(prog);
    expect_eol("after the DO WHILE condition");
    push_scope();
    frontend::BlockStmt* body = prog.make_stmt<frontend::BlockStmt>(loc);
    parse_stmt_list(prog, body, Tok::KwLoop);
    pop_scope();
    expect(Tok::KwLoop, "to close the DO WHILE");
    expect_eol("after LOOP");
    block->stmts.push_back(
        prog.make_stmt<frontend::WhileStmt>(cond, body, loc));
  }

  void parse_while(Program& prog, frontend::BlockStmt* block) {
    const SourceLoc loc = expect(Tok::KwWhile, "").loc;
    Expr* cond = parse_expr(prog);
    expect_eol("after the WHILE condition");
    push_scope();
    frontend::BlockStmt* body = prog.make_stmt<frontend::BlockStmt>(loc);
    parse_stmt_list(prog, body, Tok::KwWend);
    pop_scope();
    expect(Tok::KwWend, "to close the WHILE");
    expect_eol("after WEND");
    block->stmts.push_back(
        prog.make_stmt<frontend::WhileStmt>(cond, body, loc));
  }

  /// Two FOR headers share one statement node:
  ///   FOR i = a TO b [STEP k]              counted sugar; becomes
  ///                                        (i = a; i <= b; i = i + k),
  ///                                        with >= and i - k when k is
  ///                                        a negative literal
  ///   FOR [i = a] [WHILE c] [STEP i = e]   general form, kept exactly
  /// A FOR header introduces a fresh INTEGER loop variable unless the
  /// name is already in scope, mirroring C's `for (int i = ...)` vs
  /// `for (i = ...)`.
  void parse_for(Program& prog, frontend::BlockStmt* block) {
    const SourceLoc loc = expect(Tok::KwFor, "").loc;
    push_scope();

    Stmt* init = nullptr;
    Expr* cond = nullptr;
    Expr* step = nullptr;
    Token name_tok;
    bool have_var = false;
    if (check(Tok::Ident)) {
      have_var = true;
      name_tok = advance();
      expect(Tok::Assign, "after the loop variable");
      Expr* start = parse_expr(prog);
      if (lookup(name_tok.text) == nullptr) {
        VarDecl* fresh = prog.make_var(name_tok.text, prog.types.int_type(),
                                       StorageClass::Local, name_tok.loc);
        fresh->owner = current_func_;
        fresh->init = start;
        declare(name_tok.text, /*is_array=*/false);
        init = prog.make_stmt<frontend::DeclStmt>(fresh, name_tok.loc);
      } else {
        Expr* ref =
            prog.make_expr<frontend::VarRefExpr>(name_tok.text, name_tok.loc);
        init = prog.make_stmt<frontend::ExprStmt>(
            prog.make_expr<frontend::AssignExpr>(AssignOp::None, ref, start,
                                                 name_tok.loc),
            name_tok.loc);
      }
    }

    if (match(Tok::KwTo)) {
      if (!have_var) {
        diags_.error(peek().loc, "FOR ... TO requires a loop variable");
        gave_up_ = true;
        pop_scope();
        return;
      }
      Expr* bound = parse_expr(prog);
      // STEP k: a leading negative literal flips the direction, exactly
      // like the C idiom `for (i = b; i >= 0; i = i - 1)`.
      Expr* amount = nullptr;
      bool downward = false;
      if (match(Tok::KwStep)) {
        if (check(Tok::Minus) && peek(1).kind == Tok::Int) {
          advance();
          const Token& lit = advance();
          amount =
              prog.make_expr<frontend::IntLiteralExpr>(lit.int_value, lit.loc);
          downward = true;
        } else {
          amount = parse_expr(prog);
        }
      } else {
        amount = prog.make_expr<frontend::IntLiteralExpr>(1, loc);
      }
      Expr* iv_cond =
          prog.make_expr<frontend::VarRefExpr>(name_tok.text, name_tok.loc);
      cond = prog.make_expr<frontend::BinaryExpr>(
          downward ? BinaryOp::Ge : BinaryOp::Le, iv_cond, bound, loc);
      Expr* iv_lhs =
          prog.make_expr<frontend::VarRefExpr>(name_tok.text, name_tok.loc);
      Expr* iv_rhs =
          prog.make_expr<frontend::VarRefExpr>(name_tok.text, name_tok.loc);
      step = prog.make_expr<frontend::AssignExpr>(
          AssignOp::None, iv_lhs,
          prog.make_expr<frontend::BinaryExpr>(
              downward ? BinaryOp::Sub : BinaryOp::Add, iv_rhs, amount, loc),
          loc);
    } else {
      if (match(Tok::KwWhile)) cond = parse_expr(prog);
      if (match(Tok::KwStep)) step = parse_assign_or_call(prog);
    }
    expect_eol("after the FOR header");

    frontend::BlockStmt* body = prog.make_stmt<frontend::BlockStmt>(loc);
    parse_stmt_list(prog, body, Tok::KwNext);
    expect(Tok::KwNext, "to close the FOR");
    if (check(Tok::Ident)) {
      const Token& closer = advance();
      if (have_var && closer.text != name_tok.text) {
        diags_.error(closer.loc, "NEXT " + closer.text +
                                     " does not match FOR " + name_tok.text);
      }
    }
    expect_eol("after NEXT");
    pop_scope();
    block->stmts.push_back(
        prog.make_stmt<frontend::ForStmt>(init, cond, step, body, loc));
  }

  void parse_return(Program& prog, frontend::BlockStmt* block) {
    const SourceLoc loc = expect(Tok::KwReturn, "").loc;
    Expr* value = nullptr;
    if (!check(Tok::Eol) && !check(Tok::End)) value = parse_expr(prog);
    block->stmts.push_back(prog.make_stmt<frontend::ReturnStmt>(value, loc));
    expect_eol("after RETURN");
  }

  /// Statement beginning with an identifier: an assignment to a scalar
  /// or array element, or a call.  `a(i) = e` vs `f(x)` disambiguates
  /// through the array scope stack.
  Expr* parse_assign_or_call(Program& prog) {
    const Token name_tok = expect(Tok::Ident, "to start the statement");
    const ScopeEntry* entry = lookup(name_tok.text);
    const bool is_array = entry != nullptr && entry->is_array;
    if (check(Tok::LParen) && !is_array) return parse_call(prog, name_tok);

    Expr* lhs =
        prog.make_expr<frontend::VarRefExpr>(name_tok.text, name_tok.loc);
    if (is_array && match(Tok::LParen)) {
      do {
        Expr* index = parse_expr(prog);
        lhs = prog.make_expr<frontend::ArrayIndexExpr>(lhs, index,
                                                       name_tok.loc);
      } while (match(Tok::Comma));
      expect(Tok::RParen, "after the subscript");
    }
    AssignOp op = AssignOp::None;
    if (match(Tok::PlusAssign)) {
      op = AssignOp::Add;
    } else if (match(Tok::MinusAssign)) {
      op = AssignOp::Sub;
    } else if (match(Tok::StarAssign)) {
      op = AssignOp::Mul;
    } else if (match(Tok::SlashAssign)) {
      op = AssignOp::Div;
    } else {
      expect(Tok::Assign, "in the assignment");
    }
    Expr* rhs = parse_expr(prog);
    return prog.make_expr<frontend::AssignExpr>(op, lhs, rhs, name_tok.loc);
  }

  Expr* parse_call(Program& prog, const Token& name_tok) {
    expect(Tok::LParen, "to open the argument list");
    std::vector<Expr*> args;
    if (!check(Tok::RParen)) {
      do {
        args.push_back(parse_expr(prog));
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "to close the argument list");
    return prog.make_expr<frontend::CallExpr>(name_tok.text, std::move(args),
                                              name_tok.loc);
  }

  // --- expressions --------------------------------------------------------

  Expr* parse_expr(Program& prog) {
    return parse_binary_rhs(prog, 0, parse_unary(prog));
  }

  Expr* parse_binary_rhs(Program& prog, int min_precedence, Expr* lhs) {
    while (true) {
      const int prec = precedence_of(peek().kind);
      if (prec < min_precedence || prec < 0) return lhs;
      const Token& op_tok = advance();
      Expr* rhs = parse_unary(prog);
      const int next_prec = precedence_of(peek().kind);
      if (next_prec > prec) rhs = parse_binary_rhs(prog, prec + 1, rhs);
      lhs = prog.make_expr<frontend::BinaryExpr>(binary_op_of(op_tok.kind),
                                                 lhs, rhs, op_tok.loc);
    }
  }

  Expr* parse_unary(Program& prog) {
    const Token& tok = peek();
    switch (tok.kind) {
      case Tok::Minus:
        advance();
        return prog.make_expr<frontend::UnaryExpr>(UnaryOp::Neg,
                                                   parse_unary(prog), tok.loc);
      case Tok::KwNot:
        advance();
        return prog.make_expr<frontend::UnaryExpr>(UnaryOp::Not,
                                                   parse_unary(prog), tok.loc);
      case Tok::KwBnot:
        advance();
        return prog.make_expr<frontend::UnaryExpr>(UnaryOp::BitNot,
                                                   parse_unary(prog), tok.loc);
      default:
        return parse_primary(prog);
    }
  }

  Expr* parse_primary(Program& prog) {
    const Token tok = peek();
    switch (tok.kind) {
      case Tok::Int:
        advance();
        return prog.make_expr<frontend::IntLiteralExpr>(tok.int_value,
                                                        tok.loc);
      case Tok::Float:
        advance();
        return prog.make_expr<frontend::FloatLiteralExpr>(
            tok.float_value, tok.single_precision, tok.loc);
      case Tok::LParen: {
        advance();
        Expr* inner = parse_expr(prog);
        expect(Tok::RParen, "to close the parenthesized expression");
        return inner;
      }
      case Tok::KwIif: {
        advance();
        expect(Tok::LParen, "after IIF");
        Expr* cond = parse_expr(prog);
        expect(Tok::Comma, "after the IIF condition");
        Expr* then_expr = parse_expr(prog);
        expect(Tok::Comma, "after the IIF true value");
        Expr* else_expr = parse_expr(prog);
        expect(Tok::RParen, "to close the IIF");
        return prog.make_expr<frontend::ConditionalExpr>(cond, then_expr,
                                                         else_expr, tok.loc);
      }
      case Tok::Ident: {
        const Token name_tok = advance();
        if (check(Tok::LParen)) {
          const ScopeEntry* entry = lookup(name_tok.text);
          if (entry != nullptr && entry->is_array) {
            advance();
            Expr* expr = prog.make_expr<frontend::VarRefExpr>(name_tok.text,
                                                              name_tok.loc);
            do {
              Expr* index = parse_expr(prog);
              expr = prog.make_expr<frontend::ArrayIndexExpr>(expr, index,
                                                              name_tok.loc);
            } while (match(Tok::Comma));
            expect(Tok::RParen, "after the subscript");
            return expr;
          }
          return parse_call(prog, name_tok);
        }
        return prog.make_expr<frontend::VarRefExpr>(name_tok.text,
                                                    name_tok.loc);
      }
      default:
        diags_.error(tok.loc, "expected an expression, found " +
                                  std::string(token_name(tok.kind)));
        gave_up_ = true;
        advance();
        return prog.make_expr<frontend::IntLiteralExpr>(0, tok.loc);
    }
  }

  std::vector<Token> tokens_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  bool gave_up_ = false;

  frontend::FuncDecl* current_func_ = nullptr;
  std::vector<ScopeEntry> scope_;
  unsigned depth_ = 0;
};

}  // namespace

frontend::Program compile_to_ast(std::string_view source,
                                 support::DiagnosticEngine& diags) {
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), diags);
  frontend::Program prog = parser.parse_program();
  if (diags.has_errors()) {
    throw support::CompileError("syntax errors:\n" + diags.render());
  }
  frontend::Sema sema(diags);
  if (!sema.run(prog)) {
    throw support::CompileError("semantic errors:\n" + diags.render());
  }
  return prog;
}

}  // namespace hli::frontend_basic
