#include "hli/format.hpp"

#include <algorithm>
#include <stdexcept>

namespace hli::format {

StringId StringPool::intern(std::string_view text) {
  const auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  const StringId id = static_cast<StringId>(strings_.size());
  const auto inserted = index_.emplace(std::string(text), id).first;
  strings_.push_back(&inserted->first);
  return id;
}

const std::string& StringPool::at(StringId id) const {
  if (id >= strings_.size()) {
    throw std::out_of_range("StringPool id " + std::to_string(id) +
                            " out of range (pool size " +
                            std::to_string(strings_.size()) + ")");
  }
  return *strings_[id];
}

void LineTable::add_item(std::uint32_t line, ItemEntry item) {
  auto it = std::lower_bound(lines_.begin(), lines_.end(), line,
                             [](const LineEntry& e, std::uint32_t l) {
                               return e.line < l;
                             });
  if (it == lines_.end() || it->line != line) {
    it = lines_.insert(it, LineEntry{line, {}});
  }
  it->items.push_back(item);
}

const LineEntry* LineTable::find_line(std::uint32_t line) const {
  const auto it = std::lower_bound(lines_.begin(), lines_.end(), line,
                                   [](const LineEntry& e, std::uint32_t l) {
                                     return e.line < l;
                                   });
  if (it == lines_.end() || it->line != line) return nullptr;
  return &*it;
}

std::size_t LineTable::item_count() const {
  std::size_t count = 0;
  for (const auto& line : lines_) count += line.items.size();
  return count;
}

std::optional<ItemType> LineTable::item_type(ItemId id) const {
  for (const auto& line : lines_) {
    for (const auto& item : line.items) {
      if (item.id == id) return item.type;
    }
  }
  return std::nullopt;
}

std::string to_string(ItemType type) {
  switch (type) {
    case ItemType::Load: return "load";
    case ItemType::Store: return "store";
    case ItemType::Call: return "call";
    case ItemType::ArgStore: return "argstore";
    case ItemType::ArgLoad: return "argload";
  }
  return "?";
}

std::string to_string(EquivAccType type) {
  return type == EquivAccType::Definite ? "def" : "maybe";
}

std::string to_string(DepType type) {
  return type == DepType::Definite ? "def" : "maybe";
}

}  // namespace hli::format
