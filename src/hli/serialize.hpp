// Text serialization of the HLI format.  The back-end consumes a re-read
// file, never in-memory front-end structures, which keeps the interface
// compiler-independent (the paper's "universal format" claim) and gives the
// HLI-size numbers for Table 1.
//
// The format is line-oriented and fully round-trippable:
//   HLI v1
//   unit <name> nextid <n>
//   line <num> : <id>:<type> ...
//   regions <count> root <id>
//   region <id> <unit|loop> parent <p> scope <first> <last> children : ...
//   class <id> <def|maybe> base <name> unk <0|1> wr <0|1>
//         items : ... subs : ... disp <rest of line>   (one line)
//   alias : <id> <id> ...
//   lcdd <src> <dst> <def|maybe> dist <d|?>
//   calleff item <id> unk <0|1> ref : ... mod : ...
//   calleff region <id> unk <0|1> ref : ... mod : ...
//   endregion / endunit
//
// Alongside the text format lives HLIB, a packed binary container for the
// same data model (docs/hli-binary-format.md has the byte-level layout):
//
//   [8-byte header]  "HLIB" magic + version
//   [unit payloads]  varint-encoded line/region/equiv/alias/LCDD/REF-MOD
//                    tables; strings referenced by interned pool id
//   [meta block]     string pool + per-unit index (name id, offset,
//                    length, checksum)
//   [32-byte footer] meta offset/length/checksum + end magic
//
// The index lives at a fixed offset from the end of the file, so a reader
// can locate any unit after decoding only the meta block — the
// demand-driven per-function import of paper §3.2.1, without tokenizing
// the whole file.  `hli::HliStore` (store.hpp) builds on `open_hlib` /
// `decode_hlib_unit` to do exactly that over an mmap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hli/format.hpp"
#include "support/diagnostics.hpp"

namespace hli::serialize {

[[nodiscard]] std::string write_hli(const format::HliFile& file);
[[nodiscard]] std::string write_entry(const format::HliEntry& entry);

/// Parses a serialized HLI file.  Throws support::CompileError with a
/// line-numbered message on malformed input.
[[nodiscard]] format::HliFile read_hli(std::string_view text);

// --- HLIB binary container ---

/// True when `bytes` starts with the HLIB magic (any version).
[[nodiscard]] bool is_hlib(std::string_view bytes);

/// Serializes a whole file into the HLIB binary container.
[[nodiscard]] std::string write_hlib(const format::HliFile& file);

/// Eagerly decodes an HLIB container (all units, all checksums verified).
/// Throws support::CompileError with a byte-offset message on malformed
/// or corrupted input.
[[nodiscard]] format::HliFile read_hlib(std::string_view bytes);

/// Reads either format, dispatching on the magic.
[[nodiscard]] format::HliFile read_any(std::string_view bytes);

/// Decoded HLIB container metadata: the string pool and per-unit index.
/// Opening one touches only the header, footer, and meta block; unit
/// payloads stay untouched until `decode_hlib_unit` asks for them.  The
/// container borrows `bytes` — the caller keeps the backing storage
/// (e.g. a support::MappedFile) alive.
struct HlibContainer {
  struct Unit {
    format::StringId name_id = 0;
    std::uint64_t offset = 0;    ///< Payload start, from file begin.
    std::uint64_t length = 0;    ///< Payload byte count.
    std::uint32_t checksum = 0;  ///< FNV-1a over the payload.
  };

  std::string_view bytes;               ///< The whole container.
  /// Interned strings, by StringId — zero-copy views into `bytes`, so
  /// opening a container allocates nothing per string.
  std::vector<std::string_view> pool;
  std::vector<Unit> units;              ///< In on-disk (file) order.

  [[nodiscard]] std::string_view unit_name(std::size_t index) const {
    return pool.at(units.at(index).name_id);
  }
};

/// Validates header/footer/meta and decodes the pool + index.  Unit
/// payload bytes are bounds-checked but not read.
[[nodiscard]] HlibContainer open_hlib(std::string_view bytes);

/// Decodes one unit payload (checksum-verified) into an HliEntry.
[[nodiscard]] format::HliEntry decode_hlib_unit(const HlibContainer& container,
                                                std::size_t index);

}  // namespace hli::serialize
