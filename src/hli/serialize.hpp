// Text serialization of the HLI format.  The back-end consumes a re-read
// file, never in-memory front-end structures, which keeps the interface
// compiler-independent (the paper's "universal format" claim) and gives the
// HLI-size numbers for Table 1.
//
// The format is line-oriented and fully round-trippable:
//   HLI v1
//   unit <name> nextid <n>
//   line <num> : <id>:<type> ...
//   regions <count> root <id>
//   region <id> <unit|loop> parent <p> scope <first> <last> children : ...
//   class <id> <def|maybe> base <name> unk <0|1> wr <0|1>
//         items : ... subs : ... disp <rest of line>   (one line)
//   alias : <id> <id> ...
//   lcdd <src> <dst> <def|maybe> dist <d|?>
//   calleff item <id> unk <0|1> ref : ... mod : ...
//   calleff region <id> unk <0|1> ref : ... mod : ...
//   endregion / endunit
#pragma once

#include <string>

#include "hli/format.hpp"
#include "support/diagnostics.hpp"

namespace hli::serialize {

[[nodiscard]] std::string write_hli(const format::HliFile& file);
[[nodiscard]] std::string write_entry(const format::HliEntry& entry);

/// Parses a serialized HLI file.  Throws support::CompileError with a
/// line-numbered message on malformed input.
[[nodiscard]] format::HliFile read_hli(std::string_view text);

}  // namespace hli::serialize
