// TEST/BENCH-ONLY reference oracle: the original map-based implementation
// of the HLI query interface, kept verbatim so the dense HliUnitView can
// be differentially checked against it (tests/hli/dense_query_diff_test)
// and so bench_query_micro can report the dense speedup over this
// baseline.  Production code must use query::HliUnitView instead — this
// class chases unordered_maps up the region/class-parent chains on every
// query and is the slow path the dense index replaced.
#pragma once

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hli/query.hpp"

namespace hli::query::reference {

/// Map-based answers, query-for-query identical to the pre-dense
/// HliUnitView.  Same construction contract: `entry` must outlive the
/// view, rebuild after maintenance mutations.
class ReferenceUnitView {
 public:
  explicit ReferenceUnitView(const format::HliEntry& entry) : entry_(&entry) {
    for (const format::RegionEntry& region : entry.regions) {
      regions_.emplace(region.id, &region);
      for (const format::EquivClass& cls : region.classes) {
        class_region_.emplace(cls.id, region.id);
        for (const format::ItemId item : cls.member_items) {
          item_region_.emplace(item, region.id);
          item_class_.emplace(item, cls.id);
        }
        for (const format::ItemId sub : cls.member_subclasses) {
          class_parent_.emplace(sub, cls.id);
        }
      }
      for (const format::CallEffectEntry& eff : region.call_effects) {
        if (!eff.is_subregion) item_region_.emplace(eff.call_item, region.id);
      }
    }
  }

  [[nodiscard]] RegionId region_of(ItemId item) const {
    const auto it = item_region_.find(item);
    return it != item_region_.end() ? it->second : format::kNoRegion;
  }

  [[nodiscard]] RegionId parent_region(RegionId region) const {
    const auto it = regions_.find(region);
    return it != regions_.end() ? it->second->parent : format::kNoRegion;
  }

  [[nodiscard]] RegionId innermost_loop(RegionId region) const {
    for (RegionId r = region; r != format::kNoRegion; r = parent_region(r)) {
      const auto it = regions_.find(r);
      if (it == regions_.end()) return format::kNoRegion;
      if (it->second->type == format::RegionType::Loop) return r;
    }
    return format::kNoRegion;
  }

  [[nodiscard]] bool region_encloses(RegionId outer, RegionId inner) const {
    for (RegionId r = inner; r != format::kNoRegion; r = parent_region(r)) {
      if (r == outer) return true;
    }
    return false;
  }

  [[nodiscard]] RegionId common_region(ItemId a, ItemId b) const {
    const RegionId ra = region_of(a);
    const RegionId rb = region_of(b);
    if (ra == format::kNoRegion || rb == format::kNoRegion)
      return format::kNoRegion;
    for (RegionId r = ra; r != format::kNoRegion; r = parent_region(r)) {
      if (region_encloses(r, rb)) return r;
    }
    return format::kNoRegion;
  }

  [[nodiscard]] ItemId class_of_at(ItemId item, RegionId region) const {
    const auto own = item_class_.find(item);
    if (own == item_class_.end()) return format::kNoItem;
    ItemId cls = own->second;
    RegionId at = region_of(item);
    while (at != region && at != format::kNoRegion) {
      const auto lifted = class_parent_.find(cls);
      if (lifted == class_parent_.end()) return format::kNoItem;
      cls = lifted->second;
      at = parent_region(at);
    }
    return at == region ? cls : format::kNoItem;
  }

  [[nodiscard]] EquivAcc get_equiv_acc(ItemId a, ItemId b) const {
    const RegionId lca = common_region(a, b);
    if (lca == format::kNoRegion) return EquivAcc::Maybe;  // Unmapped: stay safe.
    const ItemId ca = class_of_at(a, lca);
    const ItemId cb = class_of_at(b, lca);
    if (ca == format::kNoItem || cb == format::kNoItem) return EquivAcc::Maybe;
    if (ca != cb) return EquivAcc::None;
    const format::EquivClass* cls = class_ptr(ca);
    if (cls == nullptr) return EquivAcc::Maybe;
    return cls->type == format::EquivAccType::Definite ? EquivAcc::Definite
                                                       : EquivAcc::Maybe;
  }

  [[nodiscard]] EquivAcc get_alias(ItemId a, ItemId b) const {
    const RegionId lca = common_region(a, b);
    if (lca == format::kNoRegion) return EquivAcc::Maybe;
    const ItemId ca = class_of_at(a, lca);
    const ItemId cb = class_of_at(b, lca);
    if (ca == format::kNoItem || cb == format::kNoItem) return EquivAcc::Maybe;
    if (ca == cb) return EquivAcc::None;  // Equivalence, not aliasing.
    const format::EquivClass* cls_a = class_ptr(ca);
    const format::EquivClass* cls_b = class_ptr(cb);
    if (cls_a == nullptr || cls_b == nullptr) return EquivAcc::Maybe;
    if (cls_a->unknown_target || cls_b->unknown_target) return EquivAcc::Maybe;
    const auto it = regions_.find(lca);
    if (it == regions_.end()) return EquivAcc::Maybe;
    for (const format::AliasEntry& alias : it->second->aliases) {
      const bool has_a = std::find(alias.classes.begin(), alias.classes.end(),
                                   ca) != alias.classes.end();
      const bool has_b = std::find(alias.classes.begin(), alias.classes.end(),
                                   cb) != alias.classes.end();
      if (has_a && has_b) return EquivAcc::Maybe;
    }
    return EquivAcc::None;
  }

  [[nodiscard]] EquivAcc may_conflict(ItemId a, ItemId b) const {
    const EquivAcc equiv = get_equiv_acc(a, b);
    if (equiv != EquivAcc::None) return equiv;
    return get_alias(a, b);
  }

  [[nodiscard]] std::vector<LcddResult> get_lcdd(RegionId loop, ItemId a,
                                                 ItemId b) const {
    std::vector<LcddResult> out;
    const auto region_it = regions_.find(loop);
    if (region_it == regions_.end() ||
        region_it->second->type != format::RegionType::Loop) {
      return out;
    }
    const ItemId ca = class_of_at(a, loop);
    const ItemId cb = class_of_at(b, loop);
    if (ca == format::kNoItem || cb == format::kNoItem) return out;
    for (const format::LcddEntry& dep : region_it->second->lcdds) {
      if (dep.src == ca && dep.dst == cb) {
        out.push_back({dep.type, dep.distance, true});
      } else if (dep.src == cb && dep.dst == ca) {
        out.push_back({dep.type, dep.distance, false});
      }
    }
    return out;
  }

  [[nodiscard]] CallAcc get_call_acc(ItemId mem, ItemId call) const {
    const RegionId call_region = region_of(call);
    const RegionId mem_region = region_of(mem);
    if (call_region == format::kNoRegion || mem_region == format::kNoRegion) {
      return CallAcc::RefMod;
    }

    // Least common region of the memory item and the call.
    RegionId lca = format::kNoRegion;
    for (RegionId r = mem_region; r != format::kNoRegion; r = parent_region(r)) {
      if (region_encloses(r, call_region)) {
        lca = r;
        break;
      }
    }
    if (lca == format::kNoRegion) return CallAcc::RefMod;

    const ItemId mem_class = class_of_at(mem, lca);
    if (mem_class == format::kNoItem) return CallAcc::RefMod;
    const format::EquivClass* cls = class_ptr(mem_class);
    if (cls != nullptr && cls->unknown_target) return CallAcc::RefMod;

    // Locate the effect entry at the LCA: per-item if the call is immediate,
    // otherwise the aggregate entry of the LCA child containing the call.
    const format::RegionEntry* region = regions_.at(lca);
    const format::CallEffectEntry* effect = nullptr;
    if (call_region == lca) {
      for (const format::CallEffectEntry& eff : region->call_effects) {
        if (!eff.is_subregion && eff.call_item == call) {
          effect = &eff;
          break;
        }
      }
    } else {
      // Child of lca on the path to call_region.
      RegionId child = call_region;
      while (parent_region(child) != lca && child != format::kNoRegion) {
        child = parent_region(child);
      }
      for (const format::CallEffectEntry& eff : region->call_effects) {
        if (eff.is_subregion && eff.subregion == child) {
          effect = &eff;
          break;
        }
      }
    }
    if (effect == nullptr || effect->unknown) return CallAcc::RefMod;

    const bool in_ref = std::find(effect->ref_classes.begin(),
                                  effect->ref_classes.end(),
                                  mem_class) != effect->ref_classes.end();
    const bool in_mod = std::find(effect->mod_classes.begin(),
                                  effect->mod_classes.end(),
                                  mem_class) != effect->mod_classes.end();
    if (in_ref && in_mod) return CallAcc::RefMod;
    if (in_mod) return CallAcc::Mod;
    if (in_ref) return CallAcc::Ref;
    return CallAcc::None;
  }

 private:
  [[nodiscard]] const format::EquivClass* class_ptr(ItemId class_id) const {
    const auto it = class_region_.find(class_id);
    if (it == class_region_.end()) return nullptr;
    const auto region = regions_.find(it->second);
    if (region == regions_.end()) return nullptr;
    return region->second->find_class(class_id);
  }

  const format::HliEntry* entry_;
  std::unordered_map<ItemId, RegionId> item_region_;
  std::unordered_map<ItemId, ItemId> item_class_;
  std::unordered_map<ItemId, ItemId> class_parent_;
  std::unordered_map<ItemId, RegionId> class_region_;
  std::unordered_map<RegionId, const format::RegionEntry*> regions_;
};

}  // namespace hli::query::reference
