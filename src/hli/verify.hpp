// Static HLI invariant verifier (the soundness contract of §3.2.3).
//
// The whole point of HLI is that it stays *conservatively correct* while
// back-end passes mutate it: a scheduler that trusts a broken equivalence
// partition miscompiles silently.  This pass makes every structural and
// semantic invariant the paper implies explicit and checkable, in the
// sparse-analysis tradition of verifying the representation rather than
// the clients (cf. Tavares et al.):
//
//   HV1xx  line table      items unit-unique, typed, ids in range, lines
//                          sorted, congruent with the back-end mapping
//   HV2xx  region tree     a proper tree: unique ids, consistent
//                          parent/child links, all regions reachable from
//                          the root exactly once (the Euler-tour
//                          precondition of the dense query index)
//   HV3xx  equivalence     a true partition: every memory item in exactly
//                          one class, every child class lifted into
//                          exactly one parent class, chains rooted at the
//                          program-unit region, flags consistent
//   HV4xx  alias sets      symmetric by representation, self-free, only
//                          region-level classes
//   HV5xx  LCDD            endpoints are classes of the (loop) region,
//                          forward distances normalized (>= 1), no
//                          definite dependence on unknown-target classes
//   HV6xx  call REF/MOD    effects reference live classes, every call
//                          item covered exactly once, sub-region
//                          aggregates present on the path to the root
//   HV7xx  differential    conservativeness audit: dense HliUnitView
//                          answers vs. the reference_query oracle
//
// Every finding carries the region/class/item IDs involved, so a red
// verifier run pinpoints which table is poisoned — and, with the audit
// enabled, which query answers the fast path derived from the poison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hli/format.hpp"
#include "support/diagnostics.hpp"

namespace hli::verify {

using format::HliEntry;
using format::HliFile;
using format::ItemId;
using format::RegionId;

/// Stable diagnostic codes, one per invariant.  The numeric groups follow
/// the table layout above; tests assert on codes, not message text.
enum class Code : std::uint16_t {
  // -- Line table (paper §3.1) --
  DuplicateItemId = 101,       ///< Same item ID on two line-table slots.
  ItemIdOutOfRange = 102,      ///< Item ID zero or >= next_id.
  LineTableUnsorted = 103,     ///< Line numbers not strictly increasing.
  EmptyLineEntry = 104,        ///< A line with no items.
  MappingIncongruent = 105,    ///< Back-end-mapped item missing/mistyped.
  // -- Region tree (paper §2.2, Euler precondition of the dense index) --
  RootRegionInvalid = 201,     ///< root_region absent from the table.
  DuplicateRegionId = 202,     ///< Region ID zero or reused.
  ParentChildMismatch = 203,   ///< parent/children links disagree.
  RegionTreeNotTree = 204,     ///< Region unreachable from root (or cycle).
  RegionScopeInverted = 205,   ///< first_line > last_line.
  // -- Equivalent-access partition (paper §2.2.1) --
  ClassIdInvalid = 301,        ///< Class ID zero, out of range, reused, or
                               ///< colliding with a line-table item.
  ClassMemberNotMemoryItem = 302,  ///< Member absent from line table or a call.
  ItemInMultipleClasses = 303,     ///< Partition overlap.
  MemoryItemUncovered = 304,       ///< Partition gap.
  DanglingSubclass = 305,      ///< member_subclass not a child-region class.
  SubclassMultiplyLifted = 306,    ///< Child class in two parent classes.
  ClassChainNotRooted = 307,   ///< Non-root class never lifted to parent.
  ClassWriteFlagInconsistent = 308,  ///< has_write != OR of members.
  UnknownTargetNotMaybe = 309, ///< unknown_target class typed Definite.
  // -- Alias sets (paper §2.2.2) --
  AliasEntryDegenerate = 401,  ///< Fewer than two distinct classes.
  AliasDanglingClass = 402,    ///< References a non-class of the region.
  // -- LCDD (paper §2.2.3) --
  LcddDanglingClass = 501,     ///< src/dst not a class of the region.
  LcddInNonLoopRegion = 502,   ///< Carried dependence outside a loop.
  LcddDistanceNotNormalized = 503,  ///< Distance < 1, or definite without one.
  LcddEndpointUnknownTarget = 504,  ///< Definite dep on an unknown target.
  // -- Call REF/MOD (paper §2.2.4) --
  CallEffectDanglingClass = 601,   ///< ref/mod class not of the region.
  CallEffectItemNotCall = 602,     ///< Keyed item absent or not a call.
  CallEffectSubregionInvalid = 603,  ///< Keyed sub-region not a child.
  CallItemUncovered = 604,     ///< Call item with no per-item entry.
  CallItemMultiplyCovered = 605,   ///< Two per-item entries for one call.
  SubtreeCallsNotAggregated = 606,  ///< Child subtree has calls, parent
                                    ///< lacks its aggregate entry.
  // -- Differential audit --
  AuditDivergence = 701,       ///< Dense and reference answers disagree.
  // -- Independent-analyzer audit (src/analysis/irdep, --audit-deps) --
  IrdepConflictMissed = 801,   ///< HLI NoConflict, irdep proves same-location.
  IrdepCarriedMissed = 802,    ///< HLI no-dep claim, irdep proves carried dep.
};

[[nodiscard]] std::string_view code_name(Code code);

struct Finding {
  Code code;
  RegionId region = format::kNoRegion;  ///< Region involved; kNoRegion if n/a.
  ItemId class_id = format::kNoItem;    ///< Class involved; kNoItem if n/a.
  ItemId item = format::kNoItem;        ///< Item involved; kNoItem if n/a.
  std::string detail;                   ///< Human-readable specifics.
};

/// Renders "HV303 ItemInMultipleClasses region=4 class=7 item=2: ...".
[[nodiscard]] std::string to_string(const Finding& finding);

struct VerifyResult {
  std::vector<Finding> findings;
  std::size_t checks_run = 0;  ///< Individual invariant evaluations.
  [[nodiscard]] bool ok() const { return findings.empty(); }
  [[nodiscard]] bool has(Code code) const;
  /// One finding per line, prefixed with `unit`; empty string when ok.
  [[nodiscard]] std::string render(std::string_view unit) const;
};

/// One back-end-mapped reference, for the HV105 congruence check: the
/// item ID some RTL instruction was stamped with and whether that
/// instruction writes (store) or is a call.
struct MappedRef {
  ItemId item = format::kNoItem;
  bool is_store = false;
  bool is_call = false;
};

struct VerifyOptions {
  /// Findings cap; corruption tends to cascade and the first few codes
  /// are the actionable ones.
  std::size_t max_findings = 64;
  /// When set, each mapped RTL reference is checked against the line
  /// table (exists + access class compatible): the mapping congruence
  /// of §3.2.1.
  const std::vector<MappedRef>* mapped_refs = nullptr;
  /// Differential conservativeness audit: when the structural checks
  /// pass but table checks flag the entry, replay every memory-item
  /// pair query on both the dense HliUnitView and the map-based
  /// reference oracle and report divergent answers (HV701) — the
  /// answers the fast path derived from the broken invariant.
  bool audit_on_findings = false;
  /// Pair cap for the audit (it is O(items^2)).
  std::size_t max_audit_pairs = 250000;
};

/// Verifies one program unit's HLI entry.  Never throws, never mutates,
/// and is robust against arbitrarily corrupt entries (bounded traversals,
/// cycle detection).
[[nodiscard]] VerifyResult verify_entry(const HliEntry& entry,
                                        const VerifyOptions& options = {});

/// Verifies every entry of a file; findings are concatenated and
/// `render`ed per unit into `report` when non-null.
[[nodiscard]] VerifyResult verify_file(const HliFile& file,
                                       const VerifyOptions& options = {},
                                       std::string* report = nullptr);

/// Forwards findings into a DiagnosticEngine (one Error per finding,
/// tagged with `unit`), for front-ends that already speak diagnostics.
void report(const VerifyResult& result, std::string_view unit,
            support::DiagnosticEngine& diags);

}  // namespace hli::verify
