// The HLI query interface (paper §3.2.2): back-end passes retrieve the
// stored information exclusively through these functions, which keeps the
// interface identical across back-end compilers.
//
// HliUnitView indexes one (typically re-read) HliEntry:
//   * HLI_GetEquivAcc  — are two memory items (possibly) the same location
//                        within the current iteration context?
//   * HLI_GetAlias     — alias-table relation of the two items' classes.
//   * HLI_GetLCDD      — loop-carried dependences between two items w.r.t.
//                        an enclosing loop region.
//   * HLI_GetCallAcc   — REF/MOD effect of a call item on a memory item.
//   * HLI_GetRegion    — structural queries (owning region, enclosing
//                        loops, region kind/scope).
//
// The view is a DENSE precomputed index: at construction every item,
// class, and region ID is remapped into contiguous arrays, the region
// tree is Euler-toured (pre/post order intervals), and the class-parent
// chain of every item is flattened into an ancestor table.  Afterwards
// region_encloses/common_region/innermost_loop are O(1) array compares
// and class_of_at is a single indexed lookup — the scheduler issues
// O(n²) may_conflict queries per block, so this path must not chase
// hash maps (cf. the sparse-representation argument in Tavares et al.).
// The pair queries are defined inline below: per-item and per-class facts
// are packed into single structs so one lookup touches one cache line.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "hli/format.hpp"

namespace hli::query {

class BlockConflictMatrix;

using format::HliEntry;
using format::ItemId;
using format::RegionId;

/// Three-valued answer used by the equivalence/alias queries.
enum class EquivAcc : std::uint8_t { None, Maybe, Definite };

/// Call side effects on a memory item.
enum class CallAcc : std::uint8_t { None, Ref, Mod, RefMod };

struct LcddResult {
  format::DepType type = format::DepType::Maybe;
  std::optional<std::int64_t> distance;
  /// True when the dependence runs from `a` (earlier iteration) to `b`.
  bool forward = true;
};

class HliUnitView {
 public:
  /// Builds the index; `entry` must outlive the view.  Rebuild the view
  /// after any maintenance mutation of the entry — debug builds assert
  /// (via the HliEntry generation counter) that a stale view is never
  /// queried.
  explicit HliUnitView(const HliEntry& entry);

  [[nodiscard]] const HliEntry& entry() const { return *entry_; }

  /// True when the underlying entry was mutated (maintenance) after this
  /// view was built; a stale view must be rebuilt before further queries.
  [[nodiscard]] bool stale() const {
    return entry_->generation != built_generation_;
  }

  // -- Structural queries (HLI_GetRegion family) --------------------------

  /// Region owning an item: for memory items, the region whose class lists
  /// it; for calls, the region holding its per-item call-effect entry.
  [[nodiscard]] RegionId region_of(ItemId item) const;
  [[nodiscard]] RegionId parent_region(RegionId region) const;
  /// Innermost loop region enclosing `region` (or `region` itself if loop);
  /// kNoRegion when none.
  [[nodiscard]] RegionId innermost_loop(RegionId region) const;
  /// Least common ancestor region of two items' regions.
  [[nodiscard]] RegionId common_region(ItemId a, ItemId b) const;
  /// True when `outer` encloses (or equals) `inner`.
  [[nodiscard]] bool region_encloses(RegionId outer, RegionId inner) const;

  /// Class representing `item` at `region` (which must enclose the item's
  /// own region); kNoItem when unknown.
  [[nodiscard]] ItemId class_of_at(ItemId item, RegionId region) const;

  // -- The paper's query functions ----------------------------------------

  /// HLI_GetEquivAcc: may the two memory items access the same location in
  /// the same iteration of all their common loops?  Definite only when
  /// their least-common-region class is a single definite class.
  [[nodiscard]] EquivAcc get_equiv_acc(ItemId a, ItemId b) const;

  /// HLI_GetAlias: alias-table relation between the items' classes at
  /// their least common region (excludes same-class equivalence).
  [[nodiscard]] EquivAcc get_alias(ItemId a, ItemId b) const;

  /// Combined "may these two references conflict?" — the disambiguation
  /// answer the instruction scheduler consumes (Figure 5): same class,
  /// aliased classes, or unknown targets.
  [[nodiscard]] EquivAcc may_conflict(ItemId a, ItemId b) const;

  /// HLI_GetLCDD: loop-carried dependences between the items' classes at
  /// loop region `loop` (must enclose both items).
  [[nodiscard]] std::vector<LcddResult> get_lcdd(RegionId loop, ItemId a,
                                                 ItemId b) const;

  /// HLI_GetCallAcc: effect of call item `call` on memory item `mem`
  /// (Figure 4's CSE helper).  Conservatively RefMod when the callee's
  /// effects are unknown.
  [[nodiscard]] CallAcc get_call_acc(ItemId mem, ItemId call) const;

  /// True when class `cls` of loop region `loop` provably covers disjoint
  /// locations in distinct iterations: the class is variant (strided with
  /// the IV), its targets are known, and the builder's section analysis
  /// recorded NO carried dependence of the class on itself (the builder
  /// emits a self LCDD entry for every written variant class whose
  /// footprint may recur, so absence is a proof, not missing data).  A
  /// same-class store/load pair in such a class carries no loop
  /// dependence even though may_conflict() answers Definite for it
  /// within an iteration.
  [[nodiscard]] bool class_iteration_disjoint(RegionId loop,
                                              ItemId cls) const;

  /// One past the largest item/class ID the dense arrays cover; every ID
  /// at or beyond this answers Maybe.  Batch consumers (and the audit)
  /// use it to size their own per-item tables.
  [[nodiscard]] std::size_t item_limit() const { return iteminfo_.size(); }

 private:
  /// The batch layer (hli/batch_query.hpp) builds per-block conflict
  /// bitmatrices by sequentially scanning these tables; it must see the
  /// same per-item/per-class facts the scalar queries see.
  friend class BlockConflictMatrix;
  /// Sentinel for "no dense index".
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Per-region precomputed facts, indexed by dense region index.
  struct RegionInfo {
    RegionId id = format::kNoRegion;
    RegionId parent_id = format::kNoRegion;
    std::uint32_t parent = kNone;  ///< Dense index of the parent.
    std::uint32_t pre = 0;         ///< Euler-tour preorder number.
    std::uint32_t post = 0;        ///< Euler-tour postorder bound.
    std::uint32_t depth = 0;       ///< Root depth 0.
    /// Nearest enclosing loop (self-inclusive), raw ID; kNoRegion if none.
    RegionId nearest_loop = format::kNoRegion;
    /// Stable: the regions vector of an HliEntry is never resized by
    /// maintenance, only its inner tables change.
    const format::RegionEntry* table = nullptr;
  };

  /// Per-item facts packed so the pair-query hot path touches one line.
  struct ItemInfo {
    std::uint32_t dense = kNone;      ///< Dense owning region; kNone.
    std::uint32_t chain_off = kNone;  ///< Offset into chain_pool_; kNone.
    std::uint32_t chain_len = 0;
  };

  /// Per-class facts, likewise packed; indexed by raw class ID.
  struct ClassInfo {
    std::uint8_t flags = 0;
    RegionId region = format::kNoRegion;   ///< Defining region.
    std::uint32_t alias_off = kNone;       ///< Offset into alias_pool_.
    std::uint32_t alias_len = 0;
  };

  [[nodiscard]] std::uint32_t dense_region(RegionId id) const {
    return id < region_index_.size() ? region_index_[id] : kNone;
  }
  /// `outer`/`inner` are dense indices; O(1) Euler interval compare.
  [[nodiscard]] bool dense_encloses(std::uint32_t outer,
                                    std::uint32_t inner) const {
    return rinfo_[outer].pre <= rinfo_[inner].pre &&
           rinfo_[inner].post <= rinfo_[outer].post;
  }
  /// Dense LCA of two dense region indices (climb with interval checks).
  [[nodiscard]] std::uint32_t dense_lca(std::uint32_t a,
                                        std::uint32_t b) const {
    std::uint32_t r = a;
    while (r != kNone && !dense_encloses(r, b)) r = rinfo_[r].parent;
    return r;
  }
  [[nodiscard]] bool class_known(ItemId id) const {
    return id < cinfo_.size() && (cinfo_[id].flags & kIsClass) != 0;
  }
  /// Class representing `item` at ancestor region `d_anc` when the item's
  /// own dense region `d_item` is already known and `d_anc` encloses it —
  /// the pre-validated core of class_of_at.  `item` must be within the
  /// dense arrays.
  [[nodiscard]] ItemId class_at_ancestor(const ItemInfo& info,
                                         std::uint32_t d_anc) const {
    if (info.chain_off == kNone) return format::kNoItem;
    const std::uint32_t lifts = rinfo_[info.dense].depth - rinfo_[d_anc].depth;
    if (lifts >= info.chain_len) return format::kNoItem;
    return chain_pool_[info.chain_off + lifts];
  }
  /// Alias-table relation of two distinct classes at dense LCA `lca`
  /// (the shared tail of get_alias / may_conflict).
  [[nodiscard]] EquivAcc alias_of_classes(ItemId ca, ItemId cb,
                                          std::uint32_t lca) const;
  void check_fresh() const {
    assert(!stale() && "HliUnitView queried after the HliEntry was mutated; "
                       "rebuild the view after maintenance");
  }

  static constexpr std::uint8_t kIsClass = 1u << 0;
  static constexpr std::uint8_t kDefinite = 1u << 1;
  static constexpr std::uint8_t kUnknownTarget = 1u << 2;

  const HliEntry* entry_;
  std::uint64_t built_generation_ = 0;

  // Region side: raw ID -> dense index, plus per-dense-region facts.
  std::vector<std::uint32_t> region_index_;
  std::vector<RegionInfo> rinfo_;

  // Item side, indexed by raw item ID (items/classes share one ID space):
  std::vector<RegionId> item_region_;  ///< Owning region; kNoRegion.
  std::vector<ItemInfo> iteminfo_;
  /// Flattened lifted-class chains: chain_pool_[off + k] is the class
  /// representing the item at its region's k-th ancestor (k = 0 is the
  /// item's own region).
  std::vector<ItemId> chain_pool_;

  // Class side, indexed by raw class ID:
  std::vector<ClassInfo> cinfo_;
  /// Per-class sorted list of alias partners within its defining region.
  std::vector<ItemId> alias_pool_;
};

// The pair queries are inline: the scheduler (and the microbenchmark)
// call them in O(n²) loops, so the compiler should hoist the array base
// pointers and fold the shared prologue into the caller.

inline EquivAcc HliUnitView::get_equiv_acc(ItemId a, ItemId b) const {
  check_fresh();
  if (a >= iteminfo_.size() || b >= iteminfo_.size()) {
    return EquivAcc::Maybe;  // Unmapped: stay safe.
  }
  const ItemInfo& ia = iteminfo_[a];
  const ItemInfo& ib = iteminfo_[b];
  if (ia.dense == kNone || ib.dense == kNone) return EquivAcc::Maybe;
  const std::uint32_t lca = dense_lca(ia.dense, ib.dense);
  if (lca == kNone) return EquivAcc::Maybe;
  const ItemId ca = class_at_ancestor(ia, lca);
  const ItemId cb = class_at_ancestor(ib, lca);
  if (ca == format::kNoItem || cb == format::kNoItem) return EquivAcc::Maybe;
  if (ca != cb) return EquivAcc::None;
  if (!class_known(ca)) return EquivAcc::Maybe;
  return (cinfo_[ca].flags & kDefinite) != 0 ? EquivAcc::Definite
                                             : EquivAcc::Maybe;
}

inline EquivAcc HliUnitView::get_alias(ItemId a, ItemId b) const {
  check_fresh();
  if (a >= iteminfo_.size() || b >= iteminfo_.size()) return EquivAcc::Maybe;
  const ItemInfo& ia = iteminfo_[a];
  const ItemInfo& ib = iteminfo_[b];
  if (ia.dense == kNone || ib.dense == kNone) return EquivAcc::Maybe;
  const std::uint32_t lca = dense_lca(ia.dense, ib.dense);
  if (lca == kNone) return EquivAcc::Maybe;
  const ItemId ca = class_at_ancestor(ia, lca);
  const ItemId cb = class_at_ancestor(ib, lca);
  if (ca == format::kNoItem || cb == format::kNoItem) return EquivAcc::Maybe;
  if (ca == cb) return EquivAcc::None;  // Equivalence, not aliasing.
  return alias_of_classes(ca, cb, lca);
}

inline EquivAcc HliUnitView::may_conflict(ItemId a, ItemId b) const {
  // Fused get_equiv_acc + get_alias: one LCA walk and one class lookup
  // per item instead of redoing both in each sub-query — this is the
  // scheduler's O(n²)-per-block entry point.
  check_fresh();
  if (a >= iteminfo_.size() || b >= iteminfo_.size()) return EquivAcc::Maybe;
  const ItemInfo& ia = iteminfo_[a];
  const ItemInfo& ib = iteminfo_[b];
  if (ia.dense == kNone || ib.dense == kNone) return EquivAcc::Maybe;
  const std::uint32_t lca = dense_lca(ia.dense, ib.dense);
  if (lca == kNone) return EquivAcc::Maybe;
  const ItemId ca = class_at_ancestor(ia, lca);
  const ItemId cb = class_at_ancestor(ib, lca);
  if (ca == format::kNoItem || cb == format::kNoItem) return EquivAcc::Maybe;
  if (ca == cb) {
    if (!class_known(ca)) return EquivAcc::Maybe;
    return (cinfo_[ca].flags & kDefinite) != 0 ? EquivAcc::Definite
                                               : EquivAcc::Maybe;
  }
  // Equivalence answered None; the alias table decides.
  return alias_of_classes(ca, cb, lca);
}

/// Pairwise memo for `may_conflict` answers, keyed on the unordered item
/// pair (the relation is symmetric).  The scheduler consults the view for
/// every memory pair of every block and again in the post-RA pass; the
/// cache lets repeated DDG edge tests over one function hit precomputed
/// answers.  Only valid for one (entry, generation); clear on rebuild.
class ConflictCache {
 public:
  [[nodiscard]] std::optional<EquivAcc> lookup(ItemId a, ItemId b) const {
    const auto it = map_.find(key(a, b));
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  void insert(ItemId a, ItemId b, EquivAcc answer) {
    map_.emplace(key(a, b), answer);
  }
  void clear() { map_.clear(); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  [[nodiscard]] static std::uint64_t key(ItemId a, ItemId b) {
    const std::uint64_t lo = a < b ? a : b;
    const std::uint64_t hi = a < b ? b : a;
    return (hi << 32) | lo;
  }
  std::unordered_map<std::uint64_t, EquivAcc> map_;
};

}  // namespace hli::query
