// The HLI query interface (paper §3.2.2): back-end passes retrieve the
// stored information exclusively through these functions, which keeps the
// interface identical across back-end compilers.
//
// HliUnitView indexes one (typically re-read) HliEntry:
//   * HLI_GetEquivAcc  — are two memory items (possibly) the same location
//                        within the current iteration context?
//   * HLI_GetAlias     — alias-table relation of the two items' classes.
//   * HLI_GetLCDD      — loop-carried dependences between two items w.r.t.
//                        an enclosing loop region.
//   * HLI_GetCallAcc   — REF/MOD effect of a call item on a memory item.
//   * HLI_GetRegion    — structural queries (owning region, enclosing
//                        loops, region kind/scope).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "hli/format.hpp"

namespace hli::query {

using format::HliEntry;
using format::ItemId;
using format::RegionId;

/// Three-valued answer used by the equivalence/alias queries.
enum class EquivAcc : std::uint8_t { None, Maybe, Definite };

/// Call side effects on a memory item.
enum class CallAcc : std::uint8_t { None, Ref, Mod, RefMod };

struct LcddResult {
  format::DepType type = format::DepType::Maybe;
  std::optional<std::int64_t> distance;
  /// True when the dependence runs from `a` (earlier iteration) to `b`.
  bool forward = true;
};

class HliUnitView {
 public:
  /// Builds the index; `entry` must outlive the view.  Rebuild the view
  /// after any maintenance mutation of the entry.
  explicit HliUnitView(const HliEntry& entry);

  [[nodiscard]] const HliEntry& entry() const { return *entry_; }

  // -- Structural queries (HLI_GetRegion family) --------------------------

  /// Region owning an item: for memory items, the region whose class lists
  /// it; for calls, the region holding its per-item call-effect entry.
  [[nodiscard]] RegionId region_of(ItemId item) const;
  [[nodiscard]] RegionId parent_region(RegionId region) const;
  /// Innermost loop region enclosing `region` (or `region` itself if loop);
  /// kNoRegion when none.
  [[nodiscard]] RegionId innermost_loop(RegionId region) const;
  /// Least common ancestor region of two items' regions.
  [[nodiscard]] RegionId common_region(ItemId a, ItemId b) const;
  /// True when `outer` encloses (or equals) `inner`.
  [[nodiscard]] bool region_encloses(RegionId outer, RegionId inner) const;

  /// Class representing `item` at `region` (which must enclose the item's
  /// own region); kNoItem when unknown.
  [[nodiscard]] ItemId class_of_at(ItemId item, RegionId region) const;

  // -- The paper's query functions ----------------------------------------

  /// HLI_GetEquivAcc: may the two memory items access the same location in
  /// the same iteration of all their common loops?  Definite only when
  /// their least-common-region class is a single definite class.
  [[nodiscard]] EquivAcc get_equiv_acc(ItemId a, ItemId b) const;

  /// HLI_GetAlias: alias-table relation between the items' classes at
  /// their least common region (excludes same-class equivalence).
  [[nodiscard]] EquivAcc get_alias(ItemId a, ItemId b) const;

  /// Combined "may these two references conflict?" — the disambiguation
  /// answer the instruction scheduler consumes (Figure 5): same class,
  /// aliased classes, or unknown targets.
  [[nodiscard]] EquivAcc may_conflict(ItemId a, ItemId b) const;

  /// HLI_GetLCDD: loop-carried dependences between the items' classes at
  /// loop region `loop` (must enclose both items).
  [[nodiscard]] std::vector<LcddResult> get_lcdd(RegionId loop, ItemId a,
                                                 ItemId b) const;

  /// HLI_GetCallAcc: effect of call item `call` on memory item `mem`
  /// (Figure 4's CSE helper).  Conservatively RefMod when the callee's
  /// effects are unknown.
  [[nodiscard]] CallAcc get_call_acc(ItemId mem, ItemId call) const;

 private:
  [[nodiscard]] const format::EquivClass* class_ptr(ItemId class_id) const;

  const HliEntry* entry_;
  std::unordered_map<ItemId, RegionId> item_region_;
  std::unordered_map<ItemId, ItemId> item_class_;     ///< Item -> own-region class.
  std::unordered_map<ItemId, ItemId> class_parent_;   ///< Class -> parent-region class.
  std::unordered_map<ItemId, RegionId> class_region_; ///< Class -> defining region.
  std::unordered_map<RegionId, const format::RegionEntry*> regions_;
};

}  // namespace hli::query
