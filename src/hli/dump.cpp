#include "hli/dump.hpp"

#include <sstream>

namespace hli::dump {

using namespace format;

namespace {

void render_id_set(std::ostringstream& out, const std::vector<ItemId>& ids) {
  out << '{';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out << ',';
    out << ids[i];
  }
  out << '}';
}

void render_region(std::ostringstream& out, const RegionEntry& region) {
  out << "Region " << region.id << " ("
      << (region.type == RegionType::Loop ? "loop" : "unit") << ", lines "
      << region.first_line << "-" << region.last_line;
  if (region.parent != kNoRegion) out << ", in region " << region.parent;
  out << ")\n";
  for (const EquivClass& cls : region.classes) {
    out << "  class " << cls.id << "  " << cls.display << "  "
        << to_string(cls.type);
    if (cls.unknown_target) out << " UNKNOWN-TARGET";
    if (cls.has_write) out << " writes";
    out << "  items ";
    render_id_set(out, cls.member_items);
    out << " subclasses ";
    render_id_set(out, cls.member_subclasses);
    out << '\n';
  }
  for (const AliasEntry& alias : region.aliases) {
    out << "  alias ";
    render_id_set(out, alias.classes);
    out << '\n';
  }
  for (const LcddEntry& dep : region.lcdds) {
    out << "  lcdd " << dep.src << " -> " << dep.dst << "  "
        << to_string(dep.type) << " distance ";
    if (dep.distance) {
      out << *dep.distance;
    } else {
      out << '?';
    }
    out << '\n';
  }
  for (const CallEffectEntry& eff : region.call_effects) {
    if (eff.is_subregion) {
      out << "  calls-in-region " << eff.subregion;
    } else {
      out << "  call item " << eff.call_item;
    }
    if (eff.unknown) {
      out << "  CLOBBERS-ALL\n";
      continue;
    }
    out << "  ref ";
    render_id_set(out, eff.ref_classes);
    out << " mod ";
    render_id_set(out, eff.mod_classes);
    out << '\n';
  }
}

}  // namespace

std::string render_entry(const HliEntry& entry) {
  std::ostringstream out;
  out << "unit " << entry.unit_name << "\n";
  out << "line table (" << entry.line_table.item_count() << " items):\n";
  for (const LineEntry& line : entry.line_table.lines()) {
    out << "  line " << line.line << ":";
    for (const ItemEntry& item : line.items) {
      out << "  " << item.id << ':' << to_string(item.type);
    }
    out << '\n';
  }
  out << "region table (" << entry.regions.size() << " regions, root "
      << entry.root_region << "):\n";
  for (const RegionEntry& region : entry.regions) {
    render_region(out, region);
  }
  return std::move(out).str();
}

std::string render_file(const HliFile& file) {
  std::string out;
  for (const HliEntry& entry : file.entries) {
    out += render_entry(entry);
    out += '\n';
  }
  return out;
}

}  // namespace hli::dump
