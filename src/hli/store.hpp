// Demand-driven HLI import (paper §3.2.1: the back-end "imports HLI per
// function on demand").  An HliStore wraps one serialized interchange
// file — text or HLIB binary, in memory or mmap'd from disk — and hands
// out decoded HliEntry tables per unit:
//
//   * Binary containers decode only the meta block (string pool + unit
//     index) up front; each unit payload is decoded on first `get`, so a
//     driver compiling one function out of a thousand-unit file pays for
//     one unit plus the index.
//   * Text files have no index and are parsed eagerly on construction —
//     the store is then just a name-keyed view over the parsed entries.
//
// `get` is thread-safe: a shared store behind `driver::compile_many`
// decodes each unit exactly once (std::call_once per unit) no matter how
// many workers race for it.  Returned entries are owned by the store and
// immutable through this interface; compilation copies the entry it
// mutates (HLI maintenance is per-compilation state, the store is the
// shared read-only source).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hli/serialize.hpp"
#include "support/mmap_file.hpp"
#include "support/telemetry.hpp"

namespace hli {

class HliStore {
 public:
  /// Takes ownership of in-memory interchange bytes; the format is
  /// auto-detected by magic.  Throws support::CompileError on malformed
  /// input (for binary: header/footer/meta problems — unit payloads are
  /// validated lazily).
  explicit HliStore(std::string bytes);

  /// Opens `path` through support::MappedFile (mmap with a read-all
  /// fallback) and auto-detects the format.
  [[nodiscard]] static HliStore open(const std::string& path);

  /// open() on the heap — for owners that must outlive a scope (the
  /// compile service's cross-request store registry); the type itself
  /// stays non-movable so Slot pointers remain stable.
  [[nodiscard]] static std::unique_ptr<HliStore> open_unique(
      const std::string& path);

  HliStore(HliStore&&) = delete;  // Slots hand out stable pointers.
  HliStore& operator=(HliStore&&) = delete;

  [[nodiscard]] std::size_t unit_count() const { return slots_.size(); }
  [[nodiscard]] std::vector<std::string> unit_names() const;
  [[nodiscard]] bool has_unit(const std::string& name) const {
    return by_name_.count(name) != 0;
  }
  [[nodiscard]] bool is_binary() const { return binary_; }

  /// The entry for `name`, decoding it on first request; nullptr when the
  /// store has no such unit.  Thread-safe; the pointer stays valid (and
  /// the entry unchanged) for the store's lifetime.
  [[nodiscard]] const format::HliEntry* get(const std::string& name) const;

  /// Content fingerprint of `name`'s serialized HLI — the identity the
  /// compile service's content-addressed cache keys units by.  For HLIB
  /// containers this derives from the per-unit index (checksum + payload
  /// length) WITHOUT decoding the payload, so a warm cache hit never
  /// touches the unit's bytes; text stores (parsed eagerly anyway) hash
  /// the re-serialized entry.  std::nullopt when the unit is absent.
  [[nodiscard]] std::optional<std::uint64_t> unit_checksum(
      const std::string& name) const;

  /// Materializes every unit into an HliFile, preserving on-disk order.
  [[nodiscard]] format::HliFile import_all() const;

  /// Units decoded so far — the laziness observable the demand-driven
  /// import tests assert on.  Text stores parse eagerly, so this equals
  /// unit_count() from construction.  Backed by the store's shared
  /// telemetry slot for `store.units_decoded` (one mechanism, not two).
  [[nodiscard]] std::size_t units_decoded() const;

  /// How many times `name`'s payload was actually decoded (0 or, if
  /// `get` honors its decode-once contract, exactly 1).
  [[nodiscard]] std::size_t decode_count(const std::string& name) const;

  /// Snapshot of this store's `store.*` counters (units_decoded,
  /// bytes_mapped) — the atomic cross-thread accounting a shared
  /// compile_many store accumulates.  Decodes are ALSO charged to the
  /// decoding thread's ambient CounterSet, so a per-compilation store
  /// attributes its work to that compilation deterministically.
  [[nodiscard]] telemetry::CounterSet telemetry_snapshot() const {
    return counters_.snapshot();
  }

 private:
  explicit HliStore(support::MappedFile file);
  void init(std::string_view bytes);

  struct Slot {
    std::string name;
    std::size_t index = 0;  ///< Position in the container's unit index.
    mutable std::once_flag once;
    mutable format::HliEntry entry;
    mutable std::atomic<std::uint32_t> decodes{0};
  };

  const Slot* find_slot(const std::string& name) const;
  void decode_slot(const Slot& slot) const;

  support::MappedFile file_;  ///< Backing storage when open()ed from disk.
  std::string owned_;         ///< Backing storage for in-memory bytes.
  serialize::HlibContainer container_;  ///< Meta block (binary only).
  /// unique_ptr: std::once_flag is neither movable nor copyable.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::unordered_map<std::string_view, std::size_t> by_name_;
  bool binary_ = false;
  /// Shared `store.*` accounting (units_decoded, bytes_mapped): atomic
  /// because compile_many workers race decode_slot on a shared store.
  mutable telemetry::AtomicCounterSet counters_;
};

}  // namespace hli
