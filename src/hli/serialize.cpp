#include "hli/serialize.hpp"

#include <charconv>
#include <cstring>

#include "support/string_utils.hpp"
#include "support/telemetry.hpp"

namespace hli::serialize {

using namespace format;

namespace {
const telemetry::Counter c_checksum_verifies =
    telemetry::counter("store.checksum_verifies");
}  // namespace
using support::CompileError;

namespace {

const char* item_code(ItemType type) {
  switch (type) {
    case ItemType::Load: return "L";
    case ItemType::Store: return "S";
    case ItemType::Call: return "C";
    case ItemType::ArgStore: return "AS";
    case ItemType::ArgLoad: return "AL";
  }
  return "?";
}

ItemType item_type_from(std::string_view code, std::size_t line_no) {
  if (code == "L") return ItemType::Load;
  if (code == "S") return ItemType::Store;
  if (code == "C") return ItemType::Call;
  if (code == "AS") return ItemType::ArgStore;
  if (code == "AL") return ItemType::ArgLoad;
  throw CompileError("HLI parse error at line " + std::to_string(line_no) +
                     ": bad item type '" + std::string(code) + "'");
}

// The text writer appends straight into one caller-reserved std::string —
// no per-entry std::ostringstream, no intermediate copies.

template <typename Int>
void append_num(std::string& out, Int value) {
  char buf[21];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, end);
}

void write_id_list(std::string& out, const char* tag,
                   const std::vector<ItemId>& ids) {
  out += ' ';
  out += tag;
  out += " :";
  for (const ItemId id : ids) {
    out += ' ';
    append_num(out, id);
  }
}

void write_region(std::string& out, const RegionEntry& region) {
  out += "region ";
  append_num(out, region.id);
  out += region.type == RegionType::Loop ? " loop parent " : " unit parent ";
  append_num(out, region.parent);
  out += " scope ";
  append_num(out, region.first_line);
  out += ' ';
  append_num(out, region.last_line);
  out += " children :";
  for (const RegionId c : region.children) {
    out += ' ';
    append_num(out, c);
  }
  out += '\n';
  for (const EquivClass& cls : region.classes) {
    out += "class ";
    append_num(out, cls.id);
    out += ' ';
    out += to_string(cls.type);
    out += " base ";
    out += cls.base.empty() ? "-" : cls.base;
    out += " unk ";
    out += cls.unknown_target ? '1' : '0';
    out += " wr ";
    out += cls.has_write ? '1' : '0';
    out += " inv ";
    out += cls.loop_invariant ? '1' : '0';
    write_id_list(out, "items", cls.member_items);
    write_id_list(out, "subs", cls.member_subclasses);
    out += " disp ";
    out += cls.display;
    out += '\n';
  }
  for (const AliasEntry& alias : region.aliases) {
    out += "alias :";
    for (const ItemId id : alias.classes) {
      out += ' ';
      append_num(out, id);
    }
    out += '\n';
  }
  for (const LcddEntry& dep : region.lcdds) {
    out += "lcdd ";
    append_num(out, dep.src);
    out += ' ';
    append_num(out, dep.dst);
    out += ' ';
    out += to_string(dep.type);
    out += " dist ";
    if (dep.distance) {
      append_num(out, *dep.distance);
    } else {
      out += '?';
    }
    out += '\n';
  }
  for (const CallEffectEntry& eff : region.call_effects) {
    if (eff.is_subregion) {
      out += "calleff region ";
      append_num(out, eff.subregion);
    } else {
      out += "calleff item ";
      append_num(out, eff.call_item);
    }
    out += " unk ";
    out += eff.unknown ? '1' : '0';
    write_id_list(out, "ref", eff.ref_classes);
    write_id_list(out, "mod", eff.mod_classes);
    out += '\n';
  }
  out += "endregion\n";
}

/// Generous upper-ish bound on the serialized size of one entry, so the
/// single output buffer is reserved once instead of growing through the
/// append stream.
std::size_t estimate_entry_size(const HliEntry& entry) {
  std::size_t size = 64 + entry.unit_name.size();
  for (const LineEntry& line : entry.line_table.lines()) {
    size += 16 + line.items.size() * 12;
  }
  for (const RegionEntry& region : entry.regions) {
    size += 80 + region.children.size() * 8;
    for (const EquivClass& cls : region.classes) {
      size += 64 + cls.base.size() + cls.display.size() +
              (cls.member_items.size() + cls.member_subclasses.size()) * 8;
    }
    for (const AliasEntry& alias : region.aliases) {
      size += 16 + alias.classes.size() * 8;
    }
    size += region.lcdds.size() * 40;
    for (const CallEffectEntry& eff : region.call_effects) {
      size += 40 + (eff.ref_classes.size() + eff.mod_classes.size()) * 8;
    }
  }
  return size;
}

void append_entry(std::string& out, const HliEntry& entry) {
  out += "unit ";
  out += entry.unit_name;
  out += " nextid ";
  append_num(out, entry.next_id);
  out += '\n';
  for (const LineEntry& line : entry.line_table.lines()) {
    out += "line ";
    append_num(out, line.line);
    out += " :";
    for (const ItemEntry& item : line.items) {
      out += ' ';
      append_num(out, item.id);
      out += ':';
      out += item_code(item.type);
    }
    out += '\n';
  }
  out += "regions ";
  append_num(out, entry.regions.size());
  out += " root ";
  append_num(out, entry.root_region);
  out += '\n';
  for (const RegionEntry& region : entry.regions) {
    write_region(out, region);
  }
  out += "endunit\n";
}

}  // namespace

std::string write_entry(const HliEntry& entry) {
  std::string out;
  out.reserve(estimate_entry_size(entry));
  append_entry(out, entry);
  return out;
}

std::string write_hli(const HliFile& file) {
  std::size_t estimate = 8;
  for (const HliEntry& entry : file.entries) {
    estimate += estimate_entry_size(entry);
  }
  std::string out;
  out.reserve(estimate);
  out += "HLI v1\n";
  for (const HliEntry& entry : file.entries) {
    append_entry(out, entry);
  }
  return out;
}

namespace {

/// Line-based cursor with diagnostics for the reader.
class Reader {
 public:
  explicit Reader(std::string_view text) : lines_(support::split(text, '\n')) {}

  [[nodiscard]] bool done() const { return pos_ >= lines_.size(); }

  [[nodiscard]] std::string_view peek() {
    while (pos_ < lines_.size() && support::trim(lines_[pos_]).empty()) ++pos_;
    return pos_ < lines_.size() ? support::trim(lines_[pos_]) : std::string_view{};
  }

  std::string_view next() {
    const std::string_view line = peek();
    ++pos_;
    return line;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError("HLI parse error at line " + std::to_string(pos_) + ": " +
                       message);
  }

  [[nodiscard]] std::size_t line_no() const { return pos_; }

 private:
  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_num(Reader& r, std::string_view token) {
  std::uint64_t value = 0;
  if (!support::parse_u64(token, value)) {
    r.fail("expected number, got '" + std::string(token) + "'");
  }
  return value;
}

/// Parses `<tag> : id id ...` starting at tokens[at]; returns index after.
std::size_t parse_id_list(Reader& r, const std::vector<std::string_view>& tokens,
                          std::size_t at, std::string_view tag,
                          std::vector<ItemId>& out) {
  if (at >= tokens.size() || tokens[at] != tag) {
    r.fail("expected '" + std::string(tag) + "' list");
  }
  ++at;
  if (at >= tokens.size() || tokens[at] != ":") r.fail("expected ':'");
  ++at;
  while (at < tokens.size()) {
    std::uint64_t value = 0;
    if (!support::parse_u64(tokens[at], value)) break;
    out.push_back(static_cast<ItemId>(value));
    ++at;
  }
  return at;
}

EquivClass parse_class(Reader& r, std::string_view line) {
  // class <id> <def|maybe> base <name> unk <b> wr <b> items : ... subs : ... disp <rest>
  const std::size_t disp_pos = line.find(" disp ");
  std::string display;
  std::string_view head = line;
  if (disp_pos != std::string_view::npos) {
    display = std::string(line.substr(disp_pos + 6));
    head = line.substr(0, disp_pos);
  }
  const auto tokens = support::split_ws(head);
  if (tokens.size() < 12) r.fail("malformed class line");
  EquivClass cls;
  cls.id = static_cast<ItemId>(parse_num(r, tokens[1]));
  cls.type = tokens[2] == "def" ? EquivAccType::Definite : EquivAccType::Maybe;
  if (tokens[3] != "base") r.fail("expected 'base'");
  cls.base = tokens[4] == "-" ? "" : std::string(tokens[4]);
  if (tokens[5] != "unk") r.fail("expected 'unk'");
  cls.unknown_target = parse_num(r, tokens[6]) != 0;
  if (tokens[7] != "wr") r.fail("expected 'wr'");
  cls.has_write = parse_num(r, tokens[8]) != 0;
  if (tokens[9] != "inv") r.fail("expected 'inv'");
  cls.loop_invariant = parse_num(r, tokens[10]) != 0;
  std::size_t at = 11;
  at = parse_id_list(r, tokens, at, "items", cls.member_items);
  at = parse_id_list(r, tokens, at, "subs", cls.member_subclasses);
  cls.display = std::move(display);
  return cls;
}

RegionEntry parse_region_header(Reader& r, std::string_view line) {
  const auto tokens = support::split_ws(line);
  if (tokens.size() < 10) r.fail("malformed region header");
  RegionEntry region;
  region.id = static_cast<RegionId>(parse_num(r, tokens[1]));
  region.type = tokens[2] == "loop" ? RegionType::Loop : RegionType::Unit;
  if (tokens[3] != "parent") r.fail("expected 'parent'");
  region.parent = static_cast<RegionId>(parse_num(r, tokens[4]));
  if (tokens[5] != "scope") r.fail("expected 'scope'");
  region.first_line = static_cast<std::uint32_t>(parse_num(r, tokens[6]));
  region.last_line = static_cast<std::uint32_t>(parse_num(r, tokens[7]));
  if (tokens[8] != "children" || tokens[9] != ":") r.fail("expected children list");
  for (std::size_t i = 10; i < tokens.size(); ++i) {
    region.children.push_back(static_cast<RegionId>(parse_num(r, tokens[i])));
  }
  return region;
}

void parse_region_body(Reader& r, RegionEntry& region) {
  while (!r.done()) {
    const std::string_view line = r.peek();
    if (line == "endregion") {
      (void)r.next();
      return;
    }
    if (support::starts_with(line, "class ")) {
      region.classes.push_back(parse_class(r, r.next()));
    } else if (support::starts_with(line, "alias ")) {
      const auto tokens = support::split_ws(r.next());
      AliasEntry alias;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        alias.classes.push_back(static_cast<ItemId>(parse_num(r, tokens[i])));
      }
      region.aliases.push_back(std::move(alias));
    } else if (support::starts_with(line, "lcdd ")) {
      const auto tokens = support::split_ws(r.next());
      if (tokens.size() < 6) r.fail("malformed lcdd line");
      LcddEntry dep;
      dep.src = static_cast<ItemId>(parse_num(r, tokens[1]));
      dep.dst = static_cast<ItemId>(parse_num(r, tokens[2]));
      dep.type = tokens[3] == "def" ? DepType::Definite : DepType::Maybe;
      if (tokens[4] != "dist") r.fail("expected 'dist'");
      if (tokens[5] != "?") {
        std::int64_t value = 0;
        if (!support::parse_i64(tokens[5], value)) r.fail("bad distance");
        dep.distance = value;
      }
      region.lcdds.push_back(dep);
    } else if (support::starts_with(line, "calleff ")) {
      const auto tokens = support::split_ws(r.next());
      if (tokens.size() < 5) r.fail("malformed calleff line");
      CallEffectEntry eff;
      if (tokens[1] == "region") {
        eff.is_subregion = true;
        eff.subregion = static_cast<RegionId>(parse_num(r, tokens[2]));
      } else if (tokens[1] == "item") {
        eff.call_item = static_cast<ItemId>(parse_num(r, tokens[2]));
      } else {
        r.fail("expected 'item' or 'region'");
      }
      if (tokens[3] != "unk") r.fail("expected 'unk'");
      eff.unknown = parse_num(r, tokens[4]) != 0;
      std::size_t at = 5;
      at = parse_id_list(r, tokens, at, "ref", eff.ref_classes);
      at = parse_id_list(r, tokens, at, "mod", eff.mod_classes);
      region.call_effects.push_back(std::move(eff));
    } else {
      r.fail("unexpected line in region: '" + std::string(line) + "'");
    }
  }
  r.fail("missing endregion");
}

HliEntry parse_unit(Reader& r, std::string_view header) {
  const auto tokens = support::split_ws(header);
  if (tokens.size() < 4 || tokens[2] != "nextid") r.fail("malformed unit header");
  HliEntry entry;
  entry.unit_name = std::string(tokens[1]);
  entry.next_id = static_cast<ItemId>(parse_num(r, tokens[3]));

  // Line table.
  while (!r.done() && support::starts_with(r.peek(), "line ")) {
    const auto line_tokens = support::split_ws(r.next());
    if (line_tokens.size() < 3 || line_tokens[2] != ":") r.fail("malformed line entry");
    const auto source_line = static_cast<std::uint32_t>(parse_num(r, line_tokens[1]));
    for (std::size_t i = 3; i < line_tokens.size(); ++i) {
      const auto parts = support::split(line_tokens[i], ':');
      if (parts.size() != 2) r.fail("malformed item token");
      ItemEntry item;
      item.id = static_cast<ItemId>(parse_num(r, parts[0]));
      item.type = item_type_from(parts[1], r.line_no());
      entry.line_table.add_item(source_line, item);
    }
  }

  // Region table.
  const auto regions_tokens = support::split_ws(r.next());
  if (regions_tokens.size() < 4 || regions_tokens[0] != "regions" ||
      regions_tokens[2] != "root") {
    r.fail("expected regions header");
  }
  const std::uint64_t region_count = parse_num(r, regions_tokens[1]);
  entry.root_region = static_cast<RegionId>(parse_num(r, regions_tokens[3]));
  for (std::uint64_t i = 0; i < region_count; ++i) {
    const std::string_view header_line = r.next();
    if (!support::starts_with(header_line, "region ")) r.fail("expected region");
    RegionEntry region = parse_region_header(r, header_line);
    parse_region_body(r, region);
    entry.regions.push_back(std::move(region));
  }
  if (r.done() || r.next() != "endunit") r.fail("missing endunit");
  return entry;
}

}  // namespace

HliFile read_hli(std::string_view text) {
  Reader r(text);
  if (r.done() || r.next() != "HLI v1") {
    throw CompileError("HLI parse error: missing 'HLI v1' header");
  }
  HliFile file;
  while (!r.done()) {
    const std::string_view line = r.peek();
    if (line.empty()) break;
    if (!support::starts_with(line, "unit ")) r.fail("expected unit header");
    file.entries.push_back(parse_unit(r, r.next()));
  }
  return file;
}

// ---------------------------------------------------------------------------
// HLIB binary container.
// ---------------------------------------------------------------------------

namespace {

constexpr char kHlibMagic[4] = {'H', 'L', 'I', 'B'};
constexpr std::uint8_t kHlibVersion = 1;
constexpr std::size_t kHeaderSize = 8;   ///< Magic + version + 3 reserved.
constexpr std::size_t kFooterSize = 32;  ///< Meta location + end magic.
constexpr char kFooterMagic[8] = {'H', 'L', 'I', 'B', 'E', 'N', 'D', '1'};

/// The container's corruption check: the meta block is checksummed in the
/// footer, each unit payload in its index record — so a bit flip anywhere
/// in the file is caught by whichever reader first touches those bytes.
/// Four interleaved FNV-1a lanes (byte i feeds lane i mod 4), folded
/// together at the end: plain FNV-1a is one serial multiply per byte,
/// while independent lanes let the CPU overlap them, ~4x faster on import.
/// The lane split is part of the v1 format.
std::uint32_t fnv1a(std::string_view bytes) {
  constexpr std::uint32_t kBasis = 2166136261u;
  constexpr std::uint32_t kPrime = 16777619u;
  std::uint32_t lane[4] = {kBasis, kBasis ^ 1u, kBasis ^ 2u, kBasis ^ 3u};
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t size = bytes.size();
  std::size_t i = 0;
  for (const std::size_t whole = size & ~std::size_t{3}; i < whole; i += 4) {
    lane[0] = (lane[0] ^ p[i]) * kPrime;
    lane[1] = (lane[1] ^ p[i + 1]) * kPrime;
    lane[2] = (lane[2] ^ p[i + 2]) * kPrime;
    lane[3] = (lane[3] ^ p[i + 3]) * kPrime;
  }
  for (; i < size; ++i) {
    lane[i & 3] = (lane[i & 3] ^ p[i]) * kPrime;
  }
  std::uint32_t hash = kBasis;
  for (const std::uint32_t l : lane) {
    hash = (hash ^ (l & 0xffffu)) * kPrime;
    hash = (hash ^ (l >> 16)) * kPrime;
  }
  return hash;
}

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

void put_u32le(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64le(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32le(std::string_view bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t get_u64le(std::string_view bytes, std::size_t at) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[at + i]))
             << (8 * i);
  }
  return value;
}

[[noreturn]] void fail_at(std::size_t offset, const std::string& message) {
  throw CompileError("HLIB error at offset " + std::to_string(offset) + ": " +
                     message);
}

/// Bounds-checked byte cursor over one span of the container.  Every
/// failure reports the absolute file offset it happened at.
class ByteCursor {
 public:
  ByteCursor(std::string_view bytes, std::size_t begin, std::size_t end)
      : bytes_(bytes), pos_(begin), end_(end) {}

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] bool done() const { return pos_ >= end_; }
  [[nodiscard]] std::size_t remaining() const { return end_ - pos_; }

  [[noreturn]] void fail(const std::string& message) const {
    fail_at(pos_, message);
  }

  std::uint8_t byte(const char* what) {
    if (pos_ >= end_) fail(std::string("truncated ") + what);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint64_t varint(const char* what) {
    if (pos_ < end_) {  // Fast path: almost every encoded value fits a byte.
      const auto b = static_cast<std::uint8_t>(bytes_[pos_]);
      if ((b & 0x80) == 0) {
        ++pos_;
        return b;
      }
    }
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = byte(what);
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return value;
    }
    fail(std::string("varint too long in ") + what);
  }

  /// A varint that counts elements each at least one byte wide, so any
  /// value beyond the remaining span is structurally impossible.
  std::uint64_t count(const char* what) {
    const std::uint64_t value = varint(what);
    if (value > remaining()) {
      fail("implausible " + std::string(what) + " (" + std::to_string(value) +
           " with " + std::to_string(remaining()) + " bytes left)");
    }
    return value;
  }

  std::uint32_t fixed32(const char* what) {
    if (remaining() < 4) fail(std::string("truncated ") + what);
    const std::uint32_t value = get_u32le(bytes_, pos_);
    pos_ += 4;
    return value;
  }

  std::string_view take(std::size_t length, const char* what) {
    if (length > remaining()) fail(std::string("truncated ") + what);
    const std::string_view span = bytes_.substr(pos_, length);
    pos_ += length;
    return span;
  }

 private:
  std::string_view bytes_;
  std::size_t pos_;
  std::size_t end_;
};

void put_id_list(std::string& out, const std::vector<ItemId>& ids) {
  put_varint(out, ids.size());
  for (const ItemId id : ids) put_varint(out, id);
}

void encode_entry(std::string& out, const HliEntry& entry, StringPool& pool) {
  put_varint(out, pool.intern(entry.unit_name));
  put_varint(out, entry.next_id);
  put_varint(out, entry.line_table.lines().size());
  for (const LineEntry& line : entry.line_table.lines()) {
    put_varint(out, line.line);
    put_varint(out, line.items.size());
    for (const ItemEntry& item : line.items) {
      put_varint(out, item.id);
      out.push_back(static_cast<char>(item.type));
    }
  }
  put_varint(out, entry.regions.size());
  put_varint(out, entry.root_region);
  for (const RegionEntry& region : entry.regions) {
    put_varint(out, region.id);
    out.push_back(region.type == RegionType::Loop ? 1 : 0);
    put_varint(out, region.parent);
    put_varint(out, region.first_line);
    put_varint(out, region.last_line);
    put_varint(out, region.children.size());
    for (const RegionId c : region.children) put_varint(out, c);

    put_varint(out, region.classes.size());
    for (const EquivClass& cls : region.classes) {
      put_varint(out, cls.id);
      const std::uint8_t flags =
          (cls.type == EquivAccType::Maybe ? 1u : 0u) |
          (cls.unknown_target ? 2u : 0u) | (cls.has_write ? 4u : 0u) |
          (cls.loop_invariant ? 8u : 0u);
      out.push_back(static_cast<char>(flags));
      put_varint(out, pool.intern(cls.base));
      put_varint(out, pool.intern(cls.display));
      put_id_list(out, cls.member_items);
      put_id_list(out, cls.member_subclasses);
    }

    put_varint(out, region.aliases.size());
    for (const AliasEntry& alias : region.aliases) {
      put_id_list(out, alias.classes);
    }

    put_varint(out, region.lcdds.size());
    for (const LcddEntry& dep : region.lcdds) {
      put_varint(out, dep.src);
      put_varint(out, dep.dst);
      const std::uint8_t flags = (dep.type == DepType::Maybe ? 1u : 0u) |
                                 (dep.distance ? 2u : 0u);
      out.push_back(static_cast<char>(flags));
      if (dep.distance) put_varint(out, zigzag(*dep.distance));
    }

    put_varint(out, region.call_effects.size());
    for (const CallEffectEntry& eff : region.call_effects) {
      const std::uint8_t flags =
          (eff.is_subregion ? 1u : 0u) | (eff.unknown ? 2u : 0u);
      out.push_back(static_cast<char>(flags));
      put_varint(out, eff.is_subregion ? eff.subregion : eff.call_item);
      put_id_list(out, eff.ref_classes);
      put_id_list(out, eff.mod_classes);
    }
  }
}

std::vector<ItemId> decode_id_list(ByteCursor& cur, const char* what) {
  const std::uint64_t count = cur.count(what);
  std::vector<ItemId> ids;
  ids.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<ItemId>(cur.varint(what)));
  }
  return ids;
}

std::string_view pool_string(const HlibContainer& container,
                             std::uint64_t id, const ByteCursor& cur,
                             const char* what) {
  if (id >= container.pool.size()) {
    cur.fail("string id " + std::to_string(id) + " out of range for " + what +
             " (pool size " + std::to_string(container.pool.size()) + ")");
  }
  return container.pool[static_cast<std::size_t>(id)];
}

}  // namespace

bool is_hlib(std::string_view bytes) {
  return bytes.size() >= sizeof(kHlibMagic) &&
         std::memcmp(bytes.data(), kHlibMagic, sizeof(kHlibMagic)) == 0;
}

std::string write_hlib(const HliFile& file) {
  std::string out;
  {
    std::size_t estimate = kHeaderSize + kFooterSize + 64;
    for (const HliEntry& entry : file.entries) {
      estimate += estimate_entry_size(entry);  // Text bound >= binary size.
    }
    out.reserve(estimate);
  }
  out.append(kHlibMagic, sizeof(kHlibMagic));
  out.push_back(static_cast<char>(kHlibVersion));
  out.append(3, '\0');

  StringPool pool;
  std::vector<HlibContainer::Unit> units;
  units.reserve(file.entries.size());
  for (const HliEntry& entry : file.entries) {
    HlibContainer::Unit unit;
    unit.offset = out.size();
    encode_entry(out, entry, pool);
    unit.name_id = pool.intern(entry.unit_name);
    unit.length = out.size() - unit.offset;
    unit.checksum = fnv1a(std::string_view(out).substr(
        static_cast<std::size_t>(unit.offset),
        static_cast<std::size_t>(unit.length)));
    units.push_back(unit);
  }

  const std::size_t meta_offset = out.size();
  put_varint(out, pool.size());
  for (const std::string* text : pool.strings()) {
    put_varint(out, text->size());
    out += *text;
  }
  put_varint(out, units.size());
  for (const HlibContainer::Unit& unit : units) {
    put_varint(out, unit.name_id);
    put_varint(out, unit.offset);
    put_varint(out, unit.length);
    put_u32le(out, unit.checksum);
  }
  const std::size_t meta_length = out.size() - meta_offset;
  const std::uint32_t meta_checksum =
      fnv1a(std::string_view(out).substr(meta_offset, meta_length));

  put_u64le(out, meta_offset);
  put_u64le(out, meta_length);
  put_u32le(out, meta_checksum);
  put_u32le(out, 0);  // Reserved.
  out.append(kFooterMagic, sizeof(kFooterMagic));
  return out;
}

HlibContainer open_hlib(std::string_view bytes) {
  if (bytes.size() < kHeaderSize + kFooterSize) {
    fail_at(bytes.size(), "file too small to be an HLIB container "
                          "(truncated?)");
  }
  if (!is_hlib(bytes)) fail_at(0, "bad magic (not an HLIB file)");
  const auto version = static_cast<std::uint8_t>(bytes[4]);
  if (version != kHlibVersion) {
    fail_at(4, "unsupported HLIB version " + std::to_string(version) +
               " (reader supports " + std::to_string(kHlibVersion) + ")");
  }
  // v1 writes the reserved header bytes as zero; anything else is
  // corruption (no checksum covers the header itself).
  for (std::size_t i = 5; i < kHeaderSize; ++i) {
    if (bytes[i] != 0) {
      fail_at(i, "nonzero reserved header byte (corrupted file?)");
    }
  }

  const std::size_t footer = bytes.size() - kFooterSize;
  if (std::memcmp(bytes.data() + footer + 24, kFooterMagic,
                  sizeof(kFooterMagic)) != 0) {
    fail_at(footer + 24, "missing footer magic (truncated or corrupted "
                         "file?)");
  }
  const std::uint64_t meta_offset = get_u64le(bytes, footer);
  const std::uint64_t meta_length = get_u64le(bytes, footer + 8);
  const std::uint32_t meta_checksum = get_u32le(bytes, footer + 16);
  if (meta_offset < kHeaderSize || meta_length > footer ||
      meta_offset > footer - meta_length) {
    fail_at(footer, "meta block out of bounds");
  }
  const std::string_view meta =
      bytes.substr(static_cast<std::size_t>(meta_offset),
                   static_cast<std::size_t>(meta_length));
  if (fnv1a(meta) != meta_checksum) {
    fail_at(static_cast<std::size_t>(meta_offset),
            "meta block checksum mismatch (corrupted file?)");
  }
  c_checksum_verifies.add();

  HlibContainer container;
  container.bytes = bytes;
  ByteCursor cur(bytes, static_cast<std::size_t>(meta_offset),
                 static_cast<std::size_t>(meta_offset + meta_length));
  const std::uint64_t pool_count = cur.count("string pool count");
  container.pool.reserve(pool_count);
  for (std::uint64_t i = 0; i < pool_count; ++i) {
    const std::uint64_t length = cur.varint("string length");
    container.pool.emplace_back(
        cur.take(static_cast<std::size_t>(length), "pool string"));
  }
  const std::uint64_t unit_count = cur.count("unit index count");
  container.units.reserve(unit_count);
  for (std::uint64_t i = 0; i < unit_count; ++i) {
    HlibContainer::Unit unit;
    unit.name_id = static_cast<format::StringId>(cur.varint("unit name id"));
    unit.offset = cur.varint("unit offset");
    unit.length = cur.varint("unit length");
    unit.checksum = cur.fixed32("unit checksum");
    if (unit.name_id >= container.pool.size()) {
      cur.fail("unit name id " + std::to_string(unit.name_id) +
               " out of range (pool size " +
               std::to_string(container.pool.size()) + ")");
    }
    if (unit.offset < kHeaderSize || unit.length > meta_offset ||
        unit.offset > meta_offset - unit.length) {
      cur.fail("unit '" + std::string(container.pool[unit.name_id]) +
               "' payload out of bounds");
    }
    container.units.push_back(unit);
  }
  if (!cur.done()) cur.fail("trailing bytes in meta block");
  return container;
}

HliEntry decode_hlib_unit(const HlibContainer& container, std::size_t index) {
  const HlibContainer::Unit& unit = container.units.at(index);
  const auto begin = static_cast<std::size_t>(unit.offset);
  const auto length = static_cast<std::size_t>(unit.length);
  if (fnv1a(container.bytes.substr(begin, length)) != unit.checksum) {
    fail_at(begin, "unit '" + std::string(container.unit_name(index)) +
                   "' payload checksum mismatch (corrupted file?)");
  }
  c_checksum_verifies.add();
  ByteCursor cur(container.bytes, begin, begin + length);

  HliEntry entry;
  entry.unit_name = pool_string(container, cur.varint("unit name"), cur,
                                "unit name");
  entry.next_id = static_cast<ItemId>(cur.varint("next_id"));

  const std::uint64_t line_count = cur.count("line count");
  auto& lines = entry.line_table.mutable_lines();
  lines.reserve(line_count);
  for (std::uint64_t l = 0; l < line_count; ++l) {
    LineEntry line;
    line.line = static_cast<std::uint32_t>(cur.varint("line number"));
    const std::uint64_t item_count = cur.count("line item count");
    line.items.reserve(item_count);
    for (std::uint64_t i = 0; i < item_count; ++i) {
      ItemEntry item;
      item.id = static_cast<ItemId>(cur.varint("item id"));
      const std::uint8_t type = cur.byte("item type");
      if (type > static_cast<std::uint8_t>(ItemType::ArgLoad)) {
        cur.fail("bad item type " + std::to_string(type));
      }
      item.type = static_cast<ItemType>(type);
      line.items.push_back(item);
    }
    lines.push_back(std::move(line));
  }

  const std::uint64_t region_count = cur.count("region count");
  entry.root_region = static_cast<RegionId>(cur.varint("root region"));
  entry.regions.reserve(region_count);
  for (std::uint64_t ri = 0; ri < region_count; ++ri) {
    RegionEntry region;
    region.id = static_cast<RegionId>(cur.varint("region id"));
    const std::uint8_t rtype = cur.byte("region type");
    if (rtype > 1) cur.fail("bad region type " + std::to_string(rtype));
    region.type = rtype == 1 ? RegionType::Loop : RegionType::Unit;
    region.parent = static_cast<RegionId>(cur.varint("region parent"));
    region.first_line = static_cast<std::uint32_t>(cur.varint("first line"));
    region.last_line = static_cast<std::uint32_t>(cur.varint("last line"));
    const std::uint64_t child_count = cur.count("child count");
    region.children.reserve(child_count);
    for (std::uint64_t i = 0; i < child_count; ++i) {
      region.children.push_back(static_cast<RegionId>(cur.varint("child id")));
    }

    const std::uint64_t class_count = cur.count("class count");
    region.classes.reserve(class_count);
    for (std::uint64_t i = 0; i < class_count; ++i) {
      EquivClass cls;
      cls.id = static_cast<ItemId>(cur.varint("class id"));
      const std::uint8_t flags = cur.byte("class flags");
      if (flags > 0x0f) cur.fail("bad class flags " + std::to_string(flags));
      cls.type = (flags & 1) != 0 ? EquivAccType::Maybe : EquivAccType::Definite;
      cls.unknown_target = (flags & 2) != 0;
      cls.has_write = (flags & 4) != 0;
      cls.loop_invariant = (flags & 8) != 0;
      cls.base = pool_string(container, cur.varint("class base"), cur,
                             "class base");
      cls.display = pool_string(container, cur.varint("class display"), cur,
                                "class display");
      cls.member_items = decode_id_list(cur, "class items");
      cls.member_subclasses = decode_id_list(cur, "class subclasses");
      region.classes.push_back(std::move(cls));
    }

    const std::uint64_t alias_count = cur.count("alias count");
    region.aliases.reserve(alias_count);
    for (std::uint64_t i = 0; i < alias_count; ++i) {
      AliasEntry alias;
      alias.classes = decode_id_list(cur, "alias classes");
      region.aliases.push_back(std::move(alias));
    }

    const std::uint64_t lcdd_count = cur.count("lcdd count");
    region.lcdds.reserve(lcdd_count);
    for (std::uint64_t i = 0; i < lcdd_count; ++i) {
      LcddEntry dep;
      dep.src = static_cast<ItemId>(cur.varint("lcdd src"));
      dep.dst = static_cast<ItemId>(cur.varint("lcdd dst"));
      const std::uint8_t flags = cur.byte("lcdd flags");
      if (flags > 3) cur.fail("bad lcdd flags " + std::to_string(flags));
      dep.type = (flags & 1) != 0 ? DepType::Maybe : DepType::Definite;
      if ((flags & 2) != 0) {
        dep.distance = unzigzag(cur.varint("lcdd distance"));
      }
      region.lcdds.push_back(dep);
    }

    const std::uint64_t eff_count = cur.count("call effect count");
    region.call_effects.reserve(eff_count);
    for (std::uint64_t i = 0; i < eff_count; ++i) {
      CallEffectEntry eff;
      const std::uint8_t flags = cur.byte("call effect flags");
      if (flags > 3) cur.fail("bad call effect flags " + std::to_string(flags));
      eff.is_subregion = (flags & 1) != 0;
      eff.unknown = (flags & 2) != 0;
      const std::uint64_t key = cur.varint("call effect key");
      if (eff.is_subregion) {
        eff.subregion = static_cast<RegionId>(key);
      } else {
        eff.call_item = static_cast<ItemId>(key);
      }
      eff.ref_classes = decode_id_list(cur, "call effect ref");
      eff.mod_classes = decode_id_list(cur, "call effect mod");
      region.call_effects.push_back(std::move(eff));
    }

    entry.regions.push_back(std::move(region));
  }
  if (!cur.done()) {
    cur.fail("trailing bytes in unit '" +
             std::string(container.unit_name(index)) + "'");
  }
  return entry;
}

HliFile read_hlib(std::string_view bytes) {
  const HlibContainer container = open_hlib(bytes);
  HliFile file;
  file.entries.reserve(container.units.size());
  for (std::size_t i = 0; i < container.units.size(); ++i) {
    file.entries.push_back(decode_hlib_unit(container, i));
  }
  return file;
}

HliFile read_any(std::string_view bytes) {
  return is_hlib(bytes) ? read_hlib(bytes) : read_hli(bytes);
}

}  // namespace hli::serialize
