#include "hli/serialize.hpp"

#include <sstream>

#include "support/string_utils.hpp"

namespace hli::serialize {

using namespace format;
using support::CompileError;

namespace {

const char* item_code(ItemType type) {
  switch (type) {
    case ItemType::Load: return "L";
    case ItemType::Store: return "S";
    case ItemType::Call: return "C";
    case ItemType::ArgStore: return "AS";
    case ItemType::ArgLoad: return "AL";
  }
  return "?";
}

ItemType item_type_from(std::string_view code, std::size_t line_no) {
  if (code == "L") return ItemType::Load;
  if (code == "S") return ItemType::Store;
  if (code == "C") return ItemType::Call;
  if (code == "AS") return ItemType::ArgStore;
  if (code == "AL") return ItemType::ArgLoad;
  throw CompileError("HLI parse error at line " + std::to_string(line_no) +
                     ": bad item type '" + std::string(code) + "'");
}

void write_id_list(std::ostringstream& out, const char* tag,
                   const std::vector<ItemId>& ids) {
  out << ' ' << tag << " :";
  for (const ItemId id : ids) out << ' ' << id;
}

void write_region(std::ostringstream& out, const RegionEntry& region) {
  out << "region " << region.id << ' '
      << (region.type == RegionType::Loop ? "loop" : "unit") << " parent "
      << region.parent << " scope " << region.first_line << ' '
      << region.last_line << " children :";
  for (const RegionId c : region.children) out << ' ' << c;
  out << '\n';
  for (const EquivClass& cls : region.classes) {
    out << "class " << cls.id << ' ' << to_string(cls.type) << " base "
        << (cls.base.empty() ? "-" : cls.base) << " unk " << (cls.unknown_target ? 1 : 0)
        << " wr " << (cls.has_write ? 1 : 0) << " inv " << (cls.loop_invariant ? 1 : 0);
    write_id_list(out, "items", cls.member_items);
    write_id_list(out, "subs", cls.member_subclasses);
    out << " disp " << cls.display << '\n';
  }
  for (const AliasEntry& alias : region.aliases) {
    out << "alias :";
    for (const ItemId id : alias.classes) out << ' ' << id;
    out << '\n';
  }
  for (const LcddEntry& dep : region.lcdds) {
    out << "lcdd " << dep.src << ' ' << dep.dst << ' ' << to_string(dep.type)
        << " dist " << (dep.distance ? std::to_string(*dep.distance) : "?") << '\n';
  }
  for (const CallEffectEntry& eff : region.call_effects) {
    if (eff.is_subregion) {
      out << "calleff region " << eff.subregion;
    } else {
      out << "calleff item " << eff.call_item;
    }
    out << " unk " << (eff.unknown ? 1 : 0);
    write_id_list(out, "ref", eff.ref_classes);
    write_id_list(out, "mod", eff.mod_classes);
    out << '\n';
  }
  out << "endregion\n";
}

}  // namespace

std::string write_entry(const HliEntry& entry) {
  std::ostringstream out;
  out << "unit " << entry.unit_name << " nextid " << entry.next_id << '\n';
  for (const LineEntry& line : entry.line_table.lines()) {
    out << "line " << line.line << " :";
    for (const ItemEntry& item : line.items) {
      out << ' ' << item.id << ':' << item_code(item.type);
    }
    out << '\n';
  }
  out << "regions " << entry.regions.size() << " root " << entry.root_region << '\n';
  for (const RegionEntry& region : entry.regions) {
    write_region(out, region);
  }
  out << "endunit\n";
  return std::move(out).str();
}

std::string write_hli(const HliFile& file) {
  std::string out = "HLI v1\n";
  for (const HliEntry& entry : file.entries) {
    out += write_entry(entry);
  }
  return out;
}

namespace {

/// Line-based cursor with diagnostics for the reader.
class Reader {
 public:
  explicit Reader(std::string_view text) : lines_(support::split(text, '\n')) {}

  [[nodiscard]] bool done() const { return pos_ >= lines_.size(); }

  [[nodiscard]] std::string_view peek() {
    while (pos_ < lines_.size() && support::trim(lines_[pos_]).empty()) ++pos_;
    return pos_ < lines_.size() ? support::trim(lines_[pos_]) : std::string_view{};
  }

  std::string_view next() {
    const std::string_view line = peek();
    ++pos_;
    return line;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw CompileError("HLI parse error at line " + std::to_string(pos_) + ": " +
                       message);
  }

  [[nodiscard]] std::size_t line_no() const { return pos_; }

 private:
  std::vector<std::string_view> lines_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_num(Reader& r, std::string_view token) {
  std::uint64_t value = 0;
  if (!support::parse_u64(token, value)) {
    r.fail("expected number, got '" + std::string(token) + "'");
  }
  return value;
}

/// Parses `<tag> : id id ...` starting at tokens[at]; returns index after.
std::size_t parse_id_list(Reader& r, const std::vector<std::string_view>& tokens,
                          std::size_t at, std::string_view tag,
                          std::vector<ItemId>& out) {
  if (at >= tokens.size() || tokens[at] != tag) {
    r.fail("expected '" + std::string(tag) + "' list");
  }
  ++at;
  if (at >= tokens.size() || tokens[at] != ":") r.fail("expected ':'");
  ++at;
  while (at < tokens.size()) {
    std::uint64_t value = 0;
    if (!support::parse_u64(tokens[at], value)) break;
    out.push_back(static_cast<ItemId>(value));
    ++at;
  }
  return at;
}

EquivClass parse_class(Reader& r, std::string_view line) {
  // class <id> <def|maybe> base <name> unk <b> wr <b> items : ... subs : ... disp <rest>
  const std::size_t disp_pos = line.find(" disp ");
  std::string display;
  std::string_view head = line;
  if (disp_pos != std::string_view::npos) {
    display = std::string(line.substr(disp_pos + 6));
    head = line.substr(0, disp_pos);
  }
  const auto tokens = support::split_ws(head);
  if (tokens.size() < 12) r.fail("malformed class line");
  EquivClass cls;
  cls.id = static_cast<ItemId>(parse_num(r, tokens[1]));
  cls.type = tokens[2] == "def" ? EquivAccType::Definite : EquivAccType::Maybe;
  if (tokens[3] != "base") r.fail("expected 'base'");
  cls.base = tokens[4] == "-" ? "" : std::string(tokens[4]);
  if (tokens[5] != "unk") r.fail("expected 'unk'");
  cls.unknown_target = parse_num(r, tokens[6]) != 0;
  if (tokens[7] != "wr") r.fail("expected 'wr'");
  cls.has_write = parse_num(r, tokens[8]) != 0;
  if (tokens[9] != "inv") r.fail("expected 'inv'");
  cls.loop_invariant = parse_num(r, tokens[10]) != 0;
  std::size_t at = 11;
  at = parse_id_list(r, tokens, at, "items", cls.member_items);
  at = parse_id_list(r, tokens, at, "subs", cls.member_subclasses);
  cls.display = std::move(display);
  return cls;
}

RegionEntry parse_region_header(Reader& r, std::string_view line) {
  const auto tokens = support::split_ws(line);
  if (tokens.size() < 10) r.fail("malformed region header");
  RegionEntry region;
  region.id = static_cast<RegionId>(parse_num(r, tokens[1]));
  region.type = tokens[2] == "loop" ? RegionType::Loop : RegionType::Unit;
  if (tokens[3] != "parent") r.fail("expected 'parent'");
  region.parent = static_cast<RegionId>(parse_num(r, tokens[4]));
  if (tokens[5] != "scope") r.fail("expected 'scope'");
  region.first_line = static_cast<std::uint32_t>(parse_num(r, tokens[6]));
  region.last_line = static_cast<std::uint32_t>(parse_num(r, tokens[7]));
  if (tokens[8] != "children" || tokens[9] != ":") r.fail("expected children list");
  for (std::size_t i = 10; i < tokens.size(); ++i) {
    region.children.push_back(static_cast<RegionId>(parse_num(r, tokens[i])));
  }
  return region;
}

void parse_region_body(Reader& r, RegionEntry& region) {
  while (!r.done()) {
    const std::string_view line = r.peek();
    if (line == "endregion") {
      (void)r.next();
      return;
    }
    if (support::starts_with(line, "class ")) {
      region.classes.push_back(parse_class(r, r.next()));
    } else if (support::starts_with(line, "alias ")) {
      const auto tokens = support::split_ws(r.next());
      AliasEntry alias;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        alias.classes.push_back(static_cast<ItemId>(parse_num(r, tokens[i])));
      }
      region.aliases.push_back(std::move(alias));
    } else if (support::starts_with(line, "lcdd ")) {
      const auto tokens = support::split_ws(r.next());
      if (tokens.size() < 6) r.fail("malformed lcdd line");
      LcddEntry dep;
      dep.src = static_cast<ItemId>(parse_num(r, tokens[1]));
      dep.dst = static_cast<ItemId>(parse_num(r, tokens[2]));
      dep.type = tokens[3] == "def" ? DepType::Definite : DepType::Maybe;
      if (tokens[4] != "dist") r.fail("expected 'dist'");
      if (tokens[5] != "?") {
        std::int64_t value = 0;
        if (!support::parse_i64(tokens[5], value)) r.fail("bad distance");
        dep.distance = value;
      }
      region.lcdds.push_back(dep);
    } else if (support::starts_with(line, "calleff ")) {
      const auto tokens = support::split_ws(r.next());
      if (tokens.size() < 5) r.fail("malformed calleff line");
      CallEffectEntry eff;
      if (tokens[1] == "region") {
        eff.is_subregion = true;
        eff.subregion = static_cast<RegionId>(parse_num(r, tokens[2]));
      } else if (tokens[1] == "item") {
        eff.call_item = static_cast<ItemId>(parse_num(r, tokens[2]));
      } else {
        r.fail("expected 'item' or 'region'");
      }
      if (tokens[3] != "unk") r.fail("expected 'unk'");
      eff.unknown = parse_num(r, tokens[4]) != 0;
      std::size_t at = 5;
      at = parse_id_list(r, tokens, at, "ref", eff.ref_classes);
      at = parse_id_list(r, tokens, at, "mod", eff.mod_classes);
      region.call_effects.push_back(std::move(eff));
    } else {
      r.fail("unexpected line in region: '" + std::string(line) + "'");
    }
  }
  r.fail("missing endregion");
}

HliEntry parse_unit(Reader& r, std::string_view header) {
  const auto tokens = support::split_ws(header);
  if (tokens.size() < 4 || tokens[2] != "nextid") r.fail("malformed unit header");
  HliEntry entry;
  entry.unit_name = std::string(tokens[1]);
  entry.next_id = static_cast<ItemId>(parse_num(r, tokens[3]));

  // Line table.
  while (!r.done() && support::starts_with(r.peek(), "line ")) {
    const auto line_tokens = support::split_ws(r.next());
    if (line_tokens.size() < 3 || line_tokens[2] != ":") r.fail("malformed line entry");
    const auto source_line = static_cast<std::uint32_t>(parse_num(r, line_tokens[1]));
    for (std::size_t i = 3; i < line_tokens.size(); ++i) {
      const auto parts = support::split(line_tokens[i], ':');
      if (parts.size() != 2) r.fail("malformed item token");
      ItemEntry item;
      item.id = static_cast<ItemId>(parse_num(r, parts[0]));
      item.type = item_type_from(parts[1], r.line_no());
      entry.line_table.add_item(source_line, item);
    }
  }

  // Region table.
  const auto regions_tokens = support::split_ws(r.next());
  if (regions_tokens.size() < 4 || regions_tokens[0] != "regions" ||
      regions_tokens[2] != "root") {
    r.fail("expected regions header");
  }
  const std::uint64_t region_count = parse_num(r, regions_tokens[1]);
  entry.root_region = static_cast<RegionId>(parse_num(r, regions_tokens[3]));
  for (std::uint64_t i = 0; i < region_count; ++i) {
    const std::string_view header_line = r.next();
    if (!support::starts_with(header_line, "region ")) r.fail("expected region");
    RegionEntry region = parse_region_header(r, header_line);
    parse_region_body(r, region);
    entry.regions.push_back(std::move(region));
  }
  if (r.done() || r.next() != "endunit") r.fail("missing endunit");
  return entry;
}

}  // namespace

HliFile read_hli(std::string_view text) {
  Reader r(text);
  if (r.done() || r.next() != "HLI v1") {
    throw CompileError("HLI parse error: missing 'HLI v1' header");
  }
  HliFile file;
  while (!r.done()) {
    const std::string_view line = r.peek();
    if (line.empty()) break;
    if (!support::starts_with(line, "unit ")) r.fail("expected unit header");
    file.entries.push_back(parse_unit(r, r.next()));
  }
  return file;
}

}  // namespace hli::serialize
