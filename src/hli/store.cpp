#include "hli/store.hpp"

#include "support/string_utils.hpp"

namespace hli {

namespace {
const telemetry::Counter c_units_decoded =
    telemetry::counter("store.units_decoded");
const telemetry::Counter c_bytes_mapped =
    telemetry::counter("store.bytes_mapped");
}  // namespace

HliStore::HliStore(std::string bytes) {
  owned_ = std::move(bytes);
  init(owned_);
}

HliStore::HliStore(support::MappedFile file) : file_(std::move(file)) {
  counters_.add(c_bytes_mapped, file_.view().size());
  c_bytes_mapped.add(file_.view().size());
  init(file_.view());
}

HliStore HliStore::open(const std::string& path) {
  // Prvalue return: guaranteed elision, so the deleted move never fires.
  return HliStore(support::MappedFile::open(path));
}

std::unique_ptr<HliStore> HliStore::open_unique(const std::string& path) {
  return std::unique_ptr<HliStore>(
      new HliStore(support::MappedFile::open(path)));
}

void HliStore::init(std::string_view bytes) {
  binary_ = serialize::is_hlib(bytes);
  if (binary_) {
    container_ = serialize::open_hlib(bytes);
    slots_.reserve(container_.units.size());
    for (std::size_t i = 0; i < container_.units.size(); ++i) {
      auto slot = std::make_unique<Slot>();
      slot->name = container_.unit_name(i);
      slot->index = i;
      slots_.push_back(std::move(slot));
    }
  } else {
    // No per-unit index in the text format: parse everything now.
    format::HliFile file = serialize::read_hli(bytes);
    slots_.reserve(file.entries.size());
    for (std::size_t i = 0; i < file.entries.size(); ++i) {
      auto slot = std::make_unique<Slot>();
      slot->name = file.entries[i].unit_name;
      slot->index = i;
      slot->entry = std::move(file.entries[i]);
      std::call_once(slot->once, [] {});  // Mark decoded.
      slot->decodes.store(1, std::memory_order_relaxed);
      slots_.push_back(std::move(slot));
    }
    counters_.add(c_units_decoded, slots_.size());
    c_units_decoded.add(slots_.size());
  }
  by_name_.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    by_name_.emplace(slots_[i]->name, i);  // First unit wins on duplicates.
  }
}

std::vector<std::string> HliStore::unit_names() const {
  std::vector<std::string> names;
  names.reserve(slots_.size());
  for (const auto& slot : slots_) names.push_back(slot->name);
  return names;
}

const HliStore::Slot* HliStore::find_slot(const std::string& name) const {
  const auto it = by_name_.find(std::string_view(name));
  return it == by_name_.end() ? nullptr : slots_[it->second].get();
}

void HliStore::decode_slot(const Slot& slot) const {
  std::call_once(slot.once, [this, &slot] {
    slot.entry = serialize::decode_hlib_unit(container_, slot.index);
    slot.decodes.fetch_add(1, std::memory_order_relaxed);
    counters_.add(c_units_decoded);
    c_units_decoded.add();  // Also charge the decoding thread's sink.
  });
}

const format::HliEntry* HliStore::get(const std::string& name) const {
  const Slot* slot = find_slot(name);
  if (slot == nullptr) return nullptr;
  decode_slot(*slot);
  return &slot->entry;
}

std::optional<std::uint64_t> HliStore::unit_checksum(
    const std::string& name) const {
  const Slot* slot = find_slot(name);
  if (slot == nullptr) return std::nullopt;
  if (binary_) {
    // Index-only identity: the container's FNV checksum over the payload
    // plus its length, folded with the unit name so two same-bytes units
    // under different names stay distinct.  No payload decode.
    const serialize::HlibContainer::Unit& unit = container_.units[slot->index];
    std::uint64_t fp = support::fnv1a64(slot->name);
    fp = support::fnv1a64_mix(unit.checksum, fp);
    fp = support::fnv1a64_mix(unit.length, fp);
    return fp;
  }
  // Text stores are fully parsed at construction; hash the canonical
  // re-serialization (round-trip stable, docs/FORMAT.md).
  return support::fnv1a64(serialize::write_entry(slot->entry),
                          support::fnv1a64(slot->name));
}

format::HliFile HliStore::import_all() const {
  format::HliFile file;
  file.entries.reserve(slots_.size());
  for (const auto& slot : slots_) {
    decode_slot(*slot);
    file.entries.push_back(slot->entry);
  }
  return file;
}

std::size_t HliStore::units_decoded() const {
  return counters_.value(c_units_decoded);
}

std::size_t HliStore::decode_count(const std::string& name) const {
  const Slot* slot = find_slot(name);
  return slot == nullptr ? 0 : slot->decodes.load(std::memory_order_relaxed);
}

}  // namespace hli
