#include "hli/query.hpp"

#include <algorithm>

#include "support/telemetry.hpp"

namespace hli::query {

using namespace format;

namespace {

const telemetry::Counter c_views_built = telemetry::counter("query.views_built");

/// Largest ID referenced anywhere in the entry's tables; the dense item
/// arrays are sized one past it so every query is a bounds-checked index.
ItemId max_id_of(const HliEntry& entry) {
  ItemId max_id = entry.next_id;
  for (const RegionEntry& region : entry.regions) {
    for (const EquivClass& cls : region.classes) {
      max_id = std::max(max_id, cls.id);
      for (const ItemId item : cls.member_items) max_id = std::max(max_id, item);
      for (const ItemId sub : cls.member_subclasses) max_id = std::max(max_id, sub);
    }
    for (const AliasEntry& alias : region.aliases) {
      for (const ItemId cls : alias.classes) max_id = std::max(max_id, cls);
    }
    for (const LcddEntry& dep : region.lcdds) {
      max_id = std::max({max_id, dep.src, dep.dst});
    }
    for (const CallEffectEntry& eff : region.call_effects) {
      if (!eff.is_subregion) max_id = std::max(max_id, eff.call_item);
    }
  }
  return max_id;
}

}  // namespace

HliUnitView::HliUnitView(const HliEntry& entry)
    : entry_(&entry), built_generation_(entry.generation) {
  c_views_built.add();
  // ---- Region side: dense remap + Euler tour ---------------------------
  RegionId max_region = kNoRegion;
  for (const RegionEntry& region : entry.regions) {
    max_region = std::max(max_region, region.id);
  }
  region_index_.assign(static_cast<std::size_t>(max_region) + 1, kNone);
  rinfo_.resize(entry.regions.size());
  for (std::uint32_t i = 0; i < entry.regions.size(); ++i) {
    const RegionEntry& region = entry.regions[i];
    // First entry wins on duplicate IDs, matching map emplace semantics.
    if (region_index_[region.id] == kNone) region_index_[region.id] = i;
    rinfo_[i].id = region.id;
    rinfo_[i].parent_id = region.parent;
    rinfo_[i].table = &region;
  }
  // Child lists derived from parent links (robust against stale
  // RegionEntry::children); regions with unknown/absent parents are roots.
  std::vector<std::vector<std::uint32_t>> children(rinfo_.size());
  std::vector<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < rinfo_.size(); ++i) {
    const std::uint32_t parent = rinfo_[i].parent_id != kNoRegion
                                     ? dense_region(rinfo_[i].parent_id)
                                     : kNone;
    if (parent == kNone || parent == i) {
      roots.push_back(i);
    } else {
      rinfo_[i].parent = parent;
      children[parent].push_back(i);
    }
  }
  // Iterative Euler tour; `visited` breaks malformed parent cycles (any
  // region unreachable from a root is started as its own root so the view
  // never hangs on corrupt input).
  std::vector<bool> visited(rinfo_.size(), false);
  std::uint32_t timer = 0;
  const auto tour = [&](std::uint32_t root) {
    if (visited[root]) return;
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    visited[root] = true;
    rinfo_[root].pre = timer++;
    rinfo_[root].depth = rinfo_[root].parent == kNone
                             ? 0
                             : rinfo_[rinfo_[root].parent].depth + 1;
    rinfo_[root].nearest_loop =
        rinfo_[root].table->type == RegionType::Loop ? rinfo_[root].id
        : rinfo_[root].parent == kNone
            ? kNoRegion
            : rinfo_[rinfo_[root].parent].nearest_loop;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < children[node].size()) {
        const std::uint32_t child = children[node][next_child++];
        if (visited[child]) continue;
        visited[child] = true;
        rinfo_[child].pre = timer++;
        rinfo_[child].depth = rinfo_[node].depth + 1;
        rinfo_[child].nearest_loop = rinfo_[child].table->type == RegionType::Loop
                                         ? rinfo_[child].id
                                         : rinfo_[node].nearest_loop;
        stack.emplace_back(child, 0);
      } else {
        rinfo_[node].post = timer - 1;
        stack.pop_back();
      }
    }
  };
  for (const std::uint32_t root : roots) tour(root);
  for (std::uint32_t i = 0; i < rinfo_.size(); ++i) tour(i);

  // ---- Item/class side: dense ownership + flattened chains -------------
  const std::size_t id_limit = static_cast<std::size_t>(max_id_of(entry)) + 1;
  item_region_.assign(id_limit, kNoRegion);
  iteminfo_.assign(id_limit, ItemInfo{});
  cinfo_.assign(id_limit, ClassInfo{});
  std::vector<ItemId> own_class(id_limit, kNoItem);
  std::vector<ItemId> class_parent(id_limit, kNoItem);
  for (const RegionEntry& region : entry.regions) {
    for (const EquivClass& cls : region.classes) {
      if ((cinfo_[cls.id].flags & kIsClass) == 0) {
        cinfo_[cls.id].flags =
            kIsClass | (cls.type == EquivAccType::Definite ? kDefinite : 0) |
            (cls.unknown_target ? kUnknownTarget : 0);
        cinfo_[cls.id].region = region.id;
      }
      for (const ItemId item : cls.member_items) {
        if (item_region_[item] == kNoRegion) item_region_[item] = region.id;
        if (own_class[item] == kNoItem) own_class[item] = cls.id;
      }
      for (const ItemId sub : cls.member_subclasses) {
        if (class_parent[sub] == kNoItem) class_parent[sub] = cls.id;
      }
    }
    for (const CallEffectEntry& eff : region.call_effects) {
      if (!eff.is_subregion && item_region_[eff.call_item] == kNoRegion) {
        item_region_[eff.call_item] = region.id;
      }
    }
  }
  // Direct item -> dense region index (skips the region_index_ hop on the
  // pair-query hot path).
  for (std::size_t item = 0; item < id_limit; ++item) {
    if (item_region_[item] != kNoRegion) {
      iteminfo_[item].dense = dense_region(item_region_[item]);
    }
  }
  // Flatten every item's lifted-class chain: entry k is the class after k
  // lifts, in lockstep with the region parent chain (capped at the root).
  for (std::size_t item = 0; item < id_limit; ++item) {
    if (own_class[item] == kNoItem) continue;
    const std::uint32_t dr = iteminfo_[item].dense;
    if (dr == kNone) continue;  // Class member recorded, region unknown.
    iteminfo_[item].chain_off = static_cast<std::uint32_t>(chain_pool_.size());
    ItemId cls = own_class[item];
    chain_pool_.push_back(cls);
    std::uint32_t len = 1;
    for (std::uint32_t depth = rinfo_[dr].depth; depth > 0; --depth) {
      if (cls >= class_parent.size() || class_parent[cls] == kNoItem) break;
      cls = class_parent[cls];
      chain_pool_.push_back(cls);
      ++len;
    }
    iteminfo_[item].chain_len = len;
  }

  // ---- Alias side: per-class sorted partner lists ----------------------
  std::vector<std::vector<ItemId>> partners(id_limit);
  for (const RegionEntry& region : entry.regions) {
    for (const AliasEntry& alias : region.aliases) {
      for (const ItemId a : alias.classes) {
        if (a >= id_limit || cinfo_[a].region != region.id) continue;
        for (const ItemId b : alias.classes) {
          if (b != a && b < id_limit) partners[a].push_back(b);
        }
      }
    }
  }
  for (std::size_t cls = 0; cls < id_limit; ++cls) {
    if (partners[cls].empty()) continue;
    std::sort(partners[cls].begin(), partners[cls].end());
    partners[cls].erase(std::unique(partners[cls].begin(), partners[cls].end()),
                        partners[cls].end());
    cinfo_[cls].alias_off = static_cast<std::uint32_t>(alias_pool_.size());
    cinfo_[cls].alias_len = static_cast<std::uint32_t>(partners[cls].size());
    alias_pool_.insert(alias_pool_.end(), partners[cls].begin(),
                       partners[cls].end());
  }
}

RegionId HliUnitView::region_of(ItemId item) const {
  check_fresh();
  return item < item_region_.size() ? item_region_[item] : kNoRegion;
}

RegionId HliUnitView::parent_region(RegionId region) const {
  check_fresh();
  const std::uint32_t d = dense_region(region);
  return d != kNone ? rinfo_[d].parent_id : kNoRegion;
}

RegionId HliUnitView::innermost_loop(RegionId region) const {
  check_fresh();
  const std::uint32_t d = dense_region(region);
  return d != kNone ? rinfo_[d].nearest_loop : kNoRegion;
}

bool HliUnitView::region_encloses(RegionId outer, RegionId inner) const {
  check_fresh();
  if (inner == kNoRegion) return false;
  if (inner == outer) return true;
  const std::uint32_t di = dense_region(inner);
  const std::uint32_t do_ = dense_region(outer);
  if (di == kNone || do_ == kNone) return false;
  return dense_encloses(do_, di);
}

RegionId HliUnitView::common_region(ItemId a, ItemId b) const {
  check_fresh();
  const RegionId ra = region_of(a);
  const RegionId rb = region_of(b);
  if (ra == kNoRegion || rb == kNoRegion) return kNoRegion;
  const std::uint32_t lca = dense_lca(dense_region(ra), dense_region(rb));
  return lca != kNone ? rinfo_[lca].id : kNoRegion;
}

ItemId HliUnitView::class_of_at(ItemId item, RegionId region) const {
  check_fresh();
  if (item >= iteminfo_.size() || iteminfo_[item].chain_off == kNone) {
    return kNoItem;
  }
  const std::uint32_t d0 = iteminfo_[item].dense;
  const std::uint32_t dr = dense_region(region);
  if (dr == kNone || !dense_encloses(dr, d0)) return kNoItem;
  return class_at_ancestor(iteminfo_[item], dr);
}

EquivAcc HliUnitView::alias_of_classes(ItemId ca, ItemId cb,
                                       std::uint32_t lca) const {
  if (!class_known(ca) || !class_known(cb)) return EquivAcc::Maybe;
  const ClassInfo& ia = cinfo_[ca];
  const ClassInfo& ib = cinfo_[cb];
  if (((ia.flags | ib.flags) & kUnknownTarget) != 0) return EquivAcc::Maybe;
  const RegionId lca_id = rinfo_[lca].id;
  if (ia.region == lca_id && ib.region == lca_id) {
    // Hot path: binary search in ca's precomputed partner list.
    if (ia.alias_off == kNone) return EquivAcc::None;
    const auto begin = alias_pool_.begin() + ia.alias_off;
    const auto end = begin + ia.alias_len;
    return std::binary_search(begin, end, cb) ? EquivAcc::Maybe
                                              : EquivAcc::None;
  }
  // Lifted classes recorded under another region (malformed or foreign
  // tables): fall back to scanning the LCA's alias entries like the
  // reference oracle.
  for (const AliasEntry& alias : rinfo_[lca].table->aliases) {
    const bool has_a = std::find(alias.classes.begin(), alias.classes.end(),
                                 ca) != alias.classes.end();
    const bool has_b = std::find(alias.classes.begin(), alias.classes.end(),
                                 cb) != alias.classes.end();
    if (has_a && has_b) return EquivAcc::Maybe;
  }
  return EquivAcc::None;
}

std::vector<LcddResult> HliUnitView::get_lcdd(RegionId loop, ItemId a,
                                              ItemId b) const {
  check_fresh();
  std::vector<LcddResult> out;
  const std::uint32_t dl = dense_region(loop);
  if (dl == kNone || rinfo_[dl].table->type != RegionType::Loop) return out;
  const ItemId ca = class_of_at(a, loop);
  const ItemId cb = class_of_at(b, loop);
  if (ca == kNoItem || cb == kNoItem) return out;
  for (const LcddEntry& dep : rinfo_[dl].table->lcdds) {
    if (dep.src == ca && dep.dst == cb) {
      out.push_back({dep.type, dep.distance, true});
    } else if (dep.src == cb && dep.dst == ca) {
      out.push_back({dep.type, dep.distance, false});
    }
  }
  return out;
}

bool HliUnitView::class_iteration_disjoint(RegionId loop, ItemId cls) const {
  check_fresh();
  const std::uint32_t dl = dense_region(loop);
  if (dl == kNone || rinfo_[dl].table->type != RegionType::Loop) return false;
  if (!class_known(cls)) return false;
  if ((cinfo_[cls].flags & kUnknownTarget) != 0) return false;
  if (cinfo_[cls].region != loop) return false;
  const format::RegionEntry& table = *rinfo_[dl].table;
  for (const format::EquivClass& c : table.classes) {
    if (c.id != cls) continue;
    if (c.loop_invariant || c.unknown_target) return false;
    for (const format::LcddEntry& dep : table.lcdds) {
      if (dep.src == cls && dep.dst == cls) return false;
    }
    return true;
  }
  return false;
}

CallAcc HliUnitView::get_call_acc(ItemId mem, ItemId call) const {
  check_fresh();
  const RegionId call_region = region_of(call);
  const RegionId mem_region = region_of(mem);
  if (call_region == kNoRegion || mem_region == kNoRegion) return CallAcc::RefMod;

  // Least common region of the memory item and the call.
  const std::uint32_t dc = dense_region(call_region);
  const std::uint32_t lca = dense_lca(dense_region(mem_region), dc);
  if (lca == kNone) return CallAcc::RefMod;
  const RegionId lca_id = rinfo_[lca].id;

  const ItemId mem_class = class_of_at(mem, lca_id);
  if (mem_class == kNoItem) return CallAcc::RefMod;
  if (class_known(mem_class) &&
      (cinfo_[mem_class].flags & kUnknownTarget) != 0) {
    return CallAcc::RefMod;
  }

  // Locate the effect entry at the LCA: per-item if the call is immediate,
  // otherwise the aggregate entry of the LCA child containing the call.
  const RegionEntry* region = rinfo_[lca].table;
  const CallEffectEntry* effect = nullptr;
  if (call_region == lca_id) {
    for (const CallEffectEntry& eff : region->call_effects) {
      if (!eff.is_subregion && eff.call_item == call) {
        effect = &eff;
        break;
      }
    }
  } else {
    // Child of lca on the path to call_region.
    std::uint32_t child = dc;
    while (child != kNone && rinfo_[child].parent != lca) {
      child = rinfo_[child].parent;
    }
    if (child != kNone) {
      const RegionId child_id = rinfo_[child].id;
      for (const CallEffectEntry& eff : region->call_effects) {
        if (eff.is_subregion && eff.subregion == child_id) {
          effect = &eff;
          break;
        }
      }
    }
  }
  if (effect == nullptr || effect->unknown) return CallAcc::RefMod;

  const bool in_ref = std::find(effect->ref_classes.begin(),
                                effect->ref_classes.end(),
                                mem_class) != effect->ref_classes.end();
  const bool in_mod = std::find(effect->mod_classes.begin(),
                                effect->mod_classes.end(),
                                mem_class) != effect->mod_classes.end();
  if (in_ref && in_mod) return CallAcc::RefMod;
  if (in_mod) return CallAcc::Mod;
  if (in_ref) return CallAcc::Ref;
  return CallAcc::None;
}

}  // namespace hli::query
