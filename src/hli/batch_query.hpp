// Batched bitset dependence queries (the whole-block complement to the
// scalar HliUnitView pair queries).
//
// The scheduler's DDG construction asks O(n²) `may_conflict` questions
// per block; each scalar call re-walks the least-common-region chain and
// re-resolves both items' classes.  A BlockConflictMatrix does that
// resolution ONCE per block: given the distinct HLI items a scheduling
// block references, it
//   1. resolves each item's class once per *relevant region* (the LCA
//      closure of the items' owning regions),
//   2. precomputes a class×class conflict matrix per relevant region
//      (equivalence ∪ alias, exactly the scalar may_conflict tail),
//   3. materializes item×item answer planes as packed std::uint64_t
//      bitset rows — a conflict plane plus a definite plane, so the full
//      three-valued EquivAcc is reconstructed from two bit tests,
//   4. optionally folds in the LCDD table of one loop region (a
//      loop-carried plane: bit set iff `get_lcdd(loop, a, b)` would be
//      non-empty), and
//   5. resolves call REF/MOD effects once per (call, region) group into
//      ref/mod planes answering `get_call_acc` per bit pair.
//
// Contract: for every pair of slotted items the matrix answer is
// BIT-IDENTICAL to the scalar dense view (and therefore to the reference
// oracle) — `--verify-hli`'s audit and tests/hli/batch_query_test.cpp
// replay exhaustive pairs on all three implementations.  Consumers fall
// back to the scalar view for items they did not slot (counted by
// `query.batch_fallbacks`).
//
// Staleness follows the HliEntry generation counter exactly like the
// view: a matrix built from a view is valid until the entry is mutated;
// debug builds assert on use-after-maintenance.  The matrix owns its
// storage as a reusable arena — `build()` refills without reallocating,
// so a pass keeps one matrix object and rebuilds it per block.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "hli/query.hpp"

namespace hli::query {

class BlockConflictMatrix {
 public:
  /// Sentinel returned by slot_of/call_slot_of for unslotted items.
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  BlockConflictMatrix() = default;

  /// Builds the planes for one block.  `mem_items` are the distinct
  /// memory items the block references (duplicates are deduplicated;
  /// first occurrence assigns the slot), `call_items` the call items the
  /// block's REF/MOD questions will name.  When `lcdd_loop` names a loop
  /// region of the entry, the loop-carried plane is filled from its LCDD
  /// table.  `view` must outlive the matrix; previous contents (and
  /// capacity) are reused.
  void build(const HliUnitView& view,
             const std::vector<format::ItemId>& mem_items,
             const std::vector<format::ItemId>& call_items = {},
             format::RegionId lcdd_loop = format::kNoRegion);

  /// Forgets the block (size() -> 0) but keeps the arena's capacity.
  void reset();

  [[nodiscard]] bool built() const { return view_ != nullptr; }
  /// True when the underlying entry was mutated after build(); a stale
  /// matrix must be rebuilt, same rule as HliUnitView::stale().
  [[nodiscard]] bool stale() const {
    return view_ != nullptr && view_->entry().generation != built_generation_;
  }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] std::size_t call_count() const { return call_slots_.size(); }
  /// Packed row width of the memory-item planes, in 64-bit words.
  [[nodiscard]] std::uint32_t words_per_row() const { return words_; }

  /// Slot of a memory item (kNoSlot when it was not in mem_items).
  [[nodiscard]] std::uint32_t slot_of(format::ItemId item) const {
    return lookup(slot_map_, slot_epoch_, overflow_, item);
  }
  /// Slot of a call item (kNoSlot when it was not in call_items).
  [[nodiscard]] std::uint32_t call_slot_of(format::ItemId item) const {
    return lookup(call_map_, call_epoch_, call_overflow_, item);
  }
  /// Item occupying a memory slot.
  [[nodiscard]] format::ItemId item_at(std::uint32_t slot) const {
    return slots_[slot];
  }

  // -- Pair answers (all O(1) bit tests) ----------------------------------

  /// Scalar-identical HLI_GetEquivAcc ∪ HLI_GetAlias answer for two
  /// memory slots: EquivAcc::None when the block can reorder them.
  [[nodiscard]] EquivAcc may_conflict(std::uint32_t a, std::uint32_t b) const {
    check_fresh();
    if (a >= size() || b >= size()) return EquivAcc::Maybe;
    if (!bit(conflict_, a, b)) return EquivAcc::None;
    return bit(definite_, a, b) ? EquivAcc::Definite : EquivAcc::Maybe;
  }

  /// `may_conflict(a, b) != EquivAcc::None` as a single bit test.
  [[nodiscard]] bool conflict(std::uint32_t a, std::uint32_t b) const {
    check_fresh();
    if (a >= size() || b >= size()) return true;  // Unslotted: stay safe.
    return bit(conflict_, a, b);
  }

  /// True iff `HliUnitView::get_lcdd(lcdd_loop, a, b)` would return a
  /// non-empty list (either direction).  Always false when build() got no
  /// loop region — callers needing distances still ask the scalar view,
  /// but only for pairs whose bit is set.
  [[nodiscard]] bool loop_carried(std::uint32_t a, std::uint32_t b) const {
    check_fresh();
    if (lcdd_.empty() || a >= size() || b >= size()) return false;
    return bit(lcdd_, a, b);
  }

  /// Scalar-identical HLI_GetCallAcc for a memory slot × call slot.
  [[nodiscard]] CallAcc call_acc(std::uint32_t mem, std::uint32_t call) const {
    check_fresh();
    if (mem >= size() || call >= call_count()) return CallAcc::RefMod;
    const bool ref = bit_at(call_ref_, call, mem);
    const bool mod = bit_at(call_mod_, call, mem);
    if (ref && mod) return CallAcc::RefMod;
    if (mod) return CallAcc::Mod;
    if (ref) return CallAcc::Ref;
    return CallAcc::None;
  }

  // -- Whole-row access (word-at-a-time scans) ----------------------------

  /// Packed conflict row of slot `a`: bit `b` of word `w` is
  /// `conflict(a, 64*w + b)`.  Valid until the next build()/reset().
  [[nodiscard]] const std::uint64_t* conflict_row(std::uint32_t a) const {
    check_fresh();
    return conflict_.data() + static_cast<std::size_t>(a) * words_;
  }
  /// One 64-slot word of slot `a`'s conflict row — callers AND it against
  /// their own occupancy masks to test one instruction against 64
  /// predecessors at once.
  [[nodiscard]] std::uint64_t conflict_word(std::uint32_t a,
                                            std::uint32_t word) const {
    check_fresh();
    return conflict_[static_cast<std::size_t>(a) * words_ + word];
  }
  [[nodiscard]] const std::uint64_t* loop_carried_row(std::uint32_t a) const {
    check_fresh();
    return lcdd_.empty() ? nullptr
                         : lcdd_.data() + static_cast<std::size_t>(a) * words_;
  }

 private:
  /// (item, slot) pairs for item IDs past the direct-map range — only
  /// deliberately out-of-range probes land here, so a linear scan is fine.
  using SlotOverflow = std::vector<std::pair<format::ItemId, std::uint32_t>>;

  /// Direct-map lookup: the map entry is live only when its epoch stamp
  /// matches the current build's epoch (no per-build clearing).
  [[nodiscard]] std::uint32_t lookup(const std::vector<std::uint32_t>& map,
                                     const std::vector<std::uint32_t>& epochs,
                                     const SlotOverflow& overflow,
                                     format::ItemId item) const {
    if (view_ == nullptr) return kNoSlot;
    if (item < epochs.size() && epochs[item] == epoch_) return map[item];
    for (const auto& [id, slot] : overflow) {
      if (id == item) return slot;
    }
    return kNoSlot;
  }
  void assign_slots(std::vector<std::uint32_t>& map,
                    std::vector<std::uint32_t>& epochs, SlotOverflow& overflow,
                    const std::vector<format::ItemId>& items,
                    std::vector<format::ItemId>& slots);

  [[nodiscard]] bool bit(const std::vector<std::uint64_t>& plane,
                         std::uint32_t a, std::uint32_t b) const {
    return bit_at(plane, a, b);
  }
  [[nodiscard]] bool bit_at(const std::vector<std::uint64_t>& plane,
                            std::uint32_t row, std::uint32_t col) const {
    return (plane[static_cast<std::size_t>(row) * words_ + (col >> 6)] >>
            (col & 63)) & 1u;
  }
  void set_bit(std::vector<std::uint64_t>& plane, std::uint32_t row,
               std::uint32_t col) {
    plane[static_cast<std::size_t>(row) * words_ + (col >> 6)] |=
        std::uint64_t{1} << (col & 63);
  }

  void fill_conflict_planes();
  void fill_lcdd_plane(format::RegionId lcdd_loop);
  void fill_call_planes();

  void check_fresh() const {
    assert(!stale() && "BlockConflictMatrix queried after the HliEntry was "
                       "mutated; rebuild after maintenance");
  }

  const HliUnitView* view_ = nullptr;
  std::uint64_t built_generation_ = 0;
  std::uint32_t words_ = 0;

  // Slot assignment (first-occurrence order) + epoch-stamped direct maps
  // over the view's item space (O(1) assignment and lookup, no sorting;
  // a bumped epoch invalidates every previous block's stamps at once).
  std::vector<format::ItemId> slots_;
  std::vector<format::ItemId> call_slots_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> slot_map_;
  std::vector<std::uint32_t> slot_epoch_;
  std::vector<std::uint32_t> call_map_;
  std::vector<std::uint32_t> call_epoch_;
  SlotOverflow overflow_;
  SlotOverflow call_overflow_;

  // Answer planes, each size() rows × words_ words (call planes are
  // call_count() rows over memory-slot columns).
  std::vector<std::uint64_t> conflict_;
  std::vector<std::uint64_t> definite_;
  std::vector<std::uint64_t> lcdd_;
  std::vector<std::uint64_t> call_ref_;
  std::vector<std::uint64_t> call_mod_;

  // Build-time arena, reused across build() calls.  The pair fill loop
  // reads: slot a,b -> region groups -> relevant-LCA index -> per-slot
  // class indices -> one byte of the class×class plane.
  std::vector<std::uint32_t> slot_dense_;  ///< Dense owning region per slot.
  std::vector<std::uint32_t> slot_group_;  ///< Region-group index per slot.
  std::vector<std::uint32_t> regions_;     ///< Distinct dense regions (groups).
  std::vector<std::uint32_t> rel_;         ///< Distinct pairwise-LCA regions.
  std::vector<std::uint32_t> lca_rel_;     ///< group×group -> rel_ index.
  std::vector<std::uint32_t> class_idx_;   ///< rel×slot -> class-list index.
  std::vector<std::size_t> rel_off_;       ///< rel -> class_bits_ offset.
  std::vector<std::uint32_t> rel_stride_;  ///< rel -> class count.
  std::vector<std::uint8_t> class_bits_;   ///< Per-rel class×class planes.
  std::vector<format::ItemId> classes_;    ///< Scratch: one rel's classes.
  std::vector<format::ItemId> slot_class_; ///< Scratch: per-slot class.
  std::vector<std::uint8_t> class_status_; ///< Scratch: per-class category.
  std::vector<const std::uint8_t*> row_plane_;   ///< Scratch: group -> class row.
  std::vector<const std::uint32_t*> row_cidx_;   ///< Scratch: group -> idx row.
  std::vector<std::uint32_t> group_lca_;   ///< Scratch: call-plane LCA cache.
  std::vector<const format::CallEffectEntry*> group_effect_;
  std::vector<std::uint32_t> match_a_;     ///< Scratch: LCDD src slot list.
  std::vector<std::uint32_t> match_b_;     ///< Scratch: LCDD dst slot list.
};

}  // namespace hli::query
