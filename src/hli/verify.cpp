#include "hli/verify.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "hli/batch_query.hpp"
#include "hli/query.hpp"
#include "hli/reference_query.hpp"

namespace hli::verify {

using namespace format;

std::string_view code_name(Code code) {
  switch (code) {
    case Code::DuplicateItemId: return "duplicate-item-id";
    case Code::ItemIdOutOfRange: return "item-id-out-of-range";
    case Code::LineTableUnsorted: return "line-table-unsorted";
    case Code::EmptyLineEntry: return "empty-line-entry";
    case Code::MappingIncongruent: return "mapping-incongruent";
    case Code::RootRegionInvalid: return "root-region-invalid";
    case Code::DuplicateRegionId: return "duplicate-region-id";
    case Code::ParentChildMismatch: return "parent-child-mismatch";
    case Code::RegionTreeNotTree: return "region-tree-not-tree";
    case Code::RegionScopeInverted: return "region-scope-inverted";
    case Code::ClassIdInvalid: return "class-id-invalid";
    case Code::ClassMemberNotMemoryItem: return "class-member-not-memory-item";
    case Code::ItemInMultipleClasses: return "item-in-multiple-classes";
    case Code::MemoryItemUncovered: return "memory-item-uncovered";
    case Code::DanglingSubclass: return "dangling-subclass";
    case Code::SubclassMultiplyLifted: return "subclass-multiply-lifted";
    case Code::ClassChainNotRooted: return "class-chain-not-rooted";
    case Code::ClassWriteFlagInconsistent: return "class-write-flag-unsound";
    case Code::UnknownTargetNotMaybe: return "unknown-target-not-maybe";
    case Code::AliasEntryDegenerate: return "alias-entry-degenerate";
    case Code::AliasDanglingClass: return "alias-dangling-class";
    case Code::LcddDanglingClass: return "lcdd-dangling-class";
    case Code::LcddInNonLoopRegion: return "lcdd-in-non-loop-region";
    case Code::LcddDistanceNotNormalized: return "lcdd-distance-not-normalized";
    case Code::LcddEndpointUnknownTarget: return "lcdd-endpoint-unknown-target";
    case Code::CallEffectDanglingClass: return "calleff-dangling-class";
    case Code::CallEffectItemNotCall: return "calleff-item-not-call";
    case Code::CallEffectSubregionInvalid: return "calleff-subregion-invalid";
    case Code::CallItemUncovered: return "call-item-uncovered";
    case Code::CallItemMultiplyCovered: return "call-item-multiply-covered";
    case Code::SubtreeCallsNotAggregated: return "subtree-calls-not-aggregated";
    case Code::AuditDivergence: return "audit-divergence";
    case Code::IrdepConflictMissed: return "irdep-conflict-missed";
    case Code::IrdepCarriedMissed: return "irdep-carried-missed";
  }
  return "unknown";
}

std::string to_string(const Finding& finding) {
  std::ostringstream out;
  out << "HV" << static_cast<unsigned>(finding.code) << ' '
      << code_name(finding.code);
  if (finding.region != kNoRegion) out << " region=" << finding.region;
  if (finding.class_id != kNoItem) out << " class=" << finding.class_id;
  if (finding.item != kNoItem) out << " item=" << finding.item;
  if (!finding.detail.empty()) out << ": " << finding.detail;
  return out.str();
}

bool VerifyResult::has(Code code) const {
  return std::any_of(findings.begin(), findings.end(),
                     [code](const Finding& f) { return f.code == code; });
}

std::string VerifyResult::render(std::string_view unit) const {
  std::string out;
  for (const Finding& finding : findings) {
    out.append(unit);
    out.append(": ");
    out.append(to_string(finding));
    out.push_back('\n');
  }
  return out;
}

namespace {

const char* acc_name(query::EquivAcc acc) {
  switch (acc) {
    case query::EquivAcc::None: return "None";
    case query::EquivAcc::Maybe: return "Maybe";
    case query::EquivAcc::Definite: return "Definite";
  }
  return "?";
}

/// One verification run over one entry.  All traversals are bounded by
/// table sizes and the region walk carries a visited set, so arbitrarily
/// corrupt input terminates.
class Verifier {
 public:
  Verifier(const HliEntry& entry, const VerifyOptions& options,
           VerifyResult& result)
      : entry_(entry), options_(options), result_(result) {}

  void run() {
    check_line_table();
    check_mapping();
    const bool tree_ok = check_region_tree();
    index_classes();
    check_partition();
    check_aliases();
    check_lcdds();
    check_call_effects(tree_ok);
    // The reference oracle climbs raw parent links, so a parent cycle or
    // self-parent would hang it: only audit when the parent graph was
    // proven acyclic (duplicate ids / table corruption are fine — that is
    // exactly what the audit pinpoints).
    if (options_.audit_on_findings && !result_.findings.empty() &&
        !result_.has(Code::RootRegionInvalid) &&
        !result_.has(Code::ParentChildMismatch) &&
        !result_.has(Code::RegionTreeNotTree)) {
      audit();
    }
  }

 private:
  void add(Code code, RegionId region, ItemId class_id, ItemId item,
           std::string detail) {
    if (result_.findings.size() >= options_.max_findings) return;
    result_.findings.push_back(
        {code, region, class_id, item, std::move(detail)});
  }
  /// Counts one invariant evaluation; returns `ok` so call sites read as
  /// `if (!checked(cond)) add(...)`.
  bool checked(bool ok) {
    ++result_.checks_run;
    return ok;
  }

  // -- HV1xx: line table --------------------------------------------------
  void check_line_table() {
    std::uint32_t prev_line = 0;
    bool first = true;
    for (const LineEntry& line : entry_.line_table.lines()) {
      if (!checked(first || line.line > prev_line)) {
        add(Code::LineTableUnsorted, kNoRegion, kNoItem, kNoItem,
            "line " + std::to_string(line.line) + " after line " +
                std::to_string(prev_line));
      }
      first = false;
      prev_line = line.line;
      if (!checked(!line.items.empty())) {
        add(Code::EmptyLineEntry, kNoRegion, kNoItem, kNoItem,
            "line " + std::to_string(line.line) + " has no items");
      }
      for (const ItemEntry& item : line.items) {
        if (!checked(item.id != kNoItem && item.id < entry_.next_id)) {
          add(Code::ItemIdOutOfRange, kNoRegion, kNoItem, item.id,
              "on line " + std::to_string(line.line) + ", next_id=" +
                  std::to_string(entry_.next_id));
        }
        if (!checked(item_types_.emplace(item.id, item.type).second)) {
          add(Code::DuplicateItemId, kNoRegion, kNoItem, item.id,
              "appears again on line " + std::to_string(line.line));
        }
      }
    }
  }

  // -- HV105: congruence with the back-end mapping table --------------------
  void check_mapping() {
    if (options_.mapped_refs == nullptr) return;
    for (const MappedRef& ref : *options_.mapped_refs) {
      const auto it = item_types_.find(ref.item);
      if (!checked(it != item_types_.end())) {
        add(Code::MappingIncongruent, kNoRegion, kNoItem, ref.item,
            "back-end instruction mapped to an item absent from the line "
            "table");
        continue;
      }
      bool compatible = false;
      switch (it->second) {
        case ItemType::Call: compatible = ref.is_call; break;
        case ItemType::Store:
        case ItemType::ArgStore:
          compatible = !ref.is_call && ref.is_store;
          break;
        case ItemType::Load:
        case ItemType::ArgLoad:
          compatible = !ref.is_call && !ref.is_store;
          break;
      }
      if (!checked(compatible)) {
        add(Code::MappingIncongruent, kNoRegion, kNoItem, ref.item,
            std::string("item is ") + format::to_string(it->second) +
                " but the mapped instruction is " +
                (ref.is_call ? "a call" : ref.is_store ? "a store" : "a load"));
      }
    }
  }

  // -- HV2xx: region tree --------------------------------------------------
  bool check_region_tree() {
    const std::size_t before = result_.findings.size();
    for (const RegionEntry& region : entry_.regions) {
      const bool fresh =
          region.id != kNoRegion &&
          regions_.emplace(region.id, &region).second;
      if (!checked(fresh)) {
        add(Code::DuplicateRegionId, region.id, kNoItem, kNoItem,
            region.id == kNoRegion ? "region id 0 is reserved"
                                   : "region id defined twice");
      }
    }
    const RegionEntry* root = find_region(entry_.root_region);
    if (!checked(root != nullptr)) {
      add(Code::RootRegionInvalid, entry_.root_region, kNoItem, kNoItem,
          "root_region is not in the region table");
    } else if (!checked(root->parent == kNoRegion)) {
      add(Code::ParentChildMismatch, root->id, kNoItem, kNoItem,
          "root region has parent " + std::to_string(root->parent));
    }

    for (const auto& [id, region] : regions_) {
      if (!checked(region->first_line <= region->last_line)) {
        add(Code::RegionScopeInverted, id, kNoItem, kNoItem,
            "scope [" + std::to_string(region->first_line) + ", " +
                std::to_string(region->last_line) + "]");
      }
      if (region->parent != kNoRegion) {
        const RegionEntry* parent = find_region(region->parent);
        if (!checked(parent != nullptr)) {
          add(Code::ParentChildMismatch, id, kNoItem, kNoItem,
              "parent region " + std::to_string(region->parent) +
                  " does not exist");
        } else {
          const auto count = std::count(parent->children.begin(),
                                        parent->children.end(), id);
          if (!checked(count == 1)) {
            add(Code::ParentChildMismatch, id, kNoItem, kNoItem,
                "listed " + std::to_string(count) + " times in children of " +
                    "parent region " + std::to_string(region->parent));
          }
        }
      }
      for (const RegionId child_id : region->children) {
        const RegionEntry* child = find_region(child_id);
        if (!checked(child != nullptr && child->parent == id)) {
          add(Code::ParentChildMismatch, id, kNoItem, kNoItem,
              "child region " + std::to_string(child_id) +
                  (child == nullptr ? " does not exist"
                                    : " has parent " +
                                          std::to_string(child->parent)));
        }
      }
    }

    // Reachability from the root over consistent parent links: the proper-
    // tree / Euler-tour precondition.  The visited set breaks cycles.
    std::unordered_set<RegionId> reachable;
    if (root != nullptr) {
      std::vector<const RegionEntry*> stack{root};
      reachable.insert(root->id);
      while (!stack.empty()) {
        const RegionEntry* region = stack.back();
        stack.pop_back();
        for (const RegionId child_id : region->children) {
          const RegionEntry* child = find_region(child_id);
          if (child == nullptr || child->parent != region->id) continue;
          if (reachable.insert(child_id).second) stack.push_back(child);
        }
      }
    }
    for (const auto& [id, region] : regions_) {
      if (!checked(reachable.contains(id))) {
        add(Code::RegionTreeNotTree, id, kNoItem, kNoItem,
            "not reachable from root region " +
                std::to_string(entry_.root_region) +
                " (orphan or parent cycle)");
      }
    }
    return result_.findings.size() == before;
  }

  // -- HV3xx: the equivalent-access partition -------------------------------
  void index_classes() {
    for (const RegionEntry& region : entry_.regions) {
      for (const EquivClass& cls : region.classes) {
        const bool valid = cls.id != kNoItem && cls.id < entry_.next_id &&
                           !class_region_.contains(cls.id) &&
                           !item_types_.contains(cls.id);
        if (!checked(valid)) {
          add(Code::ClassIdInvalid, region.id, cls.id, kNoItem,
              cls.id == kNoItem ? "class id 0 is reserved"
              : cls.id >= entry_.next_id
                  ? "class id >= next_id " + std::to_string(entry_.next_id)
              : item_types_.contains(cls.id)
                  ? "class id collides with a line-table item"
                  : "class id defined twice");
          continue;
        }
        class_region_.emplace(cls.id, region.id);
        class_ptr_.emplace(cls.id, &cls);
      }
    }
  }

  [[nodiscard]] bool is_class_of(ItemId id, RegionId region) const {
    const auto it = class_region_.find(id);
    return it != class_region_.end() && it->second == region;
  }

  void check_partition() {
    std::unordered_map<ItemId, ItemId> item_class;   // item -> owning class
    std::unordered_map<ItemId, ItemId> lift_parent;  // class -> parent class
    for (const RegionEntry& region : entry_.regions) {
      for (const EquivClass& cls : region.classes) {
        bool member_writes = false;
        for (const ItemId item : cls.member_items) {
          const auto type = item_types_.find(item);
          const bool memory =
              type != item_types_.end() && is_memory_item(type->second);
          if (!checked(memory)) {
            add(Code::ClassMemberNotMemoryItem, region.id, cls.id, item,
                type == item_types_.end()
                    ? "member item is not in the line table"
                    : "member item is a call");
            continue;
          }
          member_writes = member_writes || is_write_item(type->second);
          const auto [it, fresh] = item_class.emplace(item, cls.id);
          if (!checked(fresh)) {
            add(Code::ItemInMultipleClasses, region.id, cls.id, item,
                "already a member of class " + std::to_string(it->second));
          }
        }
        bool sub_writes = false;
        for (const ItemId sub : cls.member_subclasses) {
          const auto sub_region = class_region_.find(sub);
          const bool is_child_class =
              sub_region != class_region_.end() &&
              [&] {
                const RegionEntry* owner = find_region(sub_region->second);
                return owner != nullptr && owner->parent == region.id;
              }();
          if (!checked(is_child_class)) {
            add(Code::DanglingSubclass, region.id, cls.id, sub,
                sub_region == class_region_.end()
                    ? "member subclass is not a class of any region"
                    : "member subclass belongs to region " +
                          std::to_string(sub_region->second) +
                          ", not an immediate child");
            continue;
          }
          sub_writes = sub_writes || class_ptr_.at(sub)->has_write;
          const auto [it, fresh] = lift_parent.emplace(sub, cls.id);
          if (!checked(fresh)) {
            add(Code::SubclassMultiplyLifted, region.id, cls.id, sub,
                "already lifted into class " + std::to_string(it->second));
          }
        }
        // Conservativeness is one-directional: has_write may be stale-true
        // after deletions, but false while a member writes is unsound.
        if (!checked(cls.has_write || (!member_writes && !sub_writes))) {
          add(Code::ClassWriteFlagInconsistent, region.id, cls.id, kNoItem,
              "has_write is false but a member writes memory");
        }
        if (!checked(!cls.unknown_target ||
                     cls.type == EquivAccType::Maybe)) {
          add(Code::UnknownTargetNotMaybe, region.id, cls.id, kNoItem,
              "unknown-target class cannot be a definite equivalence");
        }
      }
    }

    // Partition coverage: every memory item of the line table in exactly
    // one class (gaps here; overlaps were caught above).
    for (const auto& [item, type] : item_types_) {
      if (!is_memory_item(type)) continue;
      if (!checked(item_class.contains(item))) {
        add(Code::MemoryItemUncovered, kNoRegion, kNoItem, item,
            std::string(format::to_string(type)) +
                " item is in no equivalent-access class");
      }
    }

    // Lifted chains rooted at the program unit: every class of a non-root
    // region must be lifted into some parent-region class (acyclicity is
    // inherited from the region tree, which subclass edges follow).
    for (const auto& [id, cls] : class_ptr_) {
      const RegionId region = class_region_.at(id);
      if (region == entry_.root_region) continue;
      if (!checked(lift_parent.contains(id))) {
        add(Code::ClassChainNotRooted, region, id, kNoItem,
            "class of a non-root region is lifted into no parent class");
      }
    }
  }

  // -- HV4xx: alias sets ----------------------------------------------------
  void check_aliases() {
    for (const RegionEntry& region : entry_.regions) {
      for (std::size_t i = 0; i < region.aliases.size(); ++i) {
        const AliasEntry& alias = region.aliases[i];
        std::unordered_set<ItemId> distinct(alias.classes.begin(),
                                            alias.classes.end());
        if (!checked(distinct.size() >= 2 &&
                     distinct.size() == alias.classes.size())) {
          add(Code::AliasEntryDegenerate, region.id, kNoItem, kNoItem,
              "alias entry #" + std::to_string(i) + " has " +
                  std::to_string(alias.classes.size()) + " members, " +
                  std::to_string(distinct.size()) +
                  " distinct (sets must be self-free with >= 2 classes)");
        }
        for (const ItemId cls : alias.classes) {
          if (!checked(is_class_of(cls, region.id))) {
            add(Code::AliasDanglingClass, region.id, cls, kNoItem,
                "alias entry #" + std::to_string(i) +
                    " references a non-class of this region");
          }
        }
      }
    }
  }

  // -- HV5xx: loop-carried data dependences ---------------------------------
  void check_lcdds() {
    for (const RegionEntry& region : entry_.regions) {
      if (!checked(region.lcdds.empty() ||
                   region.type == RegionType::Loop)) {
        add(Code::LcddInNonLoopRegion, region.id, kNoItem, kNoItem,
            std::to_string(region.lcdds.size()) +
                " carried dependences on a non-loop region");
      }
      for (const LcddEntry& dep : region.lcdds) {
        for (const ItemId end : {dep.src, dep.dst}) {
          if (!checked(is_class_of(end, region.id))) {
            add(Code::LcddDanglingClass, region.id, end, kNoItem,
                "LCDD endpoint is not a class of this region");
          }
        }
        const bool normalized =
            dep.distance ? *dep.distance >= 1
                         : dep.type == DepType::Maybe;
        if (!checked(normalized)) {
          add(Code::LcddDistanceNotNormalized, region.id, dep.src, kNoItem,
              dep.distance
                  ? "distance " + std::to_string(*dep.distance) +
                        " (normalized forward distances are >= 1)"
                  : "definite dependence with unknown distance");
        }
        if (dep.type == DepType::Definite) {
          for (const ItemId end : {dep.src, dep.dst}) {
            const auto cls = class_ptr_.find(end);
            if (!checked(cls == class_ptr_.end() ||
                         !cls->second->unknown_target)) {
              add(Code::LcddEndpointUnknownTarget, region.id, end, kNoItem,
                  "definite dependence on an unknown-target class");
            }
          }
        }
      }
    }
  }

  // -- HV6xx: call REF/MOD --------------------------------------------------
  void check_call_effects(bool tree_ok) {
    std::unordered_map<ItemId, RegionId> covered;  // call item -> region
    std::unordered_map<RegionId, bool> direct_calls;
    for (const RegionEntry& region : entry_.regions) {
      for (std::size_t i = 0; i < region.call_effects.size(); ++i) {
        const CallEffectEntry& eff = region.call_effects[i];
        if (eff.is_subregion) {
          const RegionEntry* sub = find_region(eff.subregion);
          if (!checked(sub != nullptr && sub->parent == region.id)) {
            add(Code::CallEffectSubregionInvalid, region.id, kNoItem, kNoItem,
                "aggregate entry #" + std::to_string(i) + " names region " +
                    std::to_string(eff.subregion) +
                    ", not an immediate child");
          }
        } else {
          const auto type = item_types_.find(eff.call_item);
          if (!checked(type != item_types_.end() &&
                       type->second == ItemType::Call)) {
            add(Code::CallEffectItemNotCall, region.id, kNoItem,
                eff.call_item,
                type == item_types_.end()
                    ? "keyed item is not in the line table"
                    : "keyed item is a " +
                          std::string(format::to_string(type->second)));
          } else {
            direct_calls[region.id] = true;
            const auto [it, fresh] = covered.emplace(eff.call_item, region.id);
            if (!checked(fresh)) {
              add(Code::CallItemMultiplyCovered, region.id, kNoItem,
                  eff.call_item,
                  "already has a per-item entry in region " +
                      std::to_string(it->second));
            }
          }
        }
        for (const ItemId cls : eff.ref_classes) {
          if (!checked(is_class_of(cls, region.id))) {
            add(Code::CallEffectDanglingClass, region.id, cls, kNoItem,
                "REF list of entry #" + std::to_string(i) +
                    " references a non-class of this region");
          }
        }
        for (const ItemId cls : eff.mod_classes) {
          if (!checked(is_class_of(cls, region.id))) {
            add(Code::CallEffectDanglingClass, region.id, cls, kNoItem,
                "MOD list of entry #" + std::to_string(i) +
                    " references a non-class of this region");
          }
        }
      }
    }

    // Coverage: every call item of the line table has a per-item entry.
    for (const auto& [item, type] : item_types_) {
      if (type != ItemType::Call) continue;
      if (!checked(covered.contains(item))) {
        add(Code::CallItemUncovered, kNoRegion, kNoItem, item,
            "call item has no per-item REF/MOD entry in any region");
      }
    }

    // Aggregation: a region whose subtree contains calls must have an
    // aggregate entry in its parent (queries at outer regions resolve the
    // call through that entry).  Needs a sound tree to define "subtree".
    if (!tree_ok) return;
    std::unordered_map<RegionId, bool> subtree_calls;
    // Postorder via depth sort: children strictly deeper than parents.
    std::vector<const RegionEntry*> order;
    order.reserve(entry_.regions.size());
    for (const RegionEntry& region : entry_.regions) order.push_back(&region);
    std::sort(order.begin(), order.end(),
              [this](const RegionEntry* a, const RegionEntry* b) {
                return depth_of(a->id) > depth_of(b->id);
              });
    for (const RegionEntry* region : order) {
      bool calls = direct_calls[region->id];
      for (const RegionId child : region->children) {
        calls = calls || subtree_calls[child];
      }
      subtree_calls[region->id] = calls;
      if (!calls || region->parent == kNoRegion) continue;
      const RegionEntry* parent = find_region(region->parent);
      const bool aggregated =
          parent != nullptr &&
          std::any_of(parent->call_effects.begin(), parent->call_effects.end(),
                      [&](const CallEffectEntry& eff) {
                        return eff.is_subregion && eff.subregion == region->id;
                      });
      if (!checked(aggregated)) {
        add(Code::SubtreeCallsNotAggregated, region->parent, kNoItem, kNoItem,
            "child region " + std::to_string(region->id) +
                " contains calls but has no aggregate REF/MOD entry here");
      }
    }
  }

  // -- HV7xx: differential conservativeness audit ---------------------------
  // Replays every memory-item pair on the dense index and on the map-based
  // oracle; a divergence names the query answer the fast path derived from
  // whatever invariant the checks above flagged.  Both views are built
  // defensively (bounded traversals), so running them on a corrupt entry
  // is safe — their *answers* simply stop agreeing.
  void audit() {
    const query::HliUnitView dense(entry_);
    const query::reference::ReferenceUnitView oracle(entry_);
    std::vector<ItemId> items;
    for (const auto& [item, type] : item_types_) {
      if (is_memory_item(type)) items.push_back(item);
    }
    std::sort(items.begin(), items.end());
    // The batched plane must agree bit-for-bit with both scalar views:
    // one matrix over the whole audited item set answers every probed
    // pair below (docs/query-batching.md's differential guarantee).
    query::BlockConflictMatrix matrix;
    matrix.build(dense, items);
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i; j < items.size(); ++j) {
        if (pairs++ >= options_.max_audit_pairs) return;
        struct Probe {
          const char* name;
          query::EquivAcc got, want;
        };
        const Probe probes[] = {
            {"may_conflict", dense.may_conflict(items[i], items[j]),
             oracle.may_conflict(items[i], items[j])},
            {"batch.may_conflict",
             matrix.may_conflict(matrix.slot_of(items[i]),
                                 matrix.slot_of(items[j])),
             oracle.may_conflict(items[i], items[j])},
            {"get_equiv_acc", dense.get_equiv_acc(items[i], items[j]),
             oracle.get_equiv_acc(items[i], items[j])},
            {"get_alias", dense.get_alias(items[i], items[j]),
             oracle.get_alias(items[i], items[j])},
        };
        for (const Probe& probe : probes) {
          if (!checked(probe.got == probe.want)) {
            add(Code::AuditDivergence, kNoRegion, kNoItem, items[i],
                std::string(probe.name) + "(" + std::to_string(items[i]) +
                    ", " + std::to_string(items[j]) + "): dense=" +
                    acc_name(probe.got) + " reference=" +
                    acc_name(probe.want) +
                    " — the fast path relied on a violated invariant");
            if (result_.findings.size() >= options_.max_findings) return;
          }
        }
      }
    }
  }

  [[nodiscard]] const RegionEntry* find_region(RegionId id) const {
    const auto it = regions_.find(id);
    return it != regions_.end() ? it->second : nullptr;
  }

  /// Depth via parent links, bounded by the region count (cycles cap out).
  [[nodiscard]] std::size_t depth_of(RegionId id) const {
    std::size_t depth = 0;
    const RegionEntry* region = find_region(id);
    while (region != nullptr && region->parent != kNoRegion &&
           depth <= regions_.size()) {
      region = find_region(region->parent);
      ++depth;
    }
    return depth;
  }

  const HliEntry& entry_;
  const VerifyOptions& options_;
  VerifyResult& result_;

  std::unordered_map<ItemId, ItemType> item_types_;
  std::unordered_map<RegionId, const RegionEntry*> regions_;
  std::unordered_map<ItemId, RegionId> class_region_;
  std::unordered_map<ItemId, const EquivClass*> class_ptr_;
};

}  // namespace

VerifyResult verify_entry(const HliEntry& entry, const VerifyOptions& options) {
  VerifyResult result;
  Verifier(entry, options, result).run();
  return result;
}

VerifyResult verify_file(const HliFile& file, const VerifyOptions& options,
                         std::string* report) {
  VerifyResult total;
  for (const HliEntry& entry : file.entries) {
    VerifyResult one = verify_entry(entry, options);
    total.checks_run += one.checks_run;
    if (report != nullptr) *report += one.render(entry.unit_name);
    total.findings.insert(total.findings.end(),
                          std::make_move_iterator(one.findings.begin()),
                          std::make_move_iterator(one.findings.end()));
  }
  return total;
}

void report(const VerifyResult& result, std::string_view unit,
            support::DiagnosticEngine& diags) {
  for (const Finding& finding : result.findings) {
    diags.error({}, std::string(unit) + ": " + to_string(finding));
  }
}

}  // namespace hli::verify
