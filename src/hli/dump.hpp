// Human-readable rendering of HLI tables, in the layout of the paper's
// Figure 2: regions with their class partitions, alias sets, loop-carried
// dependences, and call effects.  Used by the hlic tool and the demos;
// this is presentation only — the interchange format is hli/serialize.
#pragma once

#include <string>

#include "hli/format.hpp"

namespace hli::dump {

[[nodiscard]] std::string render_entry(const format::HliEntry& entry);
[[nodiscard]] std::string render_file(const format::HliFile& file);

}  // namespace hli::dump
