#include "hli/maintain.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "hli/verify.hpp"

namespace hli::maintain {

using namespace format;

namespace {

// Debug-build postcondition hook: every maintenance op must leave the
// entry verifier-clean (it received a clean entry; §3.2.3's contract is
// that maintenance preserves conservative correctness).  Compiled out
// under NDEBUG; the sanitizer CI job builds Debug so these run there.
#ifndef NDEBUG
void selfcheck(const HliEntry& entry, const char* op) {
  const verify::VerifyResult result = verify::verify_entry(entry);
  if (!result.ok()) {
    std::fprintf(stderr, "hli::maintain::%s broke an HLI invariant:\n%s", op,
                 result.render(entry.unit_name).c_str());
    assert(false && "HLI maintenance postcondition violated");
  }
}
#define HLI_MAINTAIN_SELFCHECK(entry, op) selfcheck(entry, op)
#else
#define HLI_MAINTAIN_SELFCHECK(entry, op) ((void)0)
#endif

template <typename T>
void erase_value(std::vector<T>& v, const T& value) {
  v.erase(std::remove(v.begin(), v.end(), value), v.end());
}

/// Region containing `item` as a class member; also yields the class.
RegionEntry* find_item_region(HliEntry& entry, ItemId item, EquivClass** cls_out) {
  for (RegionEntry& region : entry.regions) {
    for (EquivClass& cls : region.classes) {
      if (std::find(cls.member_items.begin(), cls.member_items.end(), item) !=
          cls.member_items.end()) {
        if (cls_out != nullptr) *cls_out = &cls;
        return &region;
      }
    }
  }
  return nullptr;
}

/// Removes a now-empty class from its region and all referencing tables;
/// recurses upward if the parent class becomes empty too.
void remove_class(HliEntry& entry, RegionEntry& region, ItemId class_id) {
  // Strip the class from this region's side tables.
  for (AliasEntry& alias : region.aliases) erase_value(alias.classes, class_id);
  std::erase_if(region.aliases,
                [](const AliasEntry& a) { return a.classes.size() < 2; });
  std::erase_if(region.lcdds, [class_id](const LcddEntry& d) {
    return d.src == class_id || d.dst == class_id;
  });
  for (CallEffectEntry& eff : region.call_effects) {
    erase_value(eff.ref_classes, class_id);
    erase_value(eff.mod_classes, class_id);
  }
  std::erase_if(region.classes,
                [class_id](const EquivClass& c) { return c.id == class_id; });

  // Detach from the parent class, cascading if it empties.
  RegionEntry* parent = entry.find_region(region.parent);
  if (parent == nullptr) return;
  for (EquivClass& parent_cls : parent->classes) {
    const auto it = std::find(parent_cls.member_subclasses.begin(),
                              parent_cls.member_subclasses.end(), class_id);
    if (it == parent_cls.member_subclasses.end()) continue;
    parent_cls.member_subclasses.erase(it);
    if (parent_cls.member_items.empty() && parent_cls.member_subclasses.empty()) {
      remove_class(entry, *parent, parent_cls.id);
    }
    return;
  }
}

void remove_from_line_table(HliEntry& entry, ItemId item) {
  for (LineEntry& line : entry.line_table.mutable_lines()) {
    std::erase_if(line.items, [item](const ItemEntry& e) { return e.id == item; });
  }
  std::erase_if(entry.line_table.mutable_lines(),
                [](const LineEntry& l) { return l.items.empty(); });
}

}  // namespace

void delete_item(HliEntry& entry, ItemId item) {
  ++entry.generation;
  EquivClass* cls = nullptr;
  RegionEntry* region = find_item_region(entry, item, &cls);
  const bool was_call =
      entry.line_table.item_type(item) == ItemType::Call;
  remove_from_line_table(entry, item);
  if (was_call) {
    // Calls live in the REF/MOD table, not in classes: drop the per-item
    // effect entry so it does not dangle.
    for (RegionEntry& r : entry.regions) {
      std::erase_if(r.call_effects, [item](const CallEffectEntry& eff) {
        return !eff.is_subregion && eff.call_item == item;
      });
    }
  }
  if (region == nullptr || cls == nullptr) {
    HLI_MAINTAIN_SELFCHECK(entry, "delete_item");
    return;
  }
  erase_value(cls->member_items, item);
  if (cls->member_items.empty() && cls->member_subclasses.empty()) {
    remove_class(entry, *region, cls->id);
  }
  HLI_MAINTAIN_SELFCHECK(entry, "delete_item");
}

ItemId clone_item(HliEntry& entry, ItemId proto, std::uint32_t line) {
  ++entry.generation;
  const auto type = entry.line_table.item_type(proto);
  const ItemId fresh = entry.next_id++;
  entry.line_table.add_item(line, {fresh, type.value_or(ItemType::Load)});
  EquivClass* cls = nullptr;
  if (find_item_region(entry, proto, &cls) != nullptr && cls != nullptr) {
    cls->member_items.push_back(fresh);
  } else if (type == ItemType::Call) {
    // A duplicated call site keeps its prototype's REF/MOD effects.
    for (RegionEntry& r : entry.regions) {
      for (std::size_t i = 0; i < r.call_effects.size(); ++i) {
        const CallEffectEntry& eff = r.call_effects[i];
        if (eff.is_subregion || eff.call_item != proto) continue;
        CallEffectEntry copy = eff;
        copy.call_item = fresh;
        r.call_effects.push_back(std::move(copy));
        HLI_MAINTAIN_SELFCHECK(entry, "clone_item");
        return fresh;
      }
    }
  }
  HLI_MAINTAIN_SELFCHECK(entry, "clone_item");
  return fresh;
}

void move_item_to_region(HliEntry& entry, ItemId item, RegionId target) {
  ++entry.generation;
  EquivClass* cls = nullptr;
  RegionEntry* region = find_item_region(entry, item, &cls);
  if (region == nullptr || cls == nullptr || region->id == target) return;

  // Walk the lifted-class chain from the item's region to the target.
  ItemId current_class = cls->id;
  RegionEntry* current_region = region;
  EquivClass* target_class = nullptr;
  while (current_region != nullptr && current_region->id != target) {
    RegionEntry* parent = entry.find_region(current_region->parent);
    if (parent == nullptr) return;  // Target does not enclose the item.
    EquivClass* lifted = nullptr;
    for (EquivClass& candidate : parent->classes) {
      if (std::find(candidate.member_subclasses.begin(),
                    candidate.member_subclasses.end(),
                    current_class) != candidate.member_subclasses.end()) {
        lifted = &candidate;
        break;
      }
    }
    if (lifted == nullptr) return;
    current_class = lifted->id;
    current_region = parent;
    target_class = lifted;
  }
  if (target_class == nullptr) return;

  erase_value(cls->member_items, item);
  target_class->member_items.push_back(item);
  if (cls->member_items.empty() && cls->member_subclasses.empty()) {
    remove_class(entry, *region, cls->id);
  }
  HLI_MAINTAIN_SELFCHECK(entry, "move_item_to_region");
}

UnrollUpdate unroll_loop(HliEntry& entry, RegionId loop, unsigned factor) {
  UnrollUpdate update;
  if (factor < 2) return update;
  RegionEntry* region = entry.find_region(loop);
  if (region == nullptr || region->type != RegionType::Loop ||
      !region->children.empty()) {
    return update;
  }
  ++entry.generation;

  // Copy 0 is the original class; copies 1..factor-1 are fresh classes for
  // variant classes and the original itself for invariant ones.
  std::map<ItemId, std::vector<ItemId>> class_copies;
  const std::vector<EquivClass> original_classes = region->classes;

  for (const EquivClass& cls : original_classes) {
    std::vector<ItemId>& copies = class_copies[cls.id];
    copies.push_back(cls.id);
    for (unsigned k = 1; k < factor; ++k) {
      if (cls.loop_invariant) {
        copies.push_back(cls.id);
        continue;
      }
      EquivClass copy;
      copy.id = entry.next_id++;
      copy.type = cls.type;
      copy.base = cls.base;
      copy.unknown_target = cls.unknown_target;
      copy.has_write = cls.has_write;
      copy.loop_invariant = false;
      copy.display = cls.display + "+u" + std::to_string(k);
      copies.push_back(copy.id);
      region->classes.push_back(std::move(copy));
      // The copy joins the same parent class so outer regions see one
      // unchanged coverage set.
      RegionEntry* parent = entry.find_region(region->parent);
      if (parent != nullptr) {
        for (EquivClass& parent_cls : parent->classes) {
          if (std::find(parent_cls.member_subclasses.begin(),
                        parent_cls.member_subclasses.end(),
                        cls.id) != parent_cls.member_subclasses.end()) {
            parent_cls.member_subclasses.push_back(copies.back());
            break;
          }
        }
      }
    }
  }

  // Clone the items: copy k of each member item joins class copy k.
  for (const EquivClass& cls : original_classes) {
    const std::vector<ItemId>& copies = class_copies[cls.id];
    for (const ItemId item : cls.member_items) {
      std::vector<ItemId>& item_copies = update.item_copies[item];
      item_copies.push_back(item);
      // The clone stays on the original's source line (the unrolled body
      // repeats the same source lines).
      std::uint32_t line = 0;
      for (const LineEntry& le : entry.line_table.lines()) {
        for (const ItemEntry& ie : le.items) {
          if (ie.id == item) line = le.line;
        }
      }
      for (unsigned k = 1; k < factor; ++k) {
        const auto type = entry.line_table.item_type(item);
        const ItemId fresh = entry.next_id++;
        entry.line_table.add_item(line, {fresh, type.value_or(ItemType::Load)});
        item_copies.push_back(fresh);
        EquivClass* target = region->find_class(copies[k]);
        if (target != nullptr) target->member_items.push_back(fresh);
      }
    }
  }

  // Rebuild the alias and LCDD tables per Figure 6's distance arithmetic.
  const std::vector<AliasEntry> old_aliases = std::move(region->aliases);
  const std::vector<LcddEntry> old_lcdds = std::move(region->lcdds);
  region->aliases.clear();
  region->lcdds.clear();

  auto copy_of = [&](ItemId cls, unsigned k) -> ItemId {
    const auto it = class_copies.find(cls);
    if (it == class_copies.end()) return cls;
    return it->second[k % factor];
  };

  for (const AliasEntry& alias : old_aliases) {
    // Within-iteration aliasing becomes aliasing among all copy pairs
    // (ranges may overlap across copies too).
    AliasEntry expanded;
    for (const ItemId cls : alias.classes) {
      for (unsigned k = 0; k < factor; ++k) {
        const ItemId id = copy_of(cls, k);
        if (std::find(expanded.classes.begin(), expanded.classes.end(), id) ==
            expanded.classes.end()) {
          expanded.classes.push_back(id);
        }
      }
    }
    region->aliases.push_back(std::move(expanded));
  }

  for (const LcddEntry& dep : old_lcdds) {
    if (dep.type == DepType::Definite && dep.distance) {
      const auto d = static_cast<std::uint64_t>(*dep.distance);
      for (unsigned k = 0; k < factor; ++k) {
        const std::uint64_t target = k + d;
        const ItemId src = copy_of(dep.src, k);
        const ItemId dst = copy_of(dep.dst, static_cast<unsigned>(target % factor));
        const std::int64_t new_distance = static_cast<std::int64_t>(target / factor);
        if (new_distance == 0) {
          // The dependence became an intra-body conflict between copies.
          if (src != dst) region->aliases.push_back({{src, dst}});
        } else {
          region->lcdds.push_back({src, dst, DepType::Definite, new_distance});
        }
      }
    } else {
      // Unknown distance: every copy pair may carry the dependence.
      for (unsigned i = 0; i < factor; ++i) {
        for (unsigned j = 0; j < factor; ++j) {
          const ItemId src = copy_of(dep.src, i);
          const ItemId dst = copy_of(dep.dst, j);
          region->lcdds.push_back({src, dst, DepType::Maybe, std::nullopt});
          if (src != dst) region->aliases.push_back({{src, dst}});
        }
      }
    }
  }

  // No extra alias entries between the variant copies of one original
  // class: when the class's own footprint may recur across iterations
  // (unanalyzable subscript, unstable pointer) the builder recorded a
  // self LCDD entry, and the expansion above already aliased the copies;
  // a class with no self entry is proven non-recurring, so its copies
  // cover disjoint locations — exactly why they were split.

  update.ok = true;
  HLI_MAINTAIN_SELFCHECK(entry, "unroll_loop");
  return update;
}

}  // namespace hli::maintain
