// HLI maintenance functions (paper §3.2.3).  Back-end optimizations
// delete, move, and duplicate memory references; these functions keep the
// imported HLI consistent so later passes (scheduling) still get correct
// answers.  All functions mutate an HliEntry in place; any HliUnitView
// over the entry must be rebuilt afterwards.
#pragma once

#include <map>
#include <vector>

#include "hli/format.hpp"

namespace hli::maintain {

using format::HliEntry;
using format::ItemId;
using format::RegionId;

/// Deletes an item (e.g. CSE eliminated the reference): removes it from
/// the line table and its class; empty classes are removed recursively
/// (including from parents' member lists, alias sets, LCDD entries, and
/// call-effect lists).
void delete_item(HliEntry& entry, ItemId item);

/// Creates a new item inheriting `proto`'s type and class membership,
/// placed on `line` in the line table (appended after existing items of
/// that line).  Returns the new item's ID.  Used when an optimization
/// duplicates a memory reference.
[[nodiscard]] ItemId clone_item(HliEntry& entry, ItemId proto, std::uint32_t line);

/// Moves an item into an ancestor region (loop-invariant code motion):
/// the item leaves its class and joins the class representing that class
/// in `target` (the lifted class chain).
void move_item_to_region(HliEntry& entry, ItemId item, RegionId target);

/// Result of the loop-unrolling update: for every original item of the
/// loop, its per-copy items (index 0 is the original itself).
struct UnrollUpdate {
  std::map<ItemId, std::vector<ItemId>> item_copies;
  bool ok = false;
};

/// Updates the HLI tables for unrolling `loop` by `factor` (Figure 6):
///   * every item of the loop body gets factor-1 clones;
///   * loop-invariant classes absorb their copies (same locations);
///   * variant classes split into per-copy classes; an original definite
///     LCDD of distance d becomes an intra-body conflict between copy k
///     and copy k+d (recorded as alias entries) and a carried dependence
///     of distance floor((k+d)/factor) for the wrap-around pairs;
///   * maybe dependences conservatively relate all copy pairs.
/// Only innermost loops (no child regions) are supported; `ok` is false
/// otherwise and the entry is unchanged.
[[nodiscard]] UnrollUpdate unroll_loop(HliEntry& entry, RegionId loop,
                                       unsigned factor);

}  // namespace hli::maintain
