// The High-Level Information (HLI) data model — the paper's §2.
//
// An HliFile holds one HliEntry per program unit.  Each entry has a line
// table (per source line, the ordered list of memory/call items) and a
// region table (one RegionEntry per program unit / loop, each with its four
// sub-tables: equivalent access classes, alias sets, loop-carried data
// dependences, and call REF/MOD effects).
//
// Everything here is plain value types addressed by integer IDs so the
// structure serializes losslessly: the back-end works from a re-read file,
// never from front-end pointers.  Items and equivalence classes share one
// ID space within a unit, as in the paper ("each equivalent access class
// has a unique item ID").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hli::format {

using ItemId = std::uint32_t;      ///< Items and classes share this space.
using RegionId = std::uint32_t;
inline constexpr ItemId kNoItem = 0;
inline constexpr RegionId kNoRegion = 0;

/// Access type of a line-table item (paper §2.1).
enum class ItemType : std::uint8_t {
  Load,      ///< Memory read.
  Store,     ///< Memory write.
  Call,      ///< Function call site.
  ArgStore,  ///< Stack-passed actual written at a call site (§3.1.1).
  ArgLoad,   ///< Stack-passed formal read at function entry (§3.1.1).
};

[[nodiscard]] constexpr bool is_memory_item(ItemType type) {
  return type != ItemType::Call;
}
[[nodiscard]] constexpr bool is_write_item(ItemType type) {
  return type == ItemType::Store || type == ItemType::ArgStore;
}

/// Definite vs. maybe equivalence (paper §2.2.1).
enum class EquivAccType : std::uint8_t { Definite, Maybe };

/// Definite vs. maybe dependence (paper §2.2.3).
enum class DepType : std::uint8_t { Definite, Maybe };

struct ItemEntry {
  ItemId id = kNoItem;
  ItemType type = ItemType::Load;
};

/// One source line's ordered item list.
struct LineEntry {
  std::uint32_t line = 0;
  std::vector<ItemEntry> items;
};

class LineTable {
 public:
  /// Appends an item to `line`, preserving per-line order of insertion.
  void add_item(std::uint32_t line, ItemEntry item);

  [[nodiscard]] const std::vector<LineEntry>& lines() const { return lines_; }
  [[nodiscard]] const LineEntry* find_line(std::uint32_t line) const;
  [[nodiscard]] std::size_t item_count() const;
  /// Item type lookup across all lines; nullopt for unknown IDs.
  [[nodiscard]] std::optional<ItemType> item_type(ItemId id) const;

  std::vector<LineEntry>& mutable_lines() { return lines_; }

 private:
  std::vector<LineEntry> lines_;  ///< Sorted by line number.
};

/// Equivalent access class (paper §2.2.1): a mutually exclusive partition
/// cell of all memory items inside a region.  Members are either items
/// immediately enclosed by the region or classes of immediate sub-regions.
struct EquivClass {
  ItemId id = kNoItem;
  EquivAccType type = EquivAccType::Definite;
  std::vector<ItemId> member_items;
  std::vector<ItemId> member_subclasses;
  /// The class may reference statically unknown memory (wild pointer);
  /// such a class aliases every other class.
  bool unknown_target = false;
  /// True when any member (transitively) writes memory.
  bool has_write = false;
  /// True when the class covers the same locations in every iteration of
  /// its defining loop region (zero induction coefficient).  Loop
  /// unrolling merges copies of invariant classes but splits variant ones
  /// (Figure 6); meaningless (true) for non-loop regions.
  bool loop_invariant = true;
  /// Human-readable coverage, e.g. "a[0..9]" — for diagnostics and the
  /// paper-style dumps; not used by queries.
  std::string display;

  /// Base object name; classes over the same base are candidates for
  /// aliasing/LCDD, different bases are independent unless via pointers.
  std::string base;
};

/// Alias set (paper §2.2.2): classes that may access the same location
/// within one iteration of the region.
struct AliasEntry {
  std::vector<ItemId> classes;
};

/// Loop-carried data dependence (paper §2.2.3), direction normalized
/// forward: `src`'s access in an earlier iteration conflicts with `dst`'s
/// access `distance` iterations later.
struct LcddEntry {
  ItemId src = kNoItem;
  ItemId dst = kNoItem;
  DepType type = DepType::Definite;
  /// Iteration distance; nullopt when unknown (still a dependence).
  std::optional<std::int64_t> distance;
};

/// Call REF/MOD effect (paper §2.2.4): keyed either by a call item
/// immediately in the region or by a sub-region aggregating all its calls.
struct CallEffectEntry {
  bool is_subregion = false;
  ItemId call_item = kNoItem;     ///< Valid when !is_subregion.
  RegionId subregion = kNoRegion; ///< Valid when is_subregion.
  std::vector<ItemId> ref_classes;
  std::vector<ItemId> mod_classes;
  /// Callee may touch unmapped/unknown memory: the back-end must treat the
  /// call as a full clobber, exactly like native GCC.
  bool unknown = false;
};

enum class RegionType : std::uint8_t { Unit, Loop };

struct RegionEntry {
  RegionId id = kNoRegion;
  RegionType type = RegionType::Unit;
  RegionId parent = kNoRegion;
  std::vector<RegionId> children;
  /// Source line span of the region (the region "scope" of §2.2).
  std::uint32_t first_line = 0;
  std::uint32_t last_line = 0;

  std::vector<EquivClass> classes;
  std::vector<AliasEntry> aliases;
  std::vector<LcddEntry> lcdds;
  std::vector<CallEffectEntry> call_effects;

  [[nodiscard]] const EquivClass* find_class(ItemId id) const {
    for (const auto& c : classes) {
      if (c.id == id) return &c;
    }
    return nullptr;
  }
  [[nodiscard]] EquivClass* find_class(ItemId id) {
    for (auto& c : classes) {
      if (c.id == id) return &c;
    }
    return nullptr;
  }
};

/// HLI for one program unit (function).
struct HliEntry {
  std::string unit_name;
  LineTable line_table;
  std::vector<RegionEntry> regions;
  RegionId root_region = kNoRegion;
  /// Next free ID in the shared item/class space (for maintenance).
  ItemId next_id = 1;
  /// Mutation counter, bumped by every maintenance operation (never
  /// serialized).  A query::HliUnitView captures it at construction and
  /// asserts (debug builds) that the entry has not changed underneath it
  /// — the stale-view footgun used to fail silently.
  std::uint64_t generation = 0;

  [[nodiscard]] const RegionEntry* find_region(RegionId id) const {
    for (const auto& r : regions) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }
  [[nodiscard]] RegionEntry* find_region(RegionId id) {
    for (auto& r : regions) {
      if (r.id == id) return &r;
    }
    return nullptr;
  }
};

/// A whole program's HLI.
struct HliFile {
  std::vector<HliEntry> entries;

  [[nodiscard]] const HliEntry* find_unit(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.unit_name == name) return &e;
    }
    return nullptr;
  }
  [[nodiscard]] HliEntry* find_unit(const std::string& name) {
    for (auto& e : entries) {
      if (e.unit_name == name) return &e;
    }
    return nullptr;
  }
};

/// Interned-string id for the binary (HLIB) serialization: every distinct
/// string in a container — unit names, class base names, display texts —
/// is stored once in a pool and referenced by id, so a base name shared by
/// a hundred classes costs one pool slot plus a hundred varints.
using StringId = std::uint32_t;

/// Writer-side string interner.  Ids are dense, 0-based, and assigned in
/// first-intern order (which is therefore the pool's on-disk order).
class StringPool {
 public:
  /// Returns the existing id for `text` or appends it to the pool.
  StringId intern(std::string_view text);

  /// Bounds-checked lookup; throws std::out_of_range on a bad id.
  [[nodiscard]] const std::string& at(StringId id) const;

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

  /// All pooled strings, in id order.
  [[nodiscard]] const std::vector<const std::string*>& strings() const {
    return strings_;
  }

 private:
  struct TransparentHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };

  /// Node-based map owns the strings so the id -> string pointers below
  /// stay stable across rehashes.
  std::unordered_map<std::string, StringId, TransparentHash, std::equal_to<>>
      index_;
  std::vector<const std::string*> strings_;  ///< Indexed by StringId.
};

[[nodiscard]] std::string to_string(ItemType type);
[[nodiscard]] std::string to_string(EquivAccType type);
[[nodiscard]] std::string to_string(DepType type);

}  // namespace hli::format
