#include "hli/batch_query.hpp"

#include <algorithm>

#include "support/telemetry.hpp"

namespace hli::query {

using namespace format;

namespace {

const telemetry::Counter c_batch_matrices =
    telemetry::counter("query.batch_matrices");

constexpr std::uint32_t kNone = 0xffffffffu;

}  // namespace

void BlockConflictMatrix::assign_slots(std::vector<std::uint32_t>& map,
                                       std::vector<std::uint32_t>& epochs,
                                       SlotOverflow& overflow,
                                       const std::vector<ItemId>& items,
                                       std::vector<ItemId>& slots) {
  slots.clear();
  overflow.clear();
  for (const ItemId item : items) {
    if (item < map.size()) {
      if (epochs[item] == epoch_) continue;  // Duplicate reference.
      epochs[item] = epoch_;
      map[item] = static_cast<std::uint32_t>(slots.size());
      slots.push_back(item);
    } else {
      bool seen = false;
      for (const auto& [id, slot] : overflow) {
        if (id == item) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      overflow.emplace_back(item, static_cast<std::uint32_t>(slots.size()));
      slots.push_back(item);
    }
  }
}

void BlockConflictMatrix::reset() {
  view_ = nullptr;
  words_ = 0;
  slots_.clear();
  call_slots_.clear();
  overflow_.clear();
  call_overflow_.clear();
  conflict_.clear();
  definite_.clear();
  lcdd_.clear();
  call_ref_.clear();
  call_mod_.clear();
}

void BlockConflictMatrix::build(const HliUnitView& view,
                                const std::vector<ItemId>& mem_items,
                                const std::vector<ItemId>& call_items,
                                RegionId lcdd_loop) {
  view_ = &view;
  built_generation_ = view.entry().generation;
  c_batch_matrices.add();

  // A bumped epoch retires every earlier block's map stamps wholesale; on
  // the (never-in-practice) wraparound, clear the stamps for real.
  if (++epoch_ == 0) {
    std::fill(slot_epoch_.begin(), slot_epoch_.end(), 0u);
    std::fill(call_epoch_.begin(), call_epoch_.end(), 0u);
    epoch_ = 1;
  }
  const std::size_t limit = view.item_limit();
  if (slot_map_.size() < limit) {
    slot_map_.resize(limit);
    slot_epoch_.resize(limit, 0u);
    call_map_.resize(limit);
    call_epoch_.resize(limit, 0u);
  }
  assign_slots(slot_map_, slot_epoch_, overflow_, mem_items, slots_);
  assign_slots(call_map_, call_epoch_, call_overflow_, call_items,
               call_slots_);
  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  words_ = (n + 63) / 64;
  conflict_.assign(static_cast<std::size_t>(n) * words_, 0);
  definite_.assign(static_cast<std::size_t>(n) * words_, 0);
  lcdd_.clear();
  call_ref_.assign(call_slots_.size() * words_, 0);
  call_mod_.assign(call_slots_.size() * words_, 0);

  // Dense owning region per slot, then the distinct-region groups.  A
  // slot outside the dense arrays (or with no owning region) answers
  // Maybe against everything, exactly like the scalar prologue.
  slot_dense_.resize(n);
  slot_group_.resize(n);
  regions_.clear();
  for (std::uint32_t s = 0; s < n; ++s) {
    const ItemId item = slots_[s];
    const std::uint32_t d =
        item < view.iteminfo_.size() ? view.iteminfo_[item].dense : kNone;
    slot_dense_[s] = d;
    if (d != kNone) regions_.push_back(d);
  }
  std::sort(regions_.begin(), regions_.end());
  regions_.erase(std::unique(regions_.begin(), regions_.end()),
                 regions_.end());
  for (std::uint32_t s = 0; s < n; ++s) {
    slot_group_[s] =
        slot_dense_[s] == kNone
            ? kNone
            : static_cast<std::uint32_t>(
                  std::lower_bound(regions_.begin(), regions_.end(),
                                   slot_dense_[s]) -
                  regions_.begin());
  }

  fill_conflict_planes();
  fill_lcdd_plane(lcdd_loop);
  fill_call_planes();
}

void BlockConflictMatrix::fill_conflict_planes() {
  const HliUnitView& view = *view_;
  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t g = static_cast<std::uint32_t>(regions_.size());

  // One LCA walk per region PAIR (g is the number of distinct regions in
  // the block, typically a handful) instead of per item pair.
  rel_.clear();
  lca_rel_.assign(static_cast<std::size_t>(g) * g, kNone);
  for (std::uint32_t gi = 0; gi < g; ++gi) {
    for (std::uint32_t gj = 0; gj < g; ++gj) {
      const std::uint32_t l = view.dense_lca(regions_[gi], regions_[gj]);
      if (l == kNone) continue;  // Pair answers Maybe.
      std::uint32_t r = 0;
      while (r < rel_.size() && rel_[r] != l) ++r;
      if (r == rel_.size()) rel_.push_back(l);
      lca_rel_[static_cast<std::size_t>(gi) * g + gj] = r;
    }
  }

  // Per relevant region: resolve every slot's class ONCE, then compute
  // the class×class plane with the exact scalar may_conflict tail.
  // Byte encoding: bit 0 = conflict (answer != None), bit 1 = definite.
  const std::uint32_t nrel = static_cast<std::uint32_t>(rel_.size());
  class_idx_.assign(static_cast<std::size_t>(nrel) * n, kNone);
  rel_off_.resize(nrel);
  rel_stride_.resize(nrel);
  class_bits_.clear();
  slot_class_.resize(n);
  for (std::uint32_t r = 0; r < nrel; ++r) {
    const std::uint32_t lca = rel_[r];
    classes_.clear();
    for (std::uint32_t s = 0; s < n; ++s) {
      ItemId cls = kNoItem;
      const std::uint32_t d = slot_dense_[s];
      if (d != kNone && view.dense_encloses(lca, d)) {
        cls = view.class_at_ancestor(view.iteminfo_[slots_[s]], lca);
      }
      slot_class_[s] = cls;
      if (cls != kNoItem) classes_.push_back(cls);
    }
    std::sort(classes_.begin(), classes_.end());
    classes_.erase(std::unique(classes_.begin(), classes_.end()),
                   classes_.end());
    const std::uint32_t stride = static_cast<std::uint32_t>(classes_.size());
    rel_stride_[r] = stride;
    rel_off_[r] = class_bits_.size();
    class_bits_.resize(rel_off_[r] +
                       static_cast<std::size_t>(stride) * stride);
    std::uint8_t* plane = class_bits_.data() + rel_off_[r];
    std::fill(plane, plane + static_cast<std::size_t>(stride) * stride,
              std::uint8_t{0});

    // Different-class answers come from the alias table.  Instead of one
    // alias_of_classes probe per class PAIR (the O(k²) cost the scalar
    // path pays), classify each class once and walk each local class's
    // sorted partner list once — k² byte writes happen only for the rare
    // all-Maybe rows.  Categories mirror the scalar tail exactly:
    //   kMaybeAll: unknown class or unknown-target -> Maybe vs everything;
    //   kLocal:    recorded at the LCA -> partner-list membership;
    //   kForeign:  recorded under another region -> scalar fallback scan.
    constexpr std::uint8_t kLocal = 0, kMaybeAll = 1, kForeign = 2;
    const RegionId lca_id = view.rinfo_[lca].id;
    class_status_.resize(stride);
    for (std::uint32_t i = 0; i < stride; ++i) {
      const ItemId ca = classes_[i];
      if (!view.class_known(ca)) {
        class_status_[i] = kMaybeAll;
      } else if ((view.cinfo_[ca].flags & HliUnitView::kUnknownTarget) != 0) {
        class_status_[i] = kMaybeAll;
      } else {
        class_status_[i] =
            view.cinfo_[ca].region == lca_id ? kLocal : kForeign;
      }
    }
    for (std::uint32_t i = 0; i < stride; ++i) {
      const ItemId ca = classes_[i];
      // Diagonal: same class, equivalence decides (scalar may_conflict).
      plane[static_cast<std::size_t>(i) * stride + i] =
          !view.class_known(ca) ? 1
          : (view.cinfo_[ca].flags & HliUnitView::kDefinite) != 0 ? 3
                                                                  : 1;
      switch (class_status_[i]) {
        case kMaybeAll:
          for (std::uint32_t j = 0; j < stride; ++j) {
            if (j == i) continue;
            plane[static_cast<std::size_t>(i) * stride + j] = 1;
            plane[static_cast<std::size_t>(j) * stride + i] = 1;
          }
          break;
        case kLocal: {
          const auto& info = view.cinfo_[ca];
          if (info.alias_off == kNone) break;
          for (std::uint32_t p = 0; p < info.alias_len; ++p) {
            const ItemId partner = view.alias_pool_[info.alias_off + p];
            const auto it = std::lower_bound(classes_.begin(), classes_.end(),
                                             partner);
            if (it == classes_.end() || *it != partner) continue;
            const std::uint32_t j =
                static_cast<std::uint32_t>(it - classes_.begin());
            if (j != i && class_status_[j] == kLocal) {
              plane[static_cast<std::size_t>(i) * stride + j] = 1;
            }
          }
          break;
        }
        case kForeign:
          // Lifted classes recorded under another region: the scalar path
          // scans the LCA's alias entries per pair; replay it exactly.
          for (std::uint32_t j = 0; j < stride; ++j) {
            if (j == i || class_status_[j] == kMaybeAll) continue;
            if (view.alias_of_classes(ca, classes_[j], lca) ==
                EquivAcc::Maybe) {
              plane[static_cast<std::size_t>(i) * stride + j] = 1;
              plane[static_cast<std::size_t>(j) * stride + i] = 1;
            }
          }
          break;
      }
    }
    for (std::uint32_t s = 0; s < n; ++s) {
      if (slot_class_[s] == kNoItem) continue;
      class_idx_[static_cast<std::size_t>(r) * n + s] =
          static_cast<std::uint32_t>(
              std::lower_bound(classes_.begin(), classes_.end(),
                               slot_class_[s]) -
              classes_.begin());
    }
  }

  // Item-plane fill.  Row `a`'s (rel, class row) depend only on b's
  // GROUP, so resolve them per (row, group) — the inner loop is then two
  // loads and a byte fetch per pair.
  row_plane_.resize(g);
  row_cidx_.resize(g);
  for (std::uint32_t a = 0; a < n; ++a) {
    const std::uint32_t ga = slot_group_[a];
    std::uint64_t* crow = conflict_.data() + static_cast<std::size_t>(a) * words_;
    std::uint64_t* drow = definite_.data() + static_cast<std::size_t>(a) * words_;
    if (ga == kNone) {
      // Unknown owning region: Maybe against everything (set the whole
      // conflict row word-wise; bits past n are never consulted).
      for (std::uint32_t w = 0; w < words_; ++w) crow[w] = ~std::uint64_t{0};
      continue;
    }
    for (std::uint32_t gb = 0; gb < g; ++gb) {
      row_plane_[gb] = nullptr;
      row_cidx_[gb] = nullptr;
      const std::uint32_t r = lca_rel_[static_cast<std::size_t>(ga) * g + gb];
      if (r == kNone) continue;
      const std::uint32_t ia = class_idx_[static_cast<std::size_t>(r) * n + a];
      if (ia == kNone) continue;
      row_plane_[gb] = class_bits_.data() + rel_off_[r] +
                       static_cast<std::size_t>(ia) * rel_stride_[r];
      row_cidx_[gb] = class_idx_.data() + static_cast<std::size_t>(r) * n;
    }
    for (std::uint32_t b = 0; b < n; ++b) {
      std::uint8_t bits = 1;  // Default: Maybe (unknown slot / no LCA).
      const std::uint32_t gb = slot_group_[b];
      if (gb != kNone && row_plane_[gb] != nullptr) {
        const std::uint32_t ib = row_cidx_[gb][b];
        bits = ib == kNone ? 1 : row_plane_[gb][ib];
      }
      if (bits & 1) crow[b >> 6] |= std::uint64_t{1} << (b & 63);
      if (bits & 2) drow[b >> 6] |= std::uint64_t{1} << (b & 63);
    }
  }
}

void BlockConflictMatrix::fill_lcdd_plane(RegionId lcdd_loop) {
  if (lcdd_loop == kNoRegion) return;
  const HliUnitView& view = *view_;
  const std::uint32_t dl = view.dense_region(lcdd_loop);
  if (dl == kNone || view.rinfo_[dl].table->type != RegionType::Loop) return;

  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  lcdd_.assign(static_cast<std::size_t>(n) * words_, 0);

  // Per-slot class at the loop (scalar class_of_at semantics), then ONE
  // scan of the loop's LCDD table: each entry sets the bit for every
  // (src-class slot, dst-class slot) pair, both directions — matching
  // the symmetric emptiness of get_lcdd(loop, a, b).
  for (std::uint32_t s = 0; s < n; ++s) {
    const ItemId item = slots_[s];
    ItemId cls = kNoItem;
    if (item < view.iteminfo_.size() &&
        view.iteminfo_[item].chain_off != kNone) {
      const std::uint32_t d0 = view.iteminfo_[item].dense;
      if (d0 != kNone && view.dense_encloses(dl, d0)) {
        cls = view.class_at_ancestor(view.iteminfo_[item], dl);
      }
    }
    slot_class_[s] = cls;
  }
  for (const LcddEntry& dep : view.rinfo_[dl].table->lcdds) {
    match_a_.clear();
    match_b_.clear();
    for (std::uint32_t s = 0; s < n; ++s) {
      if (slot_class_[s] == kNoItem) continue;
      if (slot_class_[s] == dep.src) match_a_.push_back(s);
      if (slot_class_[s] == dep.dst) match_b_.push_back(s);
    }
    for (const std::uint32_t a : match_a_) {
      for (const std::uint32_t b : match_b_) {
        set_bit(lcdd_, a, b);
        set_bit(lcdd_, b, a);
      }
    }
  }
}

void BlockConflictMatrix::fill_call_planes() {
  const HliUnitView& view = *view_;
  const std::uint32_t n = static_cast<std::uint32_t>(slots_.size());
  const std::uint32_t g = static_cast<std::uint32_t>(regions_.size());
  const std::uint32_t ncalls = static_cast<std::uint32_t>(call_slots_.size());
  if (ncalls == 0 || n == 0) return;

  // Per (call, mem-region-group) work hoisted out of the per-slot loop:
  // the LCA and the effect-entry lookup depend only on the group.
  group_lca_.resize(g);
  group_effect_.resize(g);
  auto& group_lca = group_lca_;
  auto& group_effect = group_effect_;

  for (std::uint32_t c = 0; c < ncalls; ++c) {
    std::uint64_t* rrow = call_ref_.data() + static_cast<std::size_t>(c) * words_;
    std::uint64_t* mrow = call_mod_.data() + static_cast<std::size_t>(c) * words_;
    const auto set_refmod = [&](std::uint32_t s) {
      rrow[s >> 6] |= std::uint64_t{1} << (s & 63);
      mrow[s >> 6] |= std::uint64_t{1} << (s & 63);
    };

    const ItemId call = call_slots_[c];
    const RegionId call_region =
        call < view.item_region_.size() ? view.item_region_[call] : kNoRegion;
    if (call_region == kNoRegion) {
      for (std::uint32_t s = 0; s < n; ++s) set_refmod(s);
      continue;
    }
    const std::uint32_t dc = view.dense_region(call_region);

    for (std::uint32_t gi = 0; gi < g; ++gi) {
      const std::uint32_t lca = view.dense_lca(regions_[gi], dc);
      group_lca[gi] = lca;
      group_effect[gi] = nullptr;
      if (lca == kNone) continue;
      // Locate the effect entry at the LCA: per-item if the call is
      // immediate, otherwise the aggregate entry of the LCA child on the
      // path to the call's region (scalar get_call_acc verbatim).
      const RegionId lca_id = view.rinfo_[lca].id;
      const RegionEntry* region = view.rinfo_[lca].table;
      if (call_region == lca_id) {
        for (const CallEffectEntry& eff : region->call_effects) {
          if (!eff.is_subregion && eff.call_item == call) {
            group_effect[gi] = &eff;
            break;
          }
        }
      } else {
        std::uint32_t child = dc;
        while (child != kNone && view.rinfo_[child].parent != lca) {
          child = view.rinfo_[child].parent;
        }
        if (child != kNone) {
          const RegionId child_id = view.rinfo_[child].id;
          for (const CallEffectEntry& eff : region->call_effects) {
            if (eff.is_subregion && eff.subregion == child_id) {
              group_effect[gi] = &eff;
              break;
            }
          }
        }
      }
    }

    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint32_t gi = slot_group_[s];
      if (gi == kNone) {  // No owning region: scalar answers RefMod.
        set_refmod(s);
        continue;
      }
      const std::uint32_t lca = group_lca[gi];
      if (lca == kNone) {
        set_refmod(s);
        continue;
      }
      const HliUnitView::ItemInfo& info = view.iteminfo_[slots_[s]];
      const ItemId mem_class =
          info.chain_off == kNone ? kNoItem
                                  : view.class_at_ancestor(info, lca);
      if (mem_class == kNoItem) {
        set_refmod(s);
        continue;
      }
      if (view.class_known(mem_class) &&
          (view.cinfo_[mem_class].flags & HliUnitView::kUnknownTarget) != 0) {
        set_refmod(s);
        continue;
      }
      const CallEffectEntry* effect = group_effect[gi];
      if (effect == nullptr || effect->unknown) {
        set_refmod(s);
        continue;
      }
      const bool in_ref = std::find(effect->ref_classes.begin(),
                                    effect->ref_classes.end(),
                                    mem_class) != effect->ref_classes.end();
      const bool in_mod = std::find(effect->mod_classes.begin(),
                                    effect->mod_classes.end(),
                                    mem_class) != effect->mod_classes.end();
      if (in_ref) rrow[s >> 6] |= std::uint64_t{1} << (s & 63);
      if (in_mod) mrow[s >> 6] |= std::uint64_t{1} << (s & 63);
    }
  }
}

}  // namespace hli::query
