// Execution-driven cycle-approximate timing models.  Both are TraceSinks:
// the RTL interpreter streams every executed instruction (with resolved
// memory addresses) and the model advances its clock.
//
// InOrderSim — scoreboarded single-issue pipeline (R4600-like): an
// instruction issues when its operands are ready; loads have a visible
// delay the static schedule can hide.
//
// OutOfOrderSim — width-W dispatch into a ROB; instructions execute when
// operands are ready, but a LOAD additionally waits until every earlier
// store in the window has its address resolved, and until the data of any
// overlapping store is available (the R10000 LSQ rule the paper cites).
// Because dispatch is in PROGRAM order, the static schedule controls how
// early a load can enter the window — that is how compile-time scheduling
// shows up on an out-of-order core.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "backend/interp.hpp"
#include "machine/machine.hpp"

namespace hli::machine {

/// Direct-mapped L1 data cache shared by both models.
class CacheModel {
 public:
  explicit CacheModel(const MachineDesc& desc)
      : line_bytes_(desc.cache_line_bytes), tags_(desc.cache_lines, ~0ull) {}

  /// Returns true on hit; installs the line either way.
  bool access(std::uint64_t address) {
    const std::uint64_t line = address / line_bytes_;
    const std::size_t index = static_cast<std::size_t>(line % tags_.size());
    const bool hit = tags_[index] == line;
    tags_[index] = line;
    return hit;
  }

 private:
  std::uint64_t line_bytes_;
  std::vector<std::uint64_t> tags_;
};

class InOrderSim final : public backend::TraceSink {
 public:
  explicit InOrderSim(MachineDesc desc)
      : desc_(std::move(desc)), cache_(desc_) {}

  void on_insn(const backend::TraceEvent& event) override;

  [[nodiscard]] std::uint64_t cycles() const { return cycle_; }
  [[nodiscard]] std::uint64_t insns() const { return count_; }

 private:
  MachineDesc desc_;
  CacheModel cache_;
  std::uint64_t cycle_ = 0;
  std::uint64_t count_ = 0;
  // Result-ready times per virtual register of the CURRENT function frame.
  // Calls reset the map (callee registers are a different space); this is
  // an approximation that charges the call overhead instead.
  std::unordered_map<backend::Reg, std::uint64_t> ready_;
};

class OutOfOrderSim final : public backend::TraceSink {
 public:
  explicit OutOfOrderSim(MachineDesc desc)
      : desc_(std::move(desc)), cache_(desc_) {}

  void on_insn(const backend::TraceEvent& event) override;

  [[nodiscard]] std::uint64_t cycles() const;
  [[nodiscard]] std::uint64_t insns() const { return count_; }

 private:
  struct StoreInfo {
    std::uint64_t addr_ready = 0;  ///< When the address is known.
    std::uint64_t data_ready = 0;  ///< When the stored value is available.
    std::uint64_t leave_time = 0;  ///< In-order retirement from the queue.
    std::uint64_t address = 0;
    std::uint8_t size = 0;
  };

  MachineDesc desc_;
  CacheModel cache_;
  std::uint64_t count_ = 0;
  std::uint64_t dispatched_this_cycle_ = 0;
  std::uint64_t dispatch_cycle_ = 0;
  std::uint64_t last_complete_ = 0;
  /// The address-generation queue is processed in PROGRAM order (one
  /// address calculation per cycle, as on the R10000): a memory op's
  /// access cannot start before its in-order AGU slot.  This is the lever
  /// through which static instruction order reaches the OoO core.
  std::uint64_t agu_cycle_ = 0;
  std::unordered_map<backend::Reg, std::uint64_t> ready_;
  std::deque<std::uint64_t> rob_complete_;  ///< Completion times, window-limited.
  std::deque<StoreInfo> store_queue_;       ///< Pending stores (LSQ window).
  std::uint64_t last_store_retire_ = 0;     ///< Stores retire in order, 1/cycle.
};

}  // namespace hli::machine
