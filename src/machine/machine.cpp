#include "machine/machine.hpp"

namespace hli::machine {

using backend::Insn;
using backend::Opcode;

unsigned MachineDesc::latency(const Insn& insn) const {
  switch (insn.op) {
    case Opcode::Load:
      return lat_load;
    case Opcode::Store:
      return lat_store;
    case Opcode::Mul:
      return insn.is_float ? lat_fmul : lat_imul;
    case Opcode::Div:
    case Opcode::Rem:
      return insn.is_float ? lat_fdiv : lat_idiv;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Neg:
      return insn.is_float ? lat_fadd : lat_alu;
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      return insn.is_float ? lat_fadd : lat_alu;
    case Opcode::IntToFp:
    case Opcode::FpToInt:
      return lat_fadd;
    case Opcode::Call:
      return call_overhead;
    default:
      return lat_alu;
  }
}

MachineDesc r4600() {
  MachineDesc m;
  m.name = "R4600";
  m.out_of_order = false;
  m.issue_width = 1;
  m.branch_penalty = 1;
  m.call_overhead = 2;
  m.lat_alu = 1;
  m.lat_imul = 8;
  m.lat_idiv = 36;
  m.lat_load = 2;
  m.lat_store = 1;
  m.lat_fadd = 4;
  m.lat_fmul = 8;
  m.lat_fdiv = 36;
  m.lat_miss = 14;  // Straight to memory: no L2 on the paper's R4600 box.
  return m;
}

MachineDesc r10000() {
  MachineDesc m;
  m.name = "R10000";
  m.out_of_order = true;
  m.issue_width = 4;
  // The R10000's active list held 32 entries but each scheduling queue
  // (integer / FP / address) held 16: model the effective instruction
  // window as 16.  Static scheduling matters on an OoO core exactly to
  // the extent the window is finite.
  m.rob_size = 16;
  m.lsq_size = 16;
  m.branch_penalty = 1;  // Aggressive prediction; misprediction cost folded in.
  m.call_overhead = 4;
  m.lat_alu = 1;
  m.lat_imul = 6;
  m.lat_idiv = 35;
  m.lat_load = 2;
  m.lat_store = 1;
  m.lat_fadd = 2;
  m.lat_fmul = 2;
  m.lat_fdiv = 19;
  m.lat_miss = 9;  // L1 miss, 2 MB off-chip L2 hit.
  return m;
}

}  // namespace hli::machine
