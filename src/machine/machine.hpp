// Machine descriptions for the two evaluation targets (paper §4.3):
//   * an R4600-like pipelined single-issue in-order core, and
//   * an R10000-like 4-issue out-of-order core whose loads are held in the
//     load/store queue "until all the preceding stores in the queue are
//     known to be independent of the load" — the mechanism the paper
//     credits for the larger HLI speedups on the R10000.
// Latencies are representative, not cycle-exact; the evaluation compares
// shapes (with-HLI vs. without), never absolute cycle counts.
#pragma once

#include <cstdint>
#include <string>

#include "backend/rtl.hpp"

namespace hli::machine {

struct MachineDesc {
  std::string name;
  bool out_of_order = false;
  unsigned issue_width = 1;
  unsigned rob_size = 1;
  unsigned lsq_size = 1;
  unsigned branch_penalty = 1;
  unsigned call_overhead = 2;

  // Cache: direct-mapped L1D; a miss adds `lat_miss` to the load latency.
  // The OoO core overlaps outstanding misses (memory-level parallelism),
  // the in-order core stalls at the dependent use.
  unsigned cache_line_bytes = 32;
  unsigned cache_lines = 1024;  ///< 32 KB, matching both papers' targets.
  unsigned lat_miss = 12;

  // Operation latencies (result-ready delay in cycles).
  unsigned lat_alu = 1;
  unsigned lat_imul = 8;
  unsigned lat_idiv = 36;
  unsigned lat_load = 2;
  unsigned lat_store = 1;
  unsigned lat_fadd = 4;
  unsigned lat_fmul = 8;
  unsigned lat_fdiv = 36;

  [[nodiscard]] unsigned latency(const backend::Insn& insn) const;
};

/// MIPS R4600-like: single-issue, in-order, short pipeline.
[[nodiscard]] MachineDesc r4600();

/// MIPS R10000-like: 4-issue out-of-order with a conservative LSQ.
[[nodiscard]] MachineDesc r10000();

}  // namespace hli::machine
