#include "machine/timing.hpp"

#include <algorithm>

namespace hli::machine {

using backend::Insn;
using backend::kNoReg;
using backend::Opcode;
using backend::Reg;
using backend::TraceEvent;

namespace {

bool overlaps(std::uint64_t a, std::uint8_t a_size, std::uint64_t b,
              std::uint8_t b_size) {
  return a < b + b_size && b < a + a_size;
}

}  // namespace

// ---------------------------------------------------------------------------
// In-order scoreboard.
// ---------------------------------------------------------------------------

void InOrderSim::on_insn(const TraceEvent& event) {
  const Insn& insn = *event.insn;
  ++count_;

  auto ready_of = [this](Reg r) -> std::uint64_t {
    if (r == kNoReg) return 0;
    const auto it = ready_.find(r);
    return it != ready_.end() ? it->second : 0;
  };

  std::uint64_t start = cycle_;
  start = std::max(start, ready_of(insn.rs1));
  start = std::max(start, ready_of(insn.rs2));
  if (insn.op == Opcode::Call) {
    for (const Reg r : insn.args) start = std::max(start, ready_of(r));
    // Register context switches to the callee; model the call overhead and
    // clear the scoreboard (callee regs are a fresh space).
    cycle_ = start + desc_.call_overhead;
    ready_.clear();
    return;
  }

  // Single issue: one instruction per cycle once operands are ready.
  cycle_ = start + 1;
  if (insn.op == Opcode::Jump || insn.op == Opcode::BranchZ ||
      insn.op == Opcode::BranchNZ || insn.op == Opcode::Return) {
    cycle_ += desc_.branch_penalty;
    if (insn.op == Opcode::Return) ready_.clear();
    return;
  }
  if (insn.rd != kNoReg) {
    unsigned latency = desc_.latency(insn);
    if (insn.op == Opcode::Load && !cache_.access(event.address)) {
      latency += desc_.lat_miss;
    }
    ready_[insn.rd] = start + latency;
  }
}

// ---------------------------------------------------------------------------
// Out-of-order core with an LSQ.
// ---------------------------------------------------------------------------

void OutOfOrderSim::on_insn(const TraceEvent& event) {
  const Insn& insn = *event.insn;
  ++count_;

  // Dispatch in program order, issue_width per cycle, bounded by the ROB.
  if (dispatched_this_cycle_ >= desc_.issue_width) {
    ++dispatch_cycle_;
    dispatched_this_cycle_ = 0;
  }
  if (rob_complete_.size() >= desc_.rob_size) {
    // The oldest entry must have completed before a new one enters.
    dispatch_cycle_ = std::max(dispatch_cycle_, rob_complete_.front());
    rob_complete_.pop_front();
  }
  ++dispatched_this_cycle_;

  auto ready_of = [this](Reg r) -> std::uint64_t {
    if (r == kNoReg) return 0;
    const auto it = ready_.find(r);
    return it != ready_.end() ? it->second : 0;
  };

  std::uint64_t exec_start = dispatch_cycle_;
  exec_start = std::max(exec_start, ready_of(insn.rs1));
  exec_start = std::max(exec_start, ready_of(insn.rs2));

  if (insn.op == Opcode::Call) {
    for (const Reg r : insn.args) exec_start = std::max(exec_start, ready_of(r));
    const std::uint64_t done = exec_start + desc_.call_overhead;
    dispatch_cycle_ = std::max(dispatch_cycle_, done);
    dispatched_this_cycle_ = 0;
    ready_.clear();
    store_queue_.clear();
    rob_complete_.push_back(done);
    last_complete_ = std::max(last_complete_, done);
    return;
  }

  if (is_memory_op(insn.op)) {
    // In-order address generation: one AGU slot per cycle, program order.
    agu_cycle_ = std::max({agu_cycle_ + 1, dispatch_cycle_, ready_of(insn.rs1)});
    exec_start = std::max(exec_start, agu_cycle_);
  }

  if (insn.op == Opcode::Load) {
    // The LSQ rule (paper §4.3): "a load instruction in the load/store
    // queue will not be issued to the memory system until all the
    // preceding stores in the queue are known to be independent of the
    // load".  The R10000 performs no memory-dependence speculation: each
    // unresolved older store must complete its address check before the
    // load may pass, and the queue disambiguates against one older store
    // per cycle; an overlapping store additionally forwards its data.
    // Hoisting loads ABOVE stores at compile time empties this queue —
    // that is how static scheduling reaches the out-of-order core.
    // Stores retire from the queue in order, one per cycle, once their
    // data is written: only still-queued stores constrain the load.
    while (!store_queue_.empty() &&
           store_queue_.front().leave_time <= dispatch_cycle_) {
      store_queue_.pop_front();
    }
    std::uint64_t disamb = exec_start;
    for (const StoreInfo& store : store_queue_) {
      disamb = std::max(disamb, store.addr_ready) + 1;
      if (overlaps(event.address, insn.mem.size, store.address, store.size)) {
        disamb = std::max(disamb, store.data_ready);
      }
    }
    exec_start = std::max(exec_start, disamb);
  }

  unsigned latency = desc_.latency(insn);
  if (is_memory_op(insn.op) && !cache_.access(event.address)) {
    latency += desc_.lat_miss;
  }
  std::uint64_t complete = exec_start + latency;

  if (insn.op == Opcode::Store) {
    StoreInfo info;
    info.addr_ready = agu_cycle_;
    info.data_ready = complete;
    info.address = event.address;
    info.size = insn.mem.size;
    last_store_retire_ = std::max(complete, last_store_retire_ + 1);
    info.leave_time = last_store_retire_;
    store_queue_.push_back(info);
    if (store_queue_.size() > desc_.lsq_size) store_queue_.pop_front();
  }

  if (insn.op == Opcode::Jump || insn.op == Opcode::BranchZ ||
      insn.op == Opcode::BranchNZ || insn.op == Opcode::Return) {
    // Resolved branch: later dispatch cannot begin before resolution
    // (perfect prediction would hide this; we charge a small penalty).
    dispatch_cycle_ = std::max(dispatch_cycle_, exec_start + desc_.branch_penalty);
    dispatched_this_cycle_ = 0;
    if (insn.op == Opcode::Return) {
      ready_.clear();
      store_queue_.clear();
    }
  }

  if (insn.rd != kNoReg && insn.op != Opcode::Store) {
    ready_[insn.rd] = complete;
  }
  rob_complete_.push_back(complete);
  while (rob_complete_.size() > desc_.rob_size) rob_complete_.pop_front();
  last_complete_ = std::max(last_complete_, complete);
}

std::uint64_t OutOfOrderSim::cycles() const {
  return std::max(dispatch_cycle_, last_complete_);
}

}  // namespace hli::machine
