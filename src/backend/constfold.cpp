#include "backend/constfold.hpp"

#include <optional>
#include <unordered_map>

#include "support/telemetry.hpp"

namespace hli::backend {

namespace {
const telemetry::Counter c_folded = telemetry::counter("constfold.folded");
const telemetry::Counter c_branches_resolved =
    telemetry::counter("constfold.branches_resolved");
}  // namespace

void ConstFoldStats::record_telemetry() const {
  c_folded.add(folded);
  c_branches_resolved.add(branches_resolved);
}

namespace {

struct ConstValue {
  bool is_float = false;
  std::int64_t i = 0;
  double f = 0.0;
};

class BlockFolder {
 public:
  explicit BlockFolder(ConstFoldStats& stats) : stats_(stats) {}

  void boundary() { known_.clear(); }

  void visit(Insn& insn) {
    switch (insn.op) {
      case Opcode::Label:
      case Opcode::Jump:
      case Opcode::Return:
      case Opcode::LoopBeg:
      case Opcode::LoopEnd:
        boundary();
        return;
      case Opcode::BranchZ:
      case Opcode::BranchNZ:
        // A known condition could retarget control flow; resolving it
        // means rewriting to Jump or deleting — count the opportunity but
        // keep the branch (jump threading is out of scope).
        if (lookup(insn.rs1)) ++stats_.branches_resolved;
        boundary();
        return;
      case Opcode::LoadImm:
        record(insn);
        return;
      case Opcode::Move: {
        if (const auto v = lookup(insn.rs1)) {
          rewrite_to_imm(insn, *v);
        } else {
          kill(insn.rd);
        }
        return;
      }
      case Opcode::Store:
        return;  // No register defined.
      case Opcode::Call:
        kill(insn.rd);
        return;
      case Opcode::Load:
      case Opcode::LoadAddr:
        kill(insn.rd);
        return;
      default: {
        const auto a = lookup(insn.rs1);
        const auto b = lookup(insn.rs2);
        if (const auto folded = evaluate(insn, a, b)) {
          rewrite_to_imm(insn, *folded);
        } else {
          kill(insn.rd);
        }
        return;
      }
    }
  }

 private:
  [[nodiscard]] std::optional<ConstValue> lookup(Reg r) const {
    if (r == kNoReg) return std::nullopt;
    const auto it = known_.find(r);
    if (it == known_.end()) return std::nullopt;
    return it->second;
  }

  void kill(Reg r) {
    if (r != kNoReg) known_.erase(r);
  }

  void record(const Insn& insn) {
    ConstValue v;
    v.is_float = insn.is_float;
    v.i = insn.imm;
    v.f = insn.fimm;
    known_[insn.rd] = v;
  }

  void rewrite_to_imm(Insn& insn, const ConstValue& value) {
    Insn imm;
    imm.op = Opcode::LoadImm;
    imm.is_float = value.is_float;
    imm.rd = insn.rd;
    imm.imm = value.i;
    imm.fimm = value.f;
    imm.line = insn.line;
    insn = std::move(imm);
    known_[insn.rd] = value;
    ++stats_.folded;
  }

  /// Evaluates a pure operation over constants; nullopt when not foldable
  /// (unknown inputs, division by zero, trapping cases).
  [[nodiscard]] std::optional<ConstValue> evaluate(
      const Insn& insn, const std::optional<ConstValue>& a,
      const std::optional<ConstValue>& b) const {
    auto make_int = [](std::int64_t v) {
      ConstValue out;
      out.i = v;
      return out;
    };
    auto make_fp = [](double v) {
      ConstValue out;
      out.is_float = true;
      out.f = v;
      return out;
    };

    const bool unary = insn.rs2 == kNoReg;
    if (!a || (!unary && !b)) return std::nullopt;
    const std::int64_t ai = a->i;
    const std::int64_t bi = b ? b->i : 0;
    const double af = a->f;
    const double bf = b ? b->f : 0.0;

    switch (insn.op) {
      case Opcode::Add:
        return insn.is_float ? make_fp(af + bf) : make_int(ai + bi);
      case Opcode::Sub:
        return insn.is_float ? make_fp(af - bf) : make_int(ai - bi);
      case Opcode::Mul:
        return insn.is_float ? make_fp(af * bf) : make_int(ai * bi);
      case Opcode::Div:
        if (insn.is_float) return make_fp(af / bf);
        if (bi == 0) return std::nullopt;  // Keep the trap.
        return make_int(ai / bi);
      case Opcode::Rem:
        if (bi == 0) return std::nullopt;
        return make_int(ai % bi);
      case Opcode::Neg:
        return insn.is_float ? make_fp(-af) : make_int(-ai);
      case Opcode::And: return make_int(ai & bi);
      case Opcode::Or: return make_int(ai | bi);
      case Opcode::Xor: return make_int(ai ^ bi);
      case Opcode::Not: return make_int(ai == 0 ? 1 : 0);
      case Opcode::Shl: return make_int(ai << (bi & 63));
      case Opcode::Shr: return make_int(ai >> (bi & 63));
      case Opcode::CmpLt:
        return make_int(insn.is_float ? af < bf : ai < bi);
      case Opcode::CmpLe:
        return make_int(insn.is_float ? af <= bf : ai <= bi);
      case Opcode::CmpGt:
        return make_int(insn.is_float ? af > bf : ai > bi);
      case Opcode::CmpGe:
        return make_int(insn.is_float ? af >= bf : ai >= bi);
      case Opcode::CmpEq:
        return make_int(insn.is_float ? af == bf : ai == bi);
      case Opcode::CmpNe:
        return make_int(insn.is_float ? af != bf : ai != bi);
      case Opcode::IntToFp: return make_fp(static_cast<double>(ai));
      case Opcode::FpToInt: return make_int(static_cast<std::int64_t>(af));
      default:
        return std::nullopt;
    }
  }

  ConstFoldStats& stats_;
  std::unordered_map<Reg, ConstValue> known_;
};

}  // namespace

ConstFoldStats constfold_function(RtlFunction& func) {
  ConstFoldStats stats;
  BlockFolder folder(stats);
  for (Insn& insn : func.insns) {
    folder.visit(insn);
  }
  return stats;
}

}  // namespace hli::backend
