// Importing and mapping HLI into the back-end (paper §3.2.1): items listed
// per source line in the HLI line table are matched, in order, onto the
// memory references and calls the back-end emitted for that line.  A
// successful mapping stamps every Load/Store/Call insn with its HLI item
// ID — the (IRInsn, RefSpec) association of the paper (RefSpec is 0: each
// of our insns holds at most one memory reference).
#pragma once

#include <string>

#include "backend/rtl.hpp"
#include "hli/format.hpp"

namespace hli::backend {

struct MapResult {
  std::size_t mapped = 0;
  std::size_t insn_without_item = 0;  ///< Back-end refs the HLI lacks.
  std::size_t item_without_insn = 0;  ///< HLI items never matched.
  std::vector<std::string> mismatches;

  [[nodiscard]] bool perfect() const {
    return insn_without_item == 0 && item_without_insn == 0;
  }

  /// Feeds the `map.*` telemetry counters (docs/observability.md).
  void record_telemetry() const;
};

/// Maps `entry`'s line-table items onto `func`'s instructions in place.
/// Items whose type class is incompatible with the instruction (load vs.
/// store vs. call) are reported as mismatches and left unmapped.
MapResult map_items(RtlFunction& func, const format::HliEntry& entry);

}  // namespace hli::backend
