// Basic-block list instruction scheduling with a data-dependence graph —
// the back-end pass the paper instruments (§4.2, Figure 5).  For every
// pair of memory references in a block with at least one write, the
// scheduler asks BOTH disambiguators:
//   gcc_value = gcc_may_conflict(A, B)            (native GCC answer)
//   hli_value = HLI_GetEquivAcc/alias(A, B) != NONE
// and inserts an edge per  flag_use_hli ? gcc && hli : gcc  — recording
// the Table 2 counters (total queries, GCC-yes, HLI-yes, combined-yes).
#pragma once

#include <cstdint>
#include <functional>

#include "backend/depinfo.hpp"
#include "backend/rtl.hpp"
#include "hli/query.hpp"

namespace hli::backend {

struct DepStats {
  std::uint64_t mem_queries = 0;   ///< Mem-mem pairs tested (>= one write).
  std::uint64_t gcc_yes = 0;       ///< Native analyzer said "dependence".
  std::uint64_t hli_yes = 0;       ///< HLI said "may be same location".
  std::uint64_t combined_yes = 0;  ///< Both said yes (edges when HLI on).
  std::uint64_t call_queries = 0;  ///< Mem-call REF/MOD queries.
  std::uint64_t call_edges_native = 0;
  std::uint64_t call_edges_hli = 0;
  std::uint64_t blocks = 0;
  std::uint64_t scheduled_insns = 0;
  std::uint64_t fallback_queries = 0;  ///< Pairs the irdep fallback re-tested.
  std::uint64_t fallback_pruned = 0;   ///< Mem-mem edges removed beyond base.
  std::uint64_t fallback_pruned_calls = 0;  ///< Mem-call edges removed.

  DepStats& operator+=(const DepStats& other) {
    mem_queries += other.mem_queries;
    gcc_yes += other.gcc_yes;
    hli_yes += other.hli_yes;
    combined_yes += other.combined_yes;
    call_queries += other.call_queries;
    call_edges_native += other.call_edges_native;
    call_edges_hli += other.call_edges_hli;
    blocks += other.blocks;
    scheduled_insns += other.scheduled_insns;
    fallback_queries += other.fallback_queries;
    fallback_pruned += other.fallback_pruned;
    fallback_pruned_calls += other.fallback_pruned_calls;
    return *this;
  }

  /// Feeds the `sched.*` telemetry counters (docs/observability.md).
  /// `hli_applied` says whether the schedule actually used HLI answers:
  /// `sched.ddg_edges_pruned` (gcc_yes - combined_yes) is reported only
  /// then, so an HLI-off compile reports 0 pruned edges.
  void record_telemetry(bool hli_applied) const;
};

struct SchedOptions {
  /// Figure 5's flag_use_hli: combine the HLI answer into edge insertion.
  bool use_hli = false;
  /// HLI view for the function being scheduled; may be null when use_hli
  /// is false (stats then report hli_yes == gcc_yes pairs only if wanted).
  const query::HliUnitView* view = nullptr;
  /// Optional pairwise memo for the view's may_conflict answers, keyed on
  /// the unordered item pair.  Share one cache across scheduling passes of
  /// the same function (the HLI is not mutated between sched1 and sched2)
  /// so repeated DDG edge tests hit precomputed answers.  Only the HLI
  /// answer is cached — the Table 2 counters are incremented per query
  /// either way, so statistics are unaffected.  Ignored when
  /// batch_queries is active (the matrix subsumes it).
  query::ConflictCache* cache = nullptr;
  /// Answer the block's HLI pair queries from one BlockConflictMatrix
  /// built per block (single bit tests) instead of per-pair scalar
  /// may_conflict/get_call_acc calls.  The matrix is bit-identical to the
  /// scalar view, so the schedule — and every Table 2 counter — is
  /// byte-identical either way; only the query cost changes.  No effect
  /// when `view` is null.
  bool batch_queries = false;
  /// Instruction latency oracle (supplied by the machine model); default
  /// unit latencies when absent.
  std::function<unsigned(const Insn&)> latency;
  /// Independent back-end dependence oracle (PipelineOptions::
  /// irdep_fallback): when set, its answer is ANDed into every memory and
  /// call dependence — a `false` removes the edge even when the native
  /// (or HLI) answer kept it.  Must be fresh w.r.t. the function's
  /// current instruction indices.
  DepOracle* fallback = nullptr;
};

/// Schedules every basic block of `func` in place and returns the
/// dependence statistics of this (first) scheduling pass.
DepStats schedule_function(RtlFunction& func, const SchedOptions& options);

}  // namespace hli::backend
