#include "backend/dce.hpp"

#include <vector>

#include "support/telemetry.hpp"

namespace hli::backend {

namespace {
const telemetry::Counter c_insns_deleted =
    telemetry::counter("dce.insns_deleted");
const telemetry::Counter c_loads_deleted =
    telemetry::counter("dce.loads_deleted");
}  // namespace

void DceStats::record_telemetry() const {
  c_insns_deleted.add(deleted);
  c_loads_deleted.add(deleted_loads);
}

namespace {

/// Instructions with effects beyond their register result.
bool always_live(const Insn& insn) {
  switch (insn.op) {
    case Opcode::Store:
    case Opcode::Call:
    case Opcode::Label:
    case Opcode::Jump:
    case Opcode::BranchZ:
    case Opcode::BranchNZ:
    case Opcode::Return:
    case Opcode::LoopBeg:
    case Opcode::LoopEnd:
      return true;
    default:
      return false;
  }
}

}  // namespace

DceStats dce_function(RtlFunction& func, const DceOptions& options) {
  DceStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    // Use counts over the whole function (registers are not renamed per
    // block, so liveness must be global).
    std::vector<std::uint32_t> uses(static_cast<std::size_t>(func.num_regs), 0);
    auto count = [&uses](Reg r) {
      if (r != kNoReg) ++uses[static_cast<std::size_t>(r)];
    };
    for (const Insn& insn : func.insns) {
      count(insn.rs1);
      count(insn.rs2);
      for (const Reg r : insn.args) count(r);
      if (insn.op == Opcode::LoopBeg) count(insn.induction);
    }
    // Parameters stay observable (the interpreter binds into them).
    for (const Reg r : func.param_regs) count(r);

    std::vector<Insn> kept;
    kept.reserve(func.insns.size());
    for (Insn& insn : func.insns) {
      const bool dead = !always_live(insn) && insn.rd != kNoReg &&
                        uses[static_cast<std::size_t>(insn.rd)] == 0;
      if (!dead) {
        kept.push_back(std::move(insn));
        continue;
      }
      ++stats.deleted;
      if (insn.op == Opcode::Load) {
        ++stats.deleted_loads;
        if (options.on_load_deleted && insn.mem.hli_item != format::kNoItem) {
          options.on_load_deleted(insn.mem.hli_item);
        }
      }
      changed = true;
    }
    func.insns = std::move(kept);
  }
  return stats;
}

}  // namespace hli::backend
