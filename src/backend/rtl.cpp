#include "backend/rtl.hpp"

#include <sstream>

namespace hli::backend {

namespace {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::LoadImm: return "imm";
    case Opcode::Move: return "mov";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::Neg: return "neg";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Not: return "not";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::CmpLt: return "clt";
    case Opcode::CmpLe: return "cle";
    case Opcode::CmpGt: return "cgt";
    case Opcode::CmpGe: return "cge";
    case Opcode::CmpEq: return "ceq";
    case Opcode::CmpNe: return "cne";
    case Opcode::IntToFp: return "i2f";
    case Opcode::FpToInt: return "f2i";
    case Opcode::LoadAddr: return "lea";
    case Opcode::Load: return "ld";
    case Opcode::Store: return "st";
    case Opcode::Label: return "label";
    case Opcode::Jump: return "jmp";
    case Opcode::BranchZ: return "bz";
    case Opcode::BranchNZ: return "bnz";
    case Opcode::Call: return "call";
    case Opcode::Return: return "ret";
    case Opcode::LoopBeg: return "loop_beg";
    case Opcode::LoopEnd: return "loop_end";
  }
  return "?";
}

}  // namespace

std::string to_string(const Insn& insn) {
  std::ostringstream out;
  out << opcode_name(insn.op);
  if (insn.is_float) out << ".f";
  if (insn.rd != kNoReg) out << " r" << insn.rd;
  if (insn.rs1 != kNoReg) out << " r" << insn.rs1;
  if (insn.rs2 != kNoReg) out << " r" << insn.rs2;
  switch (insn.op) {
    case Opcode::LoadImm:
      out << (insn.is_float ? " #" : " #");
      if (insn.is_float) {
        out << insn.fimm;
      } else {
        out << insn.imm;
      }
      break;
    case Opcode::LoadAddr:
      out << (insn.label >= 0 ? " sym" : " frame") << (insn.label >= 0 ? insn.label : 0)
          << "+" << insn.imm;
      break;
    case Opcode::Label:
    case Opcode::Jump:
    case Opcode::BranchZ:
    case Opcode::BranchNZ:
      out << " L" << insn.label;
      break;
    case Opcode::Call:
      out << " " << insn.callee << "(";
      for (std::size_t i = 0; i < insn.args.size(); ++i) {
        if (i != 0) out << ", ";
        out << "r" << insn.args[i];
      }
      out << ")";
      break;
    case Opcode::Load:
    case Opcode::Store:
      out << " [" << (insn.mem.base == MemBase::Symbol
                          ? "sym" + std::to_string(insn.mem.symbol)
                          : insn.mem.base == MemBase::Frame ? "frame" : "ptr")
          << "+" << insn.mem.const_offset << " sz" << int(insn.mem.size) << "]";
      if (insn.mem.hli_item != format::kNoItem) out << " item" << insn.mem.hli_item;
      break;
    default:
      break;
  }
  out << " @" << insn.line;
  return std::move(out).str();
}

std::string to_string(const RtlFunction& func) {
  std::ostringstream out;
  out << "func " << func.name << " regs=" << func.num_regs
      << " frame=" << func.frame_size << "\n";
  for (const Insn& insn : func.insns) {
    out << "  " << to_string(insn) << "\n";
  }
  return std::move(out).str();
}

}  // namespace hli::backend
