#include "backend/interp.hpp"

#include <cmath>
#include <stdexcept>
#include <cstring>
#include <unordered_map>
#include <vector>

namespace hli::backend {

namespace {

struct Value {
  std::int64_t i = 0;
  double f = 0.0;
};

class Interp {
 public:
  Interp(const RtlProgram& prog, TraceSink* sink, const InterpOptions& options)
      : prog_(prog), sink_(sink), options_(options) {
    memory_.resize(options.memory_bytes);
    // Globals at the bottom (address 8 upward; 0 stays "null").
    std::uint64_t at = 8;
    for (const GlobalVar& g : prog.globals) {
      global_base_.push_back(at);
      if (!g.init_int.empty()) {
        write_int(at, g.init_int[0], 4);
      } else if (!g.init_fp.empty()) {
        write_fp(at, g.init_fp[0], 8);
      }
      at += (g.size + 7) / 8 * 8;
    }
    stack_top_ = (at + 63) / 64 * 64;
    // Pre-index labels per function.
    for (const RtlFunction& f : prog.functions) {
      auto& map = labels_[&f];
      for (std::size_t i = 0; i < f.insns.size(); ++i) {
        if (f.insns[i].op == Opcode::Label) map[f.insns[i].label] = i;
      }
    }
  }

  RunResult run(const std::string& entry) {
    RunResult result;
    const RtlFunction* func = prog_.find_function(entry);
    if (func == nullptr) {
      result.error = "no entry function '" + entry + "'";
      return result;
    }
    try {
      const Value ret = call(*func, {});
      result.return_value = ret.i;
      result.ok = true;
    } catch (const std::runtime_error& e) {
      result.error = e.what();
    }
    result.dynamic_insns = executed_;
    result.output_hash = output_hash_;
    result.emit_count = emit_count_;
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("interp: " + message);
  }

  void check_mem(std::uint64_t addr, std::uint64_t size) const {
    if (addr == 0 || addr + size > memory_.size()) {
      fail("memory access out of range at " + std::to_string(addr));
    }
  }

  void write_int(std::uint64_t addr, std::int64_t value, std::uint8_t size) {
    check_mem(addr, size);
    if (size == 4) {
      const std::int32_t v = static_cast<std::int32_t>(value);
      std::memcpy(&memory_[addr], &v, 4);
    } else {
      std::memcpy(&memory_[addr], &value, 8);
    }
  }

  std::int64_t read_int(std::uint64_t addr, std::uint8_t size) const {
    check_mem(addr, size);
    if (size == 4) {
      std::int32_t v = 0;
      std::memcpy(&v, &memory_[addr], 4);
      return v;
    }
    std::int64_t v = 0;
    std::memcpy(&v, &memory_[addr], 8);
    return v;
  }

  void write_fp(std::uint64_t addr, double value, std::uint8_t size) {
    check_mem(addr, size);
    if (size == 4) {
      const float v = static_cast<float>(value);
      std::memcpy(&memory_[addr], &v, 4);
    } else {
      std::memcpy(&memory_[addr], &value, 8);
    }
  }

  double read_fp(std::uint64_t addr, std::uint8_t size) const {
    check_mem(addr, size);
    if (size == 4) {
      float v = 0;
      std::memcpy(&v, &memory_[addr], 4);
      return v;
    }
    double v = 0;
    std::memcpy(&v, &memory_[addr], 8);
    return v;
  }

  void mix_output(std::uint64_t bits) {
    output_hash_ = output_hash_ * 1099511628211ull ^ bits;
    ++emit_count_;
  }

  /// Built-in externs: math plus the emit() observation sinks.
  bool call_extern(const std::string& name, const std::vector<Value>& args,
                   Value& out) {
    auto arg_f = [&](std::size_t i) { return i < args.size() ? args[i].f : 0.0; };
    if (name == "sqrt") { out.f = std::sqrt(arg_f(0)); return true; }
    if (name == "fabs") { out.f = std::fabs(arg_f(0)); return true; }
    if (name == "sin") { out.f = std::sin(arg_f(0)); return true; }
    if (name == "cos") { out.f = std::cos(arg_f(0)); return true; }
    if (name == "exp") { out.f = std::exp(arg_f(0)); return true; }
    if (name == "log") { out.f = std::log(arg_f(0)); return true; }
    if (name == "pow") { out.f = std::pow(arg_f(0), arg_f(1)); return true; }
    if (name == "floor") { out.f = std::floor(arg_f(0)); return true; }
    if (name == "ceil") { out.f = std::ceil(arg_f(0)); return true; }
    if (name == "atan") { out.f = std::atan(arg_f(0)); return true; }
    if (name == "emit") {
      mix_output(static_cast<std::uint64_t>(args.empty() ? 0 : args[0].i));
      return true;
    }
    if (name == "emitd") {
      std::uint64_t bits = 0;
      const double v = arg_f(0);
      std::memcpy(&bits, &v, 8);
      mix_output(bits);
      return true;
    }
    return false;
  }

  Value call(const RtlFunction& func, const std::vector<Value>& args) {
    if (++depth_ > options_.max_call_depth) fail("call depth exceeded");
    const std::uint64_t frame_base = stack_top_;
    stack_top_ += (func.frame_size + 63) / 64 * 64;
    if (stack_top_ > memory_.size()) fail("stack overflow");

    std::vector<Value> regs(static_cast<std::size_t>(func.num_regs) + 1);
    // Incoming register arguments land in the params' staging registers.
    for (std::size_t i = 0;
         i < func.param_regs.size() && i < analysis_max_reg_args(); ++i) {
      if (i < args.size()) regs[static_cast<std::size_t>(func.param_regs[i])] = args[i];
    }

    const auto& label_map = labels_.at(&func);
    std::size_t pc = 0;
    Value ret;
    while (pc < func.insns.size()) {
      const Insn& insn = func.insns[pc];
      if (++executed_ > options_.max_insns) fail("instruction budget exceeded");

      TraceEvent event;
      event.insn = &insn;

      switch (insn.op) {
        case Opcode::LoadImm:
          if (insn.is_float) {
            regs[insn.rd].f = insn.fimm;
          } else {
            regs[insn.rd].i = insn.imm;
          }
          break;
        case Opcode::Move:
          regs[insn.rd] = regs[insn.rs1];
          break;
        case Opcode::Add:
          if (insn.is_float) {
            regs[insn.rd].f = regs[insn.rs1].f + regs[insn.rs2].f;
          } else {
            regs[insn.rd].i = regs[insn.rs1].i + regs[insn.rs2].i;
          }
          break;
        case Opcode::Sub:
          if (insn.is_float) {
            regs[insn.rd].f = regs[insn.rs1].f - regs[insn.rs2].f;
          } else {
            regs[insn.rd].i = regs[insn.rs1].i - regs[insn.rs2].i;
          }
          break;
        case Opcode::Mul:
          if (insn.is_float) {
            regs[insn.rd].f = regs[insn.rs1].f * regs[insn.rs2].f;
          } else {
            regs[insn.rd].i = regs[insn.rs1].i * regs[insn.rs2].i;
          }
          break;
        case Opcode::Div:
          if (insn.is_float) {
            regs[insn.rd].f = regs[insn.rs1].f / regs[insn.rs2].f;
          } else {
            if (regs[insn.rs2].i == 0) fail("integer division by zero");
            regs[insn.rd].i = regs[insn.rs1].i / regs[insn.rs2].i;
          }
          break;
        case Opcode::Rem:
          if (regs[insn.rs2].i == 0) fail("integer remainder by zero");
          regs[insn.rd].i = regs[insn.rs1].i % regs[insn.rs2].i;
          break;
        case Opcode::Neg:
          if (insn.is_float) {
            regs[insn.rd].f = -regs[insn.rs1].f;
          } else {
            regs[insn.rd].i = -regs[insn.rs1].i;
          }
          break;
        case Opcode::And: regs[insn.rd].i = regs[insn.rs1].i & regs[insn.rs2].i; break;
        case Opcode::Or: regs[insn.rd].i = regs[insn.rs1].i | regs[insn.rs2].i; break;
        case Opcode::Xor: regs[insn.rd].i = regs[insn.rs1].i ^ regs[insn.rs2].i; break;
        case Opcode::Not: regs[insn.rd].i = regs[insn.rs1].i == 0 ? 1 : 0; break;
        case Opcode::Shl: regs[insn.rd].i = regs[insn.rs1].i << (regs[insn.rs2].i & 63); break;
        case Opcode::Shr: regs[insn.rd].i = regs[insn.rs1].i >> (regs[insn.rs2].i & 63); break;
        case Opcode::CmpLt:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f < regs[insn.rs2].f
                                          : regs[insn.rs1].i < regs[insn.rs2].i;
          break;
        case Opcode::CmpLe:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f <= regs[insn.rs2].f
                                          : regs[insn.rs1].i <= regs[insn.rs2].i;
          break;
        case Opcode::CmpGt:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f > regs[insn.rs2].f
                                          : regs[insn.rs1].i > regs[insn.rs2].i;
          break;
        case Opcode::CmpGe:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f >= regs[insn.rs2].f
                                          : regs[insn.rs1].i >= regs[insn.rs2].i;
          break;
        case Opcode::CmpEq:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f == regs[insn.rs2].f
                                          : regs[insn.rs1].i == regs[insn.rs2].i;
          break;
        case Opcode::CmpNe:
          regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f != regs[insn.rs2].f
                                          : regs[insn.rs1].i != regs[insn.rs2].i;
          break;
        case Opcode::IntToFp:
          regs[insn.rd].f = static_cast<double>(regs[insn.rs1].i);
          break;
        case Opcode::FpToInt:
          regs[insn.rd].i = static_cast<std::int64_t>(regs[insn.rs1].f);
          break;
        case Opcode::LoadAddr:
          if (insn.label >= 0) {
            regs[insn.rd].i = static_cast<std::int64_t>(
                global_base_[static_cast<std::size_t>(insn.label)] +
                static_cast<std::uint64_t>(insn.imm));
          } else {
            regs[insn.rd].i = static_cast<std::int64_t>(
                frame_base + static_cast<std::uint64_t>(insn.imm));
          }
          break;
        case Opcode::Load: {
          const std::uint64_t addr =
              static_cast<std::uint64_t>(regs[insn.rs1].i + insn.mem.const_offset);
          event.address = addr;
          if (insn.is_float) {
            regs[insn.rd].f = read_fp(addr, insn.mem.size);
          } else {
            regs[insn.rd].i = read_int(addr, insn.mem.size);
          }
          break;
        }
        case Opcode::Store: {
          const std::uint64_t addr =
              static_cast<std::uint64_t>(regs[insn.rs1].i + insn.mem.const_offset);
          event.address = addr;
          if (insn.is_float) {
            write_fp(addr, regs[insn.rs2].f, insn.mem.size);
          } else {
            write_int(addr, regs[insn.rs2].i, insn.mem.size);
          }
          break;
        }
        case Opcode::Label:
        case Opcode::LoopBeg:
        case Opcode::LoopEnd:
          break;
        case Opcode::Jump:
          if (sink_ != nullptr) sink_->on_insn(event);
          pc = label_map.at(insn.label);
          continue;
        case Opcode::BranchZ:
        case Opcode::BranchNZ: {
          if (sink_ != nullptr) sink_->on_insn(event);
          const bool zero = regs[insn.rs1].i == 0;
          const bool taken = insn.op == Opcode::BranchZ ? zero : !zero;
          if (taken) {
            pc = label_map.at(insn.label);
            continue;
          }
          break;
        }
        case Opcode::Call: {
          if (sink_ != nullptr) sink_->on_insn(event);
          std::vector<Value> call_args;
          call_args.reserve(insn.args.size());
          for (const Reg r : insn.args) call_args.push_back(regs[r]);
          Value out;
          if (const RtlFunction* callee = prog_.find_function(insn.callee)) {
            out = call(*callee, call_args);
          } else if (!call_extern(insn.callee, call_args, out)) {
            fail("call to unknown extern '" + insn.callee + "'");
          }
          if (insn.rd != kNoReg) regs[insn.rd] = out;
          ++pc;
          continue;
        }
        case Opcode::Return:
          if (sink_ != nullptr) sink_->on_insn(event);
          if (insn.rs1 != kNoReg) ret = regs[insn.rs1];
          stack_top_ = frame_base;
          --depth_;
          return ret;
      }
      if (sink_ != nullptr && insn.op != Opcode::Label &&
          insn.op != Opcode::LoopBeg && insn.op != Opcode::LoopEnd) {
        sink_->on_insn(event);
      }
      ++pc;
    }
    stack_top_ = frame_base;
    --depth_;
    return ret;
  }

  static constexpr std::size_t analysis_max_reg_args() { return 4; }

  const RtlProgram& prog_;
  TraceSink* sink_;
  InterpOptions options_;
  std::vector<std::uint8_t> memory_;
  std::vector<std::uint64_t> global_base_;
  std::uint64_t stack_top_ = 0;
  std::unordered_map<const RtlFunction*, std::unordered_map<std::int32_t, std::size_t>>
      labels_;
  std::uint64_t executed_ = 0;
  std::uint64_t output_hash_ = 1469598103934665603ull;
  std::uint64_t emit_count_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

RunResult run_program(const RtlProgram& prog, const std::string& entry,
                      TraceSink* sink, const InterpOptions& options) {
  Interp interp(prog, sink, options);
  return interp.run(entry);
}

}  // namespace hli::backend
