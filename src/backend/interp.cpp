#include "backend/interp.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "backend/parexec/pool.hpp"
#include "backend/parexec/runtime.hpp"
#include "support/telemetry.hpp"

namespace hli::backend {

namespace {

const telemetry::Counter c_par_loops =
    telemetry::counter("parexec.loops_parallelized");
const telemetry::Counter c_par_invocations =
    telemetry::counter("parexec.invocations");
const telemetry::Counter c_par_chunks = telemetry::counter("parexec.chunks");
const telemetry::Counter c_par_iterations =
    telemetry::counter("parexec.par_iterations");
const telemetry::Counter c_par_insns =
    telemetry::counter("parexec.par_insns");
const telemetry::Counter c_par_ordered =
    telemetry::counter("parexec.ordered_insns");
const telemetry::Counter c_par_waits = telemetry::counter("parexec.sync_waits");
const telemetry::Counter c_par_elided =
    telemetry::counter("parexec.sync_elided");
const telemetry::Counter c_par_fallbacks =
    telemetry::counter("parexec.serial_fallbacks");

struct Value {
  std::int64_t i = 0;
  double f = 0.0;
};

/// Per-execution-lane state.  The master run and every worker chunk get
/// their own context: a private stack region for nested (pure) calls, a
/// private instruction counter, and a flag that disables nested parallel
/// dispatch inside workers.  The shared program memory stays one arena.
struct ExecCtx {
  std::uint64_t stack_top = 0;
  std::uint64_t stack_limit = 0;
  std::size_t depth = 0;
  std::uint64_t executed = 0;
  std::uint64_t hard_cap = 0;  ///< fail() when executed exceeds this.
  bool is_worker = false;
};

class Interp {
 public:
  Interp(const RtlProgram& prog, TraceSink* sink, const InterpOptions& options)
      : prog_(prog), sink_(sink), options_(options) {
    memory_.resize(options.memory_bytes);
    // Globals at the bottom (address 8 upward; 0 stays "null").
    std::uint64_t at = 8;
    for (const GlobalVar& g : prog.globals) {
      global_base_.push_back(at);
      if (!g.init_int.empty()) {
        write_int(at, g.init_int[0], 4);
      } else if (!g.init_fp.empty()) {
        write_fp(at, g.init_fp[0], 8);
      }
      at += (g.size + 7) / 8 * 8;
    }
    stack_base_ = (at + 63) / 64 * 64;
    master_limit_ = memory_.size();
    // Pre-index labels per function.
    for (const RtlFunction& f : prog.functions) {
      auto& map = labels_[&f];
      for (std::size_t i = 0; i < f.insns.size(); ++i) {
        if (f.insns[i].op == Opcode::Label) map[f.insns[i].label] = i;
      }
    }
    // Parallel dispatch needs per-lane stacks for the pure calls a loop
    // body may make: lanes 1..W-1 get fixed regions carved off the TOP
    // of the arena (lane 0 — the calling thread — keeps using the master
    // stack, which nobody else touches during a dispatch).  Too little
    // headroom disables dispatch rather than risking collisions.
    par_enabled_ = options.exec_threads > 1 && sink == nullptr;
    if (par_enabled_) {
      bool any_plan = false;
      for (const RtlFunction& f : prog.functions) {
        if (!f.parexec.empty()) any_plan = true;
      }
      const std::uint64_t extra = options.exec_threads - 1;
      std::uint64_t ws = 0;
      if (any_plan && memory_.size() > stack_base_) {
        ws = (memory_.size() - stack_base_) / (2 * options.exec_threads);
        ws = ws / 64 * 64;
        ws = std::min<std::uint64_t>(ws, 1u << 20);
      }
      if (ws >= (64u << 10)) {
        worker_stack_size_ = ws;
        master_limit_ = memory_.size() - extra * ws;
      } else {
        par_enabled_ = false;
      }
    }
  }

  RunResult run(const std::string& entry) {
    RunResult result;
    const RtlFunction* func = prog_.find_function(entry);
    if (func == nullptr) {
      result.error = "no entry function '" + entry + "'";
      return result;
    }
    ExecCtx ctx;
    ctx.stack_top = stack_base_;
    ctx.stack_limit = master_limit_;
    ctx.hard_cap = options_.max_insns;
    try {
      const Value ret = call(*func, {}, ctx);
      result.return_value = ret.i;
      result.ok = true;
    } catch (const std::runtime_error& e) {
      result.error = e.what();
    }
    result.dynamic_insns = ctx.executed;
    result.output_hash = output_hash_;
    result.emit_count = emit_count_;
    result.parexec = stats_;
    c_par_loops.add(stats_.loops_parallelized);
    c_par_invocations.add(stats_.invocations);
    c_par_chunks.add(stats_.chunks);
    c_par_iterations.add(stats_.par_iterations);
    c_par_insns.add(stats_.par_insns);
    c_par_ordered.add(stats_.ordered_insns);
    c_par_waits.add(stats_.sync_waits);
    c_par_elided.add(stats_.sync_elided);
    c_par_fallbacks.add(stats_.serial_fallbacks);
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("interp: " + message);
  }

  void check_mem(std::uint64_t addr, std::uint64_t size) const {
    if (addr == 0 || addr + size > memory_.size()) {
      fail("memory access out of range at " + std::to_string(addr));
    }
  }

  void write_int(std::uint64_t addr, std::int64_t value, std::uint8_t size) {
    check_mem(addr, size);
    if (size == 4) {
      const std::int32_t v = static_cast<std::int32_t>(value);
      std::memcpy(&memory_[addr], &v, 4);
    } else {
      std::memcpy(&memory_[addr], &value, 8);
    }
  }

  std::int64_t read_int(std::uint64_t addr, std::uint8_t size) const {
    check_mem(addr, size);
    if (size == 4) {
      std::int32_t v = 0;
      std::memcpy(&v, &memory_[addr], 4);
      return v;
    }
    std::int64_t v = 0;
    std::memcpy(&v, &memory_[addr], 8);
    return v;
  }

  void write_fp(std::uint64_t addr, double value, std::uint8_t size) {
    check_mem(addr, size);
    if (size == 4) {
      const float v = static_cast<float>(value);
      std::memcpy(&memory_[addr], &v, 4);
    } else {
      std::memcpy(&memory_[addr], &value, 8);
    }
  }

  double read_fp(std::uint64_t addr, std::uint8_t size) const {
    check_mem(addr, size);
    if (size == 4) {
      float v = 0;
      std::memcpy(&v, &memory_[addr], 4);
      return v;
    }
    double v = 0;
    std::memcpy(&v, &memory_[addr], 8);
    return v;
  }

  void mix_output(std::uint64_t bits) {
    output_hash_ = output_hash_ * 1099511628211ull ^ bits;
    ++emit_count_;
  }

  /// Built-in externs: math plus the emit() observation sinks.
  bool call_extern(const std::string& name, const std::vector<Value>& args,
                   Value& out, const ExecCtx& ctx) {
    auto arg_f = [&](std::size_t i) { return i < args.size() ? args[i].f : 0.0; };
    if (name == "sqrt") { out.f = std::sqrt(arg_f(0)); return true; }
    if (name == "fabs") { out.f = std::fabs(arg_f(0)); return true; }
    if (name == "sin") { out.f = std::sin(arg_f(0)); return true; }
    if (name == "cos") { out.f = std::cos(arg_f(0)); return true; }
    if (name == "exp") { out.f = std::exp(arg_f(0)); return true; }
    if (name == "log") { out.f = std::log(arg_f(0)); return true; }
    if (name == "pow") { out.f = std::pow(arg_f(0), arg_f(1)); return true; }
    if (name == "floor") { out.f = std::floor(arg_f(0)); return true; }
    if (name == "ceil") { out.f = std::ceil(arg_f(0)); return true; }
    if (name == "atan") { out.f = std::atan(arg_f(0)); return true; }
    if (name == "emit" || name == "emitd") {
      // The planner proves loop bodies IO-free before parallelizing, so a
      // worker can never reach the output sinks; the guard keeps a planner
      // bug from silently racing on the output hash.
      if (ctx.is_worker) fail("emit from a parallel worker");
      if (name == "emit") {
        mix_output(static_cast<std::uint64_t>(args.empty() ? 0 : args[0].i));
      } else {
        std::uint64_t bits = 0;
        const double v = arg_f(0);
        std::memcpy(&bits, &v, 8);
        mix_output(bits);
      }
      return true;
    }
    return false;
  }

  /// Executes one non-control instruction (values, memory, calls, notes).
  /// `event` (nullable) receives the resolved address for Load/Store.
  void step_insn(const Insn& insn, std::vector<Value>& regs,
                 std::uint64_t frame_base, ExecCtx& ctx, TraceEvent* event) {
    switch (insn.op) {
      case Opcode::LoadImm:
        if (insn.is_float) {
          regs[insn.rd].f = insn.fimm;
        } else {
          regs[insn.rd].i = insn.imm;
        }
        break;
      case Opcode::Move:
        regs[insn.rd] = regs[insn.rs1];
        break;
      case Opcode::Add:
        if (insn.is_float) {
          regs[insn.rd].f = regs[insn.rs1].f + regs[insn.rs2].f;
        } else {
          regs[insn.rd].i = regs[insn.rs1].i + regs[insn.rs2].i;
        }
        break;
      case Opcode::Sub:
        if (insn.is_float) {
          regs[insn.rd].f = regs[insn.rs1].f - regs[insn.rs2].f;
        } else {
          regs[insn.rd].i = regs[insn.rs1].i - regs[insn.rs2].i;
        }
        break;
      case Opcode::Mul:
        if (insn.is_float) {
          regs[insn.rd].f = regs[insn.rs1].f * regs[insn.rs2].f;
        } else {
          regs[insn.rd].i = regs[insn.rs1].i * regs[insn.rs2].i;
        }
        break;
      case Opcode::Div:
        if (insn.is_float) {
          regs[insn.rd].f = regs[insn.rs1].f / regs[insn.rs2].f;
        } else {
          if (regs[insn.rs2].i == 0) fail("integer division by zero");
          regs[insn.rd].i = regs[insn.rs1].i / regs[insn.rs2].i;
        }
        break;
      case Opcode::Rem:
        if (regs[insn.rs2].i == 0) fail("integer remainder by zero");
        regs[insn.rd].i = regs[insn.rs1].i % regs[insn.rs2].i;
        break;
      case Opcode::Neg:
        if (insn.is_float) {
          regs[insn.rd].f = -regs[insn.rs1].f;
        } else {
          regs[insn.rd].i = -regs[insn.rs1].i;
        }
        break;
      case Opcode::And: regs[insn.rd].i = regs[insn.rs1].i & regs[insn.rs2].i; break;
      case Opcode::Or: regs[insn.rd].i = regs[insn.rs1].i | regs[insn.rs2].i; break;
      case Opcode::Xor: regs[insn.rd].i = regs[insn.rs1].i ^ regs[insn.rs2].i; break;
      case Opcode::Not: regs[insn.rd].i = regs[insn.rs1].i == 0 ? 1 : 0; break;
      case Opcode::Shl: regs[insn.rd].i = regs[insn.rs1].i << (regs[insn.rs2].i & 63); break;
      case Opcode::Shr: regs[insn.rd].i = regs[insn.rs1].i >> (regs[insn.rs2].i & 63); break;
      case Opcode::CmpLt:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f < regs[insn.rs2].f
                                        : regs[insn.rs1].i < regs[insn.rs2].i;
        break;
      case Opcode::CmpLe:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f <= regs[insn.rs2].f
                                        : regs[insn.rs1].i <= regs[insn.rs2].i;
        break;
      case Opcode::CmpGt:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f > regs[insn.rs2].f
                                        : regs[insn.rs1].i > regs[insn.rs2].i;
        break;
      case Opcode::CmpGe:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f >= regs[insn.rs2].f
                                        : regs[insn.rs1].i >= regs[insn.rs2].i;
        break;
      case Opcode::CmpEq:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f == regs[insn.rs2].f
                                        : regs[insn.rs1].i == regs[insn.rs2].i;
        break;
      case Opcode::CmpNe:
        regs[insn.rd].i = insn.is_float ? regs[insn.rs1].f != regs[insn.rs2].f
                                        : regs[insn.rs1].i != regs[insn.rs2].i;
        break;
      case Opcode::IntToFp:
        regs[insn.rd].f = static_cast<double>(regs[insn.rs1].i);
        break;
      case Opcode::FpToInt:
        regs[insn.rd].i = static_cast<std::int64_t>(regs[insn.rs1].f);
        break;
      case Opcode::LoadAddr:
        if (insn.label >= 0) {
          regs[insn.rd].i = static_cast<std::int64_t>(
              global_base_[static_cast<std::size_t>(insn.label)] +
              static_cast<std::uint64_t>(insn.imm));
        } else {
          regs[insn.rd].i = static_cast<std::int64_t>(
              frame_base + static_cast<std::uint64_t>(insn.imm));
        }
        break;
      case Opcode::Load: {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(regs[insn.rs1].i + insn.mem.const_offset);
        if (event != nullptr) event->address = addr;
        if (insn.is_float) {
          regs[insn.rd].f = read_fp(addr, insn.mem.size);
        } else {
          regs[insn.rd].i = read_int(addr, insn.mem.size);
        }
        break;
      }
      case Opcode::Store: {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(regs[insn.rs1].i + insn.mem.const_offset);
        if (event != nullptr) event->address = addr;
        if (insn.is_float) {
          write_fp(addr, regs[insn.rs2].f, insn.mem.size);
        } else {
          write_int(addr, regs[insn.rs2].i, insn.mem.size);
        }
        break;
      }
      case Opcode::Call: {
        std::vector<Value> call_args;
        call_args.reserve(insn.args.size());
        for (const Reg r : insn.args) call_args.push_back(regs[r]);
        Value out;
        if (const RtlFunction* callee = prog_.find_function(insn.callee)) {
          out = call(*callee, call_args, ctx);
        } else if (!call_extern(insn.callee, call_args, out, ctx)) {
          fail("call to unknown extern '" + insn.callee + "'");
        }
        if (insn.rd != kNoReg) regs[insn.rd] = out;
        break;
      }
      case Opcode::Label:
      case Opcode::LoopBeg:
      case Opcode::LoopEnd:
        break;
      case Opcode::Jump:
      case Opcode::BranchZ:
      case Opcode::BranchNZ:
      case Opcode::Return:
        // Only reachable from a parallel slice, whose plan proved the
        // range straight-line; getting here means the plan is stale.
        fail("control instruction in a parallel slice");
    }
  }

  /// Straight-line executor for parallel chunks, trip counting and the
  /// post-join replays: runs [lo, hi) with no control flow except calls.
  void exec_slice(const RtlFunction& func, std::vector<Value>& regs,
                  std::size_t lo, std::size_t hi, std::uint64_t frame_base,
                  ExecCtx& ctx) {
    for (std::size_t pc = lo; pc < hi; ++pc) {
      if (++ctx.executed > ctx.hard_cap) fail("instruction budget exceeded");
      step_insn(func.insns[pc], regs, frame_base, ctx, nullptr);
    }
  }

  [[nodiscard]] static const LoopPlan* find_plan(const RtlFunction& func,
                                                 std::size_t pc) {
    for (const LoopPlan& plan : func.parexec) {
      if (plan.loop_beg == pc) return &plan;
    }
    return nullptr;
  }

  Value call(const RtlFunction& func, const std::vector<Value>& args,
             ExecCtx& ctx) {
    if (++ctx.depth > options_.max_call_depth) fail("call depth exceeded");
    const std::uint64_t frame_base = ctx.stack_top;
    ctx.stack_top += (func.frame_size + 63) / 64 * 64;
    if (ctx.stack_top > ctx.stack_limit) fail("stack overflow");

    std::vector<Value> regs(static_cast<std::size_t>(func.num_regs) + 1);
    // Incoming register arguments land in the params' staging registers.
    for (std::size_t i = 0;
         i < func.param_regs.size() && i < analysis_max_reg_args(); ++i) {
      if (i < args.size()) regs[static_cast<std::size_t>(func.param_regs[i])] = args[i];
    }

    const auto& label_map = labels_.at(&func);
    std::size_t pc = 0;
    Value ret;
    while (pc < func.insns.size()) {
      const Insn& insn = func.insns[pc];
      if (++ctx.executed > ctx.hard_cap) fail("instruction budget exceeded");

      TraceEvent event;
      event.insn = &insn;

      switch (insn.op) {
        case Opcode::Jump:
          if (sink_ != nullptr) sink_->on_insn(event);
          pc = label_map.at(insn.label);
          continue;
        case Opcode::BranchZ:
        case Opcode::BranchNZ: {
          if (sink_ != nullptr) sink_->on_insn(event);
          const bool zero = regs[insn.rs1].i == 0;
          const bool taken = insn.op == Opcode::BranchZ ? zero : !zero;
          if (taken) {
            pc = label_map.at(insn.label);
            continue;
          }
          break;
        }
        case Opcode::Call: {
          // Sink order matters: the timing models see the Call event
          // BEFORE the callee's instructions, so the case stays here
          // rather than in step_insn.
          if (sink_ != nullptr) sink_->on_insn(event);
          std::vector<Value> call_args;
          call_args.reserve(insn.args.size());
          for (const Reg r : insn.args) call_args.push_back(regs[r]);
          Value out;
          if (const RtlFunction* callee = prog_.find_function(insn.callee)) {
            out = call(*callee, call_args, ctx);
          } else if (!call_extern(insn.callee, call_args, out, ctx)) {
            fail("call to unknown extern '" + insn.callee + "'");
          }
          if (insn.rd != kNoReg) regs[insn.rd] = out;
          ++pc;
          continue;
        }
        case Opcode::Return:
          if (sink_ != nullptr) sink_->on_insn(event);
          if (insn.rs1 != kNoReg) ret = regs[insn.rs1];
          ctx.stack_top = frame_base;
          --ctx.depth;
          return ret;
        case Opcode::LoopBeg:
          if (par_enabled_ && !ctx.is_worker && !func.parexec.empty()) {
            if (const LoopPlan* plan = find_plan(func, pc)) {
              if (run_parallel_loop(func, *plan, regs, frame_base, ctx)) {
                pc = plan->loop_end + 1;
                continue;
              }
            }
          }
          break;
        default:
          step_insn(insn, regs, frame_base, ctx, &event);
          break;
      }
      if (sink_ != nullptr && insn.op != Opcode::Label &&
          insn.op != Opcode::LoopBeg && insn.op != Opcode::LoopEnd) {
        sink_->on_insn(event);
      }
      ++pc;
    }
    ctx.stack_top = frame_base;
    --ctx.depth;
    return ret;
  }

  [[nodiscard]] static Value reduction_identity(ReductionKind kind) {
    Value v;
    switch (kind) {
      case ReductionKind::Add:
      case ReductionKind::Or:
      case ReductionKind::Xor:
        v.i = 0;
        break;
      case ReductionKind::Mul:
        v.i = 1;
        break;
      case ReductionKind::And:
        v.i = -1;
        break;
    }
    return v;
  }

  static void combine_reduction(ReductionKind kind, Value& acc,
                                const Value& partial) {
    switch (kind) {
      case ReductionKind::Add: acc.i += partial.i; break;
      case ReductionKind::Mul: acc.i *= partial.i; break;
      case ReductionKind::And: acc.i &= partial.i; break;
      case ReductionKind::Or: acc.i |= partial.i; break;
      case ReductionKind::Xor: acc.i ^= partial.i; break;
    }
  }

  /// Attempts to execute the planned loop on the worker pool.  Returns
  /// false (with registers restored) when the runtime declines — short
  /// trip, tiny volume, or the projected serial cost does not fit the
  /// instruction budget (the serial path must then trap exactly where a
  /// serial run would).  On success the master's registers and counters
  /// are byte-identical to what serial execution would have produced.
  bool run_parallel_loop(const RtlFunction& func, const LoopPlan& plan,
                         std::vector<Value>& regs, std::uint64_t frame_base,
                         ExecCtx& ctx) {
    const Insn& exit_br = func.insns[plan.exit_branch];
    const Reg iv = plan.induction;
    const std::uint64_t cond_insns = plan.exit_branch - plan.cond_begin;
    const std::uint64_t body_insns = plan.body_end - plan.body_begin;
    const std::uint64_t step_insns = plan.backedge - plan.step_begin;
    const std::uint64_t per_iter = cond_insns + body_insns + step_insns + 4;
    const std::uint64_t exit_cost = cond_insns + 4;

    // Snapshot what trip counting clobbers (IV + predicate registers) so
    // a serial fallback resumes from an untouched state.
    std::vector<std::pair<Reg, Value>> snapshot;
    snapshot.emplace_back(iv, regs[iv]);
    for (std::size_t p = plan.cond_begin; p < plan.exit_branch; ++p) {
      const Reg rd = func.insns[p].rd;
      if (rd != kNoReg) snapshot.emplace_back(rd, regs[rd]);
    }
    const auto restore = [&] {
      for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it) {
        regs[it->first] = it->second;
      }
    };
    const auto decline = [&] {
      restore();
      ++stats_.serial_fallbacks;
      return false;
    };

    // Trip counting: the predicate slice reads only the IV, registers the
    // slice itself defines, and loop invariants (the planner rejected
    // everything else), so evaluating it for iv0, iv0+step, ... BEFORE
    // any body runs reproduces the serial predicate sequence exactly.
    const std::int64_t iv0 = regs[iv].i;
    ExecCtx scratch;
    scratch.hard_cap = UINT64_MAX;
    const std::uint64_t remaining =
        options_.max_insns > ctx.executed ? options_.max_insns - ctx.executed
                                          : 0;
    const std::uint64_t max_rounds = remaining / per_iter + 2;
    std::uint64_t trips = 0;
    for (;;) {
      regs[iv].i = iv0 + static_cast<std::int64_t>(trips) * plan.step;
      exec_slice(func, regs, plan.cond_begin, plan.exit_branch, frame_base,
                 scratch);
      const bool zero = regs[exit_br.rs1].i == 0;
      const bool taken = exit_br.op == Opcode::BranchZ ? zero : !zero;
      if (taken) break;
      if (++trips > max_rounds) return decline();  // Serial would trap.
    }

    if (trips < 2) return decline();
    if (trips * (cond_insns + body_insns) < options_.min_par_insns) {
      return decline();
    }
    if (ctx.executed + trips * per_iter + exit_cost > options_.max_insns) {
      return decline();  // Serial trips the budget mid-loop; reproduce it.
    }
    const std::vector<parexec::Chunk> chunks = parexec::plan_chunks(
        trips, options_.exec_threads, plan.doall ? 0 : plan.distance);
    if (chunks.size() < 2) return decline();

    // -- Committed to parallel execution. -------------------------------
    if (pool_ == nullptr) {
      pool_ = std::make_unique<parexec::WorkerPool>(options_.exec_threads);
    }
    parexec::ProgressBoard board(chunks);
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::uint64_t> par_total{0};
    const std::uint64_t base_executed = ctx.executed;
    std::vector<std::uint64_t> chunk_insns(chunks.size(), 0);
    std::vector<std::vector<Value>> chunk_partials(
        chunks.size(), std::vector<Value>(plan.reductions.size()));
    std::vector<Value> last_regs;

    const auto work = [&](unsigned lane) {
      ExecCtx wctx;
      wctx.is_worker = true;
      wctx.depth = ctx.depth;
      wctx.hard_cap = options_.max_insns;
      if (lane == 0) {
        wctx.stack_top = ctx.stack_top;
        wctx.stack_limit = master_limit_;
      } else {
        wctx.stack_top = memory_.size() -
                         (options_.exec_threads - lane) * worker_stack_size_;
        wctx.stack_limit = wctx.stack_top + worker_stack_size_;
      }
      std::uint64_t flushed = 0;
      const auto flush_budget = [&] {
        const std::uint64_t delta = wctx.executed - flushed;
        flushed = wctx.executed;
        if (base_executed + par_total.fetch_add(delta) + delta >
            options_.max_insns) {
          board.abort();
          fail("instruction budget exceeded");
        }
      };
      std::vector<Value> wregs;
      for (;;) {
        const std::size_t c = next_chunk.fetch_add(1);
        if (c >= chunks.size() || board.aborted()) break;
        const parexec::Chunk chunk = chunks[c];
        const std::uint64_t before = wctx.executed;
        // Fresh private registers per chunk.  Every loop-defined register
        // is re-defined before its first read inside an iteration (the
        // planner rejected cross-iteration register flow), so the master
        // snapshot is a valid starting state for ANY iteration.
        wregs = regs;
        for (std::size_t k = 0; k < plan.reductions.size(); ++k) {
          wregs[plan.reductions[k].reg] =
              reduction_identity(plan.reductions[k].kind);
        }
        for (std::uint64_t i = chunk.begin; i < chunk.end; ++i) {
          if (!plan.doall) {
            // Post-wait on the proven distance: everything at or before
            // i - d must be complete.  A source inside this chunk is
            // already ordered by sequential execution — sync elided.
            const std::int64_t j =
                static_cast<std::int64_t>(i) - plan.distance;
            if (j >= 0 && static_cast<std::uint64_t>(j) < chunk.begin) {
              if (!board.wait_for_prefix(static_cast<std::uint64_t>(j))) {
                return;  // Aborted elsewhere; that lane carries the error.
              }
            }
          }
          wregs[iv].i = iv0 + static_cast<std::int64_t>(i) * plan.step;
          exec_slice(func, wregs, plan.cond_begin, plan.exit_branch,
                     frame_base, wctx);
          exec_slice(func, wregs, plan.body_begin, plan.body_end, frame_base,
                     wctx);
          if (!plan.doall) board.publish(c, i - chunk.begin + 1);
          if (wctx.executed - flushed >= 65536) flush_budget();
        }
        flush_budget();
        chunk_insns[c] = wctx.executed - before;
        for (std::size_t k = 0; k < plan.reductions.size(); ++k) {
          chunk_partials[c][k] = wregs[plan.reductions[k].reg];
        }
        if (c + 1 == chunks.size()) last_regs = std::move(wregs);
      }
    };
    const std::function<void(unsigned)> job = [&](unsigned lane) {
      try {
        work(lane);
      } catch (...) {
        board.abort();  // Wake post-waiters so the pool can join.
        throw;
      }
    };
    // Reduction initial values (untouched by trip counting: they live in
    // the body) are folded below, in chunk order — integer ops only, so
    // the result equals the serial left fold exactly.
    std::vector<Value> red_init(plan.reductions.size());
    for (std::size_t k = 0; k < plan.reductions.size(); ++k) {
      red_init[k] = regs[plan.reductions[k].reg];
    }
    try {
      pool_->run(job);
    } catch (const std::runtime_error& e) {
      if (std::string(e.what()).find("instruction budget exceeded") !=
          std::string::npos) {
        ctx.executed = options_.max_insns + 1;  // Serial's trap count.
      }
      throw;
    }

    // -- Join: reconstruct the exact serial end-of-loop state. ----------
    std::uint64_t workers_total = 0;
    for (const std::uint64_t n : chunk_insns) workers_total += n;
    ctx.executed += workers_total +
                    trips * (step_insns + 4) +  // Skipped notes/step/jump.
                    exit_cost;                  // Final predicate round.
    if (ctx.executed > options_.max_insns) {
      // Callee work pushed the real total past the budget after all; a
      // serial run would have trapped mid-loop.
      ctx.executed = options_.max_insns + 1;
      fail("instruction budget exceeded");
    }
    // Last iteration's values for every register the loop defines...
    for (const std::int32_t r : plan.iter_defs) regs[r] = last_regs[r];
    // ...reductions folded over the chunk partials in chunk order...
    for (std::size_t k = 0; k < plan.reductions.size(); ++k) {
      Value acc = red_init[k];
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        combine_reduction(plan.reductions[k].kind, acc, chunk_partials[c][k]);
      }
      regs[plan.reductions[k].reg] = acc;
    }
    // ...then the last step round (scratch + IV) and the exit predicate
    // round, replayed in place.  Both slices are already accounted for in
    // the structural counts above, so the replays run uncounted.
    ExecCtx replay;
    replay.hard_cap = UINT64_MAX;
    regs[iv].i = iv0 + static_cast<std::int64_t>(trips - 1) * plan.step;
    exec_slice(func, regs, plan.step_begin, plan.backedge, frame_base, replay);
    exec_slice(func, regs, plan.cond_begin, plan.exit_branch, frame_base,
               replay);

    if (dispatched_.insert(&plan).second) ++stats_.loops_parallelized;
    ++stats_.invocations;
    stats_.chunks += chunks.size();
    stats_.par_iterations += trips;
    stats_.par_insns += workers_total;
    if (!plan.doall) stats_.ordered_insns += workers_total;
    if (!plan.doall) {
      const parexec::SyncCounts sync =
          parexec::structural_sync_counts(chunks, plan.distance);
      stats_.sync_waits += sync.waits;
      stats_.sync_elided += sync.elided;
    }
    return true;
  }

  static constexpr std::size_t analysis_max_reg_args() { return 4; }

  const RtlProgram& prog_;
  TraceSink* sink_;
  InterpOptions options_;
  std::vector<std::uint8_t> memory_;
  std::vector<std::uint64_t> global_base_;
  std::uint64_t stack_base_ = 0;
  std::uint64_t master_limit_ = 0;
  std::uint64_t worker_stack_size_ = 0;
  bool par_enabled_ = false;
  std::unordered_map<const RtlFunction*, std::unordered_map<std::int32_t, std::size_t>>
      labels_;
  std::uint64_t output_hash_ = 1469598103934665603ull;
  std::uint64_t emit_count_ = 0;
  ParexecStats stats_;
  std::unordered_set<const LoopPlan*> dispatched_;
  std::unique_ptr<parexec::WorkerPool> pool_;
};

}  // namespace

RunResult run_program(const RtlProgram& prog, const std::string& entry,
                      TraceSink* sink, const InterpOptions& options) {
  Interp interp(prog, sink, options);
  return interp.run(entry);
}

}  // namespace hli::backend
