#include "backend/mapping.hpp"

#include <unordered_map>

#include "support/telemetry.hpp"

namespace hli::backend {

using namespace format;

namespace {
const telemetry::Counter c_items_mapped = telemetry::counter("map.items_mapped");
const telemetry::Counter c_refs_unmapped =
    telemetry::counter("map.refs_unmapped");
const telemetry::Counter c_items_orphaned =
    telemetry::counter("map.items_orphaned");
const telemetry::Counter c_mismatches = telemetry::counter("map.mismatches");
}  // namespace

void MapResult::record_telemetry() const {
  c_items_mapped.add(mapped);
  c_refs_unmapped.add(insn_without_item);
  c_items_orphaned.add(item_without_insn);
  c_mismatches.add(mismatches.size());
}

namespace {

bool compatible(Opcode op, ItemType type) {
  switch (op) {
    case Opcode::Load: return type == ItemType::Load || type == ItemType::ArgLoad;
    case Opcode::Store:
      return type == ItemType::Store || type == ItemType::ArgStore;
    case Opcode::Call: return type == ItemType::Call;
    default: return false;
  }
}

}  // namespace

MapResult map_items(RtlFunction& func, const HliEntry& entry) {
  MapResult result;
  // Per-line consumption cursor over the HLI line table.
  std::unordered_map<std::uint32_t, std::size_t> cursor;

  for (Insn& insn : func.insns) {
    const bool wants_item = is_memory_op(insn.op) || insn.op == Opcode::Call;
    if (!wants_item) continue;
    const LineEntry* line = entry.line_table.find_line(insn.line);
    std::size_t& at = cursor[insn.line];
    if (line == nullptr || at >= line->items.size()) {
      ++result.insn_without_item;
      result.mismatches.push_back("line " + std::to_string(insn.line) +
                                  ": back-end reference has no HLI item");
      continue;
    }
    const ItemEntry& item = line->items[at];
    if (!compatible(insn.op, item.type)) {
      ++result.insn_without_item;
      result.mismatches.push_back(
          "line " + std::to_string(insn.line) + ": item " +
          std::to_string(item.id) + " type " + format::to_string(item.type) +
          " does not match insn");
      ++at;  // Skip the item to avoid cascading.
      continue;
    }
    ++at;
    ++result.mapped;
    if (insn.op == Opcode::Call) {
      insn.hli_item = item.id;
    } else {
      insn.mem.hli_item = item.id;
    }
  }

  // Count leftover items.
  for (const LineEntry& line : entry.line_table.lines()) {
    const auto it = cursor.find(line.line);
    const std::size_t used = it != cursor.end() ? it->second : 0;
    if (used < line.items.size()) {
      result.item_without_insn += line.items.size() - used;
      result.mismatches.push_back("line " + std::to_string(line.line) + ": " +
                                  std::to_string(line.items.size() - used) +
                                  " items unmatched");
    }
  }
  return result;
}

}  // namespace hli::backend
