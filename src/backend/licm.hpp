// Loop-invariant code motion (§3.2.2: "a memory reference can be moved out
// of a loop only when there remains no other memory reference in the loop
// that can possibly alias the memory reference").  Pure computations with
// loop-invariant inputs always hoist; loads additionally need the
// no-conflicting-store/no-clobbering-call check — natively via the GCC
// oracle, or sharpened by HLI alias + call REF/MOD queries.
//
// Hoisted loads are items moved to the enclosing region: the pass reports
// them so the driver can run HLI maintenance (move_item_to_region).
#pragma once

#include <cstdint>
#include <functional>

#include "backend/depinfo.hpp"
#include "backend/rtl.hpp"
#include "hli/query.hpp"

namespace hli::backend {

struct LicmStats {
  std::uint64_t pure_hoisted = 0;
  std::uint64_t loads_hoisted = 0;
  std::uint64_t loads_blocked_native = 0;  ///< GCC oracle said "may conflict".
  std::uint64_t loads_blocked_hli = 0;     ///< HLI also said "may conflict".

  LicmStats& operator+=(const LicmStats& other) {
    pure_hoisted += other.pure_hoisted;
    loads_hoisted += other.loads_hoisted;
    loads_blocked_native += other.loads_blocked_native;
    loads_blocked_hli += other.loads_blocked_hli;
    return *this;
  }

  /// Feeds the `licm.*` telemetry counters (docs/observability.md).
  void record_telemetry() const;
};

struct LicmOptions {
  bool use_hli = false;
  const query::HliUnitView* view = nullptr;
  /// Build one BlockConflictMatrix per loop (conflict + loop-carried +
  /// call planes) and answer the hoisting-safety queries with bit tests;
  /// bit-identical to the scalar view, so hoisting decisions are too.
  bool batch_queries = false;
  /// Called for every hoisted load's item with the loop region it left, so
  /// the driver can update the HLI (maintenance move_item_to_region).
  std::function<void(format::ItemId, format::RegionId)> on_load_hoisted;
  /// Independent back-end dependence oracle (PipelineOptions::
  /// irdep_fallback): when set, a store only blocks hoisting if the oracle
  /// also admits a same-iteration or loop-carried conflict, and a call
  /// only blocks if the oracle says it may write the location.  The pass
  /// calls refresh() before each loop it processes (hoisting rewrites the
  /// insn stream, invalidating prior indices).
  DepOracle* fallback = nullptr;
};

/// Hoists invariants out of every innermost loop of `func`, in place.
LicmStats licm_function(RtlFunction& func, const LicmOptions& options);

}  // namespace hli::backend
