#include "backend/cse.hpp"

#include <cstring>
#include <map>
#include <unordered_map>
#include <tuple>
#include <vector>

#include "backend/gcc_alias.hpp"
#include "hli/batch_query.hpp"
#include "support/telemetry.hpp"

namespace hli::backend {

namespace {
const telemetry::Counter c_batch_pairs =
    telemetry::counter("query.batch_pairs");
const telemetry::Counter c_batch_fallbacks =
    telemetry::counter("query.batch_fallbacks");
const telemetry::Counter c_exprs_reused = telemetry::counter("cse.exprs_reused");
const telemetry::Counter c_loads_reused = telemetry::counter("cse.loads_reused");
const telemetry::Counter c_loads_deleted =
    telemetry::counter("cse.loads_deleted");
const telemetry::Counter c_purged_at_calls =
    telemetry::counter("cse.entries_purged_at_calls");
const telemetry::Counter c_kept_at_calls =
    telemetry::counter("cse.entries_kept_at_calls");
}  // namespace

void CseStats::record_telemetry() const {
  c_exprs_reused.add(exprs_reused);
  c_loads_reused.add(loads_reused);
  c_loads_deleted.add(loads_deleted);
  c_purged_at_calls.add(entries_purged_at_calls);
  c_kept_at_calls.add(entries_kept_at_calls);
}

namespace {

[[nodiscard]] bool block_boundary(const Insn& insn) {
  switch (insn.op) {
    case Opcode::Label:
    case Opcode::Jump:
    case Opcode::BranchZ:
    case Opcode::BranchNZ:
    case Opcode::Return:
    case Opcode::LoopBeg:
    case Opcode::LoopEnd:
      return true;
    default:
      return false;
  }
}

/// Is this opcode a pure value computation safe to reuse?
[[nodiscard]] bool pure_value_op(Opcode op) {
  switch (op) {
    case Opcode::LoadImm:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Neg:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::IntToFp:
    case Opcode::FpToInt:
    case Opcode::LoadAddr:
      return true;
    default:
      return false;
  }
}

/// Per-function scratch for batched invalidation queries: the conflict
/// matrix and its item lists keep their capacity across blocks.
struct CseScratch {
  std::vector<format::ItemId> mem_items;
  std::vector<format::ItemId> call_items;
  query::BlockConflictMatrix matrix;
};

class BlockCse {
 public:
  BlockCse(RtlFunction& func, std::size_t begin, std::size_t end,
           const CseOptions& options, CseStats& stats, CseScratch& scratch)
      : func_(func), begin_(begin), end_(end), options_(options), stats_(stats),
        scratch_(scratch) {}

  void run() {
    prepare_matrix();
    for (std::size_t at = begin_; at < end_; ++at) {
      Insn& insn = func_.insns[at];
      // Sequencing matters: (1) look up reuse against the PRE-insn tables,
      // (2) kill entries mentioning the redefined register, (3) record the
      // new value.  Doing (3) before (2) would erase the fresh entry.
      switch (insn.op) {
        case Opcode::Store:
          invalidate_stores(insn, at);
          break;
        case Opcode::Call:
          invalidate_call(insn, at);
          if (insn.rd != kNoReg) kill_register(insn.rd);
          break;
        case Opcode::Load: {
          const Reg address = resolve(insn.rs1);
          const MemRef mem = insn.mem;
          const Reg value = insn.rd;
          const bool reused = try_reuse_load(insn);
          kill_register(value);
          if (reused) {
            copies_[value] = resolve(insn.rs1);  // insn is a Move now.
          } else {
            LoadEntry entry;
            entry.address = address;
            entry.const_offset = mem.const_offset;
            entry.value = value;
            entry.mem = mem;
            entry.pos = at;
            loads_.push_back(entry);
          }
          break;
        }
        default:
          if (pure_value_op(insn.op)) {
            const Key key = key_of(insn);
            const Reg value = insn.rd;
            const bool reused = try_reuse_pure(insn, key);
            kill_register(value);
            if (reused) {
              copies_[value] = resolve(insn.rs1);  // insn is a Move now.
            } else {
              values_.emplace(key, value);
            }
          } else if (insn.op == Opcode::Move && insn.rd != kNoReg) {
            const Reg src = resolve(insn.rs1);
            kill_register(insn.rd);
            if (src != insn.rd) copies_[insn.rd] = src;
          } else if (insn.rd != kNoReg) {
            kill_register(insn.rd);
          }
          break;
      }
    }
  }

 private:
  using Key = std::tuple<Opcode, bool, Reg, Reg, std::int64_t, std::int64_t>;
  static constexpr std::uint32_t kNoSlot = query::BlockConflictMatrix::kNoSlot;

  /// Builds one conflict matrix over the block's memory and call items so
  /// every invalidation question below is a bit test.
  void prepare_matrix() {
    if (!options_.batch_queries || !options_.use_hli ||
        options_.view == nullptr) {
      return;
    }
    scratch_.mem_items.clear();
    scratch_.call_items.clear();
    for (std::size_t at = begin_; at < end_; ++at) {
      const Insn& insn = func_.insns[at];
      if (is_memory_op(insn.op) && insn.mem.hli_item != format::kNoItem) {
        scratch_.mem_items.push_back(insn.mem.hli_item);
      } else if (insn.op == Opcode::Call &&
                 insn.hli_item != format::kNoItem) {
        scratch_.call_items.push_back(insn.hli_item);
      }
    }
    scratch_.matrix.build(*options_.view, scratch_.mem_items,
                          scratch_.call_items);
    batched_ = true;
  }

  /// may_conflict(a, b) != None, from the matrix when batching.
  [[nodiscard]] bool mem_conflict(format::ItemId a, format::ItemId b) const {
    if (batched_) {
      const std::uint32_t sa = scratch_.matrix.slot_of(a);
      const std::uint32_t sb = scratch_.matrix.slot_of(b);
      if (sa != kNoSlot && sb != kNoSlot) {
        c_batch_pairs.add();
        return scratch_.matrix.conflict(sa, sb);
      }
      c_batch_fallbacks.add();
    }
    return options_.view->may_conflict(a, b) != query::EquivAcc::None;
  }

  [[nodiscard]] query::CallAcc call_acc(format::ItemId mem,
                                        format::ItemId call) const {
    if (batched_) {
      const std::uint32_t sm = scratch_.matrix.slot_of(mem);
      const std::uint32_t sc = scratch_.matrix.call_slot_of(call);
      if (sm != kNoSlot && sc != kNoSlot) {
        c_batch_pairs.add();
        return scratch_.matrix.call_acc(sm, sc);
      }
      c_batch_fallbacks.add();
    }
    return options_.view->get_call_acc(mem, call);
  }

  struct LoadEntry {
    Reg address = kNoReg;
    std::int64_t const_offset = 0;
    Reg value = kNoReg;
    MemRef mem;
    std::size_t pos = 0;  ///< Insn index of the load (for the fallback oracle).
  };

  /// Follows the local copy chain so value numbering sees through Moves.
  [[nodiscard]] Reg resolve(Reg r) const {
    while (true) {
      const auto it = copies_.find(r);
      if (it == copies_.end()) return r;
      r = it->second;
    }
  }

  Key key_of(const Insn& insn) const {
    std::int64_t imm = insn.imm;
    if (insn.op == Opcode::LoadImm && insn.is_float) {
      std::int64_t bits = 0;
      static_assert(sizeof(double) == sizeof(std::int64_t));
      std::memcpy(&bits, &insn.fimm, sizeof(bits));
      imm = bits;
    }
    // LoadAddr reuses `label` as a symbol id: include it in the key.
    return {insn.op, insn.is_float, resolve(insn.rs1), resolve(insn.rs2), imm,
            insn.label};
  }

  /// Rewrites `insn` into a Move when the value exists; returns true then.
  bool try_reuse_pure(Insn& insn, const Key& key) {
    const auto it = values_.find(key);
    if (it == values_.end()) return false;
    ++stats_.exprs_reused;
    Insn replacement;
    replacement.op = Opcode::Move;
    replacement.is_float = insn.is_float;
    replacement.rd = insn.rd;
    replacement.rs1 = it->second;
    replacement.line = insn.line;
    insn = std::move(replacement);
    return true;
  }

  bool try_reuse_load(Insn& insn) {
    for (const LoadEntry& entry : loads_) {
      if (entry.address == resolve(insn.rs1) &&
          entry.const_offset == insn.mem.const_offset &&
          entry.mem.size == insn.mem.size) {
        ++stats_.loads_reused;
        ++stats_.loads_deleted;
        if (options_.on_load_deleted && insn.mem.hli_item != format::kNoItem) {
          options_.on_load_deleted(insn.mem.hli_item);
        }
        Insn replacement;
        replacement.op = Opcode::Move;
        replacement.is_float = insn.is_float;
        replacement.rd = insn.rd;
        replacement.rs1 = entry.value;
        replacement.line = insn.line;
        insn = std::move(replacement);
        return true;
      }
    }
    return false;
  }

  void invalidate_stores(const Insn& store, std::size_t store_pos) {
    std::erase_if(loads_, [&](const LoadEntry& entry) {
      bool conflict = gcc_may_conflict(entry.mem, store.mem);
      if (conflict && options_.use_hli && options_.view != nullptr &&
          entry.mem.hli_item != format::kNoItem &&
          store.mem.hli_item != format::kNoItem) {
        conflict = mem_conflict(entry.mem.hli_item, store.mem.hli_item);
      }
      if (conflict && options_.fallback != nullptr) {
        conflict = options_.fallback->may_conflict(entry.pos, store_pos);
      }
      return conflict;
    });
  }

  /// Figure 4: on a call, natively purge everything; with HLI REF/MOD
  /// (or the independent fallback oracle), only entries the callee may
  /// modify.
  void invalidate_call(const Insn& call, std::size_t call_pos) {
    const bool have_hli = options_.use_hli && options_.view != nullptr &&
                          call.hli_item != format::kNoItem;
    if (!have_hli && options_.fallback == nullptr) {
      stats_.entries_purged_at_calls += loads_.size();
      loads_.clear();
      return;
    }
    std::erase_if(loads_, [&](const LoadEntry& entry) {
      bool clobbered = true;
      if (have_hli && entry.mem.hli_item != format::kNoItem) {
        const query::CallAcc acc =
            call_acc(entry.mem.hli_item, call.hli_item);
        clobbered = acc == query::CallAcc::Mod || acc == query::CallAcc::RefMod;
      }
      if (clobbered && options_.fallback != nullptr) {
        clobbered = (options_.fallback->call_effect(call_pos, entry.pos) &
                     kCallWritesLoc) != 0;
      }
      if (clobbered) {
        ++stats_.entries_purged_at_calls;
      } else {
        ++stats_.entries_kept_at_calls;
      }
      return clobbered;
    });
  }

  void kill_register(Reg reg) {
    std::erase_if(values_, [reg](const auto& kv) {
      const Key& key = kv.first;
      return std::get<2>(key) == reg || std::get<3>(key) == reg ||
             kv.second == reg;
    });
    std::erase_if(loads_, [reg](const LoadEntry& entry) {
      return entry.address == reg || entry.value == reg;
    });
    std::erase_if(copies_, [reg](const auto& kv) {
      return kv.first == reg || kv.second == reg;
    });
  }

  RtlFunction& func_;
  std::size_t begin_;
  std::size_t end_;
  const CseOptions& options_;
  CseStats& stats_;
  CseScratch& scratch_;
  bool batched_ = false;
  std::map<Key, Reg> values_;
  std::vector<LoadEntry> loads_;
  std::unordered_map<Reg, Reg> copies_;
};

}  // namespace

CseStats cse_function(RtlFunction& func, const CseOptions& options) {
  CseStats stats;
  CseScratch scratch;  // One arena for all blocks of the function.
  std::size_t at = 0;
  while (at < func.insns.size()) {
    if (block_boundary(func.insns[at])) {
      ++at;
      continue;
    }
    std::size_t end = at;
    while (end < func.insns.size() && !block_boundary(func.insns[end])) ++end;
    BlockCse cse(func, at, end, options, stats, scratch);
    cse.run();
    at = end;
  }
  return stats;
}

}  // namespace hli::backend
