// Local common-subexpression elimination, modeled on GCC's CSE pass as the
// paper describes it (§3.2.2, Figure 4): value-numbered expressions and
// loads are reused within a basic block; a store invalidates conflicting
// loads; a CALL natively purges every memory-derived value ("GCC
// pessimistically assumes that the function can change any memory
// location") — unless HLI call REF/MOD information selectively keeps
// entries the callee cannot modify.
#pragma once

#include <cstdint>
#include <functional>

#include "backend/depinfo.hpp"
#include "backend/rtl.hpp"
#include "hli/query.hpp"

namespace hli::backend {

struct CseStats {
  std::uint64_t exprs_reused = 0;
  std::uint64_t loads_reused = 0;
  std::uint64_t entries_purged_at_calls = 0;
  std::uint64_t entries_kept_at_calls = 0;  ///< Survived thanks to REF/MOD.
  std::uint64_t loads_deleted = 0;          ///< == loads_reused; kept for clarity.

  CseStats& operator+=(const CseStats& other) {
    exprs_reused += other.exprs_reused;
    loads_reused += other.loads_reused;
    entries_purged_at_calls += other.entries_purged_at_calls;
    entries_kept_at_calls += other.entries_kept_at_calls;
    loads_deleted += other.loads_deleted;
    return *this;
  }

  /// Feeds the `cse.*` telemetry counters (docs/observability.md).
  void record_telemetry() const;
};

struct CseOptions {
  bool use_hli = false;
  const query::HliUnitView* view = nullptr;
  /// Build one BlockConflictMatrix per basic block and answer the store/
  /// call invalidation queries with bit tests (answers are bit-identical
  /// to the scalar view, so the rewritten RTL is too).
  bool batch_queries = false;
  /// Invoked for every load insn CSE deletes, BEFORE the rewrite, so the
  /// caller can run HLI maintenance (delete_item) on the mapped item.
  std::function<void(format::ItemId)> on_load_deleted;
  /// Independent back-end dependence oracle (PipelineOptions::
  /// irdep_fallback): when set, a store only invalidates a remembered load
  /// if the oracle also admits a conflict, and a call only purges entries
  /// it may write.  CSE rewrites loads in place (no insn is inserted or
  /// removed during the pass), so positions recorded at entry creation
  /// stay valid for the oracle's index-based queries.
  DepOracle* fallback = nullptr;
};

/// Runs local CSE over every basic block of `func` in place.
CseStats cse_function(RtlFunction& func, const CseOptions& options);

}  // namespace hli::backend
