// Parallel execution plans — the contract between the backend::parallelize
// planner (which proves a loop DOALL / DOACROSS(d) from the union of HLI
// LCDD facts and the independent RTL-level analyzer) and the interpreter's
// parallel dispatch (src/backend/interp.cpp), which executes planned loops
// on a worker pool with chunked iteration scheduling.
//
// A plan is a pure annotation: it never changes the instruction stream, so
// RTL dumps are byte-identical with planning on or off, and a plan the
// runtime declines (trip too short, nested inside a worker, budget) simply
// falls back to ordinary serial execution of the same instructions.
//
// Position fields index the function's insns at plan time; the planner
// runs after ALL transforming passes, so the positions stay valid for the
// whole execution. All positions refer to the canonical For-loop shape the
// analyzer re-verified (form.hpp):
//
//   loop_beg:   LoopBeg
//   loop_beg+1: Label top
//   [cond_begin, exit_branch): predicate computation (pure reg ops)
//   exit_branch: BranchZ/NZ -> Label end
//   [body_begin, body_end): straight-line body (pure Calls allowed)
//   body_end:   Label cont
//   [step_begin, backedge): step region (pure reg ops, defines the IV)
//   backedge:   Jump top
//   loop_end-1: Label end
//   loop_end:   LoopEnd
#pragma once

#include <cstdint>
#include <vector>

namespace hli::backend {

/// How per-chunk partial values of a privatized accumulator register are
/// combined back into the master's register.  Only exact (integer)
/// reductions are recognized: float accumulation would reassociate and
/// break byte-identical output, so float accumulators reject the plan.
enum class ReductionKind : std::uint8_t {
  Add,  ///< r = r + x   (identity 0, combine with +; also r = r - x).
  Mul,  ///< r = r * x   (identity 1, combine with *).
  And,  ///< r = r & x   (identity ~0, combine with &).
  Or,   ///< r = r | x   (identity 0, combine with |).
  Xor,  ///< r = r ^ x   (identity 0, combine with ^).
};

struct ReductionPlan {
  std::int32_t reg = -1;          ///< The accumulator register.
  ReductionKind kind = ReductionKind::Add;
  std::uint32_t pos = 0;          ///< The single body insn `r = r op x`.
};

/// One parallelizable loop.  `doall` loops run chunks fully concurrently;
/// otherwise every carried dependence was proven to have distance >=
/// `distance` and chunks run under post-wait synchronization on exactly
/// that distance (iteration i proceeds once every iteration <= i-distance
/// has completed), with the sync elided for iterations whose dependence
/// source lands in their own chunk.
struct LoopPlan {
  std::uint32_t loop_beg = 0;
  std::uint32_t loop_end = 0;
  bool doall = true;
  std::int64_t distance = 0;      ///< Proven min carried distance (DOACROSS).

  // Canonical-shape positions (see file comment).
  std::uint32_t cond_begin = 0;   ///< loop_beg + 2.
  std::uint32_t exit_branch = 0;
  std::uint32_t body_begin = 0;   ///< exit_branch + 1.
  std::uint32_t body_end = 0;     ///< The Label cont position.
  std::uint32_t step_begin = 0;   ///< body_end + 1.
  std::uint32_t backedge = 0;     ///< The Jump top position.

  std::int32_t induction = -1;
  std::int64_t step = 0;          ///< Verified per-iteration IV delta.

  /// Registers defined in [cond_begin, body_end) — privatized per worker;
  /// the last iteration's values are copied back after the join so
  /// post-loop reads see exactly the serial state.  Excludes reductions.
  std::vector<std::int32_t> iter_defs;
  std::vector<ReductionPlan> reductions;
};

}  // namespace hli::backend
