#include "backend/parexec/runtime.hpp"

#include <algorithm>
#include <thread>

namespace hli::backend::parexec {

std::vector<Chunk> plan_chunks(std::uint64_t trips, unsigned workers,
                               std::int64_t distance) {
  std::vector<Chunk> chunks;
  if (trips == 0) return chunks;
  if (workers == 0) workers = 1;
  // DOALL: ~8 chunks per lane balances uneven bodies without drowning the
  // run in scheduling; DOACROSS: fewer, larger chunks — each must span at
  // least 2*d so the in-chunk prefix covers the dependence for the tail.
  std::uint64_t size;
  if (distance <= 0) {
    size = std::max<std::uint64_t>(1, trips / (workers * 8u));
  } else {
    size = std::max<std::uint64_t>(2 * static_cast<std::uint64_t>(distance),
                                   trips / (workers * 4u));
  }
  for (std::uint64_t begin = 0; begin < trips; begin += size) {
    chunks.push_back({begin, std::min(trips, begin + size)});
  }
  return chunks;
}

SyncCounts structural_sync_counts(const std::vector<Chunk>& chunks,
                                  std::int64_t distance) {
  SyncCounts counts;
  if (distance <= 0) return counts;
  const std::uint64_t d = static_cast<std::uint64_t>(distance);
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    const std::uint64_t len = chunks[c].size();
    // Iterations i with i - d >= chunk.begin are ordered after their
    // source by the chunk's own sequential execution: sync elided.
    counts.elided += len > d ? len - d : 0;
    // The first min(d, len) iterations of a non-first chunk depend on an
    // earlier chunk and post-wait on the board.  (Chunk 0's head has no
    // source at all: i - d < 0 is not a dependence.)
    if (c > 0) counts.waits += std::min(d, len);
  }
  return counts;
}

ProgressBoard::ProgressBoard(const std::vector<Chunk>& chunks)
    : chunks_(chunks),
      progress_(new std::atomic<std::uint64_t>[chunks.size()]) {
  for (std::size_t c = 0; c < chunks_.size(); ++c) {
    progress_[c].store(0, std::memory_order_relaxed);
  }
}

void ProgressBoard::publish(std::size_t chunk, std::uint64_t completed) {
  progress_[chunk].store(completed, std::memory_order_release);
}

bool ProgressBoard::wait_for_prefix(std::uint64_t target) {
  // Chunk holding `target`, by scan: chunk counts are tiny (a few dozen).
  std::size_t cj = 0;
  while (cj < chunks_.size() && chunks_[cj].end <= target) ++cj;
  if (cj == chunks_.size()) return !aborted();
  const std::uint64_t need_in_cj = target - chunks_[cj].begin + 1;
  for (std::size_t c = 0; c <= cj; ++c) {
    const std::uint64_t need = c == cj ? need_in_cj : chunks_[c].size();
    unsigned spins = 0;
    while (progress_[c].load(std::memory_order_acquire) < need) {
      if (aborted()) return false;
      // Brief spin, then yield: the expected wait is one predecessor
      // iteration, but on an oversubscribed machine the predecessor may
      // need this very core.
      if (++spins > 64) {
        std::this_thread::yield();
      }
    }
  }
  return true;
}

}  // namespace hli::backend::parexec
