#include "backend/parexec/pool.hpp"

#include <exception>
#include <stdexcept>

namespace hli::backend::parexec {

WorkerPool::WorkerPool(unsigned workers) : workers_(workers == 0 ? 1 : workers) {}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(unsigned)>& job) {
  if (workers_ <= 1) {
    job(0);
    return;
  }
  if (threads_.empty()) {
    threads_.reserve(workers_ - 1);
    for (unsigned lane = 1; lane < workers_; ++lane) {
      threads_.emplace_back([this, lane] { worker_main(lane); });
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &job;
    error_set_ = false;
    error_.clear();
    remaining_ = workers_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  // The caller is lane 0: it does a full share of the work instead of
  // blocking, so a "4-thread" run really uses 4 execution lanes.
  try {
    job(0);
  } catch (const std::exception& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_set_) {
      error_set_ = true;
      error_ = e.what();
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  if (error_set_) {
    const std::string message = error_;
    lock.unlock();
    throw std::runtime_error(message);
  }
}

void WorkerPool::worker_main(unsigned lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen] {
        return shutdown_ || generation_ != seen;
      });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(lane);
    } catch (const std::exception& e) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_set_) {
        error_set_ = true;
        error_ = e.what();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace hli::backend::parexec
