// The parallel execution planner: proves loops of the FINAL instruction
// stream safe for multi-threaded execution and annotates them with
// LoopPlans (plan.hpp) the interpreter dispatches at exec_threads > 1.
//
// Evidence comes from the union of two fact sources, exactly like the
// combined column of the loop classifier (analysis/irdep/classify.hpp):
// the independent RTL-level analyzer's carried() answers and — when an
// HLI unit is available — the HLI equivalence-class / LCDD tables.
// Either source alone can prove a loop (so planning works in no-HLI
// irdep_fallback builds), and each store pair takes the STRONGER of the
// two distance bounds.
//
// Planning is strictly more demanding than classification: beyond "no
// short-distance carried dependence" the loop must be executable out of
// order by lanes that only share the memory image —
//
//   * canonical innermost shape (form.hpp re-verified post-transforms);
//   * predicate and step regions of pure register ops, so the runtime
//     can trip-count ahead and replay the final rounds;
//   * no register carries a value between iterations except the IV and
//     recognized integer reductions (privatized per chunk);
//   * body calls provably memoryless and IO-free;
//   * no float accumulator (combining partials would reassociate).
//
// Plans never change the instruction stream; a loop the runtime declines
// simply executes serially.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/irdep/classify.hpp"
#include "analysis/irdep/refmod.hpp"
#include "backend/rtl.hpp"

namespace hli::backend::parexec {

struct PlanOptions {
  /// HLI tables for the unit (nullable: irdep facts alone then).
  const query::HliUnitView* view = nullptr;
  /// Classifier reports to annotate with the plan column (nullable);
  /// matched by region id / source line since instruction positions
  /// shift between classification time and plan time.
  std::vector<irdep::LoopReport>* reports = nullptr;
};

struct PlanStats {
  std::uint64_t planned_doall = 0;
  std::uint64_t planned_doacross = 0;
  std::uint64_t rejected = 0;  ///< Innermost canonical loops that failed.
};

/// Fills `func.parexec` with every provable plan.  Idempotent: clears
/// previous plans first.
PlanStats parallelize_function(const irdep::ProgramDepInfo& prog,
                               RtlFunction& func,
                               const PlanOptions& options = {});

}  // namespace hli::backend::parexec
