// Chunked iteration scheduling and the DOACROSS post-wait protocol for
// the parallel loop execution runtime (docs/parallel-execution.md).
//
// Everything here is deliberately free of interpreter state so the
// scheduling and synchronization logic can be unit-tested (and TSan'd)
// in isolation:
//
//  * plan_chunks() — split a trip count into contiguous chunks.  DOACROSS
//    chunks are sized to at least twice the proven dependence distance so
//    that most iterations find their dependence source inside their own
//    chunk and need no synchronization at all (sync elision, after Liao
//    et al.'s one-partition-covers-the-distance observation).
//  * structural_sync_counts() — the number of post-wait operations a
//    chunking implies, computed from the shape alone.  The runtime
//    reports THESE deterministic counts (not "how often a wait actually
//    blocked", which depends on timing), so parexec.* telemetry is
//    byte-identical across thread counts and machines.
//  * ProgressBoard — the post-wait board: per-chunk completed-iteration
//    counters with release/acquire publication.  wait_for_prefix(j)
//    blocks until every iteration <= j has completed, which covers every
//    carried dependence of distance >= d when called with j = i - d.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace hli::backend::parexec {

/// Contiguous iteration range [begin, end).
struct Chunk {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t size() const { return end - begin; }
};

/// Splits `trips` iterations into chunks for `workers` lanes.  DOALL
/// (`distance` == 0) aims for several chunks per lane so uneven bodies
/// balance; DOACROSS (`distance` >= 1) enforces a chunk size of at least
/// 2*distance so consecutive chunks cover the dependence and the
/// cross-chunk wait count stays at min(d, chunk) per boundary.
[[nodiscard]] std::vector<Chunk> plan_chunks(std::uint64_t trips,
                                             unsigned workers,
                                             std::int64_t distance);

/// Deterministic post-wait accounting for a chunking under dependence
/// distance `d`: `waits` counts iterations whose dependence source lies
/// in an earlier chunk (a real cross-chunk post-wait), `elided` those
/// whose source lies in their own chunk (sequential execution inside the
/// chunk already orders them — the sync is provably unnecessary).
struct SyncCounts {
  std::uint64_t waits = 0;
  std::uint64_t elided = 0;
};
[[nodiscard]] SyncCounts structural_sync_counts(
    const std::vector<Chunk>& chunks, std::int64_t distance);

class ProgressBoard {
 public:
  explicit ProgressBoard(const std::vector<Chunk>& chunks);

  /// Publishes that the first `completed` iterations of `chunk` are done
  /// (release: every store those iterations made is visible to a waiter
  /// that observes the count).
  void publish(std::size_t chunk, std::uint64_t completed);

  /// Blocks until every iteration <= `target` has completed in every
  /// chunk, or abort() was called.  Returns false on abort.  `target` is
  /// a global iteration index; callers pass i - d.
  [[nodiscard]] bool wait_for_prefix(std::uint64_t target);

  /// Wakes every waiter into failure (a lane faulted or the instruction
  /// budget tripped); waits return false instead of deadlocking.
  void abort() { aborted_.store(true, std::memory_order_release); }
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  std::vector<Chunk> chunks_;
  /// Completed-iteration count per chunk.  unique_ptr array: atomics are
  /// neither copyable nor movable, so a vector cannot hold them directly.
  std::unique_ptr<std::atomic<std::uint64_t>[]> progress_;
  std::atomic<bool> aborted_{false};
};

}  // namespace hli::backend::parexec
