// Persistent worker pool for the parallel loop execution runtime.
//
// One pool serves every parallel dispatch of an interpreter run: the
// threads are spawned on first use and parked between dispatches on a
// condition variable after a brief spin (a pure spin-wait would starve
// the very workers it waits for on small machines).  The calling thread
// participates as worker 0, so a pool configured for W workers spawns
// only W-1 threads.
//
// run() is a barrier: it returns after every worker finished the job.
// A job exception is captured (first one wins) and rethrown on the
// calling thread after the join, so interpreter faults inside a chunk
// (memory range, division by zero) surface exactly like serial ones.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hli::backend::parexec {

class WorkerPool {
 public:
  /// `workers` >= 1 total lanes (including the caller); spawns workers-1
  /// threads lazily on the first run().
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned workers() const { return workers_; }

  /// Executes job(w) for every lane w in [0, workers); the caller runs
  /// lane 0.  Rethrows the first job exception after all lanes finish.
  void run(const std::function<void(unsigned)>& job);

 private:
  void worker_main(unsigned lane);

  const unsigned workers_;
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Workers wait for a new generation.
  std::condition_variable done_cv_;   ///< run() waits for the last lane.
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;            ///< Spawned lanes still in this job.
  bool shutdown_ = false;
  bool error_set_ = false;
  std::string error_;                 ///< First captured job exception.
};

}  // namespace hli::backend::parexec
